// Eavesdropping demo (paper Fig. 3): a malicious subscriber joins the
// cereal-like messaging bus with no authentication and reconstructs the
// safety context (headway time, relative speed, lane-edge distances) in
// real time while the ADAS drives. Nothing is injected — this is the
// reconnaissance stage of the attack.

#include <cstdio>

#include "attack/context.hpp"
#include "attack/context_table.hpp"
#include "exp/campaign.hpp"
#include "sim/world.hpp"

using namespace scaa;

int main() {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;  // nobody injects; we only listen
  item.scenario_id = 3;                          // lead slows 50 -> 35 mph
  item.initial_gap = 70.0;
  item.seed = 99;

  sim::World world(exp::world_config_for(item));

  // The "malware": subscribes exactly like any legitimate module would.
  // This is the same class the real attack engine uses internally.
  attack::ContextInference spy(world.message_bus(), /*half_width=*/0.9);
  attack::ContextTable table{attack::ContextTableParams{}};

  // Also count raw frames to show the fidelity of the tap.
  std::uint64_t gps_frames = 0, model_frames = 0, radar_frames = 0;
  world.message_bus().subscribe_raw(
      msg::Topic::kGpsLocationExternal,
      [&](const msg::WireFrame&) { ++gps_frames; });
  world.message_bus().subscribe_raw(
      msg::Topic::kModelV2, [&](const msg::WireFrame&) { ++model_frames; });
  world.message_bus().subscribe_raw(
      msg::Topic::kRadarState, [&](const msg::WireFrame&) { ++radar_frames; });

  std::printf("%-6s %-8s %-8s %-8s %-8s %-8s %s\n", "t[s]", "v[mph]",
              "HWT[s]", "RS[m/s]", "dL[m]", "dR[m]", "unsafe-actions-enabled");
  int steps = 0;
  while (world.step()) {
    if (++steps % 500 != 0) continue;  // print every 5 s
    const auto ctx = spy.infer(world.time());
    const auto match = table.match(ctx);
    std::string actions;
    using attack::UnsafeAction;
    if (match.enabled(UnsafeAction::kAcceleration)) actions += "u1:Accel ";
    if (match.enabled(UnsafeAction::kDeceleration)) actions += "u2:Decel ";
    if (match.enabled(UnsafeAction::kSteerLeft)) actions += "u3:SteerL ";
    if (match.enabled(UnsafeAction::kSteerRight)) actions += "u4:SteerR ";
    std::printf("%-6.1f %-8.1f %-8.2f %-8.2f %-8.2f %-8.2f %s\n", ctx.time,
                ctx.speed * 2.23694, ctx.hwt > 1e8 ? -1.0 : ctx.hwt,
                ctx.rel_speed, ctx.d_left, ctx.d_right,
                actions.empty() ? "-" : actions.c_str());
  }

  std::printf("\neavesdropped frames: gps=%llu modelV2=%llu radarState=%llu "
              "(no credentials required)\n",
              static_cast<unsigned long long>(gps_frames),
              static_cast<unsigned long long>(model_frames),
              static_cast<unsigned long long>(radar_frames));
  return 0;
}
