// Driver-takeover timeline: runs a loud (non-strategic) Acceleration attack
// and prints the sequence of events — attack activation, anomaly
// perception, the 2.5 s reaction gap, takeover, Eq. 4 braking — showing why
// driver alertness prevents some attacks (paper Observation 4) but cannot
// stop steering attacks (Observation 5).

#include <cstdio>

#include "driver/driver_model.hpp"
#include "exp/campaign.hpp"
#include "sim/world.hpp"

using namespace scaa;

namespace {

void run_and_narrate(attack::AttackType type) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = type;
  item.strategic_values = false;  // loud values: the driver can notice
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = 77;

  sim::World world(exp::world_config_for(item));

  std::printf("--- %s attack (fixed values), S1 ---\n",
              to_string(type).c_str());
  bool printed_attack = false, printed_perceived = false,
       printed_engaged = false;
  while (world.step()) {
    const auto* engine = world.attack_engine();
    const auto& driver = world.driver_model();
    if (!printed_attack && engine != nullptr &&
        engine->stats().first_activation >= 0.0) {
      std::printf("  t=%6.2f  attack activates (context matched)\n",
                  engine->stats().first_activation);
      printed_attack = true;
    }
    if (!printed_perceived && driver.perception_time() >= 0.0) {
      std::printf("  t=%6.2f  driver perceives the anomaly\n",
                  driver.perception_time());
      printed_perceived = true;
    }
    if (!printed_engaged && driver.engaged()) {
      std::printf("  t=%6.2f  driver engages (attack stops; Eq.4 braking)\n",
                  driver.engage_time());
      printed_engaged = true;
    }
  }
  const auto s = world.summarize();
  if (s.any_hazard)
    std::printf("  t=%6.2f  HAZARD %s (TTH %.2f s vs. reaction time 2.5 s)\n",
                s.first_hazard_time, attack::to_string(s.first_hazard).c_str(),
                s.tth);
  else
    std::printf("            no hazard — the driver prevented it\n");
  if (s.any_accident)
    std::printf("  t=%6.2f  ACCIDENT %s\n", s.first_accident_time,
                sim::to_string(s.first_accident).c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Eq.4 brake ramp: t=0.5s -> %.0f%%, t=1.0s -> %.0f%%, "
              "t=1.2s -> %.0f%%, t=1.5s -> %.0f%% of full braking\n\n",
              100 * driver::brake_ramp(0.5), 100 * driver::brake_ramp(1.0),
              100 * driver::brake_ramp(1.2), 100 * driver::brake_ramp(1.5));

  // The driver usually wins against a loud longitudinal attack...
  run_and_narrate(attack::AttackType::kAcceleration);
  run_and_narrate(attack::AttackType::kDeceleration);
  // ...but cannot beat a steering attack whose TTH < 2.5 s.
  run_and_narrate(attack::AttackType::kSteeringRight);
  return 0;
}
