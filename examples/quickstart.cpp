// Quickstart: run one attack-free simulation and one Context-Aware attack
// simulation on scenario S1, and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "exp/campaign.hpp"
#include "sim/world.hpp"

using namespace scaa;

namespace {

void print_summary(const char* label, const sim::SimulationSummary& s) {
  std::printf("=== %s ===\n", label);
  std::printf("  simulated time        : %.1f s\n", s.sim_end_time);
  std::printf("  hazards               : %s", s.any_hazard ? "" : "none\n");
  if (s.any_hazard)
    std::printf("first %s at %.2f s\n",
                attack::to_string(s.first_hazard).c_str(),
                s.first_hazard_time);
  std::printf("  accidents             : %s\n",
              s.any_accident ? sim::to_string(s.first_accident).c_str()
                             : "none");
  std::printf("  alerts (events)       : %llu (steerSaturated %llu, FCW %llu)\n",
              static_cast<unsigned long long>(s.alert_events),
              static_cast<unsigned long long>(s.steer_saturated_events),
              static_cast<unsigned long long>(s.fcw_events));
  std::printf("  lane invasions        : %llu (%.2f events/s)\n",
              static_cast<unsigned long long>(s.lane_invasions),
              s.lane_invasion_rate);
  if (s.attack_activated) {
    std::printf("  attack window         : starts %.2f s, active %.2f s\n",
                s.attack_start, s.attack_duration);
    if (s.tth >= 0.0) std::printf("  time-to-hazard (TTH)  : %.2f s\n", s.tth);
    std::printf("  CAN frames corrupted  : %llu\n",
                static_cast<unsigned long long>(s.frames_corrupted));
  }
  if (s.driver_engaged)
    std::printf("  driver engaged        : %.2f s (perceived %.2f s)\n",
                s.driver_engage_time, s.driver_perception_time);
  std::printf("\n");
}

}  // namespace

int main() {
  // 1) Baseline: ADAS drives scenario S1 (lead at 35 mph, 100 m ahead)
  //    with no attack.
  exp::CampaignItem baseline;
  baseline.strategy = attack::StrategyKind::kNone;
  baseline.scenario_id = 1;
  baseline.initial_gap = 100.0;
  baseline.seed = 42;
  {
    sim::World world(exp::world_config_for(baseline));
    print_summary("No attack, S1", world.run());
  }

  // 2) Context-Aware Acceleration attack with strategic value corruption.
  exp::CampaignItem attack_item = baseline;
  attack_item.strategy = attack::StrategyKind::kContextAware;
  attack_item.type = attack::AttackType::kAcceleration;
  attack_item.strategic_values = true;
  {
    sim::World world(exp::world_config_for(attack_item));
    print_summary("Context-Aware Acceleration attack, S1", world.run());
  }

  // 3) Same attack but the steering variant — typically causes a roadside
  //    collision faster than the driver can react.
  attack_item.type = attack::AttackType::kSteeringRight;
  {
    sim::World world(exp::world_config_for(attack_item));
    print_summary("Context-Aware Steering-Right attack, S1", world.run());
  }
  return 0;
}
