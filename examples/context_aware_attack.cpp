// Full Context-Aware attack walk-through on every attack type: shows when
// the context trigger fires, what values are injected, and what happens —
// the per-type story behind paper Table V.

#include <cstdio>

#include "exp/campaign.hpp"
#include "sim/world.hpp"

using namespace scaa;

int main() {
  std::printf("Context-Aware attacks (strategic value corruption), scenario "
              "S1, gap 100 m, same seed:\n\n");
  std::printf("%-24s %-10s %-10s %-12s %-14s %-10s %s\n", "attack type",
              "starts[s]", "TTH[s]", "hazard", "accident", "alerts",
              "driver engaged");

  for (const attack::AttackType type : attack::kAllAttackTypes) {
    exp::CampaignItem item;
    item.strategy = attack::StrategyKind::kContextAware;
    item.type = type;
    item.strategic_values = true;
    item.scenario_id = 1;
    item.initial_gap = 100.0;
    item.seed = 1234;

    sim::World world(exp::world_config_for(item));
    const auto s = world.run();

    std::printf("%-24s %-10.2f %-10.2f %-12s %-14s %-10llu %s\n",
                to_string(type).c_str(), s.attack_start, s.tth,
                s.any_hazard ? attack::to_string(s.first_hazard).c_str()
                             : "-",
                s.any_accident ? sim::to_string(s.first_accident).c_str()
                               : "-",
                static_cast<unsigned long long>(s.alert_events),
                s.driver_engaged ? "yes" : "no");
  }

  std::printf("\nFor comparison, the same attacks WITHOUT strategic value "
              "corruption (OpenPilot maxima: 2.4 m/s^2, -4 m/s^2, 0.5 deg):\n\n");
  for (const attack::AttackType type : attack::kAllAttackTypes) {
    exp::CampaignItem item;
    item.strategy = attack::StrategyKind::kContextAware;
    item.type = type;
    item.strategic_values = false;
    item.scenario_id = 1;
    item.initial_gap = 100.0;
    item.seed = 1234;

    sim::World world(exp::world_config_for(item));
    const auto s = world.run();
    std::printf("%-24s %-10.2f %-10.2f %-12s %-14s %-10llu %s\n",
                to_string(type).c_str(), s.attack_start, s.tth,
                s.any_hazard ? attack::to_string(s.first_hazard).c_str()
                             : "-",
                s.any_accident ? sim::to_string(s.first_accident).c_str()
                               : "-",
                static_cast<unsigned long long>(s.alert_events),
                s.driver_engaged ? "yes" : "no");
  }
  return 0;
}
