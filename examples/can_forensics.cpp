// CAN forensics: taps the bus during a Context-Aware steering attack and
// prints the steering command stream around the corruption onset — showing
// that corrupted frames carry valid checksums and in-sequence counters
// (paper Fig. 4), i.e. integrity checking alone cannot catch this attack.

#include <cstdio>
#include <vector>

#include "can/checksum.hpp"
#include "can/packer.hpp"
#include "exp/campaign.hpp"
#include "sim/world.hpp"

using namespace scaa;

int main() {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kSteeringRight;
  item.strategic_values = true;
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = 3;

  sim::World world(exp::world_config_for(item));

  struct Sample {
    double time;
    can::CanFrame frame;
    bool attack_active;
  };
  std::vector<Sample> log;
  can::CanParser tap_parser(world.dbc());

  // A read-only tap at the OBD-II position (post-interception).
  world.can().attach_tap([&](const can::CanFrame& frame) {
    if (frame.id != can::msg_id::kSteeringControl) return;
    const bool active = world.attack_engine() != nullptr &&
                        world.attack_engine()->stats().active_now;
    log.push_back({world.time(), frame, active});
  });

  while (world.step()) {
  }
  const auto summary = world.summarize();

  // Find the corruption onset and print a window around it.
  std::size_t onset = log.size();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].attack_active) {
      onset = i;
      break;
    }
  }

  std::printf("STEERING_CONTROL (0x%X) stream around attack onset:\n\n",
              can::msg_id::kSteeringControl);
  std::printf("%-8s %-26s %-9s %-8s %-8s %s\n", "t[s]", "frame", "angle[deg]",
              "cksum", "counter", "note");
  const std::size_t from = onset >= 5 ? onset - 5 : 0;
  const std::size_t to = std::min(onset + 6, log.size());
  for (std::size_t i = from; i < to; ++i) {
    const auto& s = log[i];
    const auto parsed = tap_parser.parse(s.frame);
    std::printf("%-8.2f %-26s %-9.3f %-8s %-8u %s\n", s.time,
                can::to_string(s.frame).c_str(),
                parsed->values.at(can::sig::kSteerAngleCmd),
                parsed->checksum_ok ? "VALID" : "BAD",
                static_cast<unsigned>(can::read_counter(s.frame)),
                s.attack_active ? "<-- corrupted (+checksum repaired)" : "");
  }

  std::printf("\ngateway checksum rejects during the whole run: %llu "
              "(attacker repairs integrity fields, Fig. 4)\n",
              static_cast<unsigned long long>(summary.can_checksum_rejects));
  std::printf("outcome: hazard=%s accident=%s TTH=%.2f s\n",
              summary.any_hazard ? attack::to_string(summary.first_hazard).c_str() : "none",
              summary.any_accident ? sim::to_string(summary.first_accident).c_str() : "none",
              summary.tth);
  return 0;
}
