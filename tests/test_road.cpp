// Unit tests for scaa::road (profile geometry, builder, queries).

#include <gtest/gtest.h>

#include "road/builder.hpp"
#include "road/road.hpp"

namespace {

using namespace scaa;

road::RoadProfile two_lane() {
  road::RoadProfile p;
  p.lane_count = 2;
  p.lane_width = 3.7;
  p.guardrail_margin = 1.8;
  return p;
}

TEST(RoadProfile, LaneGeometry) {
  const auto p = two_lane();
  EXPECT_DOUBLE_EQ(p.width(), 7.4);
  EXPECT_DOUBLE_EQ(p.lane_center(0), -1.85);  // right lane
  EXPECT_DOUBLE_EQ(p.lane_center(1), 1.85);   // left lane
  EXPECT_DOUBLE_EQ(p.lane_right_edge(0), -3.7);
  EXPECT_DOUBLE_EQ(p.lane_left_edge(0), 0.0);
  EXPECT_DOUBLE_EQ(p.lane_left_edge(1), 3.7);
  EXPECT_DOUBLE_EQ(p.right_guardrail(), -5.5);
  EXPECT_DOUBLE_EQ(p.left_guardrail(), 5.5);
}

TEST(Road, RejectsBadProfiles) {
  road::RoadBuilder b;
  b.straight(100.0);
  road::RoadProfile p = two_lane();
  p.lane_count = 0;
  EXPECT_THROW(b.build(p), std::invalid_argument);
  p = two_lane();
  p.lane_width = -1.0;
  EXPECT_THROW(b.build(p), std::invalid_argument);
}

TEST(Road, LaneAtOffsets) {
  road::RoadBuilder b;
  b.straight(100.0);
  const auto road = b.build(two_lane());
  EXPECT_EQ(road.lane_at(-1.85), 0);
  EXPECT_EQ(road.lane_at(1.85), 1);
  EXPECT_EQ(road.lane_at(-4.0), -1);  // off the carriageway
  EXPECT_EQ(road.lane_at(4.0), -1);
}

TEST(Road, EdgeDistances) {
  road::RoadBuilder b;
  b.straight(100.0);
  const auto road = b.build(two_lane());
  // In the middle of lane 0, both edges are half a lane away.
  EXPECT_DOUBLE_EQ(road.distance_to_left_edge(-1.85, 0), 1.85);
  EXPECT_DOUBLE_EQ(road.distance_to_right_edge(-1.85, 0), 1.85);
  // 0.5 m left of centre: closer to left edge.
  EXPECT_DOUBLE_EQ(road.distance_to_left_edge(-1.35, 0), 1.35);
  EXPECT_DOUBLE_EQ(road.distance_to_right_edge(-1.35, 0), 2.35);
}

TEST(Road, LaneInvasionByFootprint) {
  road::RoadBuilder b;
  b.straight(100.0);
  const auto road = b.build(two_lane());
  const double half_width = 0.9;
  EXPECT_FALSE(road.invades_lane_line(-1.85, 0, half_width));  // centred
  EXPECT_TRUE(road.invades_lane_line(-0.8, 0, half_width));    // touches left
  EXPECT_TRUE(road.invades_lane_line(-2.9, 0, half_width));    // touches right
}

TEST(Road, GuardrailContact) {
  road::RoadBuilder b;
  b.straight(100.0);
  const auto road = b.build(two_lane());
  EXPECT_FALSE(road.hits_guardrail(-1.85, 0.9));
  EXPECT_TRUE(road.hits_guardrail(-4.7, 0.9));   // right rail at -5.5
  EXPECT_TRUE(road.hits_guardrail(4.7, 0.9));    // left rail at +5.5
}

TEST(RoadBuilder, StraightLengthExact) {
  road::RoadBuilder b;
  b.straight(123.0);
  const auto road = b.build(two_lane());
  EXPECT_NEAR(road.length(), 123.0, 1e-9);
}

TEST(RoadBuilder, ArcSweepsHeading) {
  road::RoadBuilder b;
  // Quarter circle of radius 100 (left): length = pi/2 * 100.
  const double curvature = 1.0 / 100.0;
  b.arc(100.0 * 3.14159265358979 / 2.0, curvature);
  const auto road = b.build(two_lane());
  // heading_at samples the chord of the last tessellation segment, so
  // allow ~kappa * spacing of discretization error.
  EXPECT_NEAR(road.heading_at(road.length() - 0.5), 3.14159265 / 2.0, 1e-2);
}

TEST(RoadBuilder, ArcCurvatureMatches) {
  road::RoadBuilder b;
  b.arc(500.0, 1.0 / 250.0);
  const auto road = b.build(two_lane());
  EXPECT_NEAR(road.curvature_at(250.0), 1.0 / 250.0, 2e-4);
}

TEST(RoadBuilder, NegativeCurvatureTurnsRight) {
  road::RoadBuilder b;
  b.arc(200.0, -1.0 / 100.0);
  const auto road = b.build(two_lane());
  EXPECT_LT(road.heading_at(150.0), 0.0);
}

TEST(RoadBuilder, ZeroCurvatureIsStraight) {
  road::RoadBuilder b;
  b.arc(100.0, 0.0);
  const auto road = b.build(two_lane());
  EXPECT_NEAR(road.heading_at(90.0), 0.0, 1e-12);
}

TEST(RoadBuilder, RejectsBadArgs) {
  road::RoadBuilder b;
  EXPECT_THROW(b.straight(-5.0), std::invalid_argument);
  EXPECT_THROW(b.arc(0.0, 0.01), std::invalid_argument);
  EXPECT_THROW(b.sample_spacing(0.0), std::invalid_argument);
}

TEST(RoadBuilder, PaperRoadShape) {
  const auto road = road::RoadBuilder::paper_road();
  // Long enough for 50 s at 60 mph (~1.35 km) with margin.
  EXPECT_GT(road.length(), 2000.0);
  // Straight at the start, left curve later.
  EXPECT_NEAR(road.curvature_at(100.0), 0.0, 1e-6);
  EXPECT_NEAR(road.curvature_at(800.0), 1.0 / 1200.0, 1e-4);
  EXPECT_EQ(road.profile().lane_count, 2u);
}

TEST(RoadBuilder, WorldRoundTripOnCurve) {
  const auto road = road::RoadBuilder::paper_road();
  const auto p = road.world_at(700.0, -1.85);
  geom::FrenetFrame frame(road.reference());
  const auto f = frame.to_frenet(p);
  EXPECT_NEAR(f.s, 700.0, 1e-4);
  EXPECT_NEAR(f.d, -1.85, 1e-6);
}

}  // namespace
