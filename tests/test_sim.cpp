// Integration tests: the full closed-loop world, hazard/accident detection,
// determinism, and end-to-end attack behaviour.

#include <gtest/gtest.h>

#include "exp/campaign.hpp"
#include "sim/world.hpp"
#include "util/stats.hpp"

namespace {

using namespace scaa;

exp::CampaignItem item_for(attack::StrategyKind strategy,
                           attack::AttackType type, bool strategic,
                           int scenario, double gap, std::uint64_t seed,
                           bool driver = true) {
  exp::CampaignItem item;
  item.strategy = strategy;
  item.type = type;
  item.strategic_values = strategic;
  item.driver_enabled = driver;
  item.scenario_id = scenario;
  item.initial_gap = gap;
  item.seed = seed;
  return item;
}

TEST(Scenario, CatalogueMatchesPaper) {
  const auto s1 = sim::Scenario::make(1, 100.0);
  EXPECT_NEAR(s1.lead.initial_speed, units::mph_to_ms(35.0), 1e-9);
  EXPECT_NEAR(s1.lead.target_speed, units::mph_to_ms(35.0), 1e-9);
  const auto s3 = sim::Scenario::make(3, 70.0);
  EXPECT_NEAR(s3.lead.initial_speed, units::mph_to_ms(50.0), 1e-9);
  EXPECT_NEAR(s3.lead.target_speed, units::mph_to_ms(35.0), 1e-9);
  const auto s4 = sim::Scenario::make(4, 50.0);
  EXPECT_LT(s4.lead.initial_speed, s4.lead.target_speed);
  EXPECT_EQ(s4.name(), "S4");
  EXPECT_THROW(sim::Scenario::make(5, 50.0), std::invalid_argument);
  EXPECT_NEAR(s1.ego_speed, units::mph_to_ms(60.0), 1e-9);
}

TEST(World, BaselineRunsFiftySecondsCleanly) {
  sim::World world(exp::world_config_for(
      item_for(attack::StrategyKind::kNone, attack::AttackType::kAcceleration,
               false, 1, 100.0, 42)));
  const auto s = world.run();
  EXPECT_NEAR(s.sim_end_time, 50.0, 0.011);
  EXPECT_FALSE(s.any_hazard);
  EXPECT_FALSE(s.any_accident);
  EXPECT_FALSE(s.driver_engaged);
  EXPECT_EQ(s.fcw_events, 0u);
  EXPECT_EQ(s.can_checksum_rejects, 0u);
}

TEST(World, DeterministicAcrossRuns) {
  const auto item = item_for(attack::StrategyKind::kContextAware,
                             attack::AttackType::kSteeringRight, true, 1,
                             70.0, 77);
  sim::World a(exp::world_config_for(item));
  sim::World b(exp::world_config_for(item));
  const auto sa = a.run();
  const auto sb = b.run();
  EXPECT_EQ(sa.any_hazard, sb.any_hazard);
  EXPECT_DOUBLE_EQ(sa.first_hazard_time, sb.first_hazard_time);
  EXPECT_DOUBLE_EQ(sa.attack_start, sb.attack_start);
  EXPECT_EQ(sa.lane_invasions, sb.lane_invasions);
  EXPECT_DOUBLE_EQ(sa.sim_end_time, sb.sim_end_time);
}

TEST(World, SeedsChangeOutcomeDetails) {
  const auto a = sim::World(exp::world_config_for(
                                item_for(attack::StrategyKind::kNone,
                                         attack::AttackType::kAcceleration,
                                         false, 1, 100.0, 1)))
                     .run();
  const auto b = sim::World(exp::world_config_for(
                                item_for(attack::StrategyKind::kNone,
                                         attack::AttackType::kAcceleration,
                                         false, 1, 100.0, 2)))
                     .run();
  // Different noise realizations -> different invasion counts (with very
  // high probability; seeds chosen to differ here).
  EXPECT_NE(a.lane_invasions * 1000 + a.alert_events,
            b.lane_invasions * 1000 + b.alert_events);
}

TEST(World, AccelerationAttackCausesH1WithoutDriver) {
  sim::World world(exp::world_config_for(
      item_for(attack::StrategyKind::kContextAware,
               attack::AttackType::kAcceleration, true, 1, 100.0, 7,
               /*driver=*/false)));
  const auto s = world.run();
  EXPECT_TRUE(s.attack_activated);
  EXPECT_TRUE(s.hazard_h1);
  EXPECT_TRUE(s.any_accident);
  EXPECT_GT(s.tth, 0.0);
  EXPECT_GT(s.frames_corrupted, 0u);
}

TEST(World, DecelerationAttackCausesH2NoCollision) {
  sim::World world(exp::world_config_for(
      item_for(attack::StrategyKind::kContextAware,
               attack::AttackType::kDeceleration, true, 1, 100.0, 7)));
  const auto s = world.run();
  EXPECT_TRUE(s.attack_activated);
  EXPECT_TRUE(s.hazard_h2);
  EXPECT_FALSE(s.accident_a1);  // slowing down, not colliding with the lead
}

TEST(World, SteeringAttackFasterThanDriver) {
  // Observation 5: steering TTH < 2.5 s reaction time -> not preventable.
  int hazards = 0;
  util::RunningStats tth;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::World world(exp::world_config_for(
        item_for(attack::StrategyKind::kContextAware,
                 attack::AttackType::kSteeringRight, true, 1, 100.0, seed)));
    const auto s = world.run();
    if (s.hazard_h3) {
      ++hazards;
      tth.add(s.tth);
    }
  }
  EXPECT_GE(hazards, 5);  // right-edge context fires in most runs
  EXPECT_LT(tth.mean(), 2.5);
}

TEST(World, FixedValuesNoticedStrategicNot) {
  // The same Deceleration attack: fixed values wake the driver, strategic
  // values do not (Observation 6).
  sim::World fixed(exp::world_config_for(
      item_for(attack::StrategyKind::kContextAware,
               attack::AttackType::kDeceleration, false, 1, 100.0, 11)));
  const auto sf = fixed.run();
  EXPECT_TRUE(sf.driver_engaged);

  sim::World strategic(exp::world_config_for(
      item_for(attack::StrategyKind::kContextAware,
               attack::AttackType::kDeceleration, true, 1, 100.0, 11)));
  const auto ss = strategic.run();
  EXPECT_FALSE(ss.driver_engaged);
  EXPECT_TRUE(ss.hazard_h2);
}

TEST(World, AttackStopsWhenDriverEngages) {
  sim::World world(exp::world_config_for(
      item_for(attack::StrategyKind::kContextAware,
               attack::AttackType::kAcceleration, false, 1, 100.0, 13)));
  std::uint64_t corrupted_at_engage = 0;
  bool captured = false;
  while (world.step()) {
    if (!captured && world.driver_model().engaged()) {
      corrupted_at_engage = world.attack_engine()->stats().frames_corrupted;
      captured = true;
    }
  }
  ASSERT_TRUE(captured);
  // A handful of frames may still be in flight the same cycle, nothing more.
  EXPECT_LE(world.attack_engine()->stats().frames_corrupted,
            corrupted_at_engage + 2);
}

TEST(World, FcwNeverFiresDuringAttacks) {
  // Observation 2, checked across types and seeds.
  for (const auto type : attack::kAllAttackTypes) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      sim::World world(exp::world_config_for(item_for(
          attack::StrategyKind::kContextAware, type, true, 2, 70.0, seed)));
      EXPECT_EQ(world.run().fcw_events, 0u) << to_string(type);
    }
  }
}

TEST(World, TthConsistency) {
  // Whenever both an attack and a hazard happened, TTH = hazard - start >= 0.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::World world(exp::world_config_for(
        item_for(attack::StrategyKind::kRandomSt,
                 attack::AttackType::kSteeringRight, false, 1, 70.0, seed)));
    const auto s = world.run();
    if (s.any_hazard && s.attack_activated && s.tth >= 0.0) {
      EXPECT_NEAR(s.tth, s.first_hazard_time - s.attack_start, 1e-9);
    }
  }
}

TEST(World, PandaEnforcementBlocksFixedLongitudinal) {
  // With the firmware checks enforced, fixed-value (out-of-envelope)
  // longitudinal corruption is dropped at the bus.
  auto cfg = exp::world_config_for(
      item_for(attack::StrategyKind::kContextAware,
               attack::AttackType::kDeceleration, false, 1, 100.0, 9));
  cfg.panda_enforced = true;
  sim::World world(std::move(cfg));
  const auto s = world.run();
  EXPECT_GT(s.panda_frames_blocked, 0u);
  // The -4 m/s^2 frames never reach the actuators; the gateway holds the
  // last accepted command instead (which may still slow the car — blocking
  // without a fail-safe has its own cost — but cannot crash it).
  EXPECT_FALSE(s.any_accident);
}

TEST(World, PandaEnforcementPassesStrategic) {
  auto cfg = exp::world_config_for(
      item_for(attack::StrategyKind::kContextAware,
               attack::AttackType::kDeceleration, true, 1, 100.0, 9));
  cfg.panda_enforced = true;
  sim::World world(std::move(cfg));
  const auto s = world.run();
  // Strategic values sit inside the envelope: the attack still works.
  EXPECT_TRUE(s.hazard_h2);
}

TEST(World, TraceRecordsFullRun) {
  sim::World world(exp::world_config_for(
      item_for(attack::StrategyKind::kNone, attack::AttackType::kAcceleration,
               false, 1, 100.0, 5)));
  sim::Trace trace;
  world.run(&trace);
  EXPECT_NEAR(static_cast<double>(trace.size()), 5000.0, 2.0);
  EXPECT_NEAR(trace.rows().back().time, 50.0, 0.02);
  // Lane geometry columns are constant and sane.
  EXPECT_DOUBLE_EQ(trace.rows().front().lane_center, -1.85);
  EXPECT_DOUBLE_EQ(trace.rows().front().lane_left, 0.0);
  EXPECT_DOUBLE_EQ(trace.rows().front().lane_right, -3.7);
}

TEST(Monitor, H1AndA1Ordering) {
  // A1 (collision) implies H1 (distance violation) happened at or before.
  sim::World world(exp::world_config_for(
      item_for(attack::StrategyKind::kContextAware,
               attack::AttackType::kAcceleration, true, 1, 50.0, 3,
               /*driver=*/false)));
  const auto s = world.run();
  if (s.accident_a1) {
    EXPECT_TRUE(s.hazard_h1);
    EXPECT_LE(s.hazard_h1_time, s.first_accident_time + 1e-9);
  }
}

TEST(Monitor, LaneInvasionsHappenWithoutAttacks) {
  // Observation 1: nonzero invasion rate with zero hazards.
  std::uint64_t invasions = 0;
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    sim::World world(exp::world_config_for(
        item_for(attack::StrategyKind::kNone,
                 attack::AttackType::kAcceleration, false, 2, 70.0, seed)));
    invasions += world.run().lane_invasions;
  }
  EXPECT_GT(invasions, 0u);
}

}  // namespace
