// Unit tests for scaa::driver (Eq. 4 ramp, perception, state machine,
// anomaly-dependent responses).

#include <gtest/gtest.h>

#include <cmath>

#include "driver/driver_model.hpp"

namespace {

using namespace scaa;

TEST(BrakeRamp, MatchesEquation4) {
  // brake(t) = e^{10t-12} / (1 + e^{10t-12})
  auto expected = [](double t) {
    const double e = std::exp(10.0 * t - 12.0);
    return e / (1.0 + e);
  };
  for (const double t : {0.0, 0.5, 1.0, 1.2, 1.5, 2.0}) {
    EXPECT_NEAR(driver::brake_ramp(t), expected(t), 1e-12) << "t=" << t;
  }
  EXPECT_NEAR(driver::brake_ramp(0.0), 0.0, 1e-5);   // nearly zero at start
  EXPECT_NEAR(driver::brake_ramp(1.2), 0.5, 1e-9);   // midpoint at 1.2 s
  EXPECT_NEAR(driver::brake_ramp(1.5), 0.953, 1e-3); // near full by 1.5 s
  EXPECT_DOUBLE_EQ(driver::brake_ramp(100.0), 1.0);  // saturates, no overflow
}

driver::DriverObservation nominal_obs() {
  driver::DriverObservation obs;
  obs.speed = 26.82;
  obs.cruise_speed = 26.82;
  obs.accel_cmd = 0.0;
  obs.steer_cmd = 0.0;
  obs.nominal_steer = 0.0;
  return obs;
}

TEST(Driver, StaysPassiveWhenNominal) {
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(driver.step(nominal_obs(), i * 0.01, 0.01).has_value());
  }
  EXPECT_EQ(driver.phase(), driver::DriverPhase::kMonitoring);
  EXPECT_LT(driver.perception_time(), 0.0);
}

TEST(Driver, ReactionDelayIs2point5Seconds) {
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  auto obs = nominal_obs();
  obs.accel_cmd = 2.4;  // above the 2.0 limit -> anomalous at one step
  driver.step(obs, 10.0, 0.01);
  EXPECT_EQ(driver.phase(), driver::DriverPhase::kReacting);
  EXPECT_DOUBLE_EQ(driver.perception_time(), 10.0);
  // No action until 2.5 s have elapsed.
  EXPECT_FALSE(driver.step(obs, 12.49, 0.01).has_value());
  EXPECT_TRUE(driver.step(obs, 12.51, 0.01).has_value());
  EXPECT_NEAR(driver.engage_time(), 12.51, 1e-9);
}

TEST(Driver, ThresholdsAreStrict) {
  // Values exactly AT the limits are not anomalous — this is what lets the
  // strategic corruption evade the driver.
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  auto obs = nominal_obs();
  obs.accel_cmd = 2.0;    // == limit
  driver.step(obs, 1.0, 0.01);
  obs.accel_cmd = -3.5;   // == brake limit
  driver.step(obs, 1.01, 0.01);
  obs.accel_cmd = 0.0;
  obs.speed = 1.1 * 26.82;  // == overspeed bound
  driver.step(obs, 1.02, 0.01);
  EXPECT_EQ(driver.phase(), driver::DriverPhase::kMonitoring);
}

TEST(Driver, NoticesEachAnomalyKind) {
  using driver::AnomalyKind;
  struct Case {
    void (*mutate)(driver::DriverObservation&);
    AnomalyKind expected;
  };
  const Case cases[] = {
      {[](driver::DriverObservation& o) { o.adas_alert = true; },
       AnomalyKind::kAlert},
      {[](driver::DriverObservation& o) { o.accel_cmd = 2.2; },
       AnomalyKind::kAcceleration},
      {[](driver::DriverObservation& o) { o.accel_cmd = -3.8; },
       AnomalyKind::kBraking},
      {[](driver::DriverObservation& o) { o.steer_cmd = 0.05; },
       AnomalyKind::kSteering},
      {[](driver::DriverObservation& o) { o.speed = 30.0; },
       AnomalyKind::kOverspeed},
  };
  for (const auto& c : cases) {
    driver::DriverModel driver(driver::DriverConfig{}, 2.7);
    auto obs = nominal_obs();
    c.mutate(obs);
    driver.step(obs, 1.0, 0.01);
    EXPECT_EQ(driver.perceived_anomaly(), c.expected);
  }
}

TEST(Driver, BrakingAnomalyLeadsToRecovery) {
  // Unintended braking -> take over and restore cruise, not a panic stop.
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  auto obs = nominal_obs();
  obs.accel_cmd = -4.0;
  obs.speed = 15.0;
  driver.step(obs, 0.0, 0.01);
  obs.accel_cmd = 0.0;  // attack stops once the driver engages
  std::optional<vehicle::ActuatorCommand> cmd;
  for (double t = 0.01; t < 4.0; t += 0.01) cmd = driver.step(obs, t, 0.01);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_GT(cmd->accel, 0.5);  // accelerating back toward the set speed
}

TEST(Driver, SurgeWithImminentLeadPanicStops) {
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  auto obs = nominal_obs();
  obs.accel_cmd = 2.4;
  obs.lead_visible = true;
  obs.lead_gap = 12.0;        // < 0.8 s headway at 26.8 m/s
  obs.lead_rel_speed = -8.0;  // closing fast
  driver.step(obs, 0.0, 0.01);
  std::optional<vehicle::ActuatorCommand> cmd;
  for (double t = 0.01; t < 6.0; t += 0.01) cmd = driver.step(obs, t, 0.01);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_LT(cmd->accel, -7.0);  // latched full braking
}

TEST(Driver, SurgeWithoutThreatReleasesBrake) {
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  auto obs = nominal_obs();
  obs.accel_cmd = 2.4;  // noticed
  driver.step(obs, 0.0, 0.01);
  obs.accel_cmd = 0.0;
  obs.speed = 25.0;  // below cruise: no overspeed, no lead
  std::optional<vehicle::ActuatorCommand> cmd;
  for (double t = 0.01; t < 4.0; t += 0.01) cmd = driver.step(obs, t, 0.01);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_GT(cmd->accel, -0.5);  // recovered to normal driving
}

TEST(Driver, FollowsLeadAfterTakeover) {
  // The human never drives into a visible lead, whatever the mode.
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  auto obs = nominal_obs();
  obs.accel_cmd = -4.0;  // braking anomaly -> recovery mode
  obs.speed = 20.0;
  driver.step(obs, 0.0, 0.01);
  obs.accel_cmd = 0.0;
  obs.lead_visible = true;
  obs.lead_gap = 8.0;
  obs.lead_rel_speed = -6.0;
  std::optional<vehicle::ActuatorCommand> cmd;
  for (double t = 0.01; t < 4.0; t += 0.01) cmd = driver.step(obs, t, 0.01);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_LT(cmd->accel, -2.0);  // follow law overrides the recovery throttle
}

TEST(Driver, SteeringCorrectionRecentres) {
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  auto obs = nominal_obs();
  obs.adas_alert = true;
  driver.step(obs, 0.0, 0.01);
  obs.adas_alert = false;
  obs.center_offset = -1.5;  // right of centre
  std::optional<vehicle::ActuatorCommand> cmd;
  for (double t = 0.01; t < 5.0; t += 0.01) cmd = driver.step(obs, t, 0.01);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_GT(cmd->steer_angle, 0.0);  // steering left, back to centre
}

TEST(Driver, AlertResponseSlowsButDoesNotStop) {
  driver::DriverModel driver(driver::DriverConfig{}, 2.7);
  auto obs = nominal_obs();
  obs.adas_alert = true;
  driver.step(obs, 0.0, 0.01);
  obs.adas_alert = false;
  obs.speed = 26.82;
  std::optional<vehicle::ActuatorCommand> cmd;
  for (double t = 0.01; t < 4.0; t += 0.01) cmd = driver.step(obs, t, 0.01);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_LT(cmd->accel, 0.0);    // easing off
  EXPECT_GT(cmd->accel, -3.5);   // but not an emergency stop
}

}  // namespace
