// Unit tests for scaa::geom (vectors, poses, polylines, Frenet frames).

#include <gtest/gtest.h>

#include <cmath>

#include "geom/frenet.hpp"
#include "geom/polyline.hpp"
#include "geom/vec2.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace scaa;
using geom::Vec2;

constexpr double kPi = units::kPi;

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ((a + b).x, 4.0);
  EXPECT_EQ((a + b).y, 1.0);
  EXPECT_EQ((a - b).x, -2.0);
  EXPECT_EQ((a * 2.0).y, 4.0);
  EXPECT_EQ((2.0 * a).y, 4.0);
}

TEST(Vec2, DotCrossNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_EQ(a.norm(), 5.0);
  EXPECT_EQ(a.norm_sq(), 25.0);
  EXPECT_EQ(a.dot({1.0, 0.0}), 3.0);
  EXPECT_EQ((Vec2{1.0, 0.0}.cross({0.0, 1.0})), 1.0);   // CCW positive
  EXPECT_EQ((Vec2{0.0, 1.0}.cross({1.0, 0.0})), -1.0);  // CW negative
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2{}.normalized().x, 0.0);
  const Vec2 n = Vec2{10.0, 0.0}.normalized();
  EXPECT_DOUBLE_EQ(n.x, 1.0);
}

TEST(Vec2, RotationAndPerp) {
  const Vec2 r = Vec2{1.0, 0.0}.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_EQ((Vec2{1.0, 0.0}.perp().y), 1.0);  // left normal
}

TEST(Pose, RoundTripTransforms) {
  const geom::Pose pose{{5.0, -2.0}, kPi / 3.0};
  const Vec2 local{1.5, -0.7};
  const Vec2 world = pose.local_to_world(local);
  const Vec2 back = pose.world_to_local(world);
  EXPECT_NEAR(back.x, local.x, 1e-12);
  EXPECT_NEAR(back.y, local.y, 1e-12);
}

TEST(Polyline, RejectsDegenerate) {
  EXPECT_THROW(geom::Polyline({{0, 0}}), std::invalid_argument);
  EXPECT_THROW(geom::Polyline({{0, 0}, {0, 0}}), std::invalid_argument);
}

TEST(Polyline, LengthAndSampling) {
  const geom::Polyline line({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(line.length(), 20.0);
  EXPECT_NEAR(line.position_at(5.0).x, 5.0, 1e-12);
  EXPECT_NEAR(line.position_at(15.0).y, 5.0, 1e-12);
  // Clamping at the ends.
  EXPECT_NEAR(line.position_at(-3.0).x, 0.0, 1e-12);
  EXPECT_NEAR(line.position_at(100.0).y, 10.0, 1e-12);
}

TEST(Polyline, HeadingFollowsSegments) {
  const geom::Polyline line({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_NEAR(line.heading_at(5.0), 0.0, 1e-12);
  EXPECT_NEAR(line.heading_at(15.0), kPi / 2.0, 1e-12);
}

TEST(Polyline, SamplingClampsExactlyToEndpoints) {
  // The s <= 0 / s >= length branches must return the endpoint VALUES, not
  // epsilon-interpolated neighbours.
  const geom::Polyline line({{1.5, -2.0}, {7.5, 1.0}, {9.0, 8.0}});
  EXPECT_EQ(line.position_at(0.0).x, 1.5);
  EXPECT_EQ(line.position_at(-1e300).y, -2.0);
  EXPECT_EQ(line.position_at(line.length()).x, 9.0);
  EXPECT_EQ(line.position_at(1e300).y, 8.0);
  EXPECT_EQ(line.heading_at(-3.0), line.heading_at(0.0));
  EXPECT_EQ(line.heading_at(line.length() + 5.0),
            line.heading_at(line.length()));
}

TEST(Polyline, HeadingAtEndUsesIndexClampNotArcEpsilon) {
  // Final segment shorter than the historical `length() - 1e-9` clamp: an
  // arc-length clamp would land in the SECOND-TO-LAST segment and report
  // its heading; the index clamp must report the final segment's.
  const geom::Polyline line({{0, 0}, {10, 0}, {10.0, 1e-10}});
  EXPECT_NEAR(line.heading_at(line.length()), kPi / 2.0, 1e-12);
  EXPECT_NEAR(line.heading_at(line.length() + 1.0), kPi / 2.0, 1e-12);
  // Interior queries are untouched.
  EXPECT_NEAR(line.heading_at(5.0), 0.0, 1e-12);
}

TEST(Polyline, SegmentIndexHandlesExtremeNonUniformSpacing) {
  // 200 segments of 0.01 m followed by one of 100 m: the scaled
  // segment-index guess is maximally wrong in both directions (a small s
  // guesses the long tail, a large s guesses past the end), and the
  // monotone walk must still land on the exact segment.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 200; ++i) pts.push_back({0.01 * i, 0.0});
  pts.push_back({2.0, 100.0});  // heading pi/2 for the final long segment
  const geom::Polyline fine_then_coarse(pts);
  EXPECT_NEAR(fine_then_coarse.heading_at(0.5), 0.0, 1e-12);
  EXPECT_NEAR(fine_then_coarse.heading_at(1.999), 0.0, 1e-12);
  EXPECT_NEAR(fine_then_coarse.heading_at(2.5), kPi / 2.0, 1e-12);
  EXPECT_NEAR(fine_then_coarse.position_at(1.0).x, 1.0, 1e-12);
  EXPECT_NEAR(fine_then_coarse.position_at(52.0).y, 50.0, 1e-9);

  // And the mirror image: one long segment, then a fine tail.
  std::vector<Vec2> pts2{{0.0, 0.0}, {100.0, 0.0}};
  for (int i = 1; i <= 200; ++i) pts2.push_back({100.0, 0.01 * i});
  const geom::Polyline coarse_then_fine(pts2);
  EXPECT_NEAR(coarse_then_fine.heading_at(50.0), 0.0, 1e-12);
  EXPECT_NEAR(coarse_then_fine.heading_at(101.5), kPi / 2.0, 1e-12);
  EXPECT_NEAR(coarse_then_fine.position_at(100.5).y, 0.5, 1e-12);
}

TEST(Polyline, ProjectionSignedLateral) {
  const geom::Polyline line({{0, 0}, {100, 0}});
  const auto left = line.project({50.0, 2.0});
  EXPECT_NEAR(left.s, 50.0, 1e-9);
  EXPECT_NEAR(left.lateral, 2.0, 1e-9);  // +left
  const auto right = line.project({50.0, -2.0});
  EXPECT_NEAR(right.lateral, -2.0, 1e-9);
}

TEST(Polyline, HintedProjectionMatchesFull) {
  // Build a curved (non-self-overlapping) arc and verify hinted projection
  // equals the full search.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 200; ++i) {
    const double t = i * 0.0075;  // 1.5 rad of arc
    pts.push_back({100.0 * std::sin(t), 100.0 * (1.0 - std::cos(t))});
  }
  const geom::Polyline line(pts);
  double hint = -1.0;
  for (double s = 5.0; s < line.length() - 5.0; s += 7.0) {
    const Vec2 p = line.position_at(s) + Vec2{0.1, 0.2};
    const auto full = line.project(p, -1.0);
    const auto hinted = line.project(p, hint);
    EXPECT_NEAR(full.s, hinted.s, 1e-6);
    EXPECT_NEAR(full.lateral, hinted.lateral, 1e-9);
    hint = hinted.s;
  }
}

TEST(Polyline, ProjectManySpansMatchSingleCalls) {
  const geom::Polyline line({{0, 0}, {40, 0}, {80, 10}, {120, 40}});
  const std::vector<Vec2> points{{10.0, 3.0}, {60.0, -2.0}, {118.0, 45.0}};
  const std::vector<double> hints{-1.0, 55.0, 0.0};
  std::vector<geom::Polyline::Projection> batch(points.size());
  line.project_many(points, hints, batch);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto single = line.project(points[i], hints[i]);
    EXPECT_EQ(batch[i].s, single.s);
    EXPECT_EQ(batch[i].lateral, single.lateral);
  }
}

TEST(Frenet, RoundTrip) {
  const geom::Polyline line({{0, 0}, {50, 0}, {100, 30}});
  geom::FrenetFrame frame(line);
  const geom::FrenetPoint f{40.0, 1.5};
  const Vec2 world = frame.to_world(f);
  const auto back = frame.to_frenet(world);
  EXPECT_NEAR(back.s, f.s, 1e-6);
  EXPECT_NEAR(back.d, f.d, 1e-6);
}

TEST(Frenet, CurvatureOfArc) {
  // Sample a circle of radius 200 -> curvature 1/200 (left turn).
  std::vector<Vec2> pts;
  const double radius = 200.0;
  for (int i = 0; i <= 400; ++i) {
    const double a = i * 0.005;
    pts.push_back({radius * std::sin(a), radius * (1.0 - std::cos(a))});
  }
  const geom::Polyline line(pts);
  geom::FrenetFrame frame(line);
  EXPECT_NEAR(frame.curvature_at(0.5 * line.length(), 5.0), 1.0 / radius,
              1e-4);
}

TEST(Frenet, StraightLineZeroCurvature) {
  const geom::Polyline line({{0, 0}, {1000, 0}});
  geom::FrenetFrame frame(line);
  EXPECT_NEAR(frame.curvature_at(500.0), 0.0, 1e-12);
}

TEST(Frenet, HintSurvivesTeleportingPoints) {
  // The frame caches the last projection as a hint. A point that jumps the
  // full length of a (non-folding) arc must still convert exactly: the
  // stale hint is invalidated by the widening retry, never trusted.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 2000; ++i) {
    const double t = i * 0.0005;  // 1 rad of a 1 km arc
    pts.push_back({1000.0 * std::sin(t), 1000.0 * (1.0 - std::cos(t))});
  }
  const geom::Polyline line(pts);
  geom::FrenetFrame frame(line);
  geom::FrenetFrame fresh(line);

  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform(1.0, line.length() - 1.0);
    const double d = rng.uniform(-4.0, 4.0);
    const Vec2 world = frame.to_world({s, d});
    const auto hinted = frame.to_frenet(world);   // hint: previous teleport
    const auto cold = fresh.reference().project(world, -1.0);
    EXPECT_EQ(hinted.s, cold.s) << "i=" << i;
    EXPECT_EQ(hinted.d, cold.lateral) << "i=" << i;
    EXPECT_EQ(frame.hint(), hinted.s);
  }
}

TEST(Frenet, AcceptMatchesToFrenet) {
  const geom::Polyline line({{0, 0}, {50, 0}, {100, 30}});
  geom::FrenetFrame via_accept(line);
  geom::FrenetFrame via_to_frenet(line);
  const Vec2 p{42.0, 1.2};
  const auto direct = via_to_frenet.to_frenet(p);
  const auto accepted =
      via_accept.accept(line.project(p, via_accept.hint()));
  EXPECT_EQ(accepted.s, direct.s);
  EXPECT_EQ(accepted.d, direct.d);
  EXPECT_EQ(via_accept.hint(), via_to_frenet.hint());
}

}  // namespace
