// Unit tests for scaa::attack (context inference, Table I rules,
// strategies, value corruption, CAN attacker) and scaa::panda.

#include <gtest/gtest.h>

#include "attack/can_attacker.hpp"
#include "attack/context.hpp"
#include "attack/context_table.hpp"
#include "attack/strategies.hpp"
#include "attack/value_corruption.hpp"
#include "panda/safety.hpp"
#include "util/units.hpp"

namespace {

using namespace scaa;
using attack::UnsafeAction;

attack::SafetyContext base_context() {
  attack::SafetyContext ctx;
  ctx.time = 10.0;
  ctx.speed = units::mph_to_ms(60.0);
  ctx.lead_valid = true;
  ctx.hwt = 3.5;
  ctx.rel_speed = 0.0;
  ctx.d_left = 1.0;
  ctx.d_right = 1.0;
  ctx.perception_valid = true;
  return ctx;
}

TEST(ContextInference, ComputesHwtAndRs) {
  msg::PubSubBus bus;
  attack::ContextInference inf(bus, 0.9);

  msg::GpsLocationExternal gps;
  gps.speed = 20.0;
  gps.has_fix = true;
  bus.publish(gps);

  msg::RadarState radar;
  radar.lead_valid = true;
  radar.lead_distance = 50.0;
  radar.lead_rel_speed = -5.0;  // lead 5 m/s slower
  bus.publish(radar);

  msg::ModelV2 model;
  model.left_lane_line = 1.5;
  model.right_lane_line = -2.2;
  model.left_line_prob = 0.9;
  model.right_line_prob = 0.9;
  bus.publish(model);

  const auto ctx = inf.infer(12.0);
  EXPECT_DOUBLE_EQ(ctx.time, 12.0);
  EXPECT_DOUBLE_EQ(ctx.speed, 20.0);
  EXPECT_TRUE(ctx.lead_valid);
  EXPECT_DOUBLE_EQ(ctx.hwt, 2.5);        // 50 / 20
  EXPECT_DOUBLE_EQ(ctx.rel_speed, 5.0);  // ego - lead (paper sign)
  EXPECT_DOUBLE_EQ(ctx.d_left, 1.5 - 0.9);
  EXPECT_DOUBLE_EQ(ctx.d_right, 2.2 - 0.9);
}

TEST(ContextInference, InvalidWithoutMessages) {
  msg::PubSubBus bus;
  attack::ContextInference inf(bus, 0.9);
  const auto ctx = inf.infer(1.0);
  EXPECT_FALSE(ctx.lead_valid);
  EXPECT_FALSE(ctx.perception_valid);
  EXPECT_GT(ctx.hwt, 1e8);
}

TEST(ContextTable, Rule1Acceleration) {
  const attack::ContextTable table{attack::ContextTableParams{}};
  auto ctx = base_context();
  ctx.hwt = 2.0;       // <= t_safe (2.5)
  ctx.rel_speed = 3.0; // closing
  EXPECT_TRUE(table.match(ctx).enabled(UnsafeAction::kAcceleration));
  ctx.rel_speed = -1.0;  // not closing -> rule 1 off
  EXPECT_FALSE(table.match(ctx).enabled(UnsafeAction::kAcceleration));
  ctx.rel_speed = 3.0;
  ctx.hwt = 3.0;  // headway too large
  EXPECT_FALSE(table.match(ctx).enabled(UnsafeAction::kAcceleration));
}

TEST(ContextTable, Rule2Deceleration) {
  const attack::ContextTable table{attack::ContextTableParams{}};
  auto ctx = base_context();
  ctx.hwt = 3.0;
  ctx.rel_speed = -1.0;
  EXPECT_TRUE(table.match(ctx).enabled(UnsafeAction::kDeceleration));
  // Missing lead counts as clear headway (the radar-dropout trigger).
  ctx.lead_valid = false;
  EXPECT_TRUE(table.match(ctx).enabled(UnsafeAction::kDeceleration));
  // Too slow -> off (beta1).
  ctx.speed = units::mph_to_ms(20.0);
  EXPECT_FALSE(table.match(ctx).enabled(UnsafeAction::kDeceleration));
}

TEST(ContextTable, Rules34Steering) {
  const attack::ContextTable table{attack::ContextTableParams{}};
  auto ctx = base_context();
  ctx.d_left = 0.05;
  EXPECT_TRUE(table.match(ctx).enabled(UnsafeAction::kSteerLeft));
  EXPECT_FALSE(table.match(ctx).enabled(UnsafeAction::kSteerRight));
  ctx.d_left = 1.0;
  ctx.d_right = 0.08;
  EXPECT_TRUE(table.match(ctx).enabled(UnsafeAction::kSteerRight));
  // Perception invalid -> no steering rules (longitudinal rules unaffected).
  ctx.perception_valid = false;
  EXPECT_FALSE(table.match(ctx).enabled(UnsafeAction::kSteerLeft));
  EXPECT_FALSE(table.match(ctx).enabled(UnsafeAction::kSteerRight));
}

TEST(ContextTable, TargetHazards) {
  using attack::HazardClass;
  EXPECT_EQ(attack::ContextTable::target_hazard(UnsafeAction::kAcceleration),
            HazardClass::kH1);
  EXPECT_EQ(attack::ContextTable::target_hazard(UnsafeAction::kDeceleration),
            HazardClass::kH2);
  EXPECT_EQ(attack::ContextTable::target_hazard(UnsafeAction::kSteerLeft),
            HazardClass::kH3);
  EXPECT_EQ(attack::ContextTable::target_hazard(UnsafeAction::kSteerRight),
            HazardClass::kH3);
}

TEST(Channels, MapMatchesTable2) {
  using attack::AttackType;
  EXPECT_TRUE(channels_of(AttackType::kAcceleration).accel);
  EXPECT_FALSE(channels_of(AttackType::kAcceleration).steer);
  EXPECT_TRUE(channels_of(AttackType::kDeceleration).brake);
  EXPECT_TRUE(channels_of(AttackType::kSteeringLeft).steer);
  EXPECT_TRUE(channels_of(AttackType::kAccelerationSteering).accel);
  EXPECT_TRUE(channels_of(AttackType::kAccelerationSteering).steer);
  EXPECT_TRUE(channels_of(AttackType::kDecelerationSteering).brake);
  EXPECT_TRUE(channels_of(AttackType::kDecelerationSteering).steer);
}

attack::StrategyParams params_for(attack::AttackType type) {
  attack::StrategyParams p;
  p.type = type;
  return p;
}

TEST(Strategies, RandomWindowRespectsBounds) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    auto strategy =
        make_strategy(attack::StrategyKind::kRandomStDur,
                      params_for(attack::AttackType::kAcceleration),
                      util::Rng(seed));
    const auto ctx = base_context();
    const attack::ContextMatch match{};
    double first_active = -1.0, last_active = -1.0;
    for (double t = 0.0; t < 50.0; t += 0.01) {
      if (strategy->decide(ctx, match, t).active) {
        if (first_active < 0.0) first_active = t;
        last_active = t;
      }
    }
    ASSERT_GE(first_active, 5.0);
    ASSERT_LE(first_active, 40.0);
    const double duration = last_active - first_active;
    ASSERT_GE(duration, 0.45);
    ASSERT_LE(duration, 2.55);
  }
}

TEST(Strategies, RandomStFixedDuration) {
  auto strategy = make_strategy(attack::StrategyKind::kRandomSt,
                                params_for(attack::AttackType::kDeceleration),
                                util::Rng(7));
  const auto ctx = base_context();
  const attack::ContextMatch match{};
  double first = -1.0, last = -1.0;
  for (double t = 0.0; t < 50.0; t += 0.01) {
    if (strategy->decide(ctx, match, t).active) {
      if (first < 0.0) first = t;
      last = t;
    }
  }
  EXPECT_NEAR(last - first, 2.5, 0.02);
}

TEST(Strategies, ForcedWindowHonored) {
  auto p = params_for(attack::AttackType::kAcceleration);
  p.forced_start = 12.0;
  p.forced_duration = 1.5;
  auto strategy = make_strategy(attack::StrategyKind::kRandomStDur, p,
                                util::Rng(3));
  const auto ctx = base_context();
  const attack::ContextMatch match{};
  EXPECT_FALSE(strategy->decide(ctx, match, 11.99).active);
  EXPECT_TRUE(strategy->decide(ctx, match, 12.01).active);
  EXPECT_TRUE(strategy->decide(ctx, match, 13.49).active);
  EXPECT_FALSE(strategy->decide(ctx, match, 13.51).active);
}

TEST(Strategies, ContextAwareWaitsForContext) {
  attack::ContextTable table{attack::ContextTableParams{}};
  auto strategy = make_strategy(attack::StrategyKind::kContextAware,
                                params_for(attack::AttackType::kAcceleration),
                                util::Rng(3));
  auto ctx = base_context();  // rule 1 not matched (hwt 3.5)
  EXPECT_FALSE(strategy->decide(ctx, table.match(ctx), 10.0).active);
  ctx.hwt = 2.0;
  ctx.rel_speed = 5.0;  // now matched
  EXPECT_TRUE(strategy->decide(ctx, table.match(ctx), 10.01).active);
  // Latched even after the context clears.
  ctx.hwt = 3.5;
  EXPECT_TRUE(strategy->decide(ctx, table.match(ctx), 10.02).active);
  EXPECT_NEAR(strategy->first_activation(), 10.01, 1e-9);
}

TEST(Strategies, ContextAwareRespectsWarmup) {
  attack::ContextTable table{attack::ContextTableParams{}};
  auto strategy = make_strategy(attack::StrategyKind::kContextAware,
                                params_for(attack::AttackType::kAcceleration),
                                util::Rng(3));
  auto ctx = base_context();
  ctx.hwt = 2.0;
  ctx.rel_speed = 5.0;
  EXPECT_FALSE(strategy->decide(ctx, table.match(ctx), 3.0).active);
  EXPECT_TRUE(strategy->decide(ctx, table.match(ctx), 5.5).active);
}

TEST(Strategies, StopsOnDriverEngagement) {
  attack::ContextTable table{attack::ContextTableParams{}};
  auto strategy = make_strategy(attack::StrategyKind::kContextAware,
                                params_for(attack::AttackType::kAcceleration),
                                util::Rng(3));
  auto ctx = base_context();
  ctx.hwt = 2.0;
  ctx.rel_speed = 5.0;
  EXPECT_TRUE(strategy->decide(ctx, table.match(ctx), 10.0).active);
  strategy->notify_driver_engaged(11.0);
  EXPECT_FALSE(strategy->decide(ctx, table.match(ctx), 11.01).active);
}

TEST(Strategies, SteeringDirectionFollowsContext) {
  attack::ContextTable table{attack::ContextTableParams{}};
  auto strategy = make_strategy(attack::StrategyKind::kContextAware,
                                params_for(attack::AttackType::kSteeringRight),
                                util::Rng(3));
  auto ctx = base_context();
  ctx.d_left = 0.05;  // LEFT edge context does not trigger a RIGHT attack
  EXPECT_FALSE(strategy->decide(ctx, table.match(ctx), 10.0).active);
  ctx.d_left = 1.0;
  ctx.d_right = 0.05;
  const auto d = strategy->decide(ctx, table.match(ctx), 10.01);
  EXPECT_TRUE(d.active);
  EXPECT_EQ(d.steer_direction, -1);
}

TEST(Corruption, FixedValuesAreOpenPilotMaxima) {
  attack::ValueCorruption vc(false, attack::CorruptionLimits::fixed(), 26.82);
  attack::ActivationDecision d;
  d.active = true;
  const auto accel =
      vc.compute(d, attack::AttackType::kAcceleration, 20.0, 0.01);
  EXPECT_DOUBLE_EQ(accel.accel_cmd.value(), 2.4);
  const auto brake =
      vc.compute(d, attack::AttackType::kDeceleration, 20.0, 0.01);
  EXPECT_DOUBLE_EQ(brake.accel_cmd.value(), -4.0);
  d.steer_direction = -1;
  const auto steer =
      vc.compute(d, attack::AttackType::kSteeringRight, 20.0, 0.01);
  EXPECT_DOUBLE_EQ(steer.steer_cmd.value(), -units::deg_to_rad(0.5));
  EXPECT_FALSE(steer.accel_cmd.has_value());
}

TEST(Corruption, StrategicSpeedConstraint) {
  // Eq. 1-3: the accel value tapers so predicted speed stays <= 1.1 cruise.
  const double cruise = 26.82;
  attack::ValueCorruption vc(true, attack::CorruptionLimits::strategic(),
                             cruise);
  attack::ActivationDecision d;
  d.active = true;
  // Warm the Kalman estimate at a speed just below the ceiling.
  double speed = 1.1 * cruise - 0.005;
  for (int i = 0; i < 50; ++i)
    vc.compute({}, attack::AttackType::kAcceleration, speed, 0.01);
  const auto v = vc.compute(d, attack::AttackType::kAcceleration, speed, 0.01);
  ASSERT_TRUE(v.accel_cmd.has_value());
  EXPECT_LT(*v.accel_cmd, 2.0);  // tapered below the limit
  EXPECT_GE(*v.accel_cmd, 0.0);
  // Predicted next-step speed respects the constraint.
  EXPECT_LE(vc.predicted_speed() + *v.accel_cmd * 0.01,
            1.1 * cruise + 1e-6);
}

TEST(Corruption, StrategicFullAccelWhenHeadroom) {
  attack::ValueCorruption vc(true, attack::CorruptionLimits::strategic(),
                             26.82);
  attack::ActivationDecision d;
  d.active = true;
  for (int i = 0; i < 50; ++i)
    vc.compute({}, attack::AttackType::kAcceleration, 20.0, 0.01);
  const auto v = vc.compute(d, attack::AttackType::kAcceleration, 20.0, 0.01);
  EXPECT_DOUBLE_EQ(v.accel_cmd.value(), 2.0);
}

TEST(Corruption, InactiveProducesNothing) {
  attack::ValueCorruption vc(true, attack::CorruptionLimits::strategic(),
                             26.82);
  const auto v =
      vc.compute({}, attack::AttackType::kAcceleration, 20.0, 0.01);
  EXPECT_FALSE(v.accel_cmd.has_value());
  EXPECT_FALSE(v.steer_cmd.has_value());
}

TEST(CanAttacker, CorruptsAndRepairsChecksum) {
  const auto db = can::Database::simulated_car();
  can::CanBus bus;
  attack::CanAttacker attacker(db);
  attacker.attach(bus);
  can::CanParser receiver(db);
  std::optional<can::CanParser::Parsed> last;
  bus.attach_receiver(
      [&](const can::CanFrame& f) { last = receiver.parse(f); });

  can::CanPacker packer(db);
  attack::AttackValues values;
  values.steer_cmd = units::deg_to_rad(-2.0);
  attacker.set_values(values);
  bus.send(packer.pack("STEERING_CONTROL",
                       {{can::sig::kSteerAngleCmd, 0.1},
                        {can::sig::kSteerEnabled, 1.0}}));
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(last->checksum_ok);  // integrity repaired (Fig. 4)
  EXPECT_TRUE(last->counter_ok);   // counter untouched
  EXPECT_NEAR(last->values.at(can::sig::kSteerAngleCmd), -2.0, 0.01);
  EXPECT_EQ(attacker.frames_corrupted(), 1u);
  EXPECT_NEAR(attacker.last_original_steer(), units::deg_to_rad(0.1), 1e-4);
}

TEST(CanAttacker, PassthroughWhenIdle) {
  const auto db = can::Database::simulated_car();
  can::CanBus bus;
  attack::CanAttacker attacker(db);
  attacker.attach(bus);
  can::CanParser receiver(db);
  double angle = 0.0;
  bus.attach_receiver([&](const can::CanFrame& f) {
    angle = receiver.parse(f)->values.at(can::sig::kSteerAngleCmd);
  });
  can::CanPacker packer(db);
  bus.send(packer.pack("STEERING_CONTROL",
                       {{can::sig::kSteerAngleCmd, 0.3},
                        {can::sig::kSteerEnabled, 1.0}}));
  EXPECT_NEAR(angle, 0.3, 0.01);
  EXPECT_EQ(attacker.frames_corrupted(), 0u);
}

TEST(CanAttacker, AccelCorruption) {
  const auto db = can::Database::simulated_car();
  can::CanBus bus;
  attack::CanAttacker attacker(db);
  attacker.attach(bus);
  can::CanParser receiver(db);
  std::optional<can::CanParser::Parsed> last;
  bus.attach_receiver(
      [&](const can::CanFrame& f) { last = receiver.parse(f); });
  attack::AttackValues values;
  values.accel_cmd = -3.5;
  attacker.set_values(values);
  can::CanPacker packer(db);
  bus.send(packer.pack("GAS_BRAKE_COMMAND",
                       {{can::sig::kAccelCmd, 0.5},
                        {can::sig::kBrakeRequest, 0.0}}));
  EXPECT_TRUE(last->checksum_ok);
  EXPECT_NEAR(last->values.at(can::sig::kAccelCmd), -3.5, 0.001);
  EXPECT_DOUBLE_EQ(last->values.at(can::sig::kBrakeRequest), 1.0);
}

// --- Panda firmware checks --------------------------------------------------

TEST(Panda, PassesLegitimateCommands) {
  const auto db = can::Database::simulated_car();
  panda::PandaSafety panda(db, panda::PandaLimits{});
  can::CanPacker packer(db);
  EXPECT_TRUE(panda.check(packer.pack("GAS_BRAKE_COMMAND",
                                      {{can::sig::kAccelCmd, 1.9}})));
  EXPECT_TRUE(panda.check(packer.pack("STEERING_CONTROL",
                                      {{can::sig::kSteerAngleCmd, 0.2}})));
  EXPECT_EQ(panda.stats().frames_blocked, 0u);
}

TEST(Panda, BlocksOutOfEnvelopeAccel) {
  const auto db = can::Database::simulated_car();
  panda::PandaSafety panda(db, panda::PandaLimits{});
  can::CanPacker packer(db);
  EXPECT_FALSE(panda.check(packer.pack("GAS_BRAKE_COMMAND",
                                       {{can::sig::kAccelCmd, 2.4}})));
  EXPECT_FALSE(panda.check(packer.pack("GAS_BRAKE_COMMAND",
                                       {{can::sig::kAccelCmd, -4.0}})));
  EXPECT_EQ(panda.stats().frames_blocked, 2u);
}

TEST(Panda, BlocksSteerRateViolation) {
  const auto db = can::Database::simulated_car();
  panda::PandaSafety panda(db, panda::PandaLimits{});
  can::CanPacker packer(db);
  EXPECT_TRUE(panda.check(packer.pack("STEERING_CONTROL",
                                      {{can::sig::kSteerAngleCmd, 0.0}})));
  // Jump of 0.7 deg in one frame exceeds the 0.5 deg rate limit.
  EXPECT_FALSE(panda.check(packer.pack("STEERING_CONTROL",
                                       {{can::sig::kSteerAngleCmd, 0.7}})));
}

TEST(Panda, BlocksBadChecksum) {
  const auto db = can::Database::simulated_car();
  panda::PandaSafety panda(db, panda::PandaLimits{});
  can::CanPacker packer(db);
  auto frame = packer.pack("GAS_BRAKE_COMMAND", {{can::sig::kAccelCmd, 1.0}});
  frame.data[0] ^= 0x01;  // tamper without repair
  EXPECT_FALSE(panda.check(frame));
  EXPECT_EQ(panda.stats().checksum_rejects, 1u);
}

TEST(Panda, StrategicValuesEvadeChecks) {
  // The point of Eq. 1: strategically corrupted longitudinal commands sit
  // inside the Panda envelope and sail through.
  const auto db = can::Database::simulated_car();
  panda::PandaSafety panda(db, panda::PandaLimits{});
  can::CanPacker packer(db);
  const auto limits = attack::CorruptionLimits::strategic();
  EXPECT_TRUE(panda.check(packer.pack(
      "GAS_BRAKE_COMMAND", {{can::sig::kAccelCmd, limits.accel}})));
  EXPECT_TRUE(panda.check(packer.pack(
      "GAS_BRAKE_COMMAND", {{can::sig::kAccelCmd, limits.brake}})));
}

}  // namespace
