// Unit tests for scaa::vehicle (longitudinal, lateral, integration).

#include <gtest/gtest.h>

#include <cmath>

#include "road/builder.hpp"
#include "vehicle/vehicle.hpp"

namespace {

using namespace scaa;

vehicle::VehicleParams params() { return vehicle::VehicleParams{}; }

TEST(Longitudinal, AcceleratesTowardCommand) {
  vehicle::LongitudinalDynamics dyn(params());
  dyn.reset(20.0);
  for (int i = 0; i < 300; ++i) dyn.step(2.0, 0.01);  // 3 s at +2
  // After several time constants the realized accel approaches the command.
  EXPECT_NEAR(dyn.accel(), 2.0, 0.1);
  EXPECT_GT(dyn.speed(), 24.0);
}

TEST(Longitudinal, BrakesAndStops) {
  vehicle::LongitudinalDynamics dyn(params());
  dyn.reset(5.0);
  for (int i = 0; i < 1000; ++i) dyn.step(-4.0, 0.01);
  EXPECT_DOUBLE_EQ(dyn.speed(), 0.0);  // no reverse
}

TEST(Longitudinal, CommandClippedToCapability) {
  vehicle::VehicleParams p = params();
  p.max_engine_accel = 3.0;
  vehicle::LongitudinalDynamics dyn(p);
  dyn.reset(10.0);
  for (int i = 0; i < 200; ++i) dyn.step(50.0, 0.01);
  EXPECT_LE(dyn.accel(), 3.0 + 1e-9);
}

TEST(Longitudinal, CoastingDeceleratesFromDrag) {
  vehicle::LongitudinalDynamics dyn(params());
  dyn.reset(30.0);
  for (int i = 0; i < 100; ++i) dyn.step(0.0, 0.01);
  EXPECT_LT(dyn.speed(), 30.0);  // drag + rolling resistance bite
}

TEST(Lateral, TracksCommandThroughLag) {
  vehicle::LateralDynamics lat(params());
  for (int i = 0; i < 200; ++i) lat.step(0.01, 0.01);
  EXPECT_NEAR(lat.steer_angle(), 0.01, 1e-3);
}

TEST(Lateral, SlewRateLimited) {
  vehicle::VehicleParams p = params();
  p.max_steer_rate = 0.1;  // rad/s
  p.steer_time_constant = 1e-6;  // isolate the slew limit
  vehicle::LateralDynamics lat(p);
  lat.step(1.0, 0.01);
  EXPECT_NEAR(lat.steer_angle(), 0.001, 1e-9);  // 0.1 rad/s * 0.01 s
}

TEST(Lateral, AngleClipped) {
  vehicle::VehicleParams p = params();
  p.max_steer_angle = 0.2;
  vehicle::LateralDynamics lat(p);
  for (int i = 0; i < 2000; ++i) lat.step(1.0, 0.01);
  EXPECT_LE(std::abs(lat.steer_angle()), 0.2 + 1e-9);
}

TEST(Lateral, YawRateKinematics) {
  vehicle::LateralDynamics lat(params());
  for (int i = 0; i < 500; ++i) lat.step(0.02, 0.01);
  const double expected = 20.0 / params().wheelbase * std::tan(lat.steer_angle());
  EXPECT_NEAR(lat.yaw_rate(20.0), expected, 1e-12);
}

TEST(Vehicle, DrivesStraightAtConstantSpeed) {
  const auto road = road::RoadBuilder::paper_road();
  vehicle::Vehicle car(road, params(), 30.0, -1.85, 20.0);
  for (int i = 0; i < 500; ++i) car.step({0.35, 0.0}, 0.01);  // hold ~speed
  // On the straight lead-in the lateral offset holds.
  EXPECT_NEAR(car.state().d, -1.85, 0.01);
  EXPECT_GT(car.state().s, 120.0);
}

TEST(Vehicle, SteeringMovesLeft) {
  const auto road = road::RoadBuilder::paper_road();
  vehicle::Vehicle car(road, params(), 30.0, -1.85, 20.0);
  for (int i = 0; i < 150; ++i) car.step({0.35, 0.01}, 0.01);  // steer left
  EXPECT_GT(car.state().d, -1.80);
}

TEST(Vehicle, SteeringMovesRight) {
  const auto road = road::RoadBuilder::paper_road();
  vehicle::Vehicle car(road, params(), 30.0, -1.85, 20.0);
  for (int i = 0; i < 150; ++i) car.step({0.35, -0.01}, 0.01);
  EXPECT_LT(car.state().d, -1.90);
}

TEST(Vehicle, BumperGap) {
  const auto road = road::RoadBuilder::paper_road();
  const auto p = params();
  vehicle::Vehicle follower(road, p, 30.0, -1.85, 20.0);
  vehicle::Vehicle lead(road, p, 130.0 + p.length, -1.85, 20.0);
  EXPECT_NEAR(vehicle::bumper_gap(follower.state(), p, lead.state(), p), 100.0,
              1e-6);
}

TEST(Vehicle, SetSpeedResetsDynamics) {
  const auto road = road::RoadBuilder::paper_road();
  vehicle::Vehicle car(road, params(), 30.0, -1.85, 30.0);
  car.set_speed(5.0);
  EXPECT_DOUBLE_EQ(car.state().speed, 5.0);
}

TEST(Vehicle, EnergyConsistency) {
  // Distance covered at constant commanded accel ~ matches kinematics.
  const auto road = road::RoadBuilder::paper_road();
  vehicle::Vehicle car(road, params(), 30.0, -1.85, 10.0);
  const double s0 = car.state().s;
  for (int i = 0; i < 500; ++i) car.step({1.0, 0.0}, 0.01);  // 5 s
  const double ds = car.state().s - s0;
  // v0*t + 0.5*a_eff*t^2 with a_eff <= 1.0 (lag); bounded sanity window.
  EXPECT_GT(ds, 10.0 * 5.0);
  EXPECT_LT(ds, 10.0 * 5.0 + 0.5 * 1.0 * 25.0 + 1.0);
}

}  // namespace
