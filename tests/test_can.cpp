// Unit tests for scaa::can (signals, checksums, packer/parser, bus).

#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "can/checksum.hpp"
#include "can/database.hpp"
#include "can/packer.hpp"

namespace {

using namespace scaa;

TEST(DbcSignal, LittleEndianRoundTrip) {
  can::DbcSignal sig{"X", 0, 12, can::ByteOrder::kLittleEndian, false, 1.0,
                     0.0};
  std::array<std::uint8_t, 8> data{};
  sig.insert_raw(data, 0xABC);
  EXPECT_EQ(sig.extract_raw(data), 0xABC);
}

TEST(DbcSignal, BigEndianRoundTrip) {
  can::DbcSignal sig{"X", 7, 16, can::ByteOrder::kBigEndian, false, 1.0, 0.0};
  std::array<std::uint8_t, 8> data{};
  sig.insert_raw(data, 0x1234);
  EXPECT_EQ(data[0], 0x12);  // Motorola: MSB first
  EXPECT_EQ(data[1], 0x34);
  EXPECT_EQ(sig.extract_raw(data), 0x1234);
}

TEST(DbcSignal, SignedValues) {
  can::DbcSignal sig{"X", 7, 16, can::ByteOrder::kBigEndian, true, 1.0, 0.0};
  std::array<std::uint8_t, 8> data{};
  sig.insert_raw(data, -1234);
  EXPECT_EQ(sig.extract_raw(data), -1234);
  sig.insert_raw(data, 1234);
  EXPECT_EQ(sig.extract_raw(data), 1234);
}

TEST(DbcSignal, ScaleAndOffset) {
  can::DbcSignal sig{"X", 7, 16, can::ByteOrder::kBigEndian, true, 0.01, 0.0};
  std::array<std::uint8_t, 8> data{};
  sig.encode(data, -4.0);
  EXPECT_NEAR(sig.decode(data), -4.0, 0.005);
  sig.encode(data, 2.37);
  EXPECT_NEAR(sig.decode(data), 2.37, 0.005);
}

TEST(DbcSignal, EncodeClampsToRange) {
  can::DbcSignal sig{"X", 7, 8, can::ByteOrder::kBigEndian, false, 1.0, 0.0};
  std::array<std::uint8_t, 8> data{};
  sig.encode(data, 9999.0);
  EXPECT_EQ(sig.extract_raw(data), 255);
  sig.encode(data, -5.0);
  EXPECT_EQ(sig.extract_raw(data), 0);
}

TEST(DbcSignal, PhysicalRange) {
  can::DbcSignal sig{"X", 7, 8, can::ByteOrder::kBigEndian, true, 0.5, 10.0};
  EXPECT_DOUBLE_EQ(sig.min_physical(), 10.0 - 64.0);
  EXPECT_DOUBLE_EQ(sig.max_physical(), 10.0 + 63.5);
}

TEST(DbcSignal, NonOverlappingSignals) {
  // Two adjacent big-endian signals must not clobber each other.
  can::DbcSignal a{"A", 7, 16, can::ByteOrder::kBigEndian, true, 1.0, 0.0};
  can::DbcSignal b{"B", 23, 8, can::ByteOrder::kBigEndian, false, 1.0, 0.0};
  std::array<std::uint8_t, 8> data{};
  a.insert_raw(data, -42);
  b.insert_raw(data, 99);
  EXPECT_EQ(a.extract_raw(data), -42);
  EXPECT_EQ(b.extract_raw(data), 99);
}

TEST(Checksum, RoundTrip) {
  can::CanFrame frame;
  frame.id = 0xE4;
  frame.dlc = 5;
  frame.data = {0x12, 0x34, 0x56, 0x78, 0x00};
  can::apply_honda_checksum(frame);
  EXPECT_TRUE(can::verify_honda_checksum(frame));
}

TEST(Checksum, DetectsCorruption) {
  can::CanFrame frame;
  frame.id = 0xE4;
  frame.dlc = 5;
  frame.data = {0x12, 0x34, 0x56, 0x78, 0x00};
  can::apply_honda_checksum(frame);
  frame.data[1] ^= 0x10;  // tamper without checksum repair
  EXPECT_FALSE(can::verify_honda_checksum(frame));
}

TEST(Checksum, RepairAfterCorruptionValidates) {
  // The attacker's move (paper Fig. 4): corrupt, then re-checksum.
  can::CanFrame frame;
  frame.id = 0xE4;
  frame.dlc = 5;
  frame.data = {0x12, 0x34, 0x56, 0x78, 0x00};
  can::apply_honda_checksum(frame);
  frame.data[1] ^= 0x10;
  can::apply_honda_checksum(frame);
  EXPECT_TRUE(can::verify_honda_checksum(frame));
}

TEST(Checksum, CounterFieldIndependent) {
  can::CanFrame frame;
  frame.id = 0x1FA;
  frame.dlc = 6;
  can::write_counter(frame, 2);
  can::apply_honda_checksum(frame);
  EXPECT_EQ(can::read_counter(frame), 2);
  EXPECT_TRUE(can::verify_honda_checksum(frame));
  // Changing the counter invalidates the checksum (it is covered).
  can::write_counter(frame, 3);
  EXPECT_FALSE(can::verify_honda_checksum(frame));
}

TEST(Database, SimulatedCarLookup) {
  const auto db = can::Database::simulated_car();
  ASSERT_NE(db.by_id(can::msg_id::kSteeringControl), nullptr);
  EXPECT_EQ(db.by_id(can::msg_id::kSteeringControl)->name,
            "STEERING_CONTROL");
  ASSERT_NE(db.by_name("GAS_BRAKE_COMMAND"), nullptr);
  EXPECT_EQ(db.by_name("GAS_BRAKE_COMMAND")->id, can::msg_id::kGasBrakeCommand);
  EXPECT_EQ(db.by_id(0x999), nullptr);
  EXPECT_EQ(db.by_name("NOPE"), nullptr);
}

TEST(Packer, RoundTripThroughParser) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);
  const auto frame = packer.pack("STEERING_CONTROL",
                                 {{can::sig::kSteerAngleCmd, -0.42},
                                  {can::sig::kSteerEnabled, 1.0}});
  const auto parsed = parser.parse(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->checksum_ok);
  EXPECT_NEAR(parsed->values.at(can::sig::kSteerAngleCmd), -0.42, 0.005);
  EXPECT_DOUBLE_EQ(parsed->values.at(can::sig::kSteerEnabled), 1.0);
}

TEST(Packer, UnknownNamesThrow) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  EXPECT_THROW(packer.pack("NOPE", {}), std::invalid_argument);
  EXPECT_THROW(packer.pack("STEERING_CONTROL", {{"NOPE", 1.0}}),
               std::invalid_argument);
}

TEST(Packer, CounterAdvances) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  std::uint8_t last = can::read_counter(packer.pack("SPEED", {}));
  for (int i = 0; i < 8; ++i) {
    const auto frame = packer.pack("SPEED", {});
    const auto counter = can::read_counter(frame);
    EXPECT_EQ(counter, (last + 1) & 0x3);
    last = counter;
  }
}

TEST(Parser, CounterContinuityTracked) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);
  parser.parse(packer.pack("SPEED", {}));
  packer.pack("SPEED", {});  // skipped frame -> discontinuity
  const auto parsed = parser.parse(packer.pack("SPEED", {}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->counter_ok);
  EXPECT_EQ(parser.counter_errors(), 1u);
}

TEST(Parser, UnknownIdReturnsNullopt) {
  const auto db = can::Database::simulated_car();
  can::CanParser parser(db);
  can::CanFrame frame;
  frame.id = 0x777;
  EXPECT_FALSE(parser.parse(frame).has_value());
}

TEST(Bus, DeliveryOrderAndCounts) {
  can::CanBus bus;
  std::vector<std::uint32_t> seen;
  bus.attach_receiver([&](const can::CanFrame& f) { seen.push_back(f.id); });
  bus.send({.id = 1});
  bus.send({.id = 2});
  bus.send({.id = 3});
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(bus.frames_sent(), 3u);
}

TEST(Bus, InterceptorModifiesInFlight) {
  can::CanBus bus;
  bus.attach_interceptor([](can::CanFrame& f) {
    f.data[0] = 0xFF;
    return true;
  });
  can::CanFrame out;
  bus.attach_receiver([&](const can::CanFrame& f) { out = f; });
  bus.send({.id = 0xE4});
  EXPECT_EQ(out.data[0], 0xFF);
}

TEST(Bus, InterceptorCanDrop) {
  can::CanBus bus;
  bus.attach_interceptor([](can::CanFrame& f) { return f.id != 0xBAD; });
  int received = 0;
  bus.attach_receiver([&](const can::CanFrame&) { ++received; });
  EXPECT_TRUE(bus.send({.id = 0x1}));
  EXPECT_FALSE(bus.send({.id = 0xBAD}));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.frames_dropped(), 1u);
}

TEST(Bus, TapSeesPostInterception) {
  can::CanBus bus;
  bus.attach_interceptor([](can::CanFrame& f) {
    f.data[0] = 0x42;
    return true;
  });
  std::uint8_t tapped = 0;
  bus.attach_tap([&](const can::CanFrame& f) { tapped = f.data[0]; });
  bus.send({.id = 0xE4});
  EXPECT_EQ(tapped, 0x42);
}

TEST(Bus, DetachStopsCallbacks) {
  can::CanBus bus;
  int taps = 0;
  const auto id = bus.attach_tap([&](const can::CanFrame&) { ++taps; });
  bus.send({.id = 1});
  bus.detach(id);
  bus.send({.id = 1});
  EXPECT_EQ(taps, 1);
}

TEST(Bus, ToStringFormat) {
  can::CanFrame f;
  f.id = 0xE4;
  f.dlc = 2;
  f.data = {0xAB, 0xCD};
  EXPECT_EQ(can::to_string(f), "0E4#2/ABCD");
}

}  // namespace
