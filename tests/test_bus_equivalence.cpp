// Differential suite for the zero-copy bus refactor (suite name
// BusEquivalence — CI runs it by name under ASan/UBSan before the full
// matrix): typed fast-path delivery must be bit-identical to the
// historical decode(serialize(m)) round trip, the lazy raw path must emit
// byte-identical frames with gap-free sequence numbers no matter when the
// tap attaches, and the steady-state publish path must never touch the
// heap (counting operator new, as in test_codec).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "cli/campaigns.hpp"
#include "msg/bus.hpp"
#include "util/alloc_counter.hpp"

namespace {

using namespace scaa;

// Bit-level equality: the typed path must preserve NaN payloads and -0.0,
// not just numeric equality.
void expect_bits_eq(double a, double b, const char* field) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << field;
}

// Messages with adversarial payloads: negative zero, denormals, infinities
// and a signaling-pattern NaN — everything the exact IEEE-754 codec is
// documented to round-trip bit-for-bit.
msg::GpsLocationExternal tricky_gps() {
  msg::GpsLocationExternal m;
  m.mono_time = 0xFFFF'FFFF'FFFF'FFFFull;
  m.latitude = -0.0;
  m.longitude = std::numeric_limits<double>::denorm_min();
  m.speed = std::numeric_limits<double>::infinity();
  m.bearing = std::bit_cast<double>(0x7FF4'0000'0000'0001ull);  // sNaN bits
  m.has_fix = true;
  return m;
}

msg::CarState tricky_car_state() {
  msg::CarState m;
  m.mono_time = 1;
  m.speed = 26.8224;
  m.accel = -1e-308;
  m.steer_angle = std::numeric_limits<double>::quiet_NaN();
  m.cruise_speed = std::numeric_limits<double>::max();
  m.cruise_enabled = true;
  m.driver_torque = -0.0;
  return m;
}

template <typename M>
M wire_round_trip(const M& m) {
  M out{};
  msg::deserialize(msg::serialize(m), out);
  return out;
}

TEST(BusEquivalence, WireSizesAreExact) {
  EXPECT_EQ(msg::serialize(msg::GpsLocationExternal{}).size(),
            msg::WireSizeOf<msg::GpsLocationExternal>::value);
  EXPECT_EQ(msg::serialize(msg::ModelV2{}).size(),
            msg::WireSizeOf<msg::ModelV2>::value);
  EXPECT_EQ(msg::serialize(msg::RadarState{}).size(),
            msg::WireSizeOf<msg::RadarState>::value);
  EXPECT_EQ(msg::serialize(msg::CarState{}).size(),
            msg::WireSizeOf<msg::CarState>::value);
  EXPECT_EQ(msg::serialize(msg::CarControl{}).size(),
            msg::WireSizeOf<msg::CarControl>::value);
  EXPECT_EQ(msg::serialize(msg::ControlsState{}).size(),
            msg::WireSizeOf<msg::ControlsState>::value);
}

TEST(BusEquivalence, TypedDeliveryBitIdenticalToWireRoundTrip) {
  // The typed fast path hands the struct through by reference; the old bus
  // delivered decode(serialize(m)). Both must agree to 0 ulp — including
  // NaN bit patterns, which compare unequal numerically.
  msg::PubSubBus bus;
  msg::GpsLocationExternal got_gps;
  msg::CarState got_cs;
  bus.subscribe<msg::GpsLocationExternal>(
      [&](const msg::GpsLocationExternal& m) { got_gps = m; });
  bus.subscribe<msg::CarState>([&](const msg::CarState& m) { got_cs = m; });

  const auto gps = tricky_gps();
  const auto cs = tricky_car_state();
  bus.publish(gps);
  bus.publish(cs);

  const auto legacy_gps = wire_round_trip(gps);
  EXPECT_EQ(got_gps.mono_time, legacy_gps.mono_time);
  expect_bits_eq(got_gps.latitude, legacy_gps.latitude, "latitude");
  expect_bits_eq(got_gps.longitude, legacy_gps.longitude, "longitude");
  expect_bits_eq(got_gps.speed, legacy_gps.speed, "speed");
  expect_bits_eq(got_gps.bearing, legacy_gps.bearing, "bearing");
  EXPECT_EQ(got_gps.has_fix, legacy_gps.has_fix);

  const auto legacy_cs = wire_round_trip(cs);
  EXPECT_EQ(got_cs.mono_time, legacy_cs.mono_time);
  expect_bits_eq(got_cs.speed, legacy_cs.speed, "speed");
  expect_bits_eq(got_cs.accel, legacy_cs.accel, "accel");
  expect_bits_eq(got_cs.steer_angle, legacy_cs.steer_angle, "steer_angle");
  expect_bits_eq(got_cs.cruise_speed, legacy_cs.cruise_speed,
                 "cruise_speed");
  EXPECT_EQ(got_cs.cruise_enabled, legacy_cs.cruise_enabled);
  expect_bits_eq(got_cs.driver_torque, legacy_cs.driver_torque,
                 "driver_torque");
}

TEST(BusEquivalence, RawFramesMatchEagerSerializationExactly) {
  // What the eavesdropper sees on the lazy path must be byte-identical to
  // the old always-serialize bus, i.e. exactly serialize(m).
  msg::PubSubBus bus;
  std::vector<std::vector<std::uint8_t>> frames;
  bus.subscribe_raw(msg::Topic::kGpsLocationExternal,
                    [&](const msg::WireFrame& f) {
                      frames.emplace_back(f.payload.begin(),
                                          f.payload.end());
                    });
  const auto gps = tricky_gps();
  bus.publish(gps);
  msg::GpsLocationExternal plain;
  plain.speed = 13.5;
  bus.publish(plain);

  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], msg::serialize(gps));
  EXPECT_EQ(frames[1], msg::serialize(plain));
}

TEST(BusEquivalence, FramesIdenticalWithAndWithoutOtherSubscribers) {
  // The bytes a raw subscriber sees must not depend on who else is
  // attached — typed subscribers or additional raw taps.
  msg::PubSubBus lone, crowded;
  std::vector<std::vector<std::uint8_t>> lone_frames, crowded_frames;
  std::vector<std::uint64_t> lone_seqs, crowded_seqs;
  lone.subscribe_raw(msg::Topic::kRadarState, [&](const msg::WireFrame& f) {
    lone_frames.emplace_back(f.payload.begin(), f.payload.end());
    lone_seqs.push_back(f.sequence);
  });
  msg::Latest<msg::RadarState> latest(crowded);
  crowded.subscribe_raw(msg::Topic::kRadarState,
                        [](const msg::WireFrame&) {});
  crowded.subscribe_raw(msg::Topic::kRadarState,
                        [&](const msg::WireFrame& f) {
                          crowded_frames.emplace_back(f.payload.begin(),
                                                      f.payload.end());
                          crowded_seqs.push_back(f.sequence);
                        });

  for (int i = 0; i < 16; ++i) {
    msg::RadarState m;
    m.mono_time = static_cast<std::uint64_t>(i);
    m.lead_valid = i % 2 == 0;
    m.lead_distance = 40.0 + 0.25 * i;
    m.lead_rel_speed = -0.5 * i;
    m.lead_speed = 20.0 - 0.125 * i;
    lone.publish(m);
    crowded.publish(m);
  }
  EXPECT_EQ(lone_frames, crowded_frames);
  EXPECT_EQ(lone_seqs, crowded_seqs);
  EXPECT_EQ(latest.updates(), 16u);
}

TEST(BusEquivalence, MidRunTapStartsWithGapFreeSequences) {
  // Sequence numbers advance on every publish even while nothing is
  // serialized, so an eavesdropper attaching mid-drive sees the same
  // numbering it would have on the old eager bus.
  msg::PubSubBus bus;
  msg::Latest<msg::CarControl> latest(bus);
  for (int i = 0; i < 5; ++i) bus.publish(msg::CarControl{});
  EXPECT_EQ(bus.published_count(msg::Topic::kCarControl), 5u);

  std::vector<std::uint64_t> seqs;
  bus.subscribe_raw(msg::Topic::kCarControl, [&](const msg::WireFrame& f) {
    seqs.push_back(f.sequence);
  });
  for (int i = 0; i < 3; ++i) bus.publish(msg::CarControl{});
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{6, 7, 8}));
  EXPECT_EQ(bus.published_count(msg::Topic::kCarControl), 8u);
}

TEST(BusEquivalence, CountsUnchangedAcrossRefactor) {
  msg::PubSubBus bus;
  EXPECT_EQ(bus.subscriber_count(msg::Topic::kModelV2), 0u);
  EXPECT_EQ(bus.published_count(msg::Topic::kModelV2), 0u);

  const auto a = bus.subscribe<msg::ModelV2>([](const msg::ModelV2&) {});
  const auto b =
      bus.subscribe_raw(msg::Topic::kModelV2, [](const msg::WireFrame&) {});
  msg::Latest<msg::ModelV2> latest(bus);
  EXPECT_EQ(bus.subscriber_count(msg::Topic::kModelV2), 3u);
  EXPECT_EQ(bus.subscriber_count(msg::Topic::kCarState), 0u);

  bus.publish(msg::ModelV2{});
  bus.publish(msg::ModelV2{});
  EXPECT_EQ(bus.published_count(msg::Topic::kModelV2), 2u);

  bus.unsubscribe(a);
  bus.unsubscribe(b);
  EXPECT_EQ(bus.subscriber_count(msg::Topic::kModelV2), 1u);
  bus.unsubscribe(a);  // idempotent
  EXPECT_EQ(bus.subscriber_count(msg::Topic::kModelV2), 1u);

  // Unsubscribing mid-dispatch must be reflected by subscriber_count
  // immediately (the entry is dead even before the sweep).
  bus.subscribe<msg::ModelV2>([&](const msg::ModelV2&) {
    bus.unsubscribe(latest.subscription_id());
    EXPECT_EQ(bus.subscriber_count(msg::Topic::kModelV2), 1u);
  });
  bus.publish(msg::ModelV2{});
  EXPECT_EQ(bus.subscriber_count(msg::Topic::kModelV2), 1u);
}

TEST(BusEquivalence, InvalidTopicsAreRejectedOrZero) {
  msg::PubSubBus bus;
  const auto bogus = static_cast<msg::Topic>(99);
  EXPECT_THROW(bus.subscribe_raw(bogus, [](const msg::WireFrame&) {}),
               std::invalid_argument);
  EXPECT_EQ(bus.published_count(bogus), 0u);
  EXPECT_EQ(bus.subscriber_count(bogus), 0u);
}

TEST(BusEquivalence, NestedSameTopicPublishKeepsOuterFrameIntact) {
  // A raw handler that re-publishes on the same topic (a replay tap) must
  // not clobber the scratch bytes later subscribers of the OUTER frame are
  // about to read — the nested publish serializes into a local buffer.
  msg::PubSubBus bus;
  bool reentered = false;
  bus.subscribe_raw(msg::Topic::kCarControl, [&](const msg::WireFrame&) {
    if (reentered) return;
    reentered = true;
    msg::CarControl inner;
    inner.accel = -9.0;
    inner.steer_angle = 0.5;
    bus.publish(inner);
  });
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> seen;
  bus.subscribe_raw(msg::Topic::kCarControl, [&](const msg::WireFrame& f) {
    seen.emplace_back(f.sequence, std::vector<std::uint8_t>(
                                      f.payload.begin(), f.payload.end()));
  });

  msg::CarControl outer;
  outer.enabled = true;
  outer.accel = 1.25;
  bus.publish(outer);

  msg::CarControl inner;
  inner.accel = -9.0;
  inner.steer_angle = 0.5;
  // Delivery order: the nested frame (seq 2) completes its fan-out inside
  // the first subscriber, then the outer frame (seq 1) reaches the second
  // subscriber — with its own bytes, not the nested message's.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 2u);
  EXPECT_EQ(seen[0].second, msg::serialize(inner));
  EXPECT_EQ(seen[1].first, 1u);
  EXPECT_EQ(seen[1].second, msg::serialize(outer));
}

// --- zero-allocation proofs (process-wide counting operator new) ----------
// Both tests drive cli::bus_tick_workload — the exact steady-state publish
// mix behind the bench_step bus_publish_* rows and BENCH_table4.json's
// PubSubBus::publish row — so the zero-alloc proof covers the workload
// the benchmarks measure.

TEST(BusEquivalence, TypedPublishDoesNotAllocate) {
  msg::PubSubBus bus;
  // The production subscriber set: typed latches on every topic (the
  // attacker's three + the control stack's).
  msg::Latest<msg::GpsLocationExternal> gps(bus);
  msg::Latest<msg::ModelV2> model(bus);
  msg::Latest<msg::RadarState> radar(bus);
  msg::Latest<msg::CarState> cs(bus);
  msg::Latest<msg::CarControl> cc(bus);
  msg::Latest<msg::ControlsState> st(bus);

  const auto pub = [&bus](const auto& m) { bus.publish(m); };
  cli::bus_tick_workload(16, pub);  // warm up

  const std::uint64_t before =
      util::g_allocation_count.load(std::memory_order_relaxed);
  cli::bus_tick_workload(5000, pub);
  const std::uint64_t after =
      util::g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "typed publish path hit the heap";
  EXPECT_EQ(cs.updates(), 5016u);
  EXPECT_EQ(radar.updates(), 1004u);
}

TEST(BusEquivalence, TappedSteadyStateDoesNotAllocate) {
  // With a raw tap attached, each publish serializes — but into the
  // per-topic scratch buffer, which after warm-up never reallocates.
  msg::PubSubBus bus;
  msg::Latest<msg::CarState> cs(bus);
  std::uint64_t byte_sum = 0;
  std::uint64_t frames = 0;
  for (std::size_t i = 1; i <= msg::kTopicCount; ++i) {
    bus.subscribe_raw(static_cast<msg::Topic>(i),
                      [&](const msg::WireFrame& f) {
                        ++frames;
                        for (const std::uint8_t b : f.payload) byte_sum += b;
                      });
  }

  const auto pub = [&bus](const auto& m) { bus.publish(m); };
  cli::bus_tick_workload(16, pub);  // warm up

  const std::uint64_t before =
      util::g_allocation_count.load(std::memory_order_relaxed);
  cli::bus_tick_workload(5000, pub);
  const std::uint64_t after =
      util::g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "tapped publish path hit the heap";
  EXPECT_GT(byte_sum, 0u);
  EXPECT_EQ(frames,
            cli::bus_tick_workload_count(16) +
                cli::bus_tick_workload_count(5000));
}

}  // namespace
