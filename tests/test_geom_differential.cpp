// Differential / property suite for the Polyline projection kernel.
//
// The fast SoA kernel (Polyline::project / project_many) is compared
// against an independent brute-force all-segments reference implemented
// here, over randomized polylines — uniform and jittered spacing, hairpins,
// near-duplicate-length segments — and thousands of query points, including
// off-end points and stale-hint recovery. The contract under test: the
// fast kernel matches the reference to <= 1 ulp in s and lateral (in
// practice bit-exactly: the winning segment's projection is evaluated with
// the reference's arithmetic), so geometry kernels can keep being rewritten
// for speed without re-baselining the Monte-Carlo campaigns.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "geom/frenet.hpp"
#include "geom/polyline.hpp"
#include "util/rng.hpp"

namespace {

using namespace scaa;
using geom::Polyline;
using geom::Vec2;

// --- oracle -----------------------------------------------------------------

/// Brute-force projection written independently of src/geom (the historical
/// scalar algorithm): scan every segment, divide by the squared length,
/// first-wins on ties. Polyline::project_reference must match this bitwise.
/// `interior` records whether the winning foot point is strictly inside its
/// segment: there the nearest segment is unique and the fast kernel must
/// agree to <= 1 ulp in s AND lateral; a clamped foot (a shared vertex) can
/// be reached through either adjoining segment at sub-ulp-equal distance,
/// so only s and the closest point are comparable — the lateral's sign
/// convention depends on which segment's tangent won the tie.
struct OracleResult {
  Polyline::Projection proj;
  bool interior = false;
};

OracleResult oracle_project(const std::vector<Vec2>& pts, Vec2 p) {
  std::vector<double> cum(pts.size(), 0.0);
  for (std::size_t i = 1; i < pts.size(); ++i)
    cum[i] = cum[i - 1] + (pts[i] - pts[i - 1]).norm();

  OracleResult best;
  double best_dist_sq = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const Vec2 a = pts[i];
    const Vec2 ab = pts[i + 1] - a;
    const double len_sq = ab.norm_sq();
    double t = (p - a).dot(ab) / len_sq;
    t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
    const Vec2 c = a + ab * t;
    const double d_sq = (p - c).norm_sq();
    if (d_sq < best_dist_sq) {
      best_dist_sq = d_sq;
      best.proj.closest = c;
      best.proj.s = cum[i] + std::sqrt(len_sq) * t;
      best.proj.lateral = ab.normalized().cross(p - c);
      best.interior = t > 0.0 && t < 1.0;
    }
  }
  return best;
}

/// Saturating ulp distance via nextafter steps (no bit tricks, no UB).
int ulp_distance(double a, double b, int cap = 8) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) return cap;
  double lo = std::min(a, b);
  const double hi = std::max(a, b);
  int n = 0;
  while (lo < hi && n < cap) {
    lo = std::nextafter(lo, hi);
    ++n;
  }
  return n;
}

void expect_projection_close(Vec2 p, const Polyline::Projection& got,
                             const OracleResult& want, const char* what) {
  EXPECT_LE(ulp_distance(got.s, want.proj.s), 1)
      << what << ": s " << got.s << " vs " << want.proj.s;
  EXPECT_LE(ulp_distance(got.closest.x, want.proj.closest.x), 1) << what;
  EXPECT_LE(ulp_distance(got.closest.y, want.proj.closest.y), 1) << what;
  if (want.interior) {
    EXPECT_LE(ulp_distance(got.lateral, want.proj.lateral), 1)
        << what << ": lateral " << got.lateral << " vs " << want.proj.lateral;
  } else {
    // Vertex-clamped winner: the tangent (and so the lateral's sign and
    // obliquity) is tie-dependent, but |lateral| = |tangent x (p - c)| can
    // never exceed the point-to-vertex distance.
    EXPECT_LE(std::abs(got.lateral), (p - got.closest).norm() + 1e-9)
        << what;
  }
}

// --- polyline generators ----------------------------------------------------

/// Random curve with jittered spacing and bounded heading drift (no folds):
/// the paper-road class of geometry at every scale.
std::vector<Vec2> jittered_curve(util::Rng& rng, std::size_t points,
                                 double max_turn_per_step) {
  std::vector<Vec2> pts{{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)}};
  double heading = rng.uniform(-3.14, 3.14);
  for (std::size_t i = 1; i < points; ++i) {
    heading += rng.uniform(-max_turn_per_step, max_turn_per_step);
    // Jittered spacing spanning two orders of magnitude.
    const double step = rng.uniform(0.0, 1.0) < 0.1
                            ? rng.uniform(0.02, 0.1)
                            : rng.uniform(0.2, 1.5);
    pts.push_back(pts.back() + geom::heading_vector(heading) * step);
  }
  return pts;
}

/// Segments whose lengths differ by ~1e-9 (near-duplicate lengths): the
/// reciprocal-length tables must not collapse them.
std::vector<Vec2> near_duplicate_lengths(util::Rng& rng, std::size_t points) {
  std::vector<Vec2> pts{{0.0, 0.0}};
  double heading = 0.0;
  for (std::size_t i = 1; i < points; ++i) {
    heading += rng.uniform(-0.05, 0.05);
    const double step = 0.5 + (i % 2) * 1e-9 + rng.uniform(0.0, 1e-10);
    pts.push_back(pts.back() + geom::heading_vector(heading) * step);
  }
  return pts;
}

/// Hairpin: two parallel legs @p gap apart joined by a tight U-turn.
std::vector<Vec2> hairpin(double leg, double gap, double spacing) {
  std::vector<Vec2> pts;
  for (double x = 0.0; x < leg; x += spacing) pts.push_back({x, 0.0});
  const double r = gap / 2.0;
  for (double a = -1.5707963267948966; a < 1.5707963267948966; a += 0.25)
    pts.push_back({leg + r * std::cos(a), r + r * std::sin(a)});
  for (double x = leg; x > 0.0; x -= spacing) pts.push_back({x, gap});
  return pts;
}

/// Query points for a polyline: near the line, far off, and beyond both
/// ends — the full input domain of the simulation's Frenet conversions.
std::vector<Vec2> query_points(util::Rng& rng, const Polyline& line,
                               std::size_t count) {
  std::vector<Vec2> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double kind = rng.uniform(0.0, 1.0);
    if (kind < 0.7) {
      // Near the line (the hot-loop case).
      const double s = rng.uniform(-5.0, line.length() + 5.0);
      const Vec2 base = line.position_at(s);
      queries.push_back(base + Vec2{rng.gaussian(0.0, 2.0),
                                    rng.gaussian(0.0, 2.0)});
    } else if (kind < 0.9) {
      // Anywhere in the bounding region.
      queries.push_back({rng.uniform(-50.0, 50.0) + line.point(0).x,
                         rng.uniform(-50.0, 50.0) + line.point(0).y});
    } else {
      // Off the ends, along the end tangents.
      const bool front = rng.uniform(0.0, 1.0) < 0.5;
      const double s = front ? 0.0 : line.length();
      const double along = rng.uniform(0.5, 30.0) * (front ? -1.0 : 1.0);
      queries.push_back(line.position_at(s) +
                        geom::heading_vector(line.heading_at(s)) * along +
                        Vec2{0.0, rng.uniform(-3.0, 3.0)});
    }
  }
  return queries;
}

struct Shape {
  const char* name;
  std::vector<Vec2> pts;
};

std::vector<Shape> shapes() {
  util::Rng rng(20220627);  // fixed: failures must reproduce
  std::vector<Shape> out;
  out.push_back({"straight_uniform", {}});
  for (int i = 0; i <= 400; ++i)
    out.back().pts.push_back({0.5 * i, 0.0});
  out.push_back({"gentle_arc", {}});
  for (int i = 0; i <= 500; ++i) {
    const double a = i * 0.004;
    out.back().pts.push_back({300.0 * std::sin(a),
                              300.0 * (1.0 - std::cos(a))});
  }
  for (int k = 0; k < 4; ++k) {
    auto fork = rng.fork(static_cast<std::uint64_t>(k) + 1);
    out.push_back({"jittered_curve", jittered_curve(fork, 600, 0.15)});
  }
  {
    auto fork = rng.fork(99);
    out.push_back({"near_duplicate_lengths",
                   near_duplicate_lengths(fork, 500)});
  }
  out.push_back({"hairpin", hairpin(80.0, 10.0, 0.5)});
  out.push_back({"tiny", {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}}});
  return out;
}

// --- differential properties ------------------------------------------------

TEST(ProjectDifferential, FullSearchMatchesOracle) {
  util::Rng rng(1);
  for (const Shape& shape : shapes()) {
    SCOPED_TRACE(shape.name);
    const Polyline line(shape.pts);
    for (const Vec2 p : query_points(rng, line, 800)) {
      const auto want = oracle_project(shape.pts, p);
      expect_projection_close(p, line.project(p, -1.0), want,
                              "project(full)");
      // The in-tree reference must BE the oracle, bit for bit.
      const auto ref = line.project_reference(p);
      EXPECT_EQ(ref.s, want.proj.s);
      EXPECT_EQ(ref.lateral, want.proj.lateral);
      EXPECT_EQ(ref.closest.x, want.proj.closest.x);
      EXPECT_EQ(ref.closest.y, want.proj.closest.y);
    }
  }
}

TEST(ProjectDifferential, HintedMatchesFullOnContinuousMotion) {
  // The hot-loop contract: a point drifting along the line (any drift up to
  // several segments per query, lateral offsets included) projects through
  // the hinted path to the exact full-search result.
  util::Rng rng(2);
  for (const Shape& shape : shapes()) {
    SCOPED_TRACE(shape.name);
    const Polyline line(shape.pts);
    double hint = -1.0;
    double s = 0.0;
    for (int i = 0; i < 2000; ++i) {
      s += rng.uniform(0.0, 3.0 * line.length() / 2000.0);
      if (s > line.length()) {
        // Wrap = a teleport, which on folded geometry (the hairpin) is
        // outside the hinted contract: restart with a full search, as a
        // caller re-acquiring a track would.
        s = 0.0;
        hint = -1.0;
      }
      const Vec2 p = line.position_at(s) +
                     Vec2{rng.gaussian(0.0, 0.5), rng.gaussian(0.0, 0.5)};
      const auto full = line.project(p, -1.0);
      const auto hinted = line.project(p, hint);
      EXPECT_EQ(hinted.s, full.s) << "i=" << i << " s=" << s;
      EXPECT_EQ(hinted.lateral, full.lateral);
      hint = hinted.s;
    }
  }
}

TEST(ProjectDifferential, StaleHintsRecoverOnUnfoldedCurves) {
  // Teleports: any hint, anywhere, must still produce the full-search
  // result on geometry that does not fold back near itself (the widening
  // retry covers the gap between the stale window and the true segment).
  util::Rng rng(3);
  for (int k = 0; k < 3; ++k) {
    auto fork = rng.fork(static_cast<std::uint64_t>(k) + 10);
    const Polyline line(jittered_curve(fork, 500, 0.02));
    for (int i = 0; i < 500; ++i) {
      const double s_true = rng.uniform(0.0, line.length());
      const Vec2 p = line.position_at(s_true) +
                     Vec2{rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)};
      const double hint = rng.uniform(0.0, line.length() * 1.2);
      const auto full = line.project(p, -1.0);
      const auto hinted = line.project(p, hint);
      EXPECT_EQ(hinted.s, full.s) << "hint=" << hint << " s_true=" << s_true;
      EXPECT_EQ(hinted.lateral, full.lateral);
    }
  }
}

TEST(ProjectDifferential, HintWindowEdgeCases) {
  // Hints exactly at the ends, beyond the ends, and points off both ends:
  // the clamped window must still reproduce the full search.
  util::Rng rng(4);
  for (const Shape& shape : shapes()) {
    SCOPED_TRACE(shape.name);
    const Polyline line(shape.pts);
    const double hints[] = {0.0,
                            1e-12,
                            line.length() * 0.5,
                            line.length() - 1e-9,
                            line.length(),
                            line.length() + 100.0};
    for (const double hint : hints) {
      for (int i = 0; i < 40; ++i) {
        // Points clustered around the hinted location plus off-end probes,
        // so edge windows see both interior and boundary winners.
        const double s = std::min(hint, line.length()) +
                         rng.uniform(-4.0, 4.0);
        const Vec2 p = line.position_at(s) +
                       Vec2{rng.gaussian(0.0, 0.8), rng.gaussian(0.0, 0.8)};
        const auto full = line.project(p, -1.0);
        const auto hinted = line.project(p, hint);
        EXPECT_EQ(hinted.s, full.s) << "hint=" << hint;
        EXPECT_EQ(hinted.lateral, full.lateral) << "hint=" << hint;
      }
    }
  }
}

TEST(ProjectDifferential, UTurnStaleHintRegression) {
  // Regression for the historical hint-window gap: with the point far past
  // the +/-window range on the other leg of a U-turn, the windowed search
  // used to lock onto the nearest in-window segment (a local minimum; for a
  // hint at the polyline start the old edge test did not even fire) and
  // return a lateral off by the leg gap. The widening retry must recover.
  const auto pts = hairpin(100.0, 9.0, 0.5);
  const Polyline line(pts);

  // Point hovering 0.5 m above leg B (y = 9), horizontally at x = 0.25 —
  // i.e. near the END of the polyline, while the hint sits at s = 0.
  const Vec2 p{0.25, 8.5};
  const auto want = oracle_project(pts, p);
  ASSERT_GT(want.proj.s, line.length() - 2.0);  // truly on leg B

  for (const double hint : {0.0, 2.0, 40.0, 99.0}) {
    const auto got = line.project(p, hint);
    EXPECT_EQ(got.s, want.proj.s) << "hint=" << hint;
    EXPECT_EQ(got.lateral, want.proj.lateral) << "hint=" << hint;
  }
}

TEST(ProjectDifferential, ProjectManyMatchesProjectElementwise) {
  util::Rng rng(5);
  for (const Shape& shape : shapes()) {
    SCOPED_TRACE(shape.name);
    const Polyline line(shape.pts);
    const auto queries = query_points(rng, line, 600);
    std::vector<double> hints(queries.size());
    for (std::size_t i = 0; i < hints.size(); ++i)
      hints[i] = rng.uniform(0.0, 1.0) < 0.3
                     ? -1.0
                     : rng.uniform(0.0, line.length());
    std::vector<Polyline::Projection> batched(queries.size());
    line.project_many(queries, hints, batched);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto single = line.project(queries[i], hints[i]);
      EXPECT_EQ(batched[i].s, single.s) << "i=" << i;
      EXPECT_EQ(batched[i].lateral, single.lateral) << "i=" << i;
      EXPECT_EQ(batched[i].closest.x, single.closest.x) << "i=" << i;
      EXPECT_EQ(batched[i].closest.y, single.closest.y) << "i=" << i;
    }
  }
}

TEST(ProjectDifferential, ProjectManyWithoutHintsIsFullSearch) {
  util::Rng rng(6);
  auto fork = rng.fork(7);
  const auto pts = jittered_curve(fork, 300, 0.1);
  const Polyline line(pts);
  const auto queries = query_points(rng, line, 200);
  std::vector<Polyline::Projection> batched(queries.size());
  line.project_many(queries, {}, batched);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto full = line.project(queries[i], -1.0);
    EXPECT_EQ(batched[i].s, full.s) << "i=" << i;
    EXPECT_EQ(batched[i].lateral, full.lateral) << "i=" << i;
  }
}

TEST(ProjectDifferential, OffEndPointsClampToEndpoints) {
  util::Rng rng(8);
  auto fork = rng.fork(11);
  const Shape cases[] = {
      // Straight line: the endpoint clamp is provable, assert it exactly.
      {"straight", {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}},
      {"jittered", jittered_curve(fork, 400, 0.02)},
  };
  for (const Shape& shape : cases) {
    SCOPED_TRACE(shape.name);
    const Polyline line(shape.pts);
    for (int i = 0; i < 300; ++i) {
      const bool front = i % 2 == 0;
      const double s = front ? 0.0 : line.length();
      const Vec2 p = line.position_at(s) +
                     geom::heading_vector(line.heading_at(s)) *
                         (front ? -rng.uniform(1.0, 40.0)
                                : rng.uniform(1.0, 40.0)) +
                     geom::heading_vector(line.heading_at(s)).perp() *
                         rng.uniform(-0.2, 0.2);
      const auto got = line.project(p, -1.0);
      expect_projection_close(p, got, oracle_project(shape.pts, p),
                              front ? "before start" : "past end");
      if (shape.pts.size() == 4) {  // the straight shape
        EXPECT_EQ(got.s, front ? 0.0 : line.length());
      }
    }
  }
}

// --- Frenet round-trip property over the fast kernel ------------------------

TEST(ProjectDifferential, FrenetRoundTripThroughFastKernel) {
  util::Rng rng(9);
  auto fork = rng.fork(13);
  const auto pts = jittered_curve(fork, 800, 0.01);
  const Polyline line(pts);
  geom::FrenetFrame frame(line);
  for (int i = 0; i < 1000; ++i) {
    const geom::FrenetPoint f{rng.uniform(1.0, line.length() - 1.0),
                              rng.uniform(-2.0, 2.0)};
    const Vec2 world = frame.to_world(f);
    const auto back = frame.to_frenet(world);
    // Round-trip error comes from the tessellation, not the kernel: the
    // normal fans of adjacent segments overlap or gap by O(|d| * theta) in
    // s at a kink of exterior angle theta (first order — the skipped arc),
    // and by O(|d| * theta^2) in d. theta <= 0.01 and |d| <= 2 here.
    EXPECT_NEAR(back.s, f.s, 0.03) << "i=" << i;
    EXPECT_NEAR(back.d, f.d, 1e-3) << "i=" << i;
  }
}

}  // namespace
