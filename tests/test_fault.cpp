// Tests for the deterministic benign-fault injection layer: FaultPlan
// parsing/fingerprints, the differential FaultDeterminism suite (the
// layer's headline guarantee — same seed + same plan is bit-identical
// across fresh-vs-reset, sequential-vs-arena, thread counts, resume, and
// sharded merge, and NO plan is bit-identical to an inert one), the
// monitor's graceful-degradation mode, and the `faults` CLI surface.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli/campaigns.hpp"
#include "defense/context_monitor.hpp"
#include "defense/harness.hpp"
#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "exp/shard.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "sim/world.hpp"
#include "util/serial.hpp"

namespace {

using namespace scaa;

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParsesKindsWindowsAndParameters) {
  const auto plan = fault::FaultPlan::parse_text(
      "# benign faults\n"
      "can_drop rate=0.05\n"
      "can_delay rate=0.1 ticks=5 window=2:10\n"
      "sensor_noise rate=1.0 mag=0.5 bias=-0.2 target=gps\n"
      "\n"
      "ecu_stall rate=0.01 ticks=25\n",
      "inline");
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].kind, fault::FaultKind::kCanDrop);
  EXPECT_DOUBLE_EQ(plan[0].rate, 0.05);
  EXPECT_EQ(plan[1].kind, fault::FaultKind::kCanDelay);
  EXPECT_EQ(plan[1].ticks, 5u);
  EXPECT_DOUBLE_EQ(plan[1].t0, 2.0);
  EXPECT_DOUBLE_EQ(plan[1].t1, 10.0);
  EXPECT_EQ(plan[2].kind, fault::FaultKind::kSensorNoise);
  EXPECT_DOUBLE_EQ(plan[2].magnitude, 0.5);
  EXPECT_DOUBLE_EQ(plan[2].bias, -0.2);
  EXPECT_EQ(plan[2].target, fault::FaultTarget::kGps);
  EXPECT_EQ(plan[3].kind, fault::FaultKind::kEcuStall);
  EXPECT_TRUE(plan[1].active_at(5.0));
  EXPECT_FALSE(plan[1].active_at(10.5));
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    fault::FaultPlan::parse_text(text, "plan.txt");
    FAIL() << "expected FaultPlanError for: " << text;
  } catch (const fault::FaultPlanError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("plan.txt:"), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

TEST(FaultPlan, ErrorsCarryPathAndLine) {
  expect_parse_error("warp_drive rate=0.1\n", "warp_drive");
  expect_parse_error("can_drop rate=1.5\n", "rate");
  expect_parse_error("can_drop window=9:3\n", "window");
  expect_parse_error("can_drop rate=0.1 color=red\n", "color");
  expect_parse_error("\n\ncan_drop rate=\n", ":3:");
}

TEST(FaultPlan, FingerprintSeparatesPlans) {
  const auto a = fault::FaultPlan::parse_text("can_drop rate=0.05\n", "a");
  const auto b = fault::FaultPlan::parse_text("can_drop rate=0.06\n", "b");
  const auto c = fault::FaultPlan::parse_text("can_drop rate=0.05\n", "c");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
  EXPECT_NE(a.fingerprint(), fault::FaultPlan().fingerprint());
}

TEST(FaultPlan, RejectsMoreThanMaxFaults) {
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kCanDrop;
  for (std::size_t i = 0; i < fault::FaultPlan::kMaxFaults; ++i)
    plan.add(spec);
  EXPECT_THROW(plan.add(spec), fault::FaultPlanError);
}

// ------------------------------------------------------- FaultDeterminism

void expect_summary_eq(const sim::SimulationSummary& a,
                       const sim::SimulationSummary& b) {
  EXPECT_EQ(a.any_hazard, b.any_hazard);
  EXPECT_EQ(util::double_bits(a.first_hazard_time),
            util::double_bits(b.first_hazard_time));
  EXPECT_EQ(a.any_accident, b.any_accident);
  EXPECT_EQ(a.alert_events, b.alert_events);
  EXPECT_EQ(a.fcw_events, b.fcw_events);
  EXPECT_EQ(a.lane_invasions, b.lane_invasions);
  EXPECT_EQ(util::double_bits(a.lane_invasion_rate),
            util::double_bits(b.lane_invasion_rate));
  EXPECT_EQ(util::double_bits(a.tth), util::double_bits(b.tth));
  EXPECT_EQ(util::double_bits(a.sim_end_time),
            util::double_bits(b.sim_end_time));
  EXPECT_EQ(a.can_checksum_rejects, b.can_checksum_rejects);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.faults_suppressed, b.faults_suppressed);
}

std::shared_ptr<const fault::FaultPlan> mixed_plan() {
  auto plan = std::make_shared<fault::FaultPlan>(fault::FaultPlan::parse_text(
      "can_drop rate=0.05\n"
      "can_delay rate=0.02 ticks=3\n"
      "sensor_freeze rate=0.1\n"
      "sensor_noise rate=0.5 mag=0.3\n"
      "ecu_stall rate=0.005 ticks=10\n",
      "mixed"));
  return plan;
}

sim::WorldConfig faulted_config(std::uint64_t seed) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  item.seed = seed;
  sim::WorldConfig cfg = exp::world_config_for(item);
  cfg.fault_plan = mixed_plan();
  return cfg;
}

TEST(FaultDeterminism, FaultsActuallyFire) {
  sim::World world(faulted_config(7));
  const auto summary = world.run();
  std::uint64_t fired = 0;
  for (const std::uint64_t f : summary.faults_fired) fired += f;
  EXPECT_GT(fired, 0u);
}

TEST(FaultDeterminism, FreshVsResetBitIdentical) {
  const sim::WorldConfig cfg = faulted_config(11);
  sim::World fresh(cfg);
  const auto a = fresh.run();

  sim::World reused(faulted_config(99));
  (void)reused.run();
  reused.reset(cfg);  // re-arms the injector from the same fork(17) stream
  const auto b = reused.run();
  expect_summary_eq(a, b);
}

TEST(FaultDeterminism, NoPlanBitIdenticalToInertPlan) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  item.seed = 21;

  sim::WorldConfig bare = exp::world_config_for(item);
  sim::World no_plan(bare);
  const auto a = no_plan.run();
  for (const std::uint64_t f : a.faults_fired) EXPECT_EQ(f, 0u);

  // A plan whose window never opens draws only from the injector's private
  // forked stream, which no other subsystem consumes — so the simulation
  // must be bit-identical to one with no plan at all. This is the
  // structural no-plan regression guard: the fault layer being compiled in
  // (and even armed) cannot perturb the paper's baselines.
  sim::WorldConfig inert = exp::world_config_for(item);
  inert.fault_plan =
      std::make_shared<const fault::FaultPlan>(fault::FaultPlan::parse_text(
          "can_drop rate=0.5 window=1e8:2e8\n", "inert"));
  sim::World armed(inert);
  const auto b = armed.run();
  expect_summary_eq(a, b);
}

std::vector<exp::CampaignItem> faulted_grid(int reps = 2) {
  exp::CampaignConfig cc;
  cc.repetitions = reps;
  cc.base_seed = 99;
  auto grid = exp::make_grid(attack::StrategyKind::kContextAware,
                             /*strategic_values=*/true,
                             /*driver_enabled=*/true, cc);
  const auto plan = mixed_plan();
  for (exp::CampaignItem& item : grid) item.fault_plan = plan;
  return grid;
}

TEST(FaultDeterminism, ArenaMatchesStandaloneWorlds) {
  const auto grid = faulted_grid(1);
  exp::CampaignConfig cc;
  cc.threads = 2;
  const auto results = exp::run_campaign(grid, cc);
  ASSERT_EQ(results.size(), grid.size());
  // Spot-check a stride of items: the arena/WorldBatch path must agree
  // bit-for-bit with a freshly constructed World per item.
  for (std::size_t i = 0; i < grid.size(); i += 17) {
    sim::World world(exp::world_config_for(grid[i]));
    expect_summary_eq(results[i].summary, world.run());
  }
}

void expect_aggregate_eq(const exp::Aggregate& a, const exp::Aggregate& b) {
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(a.sims_with_alerts, b.sims_with_alerts);
  EXPECT_EQ(a.sims_with_hazards, b.sims_with_hazards);
  EXPECT_EQ(a.sims_with_accidents, b.sims_with_accidents);
  EXPECT_EQ(a.hazards_without_alerts, b.hazards_without_alerts);
  EXPECT_EQ(a.fcw_activations, b.fcw_activations);
  EXPECT_EQ(util::double_bits(a.lane_invasion_rate_mean),
            util::double_bits(b.lane_invasion_rate_mean));
  EXPECT_EQ(util::double_bits(a.tth_mean), util::double_bits(b.tth_mean));
  EXPECT_EQ(util::double_bits(a.tth_std), util::double_bits(b.tth_std));
}

TEST(FaultDeterminism, ThreadCountInvariant) {
  const auto grid = faulted_grid(2);
  exp::CampaignConfig one;
  one.threads = 1;
  exp::CampaignConfig many;
  many.threads = 4;
  expect_aggregate_eq(exp::run_campaign_streaming(grid, one),
                      exp::run_campaign_streaming(grid, many));
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "scaa_fault_" + name;
}

TEST(FaultDeterminism, ResumeBitIdentical) {
  const auto grid = faulted_grid(2);
  exp::CampaignConfig cc;
  cc.threads = 2;
  const std::string path = temp_path("resume.ckpt");
  std::remove(path.c_str());
  exp::Aggregate first;
  {
    exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/false);
    first = exp::run_campaign_streaming(grid, cc, {}, &ckpt);
  }
  {
    exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/true);
    EXPECT_EQ(ckpt.completed_items(), grid.size());  // nothing left to run
    const auto resumed = exp::run_campaign_streaming(grid, cc, {}, &ckpt);
    expect_aggregate_eq(first, resumed);
  }
  std::remove(path.c_str());
}

TEST(FaultDeterminism, ShardedMergeMatchesSingleProcess) {
  const auto grid = faulted_grid(2);
  exp::CampaignConfig cc;
  cc.threads = 2;
  const exp::Aggregate single = exp::run_campaign_streaming(grid, cc);

  const std::size_t shards = 3;
  const exp::ShardPlan plan(grid.size(), shards);
  std::vector<std::string> files;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string path =
        temp_path("merge.ckpt") + exp::shard_suffix(s, shards);
    std::remove(path.c_str());
    files.push_back(path);
    exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/false);
    const exp::ChunkRange range = plan.chunks_for(s);
    exp::run_campaign_streaming(grid, cc, {}, &ckpt, &range);
  }
  expect_aggregate_eq(single, exp::merge_slice_files(grid, files));
  for (const std::string& path : files) std::remove(path.c_str());
}

TEST(FaultDeterminism, ResumeRejectsForeignFaultPlan) {
  const auto grid = faulted_grid(1);
  const std::string path = temp_path("foreign.ckpt");
  std::remove(path.c_str());
  {
    exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/false);
    exp::CampaignConfig cc;
    cc.threads = 2;
    exp::run_campaign_streaming(grid, cc, {}, &ckpt);
  }
  // The identical grid under a different plan fingerprints differently, so
  // resuming from the old file must be refused — a checkpoint written
  // under one fault plan can never silently contaminate another campaign.
  auto other = faulted_grid(1);
  const auto foreign = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse_text("can_drop rate=0.25\n", "foreign"));
  for (exp::CampaignItem& item : other) item.fault_plan = foreign;
  EXPECT_NE(exp::grid_fingerprint(grid), exp::grid_fingerprint(other));
  EXPECT_THROW(exp::CampaignCheckpoint(path, other, /*resume=*/true),
               exp::CheckpointError);
  std::remove(path.c_str());
}

// -------------------------------------------------------- DegradedMonitor

defense::MonitorInputs unsafe_accel_inputs() {
  defense::MonitorInputs in;
  in.context.speed = 26.82;
  in.context.lead_valid = true;
  in.context.hwt = 1.5;       // close lead...
  in.context.rel_speed = 4.0;
  in.context.d_left = 1.0;
  in.context.d_right = 1.0;
  in.context.perception_valid = true;
  in.wire_accel = 2.0;        // ...while the wire accelerates
  return in;
}

defense::MonitorConfig degrading_config() {
  defense::MonitorConfig config;
  config.stale_context_s = 0.5;
  config.degrade_hysteresis_s = 0.2;
  return config;
}

TEST(DegradedMonitor, EntersAndExitsWithHysteresis) {
  defense::ContextAwareMonitor mon(degrading_config());
  auto in = unsafe_accel_inputs();
  in.wire_accel = 0.0;  // quiet wire; only staleness matters here
  in.context_age = 1.0;  // stale
  // Staleness must persist for the hysteresis dwell before entry.
  for (int i = 0; i < 19; ++i) mon.update(in, 0.01);
  EXPECT_FALSE(mon.degraded());
  for (int i = 0; i < 10; ++i) mon.update(in, 0.01);
  EXPECT_TRUE(mon.degraded());
  EXPECT_EQ(mon.degraded_entries(), 1u);
  // Fresh input must persist for the same dwell before exit.
  in.context_age = 0.0;
  for (int i = 0; i < 19; ++i) mon.update(in, 0.01);
  EXPECT_TRUE(mon.degraded());
  for (int i = 0; i < 10; ++i) mon.update(in, 0.01);
  EXPECT_FALSE(mon.degraded());
  EXPECT_GT(mon.degraded_time(), 0.0);
}

TEST(DegradedMonitor, WithholdsAlarmsWhileDegraded) {
  defense::ContextAwareMonitor mon(degrading_config());
  auto in = unsafe_accel_inputs();
  in.context_age = 1.0;  // stale the whole run
  bool alarmed = false;
  for (int i = 0; i < 1000; ++i) alarmed |= mon.update(in, 0.01);
  EXPECT_TRUE(mon.degraded());
  EXPECT_FALSE(alarmed);
  EXPECT_FALSE(mon.alarmed());
}

TEST(DegradedMonitor, RecoveryReaccumulatesPersistence) {
  defense::ContextAwareMonitor mon(degrading_config());
  auto in = unsafe_accel_inputs();
  in.context_age = 1.0;
  for (int i = 0; i < 100; ++i) mon.update(in, 0.01);
  EXPECT_TRUE(mon.degraded());
  // An attack persisting across recovery still alarms — the persistence
  // window restarts at recovery instead of counting degraded time.
  in.context_age = 0.0;
  bool alarmed = false;
  for (int i = 0; i < 300 && !alarmed; ++i) alarmed = mon.update(in, 0.01);
  EXPECT_TRUE(alarmed);
  EXPECT_GE(mon.alarm_time(), 1.0);  // not before recovery
}

TEST(DegradedMonitor, DisabledConfigIgnoresStaleness) {
  // stale_context_s == 0 is the paper's behavior bit-for-bit: a huge
  // context age must change nothing.
  defense::ContextAwareMonitor baseline{defense::MonitorConfig{}};
  defense::ContextAwareMonitor aged{defense::MonitorConfig{}};
  auto fresh = unsafe_accel_inputs();
  auto stale = unsafe_accel_inputs();
  stale.context_age = 1e6;
  for (int i = 0; i < 300; ++i)
    EXPECT_EQ(baseline.update(fresh, 0.01), aged.update(stale, 0.01));
  EXPECT_TRUE(baseline.alarmed());
  EXPECT_TRUE(aged.alarmed());
  EXPECT_EQ(util::double_bits(baseline.alarm_time()),
            util::double_bits(aged.alarm_time()));
  EXPECT_EQ(aged.degraded_entries(), 0u);
}

TEST(DegradedMonitor, HarnessReportsDegradationUnderSensorDropout) {
  // End to end: a mid-run total sensor dropout starves the eavesdropped
  // context latches, so a degradation-enabled harness enters degraded mode
  // and reports it through the DefenseOutcome.
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.seed = 5;
  sim::WorldConfig cfg = exp::world_config_for(item);
  cfg.fault_plan =
      std::make_shared<const fault::FaultPlan>(fault::FaultPlan::parse_text(
          "sensor_dropout rate=1.0 window=10:20\n", "dropout"));
  sim::World world(cfg);

  defense::MonitorConfig mc = degrading_config();
  defense::DefenseHarness harness(world, defense::InvariantConfig{}, mc);
  const defense::DefenseOutcome out = harness.run();
  EXPECT_GE(out.degraded_entries, 1u);
  EXPECT_GT(out.degraded_time, 1.0);
}

// --------------------------------------------------------------- FaultCli

int run_cli(const std::string& name, const std::vector<std::string>& tokens,
            std::string* out_text = nullptr, std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::run_campaign_command(name, tokens, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return rc;
}

std::string write_plan_file(const std::string& name,
                            const std::string& contents) {
  const std::string path = temp_path(name);
  std::ofstream(path) << contents;
  return path;
}

TEST(FaultCli, FaultsTableRunsCustomPlan) {
  const std::string plan = write_plan_file("cli_plan.txt",
                                           "sensor_noise rate=1.0 mag=0.5\n");
  std::string out;
  std::string err;
  const int rc = run_cli(
      "faults",
      {"--fault-plan", plan, "--reps", "1", "--threads", "2", "--format",
       "csv"},
      &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("none,-"), std::string::npos) << out;
  EXPECT_NE(out.find("custom,plan"), std::string::npos) << out;
  std::remove(plan.c_str());
}

TEST(FaultCli, FaultsTableDeterministicAcrossThreads) {
  const std::string plan =
      write_plan_file("cli_det.txt", "can_drop rate=0.1\n");
  std::string one;
  std::string four;
  ASSERT_EQ(run_cli("faults",
                    {"--fault-plan", plan, "--reps", "1", "--threads", "1",
                     "--format", "csv"},
                    &one),
            0);
  ASSERT_EQ(run_cli("faults",
                    {"--fault-plan", plan, "--reps", "1", "--threads", "4",
                     "--format", "csv"},
                    &four),
            0);
  EXPECT_EQ(one, four);
  std::remove(plan.c_str());
}

TEST(FaultCli, BadPlanExitsOneWithPathLine) {
  const std::string plan =
      write_plan_file("cli_bad.txt", "can_drop rate=0.1\nbogus_kind\n");
  std::string err;
  EXPECT_EQ(run_cli("faults", {"--fault-plan", plan}, nullptr, &err), 1);
  EXPECT_NE(err.find(plan + ":2:"), std::string::npos) << err;
  std::remove(plan.c_str());
}

TEST(FaultCli, MissingPlanFileExitsOne) {
  std::string err;
  EXPECT_EQ(run_cli("faults",
                    {"--fault-plan", temp_path("does_not_exist.txt")},
                    nullptr, &err),
            1);
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(FaultCli, PaperTablesRejectFaultPlanFlag) {
  // The published baselines must stay untouchable: --fault-plan on any
  // paper table is a usage error up front, not a different experiment.
  for (const std::string cmd :
       {"table4", "table5", "fig7", "fig8", "bench", "merge"}) {
    std::string err;
    EXPECT_EQ(run_cli(cmd, {"--fault-plan", "x.txt"}, nullptr, &err), 2)
        << cmd;
    EXPECT_NE(err.find("--fault-plan"), std::string::npos) << cmd << err;
  }
}

TEST(FaultCli, RunInjectsPlanAndReportsCounters) {
  const std::string plan =
      write_plan_file("cli_run.txt", "can_drop rate=0.2\n");
  std::string out;
  std::string err;
  const int rc = run_cli(
      "run", {"--fault-plan", plan, "--duration", "5", "--format", "csv"},
      &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(err.find("[run] faults:"), std::string::npos) << err;
  EXPECT_NE(err.find(" fired"), std::string::npos) << err;
  std::remove(plan.c_str());
}

}  // namespace
