// scaa-lint-fixture: as=src/util/deadline_clock.cpp expect=none
//
// Blessed twin of nondeterminism_clock_bad.cpp: the same clock_gettime /
// clock_nanosleep calls are clean when the file lives in the blessed
// deadline-clock layer (src/util/deadline_clock.*) — the one wall-clock
// source the real-time executor is allowed, whose values pace ticks but
// never feed the simulation.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <ctime>

namespace scaa::util {

double blessed_now_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);  // clean: blessed layer
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

void blessed_sleep_until(const timespec& deadline) {
  ::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline, nullptr);
}

}  // namespace scaa::util
