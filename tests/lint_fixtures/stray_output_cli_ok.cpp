// scaa-lint-fixture: as=src/cli/report_main.cpp expect=none
//
// Layer-scoping check: the CLI layer owns stdout (reports, bench tables),
// so std::cout here is clean even though stray_output_bad.cpp trips on it.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <iostream>
#include <string>

namespace scaa::cli {

void emit_report_row(const std::string& row) {
  std::cout << row << '\n';  // blessed: CLI owns machine-parsed stdout
}

}  // namespace scaa::cli
