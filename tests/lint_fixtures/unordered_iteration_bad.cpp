// scaa-lint-fixture: as=src/exp/bucket_fold.cpp expect=unordered-iteration
//
// Aggregation-path iteration over std::unordered_* containers: iteration
// order varies by hash seed and libstdc++ version, so these folds emit
// run-to-run different bytes. Both the range-for and the explicit
// .begin() loop must be flagged.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scaa::exp {

struct BucketFold {
  std::unordered_map<std::uint32_t, double> by_id_;
  std::unordered_set<std::uint32_t> seen_;

  double fold() const {
    double acc = 0.0;
    for (const auto& kv : by_id_) {   // flagged: range-for over unordered
      acc = kv.second;
    }
    return acc;
  }

  std::vector<std::uint32_t> dump() const {
    std::vector<std::uint32_t> out;
    for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // flagged
      out.push_back(*it);
    }
    return out;
  }
};

}  // namespace scaa::exp
