// scaa-lint-fixture: as=src/exp/hatch_demo.cpp expect=nondeterminism,naked-accumulation
//
// Unhatched twin of escape_hatch_ok.cpp: identical code minus the
// `// scaa-lint: allow(...)` comments, so both rules must fire. Also
// checks that a hatch for one rule does not bleed into another: the
// allow(stray-output) comment below names the wrong rule and must not
// suppress the rand() finding on the next line.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdlib>
#include <vector>

namespace scaa::exp {

int unhatched_jitter() {
  // scaa-lint: allow(stray-output)
  return std::rand() % 7;  // flagged: wrong-rule hatch does not apply
}

double unhatched_sum(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double v : xs) {
    sum += v;              // flagged: no hatch
  }
  return sum;
}

}  // namespace scaa::exp
