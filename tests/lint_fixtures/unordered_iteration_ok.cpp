// scaa-lint-fixture: as=src/exp/bucket_fold.cpp expect=none
//
// Clean twin of unordered_iteration_bad.cpp: unordered containers used
// only for O(1) lookup (fine), with all iteration going over ordered
// std::map / index loops (deterministic order).
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace scaa::exp {

struct BucketFold {
  std::unordered_map<std::uint32_t, double> cache_;  // lookup only
  std::map<std::uint32_t, double> by_id_;            // ordered: iterable

  bool cached(std::uint32_t id) const {
    return cache_.find(id) != cache_.end();  // find/end lookup, no loop
  }

  double fold() const {
    double last = 0.0;
    for (const auto& kv : by_id_) {  // ordered map: deterministic order
      last = kv.second;
    }
    return last;
  }

  double pick(const std::vector<double>& xs, std::size_t stride) const {
    double last = 0.0;
    for (std::size_t i = 0; i < xs.size(); i += stride) {  // index loop
      last = xs[i];
    }
    return last;
  }
};

}  // namespace scaa::exp
