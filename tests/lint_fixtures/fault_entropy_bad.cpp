// scaa-lint-fixture: as=src/fault/side_channel.cpp expect=fault-entropy
//
// Fault-layer code seeding its own entropy: every site below must be
// flagged. The one legal randomness source in src/fault/ is the stream
// World forks for the injector (stream id 17, received by value through
// FaultInjector::reset); any stream seeded here is invisible to the world
// seed, so fault firings stop replaying and fresh-vs-reset identity dies.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdint>
#include <random>

#include "util/rng.hpp"

namespace scaa::fault {

double bad_std_engine(std::uint64_t seed) {
  std::mt19937_64 gen(seed);                  // flagged: std::<random>
  std::uniform_real_distribution<double> u;   // flagged: std::<random>
  return u(gen);
}

double bad_private_stream(std::uint64_t seed) {
  return util::Rng{seed}.uniform();           // flagged: fresh Rng temporary
}

std::uint64_t bad_hand_rolled_fork(std::uint64_t state) {
  return util::splitmix64(state);             // flagged: splitmix64()
}

}  // namespace scaa::fault
