// scaa-lint-fixture: as=src/sim/entropy.cpp expect=nondeterminism
//
// Library code drawing entropy / wall clock from the environment: every
// site below must be flagged. Simulations are pure functions of
// (scenario, strategy, seed); none of these belong outside src/util/rng.*
// and src/cli/.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdlib>
#include <ctime>
#include <random>

namespace scaa::sim {

unsigned bad_seed() {
  std::random_device rd;         // flagged: std::random_device
  return rd();
}

int bad_jitter() {
  return std::rand() % 7;        // flagged: rand()
}

void bad_reseed() {
  std::srand(42);                // flagged: srand()
}

long bad_stamp() {
  return std::time(nullptr);     // flagged: time()
}

const char* bad_knob() {
  return std::getenv("SCAA_HIDDEN_KNOB");  // flagged: getenv()
}

}  // namespace scaa::sim
