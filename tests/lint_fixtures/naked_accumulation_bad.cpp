// scaa-lint-fixture: as=src/exp/moment_fold.cpp expect=naked-accumulation
//
// Ad-hoc floating-point accumulation loops in an aggregation path: the
// result depends on iteration order, which breaks the fixed chunk-order
// bit-identity guarantee. Both the += form and the x = x + form must be
// flagged. Campaign statistics fold through util::RunningStats /
// exp::AggregateAccumulator instead.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstddef>
#include <vector>

namespace scaa::exp {

double naked_sum(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double v : xs) {
    sum += v;                    // flagged: += accumulation in loop
  }
  return sum;
}

double naked_mean(const std::vector<double>& xs) {
  double total = 0.0;
  std::size_t i = 0;
  while (i < xs.size()) {
    total = total + xs[i];       // flagged: x = x + accumulation in loop
    ++i;
  }
  return xs.empty() ? 0.0 : total / static_cast<double>(xs.size());
}

}  // namespace scaa::exp
