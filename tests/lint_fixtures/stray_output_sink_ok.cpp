// scaa-lint-fixture: as=src/util/logging.cpp expect=none
//
// The one legal std::cerr writer: util/logging's serialized sink. The
// stray-output rule blesses exactly this TU for std::cerr (std::cout and
// the printf family stay banned even here — this fixture uses neither).
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <iostream>
#include <string>

namespace scaa::util {

void sink_line(const std::string& line) {
  std::cerr << line << '\n';  // blessed: the serialized logging sink
}

}  // namespace scaa::util
