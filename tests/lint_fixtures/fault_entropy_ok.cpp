// scaa-lint-fixture: as=src/fault/forked_stream.cpp expect=none
//
// The legitimate shapes: holding the forked stream as a member, receiving
// it by value as a parameter, and drawing from it. The identifier between
// `Rng` and the initializer is what separates "receives the world's fork"
// from "seeds a stream of its own".
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include "util/rng.hpp"

namespace scaa::fault {

class GoodInjector {
 public:
  // Receives the stream World forked (stream id 17) — clean.
  void reset(util::Rng rng) noexcept { rng_ = rng; }

  bool roll(double rate) noexcept { return rng_.bernoulli(rate); }
  double perturb(double mag) noexcept { return rng_.gaussian(0.0, mag); }

 private:
  util::Rng rng_{0};  // placeholder until reset() installs the fork — clean
};

}  // namespace scaa::fault
