// scaa-lint-fixture: as=src/sim/entropy.cpp expect=none
//
// Clean twin of nondeterminism_bad.cpp: seeded RNG use plus the look-alike
// identifiers the rule must NOT flag — a nullary member named time(), its
// declaration, and suffixed names like runtime()/randomize_with_seed().
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdint>

namespace scaa::sim {

struct World {
  double time_ = 0.0;
  double time() const { return time_; }  // declaration: not libc time()
};

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

double sample(World* world, Rng& rng) {
  const double now = world->time();       // member call: not libc time()
  return now + static_cast<double>(rng.next() >> 40);
}

double runtime() { return 0.0; }          // suffix: not time()
std::uint64_t randomize_with_seed(Rng& rng) { return rng.next(); }

}  // namespace scaa::sim
