// scaa-lint-fixture: as=src/msg/log_dump.cpp expect=stray-output
//
// Library code writing to stdout/stderr directly: stdout is machine-parsed
// report output (CLI + report writer only) and stderr belongs to
// util/logging's serialized sink. Every site below must be flagged.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdio>
#include <iostream>

namespace scaa::msg {

void dump_count(int n) {
  std::cout << "frames: " << n << '\n';   // flagged: std::cout
}

void warn_direct(const char* what) {
  std::cerr << "warning: " << what << '\n';  // flagged: std::cerr
}

void dump_c_style(int n) {
  std::printf("frames: %d\n", n);         // flagged: printf()
  std::fprintf(stderr, "note: %d\n", n);  // flagged: fprintf()
}

}  // namespace scaa::msg
