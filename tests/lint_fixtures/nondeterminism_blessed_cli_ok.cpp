// scaa-lint-fixture: as=src/cli/bench_main.cpp expect=none
//
// Layer-scoping check: the CLI layer is blessed for wall-clock and
// environment access (bench wall_s columns, seeds from argv / env), so the
// very same calls that nondeterminism_bad.cpp trips on are clean here.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdlib>
#include <ctime>

namespace scaa::cli {

long wall_stamp() {
  return std::time(nullptr);     // blessed: src/cli/ may read the clock
}

const char* thread_override() {
  return std::getenv("SCAA_THREADS");  // blessed: CLI env knob
}

}  // namespace scaa::cli
