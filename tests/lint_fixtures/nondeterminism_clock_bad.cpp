// scaa-lint-fixture: as=src/sim/tick_timer.cpp expect=nondeterminism
//
// POSIX clock calls in simulation library code: a wall-clock read or a
// deadline sleep anywhere inside sim/exp breaks the pure-function-of-seed
// contract the campaign statistics rest on. Real-time pacing must go
// through util::DeadlineClock (the blessed src/util/deadline_clock.*
// layer), which never leaks a clock value into simulation state.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <ctime>

namespace scaa::sim {

double wall_now_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);  // flagged: clock read in sim code
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

void nap_until(const timespec& deadline) {
  // flagged: deadline sleeps belong to util::DeadlineClock, not sim code
  ::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline, nullptr);
}

}  // namespace scaa::sim
