// scaa-lint-fixture: as=src/exp/hatch_demo.cpp expect=none
//
// Escape-hatch coverage: each site below would trigger a rule, but a
// `// scaa-lint: allow(<rule>)` comment on the same line or the line
// immediately above suppresses exactly that rule at exactly that site.
// The unhatched twin is escape_hatch_bad.cpp (same code, no comments).
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstdlib>
#include <vector>

namespace scaa::exp {

int hatched_jitter() {
  return std::rand() % 7;  // scaa-lint: allow(nondeterminism)
}

double hatched_sum(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double v : xs) {
    // scaa-lint: allow(naked-accumulation)
    sum += v;
  }
  return sum;
}

}  // namespace scaa::exp
