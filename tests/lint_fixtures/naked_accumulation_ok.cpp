// scaa-lint-fixture: as=src/exp/moment_fold.cpp expect=none
//
// Clean twin of naked_accumulation_bad.cpp: statistics fold through an
// accumulator type (Welford-style add()), integer counters may accumulate
// freely, and straight-line double arithmetic outside loops is fine.
//
// NOT COMPILED: lint fixture only; tools/scaa_lint.py --self-test reads it.
#include <cstddef>
#include <vector>

namespace scaa::exp {

struct RunningStatsLike {
  std::size_t n = 0;
  double mean = 0.0;
  void add(double x) {
    ++n;
    mean += (x - mean) / static_cast<double>(n);  // inside the accumulator
  }
};

double folded_mean(const std::vector<double>& xs) {
  RunningStatsLike stats;
  for (double v : xs) {
    stats.add(v);                // blessed: accumulator type does the fold
  }
  return stats.mean;
}

std::size_t count_above(const std::vector<double>& xs, double cut) {
  std::size_t hits = 0;
  for (double v : xs) {
    if (v > cut) hits += 1;      // integer accumulation: fine
  }
  return hits;
}

double straight_line(double a, double b) {
  double acc = a;
  acc += b;                      // not in a loop: fine
  return acc;
}

}  // namespace scaa::exp
