// Unit tests for scaa::adas (filters, planners, controllers, alerts,
// safety model) and scaa::sensors models.

#include <gtest/gtest.h>

#include <cmath>

#include "adas/alerts.hpp"
#include "util/stats.hpp"
#include "adas/kalman.hpp"
#include "adas/lateral_planner.hpp"
#include "adas/lead_tracker.hpp"
#include "adas/long_control.hpp"
#include "adas/longitudinal_planner.hpp"
#include "adas/safety_model.hpp"
#include "adas/torque_controller.hpp"
#include "road/builder.hpp"
#include "sensors/camera.hpp"
#include "sensors/gps.hpp"
#include "sensors/radar.hpp"

namespace {

using namespace scaa;

TEST(ConstantGainKalman, PaperEquations) {
  // Eq. 2: prediction under constant accel; Eq. 3: constant-gain update.
  adas::ConstantGainKalman kf(0.5, 20.0);
  const double predicted = kf.predict(2.0, 0.01);
  EXPECT_DOUBLE_EQ(predicted, 20.02);
  const double updated = kf.update(predicted, 20.10);
  EXPECT_DOUBLE_EQ(updated, 20.02 + 0.5 * (20.10 - 20.02));
  EXPECT_DOUBLE_EQ(kf.estimate(), updated);
}

TEST(ConstantGainKalman, ConvergesToMeasurement) {
  adas::ConstantGainKalman kf(0.5, 0.0);
  for (int i = 0; i < 50; ++i) kf.update(kf.predict(0.0, 0.01), 10.0);
  EXPECT_NEAR(kf.estimate(), 10.0, 1e-6);
}

TEST(Kalman2D, TracksConstantVelocityTarget) {
  adas::Kalman2D kf(6.0, 0.0625, 0.0144);
  double true_pos = 100.0;
  const double true_vel = -8.0;
  util::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    true_pos += true_vel * 0.05;
    kf.predict(0.05);
    kf.update(true_pos + rng.gaussian(0.0, 0.25),
              true_vel + rng.gaussian(0.0, 0.12));
  }
  EXPECT_NEAR(kf.value(), true_pos, 0.5);
  EXPECT_NEAR(kf.rate(), true_vel, 0.2);
}

TEST(Kalman2D, ValueOnlyUpdateInfersRate) {
  adas::Kalman2D kf(6.0, 0.0625, 0.0144);
  kf.init(0.0, 0.0);
  double true_pos = 0.0;
  for (int i = 0; i < 600; ++i) {
    true_pos += 5.0 * 0.05;
    kf.predict(0.05);
    kf.update_value_only(true_pos);
  }
  EXPECT_NEAR(kf.rate(), 5.0, 0.5);
}

TEST(LeadTracker, SmoothsAndCoasts) {
  adas::LeadTracker tracker;
  msg::RadarState radar;
  radar.lead_valid = true;
  radar.lead_distance = 80.0;
  radar.lead_rel_speed = -10.0;
  radar.lead_speed = 16.0;
  for (int i = 0; i < 20; ++i) {
    tracker.predict(0.05);
    radar.lead_distance -= 0.5;
    tracker.update(radar);
  }
  EXPECT_TRUE(tracker.estimate().valid);
  EXPECT_NEAR(tracker.estimate().distance, radar.lead_distance, 1.0);
  // Dropout: coast for up to kMaxStale, then invalid.
  for (int i = 0; i < 8; ++i) tracker.predict(0.05);  // 0.4 s
  EXPECT_TRUE(tracker.estimate().valid);
  for (int i = 0; i < 4; ++i) tracker.predict(0.05);  // past 0.5 s
  EXPECT_FALSE(tracker.estimate().valid);
}

TEST(LongitudinalPlanner, CruisesAtSetSpeed) {
  adas::LongitudinalPlanner planner(adas::AccConfig{});
  const auto plan = planner.update(26.82, 26.82, {});
  EXPECT_NEAR(plan.accel, 0.0, 1e-9);
  EXPECT_FALSE(plan.following);
}

TEST(LongitudinalPlanner, AcceleratesWhenSlow) {
  adas::LongitudinalPlanner planner(adas::AccConfig{});
  const auto plan = planner.update(20.0, 26.82, {});
  EXPECT_GT(plan.accel, 0.5);
  EXPECT_LE(plan.accel, 2.0);  // OpenPilot max accel
}

TEST(LongitudinalPlanner, BrakesForCloseLead) {
  adas::LongitudinalPlanner planner(adas::AccConfig{});
  adas::LeadEstimate lead;
  lead.valid = true;
  lead.distance = 15.0;
  lead.rel_speed = -8.0;
  const auto plan = planner.update(26.82, 26.82, lead);
  EXPECT_TRUE(plan.following);
  EXPECT_LT(plan.accel, -1.0);
  EXPECT_GE(plan.accel, -3.5);  // OpenPilot max decel
}

TEST(LongitudinalPlanner, FarLeadDoesNotConstrain) {
  adas::LongitudinalPlanner planner(adas::AccConfig{});
  adas::LeadEstimate lead;
  lead.valid = true;
  lead.distance = 150.0;
  lead.rel_speed = 0.0;
  const auto plan = planner.update(26.82, 26.82, lead);
  EXPECT_FALSE(plan.following);
}

TEST(LongitudinalPlanner, SteadyStateHeadway) {
  // At equilibrium (accel == 0, matched speeds) the gap equals the
  // constant-time-gap law's desired gap.
  adas::AccConfig cfg;
  adas::LongitudinalPlanner planner(cfg);
  adas::LeadEstimate lead;
  lead.valid = true;
  lead.rel_speed = 0.0;
  const double v = 15.6;
  lead.distance = cfg.stop_distance + cfg.follow_headway * v;
  const auto plan = planner.update(v, 26.82, lead);
  EXPECT_NEAR(plan.accel, 0.0, 1e-9);
  EXPECT_NEAR(plan.desired_gap, lead.distance, 1e-9);
}

msg::ModelV2 centered_model(double curvature = 0.0) {
  msg::ModelV2 m;
  m.left_lane_line = 1.85;
  m.right_lane_line = -1.85;
  m.left_line_prob = 0.95;
  m.right_line_prob = 0.95;
  m.path_curvature = curvature;
  m.path_heading_error = 0.0;
  return m;
}

TEST(LateralPlanner, FeedForwardOnCurve) {
  adas::LateralPlannerConfig cfg;
  cfg.target_bias_std = 0.0;  // disable wander for determinism
  cfg.curve_target_gain = 0.0;
  adas::LateralPlanner planner(cfg, util::Rng(1));
  adas::LateralPlan plan;
  for (int i = 0; i < 50; ++i)
    plan = planner.update(centered_model(8.3e-4), 0.05, 15.0);
  EXPECT_NEAR(plan.desired_curvature, 8.3e-4, 1e-4);
}

TEST(LateralPlanner, CorrectsRightOffset) {
  adas::LateralPlannerConfig cfg;
  cfg.target_bias_std = 0.0;
  cfg.curve_target_gain = 0.0;
  adas::LateralPlanner planner(cfg, util::Rng(1));
  // Car 0.5 m right of centre: centre appears 0.5 m to the left.
  msg::ModelV2 m = centered_model();
  m.left_lane_line = 2.35;
  m.right_lane_line = -1.35;
  adas::LateralPlan plan;
  for (int i = 0; i < 50; ++i) plan = planner.update(m, 0.05, 15.0);
  EXPECT_GT(plan.desired_curvature, 1e-4);  // steer left, toward centre
}

TEST(LateralPlanner, HoldsAndDecaysWhenLinesLost) {
  adas::LateralPlannerConfig cfg;
  cfg.target_bias_std = 0.0;
  adas::LateralPlanner planner(cfg, util::Rng(1));
  msg::ModelV2 m = centered_model();
  m.left_lane_line = 2.85;  // 1 m right of centre -> nonzero correction
  m.right_lane_line = -0.85;
  for (int i = 0; i < 50; ++i) planner.update(m, 0.05, 15.0);
  const double before = planner.plan().desired_curvature;
  m.left_line_prob = 0.01;  // lines lost
  adas::LateralPlan plan;
  for (int i = 0; i < 100; ++i) plan = planner.update(m, 0.05, 15.0);
  EXPECT_FALSE(plan.lines_valid);
  // Decayed toward feed-forward (0 here), away from the stale correction.
  EXPECT_LT(std::abs(plan.desired_curvature), std::abs(before));
}

TEST(LateralPlanner, GainScheduleShrinksWithSpeed) {
  adas::LateralPlannerConfig cfg;
  cfg.target_bias_std = 0.0;
  cfg.curve_target_gain = 0.0;
  msg::ModelV2 m = centered_model();
  m.left_lane_line = 2.35;
  m.right_lane_line = -1.35;  // 0.5 m right of centre
  adas::LateralPlanner slow(cfg, util::Rng(1));
  adas::LateralPlanner fast(cfg, util::Rng(1));
  adas::LateralPlan ps, pf;
  for (int i = 0; i < 50; ++i) {
    ps = slow.update(m, 0.05, 10.0);
    pf = fast.update(m, 0.05, 30.0);
  }
  EXPECT_GT(ps.desired_curvature, pf.desired_curvature);
}

TEST(LateralPlanner, TargetOffsetBounded) {
  adas::LateralPlannerConfig cfg;
  cfg.target_bias_std = 5.0;  // absurd wander
  adas::LateralPlanner planner(cfg, util::Rng(7));
  for (int i = 0; i < 500; ++i) planner.update(centered_model(), 0.05, 15.0);
  EXPECT_LE(std::abs(planner.target_offset()), 1.0);
}

TEST(TorqueController, RateAndAbsoluteLimits) {
  adas::SteerConfig cfg;
  vehicle::VehicleParams params;
  adas::TorqueController tc(cfg, params);
  const double big = 1.0;  // huge curvature demand
  const double first = tc.update(big, big, 0.01);
  EXPECT_NEAR(first, cfg.angle_rate_limit, 1e-12);  // rate-limited first step
  double cmd = first;
  for (int i = 0; i < 100; ++i) cmd = tc.update(big, big, 0.01);
  EXPECT_NEAR(cmd, cfg.angle_cmd_limit, 1e-12);  // clipped at the limit
}

TEST(TorqueController, SaturationNeedsSustain) {
  adas::SteerConfig cfg;
  vehicle::VehicleParams params;
  adas::TorqueController tc(cfg, params);
  const double demand = 1.0;
  tc.update(demand, demand, 0.01);
  EXPECT_TRUE(tc.saturated_now());
  EXPECT_FALSE(tc.saturated());  // not sustained yet
  for (int i = 0; i < static_cast<int>(cfg.saturation_time / 0.01); ++i)
    tc.update(demand, demand, 0.01);
  EXPECT_TRUE(tc.saturated());
  // Demand returns to normal: saturation clears immediately.
  tc.update(0.0, 0.0, 0.01);
  EXPECT_FALSE(tc.saturated());
}

TEST(LongControl, JerkLimited) {
  adas::LongControl lc(adas::LongControlConfig{.max_jerk = 4.0});
  const double cmd = lc.update(2.0, 0.01);
  EXPECT_NEAR(cmd, 0.04, 1e-12);  // 4 m/s^3 * 10 ms
  lc.reset(0.0);
  EXPECT_DOUBLE_EQ(lc.last_command(), 0.0);
}

TEST(SafetyModel, ClampsAccel) {
  adas::SafetyLimits limits;
  const auto clamped = adas::clamp_to_limits({5.0, 0.0}, limits);
  EXPECT_DOUBLE_EQ(clamped.accel, 2.0);
  const auto braked = adas::clamp_to_limits({-9.0, 0.0}, limits);
  EXPECT_DOUBLE_EQ(braked.accel, -3.5);
}

TEST(SafetyModel, FcwThresholdOutsideEnvelope) {
  // The design defect behind Observation 2: the FCW trigger level exceeds
  // what the clamped command path can ever output.
  const adas::SafetyLimits limits;
  EXPECT_GT(limits.fcw_brake, -limits.min_accel);
}

TEST(Alerts, FcwNeverFiresBelowThreshold) {
  adas::AlertManager am;
  adas::AlertInputs in;
  in.lead_valid = true;
  in.brake_cmd = 3.5;  // the clamp maximum
  in.fcw_brake_threshold = 4.5;
  for (int i = 0; i < 100; ++i) am.update(in);
  EXPECT_EQ(am.fcw_events(), 0u);
}

TEST(Alerts, FcwFiresAboveThreshold) {
  adas::AlertManager am;
  adas::AlertInputs in;
  in.lead_valid = true;
  in.brake_cmd = 5.0;
  in.fcw_brake_threshold = 4.5;
  EXPECT_EQ(am.update(in), adas::AlertKind::kFcw);
  EXPECT_EQ(am.fcw_events(), 1u);
  am.update(in);  // still active: same event
  EXPECT_EQ(am.fcw_events(), 1u);
}

TEST(Alerts, SteerSaturatedEdgeCounted) {
  adas::AlertManager am;
  adas::AlertInputs in;
  in.steer_saturated = true;
  am.update(in);
  am.update(in);
  in.steer_saturated = false;
  am.update(in);
  in.steer_saturated = true;
  am.update(in);
  EXPECT_EQ(am.steer_saturated_events(), 2u);
  EXPECT_EQ(am.total_events(), 2u);
}

// --- sensor models ---------------------------------------------------------

TEST(Sensors, GpsPublishesAtRate) {
  msg::PubSubBus bus;
  sensors::GpsConfig cfg;
  cfg.rate_hz = 10.0;
  sensors::GpsModel gps(bus, cfg, util::Rng(1));
  vehicle::VehicleState state;
  state.speed = 20.0;
  for (std::uint64_t i = 0; i < 100; ++i) gps.step(i, state);
  EXPECT_EQ(bus.published_count(msg::Topic::kGpsLocationExternal), 10u);
}

TEST(Sensors, GpsSpeedNoisyButUnbiased) {
  msg::PubSubBus bus;
  util::RunningStats stats;
  bus.subscribe<msg::GpsLocationExternal>(
      [&](const msg::GpsLocationExternal& m) { stats.add(m.speed); });
  sensors::GpsModel gps(bus, sensors::GpsConfig{}, util::Rng(1));
  vehicle::VehicleState state;
  state.speed = 20.0;
  for (std::uint64_t i = 0; i < 100000; ++i) gps.step(i, state);
  EXPECT_NEAR(stats.mean(), 20.0, 0.01);
  EXPECT_GT(stats.stddev(), 0.01);
}

TEST(Sensors, RadarDetectsLeadInRange) {
  msg::PubSubBus bus;
  msg::Latest<msg::RadarState> latest(bus);
  sensors::RadarConfig cfg;
  cfg.dropout_prob = 0.0;
  sensors::RadarModel radar(bus, cfg, util::Rng(1));
  sensors::RadarModel::LeadTruth truth;
  truth.gap = 60.0;
  truth.rel_speed = -11.0;
  truth.lead_speed = 15.6;
  radar.step(0, truth);
  ASSERT_TRUE(latest.valid());
  EXPECT_TRUE(latest.value().lead_valid);
  EXPECT_NEAR(latest.value().lead_distance, 60.0, 1.5);
}

TEST(Sensors, RadarMissesOutOfRangeOrOffLane) {
  msg::PubSubBus bus;
  msg::Latest<msg::RadarState> latest(bus);
  sensors::RadarConfig cfg;
  cfg.dropout_prob = 0.0;
  sensors::RadarModel radar(bus, cfg, util::Rng(1));
  sensors::RadarModel::LeadTruth far;
  far.gap = 500.0;
  radar.step(0, far);
  EXPECT_FALSE(latest.value().lead_valid);
  sensors::RadarModel::LeadTruth off_lane;
  off_lane.gap = 50.0;
  off_lane.lateral_offset = 3.5;
  radar.step(5, off_lane);
  EXPECT_FALSE(latest.value().lead_valid);
  radar.step(10, std::nullopt);
  EXPECT_FALSE(latest.value().lead_valid);
}

TEST(Sensors, CameraReportsTrueLinesPlusNoise) {
  msg::PubSubBus bus;
  msg::Latest<msg::ModelV2> latest(bus);
  const auto road = road::RoadBuilder::paper_road();
  sensors::CameraConfig cfg;
  cfg.latency_steps = 0;
  sensors::CameraLaneModel cam(bus, road, cfg, util::Rng(1));
  vehicle::VehicleState state;
  state.s = 100.0;
  state.d = -1.85;  // centred in lane 0
  state.pose.heading = 0.0;
  util::RunningStats center;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    cam.step(i, state, 0);
    if (latest.valid())
      center.add(0.5 * (latest.value().left_lane_line +
                        latest.value().right_lane_line));
  }
  // Centred: mean perceived centre offset ~ 0 (small OU bias).
  EXPECT_NEAR(center.mean(), 0.0, 0.15);
}

TEST(Sensors, CameraConfidenceDropsWhenStraddling) {
  msg::PubSubBus bus;
  msg::Latest<msg::ModelV2> latest(bus);
  const auto road = road::RoadBuilder::paper_road();
  sensors::CameraConfig cfg;
  cfg.latency_steps = 0;
  sensors::CameraLaneModel cam(bus, road, cfg, util::Rng(1));
  vehicle::VehicleState centred;
  centred.s = 100.0;
  centred.d = -1.85;
  cam.step(0, centred, 0);
  const double conf_centred = latest.value().left_line_prob;
  vehicle::VehicleState straddling = centred;
  straddling.d = -3.85;  // 2 m off lane centre
  cam.step(5, straddling, 0);
  EXPECT_LT(latest.value().left_line_prob, conf_centred);
}

}  // namespace
