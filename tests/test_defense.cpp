// Tests for scaa::defense: control-invariant detector, context-aware
// monitor, and the end-to-end harness.

#include <gtest/gtest.h>

#include "defense/harness.hpp"
#include "exp/campaign.hpp"

namespace {

using namespace scaa;

TEST(ControlInvariant, QuietOnConsistentSignals) {
  defense::ControlInvariantDetector det{defense::InvariantConfig{}};
  defense::InvariantInputs in;
  for (int i = 0; i < 5000; ++i) {
    in.intent_accel = 0.5;
    in.wire_accel = 0.5;       // no rewrite
    in.measured_accel = 0.5;   // physics agrees
    EXPECT_FALSE(det.update(in, 0.01));
  }
  EXPECT_FALSE(det.alarmed());
}

TEST(ControlInvariant, IntentChannelCatchesRewrite) {
  defense::ControlInvariantDetector det{defense::InvariantConfig{}};
  defense::InvariantInputs in;
  in.intent_accel = 0.0;   // ADAS wanted nothing
  in.wire_accel = 2.0;     // the bus carries an attack value
  in.measured_accel = 2.0; // physics consistent with the wire (no help there)
  bool alarmed = false;
  double t = 0.0;
  for (int i = 0; i < 500 && !alarmed; ++i) {
    alarmed = det.update(in, 0.01);
    t += 0.01;
  }
  EXPECT_TRUE(alarmed);
  EXPECT_LT(t, 0.5);  // detected within half a second
}

TEST(ControlInvariant, IntentChannelCatchesSteerRewrite) {
  defense::ControlInvariantDetector det{defense::InvariantConfig{}};
  defense::InvariantInputs in;
  in.intent_steer = 0.001;
  in.wire_steer = 0.001 + 0.0044;  // the strategic 0.25 deg override
  bool alarmed = false;
  for (int i = 0; i < 500 && !alarmed; ++i) alarmed = det.update(in, 0.01);
  EXPECT_TRUE(alarmed);
}

TEST(ControlInvariant, PhysicsChannelCatchesResponseMismatch) {
  defense::ControlInvariantDetector det{defense::InvariantConfig{}};
  defense::InvariantInputs in;
  in.intent_accel = 1.0;
  in.wire_accel = 1.0;        // wire agrees with intent...
  in.measured_accel = -3.0;   // ...but the car does something else entirely
  bool alarmed = false;
  for (int i = 0; i < 1000 && !alarmed; ++i) alarmed = det.update(in, 0.01);
  EXPECT_TRUE(alarmed);
  EXPECT_GT(det.physics_score(), 0.0);
}

defense::MonitorInputs safe_monitor_inputs() {
  defense::MonitorInputs in;
  in.context.speed = 26.82;
  in.context.lead_valid = true;
  in.context.hwt = 1.7;
  in.context.rel_speed = 0.0;
  in.context.d_left = 1.0;
  in.context.d_right = 1.0;
  in.context.perception_valid = true;
  return in;
}

TEST(ContextMonitor, QuietOnSafeActions) {
  defense::ContextAwareMonitor mon{defense::MonitorConfig{}};
  auto in = safe_monitor_inputs();
  in.wire_accel = 0.2;  // gentle cruise corrections
  for (int i = 0; i < 5000; ++i) EXPECT_FALSE(mon.update(in, 0.01));
}

TEST(ContextMonitor, FlagsAccelerationTowardLead) {
  defense::ContextAwareMonitor mon{defense::MonitorConfig{}};
  auto in = safe_monitor_inputs();
  in.context.hwt = 1.5;       // rule 1 context...
  in.context.rel_speed = 4.0;
  in.wire_accel = 2.0;        // ...while the wire says "accelerate"
  bool alarmed = false;
  for (int i = 0; i < 300 && !alarmed; ++i) alarmed = mon.update(in, 0.01);
  EXPECT_TRUE(alarmed);
  EXPECT_EQ(mon.alarm_action(), attack::UnsafeAction::kAcceleration);
}

TEST(ContextMonitor, FlagsSteeringTowardEdge) {
  defense::ContextAwareMonitor mon{defense::MonitorConfig{}};
  auto in = safe_monitor_inputs();
  in.context.d_right = 0.05;   // at the right edge...
  in.wire_steer = -0.0044;     // ...steering further right
  bool alarmed = false;
  for (int i = 0; i < 300 && !alarmed; ++i) alarmed = mon.update(in, 0.01);
  EXPECT_TRUE(alarmed);
  EXPECT_EQ(mon.alarm_action(), attack::UnsafeAction::kSteerRight);
}

TEST(ContextMonitor, PersistenceFiltersTransients) {
  defense::ContextAwareMonitor mon{defense::MonitorConfig{}};
  auto unsafe = safe_monitor_inputs();
  unsafe.context.hwt = 1.5;
  unsafe.context.rel_speed = 4.0;
  unsafe.wire_accel = 2.0;
  auto safe = safe_monitor_inputs();
  // Alternate: 0.5 s unsafe (below the 1.0 s persistence), 0.5 s safe.
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i < 50; ++i) EXPECT_FALSE(mon.update(unsafe, 0.01));
    for (int i = 0; i < 50; ++i) EXPECT_FALSE(mon.update(safe, 0.01));
  }
  EXPECT_FALSE(mon.alarmed());
}

TEST(Harness, DetectsContextAwareStrategicAttack) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kDeceleration;
  item.strategic_values = true;
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = 4242;
  sim::World world(exp::world_config_for(item));
  defense::DefenseHarness harness(world, defense::InvariantConfig{},
                                  defense::MonitorConfig{});
  sim::SimulationSummary summary;
  const auto outcome = harness.run(&summary);
  ASSERT_TRUE(summary.attack_activated);
  // The intent channel sees the rewrite even though every value is inside
  // the safety envelope.
  EXPECT_TRUE(outcome.invariant_alarmed);
  EXPECT_GE(outcome.invariant_latency, 0.0);
  EXPECT_LT(outcome.invariant_latency, 1.0);
}

TEST(Harness, QuietOnCleanDrive) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.scenario_id = 2;
  item.initial_gap = 70.0;
  item.seed = 4242;
  sim::World world(exp::world_config_for(item));
  defense::DefenseHarness harness(world, defense::InvariantConfig{},
                                  defense::MonitorConfig{});
  const auto outcome = harness.run();
  EXPECT_FALSE(outcome.invariant_alarmed);
  EXPECT_FALSE(outcome.monitor_alarmed);
}

}  // namespace
