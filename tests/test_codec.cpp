// Tests for the precompiled CAN codec (schema handles, flat pack/parse):
// bit-exact equivalence with the string-keyed compatibility path for every
// message of the simulated car, counter-continuity via the flat arrays,
// and the zero-heap-allocations-per-frame property of the hot path.

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "can/database.hpp"
#include "can/dbc_text.hpp"
#include "can/packer.hpp"
#include "util/alloc_counter.hpp"
#include "util/rng.hpp"

namespace {

using namespace scaa;

TEST(Schema, ResolvesEveryMessageAndSignal) {
  const auto db = can::Database::simulated_car();
  const auto& schema = db.schema();
  ASSERT_EQ(schema.message_count(), db.messages().size());
  for (std::size_t m = 0; m < db.messages().size(); ++m) {
    const auto& msg = db.messages()[m];
    const can::MessageHandle by_id = schema.message_by_id(msg.id);
    const can::MessageHandle by_name = schema.message_by_name(msg.name);
    ASSERT_TRUE(by_id.valid()) << msg.name;
    EXPECT_EQ(by_id.index, m);
    EXPECT_EQ(by_name.index, m);
    EXPECT_EQ(schema.signal_count(by_id), msg.signals.size());
    for (std::size_t s = 0; s < msg.signals.size(); ++s) {
      const can::SignalHandle sig =
          schema.signal_by_name(by_id, msg.signals[s].name);
      ASSERT_TRUE(sig.valid()) << msg.signals[s].name;
      EXPECT_EQ(sig.message, m);
      EXPECT_EQ(sig.signal, s);
      EXPECT_EQ(&db.signal(sig), &msg.signals[s]);
    }
  }
}

TEST(Schema, UnknownLookupsAreInvalid) {
  const auto db = can::Database::simulated_car();
  EXPECT_FALSE(db.schema().message_by_id(0x7FF).valid());
  EXPECT_FALSE(db.schema().message_by_name("NOPE").valid());
  const auto steering = db.handle("STEERING_CONTROL");
  EXPECT_FALSE(db.schema().signal_by_name(steering, "NOPE").valid());
  EXPECT_FALSE(
      db.schema().signal_by_name(can::MessageHandle{}, "SPEED").valid());
  EXPECT_THROW(db.handle("NOPE"), std::invalid_argument);
  EXPECT_THROW(db.signal_handle("STEERING_CONTROL", "NOPE"),
               std::invalid_argument);
}

TEST(Schema, ExtendedIdsResolveThroughOverflowTable) {
  // Ids beyond the 11-bit direct table must still resolve (extended CAN).
  std::vector<can::DbcMessage> msgs;
  can::DbcMessage big;
  big.name = "EXTENDED";
  big.id = 0x18DAF110;  // 29-bit id
  big.size = 8;
  big.signals = {can::DbcSignal{"X", 7, 8, can::ByteOrder::kBigEndian, false,
                                1.0, 0.0}};
  msgs.push_back(big);
  const can::Database db(std::move(msgs));
  ASSERT_TRUE(db.schema().message_by_id(0x18DAF110).valid());
  EXPECT_FALSE(db.schema().message_by_id(0x18DAF111).valid());
  EXPECT_EQ(db.by_id(0x18DAF110)->name, "EXTENDED");
}

/// The equivalence property the compatibility shim rests on: for every
/// message and a spread of values across each signal's physical range, the
/// precompiled path and the string-keyed path produce bit-identical frames
/// and decode to identical values.
TEST(Codec, PrecompiledMatchesStringPathForEveryMessage) {
  const auto db = can::Database::simulated_car();
  can::CanPacker string_packer(db);
  can::CanPacker handle_packer(db);
  can::CanParser string_parser(db);
  can::CanParser handle_parser(db);
  util::Rng rng(20220707);

  std::vector<double> values;
  for (const auto& msg : db.messages()) {
    const can::MessageHandle handle = db.handle(msg.name);
    for (int round = 0; round < 64; ++round) {
      std::map<std::string, double> named;
      values.assign(msg.signals.size(), 0.0);
      for (std::size_t s = 0; s < msg.signals.size(); ++s) {
        const auto& sig = msg.signals[s];
        const double span = sig.max_physical() - sig.min_physical();
        const double v = sig.min_physical() + rng.uniform(0.0, 1.0) * span;
        named[sig.name] = v;
        values[s] = v;
      }
      const can::CanFrame a = string_packer.pack(msg.name, named);
      const can::CanFrame b = handle_packer.pack(handle, values);
      ASSERT_EQ(a, b) << msg.name << " round " << round;

      const auto parsed_map = string_parser.parse(a);
      const auto* parsed_flat = handle_parser.parse_flat(b);
      ASSERT_TRUE(parsed_map.has_value());
      ASSERT_NE(parsed_flat, nullptr);
      EXPECT_EQ(parsed_map->checksum_ok, parsed_flat->checksum_ok);
      EXPECT_EQ(parsed_map->counter_ok, parsed_flat->counter_ok);
      ASSERT_EQ(parsed_flat->values.size(), msg.signals.size());
      for (std::size_t s = 0; s < msg.signals.size(); ++s) {
        EXPECT_EQ(parsed_map->values.at(msg.signals[s].name),
                  parsed_flat->values[s])
            << msg.name << "." << msg.signals[s].name;
      }
    }
  }
}

TEST(Codec, UnsetSignalsLeaveBitsZeroLikeOmittedNames) {
  const auto db = can::Database::simulated_car();
  can::CanPacker string_packer(db);
  can::CanPacker handle_packer(db);
  // Omitting a name from the map and passing kSignalUnset must produce the
  // same frame (raw zero bits, not "physical zero").
  const can::CanFrame a = string_packer.pack(
      "STEERING_CONTROL", {{can::sig::kSteerEnabled, 1.0}});
  std::array<double, 2> values{can::kSignalUnset, can::kSignalUnset};
  const auto enabled =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerEnabled);
  values[enabled.signal] = 1.0;
  const can::CanFrame b =
      handle_packer.pack(db.handle("STEERING_CONTROL"), values);
  EXPECT_EQ(a, b);
}

TEST(Codec, FlatCounterContinuityAcrossMessages) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);
  const auto speed = db.handle("SPEED");
  const auto steering = db.handle("STEERING_CONTROL");
  const std::array<double, 2> zeros{0.0, 0.0};

  // Counters are tracked per message: interleaving ids must not trip the
  // continuity check.
  for (int i = 0; i < 6; ++i) {
    const auto* a = parser.parse_flat(packer.pack(speed, zeros));
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->counter_ok) << i;
    const auto* b = parser.parse_flat(packer.pack(steering, zeros));
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->counter_ok) << i;
  }
  // A skipped SPEED frame is a discontinuity for SPEED only.
  packer.pack(speed, zeros);
  EXPECT_FALSE(parser.parse_flat(packer.pack(speed, zeros))->counter_ok);
  EXPECT_TRUE(parser.parse_flat(packer.pack(steering, zeros))->counter_ok);
  EXPECT_EQ(parser.counter_errors(), 1u);
}

TEST(Codec, PrecompiledPackParseDoesNotAllocate) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);
  const auto steering = db.handle("STEERING_CONTROL");
  const auto angle =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd);
  std::array<double, 2> values{0.0, 1.0};

  // Warm up (first calls may touch lazily-initialized runtime state).
  for (int i = 0; i < 8; ++i) {
    values[angle.signal] = 0.01 * i;
    (void)parser.parse_flat(packer.pack(steering, values));
  }

  double sum = 0.0;
  const std::uint64_t before =
      util::g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    values[angle.signal] = 0.001 * i;
    const can::CanFrame frame = packer.pack(steering, values);
    const auto* parsed = parser.parse_flat(frame);
    sum += parsed->values[angle.signal];
  }
  const std::uint64_t after =
      util::g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "precompiled pack/parse hit the heap";
  EXPECT_GT(sum, 0.0);
}

TEST(Codec, WorksOnDatabasesParsedFromDbcText) {
  // The precompiled path is not special-cased to the built-in database:
  // handles resolved against a text-parsed DBC must round-trip too.
  const can::Database db(
      can::parse_dbc(can::simulated_car_dbc(), /*tag_honda=*/true));
  can::CanPacker packer(db);
  can::CanParser parser(db);
  const auto steering = db.handle("STEERING_CONTROL");
  const auto angle =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd);
  std::array<double, 2> values{};
  values[angle.signal] = -1.23;
  const auto* parsed = parser.parse_flat(packer.pack(steering, values));
  ASSERT_NE(parsed, nullptr);
  EXPECT_TRUE(parsed->checksum_ok);
  EXPECT_NEAR(parsed->values[angle.signal], -1.23, 0.01);
}

}  // namespace
