// Tests for sharded campaign orchestration: the deterministic ShardPlan
// partition, slice file naming (fingerprint suffix + collision rejection),
// and the headline guarantee — per-slice checkpoint files merged in global
// chunk order are bit-identical to a single-process run, across shard
// counts, empty slices, torn tails repaired by resume, and the CLI
// coordinator/worker/merge surface.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/campaigns.hpp"
#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "exp/shard.hpp"
#include "util/serial.hpp"

namespace {

using namespace scaa;

exp::CampaignConfig grid_config(int reps, std::uint64_t seed) {
  exp::CampaignConfig config;
  config.repetitions = reps;
  config.base_seed = seed;
  config.threads = 2;
  return config;
}

std::vector<exp::CampaignItem> small_grid(int reps = 2,
                                          std::uint64_t seed = 99) {
  // reps=2: 144 items = 3 chunks (64+64+16) — multi-chunk structure with an
  // odd tail, while staying fast enough to run several shard plans over.
  return exp::make_grid(attack::StrategyKind::kContextAware,
                        /*strategic_values=*/true, /*driver_enabled=*/true,
                        grid_config(reps, seed));
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "scaa_shard_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

void expect_bit_identical(const exp::Aggregate& a, const exp::Aggregate& b) {
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(a.sims_with_alerts, b.sims_with_alerts);
  EXPECT_EQ(a.sims_with_hazards, b.sims_with_hazards);
  EXPECT_EQ(a.sims_with_accidents, b.sims_with_accidents);
  EXPECT_EQ(a.hazards_without_alerts, b.hazards_without_alerts);
  EXPECT_EQ(a.fcw_activations, b.fcw_activations);
  EXPECT_EQ(util::double_bits(a.lane_invasion_rate_mean),
            util::double_bits(b.lane_invasion_rate_mean));
  EXPECT_EQ(util::double_bits(a.tth_mean), util::double_bits(b.tth_mean));
  EXPECT_EQ(util::double_bits(a.tth_std), util::double_bits(b.tth_std));
}

/// Run every shard's slice of @p items into per-slice checkpoint files
/// under @p stem, exactly like a worker fleet would, returning the paths.
std::vector<std::string> run_sharded(const std::vector<exp::CampaignItem>& items,
                                     const exp::CampaignConfig& cc,
                                     std::size_t shard_count,
                                     const std::string& stem) {
  const exp::ShardPlan plan(items.size(), shard_count);
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::string path =
        stem + exp::shard_suffix(s, shard_count) + ".slice";
    std::remove(path.c_str());
    const exp::ChunkRange range = plan.chunks_for(s);
    exp::CampaignCheckpoint checkpoint(path, items, /*resume=*/false);
    exp::run_campaign_streaming(items, cc, {}, &checkpoint, &range);
    paths.push_back(path);
  }
  return paths;
}

// --- ShardPlan -------------------------------------------------------------

TEST(ShardPlan, PartitionsChunksExactly) {
  // Every (items, shards) combination must yield contiguous, disjoint,
  // balanced slices whose union is the whole grid.
  for (const std::size_t n_items : {0u, 1u, 63u, 64u, 65u, 144u, 1000u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
      const exp::ShardPlan plan(n_items, shards);
      const std::size_t n_chunks = (n_items + exp::kCampaignChunk - 1) /
                                   exp::kCampaignChunk;
      EXPECT_EQ(plan.chunk_count(), n_chunks);
      std::size_t next_chunk = 0;
      std::size_t total_items = 0;
      std::size_t min_chunks = n_chunks, max_chunks = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const exp::ChunkRange range = plan.chunks_for(s);
        EXPECT_EQ(range.begin_chunk, next_chunk);  // contiguous, in order
        EXPECT_LE(range.begin_chunk, range.end_chunk);
        next_chunk = range.end_chunk;
        min_chunks = std::min(min_chunks, range.chunk_count());
        max_chunks = std::max(max_chunks, range.chunk_count());
        total_items += plan.items_in(s);
      }
      EXPECT_EQ(next_chunk, n_chunks);    // full coverage
      EXPECT_EQ(total_items, n_items);    // item accounting matches
      if (n_chunks > 0) {
        EXPECT_LE(max_chunks - min_chunks, 1u);  // balanced within one chunk
      }
    }
  }
}

TEST(ShardPlan, MoreShardsThanChunksYieldsEmptySlices) {
  const exp::ShardPlan plan(130, 5);  // 3 chunks across 5 shards
  std::size_t empty = 0;
  for (std::size_t s = 0; s < 5; ++s) {
    if (plan.chunks_for(s).chunk_count() == 0) {
      ++empty;
      EXPECT_EQ(plan.items_in(s), 0u);
    }
  }
  EXPECT_EQ(empty, 2u);
}

TEST(ShardPlan, RejectsDegenerateArguments) {
  EXPECT_THROW(exp::ShardPlan(10, 0), std::invalid_argument);
  EXPECT_THROW(exp::ShardPlan(10, 2).chunks_for(2), std::invalid_argument);
}

// --- slice naming ----------------------------------------------------------

TEST(SliceNaming, ShortFingerprintAndSuffix) {
  EXPECT_EQ(exp::short_fingerprint(0xDEADBEEF12345678ull), "deadbeef");
  EXPECT_EQ(exp::shard_suffix(0, 0), "");
  EXPECT_EQ(exp::shard_suffix(0, 1), "");
  EXPECT_EQ(exp::shard_suffix(0, 4), ".s1of4");
  EXPECT_EQ(exp::shard_suffix(3, 4), ".s4of4");
}

TEST(SliceNaming, CheckpointFileEmbedsSlugFingerprintAndShard) {
  EXPECT_EQ(cli::slice_slug("Random-ST+DUR"), "random-st-dur");
  EXPECT_EQ(cli::slice_checkpoint_file("runs/t4", "table4 Random-ST+DUR",
                                       0xABCDEF0122334455ull),
            "runs/t4.table4-random-st-dur-abcdef01");
  EXPECT_EQ(cli::slice_checkpoint_file("t4", "table4 No Attacks",
                                       0x1122334455667788ull, 1, 3),
            "t4.table4-no-attacks-11223344.s2of3");
}

TEST(SliceNaming, CollisionsAreRejectedWithBothNames) {
  // Same slug, same short fingerprint, different slice names: the exact
  // hazard the fingerprint suffix cannot disambiguate — must be rejected.
  const std::vector<std::pair<std::string, std::uint64_t>> colliding = {
      {"table4 Fixed On", 0x1111111100000001ull},
      {"table4 fixed-on", 0x1111111100000002ull},  // same first 8 hex digits
  };
  try {
    cli::reject_slice_file_collisions("stem", colliding);
    FAIL() << "collision not rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Fixed On"), std::string::npos);
    EXPECT_NE(what.find("fixed-on"), std::string::npos);
  }

  // Distinct fingerprints disambiguate identical slugs: no collision.
  const std::vector<std::pair<std::string, std::uint64_t>> disambiguated = {
      {"table4 Fixed On", 0x1111111100000000ull},
      {"table4 fixed-on", 0x2222222200000000ull},
  };
  EXPECT_NO_THROW(
      cli::reject_slice_file_collisions("stem", disambiguated));

  // The same slice listed twice (same name) shares its file by design.
  const std::vector<std::pair<std::string, std::uint64_t>> same_slice = {
      {"table4 Fixed On", 0x1111111100000000ull},
      {"table4 Fixed On", 0x1111111100000000ull},
  };
  EXPECT_NO_THROW(cli::reject_slice_file_collisions("stem", same_slice));
}

// --- merge bit-identity ----------------------------------------------------

TEST(ShardMerge, MergedSlicesAreBitIdenticalAcrossShardCounts) {
  const auto items = small_grid();
  const auto cc = grid_config(2, 99);
  const exp::Aggregate reference = exp::run_campaign_streaming(items, cc);

  // 1 shard (degenerate), 2 and 3 (balanced vs. not), 5 (> chunk count, so
  // two slices are empty header-only files).
  for (const std::size_t shards : {1u, 2u, 3u, 5u}) {
    const auto paths = run_sharded(
        items, cc, shards, temp_path("merge" + std::to_string(shards)));
    const exp::Aggregate merged = exp::merge_slice_files(items, paths);
    expect_bit_identical(reference, merged);
  }
}

TEST(ShardMerge, TornTailIsMissingUntilResumeRepairsIt) {
  const auto items = small_grid();
  const auto cc = grid_config(2, 99);
  const exp::Aggregate reference = exp::run_campaign_streaming(items, cc);
  const auto paths = run_sharded(items, cc, 2, temp_path("torn"));

  // Tear the final append of shard 2's file (chunks [1,3)): the reader must
  // tolerate the tail without repairing, and the merge must name the now
  // missing chunk instead of folding a half-written record.
  const std::string original = read_file(paths[1]);
  write_file(paths[1], original.substr(0, original.size() - 7));
  try {
    exp::merge_slice_files(items, paths);
    FAIL() << "merge accepted a slice with a torn (missing) chunk";
  } catch (const exp::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
  }
  // Read-only loading must not have modified the file.
  EXPECT_EQ(read_file(paths[1]).size(), original.size() - 7);

  // A worker resume repairs the tail and recomputes only the torn chunk;
  // the merge is then bit-identical again.
  {
    const exp::ShardPlan plan(items.size(), 2);
    const exp::ChunkRange range = plan.chunks_for(1);
    exp::CampaignCheckpoint checkpoint(paths[1], items, /*resume=*/true);
    EXPECT_EQ(checkpoint.completed_chunks(), 1u);  // one chunk survived
    exp::run_campaign_streaming(items, cc, {}, &checkpoint, &range);
  }
  expect_bit_identical(reference, exp::merge_slice_files(items, paths));
}

TEST(ShardMerge, RejectsForeignGridFingerprint) {
  const auto items = small_grid();
  const auto cc = grid_config(2, 99);
  const auto paths = run_sharded(items, cc, 2, temp_path("fp"));
  const auto other_grid = small_grid(2, /*seed=*/100);  // different seed
  EXPECT_THROW(exp::merge_slice_files(other_grid, paths),
               exp::CheckpointError);
}

TEST(ShardMerge, RejectsDuplicateAndOverlappingSlices) {
  const auto items = small_grid();
  const auto cc = grid_config(2, 99);
  const auto paths = run_sharded(items, cc, 2, temp_path("dup"));

  // The same slice file twice: every chunk it holds is a duplicate. The
  // diagnostic must name both files.
  const std::string copy = temp_path("dup.copy");
  write_file(copy, read_file(paths[0]));
  try {
    exp::merge_slice_files(items, {paths[0], paths[1], copy});
    FAIL() << "merge accepted overlapping slices";
  } catch (const exp::CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(paths[0]), std::string::npos);
    EXPECT_NE(what.find(copy), std::string::npos);
  }
}

TEST(ShardMerge, MissingSliceFileFailsCleanly) {
  const auto items = small_grid();
  EXPECT_THROW(
      exp::merge_slice_files(items, {temp_path("never-written.slice")}),
      exp::CheckpointError);
}

TEST(ShardMerge, ReaderExposesOnlyCommittedChunks) {
  const auto items = small_grid();
  const auto cc = grid_config(2, 99);
  const auto paths = run_sharded(items, cc, 3, temp_path("reader"));

  // Shard 2 of 3 holds exactly chunk 1 of the 3-chunk grid.
  const exp::CampaignCheckpointReader reader(paths[1], items);
  EXPECT_EQ(reader.chunk_count(), 3u);
  EXPECT_EQ(reader.completed_chunks(), 1u);
  EXPECT_FALSE(reader.chunk_complete(0));
  EXPECT_TRUE(reader.chunk_complete(1));
  EXPECT_EQ(reader.record(1).simulations, 64u);
  EXPECT_THROW(reader.record(0), exp::CheckpointError);
}

TEST(ShardMerge, ReaderRefusesLiveWorkerFile) {
  const auto items = small_grid();
  const auto cc = grid_config(2, 99);
  const auto paths = run_sharded(items, cc, 2, temp_path("live"));

  // A writer holding the slice open (flock) must make merging fail cleanly
  // instead of folding a file that is still being appended to.
  exp::CampaignCheckpoint live(paths[0], items, /*resume=*/true);
  EXPECT_THROW(exp::merge_slice_files(items, paths), exp::CheckpointError);
}

// --- CLI surface -----------------------------------------------------------

/// Run one scaa_campaign subcommand in-process, returning (exit, stdout).
std::pair<int, std::string> run_cli(const std::string& name,
                                    const std::vector<std::string>& tokens) {
  std::ostringstream out, err;
  const int exit_code = cli::run_campaign_command(name, tokens, out, err);
  return {exit_code, out.str()};
}

TEST(ShardCli, CoordinatorAndMergeMatchSingleProcessByteForByte) {
  // The coordinator refuses to clobber slice files without --resume, so a
  // previous ctest run's leftovers must go before the fresh run.
  std::filesystem::remove_all(temp_path("cli"));
  const std::string stem = temp_path("cli/ck");
  const std::vector<std::string> common = {"--reps", "1", "--seed", "9",
                                           "--format", "json"};

  auto reference = run_cli("table4", common);
  ASSERT_EQ(reference.first, 0);

  auto sharded = common;
  sharded.insert(sharded.end(),
                 {"--shards", "2", "--checkpoint", stem});
  auto coordinated = run_cli("table4", sharded);
  ASSERT_EQ(coordinated.first, 0);
  EXPECT_EQ(reference.second, coordinated.second);

  auto merge_tokens = common;
  merge_tokens.insert(merge_tokens.end(),
                      {"--shards", "2", "--checkpoint", stem});
  auto merged = run_cli("merge", merge_tokens);
  ASSERT_EQ(merged.first, 0);
  EXPECT_EQ(reference.second, merged.second);
}

TEST(ShardCli, UsageErrorsAreRejectedUpfront) {
  // Sharding without a checkpoint stem has nowhere to put slice files.
  EXPECT_EQ(run_cli("table4", {"--shards", "2"}).first, 2);
  EXPECT_EQ(run_cli("table4", {"--shard", "1/2"}).first, 2);
  // Coordinator and manual worker modes are mutually exclusive.
  EXPECT_EQ(run_cli("table4", {"--shards", "2", "--shard", "1/2",
                               "--checkpoint", temp_path("x")})
                .first,
            2);
  // Malformed --shard specs.
  for (const char* spec : {"0/2", "3/2", "2", "a/b", "1/0", "/2", "1/"}) {
    EXPECT_EQ(run_cli("table4", {"--shard", spec, "--checkpoint",
                                 temp_path("x")})
                  .first,
              2)
        << spec;
  }
  // merge requires the stem.
  EXPECT_EQ(run_cli("merge", {"--shards", "2"}).first, 2);
  // merge before any worker ran: missing slice files is a clean failure.
  EXPECT_EQ(run_cli("merge", {"--shards", "2", "--checkpoint",
                              temp_path("cli-empty/ck")})
                .first,
            1);
  // Values that would truncate through the long long -> int narrowing are
  // rejected at parse time (the ArgParser range check fires on the wide
  // value): 2^32+1 must exit 2, never wrap to --shards 1.
  EXPECT_EQ(run_cli("table4", {"--shards", "4294967297", "--checkpoint",
                               temp_path("x")})
                .first,
            2);
  EXPECT_EQ(run_cli("merge", {"--shards", "4294967297", "--checkpoint",
                              temp_path("x")})
                .first,
            2);
}

}  // namespace
