// Tests for the real-time executor stack: DeadlineClock semantics, the
// determinism contract (a --realtime run's aggregates are bit-identical to
// a free-running run on the same config and seed), overrun accounting
// under an injected slow-tick fault, the FIFO wire tap's byte-identity
// with the in-process MessageLog oracle, and the `scaa_campaign run` CLI
// surface (summary-row identity across modes, usage exits, miss-budget
// exit 3).
//
// Every test here lives in the `Realtime` suite: the CI workflow's
// SCAA_THREADED_SUITES regex routes this suite into the TSan-capable lane
// (the FIFO tap test runs a reader thread).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/campaigns.hpp"
#include "exp/campaign.hpp"
#include "exp/realtime.hpp"
#include "msg/log.hpp"
#include "sim/world.hpp"
#include "util/deadline_clock.hpp"
#include "util/serial.hpp"

namespace {

using namespace scaa;

/// A short but non-trivial configuration: Context-Aware attack, 2 s of
/// simulated time (200 ticks), so the realtime-vs-free-running comparison
/// exercises sensors, planners, the attack engine, and the monitor.
sim::WorldConfig short_attack_config() {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  item.seed = 77;
  sim::WorldConfig cfg = exp::world_config_for(item);
  cfg.duration = 2.0;
  return cfg;
}

/// Field-by-field bit-exact comparison (doubles as bit patterns): the
/// realtime executor must not perturb a single aggregate bit.
void expect_summary_identical(const sim::SimulationSummary& a,
                              const sim::SimulationSummary& b) {
  EXPECT_EQ(a.any_hazard, b.any_hazard);
  EXPECT_EQ(a.first_hazard, b.first_hazard);
  EXPECT_EQ(util::double_bits(a.first_hazard_time),
            util::double_bits(b.first_hazard_time));
  EXPECT_EQ(a.hazard_h1, b.hazard_h1);
  EXPECT_EQ(a.hazard_h2, b.hazard_h2);
  EXPECT_EQ(a.hazard_h3, b.hazard_h3);
  EXPECT_EQ(util::double_bits(a.hazard_h1_time),
            util::double_bits(b.hazard_h1_time));
  EXPECT_EQ(util::double_bits(a.hazard_h2_time),
            util::double_bits(b.hazard_h2_time));
  EXPECT_EQ(util::double_bits(a.hazard_h3_time),
            util::double_bits(b.hazard_h3_time));
  EXPECT_EQ(a.any_accident, b.any_accident);
  EXPECT_EQ(a.first_accident, b.first_accident);
  EXPECT_EQ(util::double_bits(a.first_accident_time),
            util::double_bits(b.first_accident_time));
  EXPECT_EQ(a.accident_a1, b.accident_a1);
  EXPECT_EQ(a.accident_a2, b.accident_a2);
  EXPECT_EQ(a.accident_a3, b.accident_a3);
  EXPECT_EQ(a.alert_events, b.alert_events);
  EXPECT_EQ(a.steer_saturated_events, b.steer_saturated_events);
  EXPECT_EQ(a.fcw_events, b.fcw_events);
  EXPECT_EQ(a.alert_before_hazard, b.alert_before_hazard);
  EXPECT_EQ(a.lane_invasions, b.lane_invasions);
  EXPECT_EQ(util::double_bits(a.lane_invasion_rate),
            util::double_bits(b.lane_invasion_rate));
  EXPECT_EQ(a.attack_activated, b.attack_activated);
  EXPECT_EQ(util::double_bits(a.attack_start),
            util::double_bits(b.attack_start));
  EXPECT_EQ(util::double_bits(a.attack_duration),
            util::double_bits(b.attack_duration));
  EXPECT_EQ(util::double_bits(a.tth), util::double_bits(b.tth));
  EXPECT_EQ(a.frames_corrupted, b.frames_corrupted);
  EXPECT_EQ(a.driver_engaged, b.driver_engaged);
  EXPECT_EQ(util::double_bits(a.driver_engage_time),
            util::double_bits(b.driver_engage_time));
  EXPECT_EQ(util::double_bits(a.driver_perception_time),
            util::double_bits(b.driver_perception_time));
  EXPECT_EQ(util::double_bits(a.sim_end_time),
            util::double_bits(b.sim_end_time));
  EXPECT_EQ(a.can_checksum_rejects, b.can_checksum_rejects);
  EXPECT_EQ(a.panda_frames_blocked, b.panda_frames_blocked);
}

TEST(Realtime, DeadlineClockRejectsBadPeriods) {
  EXPECT_THROW(util::DeadlineClock(0.0), std::invalid_argument);
  EXPECT_THROW(util::DeadlineClock(-0.01), std::invalid_argument);
  EXPECT_THROW(util::DeadlineClock(
                   std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(util::DeadlineClock(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Realtime, DeadlineClockAccountsSlackAndOverruns) {
  util::DeadlineClock clock(0.002);  // 500 Hz
  EXPECT_EQ(clock.period_s(), 0.002);
  clock.start();

  // No work between start and wait: the deadline is met, wake error is
  // whatever the scheduler added (never negative).
  const auto met = clock.wait_next();
  EXPECT_FALSE(met.overrun);
  EXPECT_GE(met.slack_s, 0.0);
  EXPECT_GE(met.wake_error_s, 0.0);

  // Burn several periods: the next wait must report one overrun (not one
  // per missed period) and re-phase to a future deadline, so the wait
  // after that is met again.
  const double stall_until = util::monotonic_now_s() + 0.010;
  while (util::monotonic_now_s() < stall_until) {
  }
  const auto late = clock.wait_next();
  EXPECT_TRUE(late.overrun);
  EXPECT_LT(late.slack_s, 0.0);
  EXPECT_GT(late.wake_error_s, 0.0);

  const auto recovered = clock.wait_next();
  EXPECT_FALSE(recovered.overrun);
}

TEST(Realtime, ExecutorValidatesPeriodAndLifecycle) {
  sim::WorldConfig cfg = short_attack_config();
  cfg.duration = 0.05;
  sim::World world(cfg);
  exp::RealtimeConfig bad;
  bad.period_s = 0.0;
  EXPECT_THROW(exp::run_realtime(world, bad), std::invalid_argument);

  exp::RealtimeConfig rc;
  rc.period_s = 1e-5;
  const exp::RealtimeReport report = exp::run_realtime(world, rc);
  EXPECT_GT(report.ticks, 0u);
  // Consumed like World::run(): a second run without reset() throws, and
  // reset() re-arms.
  EXPECT_THROW(exp::run_realtime(world, rc), std::logic_error);
  EXPECT_THROW(world.run(), std::logic_error);
  world.reset(cfg);
  EXPECT_NO_THROW(world.run());
}

TEST(Realtime, AggregatesMatchFreeRunning) {
  const sim::WorldConfig cfg = short_attack_config();

  sim::World free_running(cfg);
  const sim::SimulationSummary baseline = free_running.run();

  // A period far below the tick's compute time makes every tick overrun —
  // the executor takes the no-sleep re-phasing path and the test stays
  // fast. Determinism must hold regardless of the deadline behavior.
  sim::World realtime(cfg);
  exp::RealtimeConfig rc;
  rc.period_s = 1e-5;
  const exp::RealtimeReport report = exp::run_realtime(realtime, rc);

  expect_summary_identical(baseline, report.summary);
  EXPECT_EQ(report.ticks, 200u);
  ASSERT_EQ(report.phases.size(), 5u);
  for (const exp::PhaseStats& phase : report.phases) {
    EXPECT_EQ(phase.latency_s.count(), report.ticks);
    EXPECT_EQ(phase.hist_us.total(), report.ticks);
  }
  EXPECT_EQ(report.wake_error_s.count(), report.ticks);
}

TEST(Realtime, OverrunsMonotoneUnderSlowTickFault) {
  sim::WorldConfig cfg = short_attack_config();
  cfg.duration = 0.05;  // 5 ticks: the fault hook sleeps 2x the period each

  sim::World fast_world(cfg);
  exp::RealtimeConfig fast_rc;
  fast_rc.period_s = 0.001;
  const exp::RealtimeReport fast = exp::run_realtime(fast_world, fast_rc);

  sim::World slow_world(cfg);
  exp::RealtimeConfig slow_rc;
  slow_rc.period_s = 0.001;
  slow_rc.slow_tick_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  const exp::RealtimeReport slow = exp::run_realtime(slow_world, slow_rc);

  // The injected fault burns two periods inside every tick: every deadline
  // is missed, and that dominates whatever the unfaulted run did.
  EXPECT_EQ(slow.ticks, fast.ticks);
  EXPECT_EQ(slow.overruns, slow.ticks);
  EXPECT_GE(slow.overruns, fast.overruns);
  EXPECT_EQ(slow.miss_fraction(), 1.0);

  // Histogram monotonicity: the whole-tick histogram's clamping top bin
  // (>= 2x the budget) absorbs every faulted tick, never fewer than the
  // unfaulted run put there.
  const auto& fast_hist = fast.phases[0].hist_us;
  const auto& slow_hist = slow.phases[0].hist_us;
  const std::size_t top = slow_hist.bins() - 1;
  EXPECT_EQ(slow_hist.bin_count(top), slow.ticks);
  EXPECT_GE(slow_hist.bin_count(top), fast_hist.bin_count(top));

  // Determinism again: the fault hook changes timing only.
  expect_summary_identical(fast.summary, slow.summary);
}

TEST(Realtime, FifoTapMatchesMessageLogOracle) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() /
      ("scaa_tap_test." + std::to_string(static_cast<long long>(::getpid())));
  fs::remove(path);
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0);

  // Reader first: a FIFO's O_WRONLY open blocks until the read end exists.
  std::vector<std::uint8_t> streamed;
  std::thread reader([&streamed, &path] {
    const int fd = ::open(path.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    std::uint8_t buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof buf)) > 0)
      streamed.insert(streamed.end(), buf, buf + n);
    ::close(fd);
  });

  sim::WorldConfig cfg = short_attack_config();
  cfg.duration = 0.5;
  sim::World world(cfg);

  // The in-process oracle and the FIFO tap subscribe to the same bus and
  // see the identical lazily-serialized frames.
  msg::MessageLog log;
  log.record_all(world.message_bus(), [] { return std::uint64_t{0}; });
  std::uint64_t frames = 0;
  {
    exp::FifoTap tap(world.message_bus(), path.string());
    world.run();
    EXPECT_FALSE(tap.broken());
    frames = tap.frames_streamed();
  }  // tap destructor unsubscribes; its fd closing EOFs the reader
  log.stop(world.message_bus());
  reader.join();
  fs::remove(path);

  ASSERT_GT(log.size(), 0u);
  EXPECT_EQ(frames, log.size());

  std::vector<std::uint8_t> oracle;
  for (const msg::LogEntry& entry : log.entries())
    exp::append_tap_frame(oracle, entry.frame.view());
  ASSERT_EQ(streamed.size(), oracle.size());
  EXPECT_EQ(streamed, oracle);
}

TEST(Realtime, FifoTapResetRearmsBrokenLatch) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() /
      ("scaa_tap_reset." + std::to_string(static_cast<long long>(::getpid())));
  fs::remove(path);
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0);

  // O_NONBLOCK lets the read end open without a writer, which in turn lets
  // the tap's O_WRONLY open succeed immediately.
  int reader = ::open(path.c_str(), O_RDONLY | O_NONBLOCK);
  ASSERT_GE(reader, 0);

  msg::PubSubBus bus;
  exp::FifoTap tap(bus, path.string());
  msg::CarState cs;
  cs.mono_time = 1;
  bus.publish(cs);
  EXPECT_EQ(tap.frames_streamed(), 1u);
  EXPECT_FALSE(tap.broken());

  // Reader hangs up: the very next write hits EPIPE (SIGPIPE is ignored),
  // the warn-once latch trips, and further publishes are muted.
  ASSERT_EQ(::close(reader), 0);
  bus.publish(cs);
  EXPECT_TRUE(tap.broken());
  EXPECT_EQ(tap.frames_streamed(), 1u);
  bus.publish(cs);
  EXPECT_EQ(tap.frames_streamed(), 1u);

  // The satellite fix: reset() re-arms the latch for the next run, so a
  // fresh reader sees frames again — without it the tap stays silently
  // muted for every simulation after the first hang-up.
  reader = ::open(path.c_str(), O_RDONLY | O_NONBLOCK);
  ASSERT_GE(reader, 0);
  tap.reset();
  EXPECT_FALSE(tap.broken());
  EXPECT_EQ(tap.frames_streamed(), 0u);
  bus.publish(cs);
  bus.publish(cs);
  EXPECT_EQ(tap.frames_streamed(), 2u);
  EXPECT_FALSE(tap.broken());

  ::close(reader);
  fs::remove(path);
}

/// Extract the one line starting with @p prefix from multi-line output.
std::string line_starting_with(const std::string& text,
                               const std::string& prefix) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(prefix, 0) == 0) return line;
  return {};
}

TEST(Realtime, CliSummaryRowByteIdenticalAcrossModes) {
  std::ostringstream free_out, free_err;
  ASSERT_EQ(cli::run_campaign_command(
                "run", {"--duration", "1", "--format", "csv"}, free_out,
                free_err),
            0);

  std::ostringstream rt_out, rt_err;
  ASSERT_EQ(cli::run_campaign_command(
                "run",
                {"--duration", "1", "--realtime", "--period", "0.00001",
                 "--format", "csv"},
                rt_out, rt_err),
            0);

  const std::string free_summary =
      line_starting_with(free_out.str(), "summary,");
  const std::string rt_summary = line_starting_with(rt_out.str(), "summary,");
  ASSERT_FALSE(free_summary.empty());
  EXPECT_EQ(free_summary, rt_summary);

  // The realtime report additionally carries the accounting rows.
  EXPECT_FALSE(line_starting_with(rt_out.str(), "phase:tick,").empty());
  EXPECT_FALSE(line_starting_with(rt_out.str(), "deadline,").empty());
  EXPECT_TRUE(line_starting_with(free_out.str(), "deadline,").empty());
}

TEST(Realtime, CliUsageErrorsExitTwo) {
  const std::vector<std::vector<std::string>> bad = {
      {"--period", "0.01"},                       // --period without --realtime
      {"--miss-budget", "0.5"},                   // likewise
      {"--realtime", "--period", "0"},            // out of range
      {"--realtime", "--period", "100"},          // out of range
      {"--realtime", "--miss-budget", "1.5"},     // not a fraction
      {"--realtime", "--miss-budget", "-0.1"},    // not a fraction
      {"--duration", "0"},                        // empty simulation
      {"--duration", "90000"},                    // > 24 h
      {"--scenario", "5"},                        // unknown scenario
  };
  for (const auto& tokens : bad) {
    std::ostringstream out, err;
    EXPECT_EQ(cli::run_campaign_command("run", tokens, out, err), 2)
        << "tokens: " << (tokens.empty() ? "" : tokens.front());
    EXPECT_FALSE(err.str().empty());
  }
}

TEST(Realtime, CliMissBudgetExitsThreeWithReportWritten) {
  // A 5 us period makes every tick overrun; a zero budget turns that into
  // the miss-budget exit. The report must still reach the sink.
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_campaign_command(
                "run",
                {"--duration", "0.1", "--realtime", "--period", "0.000005",
                 "--miss-budget", "0", "--format", "csv"},
                out, err),
            3);
  EXPECT_NE(err.str().find("miss budget exceeded"), std::string::npos);
  EXPECT_FALSE(line_starting_with(out.str(), "summary,").empty());
  EXPECT_FALSE(line_starting_with(out.str(), "deadline,").empty());
}

}  // namespace
