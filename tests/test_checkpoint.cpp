// Tests for the crash-safe campaign checkpoint/resume subsystem: exact
// serialization round trips, fingerprint and corruption rejection, torn-tail
// tolerance, and the headline guarantee — a campaign interrupted mid-run and
// resumed produces results bit-identical to an uninterrupted run at any
// thread count.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "exp/tables.hpp"
#include "util/serial.hpp"
#include "util/stats.hpp"

namespace {

using namespace scaa;

exp::CampaignConfig grid_config(int reps, std::uint64_t seed) {
  exp::CampaignConfig config;
  config.repetitions = reps;
  config.base_seed = seed;
  return config;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "scaa_ckpt_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

std::vector<std::string> file_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::istringstream in(read_file(path));
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Simulate a crash: keep the header plus the first @p chunks chunk records
/// of @p from, writing the truncated file to @p to.
void truncate_to_chunks(const std::string& from, const std::string& to,
                        std::size_t chunks) {
  const auto lines = file_lines(from);
  ASSERT_GT(lines.size(), chunks);  // header + at least `chunks` records
  std::string out;
  for (std::size_t i = 0; i < chunks + 1; ++i) out += lines[i] + "\n";
  write_file(to, out);
}

void expect_bit_identical(const exp::Aggregate& a, const exp::Aggregate& b) {
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(a.sims_with_alerts, b.sims_with_alerts);
  EXPECT_EQ(a.sims_with_hazards, b.sims_with_hazards);
  EXPECT_EQ(a.sims_with_accidents, b.sims_with_accidents);
  EXPECT_EQ(a.hazards_without_alerts, b.hazards_without_alerts);
  EXPECT_EQ(a.fcw_activations, b.fcw_activations);
  // Bit patterns, not EXPECT_DOUBLE_EQ: the guarantee is exactness.
  EXPECT_EQ(util::double_bits(a.lane_invasion_rate_mean),
            util::double_bits(b.lane_invasion_rate_mean));
  EXPECT_EQ(util::double_bits(a.tth_mean), util::double_bits(b.tth_mean));
  EXPECT_EQ(util::double_bits(a.tth_std), util::double_bits(b.tth_std));
}

// --- serialization primitives ---------------------------------------------

TEST(Serial, HexU64RoundTrip) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xDEADBEEF},
        ~std::uint64_t{0}}) {
    const std::string hex = util::hex_u64(v);
    EXPECT_EQ(hex.size(), 16u);
    std::uint64_t parsed = 0;
    ASSERT_TRUE(util::parse_hex_u64(hex, parsed));
    EXPECT_EQ(parsed, v);
  }
}

TEST(Serial, ParseHexRejectsMalformed) {
  std::uint64_t out = 0;
  EXPECT_FALSE(util::parse_hex_u64("", out));
  EXPECT_FALSE(util::parse_hex_u64("12g4", out));
  EXPECT_FALSE(util::parse_hex_u64("11112222333344445", out));  // 17 digits
  EXPECT_FALSE(util::parse_hex_u64("0x12", out));
}

TEST(Serial, DoubleBitsExactForAwkwardValues) {
  for (const double v : {0.0, -0.0, 1.0 / 3.0, 1e300, 5e-324 /* denormal */,
                         -2.2250738585072014e-308}) {
    EXPECT_EQ(util::double_from_bits(util::double_bits(v)), v);
  }
  // -0.0 and 0.0 compare equal but must serialize distinctly.
  EXPECT_NE(util::double_bits(0.0), util::double_bits(-0.0));
}

TEST(Serial, RunningStatsRecordRoundTripIsExact) {
  util::RunningStats stats;
  // Samples chosen so mean/m2 are non-terminating binary fractions.
  for (int i = 0; i < 1000; ++i) stats.add(0.1 * static_cast<double>(i) / 7.0);
  const util::RunningStats restored =
      util::RunningStats::from_record(stats.to_record());
  EXPECT_EQ(restored.count(), stats.count());
  EXPECT_EQ(util::double_bits(restored.mean()), util::double_bits(stats.mean()));
  EXPECT_EQ(util::double_bits(restored.variance()),
            util::double_bits(stats.variance()));
  EXPECT_EQ(util::double_bits(restored.min()), util::double_bits(stats.min()));
  EXPECT_EQ(util::double_bits(restored.max()), util::double_bits(stats.max()));

  // Merging a restored accumulator must behave exactly like the original.
  util::RunningStats tail;
  for (int i = 0; i < 17; ++i) tail.add(3.3 / (i + 1.0));
  util::RunningStats merged_orig = stats;
  merged_orig.merge(tail);
  util::RunningStats merged_restored =
      util::RunningStats::from_record(stats.to_record());
  merged_restored.merge(tail);
  EXPECT_EQ(util::double_bits(merged_orig.mean()),
            util::double_bits(merged_restored.mean()));
  EXPECT_EQ(util::double_bits(merged_orig.variance()),
            util::double_bits(merged_restored.variance()));
}

TEST(Serial, AggregateAccumulatorRecordRoundTrip) {
  exp::AggregateAccumulator acc;
  sim::SimulationSummary s;
  s.any_hazard = true;
  s.alert_events = 2;
  s.lane_invasion_rate = 0.123456789;
  s.tth = 3.25;
  acc.add(s);
  s.any_hazard = false;
  s.alert_events = 0;
  s.tth = -1.0;  // not folded into tth stats
  acc.add(s);
  const exp::AggregateAccumulator restored =
      exp::AggregateAccumulator::from_record(acc.to_record());
  expect_bit_identical(restored.finish(), acc.finish());
}

// --- fingerprints ----------------------------------------------------------

TEST(Fingerprint, SensitiveToEveryGridParameter) {
  const auto base = exp::make_grid(attack::StrategyKind::kRandomSt, false,
                                   true, grid_config(1, 1));
  const std::uint64_t fp = exp::grid_fingerprint(base);
  EXPECT_EQ(fp, exp::grid_fingerprint(base));  // deterministic

  EXPECT_NE(fp, exp::grid_fingerprint(exp::make_grid(
                    attack::StrategyKind::kRandomDur, false, true,
                    grid_config(1, 1))));
  EXPECT_NE(fp, exp::grid_fingerprint(exp::make_grid(
                    attack::StrategyKind::kRandomSt, true, true,
                    grid_config(1, 1))));
  EXPECT_NE(fp, exp::grid_fingerprint(exp::make_grid(
                    attack::StrategyKind::kRandomSt, false, false,
                    grid_config(1, 1))));
  EXPECT_NE(fp, exp::grid_fingerprint(exp::make_grid(
                    attack::StrategyKind::kRandomSt, false, true,
                    grid_config(2, 1))));
  EXPECT_NE(fp, exp::grid_fingerprint(exp::make_grid(
                    attack::StrategyKind::kRandomSt, false, true,
                    grid_config(1, 2))));

  auto shorter = base;
  shorter.pop_back();
  EXPECT_NE(fp, exp::grid_fingerprint(shorter));
}

// --- checkpoint file lifecycle ---------------------------------------------

TEST(CampaignCheckpoint, FreshRefusesExistingFile) {
  const std::string path = temp_path("fresh_refuses");
  const auto grid = exp::make_grid(attack::StrategyKind::kNone, false, true,
                                   grid_config(1, 1));
  write_file(path, "stale contents\n");
  EXPECT_THROW(exp::CampaignCheckpoint(path, grid, /*resume=*/false),
               exp::CheckpointError);
  std::remove(path.c_str());
  // Absent file: fresh construction creates it with just the header.
  exp::CampaignCheckpoint fresh(path, grid, /*resume=*/false);
  EXPECT_EQ(fresh.completed_chunks(), 0u);
  EXPECT_EQ(file_lines(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, ResumeOnAbsentFileStartsFresh) {
  const std::string path = temp_path("resume_absent");
  std::remove(path.c_str());
  const auto grid = exp::make_grid(attack::StrategyKind::kNone, false, true,
                                   grid_config(1, 1));
  exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/true);
  EXPECT_EQ(ckpt.completed_chunks(), 0u);
  EXPECT_EQ(ckpt.chunk_count(), (grid.size() + exp::kCampaignChunk - 1) /
                                    exp::kCampaignChunk);
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, CommitReloadRestoresBitExactState) {
  const std::string path = temp_path("commit_reload");
  std::remove(path.c_str());
  const auto grid = exp::make_grid(attack::StrategyKind::kNone, false, true,
                                   grid_config(1, 9));

  exp::AggregateAccumulator acc;
  sim::SimulationSummary s;
  s.lane_invasion_rate = 1.0 / 3.0;
  s.tth = 2.0 / 7.0;
  s.any_hazard = true;
  for (std::size_t i = 0; i < exp::kCampaignChunk; ++i) acc.add(s);

  {
    exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/false);
    ckpt.commit(0, acc);
    EXPECT_THROW(ckpt.commit(0, acc), exp::CheckpointError);  // duplicate
  }
  exp::CampaignCheckpoint reloaded(path, grid, /*resume=*/true);
  EXPECT_TRUE(reloaded.chunk_complete(0));
  EXPECT_FALSE(reloaded.chunk_complete(1));
  EXPECT_EQ(reloaded.completed_items(), exp::kCampaignChunk);
  expect_bit_identical(reloaded.restored(0).finish(), acc.finish());
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, SecondOpenerIsLockedOut) {
  // flock is per open-file-description, so a second open inside this
  // process models a concurrent second process (e.g. a watchdog restarting
  // the campaign while the old run is still alive).
  const std::string path = temp_path("locked_out");
  std::remove(path.c_str());
  const auto grid = exp::make_grid(attack::StrategyKind::kNone, false, true,
                                   grid_config(1, 1));
  {
    exp::CampaignCheckpoint holder(path, grid, /*resume=*/false);
    EXPECT_THROW(exp::CampaignCheckpoint(path, grid, /*resume=*/true),
                 exp::CheckpointError);
  }
  // Lock released with the holder: the retry can now proceed.
  exp::CampaignCheckpoint retry(path, grid, /*resume=*/true);
  EXPECT_EQ(retry.completed_chunks(), 0u);
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, RejectsMismatchedFingerprint) {
  const std::string path = temp_path("fingerprint_mismatch");
  std::remove(path.c_str());
  const auto grid = exp::make_grid(attack::StrategyKind::kNone, false, true,
                                   grid_config(1, 1));
  { exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/false); }
  // Same shape, different base seed -> different fingerprint -> rejected.
  const auto other = exp::make_grid(attack::StrategyKind::kNone, false, true,
                                    grid_config(1, 2));
  EXPECT_THROW(exp::CampaignCheckpoint(path, other, /*resume=*/true),
               exp::CheckpointError);
  std::remove(path.c_str());
}

/// Two-full-chunk grid (128 items) so every committed chunk holds exactly
/// kCampaignChunk simulations.
std::vector<exp::CampaignItem> two_chunk_grid(std::uint64_t seed) {
  auto grid = exp::make_grid(attack::StrategyKind::kNone, false, true,
                             grid_config(2, seed));
  grid.resize(2 * exp::kCampaignChunk);
  return grid;
}

TEST(CampaignCheckpoint, RejectsCorruptedMiddleRecord) {
  const std::string path = temp_path("corrupt_middle");
  std::remove(path.c_str());
  const auto grid = two_chunk_grid(4);
  {
    exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/false);
    exp::AggregateAccumulator acc;
    sim::SimulationSummary s;
    for (std::size_t i = 0; i < exp::kCampaignChunk; ++i) acc.add(s);
    ckpt.commit(0, acc);
    ckpt.commit(1, acc);
  }
  // Flip one payload byte of the first chunk record (line 2 of 3): its crc
  // no longer matches and there are records after it, so this is
  // corruption, not a torn tail.
  std::string contents = read_file(path);
  const std::size_t first_eol = contents.find('\n');
  ASSERT_NE(first_eol, std::string::npos);
  const std::size_t target = contents.find("sims=64", first_eol);
  ASSERT_NE(target, std::string::npos);
  contents[target + 5] = '9';
  write_file(path, contents);
  EXPECT_THROW(exp::CampaignCheckpoint(path, grid, /*resume=*/true),
               exp::CheckpointError);
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, ToleratesAndRepairsTornTail) {
  const std::string path = temp_path("torn_tail");
  std::remove(path.c_str());
  const auto grid = two_chunk_grid(4);
  exp::AggregateAccumulator acc;
  sim::SimulationSummary s;
  for (std::size_t i = 0; i < exp::kCampaignChunk; ++i) acc.add(s);
  {
    exp::CampaignCheckpoint ckpt(path, grid, /*resume=*/false);
    ckpt.commit(0, acc);
    ckpt.commit(1, acc);
  }
  // A crash tears the final append mid-line: chunk 1's record loses its
  // tail (including the newline).
  std::string contents = read_file(path);
  contents.resize(contents.size() - 27);
  write_file(path, contents);

  {
    exp::CampaignCheckpoint reloaded(path, grid, /*resume=*/true);
    EXPECT_TRUE(reloaded.chunk_complete(0));
    EXPECT_FALSE(reloaded.chunk_complete(1));  // torn -> recompute
    // The torn bytes were truncated away, so a fresh commit of chunk 1
    // must land on its own line and survive another reload.
    reloaded.commit(1, acc);
  }
  exp::CampaignCheckpoint again(path, grid, /*resume=*/true);
  EXPECT_TRUE(again.chunk_complete(1));
  expect_bit_identical(again.restored(1).finish(), acc.finish());
  std::remove(path.c_str());
}

// --- kill-and-resume equivalence -------------------------------------------

TEST(CheckpointResume, StreamingKillAndResumeIsBitIdentical) {
  const std::string full_path = temp_path("stream_small_full");
  std::remove(full_path.c_str());
  auto cc = grid_config(2, 11);
  const auto grid = exp::make_grid(attack::StrategyKind::kContextAware, true,
                                   true, cc);  // 144 items, 3 chunks
  cc.threads = 4;
  exp::Aggregate full;
  {
    exp::CampaignCheckpoint ckpt(full_path, grid, /*resume=*/false);
    full = exp::run_campaign_streaming(grid, cc, {}, &ckpt);
  }
  // The checkpoint of a completed run holds every chunk.
  {
    exp::CampaignCheckpoint done(full_path, grid, /*resume=*/true);
    EXPECT_EQ(done.completed_items(), grid.size());
    // Resuming a fully-checkpointed campaign recomputes nothing and still
    // returns the exact aggregate.
    const auto replayed = exp::run_campaign_streaming(grid, cc, {}, &done);
    expect_bit_identical(replayed, full);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const std::string partial_path =
        temp_path("stream_small_partial_" + std::to_string(threads));
    truncate_to_chunks(full_path, partial_path, 2);  // "crash" after 2 chunks
    exp::CampaignCheckpoint resumed(partial_path, grid, /*resume=*/true);
    EXPECT_EQ(resumed.completed_chunks(), 2u);
    exp::CampaignConfig rcc = cc;
    rcc.threads = threads;
    const auto agg = exp::run_campaign_streaming(grid, rcc, {}, &resumed);
    expect_bit_identical(agg, full);
    std::remove(partial_path.c_str());
  }
  std::remove(full_path.c_str());
}

TEST(CheckpointResume, ResumedProgressStartsFromRestoredCount) {
  const std::string full_path = temp_path("progress_full");
  const std::string partial_path = temp_path("progress_partial");
  std::remove(full_path.c_str());
  auto cc = grid_config(2, 3);
  auto grid = exp::make_grid(attack::StrategyKind::kNone, false, true, cc);
  grid.resize(3 * exp::kCampaignChunk);
  cc.threads = 2;
  {
    exp::CampaignCheckpoint ckpt(full_path, grid, /*resume=*/false);
    exp::run_campaign_streaming(grid, cc, {}, &ckpt);
  }
  truncate_to_chunks(full_path, partial_path, 1);
  exp::CampaignCheckpoint resumed(partial_path, grid, /*resume=*/true);
  std::vector<exp::CampaignProgress> seen;
  exp::run_campaign_streaming(
      grid, cc,
      [&seen](const exp::CampaignProgress& p) { seen.push_back(p); },
      &resumed);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front().completed, exp::kCampaignChunk);  // restored chunk
  EXPECT_EQ(seen.back().completed, grid.size());
  for (std::size_t i = 1; i < seen.size(); ++i)
    EXPECT_GT(seen[i].completed, seen[i - 1].completed);
  std::remove(full_path.c_str());
  std::remove(partial_path.c_str());
}

TEST(CheckpointResume, MaterializingKillAndResumeIsBitIdentical) {
  // Table V's path: per-item results, paired downstream. The resumed result
  // vector must match the uninterrupted one summary-for-summary.
  const std::string full_path = temp_path("results_full");
  std::remove(full_path.c_str());
  auto cc = grid_config(2, 21);
  const auto grid = exp::make_grid(attack::StrategyKind::kContextAware, true,
                                   true, cc);  // 144 items, 3 chunks
  cc.threads = 4;
  const auto reference = exp::run_campaign(grid, cc);
  {
    exp::ResultsCheckpoint ckpt(full_path, grid, /*resume=*/false);
    exp::run_campaign(grid, cc, &ckpt);
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const std::string partial_path =
        temp_path("results_partial_" + std::to_string(threads));
    // Records land in completion order, so the surviving chunk can be any
    // of the three — what matters is that exactly one chunk is restored.
    truncate_to_chunks(full_path, partial_path, 1);
    exp::ResultsCheckpoint resumed(partial_path, grid, /*resume=*/true);
    EXPECT_EQ(resumed.completed_chunks(), 1u);
    EXPECT_GT(resumed.completed_items(), 0u);
    exp::CampaignConfig rcc = cc;
    rcc.threads = threads;
    const auto results = exp::run_campaign(grid, rcc, &resumed);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].item.seed, reference[i].item.seed);
      EXPECT_EQ(results[i].summary.any_hazard, reference[i].summary.any_hazard);
      EXPECT_EQ(results[i].summary.alert_events,
                reference[i].summary.alert_events);
      EXPECT_EQ(util::double_bits(results[i].summary.tth),
                util::double_bits(reference[i].summary.tth));
      EXPECT_EQ(util::double_bits(results[i].summary.lane_invasion_rate),
                util::double_bits(reference[i].summary.lane_invasion_rate));
      EXPECT_EQ(util::double_bits(results[i].summary.first_hazard_time),
                util::double_bits(reference[i].summary.first_hazard_time));
    }
    // The pairing downstream of Table V must agree too.
    expect_bit_identical(exp::aggregate(results), exp::aggregate(reference));
    std::remove(partial_path.c_str());
  }
  std::remove(full_path.c_str());
}

// Acceptance: a table4-scale streaming campaign (the paper's full 1,440-sim
// Context-Aware grid) interrupted mid-run and resumed from its checkpoint
// produces an Aggregate bit-identical to the uninterrupted run — integer
// counters AND floating-point moments — at two different thread counts.
TEST(CheckpointResume, Table4ScaleInterruptedResumeMatchesUninterrupted) {
  const std::string full_path = temp_path("table4_scale_full");
  std::remove(full_path.c_str());
  auto cc = grid_config(20, 2022);  // the paper's Table IV repetition count
  const auto grid = exp::make_grid(attack::StrategyKind::kContextAware, true,
                                   true, cc);
  ASSERT_EQ(grid.size(), 1440u);
  cc.threads = 4;
  exp::Aggregate full;
  {
    exp::CampaignCheckpoint ckpt(full_path, grid, /*resume=*/false);
    full = exp::run_campaign_streaming(grid, cc, {}, &ckpt);
  }
  EXPECT_EQ(full.simulations, 1440u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const std::string partial_path =
        temp_path("table4_scale_partial_" + std::to_string(threads));
    // "Kill" the campaign two thirds of the way through: keep 15 of the 23
    // chunk records, exactly what a crash after 15 durable commits leaves.
    truncate_to_chunks(full_path, partial_path, 15);
    exp::CampaignCheckpoint resumed(partial_path, grid, /*resume=*/true);
    EXPECT_EQ(resumed.completed_chunks(), 15u);
    exp::CampaignConfig rcc = cc;
    rcc.threads = threads;
    const auto agg = exp::run_campaign_streaming(grid, rcc, {}, &resumed);
    expect_bit_identical(agg, full);
    std::remove(partial_path.c_str());
  }
  std::remove(full_path.c_str());
}

}  // namespace
