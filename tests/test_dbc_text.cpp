// Tests for the DBC text parser/writer.

#include <gtest/gtest.h>

#include "can/dbc_text.hpp"
#include "can/packer.hpp"

namespace {

using namespace scaa;

constexpr const char* kSample = R"(VERSION ""

BS_:

BU_: EON CAR

BO_ 228 STEERING_CONTROL: 5 EON
 SG_ STEER_ANGLE_CMD : 7|16@0- (0.01,0) [-327.68|327.67] "deg" CAR
 SG_ STEER_ENABLED : 23|1@0+ (1,0) [0|1] "" CAR

CM_ SG_ 228 STEER_ANGLE_CMD "road wheel angle request";

BO_ 506 GAS_BRAKE_COMMAND: 6 EON
 SG_ ACCEL_CMD : 7|16@0- (0.001,0) [-32.768|32.767] "m/s^2" CAR
)";

TEST(DbcText, ParsesMessagesAndSignals) {
  const auto messages = can::parse_dbc(kSample);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].name, "STEERING_CONTROL");
  EXPECT_EQ(messages[0].id, 228u);
  EXPECT_EQ(messages[0].size, 5);
  ASSERT_EQ(messages[0].signals.size(), 2u);
  const auto& angle = messages[0].signals[0];
  EXPECT_EQ(angle.name, "STEER_ANGLE_CMD");
  EXPECT_EQ(angle.start_bit, 7);
  EXPECT_EQ(angle.size, 16);
  EXPECT_EQ(angle.order, can::ByteOrder::kBigEndian);
  EXPECT_TRUE(angle.is_signed);
  EXPECT_DOUBLE_EQ(angle.factor, 0.01);
  EXPECT_EQ(messages[1].name, "GAS_BRAKE_COMMAND");
  EXPECT_EQ(messages[1].id, 506u);
}

TEST(DbcText, LittleEndianAndOffset) {
  const auto messages = can::parse_dbc(
      "BO_ 100 M: 8 X\n SG_ S : 4|12@1+ (0.5,10) [10|2057.5] \"\" Y\n");
  ASSERT_EQ(messages.size(), 1u);
  const auto& s = messages[0].signals.at(0);
  EXPECT_EQ(s.order, can::ByteOrder::kLittleEndian);
  EXPECT_FALSE(s.is_signed);
  EXPECT_DOUBLE_EQ(s.offset, 10.0);
}

TEST(DbcText, HondaChecksumTagging) {
  const auto messages = can::parse_dbc(kSample, /*tag_honda=*/true);
  EXPECT_EQ(messages[0].checksum, can::ChecksumKind::kHonda);
  const auto untagged = can::parse_dbc(kSample, false);
  EXPECT_EQ(untagged[0].checksum, can::ChecksumKind::kNone);
}

TEST(DbcText, RejectsMalformedInput) {
  EXPECT_THROW(can::parse_dbc("BO_ nonsense\n"), std::invalid_argument);
  EXPECT_THROW(can::parse_dbc("SG_ ORPHAN : 0|8@1+ (1,0) [0|255] \"\" X\n"),
               std::invalid_argument);
  EXPECT_THROW(can::parse_dbc("BO_ 1 M: 99 X\n"), std::invalid_argument);
  EXPECT_THROW(
      can::parse_dbc("BO_ 1 M: 8 X\n SG_ S : 0|8@7+ (1,0) [0|1] \"\" Y\n"),
      std::invalid_argument);
  EXPECT_THROW(
      can::parse_dbc("BO_ 1 M: 8 X\n SG_ S : 0|8@1+ (0,0) [0|1] \"\" Y\n"),
      std::invalid_argument);
}

TEST(DbcText, IgnoresUnknownSections) {
  const auto messages = can::parse_dbc(
      "VERSION \"x\"\nNS_ :\n  CM_\nBA_DEF_ \"z\" INT 0 1;\n"
      "BO_ 5 M: 2 X\n SG_ S : 7|8@0+ (1,0) [0|255] \"\" Y\n"
      "VAL_ 5 S 0 \"off\" 1 \"on\";\n");
  EXPECT_EQ(messages.size(), 1u);
}

TEST(DbcText, WriterRoundTrips) {
  const auto original = can::Database::simulated_car().messages();
  const std::string text = can::write_dbc(original);
  const auto reparsed = can::parse_dbc(text, /*tag_honda=*/true);
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].name, original[i].name);
    EXPECT_EQ(reparsed[i].id, original[i].id);
    EXPECT_EQ(reparsed[i].size, original[i].size);
    ASSERT_EQ(reparsed[i].signals.size(), original[i].signals.size());
    for (std::size_t j = 0; j < original[i].signals.size(); ++j) {
      const auto& a = original[i].signals[j];
      const auto& b = reparsed[i].signals[j];
      EXPECT_EQ(b.name, a.name);
      EXPECT_EQ(b.start_bit, a.start_bit);
      EXPECT_EQ(b.size, a.size);
      EXPECT_EQ(b.order, a.order);
      EXPECT_EQ(b.is_signed, a.is_signed);
      EXPECT_DOUBLE_EQ(b.factor, a.factor);
      EXPECT_DOUBLE_EQ(b.offset, a.offset);
    }
  }
}

TEST(DbcText, ParsedDatabaseDecodesRealFrames) {
  // Frames packed with the built-in database decode identically through a
  // database built from the DBC text — the attacker's offline workflow.
  const auto built_in = can::Database::simulated_car();
  const can::Database from_text(
      can::parse_dbc(can::simulated_car_dbc(), /*tag_honda=*/true));
  can::CanPacker packer(built_in);
  can::CanParser parser(from_text);
  const auto frame = packer.pack("STEERING_CONTROL",
                                 {{can::sig::kSteerAngleCmd, -1.23},
                                  {can::sig::kSteerEnabled, 1.0}});
  const auto parsed = parser.parse(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->checksum_ok);
  EXPECT_NEAR(parsed->values.at(can::sig::kSteerAngleCmd), -1.23, 0.01);
}

}  // namespace
