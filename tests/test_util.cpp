// Unit tests for scaa::util (units, math, rng, stats, csv, table).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "util/csv.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace scaa;

TEST(Units, MphRoundTrip) {
  EXPECT_NEAR(units::ms_to_mph(units::mph_to_ms(60.0)), 60.0, 1e-12);
  EXPECT_NEAR(units::mph_to_ms(60.0), 26.8224, 1e-4);
  EXPECT_NEAR(units::mph_to_ms(35.0), 15.6464, 1e-4);
}

TEST(Units, DegreesRoundTrip) {
  EXPECT_NEAR(units::rad_to_deg(units::deg_to_rad(0.5)), 0.5, 1e-12);
  EXPECT_NEAR(units::deg_to_rad(180.0), units::kPi, 1e-12);
}

TEST(Math, ClampAndLerp) {
  EXPECT_EQ(math::clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(math::clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(math::clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(math::lerp(0.0, 10.0, 0.25), 2.5);
}

TEST(Math, Interp) {
  const double xs[] = {0.0, 1.0, 2.0};
  const double ys[] = {0.0, 10.0, 0.0};
  EXPECT_EQ(math::interp(-1.0, xs, ys, 3), 0.0);   // clamp left
  EXPECT_EQ(math::interp(3.0, xs, ys, 3), 0.0);    // clamp right
  EXPECT_EQ(math::interp(0.5, xs, ys, 3), 5.0);
  EXPECT_EQ(math::interp(1.5, xs, ys, 3), 5.0);
}

TEST(Math, RateLimit) {
  EXPECT_EQ(math::rate_limit(0.0, 10.0, 1.0), 1.0);
  EXPECT_EQ(math::rate_limit(0.0, -10.0, 1.0), -1.0);
  EXPECT_EQ(math::rate_limit(0.0, 0.5, 1.0), 0.5);
}

TEST(Math, WrapAngle) {
  EXPECT_NEAR(math::wrap_angle(3.0 * units::kPi), units::kPi, 1e-12);
  EXPECT_NEAR(math::wrap_angle(-3.0 * units::kPi), units::kPi, 1e-12);
  EXPECT_NEAR(math::wrap_angle(0.5), 0.5, 1e-12);
}

TEST(Rng, Deterministic) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(5.0, 40.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 40.0);
  }
}

TEST(Rng, UniformIntBounds) {
  util::Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(1, 4);
    seen.insert(v);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(Rng, GaussianMoments) {
  util::Rng rng(123);
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ForkIndependence) {
  const util::Rng parent(9);
  util::Rng c1 = parent.fork(1);
  util::Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.next() == c2.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDeterministic) {
  const util::Rng parent(9);
  util::Rng c1 = parent.fork(5);
  util::Rng c2 = parent.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Stats, RunningMoments) {
  util::RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, MergeMatchesSequential) {
  util::Rng rng(5);
  util::RunningStats all;
  util::RunningStats a;
  util::RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.gaussian(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, EmptyIsSafe) {
  const util::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, HistogramBinning) {
  util::Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-1.0);   // clamped into first bin
  h.add(100.0);  // clamped into last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, HistogramRejectsBadArgs) {
  EXPECT_THROW(util::Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(util::Histogram(0.0, 1.0, 0), std::invalid_argument);
  // Non-finite bounds would make every scale factor NaN.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(util::Histogram(-inf, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(util::Histogram(0.0, inf, 4), std::invalid_argument);
  EXPECT_THROW(util::Histogram(std::nan(""), 1.0, 4), std::invalid_argument);
}

TEST(Stats, HistogramSurvivesNearMaxFiniteBounds) {
  // (x - lo) and (hi - lo) both overflow to inf here, so the scale factor
  // is inf/inf = NaN; the cast guard must route that to a bin, not UB.
  util::Histogram h(-1e308, 1e308, 10);
  h.add(9e307);
  h.add(-9e307);
  h.add(0.0);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Stats, HistogramClampsNonFiniteAndHugeSamples) {
  // Regression: casting a NaN or out-of-long-range scaled sample to an
  // integer type is UB; the clamp must happen in double space first.
  util::Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(1e308);   // scaled value overflows every integer type
  h.add(-1e308);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(Stats, HistogramDropsAndCountsNaN) {
  util::Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  h.add(std::nan("payload"));
  EXPECT_EQ(h.total(), 1u);      // NaNs are not binned...
  EXPECT_EQ(h.nan_count(), 2u);  // ...but they are accounted for
  EXPECT_EQ(h.bin_count(5), 1u);
}

TEST(Stats, HistogramEdgeSamplesLandInEdgeBins) {
  util::Histogram h(0.0, 10.0, 10);
  h.add(0.0);                       // lo -> first bin
  h.add(10.0);                      // hi (exclusive) -> clamped to last bin
  h.add(std::nextafter(10.0, 0.0)); // just below hi -> last bin, no overflow
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
}

TEST(Csv, BasicRows) {
  std::ostringstream out;
  util::CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row().cell(1.5).cell(std::string("x")); csv.end_row();
  csv.row().cell(true).cell(std::string("y,z")); csv.end_row();
  EXPECT_EQ(out.str(), "a,b\n1.5,x\n1,\"y,z\"\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EnforcesRowWidth) {
  std::ostringstream out;
  util::CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row().cell(1.0);
  EXPECT_THROW(csv.end_row(), std::logic_error);
}

TEST(Csv, EnforcesHeaderFirst) {
  std::ostringstream out;
  util::CsvWriter csv(out);
  EXPECT_THROW(csv.row(), std::logic_error);
}

TEST(Csv, QuotesEmbeddedQuotes) {
  std::ostringstream out;
  util::CsvWriter csv(out);
  csv.header({"v"});
  csv.row().cell(std::string("he said \"hi\"")); csv.end_row();
  EXPECT_EQ(out.str(), "v\n\"he said \"\"hi\"\"\"\n");
}

TEST(Table, RendersAligned) {
  util::TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string r = t.render();
  EXPECT_NE(r.find("| name   | value |"), std::string::npos);
  EXPECT_NE(r.find("| longer | 2     |"), std::string::npos);
}

TEST(Table, RejectsWidthMismatch) {
  util::TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(util::format_percent(0.834), "83.4%");
  EXPECT_EQ(util::format_count_percent(1201, 1440), "1201 (83.4%)");
  EXPECT_EQ(util::format_mean_std(2.43, 1.29), "2.43 +/- 1.29");
}

}  // namespace
