// Tests for the experiment layer: thread pool, campaign grid/runner,
// aggregation, table emitters, parameter-space sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "exp/campaign.hpp"
#include "exp/param_space.hpp"
#include "exp/tables.hpp"

namespace {

using namespace scaa;

/// Grid-construction shorthand: most tests only vary reps and seed.
exp::CampaignConfig grid_config(int reps, std::uint64_t seed) {
  exp::CampaignConfig config;
  config.repetitions = reps;
  config.base_seed = seed;
  return config;
}

TEST(ThreadPool, RunsAllTasks) {
  exp::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  exp::ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  exp::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(Campaign, GridShapeMatchesPaper) {
  const auto grid = exp::make_grid(attack::StrategyKind::kContextAware, true,
                                   true, grid_config(20, 2022));
  // 6 types x 4 scenarios x 3 gaps x 20 reps = 1,440 (paper Table III).
  EXPECT_EQ(grid.size(), 1440u);
  std::set<std::uint64_t> seeds;
  for (const auto& item : grid) seeds.insert(item.seed);
  EXPECT_EQ(seeds.size(), grid.size());  // all seeds unique
}

TEST(Campaign, GridCoversAllCells) {
  const auto grid = exp::make_grid(attack::StrategyKind::kRandomSt, false,
                                   true, grid_config(1, 1));
  EXPECT_EQ(grid.size(), 72u);
  std::set<std::tuple<int, int, int>> cells;
  for (const auto& item : grid)
    cells.insert({static_cast<int>(item.type), item.scenario_id,
                  static_cast<int>(item.initial_gap)});
  EXPECT_EQ(cells.size(), 72u);
}

TEST(Campaign, SameSeedsForDriverOnOff) {
  // The Table V pairing requires identical seeds across the two campaigns.
  const auto on = exp::make_grid(attack::StrategyKind::kContextAware, true,
                                 true, grid_config(2, 99));
  const auto off = exp::make_grid(attack::StrategyKind::kContextAware, true,
                                  false, grid_config(2, 99));
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i].seed, off[i].seed);
    EXPECT_EQ(on[i].type, off[i].type);
  }
}

TEST(Campaign, RejectsNonPositiveRepetitions) {
  // A repetitions value that is <= 0 after the documented fallback used to
  // silently yield an empty grid (and empty-looking tables); it must fail
  // loudly instead.
  exp::CampaignConfig config = grid_config(0, 1);
  EXPECT_THROW(exp::make_grid(attack::StrategyKind::kNone, false, true,
                              config),
               std::invalid_argument);
  config.repetitions = -3;
  EXPECT_THROW(exp::make_grid(attack::StrategyKind::kNone, false, true,
                              config, -1),
               std::invalid_argument);
}

TEST(Campaign, RepetitionOverrideFallsBackToConfig) {
  // Override > 0 wins; override <= 0 falls back to config.repetitions —
  // the behaviour the header documents (and CampaignConfig.repetitions is
  // genuinely consumed, not a dead field).
  const auto config = grid_config(2, 7);
  const auto fallback = exp::make_grid(attack::StrategyKind::kRandomSt, false,
                                       true, config);
  EXPECT_EQ(fallback.size(), 144u);  // 6 types x 4 scenarios x 3 gaps x 2
  const auto overridden = exp::make_grid(attack::StrategyKind::kRandomSt,
                                         false, true, config, 1);
  EXPECT_EQ(overridden.size(), 72u);
}

TEST(Campaign, GridSeedsComeFromConfigBaseSeed) {
  const auto a = exp::make_grid(attack::StrategyKind::kRandomSt, false, true,
                                grid_config(1, 1));
  const auto b = exp::make_grid(attack::StrategyKind::kRandomSt, false, true,
                                grid_config(1, 2));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(a[0].seed, b[0].seed);
}

TEST(Campaign, RunnerDeterministicAcrossThreadCounts) {
  auto grid = exp::make_grid(attack::StrategyKind::kContextAware, true, true,
                             grid_config(1, 5));
  grid.resize(12);  // keep the test fast
  exp::CampaignConfig one;
  one.threads = 1;
  exp::CampaignConfig many;
  many.threads = 8;
  const auto a = exp::run_campaign(grid, one);
  const auto b = exp::run_campaign(grid, many);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].summary.any_hazard, b[i].summary.any_hazard) << i;
    EXPECT_DOUBLE_EQ(a[i].summary.first_hazard_time,
                     b[i].summary.first_hazard_time);
    EXPECT_EQ(a[i].summary.lane_invasions, b[i].summary.lane_invasions);
  }
}

TEST(Campaign, StreamingMatchesVectorPathBitExactly) {
  // The streaming runner must produce the same Aggregate as materializing
  // every result and reducing it — including the floating-point moments —
  // at any thread count (the chunked reduction order is fixed). The grid
  // must span several chunks (kCampaignChunk = 64) so the cross-chunk
  // merge order is actually exercised, not just a single accumulator.
  auto grid = exp::make_grid(attack::StrategyKind::kContextAware, true, true,
                             grid_config(2, 11));
  grid.resize(2 * exp::kCampaignChunk + 2);
  exp::CampaignConfig cc;
  cc.threads = 4;
  const auto vector_agg = exp::aggregate(exp::run_campaign(grid, cc));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    exp::CampaignConfig scc;
    scc.threads = threads;
    const auto streamed = exp::run_campaign_streaming(grid, scc);
    EXPECT_EQ(streamed.simulations, vector_agg.simulations);
    EXPECT_EQ(streamed.sims_with_alerts, vector_agg.sims_with_alerts);
    EXPECT_EQ(streamed.sims_with_hazards, vector_agg.sims_with_hazards);
    EXPECT_EQ(streamed.sims_with_accidents, vector_agg.sims_with_accidents);
    EXPECT_EQ(streamed.hazards_without_alerts,
              vector_agg.hazards_without_alerts);
    EXPECT_EQ(streamed.fcw_activations, vector_agg.fcw_activations);
    EXPECT_DOUBLE_EQ(streamed.lane_invasion_rate_mean,
                     vector_agg.lane_invasion_rate_mean);
    EXPECT_DOUBLE_EQ(streamed.tth_mean, vector_agg.tth_mean);
    EXPECT_DOUBLE_EQ(streamed.tth_std, vector_agg.tth_std);
  }
}

TEST(Campaign, StreamingReportsMonotonicProgress) {
  auto grid = exp::make_grid(attack::StrategyKind::kNone, false, true,
                             grid_config(1, 3));
  grid.resize(6);
  exp::CampaignConfig cc;
  cc.threads = 2;
  std::vector<exp::CampaignProgress> seen;
  exp::run_campaign_streaming(grid, cc,
                              [&seen](const exp::CampaignProgress& p) {
                                seen.push_back(p);
                              });
  ASSERT_FALSE(seen.empty());
  for (std::size_t i = 1; i < seen.size(); ++i)
    EXPECT_GT(seen[i].completed, seen[i - 1].completed);
  EXPECT_EQ(seen.back().completed, grid.size());
  EXPECT_EQ(seen.back().total, grid.size());
}

TEST(Campaign, SharedAssetsMatchPrivatelyBuiltWorlds) {
  // A World running on campaign-shared road/DBC must behave identically to
  // one that built its own (the assets are immutable and identical).
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kSteeringLeft;
  item.seed = 77;
  const auto assets = exp::WorldAssets::make_default();

  sim::World owned(exp::world_config_for(item));
  sim::World shared(exp::world_config_for(item, assets));
  const auto a = owned.run();
  const auto b = shared.run();
  EXPECT_EQ(a.any_hazard, b.any_hazard);
  EXPECT_DOUBLE_EQ(a.first_hazard_time, b.first_hazard_time);
  EXPECT_EQ(a.any_accident, b.any_accident);
  EXPECT_EQ(a.alert_events, b.alert_events);
  EXPECT_EQ(a.lane_invasions, b.lane_invasions);
  EXPECT_DOUBLE_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.frames_corrupted, b.frames_corrupted);
}

TEST(Aggregate, CountsAndFractions) {
  std::vector<exp::CampaignResult> results(4);
  results[0].summary.any_hazard = true;
  results[0].summary.alert_events = 1;
  results[0].summary.tth = 2.0;
  results[1].summary.any_hazard = true;
  results[1].summary.any_accident = true;
  results[1].summary.tth = 4.0;
  // results[2], results[3]: clean runs.
  const auto agg = exp::aggregate(results);
  EXPECT_EQ(agg.simulations, 4u);
  EXPECT_EQ(agg.sims_with_hazards, 2u);
  EXPECT_EQ(agg.sims_with_accidents, 1u);
  EXPECT_EQ(agg.sims_with_alerts, 1u);
  EXPECT_EQ(agg.hazards_without_alerts, 1u);  // run 1 had hazard + no alerts
  EXPECT_DOUBLE_EQ(agg.hazard_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(agg.accident_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(agg.tth_mean, 3.0);
}

TEST(Tables, Table4RendersAllRows) {
  std::map<attack::StrategyKind, exp::Aggregate> rows;
  exp::Aggregate a;
  a.simulations = 1440;
  a.sims_with_hazards = 1201;
  rows[attack::StrategyKind::kNone] = a;
  rows[attack::StrategyKind::kContextAware] = a;
  const std::string table = exp::render_table4(rows);
  EXPECT_NE(table.find("No Attacks"), std::string::npos);
  EXPECT_NE(table.find("Context-Aware"), std::string::npos);
  EXPECT_NE(table.find("83.4%"), std::string::npos);
}

TEST(Tables, PairDriverOutcomes) {
  auto grid = exp::make_grid(attack::StrategyKind::kContextAware, true, true,
                             grid_config(1, 7));
  grid.resize(6);
  auto off_grid = grid;
  for (auto& item : off_grid) item.driver_enabled = false;
  exp::CampaignConfig cc;
  cc.threads = 4;
  const auto on = exp::run_campaign(grid, cc);
  const auto off = exp::run_campaign(off_grid, cc);
  const auto outcomes = exp::pair_driver_outcomes(on, off);
  std::size_t total = 0;
  for (const auto& [type, outcome] : outcomes) total += outcome.agg.simulations;
  EXPECT_EQ(total, 6u);
}

TEST(Tables, PairRejectsMismatchedGrids) {
  std::vector<exp::CampaignResult> a(2), b(3);
  EXPECT_THROW(exp::pair_driver_outcomes(a, b), std::invalid_argument);
  b.resize(2);
  a[0].item.seed = 1;
  b[0].item.seed = 2;
  EXPECT_THROW(exp::pair_driver_outcomes(a, b), std::invalid_argument);
}

TEST(ParamSpace, SmallSweepShapes) {
  exp::ParamSpaceConfig cfg;
  cfg.grid_starts = 4;
  cfg.grid_durations = 3;
  cfg.overlay_runs = 2;
  cfg.threads = 8;
  const auto points = exp::run_param_space(cfg);
  EXPECT_GE(points.size(), 12u);  // the full grid always plots
  for (const auto& p : points) {
    EXPECT_GE(p.start_time, 0.0);
    EXPECT_GE(p.duration, 0.0);
  }
  std::ostringstream out;
  exp::write_param_space_csv(points, out);
  EXPECT_NE(out.str().find("strategy,start_time,duration,hazardous"),
            std::string::npos);
}

TEST(ParamSpace, CriticalTimeEstimate) {
  std::vector<exp::ParamSpacePoint> points;
  points.push_back({attack::StrategyKind::kRandomStDur, 10.0, 1.0, false});
  points.push_back({attack::StrategyKind::kRandomStDur, 20.0, 1.0, true});
  points.push_back({attack::StrategyKind::kRandomStDur, 30.0, 1.0, true});
  EXPECT_DOUBLE_EQ(exp::estimate_critical_time(points), 20.0);
  points.clear();
  points.push_back({attack::StrategyKind::kRandomStDur, 10.0, 1.0, false});
  EXPECT_LT(exp::estimate_critical_time(points), 0.0);
}

}  // namespace
