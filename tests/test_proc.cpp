// Tests for the process/pipe primitives under the sharded campaign
// coordinator: fd ownership, pipe line framing, fork_worker exit-status
// plumbing (codes, signals, escaped exceptions), and the LineMux
// demultiplexer the coordinator's progress display runs on.

#include <gtest/gtest.h>

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <map>
#include <string>
#include <vector>

#include "util/proc.hpp"

namespace {

using namespace scaa;

TEST(UniqueFd, ClosesOnDestroy) {
  util::PipeFds pipe = util::make_pipe();
  const int raw = pipe.read_end.get();
  ASSERT_GE(raw, 0);
  { util::UniqueFd owner(pipe.read_end.release()); }
  // The fd must be closed now: fcntl on it fails with EBADF.
  EXPECT_EQ(::fcntl(raw, F_GETFD), -1);
  EXPECT_EQ(errno, EBADF);
}

TEST(UniqueFd, MoveTransfersOwnership) {
  util::PipeFds pipe = util::make_pipe();
  const int raw = pipe.write_end.get();
  util::UniqueFd moved(std::move(pipe.write_end));
  EXPECT_EQ(pipe.write_end.get(), -1);
  EXPECT_EQ(moved.get(), raw);
  util::UniqueFd assigned;
  assigned = std::move(moved);
  EXPECT_EQ(moved.get(), -1);
  EXPECT_EQ(assigned.get(), raw);
  EXPECT_EQ(::fcntl(raw, F_GETFD) >= 0, true);
}

TEST(WriteLine, AppendsNewlineAndRoundTrips) {
  util::PipeFds pipe = util::make_pipe();
  ASSERT_TRUE(util::write_line(pipe.write_end.get(), "P 42"));
  char buf[16] = {};
  const ssize_t n = ::read(pipe.read_end.get(), buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), "P 42\n");
}

TEST(WriteLine, ReturnsFalseWhenReaderGone) {
  // write_line must never kill the caller: a worker whose coordinator died
  // keeps simulating (its chunks are checkpointed).
  auto* previous = std::signal(SIGPIPE, SIG_IGN);
  util::PipeFds pipe = util::make_pipe();
  pipe.read_end.reset();
  EXPECT_FALSE(util::write_line(pipe.write_end.get(), "orphaned"));
  std::signal(SIGPIPE, previous);
}

TEST(ExitStatus, DescribeNamesCodesAndSignals) {
  util::ExitStatus code;
  code.exited = true;
  code.code = 3;
  EXPECT_NE(code.describe().find("3"), std::string::npos);
  EXPECT_TRUE(code.exited);
  EXPECT_FALSE(code.ok());
  util::ExitStatus sig;
  sig.exited = false;
  sig.signal = SIGKILL;
  EXPECT_NE(sig.describe().find("signal 9"), std::string::npos);
  EXPECT_FALSE(sig.ok());
}

TEST(ForkWorker, PropagatesExitCodeAndProgress) {
  util::ForkedWorker worker = util::fork_worker([](int fd) {
    util::write_line(fd, "hello from child");
    return 7;
  });
  std::string received;
  char buf[64];
  ssize_t n;
  while ((n = ::read(worker.progress.get(), buf, sizeof(buf))) > 0)
    received.append(buf, static_cast<std::size_t>(n));
  EXPECT_EQ(received, "hello from child\n");
  const util::ExitStatus status = util::wait_child(worker.pid);
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 7);
  EXPECT_FALSE(status.ok());
}

TEST(ForkWorker, ZeroExitIsOk) {
  util::ForkedWorker worker = util::fork_worker([](int) { return 0; });
  EXPECT_TRUE(util::wait_child(worker.pid).ok());
}

TEST(ForkWorker, EscapedExceptionExits125) {
  util::ForkedWorker worker = util::fork_worker(
      [](int) -> int { throw std::runtime_error("child bug"); });
  const util::ExitStatus status = util::wait_child(worker.pid);
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 125);
}

TEST(ForkWorker, KilledChildReportsSignal) {
  util::ForkedWorker worker = util::fork_worker([](int fd) {
    util::write_line(fd, "ready");
    // Park until killed; the pipe read end going away must not matter.
    for (;;) ::pause();
    return 0;
  });
  char buf[16];
  ASSERT_GT(::read(worker.progress.get(), buf, sizeof(buf)), 0);
  ASSERT_EQ(::kill(worker.pid, SIGKILL), 0);
  const util::ExitStatus status = util::wait_child(worker.pid);
  EXPECT_FALSE(status.exited);
  EXPECT_EQ(status.signal, SIGKILL);
  EXPECT_FALSE(status.ok());
}

TEST(LineMux, DemultiplexesInterleavedWriters) {
  // Two workers interleave lines; LineMux must deliver each complete line
  // tagged with its source index, and the unterminated tail at EOF.
  util::ForkedWorker a = util::fork_worker([](int fd) {
    util::write_line(fd, "a1");
    util::write_line(fd, "a2");
    // Unterminated fragment: delivered when the fd reaches EOF.
    const char tail[] = "a-tail";
    (void)!::write(fd, tail, sizeof(tail) - 1);
    return 0;
  });
  util::ForkedWorker b = util::fork_worker([](int fd) {
    util::write_line(fd, "b1");
    return 0;
  });

  std::map<std::size_t, std::vector<std::string>> lines;
  util::LineMux mux({a.progress.get(), b.progress.get()});
  mux.run([&](std::size_t index, std::string_view line) {
    lines[index].emplace_back(line);
  });

  EXPECT_TRUE(util::wait_child(a.pid).ok());
  EXPECT_TRUE(util::wait_child(b.pid).ok());
  EXPECT_EQ(lines[0],
            (std::vector<std::string>{"a1", "a2", "a-tail"}));
  EXPECT_EQ(lines[1], (std::vector<std::string>{"b1"}));
}

TEST(LineMux, SplitWriteFloodDeliversOneIntactLine) {
  // Regression: a newline-free flood of tiny writes used to rescan the
  // whole accumulated buffer on every chunk (quadratic). The single-pass
  // drain must still deliver the eventual line intact — this test pins the
  // correctness of the scanned_-offset bookkeeping under exactly that
  // pattern; 64 KiB of 1-byte writes also makes an accidental O(n^2)
  // regression painfully visible in the suite's runtime.
  constexpr std::size_t kFloodBytes = 64 * 1024;
  util::ForkedWorker worker = util::fork_worker([](int fd) {
    for (std::size_t i = 0; i < kFloodBytes; ++i) {
      const char c = static_cast<char>('a' + (i % 26));
      if (::write(fd, &c, 1) != 1) return 1;
    }
    const char nl = '\n';
    if (::write(fd, &nl, 1) != 1) return 1;
    return util::write_line(fd, "after") ? 0 : 1;
  });
  std::vector<std::string> lines;
  util::LineMux mux({worker.progress.get()});
  mux.run([&](std::size_t, std::string_view line) {
    lines.emplace_back(line);
  });
  EXPECT_TRUE(util::wait_child(worker.pid).ok());
  ASSERT_EQ(lines.size(), 2u);
  ASSERT_EQ(lines[0].size(), kFloodBytes);
  for (std::size_t i = 0; i < kFloodBytes; ++i) {
    if (lines[0][i] != static_cast<char>('a' + (i % 26))) {
      FAIL() << "flood line corrupted at byte " << i;
    }
  }
  EXPECT_EQ(lines[1], "after");
}

TEST(LineMux, ReadErrorClosesSlotAndKeepsDrainingOthers) {
  // Regression: a hard read error on one fd used to be indistinguishable
  // from EOF. The slot must close (after logging) without hanging the mux
  // or starving the healthy fds. A directory fd polls readable but read(2)
  // fails with EISDIR — a deterministic hard error.
  util::UniqueFd dir(::open(".", O_RDONLY | O_DIRECTORY));
  ASSERT_TRUE(dir);
  util::ForkedWorker worker = util::fork_worker([](int fd) {
    return util::write_line(fd, "healthy") ? 0 : 1;
  });
  std::map<std::size_t, std::vector<std::string>> lines;
  util::LineMux mux({dir.get(), worker.progress.get()});
  mux.run([&](std::size_t index, std::string_view line) {
    lines[index].emplace_back(line);
  });
  EXPECT_TRUE(util::wait_child(worker.pid).ok());
  EXPECT_TRUE(lines[0].empty());
  EXPECT_EQ(lines[1], (std::vector<std::string>{"healthy"}));
}

TEST(LineMux, InterruptedPredicateStopsTheLoop) {
  // The hook the signal-forwarding coordinator uses: when the predicate
  // turns true, run() must return promptly even though the fds are still
  // open (the caller goes on to kill and reap its workers).
  util::PipeFds pipe = util::make_pipe();
  bool interrupted = false;
  std::size_t delivered = 0;
  ASSERT_TRUE(util::write_line(pipe.write_end.get(), "one"));
  util::LineMux mux({pipe.read_end.get()});
  mux.run(
      [&](std::size_t, std::string_view) {
        ++delivered;
        interrupted = true;  // "signal" arrives after the first line
      },
      [&] { return interrupted; });
  EXPECT_EQ(delivered, 1u);
  // The write end is still open: without the predicate run() would block
  // here forever waiting for EOF. Reaching this line is the assertion.
}

TEST(LineMux, SplitWritesReassemble) {
  // A line written byte-by-byte across many write(2) calls must still be
  // delivered as one line.
  util::ForkedWorker worker = util::fork_worker([](int fd) {
    const std::string line = "P 12345\n";
    for (const char c : line) {
      if (::write(fd, &c, 1) != 1) return 1;
    }
    return 0;
  });
  std::vector<std::string> lines;
  util::LineMux mux({worker.progress.get()});
  mux.run([&](std::size_t, std::string_view line) {
    lines.emplace_back(line);
  });
  EXPECT_TRUE(util::wait_child(worker.pid).ok());
  EXPECT_EQ(lines, (std::vector<std::string>{"P 12345"}));
}

}  // namespace
