// Unit tests for scaa::msg (codec, schema round-trips, pub/sub semantics).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "msg/bus.hpp"

namespace {

using namespace scaa;

TEST(Codec, PrimitivesRoundTrip) {
  msg::Encoder e;
  e.put_u16(0xBEEF);
  e.put_u32(0xDEADBEEF);
  e.put_u64(0x0123456789ABCDEFull);
  e.put_f64(-273.15);
  e.put_bool(true);
  e.put_bool(false);

  msg::Decoder d(e.bytes());
  EXPECT_EQ(d.get_u16(), 0xBEEF);
  EXPECT_EQ(d.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(d.get_f64(), -273.15);
  EXPECT_TRUE(d.get_bool());
  EXPECT_FALSE(d.get_bool());
  EXPECT_EQ(d.remaining(), 0u);
}

TEST(Codec, TruncationThrows) {
  msg::Encoder e;
  e.put_u16(7);
  msg::Decoder d(e.bytes());
  EXPECT_THROW(d.get_u64(), std::out_of_range);
}

TEST(Codec, SpecialDoubles) {
  msg::Encoder e;
  e.put_f64(std::numeric_limits<double>::infinity());
  e.put_f64(0.0);
  e.put_f64(-0.0);
  msg::Decoder d(e.bytes());
  EXPECT_TRUE(std::isinf(d.get_f64()));
  EXPECT_EQ(d.get_f64(), 0.0);
  EXPECT_EQ(d.get_f64(), 0.0);
}

template <typename M>
M round_trip(const M& m) {
  M out{};
  msg::deserialize(msg::serialize(m), out);
  return out;
}

TEST(Schema, GpsRoundTrip) {
  msg::GpsLocationExternal m;
  m.mono_time = 42;
  m.latitude = 38.03;
  m.longitude = -78.51;
  m.speed = 26.82;
  m.bearing = 0.7;
  m.has_fix = true;
  const auto r = round_trip(m);
  EXPECT_EQ(r.mono_time, 42u);
  EXPECT_DOUBLE_EQ(r.speed, 26.82);
  EXPECT_TRUE(r.has_fix);
}

TEST(Schema, ModelV2RoundTrip) {
  msg::ModelV2 m;
  m.left_lane_line = 1.82;
  m.right_lane_line = -1.88;
  m.left_line_prob = 0.97;
  m.right_line_prob = 0.95;
  m.path_curvature = 8.3e-4;
  m.path_heading_error = -0.002;
  const auto r = round_trip(m);
  EXPECT_DOUBLE_EQ(r.left_lane_line, 1.82);
  EXPECT_DOUBLE_EQ(r.path_heading_error, -0.002);
}

TEST(Schema, RadarStateRoundTrip) {
  msg::RadarState m;
  m.lead_valid = true;
  m.lead_distance = 63.4;
  m.lead_rel_speed = -11.2;
  m.lead_speed = 15.6;
  const auto r = round_trip(m);
  EXPECT_TRUE(r.lead_valid);
  EXPECT_DOUBLE_EQ(r.lead_rel_speed, -11.2);
}

TEST(Schema, CarControlRoundTrip) {
  msg::CarControl m;
  m.enabled = true;
  m.accel = -3.5;
  m.steer_angle = 0.0044;
  const auto r = round_trip(m);
  EXPECT_DOUBLE_EQ(r.accel, -3.5);
  EXPECT_DOUBLE_EQ(r.steer_angle, 0.0044);
}

TEST(Schema, ControlsStateRoundTrip) {
  msg::ControlsState m;
  m.active = true;
  m.steer_saturated = true;
  m.fcw = false;
  m.alert_count = 3;
  const auto r = round_trip(m);
  EXPECT_TRUE(r.steer_saturated);
  EXPECT_EQ(r.alert_count, 3u);
}

TEST(Bus, PublishDeliversToSubscriber) {
  msg::PubSubBus bus;
  int calls = 0;
  bus.subscribe<msg::RadarState>([&](const msg::RadarState& m) {
    ++calls;
    EXPECT_DOUBLE_EQ(m.lead_distance, 50.0);
  });
  msg::RadarState m;
  m.lead_valid = true;
  m.lead_distance = 50.0;
  bus.publish(m);
  EXPECT_EQ(calls, 1);
}

TEST(Bus, NoAuthenticationAnyoneCanSubscribe) {
  // The eavesdropping property: N independent subscribers all get the data.
  msg::PubSubBus bus;
  int a = 0, b = 0, c = 0;
  bus.subscribe<msg::GpsLocationExternal>([&](const auto&) { ++a; });
  bus.subscribe<msg::GpsLocationExternal>([&](const auto&) { ++b; });
  bus.subscribe_raw(msg::Topic::kGpsLocationExternal,
                    [&](const msg::WireFrame&) { ++c; });
  bus.publish(msg::GpsLocationExternal{});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 1);
}

TEST(Bus, SequenceNumbersPerTopic) {
  msg::PubSubBus bus;
  std::uint64_t last_seq = 0;
  bus.subscribe_raw(msg::Topic::kCarState, [&](const msg::WireFrame& f) {
    EXPECT_EQ(f.sequence, last_seq + 1);  // gapless
    last_seq = f.sequence;
  });
  for (int i = 0; i < 10; ++i) bus.publish(msg::CarState{});
  EXPECT_EQ(last_seq, 10u);
  EXPECT_EQ(bus.published_count(msg::Topic::kCarState), 10u);
  EXPECT_EQ(bus.published_count(msg::Topic::kModelV2), 0u);
}

TEST(Bus, UnsubscribeStopsDelivery) {
  msg::PubSubBus bus;
  int calls = 0;
  const auto id =
      bus.subscribe<msg::CarState>([&](const auto&) { ++calls; });
  bus.publish(msg::CarState{});
  bus.unsubscribe(id);
  bus.publish(msg::CarState{});
  EXPECT_EQ(calls, 1);
  bus.unsubscribe(id);  // idempotent
}

TEST(Bus, SubscribeDuringDispatchIsSafe) {
  msg::PubSubBus bus;
  int late_calls = 0;
  bus.subscribe<msg::CarState>([&](const auto&) {
    bus.subscribe<msg::CarState>([&](const auto&) { ++late_calls; });
  });
  bus.publish(msg::CarState{});  // must not invalidate iteration
  bus.publish(msg::CarState{});
  EXPECT_GE(late_calls, 1);
}

TEST(Bus, SubscribeRawDuringDispatchIsSafe) {
  msg::PubSubBus bus;
  int late_frames = 0;
  bus.subscribe_raw(msg::Topic::kCarState, [&](const msg::WireFrame&) {
    bus.subscribe_raw(msg::Topic::kCarState,
                      [&](const msg::WireFrame&) { ++late_frames; });
  });
  bus.publish(msg::CarState{});  // new tap starts with the NEXT frame
  EXPECT_EQ(late_frames, 0);
  bus.publish(msg::CarState{});
  EXPECT_EQ(late_frames, 1);
}

TEST(Bus, UnsubscribeSelfDuringDispatch) {
  // Regression: a handler removing its own subscription mid-fan-out must
  // not invalidate the dispatch loop, and must never be called again.
  msg::PubSubBus bus;
  int self_calls = 0;
  int other_calls = 0;
  std::uint64_t self_id = 0;
  self_id = bus.subscribe<msg::CarState>([&](const auto&) {
    ++self_calls;
    bus.unsubscribe(self_id);
  });
  bus.subscribe<msg::CarState>([&](const auto&) { ++other_calls; });
  bus.publish(msg::CarState{});
  bus.publish(msg::CarState{});
  EXPECT_EQ(self_calls, 1);
  EXPECT_EQ(other_calls, 2);
}

TEST(Bus, UnsubscribeRawSelfDuringDispatch) {
  msg::PubSubBus bus;
  int self_frames = 0;
  int other_frames = 0;
  std::uint64_t self_id = 0;
  self_id = bus.subscribe_raw(msg::Topic::kCarState,
                              [&](const msg::WireFrame&) {
                                ++self_frames;
                                bus.unsubscribe(self_id);
                              });
  bus.subscribe_raw(msg::Topic::kCarState,
                    [&](const msg::WireFrame&) { ++other_frames; });
  bus.publish(msg::CarState{});
  bus.publish(msg::CarState{});
  EXPECT_EQ(self_frames, 1);
  EXPECT_EQ(other_frames, 2);
}

TEST(Bus, UnsubscribeOtherDuringDispatchTakesEffectImmediately) {
  // Removing a later subscriber from an earlier handler suppresses its
  // delivery of the in-flight message (deferred removal marks it dead
  // before the fan-out reaches it).
  msg::PubSubBus bus;
  int victim_calls = 0;
  std::uint64_t victim_id = 0;
  bus.subscribe<msg::CarState>(
      [&](const auto&) { bus.unsubscribe(victim_id); });
  victim_id = bus.subscribe<msg::CarState>([&](const auto&) {
    ++victim_calls;
  });
  bus.publish(msg::CarState{});
  bus.publish(msg::CarState{});
  EXPECT_EQ(victim_calls, 0);
}

TEST(Bus, LatestLatch) {
  msg::PubSubBus bus;
  msg::Latest<msg::RadarState> latest(bus);
  EXPECT_FALSE(latest.valid());
  msg::RadarState m;
  m.lead_distance = 12.0;
  bus.publish(m);
  m.lead_distance = 34.0;
  bus.publish(m);
  EXPECT_TRUE(latest.valid());
  EXPECT_EQ(latest.updates(), 2u);
  EXPECT_DOUBLE_EQ(latest.value().lead_distance, 34.0);
}

TEST(Bus, TopicNames) {
  EXPECT_EQ(msg::topic_name(msg::Topic::kGpsLocationExternal),
            "gpsLocationExternal");
  EXPECT_EQ(msg::topic_name(msg::Topic::kModelV2), "modelV2");
  EXPECT_EQ(msg::topic_name(msg::Topic::kRadarState), "radarState");
  EXPECT_EQ(msg::topic_name(msg::Topic::kCarState), "carState");
  EXPECT_EQ(msg::topic_name(msg::Topic::kCarControl), "carControl");
  EXPECT_EQ(msg::topic_name(msg::Topic::kControlsState), "controlsState");
  // string_view over static storage: the same call yields the same data
  // pointer, no per-call std::string materialization.
  EXPECT_EQ(msg::topic_name(msg::Topic::kModelV2).data(),
            msg::topic_name(msg::Topic::kModelV2).data());
  EXPECT_EQ(msg::topic_name(static_cast<msg::Topic>(99)), "unknown");
}

}  // namespace
