// Tests for message logging & replay (msg/log.hpp).

#include <gtest/gtest.h>

#include <sstream>

#include "attack/context.hpp"
#include "exp/campaign.hpp"
#include "msg/log.hpp"
#include "sim/world.hpp"

namespace {

using namespace scaa;

TEST(MessageLog, RecordsAndCounts) {
  msg::PubSubBus bus;
  msg::MessageLog log;
  std::uint64_t now = 0;
  log.record_all(bus, [&now] { return now; });

  msg::RadarState radar;
  radar.lead_valid = true;
  radar.lead_distance = 42.0;
  bus.publish(radar);
  now = 5;
  bus.publish(msg::CarState{});
  bus.publish(radar);

  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(msg::Topic::kRadarState), 2u);
  EXPECT_EQ(log.count(msg::Topic::kCarState), 1u);
  EXPECT_EQ(log.entries()[0].step, 0u);
  EXPECT_EQ(log.entries()[1].step, 5u);
}

TEST(MessageLog, StopDetaches) {
  msg::PubSubBus bus;
  msg::MessageLog log;
  log.record_all(bus, [] { return 0ull; });
  bus.publish(msg::CarState{});
  log.stop(bus);
  bus.publish(msg::CarState{});
  EXPECT_EQ(log.size(), 1u);
}

TEST(MessageLog, ReplayReproducesTypedContent) {
  msg::PubSubBus source;
  msg::MessageLog log;
  log.record_all(source, [] { return 0ull; });
  msg::RadarState radar;
  radar.lead_valid = true;
  radar.lead_distance = 63.5;
  radar.lead_rel_speed = -7.25;
  source.publish(radar);
  msg::CarControl cc;
  cc.accel = -3.5;
  source.publish(cc);

  msg::PubSubBus target;
  msg::Latest<msg::RadarState> radar_latest(target);
  msg::Latest<msg::CarControl> cc_latest(target);
  log.replay(target);

  ASSERT_TRUE(radar_latest.valid());
  EXPECT_DOUBLE_EQ(radar_latest.value().lead_distance, 63.5);
  EXPECT_DOUBLE_EQ(radar_latest.value().lead_rel_speed, -7.25);
  ASSERT_TRUE(cc_latest.valid());
  EXPECT_DOUBLE_EQ(cc_latest.value().accel, -3.5);
}

TEST(MessageLog, SaveLoadRoundTrip) {
  msg::PubSubBus bus;
  msg::MessageLog log;
  std::uint64_t now = 100;
  log.record_all(bus, [&now] { return now; });
  for (int i = 0; i < 20; ++i) {
    msg::GpsLocationExternal gps;
    gps.speed = 20.0 + i;
    gps.has_fix = true;
    bus.publish(gps);
    ++now;
  }

  std::stringstream buffer;
  log.save(buffer);
  const auto loaded = msg::MessageLog::load(buffer);
  ASSERT_EQ(loaded.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i].step, log.entries()[i].step);
    EXPECT_EQ(loaded.entries()[i].frame.topic, log.entries()[i].frame.topic);
    EXPECT_EQ(loaded.entries()[i].frame.payload,
              log.entries()[i].frame.payload);
  }
}

TEST(MessageLog, LoadRejectsGarbage) {
  std::stringstream buffer;
  buffer << "not a log";
  EXPECT_THROW(msg::MessageLog::load(buffer), std::runtime_error);
}

TEST(MessageLog, RecordsWholeDriveForOfflineRecon) {
  // The attacker's workflow: log a clean drive, analyze offline. A 50 s
  // drive yields the expected per-topic message counts.
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = 8;
  sim::World world(exp::world_config_for(item));
  msg::MessageLog log;
  log.record_all(world.message_bus(),
                 [&world] { return static_cast<std::uint64_t>(
                                world.time() * 100.0); });
  world.run();
  // 20 Hz model/radar ~ 1000 each, 100 Hz carState/carControl ~ 5000 each.
  EXPECT_NEAR(static_cast<double>(log.count(msg::Topic::kModelV2)), 1000.0,
              60.0);
  EXPECT_NEAR(static_cast<double>(log.count(msg::Topic::kCarState)), 5000.0,
              60.0);
  EXPECT_NEAR(static_cast<double>(log.count(msg::Topic::kCarControl)),
              5000.0, 60.0);
  // Replaying the sensor half of the log into a fresh bus feeds a context
  // inference exactly like the live drive's final state.
  msg::PubSubBus offline;
  attack::ContextInference spy(offline, 0.9);
  log.replay(offline);
  const auto ctx = spy.infer(50.0);
  EXPECT_TRUE(ctx.perception_valid);
  EXPECT_GT(ctx.speed, 10.0);
}

}  // namespace
