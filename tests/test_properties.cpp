// Property-style parameterized tests: invariants that must hold across
// sweeps of seeds, scenarios, and configurations.

#include <gtest/gtest.h>

#include <cmath>

#include "attack/value_corruption.hpp"
#include "can/packer.hpp"
#include "exp/campaign.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace {

using namespace scaa;

// --- CAN codec: encode/decode round-trips over random signals ---------------

struct SignalCase {
  int start_bit;
  int size;
  can::ByteOrder order;
  bool is_signed;
  double factor;
};

class SignalRoundTrip : public ::testing::TestWithParam<SignalCase> {};

TEST_P(SignalRoundTrip, RandomValuesSurvive) {
  const auto c = GetParam();
  can::DbcSignal sig{"S", c.start_bit, c.size, c.order, c.is_signed,
                     c.factor, 0.0};
  util::Rng rng(static_cast<std::uint64_t>(c.start_bit * 131 + c.size));
  for (int i = 0; i < 500; ++i) {
    const double physical =
        rng.uniform(sig.min_physical(), sig.max_physical());
    std::array<std::uint8_t, 8> data{};
    sig.encode(data, physical);
    // Round-trip error bounded by half a raw step.
    EXPECT_NEAR(sig.decode(data), physical, 0.5 * std::abs(c.factor) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, SignalRoundTrip,
    ::testing::Values(
        SignalCase{0, 8, can::ByteOrder::kLittleEndian, false, 1.0},
        SignalCase{4, 12, can::ByteOrder::kLittleEndian, true, 0.25},
        SignalCase{7, 16, can::ByteOrder::kBigEndian, true, 0.01},
        SignalCase{7, 16, can::ByteOrder::kBigEndian, false, 0.01},
        SignalCase{23, 8, can::ByteOrder::kBigEndian, false, 2.0},
        SignalCase{15, 24, can::ByteOrder::kBigEndian, true, 0.001},
        SignalCase{8, 32, can::ByteOrder::kLittleEndian, true, 0.1}));

// --- checksum: any corrupted bit is detected; repair always validates -------

class ChecksumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChecksumProperty, SingleBitFlipsDetected) {
  util::Rng rng(GetParam());
  can::CanFrame frame;
  frame.id = 0xE4;
  frame.dlc = 8;
  for (auto& b : frame.data)
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  can::apply_honda_checksum(frame);
  ASSERT_TRUE(can::verify_honda_checksum(frame));
  for (int bit = 0; bit < 60; ++bit) {  // skip the checksum nibble itself
    can::CanFrame tampered = frame;
    tampered.data[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(can::verify_honda_checksum(tampered)) << "bit " << bit;
    can::apply_honda_checksum(tampered);
    EXPECT_TRUE(can::verify_honda_checksum(tampered));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// --- strategic corruption: the Eq. 1 envelope holds for any speed history ---

class StrategicEnvelope : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategicEnvelope, SpeedPredictionNeverExceedsCeiling) {
  const double cruise = 26.82;
  attack::ValueCorruption vc(true, attack::CorruptionLimits::strategic(),
                             cruise);
  util::Rng rng(GetParam());
  double speed = rng.uniform(15.0, 29.0);
  attack::ActivationDecision d;
  d.active = true;
  for (int i = 0; i < 2000; ++i) {
    speed = std::max(0.0, speed + rng.gaussian(0.0, 0.05));
    const auto v =
        vc.compute(d, attack::AttackType::kAcceleration, speed, 0.01);
    ASSERT_TRUE(v.accel_cmd.has_value());
    EXPECT_GE(*v.accel_cmd, 0.0);
    EXPECT_LE(*v.accel_cmd, 2.0);
    // The Eq. 1 guarantee: the attack never *pushes* the prediction past
    // the ceiling. (External noise can carry the measured speed above it,
    // in which case the attack must command zero.)
    const double predicted = vc.predicted_speed();
    if (predicted <= 1.1 * cruise) {
      EXPECT_LE(predicted + *v.accel_cmd * 0.01, 1.1 * cruise + 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(*v.accel_cmd, 0.0);
    }
    speed += *v.accel_cmd * 0.01;  // the attack takes effect
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategicEnvelope,
                         ::testing::Values(11, 22, 33, 44));

// --- whole-world invariants over the scenario grid --------------------------

struct GridCase {
  int scenario;
  double gap;
};

class BaselineInvariants : public ::testing::TestWithParam<GridCase> {};

TEST_P(BaselineInvariants, NoAttackNoAccidentAnySeed) {
  const auto c = GetParam();
  for (std::uint64_t seed = 100; seed < 103; ++seed) {
    exp::CampaignItem item;
    item.strategy = attack::StrategyKind::kNone;
    item.scenario_id = c.scenario;
    item.initial_gap = c.gap;
    item.seed = seed;
    sim::World world(exp::world_config_for(item));
    const auto s = world.run();
    EXPECT_FALSE(s.any_accident)
        << "S" << c.scenario << " gap " << c.gap << " seed " << seed;
    EXPECT_FALSE(s.hazard_h1);
    EXPECT_EQ(s.fcw_events, 0u);
    EXPECT_FALSE(s.attack_activated);
    EXPECT_EQ(s.frames_corrupted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BaselineInvariants,
    ::testing::Values(GridCase{1, 50.0}, GridCase{1, 100.0}, GridCase{2, 70.0},
                      GridCase{3, 70.0}, GridCase{4, 50.0},
                      GridCase{4, 100.0}));

class AttackInvariants
    : public ::testing::TestWithParam<attack::AttackType> {};

TEST_P(AttackInvariants, SummaryConsistency) {
  const auto type = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    exp::CampaignItem item;
    item.strategy = attack::StrategyKind::kContextAware;
    item.type = type;
    item.strategic_values = true;
    item.scenario_id = 1 + static_cast<int>(seed % 4);
    item.initial_gap = 70.0;
    item.seed = seed * 17;
    sim::World world(exp::world_config_for(item));
    const auto s = world.run();

    // Hazard bookkeeping is internally consistent.
    EXPECT_EQ(s.any_hazard, s.hazard_h1 || s.hazard_h2 || s.hazard_h3);
    if (s.any_hazard) {
      EXPECT_GE(s.first_hazard_time, 0.0);
      EXPECT_LE(s.first_hazard_time, s.sim_end_time + 1e-9);
    }
    // TTH only defined when the attack preceded the hazard.
    if (s.tth >= 0.0) {
      EXPECT_TRUE(s.attack_activated);
      EXPECT_TRUE(s.any_hazard);
      EXPECT_NEAR(s.tth, s.first_hazard_time - s.attack_start, 1e-9);
    }
    // Corruption requires activation.
    if (s.frames_corrupted > 0) {
      EXPECT_TRUE(s.attack_activated);
    }
    // The gateway never sees an invalid checksum: the attacker repairs them.
    EXPECT_EQ(s.can_checksum_rejects, 0u);
    // The simulation never runs past its configured duration.
    EXPECT_LE(s.sim_end_time, 50.0 + 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Types, AttackInvariants,
    ::testing::Values(attack::AttackType::kAcceleration,
                      attack::AttackType::kDeceleration,
                      attack::AttackType::kSteeringLeft,
                      attack::AttackType::kSteeringRight,
                      attack::AttackType::kAccelerationSteering,
                      attack::AttackType::kDecelerationSteering));

// --- strategy timing invariants over seeds ----------------------------------

class StrategyTiming : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyTiming, AttackWindowsInsideConfiguredBounds) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kRandomStDur;
  item.type = attack::AttackType::kSteeringRight;
  item.scenario_id = 2;
  item.initial_gap = 70.0;
  item.seed = GetParam();
  sim::World world(exp::world_config_for(item));
  const auto s = world.run();
  if (s.attack_activated) {
    EXPECT_GE(s.attack_start, 5.0 - 1e-9);
    EXPECT_LE(s.attack_start, 40.0 + 1e-9);
    // Duration never exceeds the configured maximum (the run may end or the
    // driver may intervene earlier, shortening it).
    EXPECT_LE(s.attack_duration, 2.5 + 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyTiming,
                         ::testing::Range<std::uint64_t>(200, 212));

// --- RNG stream independence -------------------------------------------------

class RngStreams : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStreams, ForkedStreamsUncorrelated) {
  const util::Rng parent(GetParam());
  util::Rng a = parent.fork(1);
  util::Rng b = parent.fork(2);
  // Crude correlation test over 10k uniform pairs.
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
  }
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  EXPECT_NEAR(cov, 0.0, 0.01);  // 1/12 would be perfect correlation
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngStreams,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
