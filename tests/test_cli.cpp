// Unit tests for scaa::cli (argument parsing, report emission, campaign
// subcommand registry). The parser tests pin down the two historical bench
// bugs: flags in the final argv position being ignored, and non-numeric
// values silently becoming 0 via atoi.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cli/args.hpp"
#include "cli/campaigns.hpp"
#include "cli/report.hpp"

namespace {

using namespace scaa;

cli::ArgParser make_parser() {
  cli::ArgParser args("prog", "test parser");
  args.add_int("--reps", 20, "repetitions");
  args.add_int("--threads", 0, "threads");
  args.add_uint("--seed", 2022, "seed");
  args.add_double("--gap", 100.0, "gap");
  args.add_string("--csv", "out.csv", "path");
  args.add_choice("--format", "text", {"text", "csv", "json"}, "format");
  args.add_bool("--verbose", "chatty");
  return args;
}

TEST(ArgParser, DefaultsApplyWhenUnset) {
  auto args = make_parser();
  args.parse_tokens({});
  EXPECT_EQ(args.get_int("--reps"), 20);
  EXPECT_EQ(args.get_uint("--seed"), 2022u);
  EXPECT_DOUBLE_EQ(args.get_double("--gap"), 100.0);
  EXPECT_EQ(args.get_string("--csv"), "out.csv");
  EXPECT_FALSE(args.get_bool("--verbose"));
  EXPECT_FALSE(args.provided("--reps"));
}

TEST(ArgParser, ParsesFlagInFinalPosition) {
  // The seed bench loop `for (i = 1; i < argc - 1; ++i)` never reached the
  // final pair; "--threads 2" at the end was silently dropped.
  auto args = make_parser();
  args.parse_tokens({"--reps", "5", "--threads", "2"});
  EXPECT_EQ(args.get_int("--reps"), 5);
  EXPECT_EQ(args.get_int("--threads"), 2);
  EXPECT_TRUE(args.provided("--threads"));
}

TEST(ArgParser, ParsesEqualsSyntax) {
  auto args = make_parser();
  args.parse_tokens({"--reps=7", "--format=json", "--gap=62.5"});
  EXPECT_EQ(args.get_int("--reps"), 7);
  EXPECT_EQ(args.get_string("--format"), "json");
  EXPECT_DOUBLE_EQ(args.get_double("--gap"), 62.5);
}

TEST(ArgParser, RejectsMalformedNumbers) {
  // atoi("banana") == 0; the strict parser must throw instead.
  EXPECT_THROW(make_parser().parse_tokens({"--reps", "banana"}),
               cli::ArgError);
  EXPECT_THROW(make_parser().parse_tokens({"--reps", "3x"}), cli::ArgError);
  EXPECT_THROW(make_parser().parse_tokens({"--reps", ""}), cli::ArgError);
  EXPECT_THROW(make_parser().parse_tokens({"--seed", "-1"}), cli::ArgError);
  EXPECT_THROW(make_parser().parse_tokens({"--gap", "1.2.3"}), cli::ArgError);
}

TEST(ArgParser, AcceptsNegativeIntoSigned) {
  auto args = make_parser();
  args.parse_tokens({"--reps", "-3"});
  EXPECT_EQ(args.get_int("--reps"), -3);
}

TEST(ArgParser, EnforcesDeclaredBounds) {
  auto bounded = []() {
    cli::ArgParser args("prog", "bounded");
    args.add_int("--reps", 1, "repetitions", 1, 1000000);
    return args;
  };
  auto ok = bounded();
  ok.parse_tokens({"--reps", "1000000"});
  EXPECT_EQ(ok.get_int("--reps"), 1000000);
  EXPECT_THROW(bounded().parse_tokens({"--reps", "0"}), cli::ArgError);
  EXPECT_THROW(bounded().parse_tokens({"--reps", "-1"}), cli::ArgError);
  // 2^33 + 1 would wrap to 1 if truncated to int before the check; the
  // bound is enforced on the long long so it must be rejected outright.
  EXPECT_THROW(bounded().parse_tokens({"--reps", "8589934593"}),
               cli::ArgError);
  EXPECT_THROW(bounded().parse_tokens({"--reps", "1000001"}), cli::ArgError);
}

TEST(ArgParser, RejectsUnknownAndPositionalTokens) {
  EXPECT_THROW(make_parser().parse_tokens({"--nope", "1"}), cli::ArgError);
  EXPECT_THROW(make_parser().parse_tokens({"stray"}), cli::ArgError);
}

TEST(ArgParser, RejectsMissingValue) {
  EXPECT_THROW(make_parser().parse_tokens({"--reps"}), cli::ArgError);
  EXPECT_THROW(make_parser().parse_tokens({"--reps", "1", "--csv"}),
               cli::ArgError);
}

TEST(ArgParser, RejectsChoiceOutsideSet) {
  EXPECT_THROW(make_parser().parse_tokens({"--format", "xml"}),
               cli::ArgError);
}

TEST(ArgParser, BoolFlagsTakeNoValue) {
  auto args = make_parser();
  args.parse_tokens({"--verbose", "--reps", "2"});
  EXPECT_TRUE(args.get_bool("--verbose"));
  EXPECT_EQ(args.get_int("--reps"), 2);
  EXPECT_THROW(make_parser().parse_tokens({"--verbose=1"}), cli::ArgError);
}

TEST(ArgParser, HelpIsAlwaysRecognized) {
  auto args = make_parser();
  args.parse_tokens({"--help"});
  EXPECT_TRUE(args.help_requested());
  EXPECT_NE(args.usage().find("--reps"), std::string::npos);
}

TEST(Report, EnforcesRowWidth) {
  cli::Report report("r", {"a", "b"});
  EXPECT_THROW(report.add_row({std::string("only-one")}),
               std::invalid_argument);
  report.add_row({std::string("x"), 1.5});
  EXPECT_EQ(report.rows().size(), 1u);
}

TEST(Report, WritesCsvWithHeader) {
  cli::Report report("r", {"name", "value", "flag"});
  report.add_row({std::string("alpha"), 1.5, true});
  report.add_row({std::string("beta,comma"), -2.0, false});
  std::ostringstream out;
  report.write_csv(out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.find("name,value,flag\n"), 0u);
  EXPECT_NE(csv.find("alpha,1.5,1"), std::string::npos);
  EXPECT_NE(csv.find("\"beta,comma\""), std::string::npos);
}

TEST(Report, WritesWellFormedJson) {
  cli::Report report("quote\"name", {"s", "n", "i", "b"});
  report.add_row({std::string("line\nbreak"), 0.5, 7LL, true});
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("{\"report\":\"quote\\\"name\""), 0u);
  EXPECT_NE(json.find("\"s\":\"line\\nbreak\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"i\":7"), std::string::npos);
  EXPECT_NE(json.find("\"b\":true"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(Report, FormatRoundTrip) {
  EXPECT_EQ(cli::parse_format("csv"), cli::Format::kCsv);
  EXPECT_EQ(cli::parse_format("json"), cli::Format::kJson);
  EXPECT_EQ(cli::parse_format("text"), cli::Format::kText);
  EXPECT_THROW(cli::parse_format("xml"), std::invalid_argument);
  EXPECT_EQ(cli::to_string(cli::Format::kJson), "json");
}

TEST(Campaigns, RegistryCoversThePaperArtifacts) {
  for (const char* name : {"table4", "table5", "fig7", "fig8", "run"}) {
    const auto* cmd = cli::find_campaign_command(name);
    ASSERT_NE(cmd, nullptr) << name;
    EXPECT_FALSE(cmd->paper_ref.empty());
    EXPECT_NE(cmd->run, nullptr);
  }
  EXPECT_EQ(cli::find_campaign_command("table9"), nullptr);
}

TEST(Campaigns, Fig7ReportIsStructuredAndDecimated) {
  cli::CampaignOptions options;
  options.seed = 7;
  options.decimate = 100;  // 5000-step run -> ~50 rows
  const auto report = cli::fig7_report(options, nullptr);
  ASSERT_EQ(report.columns().front(), "time");
  ASSERT_GE(report.rows().size(), 10u);
  ASSERT_LE(report.rows().size(), 200u);
  // Attack-free run: the attack_active column must be false everywhere.
  const auto attack_col =
      std::find(report.columns().begin(), report.columns().end(),
                "attack_active") -
      report.columns().begin();
  for (const auto& row : report.rows())
    EXPECT_FALSE(std::get<bool>(row[static_cast<std::size_t>(attack_col)]));
}

TEST(Campaigns, UnknownSubcommandFailsWithUsageError) {
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_campaign_command("nope", {}, out, err), 2);
  EXPECT_NE(err.str().find("unknown subcommand"), std::string::npos);
}

TEST(Campaigns, MalformedFlagFailsLoudly) {
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_campaign_command("table4", {"--reps", "banana"}, out,
                                      err),
            2);
  EXPECT_NE(err.str().find("--reps"), std::string::npos);
}

TEST(Campaigns, IntFlagsThatWouldTruncateExitTwo) {
  // Regression guard for the long long -> int narrowing at the option
  // sites: 2^32+1 parsed as long long would wrap to 1 through a bare
  // static_cast<int>, silently running a 1-rep campaign. The range check
  // on the wide value must reject it with a diagnostic naming the flag.
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_campaign_command("table4", {"--reps", "4294967297"}, out,
                                      err),
            2);
  EXPECT_NE(err.str().find("--reps"), std::string::npos);
  std::ostringstream out7, err7;
  EXPECT_EQ(cli::run_campaign_command("fig7", {"--decimate", "4294967297"},
                                      out7, err7),
            2);
  EXPECT_NE(err7.str().find("--decimate"), std::string::npos);
}

TEST(Campaigns, SubcommandHelpExitsZero) {
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_campaign_command("fig8", {"--help"}, out, err), 0);
  EXPECT_NE(out.str().find("--format"), std::string::npos);
}

TEST(Campaigns, ResumeRequiresCheckpointPath) {
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_campaign_command("table4", {"--resume"}, out, err), 2);
  EXPECT_NE(err.str().find("--checkpoint"), std::string::npos);
}

TEST(Campaigns, BenchFig8RejectsCheckpointInsteadOfIgnoringIt) {
  // The fig8 sweep has no checkpoint path; silently accepting the flag
  // would leave an hour-long run unprotected while claiming otherwise.
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_campaign_command(
                "bench", {"--campaign", "fig8", "--checkpoint", "f8.ckpt"},
                out, err),
            2);
  EXPECT_NE(err.str().find("not supported"), std::string::npos);
}

TEST(Campaigns, CheckpointFlagsOnlyOnGridCampaigns) {
  // fig7 is a single simulation; it must not advertise --checkpoint.
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_campaign_command("fig7", {"--help"}, out, err), 0);
  EXPECT_EQ(out.str().find("--checkpoint"), std::string::npos);
  std::ostringstream out4, err4;
  EXPECT_EQ(cli::run_campaign_command("table4", {"--help"}, out4, err4), 0);
  EXPECT_NE(out4.str().find("--checkpoint"), std::string::npos);
  EXPECT_NE(out4.str().find("--resume"), std::string::npos);
}

int count_lines(const std::string& text) {
  return static_cast<int>(std::count(text.begin(), text.end(), '\n'));
}

TEST(Campaigns, DecileProgressEmitsFinalLineExactlyOnce) {
  // Regression: `completed == total` used to early-return, so the 100%
  // line never printed — and a campaign that fits in one chunk printed
  // nothing at all.
  std::ostringstream out;
  const auto progress = cli::decile_progress(&out, "t");
  progress({64, 640});
  progress({640, 640});
  progress({640, 640});  // duplicate completion callbacks stay deduped
  const std::string text = out.str();
  EXPECT_EQ(count_lines(text), 2);
  EXPECT_NE(text.find("[t] 640/640 sims"), std::string::npos);
}

TEST(Campaigns, DecileProgressSingleChunkCampaignStillReports) {
  std::ostringstream out;
  const auto progress = cli::decile_progress(&out, "t");
  progress({6, 6});  // one chunk: first and only callback is completion
  EXPECT_EQ(out.str(), "[t] 6/6 sims\n");
}

TEST(Campaigns, DecileProgressCrossingSeveralDecilesEmitsOneLine) {
  std::ostringstream out;
  const auto progress = cli::decile_progress(&out, "t");
  progress({10, 100});  // decile 1
  progress({95, 100});  // jumps deciles 2..9 in one chunk
  EXPECT_EQ(count_lines(out.str()), 2);
  progress({96, 100});  // still decile 9: no new line
  EXPECT_EQ(count_lines(out.str()), 2);
  progress({100, 100});
  EXPECT_EQ(count_lines(out.str()), 3);
}

TEST(Campaigns, DecileProgressNullStreamAndEmptyGridAreSafe) {
  EXPECT_FALSE(cli::decile_progress(nullptr, "t"));
  std::ostringstream out;
  const auto progress = cli::decile_progress(&out, "t");
  progress({0, 0});
  progress({0, 10});  // nothing completed yet: nothing to say
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
