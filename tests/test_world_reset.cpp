/// Differential suite for the zero-alloc simulation lifecycle: a reset
/// World must be bit-identical to a freshly constructed one over entire
/// campaigns (summaries AND traces), batched lockstep stepping must match
/// sequential stepping exactly, and the arena steady state must never
/// touch the heap.
///
/// This TU deliberately includes alloc_counter.hpp (replacing the global
/// operator new for this binary) — keep it out of every other suite.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/arena.hpp"
#include "exp/campaign.hpp"
#include "fault/plan.hpp"
#include "sim/world.hpp"
#include "sim/world_batch.hpp"
#include "util/alloc_counter.hpp"

namespace scaa {
namespace {

using exp::CampaignItem;
using exp::WorldAssets;
using sim::SimulationSummary;
using sim::World;

/// Field-exact equality — the summary is the unit the campaign aggregates,
/// so every field participates in the bit-identity contract.
void expect_summary_eq(const SimulationSummary& a, const SimulationSummary& b,
                       const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.any_hazard, b.any_hazard);
  EXPECT_EQ(a.first_hazard, b.first_hazard);
  EXPECT_EQ(a.first_hazard_time, b.first_hazard_time);
  EXPECT_EQ(a.hazard_h1, b.hazard_h1);
  EXPECT_EQ(a.hazard_h2, b.hazard_h2);
  EXPECT_EQ(a.hazard_h3, b.hazard_h3);
  EXPECT_EQ(a.hazard_h1_time, b.hazard_h1_time);
  EXPECT_EQ(a.hazard_h2_time, b.hazard_h2_time);
  EXPECT_EQ(a.hazard_h3_time, b.hazard_h3_time);
  EXPECT_EQ(a.any_accident, b.any_accident);
  EXPECT_EQ(a.first_accident, b.first_accident);
  EXPECT_EQ(a.first_accident_time, b.first_accident_time);
  EXPECT_EQ(a.accident_a1, b.accident_a1);
  EXPECT_EQ(a.accident_a2, b.accident_a2);
  EXPECT_EQ(a.accident_a3, b.accident_a3);
  EXPECT_EQ(a.alert_events, b.alert_events);
  EXPECT_EQ(a.steer_saturated_events, b.steer_saturated_events);
  EXPECT_EQ(a.fcw_events, b.fcw_events);
  EXPECT_EQ(a.alert_before_hazard, b.alert_before_hazard);
  EXPECT_EQ(a.lane_invasions, b.lane_invasions);
  EXPECT_EQ(a.lane_invasion_rate, b.lane_invasion_rate);
  EXPECT_EQ(a.attack_activated, b.attack_activated);
  EXPECT_EQ(a.attack_start, b.attack_start);
  EXPECT_EQ(a.attack_duration, b.attack_duration);
  EXPECT_EQ(a.tth, b.tth);
  EXPECT_EQ(a.frames_corrupted, b.frames_corrupted);
  EXPECT_EQ(a.driver_engaged, b.driver_engaged);
  EXPECT_EQ(a.driver_engage_time, b.driver_engage_time);
  EXPECT_EQ(a.driver_perception_time, b.driver_perception_time);
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.can_checksum_rejects, b.can_checksum_rejects);
  EXPECT_EQ(a.panda_frames_blocked, b.panda_frames_blocked);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.faults_suppressed, b.faults_suppressed);
}

CampaignItem make_item(attack::StrategyKind strategy, attack::AttackType type,
                       int scenario_id, double gap, std::uint64_t seed) {
  CampaignItem item;
  item.strategy = strategy;
  item.type = type;
  item.scenario_id = scenario_id;
  item.initial_gap = gap;
  item.seed = seed;
  return item;
}

/// A deliberately heterogeneous item mix: every strategy kind, several
/// attack channels, all four scenarios — so consecutive resets keep
/// re-targeting the resident World across attack/no-attack, trailing/no
/// trailing, neighbor/no neighbor shapes.
std::vector<CampaignItem> mixed_items() {
  return {
      make_item(attack::StrategyKind::kNone, attack::AttackType::kAcceleration,
                1, 100.0, 11),
      make_item(attack::StrategyKind::kRandomStDur,
                attack::AttackType::kDeceleration, 2, 60.0, 22),
      make_item(attack::StrategyKind::kRandomSt,
                attack::AttackType::kSteeringLeft, 3, 100.0, 33),
      make_item(attack::StrategyKind::kRandomDur,
                attack::AttackType::kSteeringRight, 4, 140.0, 44),
      make_item(attack::StrategyKind::kContextAware,
                attack::AttackType::kAccelerationSteering, 2, 60.0, 55),
      make_item(attack::StrategyKind::kContextAware,
                attack::AttackType::kDecelerationSteering, 3, 140.0, 66),
      make_item(attack::StrategyKind::kRandomStDur,
                attack::AttackType::kAcceleration, 4, 100.0, 77),
      make_item(attack::StrategyKind::kNone, attack::AttackType::kAcceleration,
                2, 60.0, 88),
      make_item(attack::StrategyKind::kRandomDur,
                attack::AttackType::kDeceleration, 1, 140.0, 99),
  };
}

std::string item_label(const CampaignItem& item) {
  return attack::to_string(item.strategy) + "/" + to_string(item.type) +
         "/s" + std::to_string(item.scenario_id) + "/seed" +
         std::to_string(item.seed);
}

TEST(WorldReset, FreshVsResetBitIdenticalSummary) {
  const WorldAssets assets = WorldAssets::make_default();
  const std::vector<CampaignItem> items = mixed_items();

  // One resident world sweeps the whole mix via reset(); every summary
  // must match a World constructed fresh for that item.
  std::unique_ptr<World> resident;
  for (const CampaignItem& item : items) {
    const sim::WorldConfig cfg = exp::world_config_for(item, assets);
    if (!resident) {
      resident = std::make_unique<World>(cfg);
    } else {
      resident->reset(cfg);
    }
    const SimulationSummary reused = resident->run();
    World fresh(cfg);
    expect_summary_eq(fresh.run(), reused, item_label(item));
  }
}

TEST(WorldReset, FreshVsResetBitIdenticalTrace) {
  const WorldAssets assets = WorldAssets::make_default();
  const CampaignItem item =
      make_item(attack::StrategyKind::kContextAware,
                attack::AttackType::kDecelerationSteering, 2, 60.0, 7);
  const sim::WorldConfig cfg = exp::world_config_for(item, assets);

  // Warm the resident world on a different item first, so the trace
  // comparison exercises a genuinely dirty reset.
  World resident(exp::world_config_for(
      make_item(attack::StrategyKind::kRandomStDur,
                attack::AttackType::kSteeringLeft, 3, 140.0, 123),
      assets));
  resident.run();
  resident.reset(cfg);

  sim::Trace fresh_trace;
  sim::Trace reused_trace;
  World fresh(cfg);
  const SimulationSummary fresh_summary = fresh.run(&fresh_trace);
  const SimulationSummary reused_summary = resident.run(&reused_trace);
  expect_summary_eq(fresh_summary, reused_summary, "trace item");

  ASSERT_EQ(fresh_trace.size(), reused_trace.size());
  for (std::size_t i = 0; i < fresh_trace.size(); ++i) {
    const sim::TraceRow& a = fresh_trace.rows()[i];
    const sim::TraceRow& b = reused_trace.rows()[i];
    ASSERT_EQ(a.time, b.time) << "row " << i;
    ASSERT_EQ(a.ego_s, b.ego_s) << "row " << i;
    ASSERT_EQ(a.ego_d, b.ego_d) << "row " << i;
    ASSERT_EQ(a.ego_speed, b.ego_speed) << "row " << i;
    ASSERT_EQ(a.ego_accel, b.ego_accel) << "row " << i;
    ASSERT_EQ(a.ego_steer, b.ego_steer) << "row " << i;
    ASSERT_EQ(a.lead_gap, b.lead_gap) << "row " << i;
    ASSERT_EQ(a.accel_cmd, b.accel_cmd) << "row " << i;
    ASSERT_EQ(a.steer_cmd, b.steer_cmd) << "row " << i;
    ASSERT_EQ(a.attack_active, b.attack_active) << "row " << i;
    ASSERT_EQ(a.alert_active, b.alert_active) << "row " << i;
    ASSERT_EQ(a.driver_engaged, b.driver_engaged) << "row " << i;
  }
}

TEST(WorldReset, ResultIndependentOfResetHistory) {
  // The same item must produce the same summary whatever ran before it —
  // RNG streams re-fork from the item's seed alone.
  const WorldAssets assets = WorldAssets::make_default();
  const std::vector<CampaignItem> items = mixed_items();
  const CampaignItem probe =
      make_item(attack::StrategyKind::kRandomStDur,
                attack::AttackType::kAccelerationSteering, 3, 100.0, 424242);
  const sim::WorldConfig probe_cfg = exp::world_config_for(probe, assets);

  World baseline(probe_cfg);
  const SimulationSummary expected = baseline.run();

  for (std::size_t history = 0; history < items.size(); ++history) {
    World world(exp::world_config_for(items[history], assets));
    world.run();
    world.reset(probe_cfg);
    expect_summary_eq(expected, world.run(),
                      "after history " + item_label(items[history]));
  }
}

TEST(WorldReset, SecondRunWithoutResetThrows) {
  const WorldAssets assets = WorldAssets::make_default();
  const sim::WorldConfig cfg = exp::world_config_for(
      make_item(attack::StrategyKind::kNone,
                attack::AttackType::kAcceleration, 1, 100.0, 5),
      assets);
  World world(cfg);
  const SimulationSummary first = world.run();
  EXPECT_THROW(world.run(), std::logic_error);
  world.reset(cfg);
  expect_summary_eq(first, world.run(), "rerun after reset");
  EXPECT_THROW(world.run(), std::logic_error);
}

TEST(WorldReset, ResetRejectsForeignDatabase) {
  const WorldAssets assets = WorldAssets::make_default();
  const CampaignItem item = make_item(
      attack::StrategyKind::kNone, attack::AttackType::kAcceleration, 1,
      100.0, 5);
  World world(exp::world_config_for(item, assets));
  world.run();

  sim::WorldConfig other = exp::world_config_for(item, assets);
  other.db =
      std::make_shared<const can::Database>(can::Database::simulated_car());
  EXPECT_THROW(world.reset(other), std::invalid_argument);

  // Null db (and null road) mean "keep the current assets".
  sim::WorldConfig keep = exp::world_config_for(item);
  keep.road = nullptr;
  keep.db = nullptr;
  world.reset(keep);
  EXPECT_EQ(&world.dbc(), assets.db.get());
}

TEST(WorldReset, HintedRoadQueriesMatchPlain) {
  // The segment-hinted heading/curvature lookups must be bit-identical to
  // the plain ones for ANY hint — the hint only changes where the monotone
  // segment walk starts, never where it ends.
  const auto road =
      std::make_shared<const road::Road>(road::RoadBuilder::paper_road());
  const double length = road->length();
  for (int i = 0; i <= 400; ++i) {
    const double s = length * static_cast<double>(i) / 400.0;
    for (const std::size_t hint :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{200},
          std::size_t{100000}, geom::Polyline::kNoSegmentHint}) {
      ASSERT_EQ(road->heading_at(s), road->heading_at(s, hint))
          << "s=" << s << " hint=" << hint;
      ASSERT_EQ(road->curvature_at(s), road->curvature_at(s, hint))
          << "s=" << s << " hint=" << hint;
    }
  }
}

TEST(WorldReset, BatchSteppingMatchesSequential) {
  const WorldAssets assets = WorldAssets::make_default();
  const std::vector<CampaignItem> items = mixed_items();

  std::vector<std::unique_ptr<World>> worlds;
  sim::WorldBatch batch;
  for (const CampaignItem& item : items) {
    worlds.push_back(
        std::make_unique<World>(exp::world_config_for(item, assets)));
    batch.add(worlds.back().get());
  }
  batch.run_all();
  EXPECT_TRUE(batch.all_finished());

  for (std::size_t i = 0; i < items.size(); ++i) {
    World fresh(exp::world_config_for(items[i], assets));
    expect_summary_eq(fresh.run(), worlds[i]->summarize(),
                      "batched " + item_label(items[i]));
  }
}

TEST(WorldReset, BatchRejectsMismatchedRoads) {
  const WorldAssets a = WorldAssets::make_default();
  const WorldAssets b = WorldAssets::make_default();
  const CampaignItem item = make_item(
      attack::StrategyKind::kNone, attack::AttackType::kAcceleration, 1,
      100.0, 5);
  sim::WorldConfig cfg_b = exp::world_config_for(item, b);
  cfg_b.db = a.db;  // only the road differs
  World wa(exp::world_config_for(item, a));
  World wb(cfg_b);
  sim::WorldBatch batch;
  batch.add(&wa);
  EXPECT_THROW(batch.add(&wb), std::invalid_argument);
}

TEST(WorldReset, ArenaMatchesFreshLoop) {
  const WorldAssets assets = WorldAssets::make_default();
  std::vector<CampaignItem> items = mixed_items();
  // More items than resident worlds, so the arena wraps around and resets.
  for (std::uint64_t seed = 1000; items.size() < 2 * exp::kBatchWorlds + 3;
       ++seed) {
    items.push_back(make_item(attack::StrategyKind::kRandomDur,
                              attack::AttackType::kSteeringLeft,
                              1 + static_cast<int>(seed % 4), 60.0, seed));
  }

  exp::WorldArena arena;
  std::vector<SimulationSummary> out(items.size());
  arena.run_items({items.data(), items.size()}, assets,
                  {out.data(), out.size()});
  EXPECT_LE(arena.world_count(), exp::kBatchWorlds);

  for (std::size_t i = 0; i < items.size(); ++i) {
    World fresh(exp::world_config_for(items[i], assets));
    expect_summary_eq(fresh.run(), out[i], "arena " + item_label(items[i]));
  }
}

TEST(WorldReset, CampaignRunnerMatchesFreshLoop) {
  // End-to-end: the arena-backed parallel campaign runner must reproduce
  // the naive one-fresh-World-per-item loop bit-for-bit, in item order.
  exp::CampaignConfig config;
  config.repetitions = 1;
  config.threads = 3;
  const std::vector<CampaignItem> items =
      exp::make_grid(attack::StrategyKind::kRandomStDur,
                     /*strategic_values=*/true, /*driver_enabled=*/true,
                     config);
  const std::vector<exp::CampaignResult> results =
      exp::run_campaign(items, config);
  ASSERT_EQ(results.size(), items.size());

  const WorldAssets assets = WorldAssets::make_default();
  for (std::size_t i = 0; i < items.size(); i += 7) {  // sampled: runtime
    World fresh(exp::world_config_for(items[i], assets));
    expect_summary_eq(fresh.run(), results[i].summary,
                      "campaign " + item_label(items[i]));
  }
}

TEST(WorldReset, EavesdropperSurvivesReset) {
  // The paper's eavesdropping surface is wiring, and wiring survives
  // reset(): a CAN tap and a raw pub/sub subscriber attached once keep
  // observing across simulations, and the per-topic sequence numbers
  // restart gap-free — nothing on the wire reveals the reset.
  const WorldAssets assets = WorldAssets::make_default();
  const sim::WorldConfig cfg = exp::world_config_for(
      make_item(attack::StrategyKind::kRandomSt,
                attack::AttackType::kSteeringLeft, 1, 100.0, 9),
      assets);
  World world(cfg);

  std::uint64_t frames_tapped = 0;
  world.can().attach_tap(
      [&frames_tapped](const can::CanFrame&) { ++frames_tapped; });
  std::vector<std::uint64_t> car_state_seqs;
  world.message_bus().subscribe_raw(
      msg::Topic::kCarState, [&car_state_seqs](const msg::WireFrame& frame) {
        car_state_seqs.push_back(frame.sequence);
      });

  world.run();
  const std::uint64_t frames_first = frames_tapped;
  const std::size_t msgs_first = car_state_seqs.size();
  ASSERT_GT(frames_first, 0u);
  ASSERT_GT(msgs_first, 0u);

  world.reset(cfg);
  world.run();
  EXPECT_EQ(frames_tapped, 2 * frames_first);
  ASSERT_EQ(car_state_seqs.size(), 2 * msgs_first);
  // Gap-free within each run, restarting from 1 after the reset.
  for (std::size_t i = 0; i < car_state_seqs.size(); ++i)
    ASSERT_EQ(car_state_seqs[i], static_cast<std::uint64_t>(i % msgs_first) + 1)
        << "index " << i;
}

TEST(WorldReset, PandaTogglesAcrossReset) {
  const WorldAssets assets = WorldAssets::make_default();
  const CampaignItem item =
      make_item(attack::StrategyKind::kRandomStDur,
                attack::AttackType::kAcceleration, 1, 100.0, 31);
  sim::WorldConfig plain = exp::world_config_for(item, assets);
  sim::WorldConfig enforced = plain;
  enforced.panda_enforced = true;

  World fresh_plain(plain);
  const SimulationSummary expect_plain = fresh_plain.run();
  World fresh_enforced(enforced);
  const SimulationSummary expect_enforced = fresh_enforced.run();

  // plain -> enforced -> plain, each leg matching its fresh counterpart.
  World world(plain);
  world.run();
  world.reset(enforced);
  expect_summary_eq(expect_enforced, world.run(), "toggled on");
  world.reset(plain);
  expect_summary_eq(expect_plain, world.run(), "toggled off");
}

TEST(WorldReset, ArenaSteadyStateIsZeroAlloc) {
  const WorldAssets assets = WorldAssets::make_default();
  std::vector<CampaignItem> warm = mixed_items();
  // Same shapes, different seeds: the second pass is real work, not a
  // replay, yet must not allocate.
  std::vector<CampaignItem> steady = warm;
  for (CampaignItem& item : steady) item.seed += 777;

  exp::WorldArena arena;
  std::vector<SimulationSummary> out(warm.size());
  arena.run_items({warm.data(), warm.size()}, assets,
                  {out.data(), out.size()});

  const std::uint64_t before =
      util::g_allocation_count.load(std::memory_order_relaxed);
  arena.run_items({steady.data(), steady.size()}, assets,
                  {out.data(), out.size()});
  const std::uint64_t after =
      util::g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "whole-simulation steady state must not touch the heap";
}

TEST(WorldReset, SingleResetRunIsZeroAlloc) {
  // The finer-grained variant: one reset()+run() cycle on an already-warm
  // World, measured directly (no arena, no batch).
  const WorldAssets assets = WorldAssets::make_default();
  const sim::WorldConfig cfg = exp::world_config_for(
      make_item(attack::StrategyKind::kContextAware,
                attack::AttackType::kAccelerationSteering, 2, 60.0, 13),
      assets);
  World world(cfg);
  world.run();
  world.reset(cfg);
  world.run();  // second run warms any lazily grown buffers

  world.reset(cfg);
  const std::uint64_t before =
      util::g_allocation_count.load(std::memory_order_relaxed);
  world.reset(cfg);
  world.run();
  const std::uint64_t after =
      util::g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(WorldReset, FaultedResetRunIsZeroAlloc) {
  // The fault layer rides inside the simulation hot path, so the zero-alloc
  // lifecycle contract extends to it: with a multi-fault plan attached
  // (including the delayed-frame queue, whose capacity is reserved at
  // construction), a warm reset()+run() cycle must not touch the heap.
  const WorldAssets assets = WorldAssets::make_default();
  sim::WorldConfig cfg = exp::world_config_for(
      make_item(attack::StrategyKind::kContextAware,
                attack::AttackType::kAccelerationSteering, 2, 60.0, 13),
      assets);
  cfg.fault_plan =
      std::make_shared<const fault::FaultPlan>(fault::FaultPlan::parse_text(
          "can_drop rate=0.05\n"
          "can_delay rate=0.05 ticks=3\n"
          "can_corrupt rate=0.02\n"
          "sensor_freeze rate=0.1\n"
          "sensor_noise rate=0.5 mag=0.3\n"
          "ecu_stall rate=0.005 ticks=10\n",
          "zero-alloc"));
  World world(cfg);
  world.run();
  world.reset(cfg);
  world.run();  // second run warms any lazily grown buffers

  world.reset(cfg);
  const std::uint64_t before =
      util::g_allocation_count.load(std::memory_order_relaxed);
  world.reset(cfg);
  const SimulationSummary summary = world.run();
  const std::uint64_t after =
      util::g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "fault-injected steady state must not touch the heap";
  std::uint64_t fired = 0;
  for (const std::uint64_t f : summary.faults_fired) fired += f;
  EXPECT_GT(fired, 0u) << "the plan must actually exercise the injector";
}

}  // namespace
}  // namespace scaa
