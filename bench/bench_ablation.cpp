// Ablation study (beyond the paper's tables, motivated by its §V):
// which ingredient of the Context-Aware attack buys what?
//   A. full Context-Aware (context trigger + latched duration + strategic values)
//   B. context trigger, random duration (paper's Random-DUR)
//   C. random trigger, driver-reaction-length duration (paper's Random-ST)
//   D. full CA but fixed (loud) values -> alert/detection cost
// plus a driver-reaction-time sensitivity sweep for the CA attack.
//
// Usage: bench_ablation [--reps N] [--threads N]

#include <cstdio>

#include "cli/args.hpp"
#include "exp/campaign.hpp"
#include "util/table.hpp"

using namespace scaa;

namespace {

exp::Aggregate run_config(attack::StrategyKind kind, bool strategic, int reps,
                          std::size_t threads, double reaction_time) {
  exp::CampaignConfig cc;
  cc.threads = threads;
  cc.base_seed = 4242;
  cc.repetitions = reps;
  auto grid = exp::make_grid(kind, strategic, /*driver=*/true, cc);
  // Apply the reaction-time override by running items manually.
  std::vector<exp::CampaignResult> results(grid.size());
  exp::ThreadPool pool(threads);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    pool.submit([&grid, &results, reaction_time, i] {
      sim::WorldConfig wc = exp::world_config_for(grid[i]);
      wc.driver.reaction_time = reaction_time;
      sim::World world(std::move(wc));
      results[i] = {grid[i], world.run()};
    });
  }
  pool.wait_idle();
  return exp::aggregate(results);
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_ablation",
                      "Ablation study: which ingredient of the Context-Aware "
                      "attack matters?");
  args.add_int("--reps", 10, "repetitions per (type, scenario, gap) cell", 1,
               1000000);
  args.add_int("--threads", 0, "worker threads (0 = hardware concurrency)", 0,
               4096);
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const int reps = static_cast<int>(args.get_int("--reps"));
  const auto threads = static_cast<std::size_t>(args.get_int("--threads"));

  std::printf("ABLATION 1: which ingredient of the Context-Aware attack "
              "matters?\n\n");
  util::TextTable t1;
  t1.set_header({"Variant", "Hazards", "Accidents", "Alerts",
                 "Hazards&NoAlerts"});
  struct Variant {
    const char* name;
    attack::StrategyKind kind;
    bool strategic;
  };
  const Variant variants[] = {
      {"A: full Context-Aware", attack::StrategyKind::kContextAware, true},
      {"B: ctx start, random dur", attack::StrategyKind::kRandomDur, false},
      {"C: random start, 2.5s dur", attack::StrategyKind::kRandomSt, false},
      {"D: CA timing, loud values", attack::StrategyKind::kContextAware,
       false},
  };
  for (const auto& v : variants) {
    const auto a = run_config(v.kind, v.strategic, reps, threads, 2.5);
    t1.add_row({v.name,
                util::format_count_percent(a.sims_with_hazards, a.simulations),
                util::format_count_percent(a.sims_with_accidents, a.simulations),
                util::format_count_percent(a.sims_with_alerts, a.simulations),
                util::format_count_percent(a.hazards_without_alerts,
                                           a.simulations)});
    std::fprintf(stderr, "[ablation] %s done\n", v.name);
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("ABLATION 2: Context-Aware hazard rate vs. driver reaction "
              "time\n\n");
  util::TextTable t2;
  t2.set_header({"Reaction time [s]", "Hazards", "Accidents"});
  for (const double rt : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
    const auto a = run_config(attack::StrategyKind::kContextAware, true, reps,
                              threads, rt);
    t2.add_row({util::format_double(rt, 1),
                util::format_count_percent(a.sims_with_hazards, a.simulations),
                util::format_count_percent(a.sims_with_accidents,
                                           a.simulations)});
    std::fprintf(stderr, "[ablation] reaction %.1f s done\n", rt);
  }
  std::printf("%s\n", t2.render().c_str());
  return 0;
}
