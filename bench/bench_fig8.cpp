// Reproduces paper Fig. 8: the (attack start time x duration) parameter
// space for Acceleration attacks. Solid points = hazardous. The paper's
// findings: hazards only occur when the attack starts inside a critical
// window, a minimum duration is needed, and every Context-Aware point is
// hazardous and inside the window.
//
// Usage: bench_fig8 [--reps N] [--threads N] [--csv PATH]

#include <cstdio>
#include <fstream>
#include <string>

#include "cli/args.hpp"
#include "exp/param_space.hpp"

using namespace scaa;

int main(int argc, char** argv) {
  cli::ArgParser args("bench_fig8",
                      "Reproduce paper Fig. 8: attack start time x duration "
                      "parameter space");
  args.add_int("--reps", 1, "overlay-run multiplier (paper: 20 runs x reps)",
               1, 1000000);
  args.add_int("--threads", 0, "worker threads (0 = hardware concurrency)", 0,
               4096);
  args.add_string("--csv", "fig8_param_space.csv", "scatter output path");
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const std::string& csv_path = args.get_string("--csv");
  exp::ParamSpaceConfig cfg;
  cfg.threads = static_cast<std::size_t>(args.get_int("--threads"));
  cfg.overlay_runs = 20 * static_cast<int>(args.get_int("--reps"));

  const auto points = exp::run_param_space(cfg);
  {
    std::ofstream out(csv_path);
    exp::write_param_space_csv(points, out);
  }

  std::printf("FIG 8: state space of attack start time x duration "
              "(Acceleration attacks, S%d, gap %.0f m)\n\n",
              cfg.scenario_id, cfg.initial_gap);

  // ASCII scatter: rows = duration bins (top = 2.5 s), cols = start time.
  // Background grid: '#' hazardous, 'o' not; Context-Aware overlay: 'C'.
  const int w = 61, h = 9;
  char grid[9][62];
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) grid[r][c] = ' ';
    grid[r][w] = '\0';
  }
  auto plot = [&](const exp::ParamSpacePoint& p, char ch) {
    int c = static_cast<int>((p.start_time - cfg.min_start) /
                             (cfg.max_start - cfg.min_start) * (w - 1));
    int r = static_cast<int>((cfg.max_duration - p.duration) /
                             (cfg.max_duration - cfg.min_duration) * (h - 1));
    if (c < 0) c = 0;
    if (c >= w) c = w - 1;
    if (r < 0) r = 0;
    if (r >= h) r = h - 1;
    grid[r][c] = ch;
  };
  for (const auto& p : points)
    if (p.strategy == attack::StrategyKind::kRandomStDur)
      plot(p, p.hazardous ? '#' : 'o');
  for (const auto& p : points)
    if (p.strategy == attack::StrategyKind::kContextAware)
      plot(p, p.hazardous ? 'C' : 'c');

  std::printf("dur[s]\n");
  for (int r = 0; r < h; ++r) {
    const double dur = cfg.max_duration -
                       (cfg.max_duration - cfg.min_duration) * r / (h - 1);
    std::printf("%4.1f  |%s|\n", dur, grid[r]);
  }
  std::printf("       %-20.0f%*c\n", cfg.min_start, w - 19,
              ' ');
  std::printf("      start time 5..35 s   ('#'=hazardous grid point, "
              "'o'=benign, 'C'=Context-Aware hazardous, 'c'=CA benign)\n\n");

  const double critical = exp::estimate_critical_time(points);
  std::printf("estimated critical start time: %.1f s (paper: ~24-25 s for "
              "its scenario)\n", critical);

  std::size_t ca_total = 0, ca_hazard = 0, ca_in_window = 0;
  for (const auto& p : points) {
    if (p.strategy != attack::StrategyKind::kContextAware) continue;
    ++ca_total;
    if (p.hazardous) ++ca_hazard;
    if (critical >= 0.0 && p.start_time >= critical - 1.0) ++ca_in_window;
  }
  std::printf("Context-Aware points: %zu, hazardous: %zu, inside critical "
              "window: %zu (paper: all CA points hazardous & in-window)\n",
              ca_total, ca_hazard, ca_in_window);
  std::printf("scatter written to %s (%zu points)\n", csv_path.c_str(),
              points.size());
  return 0;
}
