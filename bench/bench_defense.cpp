// Defense evaluation (the paper's §V future work, made concrete): how do a
// control-invariant detector and a context-aware monitor fare against the
// four attack strategies? Reports detection rate, detection latency, and
// whether detection beats the hazard — plus the false-positive rate on
// attack-free drives.
//
// Usage: bench_defense [--reps N] [--threads N]

#include <cstdio>
#include <mutex>

#include "cli/args.hpp"
#include "defense/harness.hpp"
#include "exp/campaign.hpp"
#include "exp/thread_pool.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace scaa;

namespace {

struct DefenseAggregate {
  std::size_t runs = 0;
  std::size_t attacks = 0;
  std::size_t invariant_detections = 0;
  std::size_t monitor_detections = 0;
  std::size_t detected_before_hazard = 0;
  std::size_t hazards = 0;
  util::RunningStats monitor_latency;
};

exp::CampaignConfig defense_config(int reps) {
  exp::CampaignConfig cc;
  cc.base_seed = 31337;
  cc.repetitions = reps;
  return cc;
}

DefenseAggregate evaluate(attack::StrategyKind strategy, bool strategic,
                          int reps, std::size_t threads) {
  const auto grid = exp::make_grid(strategy, strategic, /*driver=*/true,
                                   defense_config(reps));
  DefenseAggregate agg;
  std::mutex mutex;
  exp::ThreadPool pool(threads);
  for (const auto& item : grid) {
    pool.submit([&agg, &mutex, item] {
      sim::World world(exp::world_config_for(item));
      defense::DefenseHarness harness(world, defense::InvariantConfig{},
                                      defense::MonitorConfig{});
      sim::SimulationSummary summary;
      const auto outcome = harness.run(&summary);
      const std::lock_guard<std::mutex> lock(mutex);
      ++agg.runs;
      if (summary.attack_activated) ++agg.attacks;
      if (summary.any_hazard) ++agg.hazards;
      if (summary.attack_activated || outcome.invariant_alarmed ||
          outcome.monitor_alarmed) {
        if (outcome.invariant_alarmed &&
            outcome.invariant_latency >= 0.0)
          ++agg.invariant_detections;
        if (outcome.monitor_alarmed && outcome.monitor_latency >= 0.0) {
          ++agg.monitor_detections;
          agg.monitor_latency.add(outcome.monitor_latency);
        }
        if (summary.attack_activated && outcome.detected_before_hazard)
          ++agg.detected_before_hazard;
      }
    });
  }
  pool.wait_idle();
  return agg;
}

std::size_t count_false_positives(const std::vector<exp::CampaignItem>& grid,
                                  std::size_t threads) {
  std::size_t false_positives = 0;
  std::mutex mutex;
  exp::ThreadPool pool(threads);
  for (const auto& item : grid) {
    pool.submit([&false_positives, &mutex, item] {
      sim::World world(exp::world_config_for(item));
      defense::DefenseHarness harness(world, defense::InvariantConfig{},
                                      defense::MonitorConfig{});
      const auto outcome = harness.run();
      if (outcome.invariant_alarmed || outcome.monitor_alarmed) {
        const std::lock_guard<std::mutex> lock(mutex);
        ++false_positives;
      }
    });
  }
  pool.wait_idle();
  return false_positives;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_defense",
                      "Defense evaluation: control-invariant detector + "
                      "context-aware monitor vs. the paper's attacks");
  args.add_int("--reps", 3, "repetitions per (type, scenario, gap) cell", 1,
               1000000);
  args.add_int("--threads", 0, "worker threads (0 = hardware concurrency)", 0,
               4096);
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const int reps = static_cast<int>(args.get_int("--reps"));
  const auto threads = static_cast<std::size_t>(args.get_int("--threads"));

  std::printf("DEFENSE EVALUATION: control-invariant detector + "
              "context-aware monitor vs. the paper's attacks\n\n");

  util::TextTable table;
  table.set_header({"Attack strategy", "Attacks", "Hazards",
                    "Invariant det.", "Monitor det.", "Det. before hazard",
                    "Monitor latency [s]"});
  struct Row {
    const char* label;
    attack::StrategyKind kind;
    bool strategic;
  };
  const Row rows[] = {
      {"Random-ST (fixed vals)", attack::StrategyKind::kRandomSt, false},
      {"Context-Aware (fixed)", attack::StrategyKind::kContextAware, false},
      {"Context-Aware (strategic)", attack::StrategyKind::kContextAware,
       true},
  };
  for (const Row& row : rows) {
    const auto agg = evaluate(row.kind, row.strategic, reps, threads);
    table.add_row(
        {row.label, std::to_string(agg.attacks),
         util::format_count_percent(agg.hazards, agg.runs),
         util::format_count_percent(agg.invariant_detections, agg.attacks),
         util::format_count_percent(agg.monitor_detections, agg.attacks),
         util::format_count_percent(agg.detected_before_hazard, agg.attacks),
         agg.monitor_latency.count()
             ? util::format_mean_std(agg.monitor_latency.mean(),
                                     agg.monitor_latency.stddev())
             : "-"});
    std::fprintf(stderr, "[defense] %s done\n", row.label);
  }
  std::printf("%s\n", table.render().c_str());

  const auto benign_grid = exp::make_grid(attack::StrategyKind::kNone, false,
                                          true, defense_config(reps));
  const auto grid_size = benign_grid.size();
  const auto fp = count_false_positives(benign_grid, threads);
  std::printf("False positives on %zu attack-free drives: %zu (%.2f%%)\n\n",
              grid_size, fp, 100.0 * static_cast<double>(fp) /
                                 static_cast<double>(grid_size));

  std::printf(
      "Reading: the intent channel of the control-invariant detector flags\n"
      "every command rewrite almost immediately (it compares what the ADAS\n"
      "published against what the bus delivered), and the context-aware\n"
      "monitor flags in-envelope-but-unsafe actions the firmware checks\n"
      "cannot see — closing exactly the gap the paper demonstrates.\n");
  return 0;
}
