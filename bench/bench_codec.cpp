// CAN codec microbenchmark: the string-keyed compatibility path vs the
// precompiled (MessageHandle + flat array) path, measuring ns/op and heap
// allocations/op for pack and parse. The precompiled path is the one the
// 100 Hz simulation loop runs ~10,000 times per simulation, millions of
// times per campaign — this binary is the evidence for the speedup and for
// the zero-allocations-per-frame property.
//
// Usage: bench_codec [--iters N] [--format text|csv|json] [--out PATH]

#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>

#include "can/packer.hpp"
#include "cli/args.hpp"
#include "cli/report.hpp"
#include "util/alloc_counter.hpp"

namespace {

using namespace scaa;

struct Measurement {
  double ns_per_op = 0.0;
  double allocs_per_op = 0.0;
};

/// Time @p op over @p iters calls; the loop result is accumulated into a
/// volatile sink so the optimizer cannot drop the work.
template <typename Op>
Measurement measure(std::size_t iters, Op&& op) {
  volatile double sink = 0.0;
  const std::uint64_t allocs_before =
      util::g_allocation_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) sink = sink + op(i);
  const auto stop = std::chrono::steady_clock::now();
  const std::uint64_t allocs =
      util::g_allocation_count.load(std::memory_order_relaxed) -
      allocs_before;
  Measurement m;
  const double total_ns =
      std::chrono::duration<double, std::nano>(stop - start).count();
  m.ns_per_op = total_ns / static_cast<double>(iters);
  m.allocs_per_op =
      static_cast<double>(allocs) / static_cast<double>(iters);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_codec",
                      "CAN codec microbenchmark: string-keyed vs precompiled "
                      "pack/parse (ns/op, heap allocations/op)");
  args.add_int("--iters", 1000000, "iterations per measured operation", 1000,
               1000000000);
  args.add_choice("--format", "text", {"text", "csv", "json"},
                  "output format");
  args.add_string("--out", "-", "output path ('-' = stdout)");
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const auto iters = static_cast<std::size_t>(args.get_int("--iters"));
  const cli::Format format = cli::parse_format(args.get_string("--format"));

  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);

  const can::MessageHandle steering = db.handle("STEERING_CONTROL");
  const can::SignalHandle angle_sig =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd);
  const can::SignalHandle enabled_sig =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerEnabled);

  // --- pack: string-keyed (map built per call, like the old call sites) ---
  const Measurement pack_string = measure(iters, [&](std::size_t i) {
    const auto frame = packer.pack(
        "STEERING_CONTROL",
        {{can::sig::kSteerAngleCmd, 0.001 * static_cast<double>(i & 0x3FF)},
         {can::sig::kSteerEnabled, 1.0}});
    return static_cast<double>(frame.data[0]);
  });

  // --- pack: precompiled handles + flat values ---
  std::array<double, 2> values{};
  const Measurement pack_handle = measure(iters, [&](std::size_t i) {
    values[angle_sig.signal] = 0.001 * static_cast<double>(i & 0x3FF);
    values[enabled_sig.signal] = 1.0;
    const auto frame = packer.pack(steering, values);
    return static_cast<double>(frame.data[0]);
  });

  values[angle_sig.signal] = -0.42;
  values[enabled_sig.signal] = 1.0;
  const can::CanFrame frame = packer.pack(steering, values);

  // --- parse: string-keyed map result ---
  const Measurement parse_string = measure(iters, [&](std::size_t) {
    const auto parsed = parser.parse(frame);
    return parsed->values.at(can::sig::kSteerAngleCmd);
  });

  // --- parse: flat precompiled result ---
  const Measurement parse_flat = measure(iters, [&](std::size_t) {
    const auto* parsed = parser.parse_flat(frame);
    return parsed->values[angle_sig.signal];
  });

  cli::Report report("bench_codec: CAN pack/parse, string-keyed vs "
                     "precompiled handles",
                     {"op", "path", "iters", "ns_per_op", "allocs_per_op",
                      "speedup_vs_string"});
  const auto row = [&](const char* op, const char* path, const Measurement& m,
                       double speedup) {
    report.add_row({std::string(op), std::string(path),
                    static_cast<long long>(iters), m.ns_per_op,
                    m.allocs_per_op, speedup});
  };
  row("pack", "string", pack_string, 1.0);
  row("pack", "precompiled", pack_handle,
      pack_handle.ns_per_op > 0.0 ? pack_string.ns_per_op / pack_handle.ns_per_op
                                  : 0.0);
  row("parse", "string", parse_string, 1.0);
  row("parse", "precompiled", parse_flat,
      parse_flat.ns_per_op > 0.0 ? parse_string.ns_per_op / parse_flat.ns_per_op
                                 : 0.0);

  const std::string& out_path = args.get_string("--out");
  if (out_path == "-") {
    report.write(std::cout, format);
  } else {
    std::ofstream file(out_path);
    if (!file) {
      std::cerr << "bench_codec: cannot open '" << out_path
                << "' for writing\n";
      return 1;
    }
    report.write(file, format);
  }

  if (pack_handle.allocs_per_op > 0.0 || parse_flat.allocs_per_op > 0.0) {
    std::cerr << "bench_codec: precompiled path allocated on the heap "
                 "(regression)\n";
    return 1;
  }
  return 0;
}
