// Simulation hot-path microbenchmark: World construction cost with private
// vs shared immutable assets (road + DBC), the Polyline::project geometry
// kernel (hinted single, batched project_many, and full scan — each against
// the pre-SoA scalar implementation kept below as the baseline), the
// pub/sub bus publish path (zero-copy typed dispatch and the lazily
// serialized tapped path, each against the pre-refactor
// serialize-everything bus kept below as the baseline), World::step()
// time, and full simulation wall-clock. Together with bench_codec this
// quantifies the campaign-scale optimizations: thousands of Monte-Carlo
// Worlds per table share one road/database, step allocation-free over a
// vectorizable geometry kernel, and exchange messages without touching a
// serializer.
//
// Usage: bench_step [--sims N] [--format text|csv|json] [--out PATH]

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <type_traits>
#include <vector>

#include "cli/args.hpp"
#include "cli/campaigns.hpp"
#include "cli/report.hpp"
#include "exp/campaign.hpp"
#include "exp/realtime.hpp"
#include "geom/polyline.hpp"
#include "msg/bus.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace scaa;
using util::seconds_since;

exp::CampaignItem bench_item(std::uint64_t seed) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  item.seed = seed;
  return item;
}

// --- legacy projection baseline ---------------------------------------------

/// The pre-SoA windowed projection (scalar loop, one division per segment,
/// sqrt + normalized() per improvement, fixed +/-8 window with an edge
/// fallback), reconstructed from the polyline's public points. Kept in the
/// bench as the permanent baseline the `project_*` rows are measured
/// against, so the speedup column keeps meaning something after the old
/// implementation is gone from src/.
class LegacyProjector {
 public:
  explicit LegacyProjector(const geom::Polyline& line) {
    pts_.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i)
      pts_.push_back(line.point(i));
    cum_.resize(pts_.size());
    cum_[0] = 0.0;
    for (std::size_t i = 1; i < pts_.size(); ++i)
      cum_[i] = cum_[i - 1] + geom::distance(pts_[i - 1], pts_[i]);
    inv_mean_seg_ =
        static_cast<double>(pts_.size() - 1) / cum_.back();
  }

  geom::Polyline::Projection project(geom::Vec2 p,
                                     double hint_s) const noexcept {
    std::size_t lo = 0;
    std::size_t hi = pts_.size() - 1;
    if (hint_s >= 0.0 && pts_.size() > 8) {
      const std::size_t center =
          segment_index(std::min(hint_s, cum_.back()));
      const std::size_t window = 8;
      lo = center > window ? center - window : 0;
      hi = std::min(center + window + 1, pts_.size() - 1);
    }
    auto best = geom::Polyline::Projection{};
    double best_dist_sq = std::numeric_limits<double>::max();
    for (std::size_t i = lo; i < hi; ++i) {
      const geom::Vec2 a = pts_[i];
      const geom::Vec2 ab = pts_[i + 1] - a;
      const double len_sq = ab.norm_sq();
      double t = len_sq > 0.0 ? (p - a).dot(ab) / len_sq : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      const geom::Vec2 c = a + ab * t;
      const double d_sq = (p - c).norm_sq();
      if (d_sq < best_dist_sq) {
        best_dist_sq = d_sq;
        best.closest = c;
        best.s = cum_[i] + std::sqrt(len_sq) * t;
        best.lateral = ab.normalized().cross(p - c);
      }
    }
    if (hint_s >= 0.0 && pts_.size() > 8) {
      const bool stale_low = lo > 0 && best.s <= cum_[lo] + 1e-9;
      const bool stale_high =
          hi < pts_.size() - 1 && best.s >= cum_[hi] - 1e-9;
      if (stale_low || stale_high) return project(p, -1.0);
    }
    return best;
  }

 private:
  std::size_t segment_index(double s) const noexcept {
    const std::size_t last = pts_.size() - 2;
    std::size_t i = 0;
    const double guess = s * inv_mean_seg_;
    if (guess >= static_cast<double>(last))
      i = last;
    else if (guess > 0.0)
      i = static_cast<std::size_t>(guess);
    while (i < last && cum_[i + 1] <= s) ++i;
    while (i > 0 && cum_[i] > s) --i;
    return i;
  }

  std::vector<geom::Vec2> pts_;
  std::vector<double> cum_;
  double inv_mean_seg_ = 0.0;
};

// --- legacy pub/sub baseline ------------------------------------------------

/// The pre-refactor PubSubBus, reconstructed as the permanent in-bench
/// baseline the `bus_publish_*` rows are measured against: std::map
/// subscription/sequence tables, eager serialization of every publish into
/// a fresh owning frame, typed subscribers decoding the bytes per
/// delivery, and a snapshot copy of the handler list per dispatch.
class LegacyPubSubBus {
 public:
  struct Frame {
    msg::Topic topic{};
    std::uint64_t sequence = 0;
    std::vector<std::uint8_t> payload;
  };
  using RawHandler = std::function<void(const Frame&)>;

  std::uint64_t subscribe_raw(msg::Topic topic, RawHandler handler) {
    const std::uint64_t id = next_id_++;
    subs_[topic].push_back({id, std::move(handler)});
    return id;
  }

  template <typename M>
  std::uint64_t subscribe(std::function<void(const M&)> handler) {
    return subscribe_raw(msg::TopicOf<M>::value,
                         [h = std::move(handler)](const Frame& frame) {
                           M m{};
                           msg::deserialize(frame.payload, m);
                           h(m);
                         });
  }

  template <typename M>
  void publish(const M& m) {
    Frame frame;
    frame.topic = msg::TopicOf<M>::value;
    frame.sequence = ++sequences_[frame.topic];
    frame.payload = msg::serialize(m);
    const auto it = subs_.find(frame.topic);
    if (it == subs_.end()) return;
    const auto snapshot = it->second;
    for (const auto& sub : snapshot) sub.handler(frame);
  }

 private:
  struct Subscription {
    std::uint64_t id;
    RawHandler handler;
  };
  std::map<msg::Topic, std::vector<Subscription>> subs_;
  std::map<msg::Topic, std::uint64_t> sequences_;
  std::uint64_t next_id_ = 1;
};

/// Typed delivery checksum: every subscriber folds one field of every
/// message it receives into the sum, in delivery order, so the fast bus
/// must reproduce the legacy bus's sum bit-for-bit.
struct BusSinks {
  double sum = 0.0;
  std::uint64_t count = 0;
};

template <typename Bus>
void attach_typed_sinks(Bus& bus, BusSinks& s) {
  bus.template subscribe<msg::CarState>(
      [&s](const msg::CarState& m) { s.sum += m.speed; ++s.count; });
  bus.template subscribe<msg::CarControl>(
      [&s](const msg::CarControl& m) { s.sum += m.accel; ++s.count; });
  bus.template subscribe<msg::ControlsState>([&s](const msg::ControlsState& m) {
    s.sum += static_cast<double>(m.alert_count);
    ++s.count;
  });
  bus.template subscribe<msg::GpsLocationExternal>(
      [&s](const msg::GpsLocationExternal& m) { s.sum += m.speed; ++s.count; });
  bus.template subscribe<msg::ModelV2>(
      [&s](const msg::ModelV2& m) { s.sum += m.left_lane_line; ++s.count; });
  bus.template subscribe<msg::RadarState>([&s](const msg::RadarState& m) {
    s.sum += m.lead_distance;
    ++s.count;
  });
}

std::uint64_t fnv1a_accumulate(std::uint64_t h, std::uint64_t sequence,
                               const std::uint8_t* data, std::size_t size) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (std::size_t i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(sequence >> (8 * i));
    h *= kPrime;
  }
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kPrime;
  }
  return h;
}

constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_step",
                      "simulation hot-path benchmark: World construction "
                      "(private vs shared assets), step(), full runs");
  args.add_int("--sims", 20, "full simulations (and 5x constructions)", 1,
               100000);
  args.add_choice("--format", "text", {"text", "csv", "json"},
                  "output format");
  args.add_string("--out", "-", "output path ('-' = stdout)");
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const auto sims = static_cast<std::size_t>(args.get_int("--sims"));
  const std::size_t constructions = sims * 5;
  const cli::Format format = cli::parse_format(args.get_string("--format"));

  const exp::WorldAssets assets = exp::WorldAssets::make_default();

  // --- construction: private assets (road + DBC rebuilt per World) -------
  const auto t_owned = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < constructions; ++i) {
    sim::World world(exp::world_config_for(bench_item(i + 1)));
    if (world.time() != 0.0) return 1;  // keep the loop observable
  }
  const double owned_s = seconds_since(t_owned);

  // --- construction: shared immutable assets -----------------------------
  const auto t_shared = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < constructions; ++i) {
    sim::World world(exp::world_config_for(bench_item(i + 1), assets));
    if (world.time() != 0.0) return 1;
  }
  const double shared_s = seconds_since(t_shared);

  // --- reset: re-arm one resident World per item (the arena lifecycle) ----
  double reset_s = 0.0;
  {
    sim::World world(exp::world_config_for(bench_item(1), assets));
    const auto t_reset = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < constructions; ++i) {
      world.reset(exp::world_config_for(bench_item(i + 1), assets));
      if (world.time() != 0.0) return 1;
    }
    reset_s = seconds_since(t_reset);
  }

  // --- Polyline::project kernel: hinted single, batched, full scan -------
  // Each fast row is timed against the legacy scalar implementation on the
  // identical query stream; the checksum comparison doubles as an in-bench
  // differential test (the kernels must agree exactly on this road).
  const geom::Polyline& line = assets.road->reference();
  const LegacyProjector legacy(line);
  // Four lanes: the World's Ego + lead + trailing + neighbor. The stream
  // comes from the same generator as scaa_campaign bench's kernel row
  // (cli::projection_workload), tick-major so the batched sweep consumes
  // natural spans.
  constexpr std::size_t kLanes = 4;
  const std::size_t proj_ticks = std::max<std::size_t>(sims, 10) * 5000;
  const std::vector<geom::Vec2> proj_points =
      cli::projection_workload(line, proj_ticks, kLanes);
  const std::size_t proj_ops = proj_points.size();

  double legacy_hint[kLanes] = {-1.0, -1.0, -1.0, -1.0};
  double legacy_sum = 0.0;
  const auto t_legacy = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < proj_ticks; ++t) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const auto proj =
          legacy.project(proj_points[t * kLanes + l], legacy_hint[l]);
      legacy_hint[l] = proj.s;
      legacy_sum += proj.lateral;
    }
  }
  const double legacy_s = seconds_since(t_legacy);

  double single_hint[kLanes] = {-1.0, -1.0, -1.0, -1.0};
  double single_sum = 0.0;
  const auto t_single = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < proj_ticks; ++t) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const auto proj =
          line.project(proj_points[t * kLanes + l], single_hint[l]);
      single_hint[l] = proj.s;
      single_sum += proj.lateral;
    }
  }
  const double single_s = seconds_since(t_single);

  std::vector<double> batch_hints(kLanes, -1.0);
  std::vector<geom::Polyline::Projection> batch_out(kLanes);
  double batch_sum = 0.0;
  const auto t_batch = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < proj_ticks; ++t) {
    line.project_many(
        {proj_points.data() + t * kLanes, kLanes}, batch_hints,
        batch_out);
    for (std::size_t l = 0; l < kLanes; ++l) {
      batch_hints[l] = batch_out[l].s;
      batch_sum += batch_out[l].lateral;
    }
  }
  const double batch_s = seconds_since(t_batch);

  if (single_sum != legacy_sum || batch_sum != legacy_sum) {
    std::cerr << "bench_step: projection kernels disagree with the legacy "
                 "baseline (single "
              << single_sum << ", batched " << batch_sum << ", legacy "
              << legacy_sum << ")\n";
    return 1;
  }

  const std::size_t proj_full_ops = std::min<std::size_t>(proj_ops, 2000);
  double proj_full_ref_sum = 0.0;
  const auto t_proj_full_ref = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < proj_full_ops; ++i)
    proj_full_ref_sum += line.project_reference(proj_points[i]).lateral;
  const double proj_full_ref_s = seconds_since(t_proj_full_ref);

  double proj_full_sum = 0.0;
  const auto t_proj_full = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < proj_full_ops; ++i)
    proj_full_sum += line.project(proj_points[i], -1.0).lateral;
  const double proj_full_s = seconds_since(t_proj_full);

  if (proj_full_sum != proj_full_ref_sum) {
    std::cerr << "bench_step: full-scan projection disagrees with the "
                 "reference\n";
    return 1;
  }

  // --- pub/sub bus: zero-copy typed dispatch vs the legacy bus ------------
  // Identical deterministic publish stream (cli::bus_tick_workload, shared
  // with scaa_campaign bench's PubSubBus::publish row) against identical
  // subscriber sets; the typed checksums must agree bit-for-bit with the
  // legacy serialize-everything bus, and the tapped run's wire hash must
  // match an eager serialize(m) oracle byte-for-byte — the in-bench
  // differential test for the lazy path.
  const std::uint64_t bus_ticks = std::max<std::size_t>(sims, 10) * 5000;
  const std::uint64_t bus_ops = cli::bus_tick_workload_count(bus_ticks);

  // Oracle: what the old eager bus put on the wire, per topic counter.
  std::uint64_t oracle_hash = kFnvSeed;
  {
    std::array<std::uint64_t, msg::kTopicCount> seqs{};
    cli::bus_tick_workload(bus_ticks, [&](const auto& m) {
      using M = std::decay_t<decltype(m)>;
      const auto bytes = msg::serialize(m);
      oracle_hash = fnv1a_accumulate(
          oracle_hash, ++seqs[msg::topic_index(msg::TopicOf<M>::value)],
          bytes.data(), bytes.size());
    });
  }

  BusSinks legacy_sinks;
  double bus_legacy_s = 0.0;
  {
    LegacyPubSubBus bus;
    attach_typed_sinks(bus, legacy_sinks);
    const auto t0 = std::chrono::steady_clock::now();
    cli::bus_tick_workload(bus_ticks,
                           [&bus](const auto& m) { bus.publish(m); });
    bus_legacy_s = seconds_since(t0);
  }

  BusSinks typed_sinks;
  double bus_typed_s = 0.0;
  {
    msg::PubSubBus bus;
    attach_typed_sinks(bus, typed_sinks);
    const auto t0 = std::chrono::steady_clock::now();
    cli::bus_tick_workload(bus_ticks,
                           [&bus](const auto& m) { bus.publish(m); });
    bus_typed_s = seconds_since(t0);
  }

  BusSinks tapped_sinks;
  std::uint64_t tapped_hash = kFnvSeed;
  double bus_tapped_s = 0.0;
  {
    msg::PubSubBus bus;
    attach_typed_sinks(bus, tapped_sinks);
    // A record-all style tap on every topic (the eavesdropper + drive-log
    // shape) forces the lazy wire path on every publish.
    for (std::size_t i = 1; i <= msg::kTopicCount; ++i) {
      bus.subscribe_raw(static_cast<msg::Topic>(i),
                        [&tapped_hash](const msg::WireFrame& f) {
                          tapped_hash = fnv1a_accumulate(
                              tapped_hash, f.sequence, f.payload.data(),
                              f.payload.size());
                        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    cli::bus_tick_workload(bus_ticks,
                           [&bus](const auto& m) { bus.publish(m); });
    bus_tapped_s = seconds_since(t0);
  }

  if (typed_sinks.sum != legacy_sinks.sum ||
      typed_sinks.count != legacy_sinks.count ||
      tapped_sinks.sum != legacy_sinks.sum ||
      tapped_sinks.count != legacy_sinks.count) {
    std::cerr << "bench_step: typed bus dispatch disagrees with the legacy "
                 "baseline (legacy "
              << legacy_sinks.sum << "/" << legacy_sinks.count << ", typed "
              << typed_sinks.sum << "/" << typed_sinks.count << ", tapped "
              << tapped_sinks.sum << "/" << tapped_sinks.count << ")\n";
    return 1;
  }
  if (tapped_hash != oracle_hash) {
    std::cerr << "bench_step: lazily serialized frames are not "
                 "byte-identical to the eager serialization oracle\n";
    return 1;
  }

  // --- step() throughput -------------------------------------------------
  std::uint64_t steps = 0;
  const auto t_step = std::chrono::steady_clock::now();
  {
    sim::World world(exp::world_config_for(bench_item(5), assets));
    while (world.step()) ++steps;
  }
  double step_s = seconds_since(t_step);
  for (std::uint64_t seed = 6; steps < 20000; ++seed) {
    const auto t_more = std::chrono::steady_clock::now();
    sim::World world(exp::world_config_for(bench_item(seed), assets));
    while (world.step()) ++steps;
    step_s += seconds_since(t_more);
  }

  // --- full simulations (construct + run + summarize) --------------------
  const auto t_full = std::chrono::steady_clock::now();
  std::size_t hazards = 0;
  for (std::size_t i = 0; i < sims; ++i) {
    sim::World world(exp::world_config_for(bench_item(i + 1), assets));
    if (world.run().any_hazard) ++hazards;
  }
  const double full_s = seconds_since(t_full);

  // --- realtime executor: tick latency and deadline wake jitter -----------
  // One simulated second of the attack-free S1 run pinned to the 100 Hz
  // deadline clock (exp/realtime.hpp). The rows quantify whether the whole
  // pipeline fits a real ECU tick budget; they are wall-clock-derived by
  // nature (scheduler-dependent), so treat them as advisory, not gating.
  exp::RealtimeReport rt;
  {
    exp::CampaignItem item;
    item.strategy = attack::StrategyKind::kNone;
    item.seed = 2022;
    sim::WorldConfig rt_cfg = exp::world_config_for(item, assets);
    rt_cfg.duration = 1.0;  // 100 ticks at the paper rig's 100 Hz
    sim::World world(rt_cfg);
    rt = exp::run_realtime(world, exp::RealtimeConfig{});
  }

  // speedup_vs_baseline: construct_* rows against the private-asset
  // construction; project_* rows against the legacy scalar kernel (hinted
  // rows) or the brute-force reference (full-scan rows); bus_publish_*
  // rows against the legacy serialize-everything bus on the identical
  // workload and typed subscriber set; 0 = no baseline.
  cli::Report report(
      "bench_step: World construction, Polyline::project kernel, "
      "PubSubBus::publish, step() and full-simulation timing",
      {"name", "ops", "unit", "time_per_op", "speedup_vs_baseline"});
  const auto per = [](double total_s, std::size_t n, double scale) {
    return n ? total_s * scale / static_cast<double>(n) : 0.0;
  };
  report.add_row({std::string("construct_private_assets"),
                  static_cast<long long>(constructions), std::string("us"),
                  per(owned_s, constructions, 1e6), 1.0});
  report.add_row({std::string("construct_shared_assets"),
                  static_cast<long long>(constructions), std::string("us"),
                  per(shared_s, constructions, 1e6),
                  shared_s > 0.0 ? owned_s / shared_s : 0.0});
  // world_construct vs world_reset: the per-simulation setup cost a
  // campaign pays with fresh Worlds vs resident arena Worlds.
  report.add_row({std::string("world_construct"),
                  static_cast<long long>(constructions), std::string("us"),
                  per(shared_s, constructions, 1e6), 1.0});
  report.add_row({std::string("world_reset"),
                  static_cast<long long>(constructions), std::string("us"),
                  per(reset_s, constructions, 1e6),
                  reset_s > 0.0 ? shared_s / reset_s : 0.0});
  report.add_row({std::string("project_hinted_legacy"),
                  static_cast<long long>(proj_ops), std::string("ns"),
                  per(legacy_s, proj_ops, 1e9), 1.0});
  report.add_row({std::string("project_hinted"),
                  static_cast<long long>(proj_ops), std::string("ns"),
                  per(single_s, proj_ops, 1e9),
                  single_s > 0.0 ? legacy_s / single_s : 0.0});
  report.add_row({std::string("project_many"),
                  static_cast<long long>(proj_ops), std::string("ns"),
                  per(batch_s, proj_ops, 1e9),
                  batch_s > 0.0 ? legacy_s / batch_s : 0.0});
  report.add_row({std::string("project_full_reference"),
                  static_cast<long long>(proj_full_ops), std::string("us"),
                  per(proj_full_ref_s, proj_full_ops, 1e6), 1.0});
  report.add_row({std::string("project_full"),
                  static_cast<long long>(proj_full_ops), std::string("us"),
                  per(proj_full_s, proj_full_ops, 1e6),
                  proj_full_s > 0.0 ? proj_full_ref_s / proj_full_s : 0.0});
  report.add_row({std::string("bus_publish_legacy"),
                  static_cast<long long>(bus_ops), std::string("ns"),
                  per(bus_legacy_s, bus_ops, 1e9), 1.0});
  report.add_row({std::string("bus_publish_typed"),
                  static_cast<long long>(bus_ops), std::string("ns"),
                  per(bus_typed_s, bus_ops, 1e9),
                  bus_typed_s > 0.0 ? bus_legacy_s / bus_typed_s : 0.0});
  report.add_row({std::string("bus_publish_tapped"),
                  static_cast<long long>(bus_ops), std::string("ns"),
                  per(bus_tapped_s, bus_ops, 1e9),
                  bus_tapped_s > 0.0 ? bus_legacy_s / bus_tapped_s : 0.0});
  report.add_row({std::string("world_step"), static_cast<long long>(steps),
                  std::string("us"), per(step_s, steps, 1e6), 0.0});
  report.add_row({std::string("full_simulation"),
                  static_cast<long long>(sims), std::string("ms"),
                  per(full_s, sims, 1e3), 0.0});
  // realtime_tick: mean measured tick work under the deadline executor;
  // speedup_vs_baseline holds the headroom factor (period / mean tick), so
  // values > 1 mean the pipeline fits the 100 Hz budget with room to spare.
  // realtime_wake_jitter: mean deadline-clock wake error (no baseline).
  const double tick_mean_s =
      rt.phases.empty() ? 0.0 : rt.phases[0].latency_s.mean();
  report.add_row({std::string("realtime_tick"),
                  static_cast<long long>(rt.ticks), std::string("us"),
                  tick_mean_s * 1e6,
                  tick_mean_s > 0.0 ? rt.period_s / tick_mean_s : 0.0});
  report.add_row({std::string("realtime_wake_jitter"),
                  static_cast<long long>(rt.ticks), std::string("us"),
                  rt.wake_error_s.mean() * 1e6, 0.0});

  const std::string& out_path = args.get_string("--out");
  if (out_path == "-") {
    report.write(std::cout, format);
  } else {
    std::ofstream file(out_path);
    if (!file) {
      std::cerr << "bench_step: cannot open '" << out_path
                << "' for writing\n";
      return 1;
    }
    report.write(file, format);
  }
  std::cerr << "[bench_step] " << sims << " full sims, " << hazards
            << " with hazards\n";
  return 0;
}
