// Simulation hot-path microbenchmark: World construction cost with private
// vs shared immutable assets (road + DBC), World::step() time, and full
// simulation wall-clock. Together with bench_codec this quantifies the
// campaign-scale optimizations: thousands of Monte-Carlo Worlds per table
// share one road/database and step allocation-free.
//
// Usage: bench_step [--sims N] [--format text|csv|json] [--out PATH]

#include <chrono>
#include <fstream>
#include <iostream>

#include "cli/args.hpp"
#include "cli/report.hpp"
#include "exp/campaign.hpp"
#include "sim/world.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace scaa;
using util::seconds_since;

exp::CampaignItem bench_item(std::uint64_t seed) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  item.seed = seed;
  return item;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_step",
                      "simulation hot-path benchmark: World construction "
                      "(private vs shared assets), step(), full runs");
  args.add_int("--sims", 20, "full simulations (and 5x constructions)", 1,
               100000);
  args.add_choice("--format", "text", {"text", "csv", "json"},
                  "output format");
  args.add_string("--out", "-", "output path ('-' = stdout)");
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const auto sims = static_cast<std::size_t>(args.get_int("--sims"));
  const std::size_t constructions = sims * 5;
  const cli::Format format = cli::parse_format(args.get_string("--format"));

  const exp::WorldAssets assets = exp::WorldAssets::make_default();

  // --- construction: private assets (road + DBC rebuilt per World) -------
  const auto t_owned = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < constructions; ++i) {
    sim::World world(exp::world_config_for(bench_item(i + 1)));
    if (world.time() != 0.0) return 1;  // keep the loop observable
  }
  const double owned_s = seconds_since(t_owned);

  // --- construction: shared immutable assets -----------------------------
  const auto t_shared = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < constructions; ++i) {
    sim::World world(exp::world_config_for(bench_item(i + 1), assets));
    if (world.time() != 0.0) return 1;
  }
  const double shared_s = seconds_since(t_shared);

  // --- step() throughput -------------------------------------------------
  std::uint64_t steps = 0;
  const auto t_step = std::chrono::steady_clock::now();
  {
    sim::World world(exp::world_config_for(bench_item(5), assets));
    while (world.step()) ++steps;
  }
  double step_s = seconds_since(t_step);
  for (std::uint64_t seed = 6; steps < 20000; ++seed) {
    const auto t_more = std::chrono::steady_clock::now();
    sim::World world(exp::world_config_for(bench_item(seed), assets));
    while (world.step()) ++steps;
    step_s += seconds_since(t_more);
  }

  // --- full simulations (construct + run + summarize) --------------------
  const auto t_full = std::chrono::steady_clock::now();
  std::size_t hazards = 0;
  for (std::size_t i = 0; i < sims; ++i) {
    sim::World world(exp::world_config_for(bench_item(i + 1), assets));
    if (world.run().any_hazard) ++hazards;
  }
  const double full_s = seconds_since(t_full);

  cli::Report report(
      "bench_step: World construction, step() and full-simulation timing",
      {"name", "ops", "unit", "time_per_op", "speedup_vs_owned"});
  const auto per = [](double total_s, std::size_t n, double scale) {
    return n ? total_s * scale / static_cast<double>(n) : 0.0;
  };
  report.add_row({std::string("construct_private_assets"),
                  static_cast<long long>(constructions), std::string("us"),
                  per(owned_s, constructions, 1e6), 1.0});
  report.add_row({std::string("construct_shared_assets"),
                  static_cast<long long>(constructions), std::string("us"),
                  per(shared_s, constructions, 1e6),
                  shared_s > 0.0 ? owned_s / shared_s : 0.0});
  report.add_row({std::string("world_step"), static_cast<long long>(steps),
                  std::string("us"), per(step_s, steps, 1e6), 0.0});
  report.add_row({std::string("full_simulation"),
                  static_cast<long long>(sims), std::string("ms"),
                  per(full_s, sims, 1e3), 0.0});

  const std::string& out_path = args.get_string("--out");
  if (out_path == "-") {
    report.write(std::cout, format);
  } else {
    std::ofstream file(out_path);
    if (!file) {
      std::cerr << "bench_step: cannot open '" << out_path
                << "' for writing\n";
      return 1;
    }
    report.write(file, format);
  }
  std::cerr << "[bench_step] " << sims << " full sims, " << hazards
            << " with hazards\n";
  return 0;
}
