// Component microbenchmarks (google-benchmark): CAN codec, pub/sub,
// Kalman filters, and the full world step — the numbers that justify
// running 19k+ simulations per table.

#include <benchmark/benchmark.h>

#include <array>

#include "adas/kalman.hpp"
#include "can/packer.hpp"
#include "exp/campaign.hpp"
#include "msg/bus.hpp"
#include "sim/world.hpp"

using namespace scaa;

namespace {

void BM_CanPack(benchmark::State& state) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  double angle = 0.0;
  for (auto _ : state) {
    angle += 0.001;
    auto frame = packer.pack("STEERING_CONTROL",
                             {{can::sig::kSteerAngleCmd, angle},
                              {can::sig::kSteerEnabled, 1.0}});
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_CanPack);

void BM_CanParse(benchmark::State& state) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);
  const auto frame = packer.pack("STEERING_CONTROL",
                                 {{can::sig::kSteerAngleCmd, 0.42},
                                  {can::sig::kSteerEnabled, 1.0}});
  for (auto _ : state) {
    auto parsed = parser.parse(frame);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_CanParse);

void BM_CanPackPrecompiled(benchmark::State& state) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  const auto msg = db.handle("STEERING_CONTROL");
  const auto angle =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd);
  const auto enabled =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerEnabled);
  std::array<double, 2> values{};
  double angle_deg = 0.0;
  for (auto _ : state) {
    angle_deg += 0.001;
    values[angle.signal] = angle_deg;
    values[enabled.signal] = 1.0;
    auto frame = packer.pack(msg, values);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_CanPackPrecompiled);

void BM_CanParsePrecompiled(benchmark::State& state) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);
  const auto frame = packer.pack("STEERING_CONTROL",
                                 {{can::sig::kSteerAngleCmd, 0.42},
                                  {can::sig::kSteerEnabled, 1.0}});
  for (auto _ : state) {
    const auto* parsed = parser.parse_flat(frame);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_CanParsePrecompiled);

void BM_PubSubRoundtrip(benchmark::State& state) {
  msg::PubSubBus bus;
  msg::Latest<msg::RadarState> latest(bus);
  msg::RadarState m;
  m.lead_valid = true;
  m.lead_distance = 42.0;
  for (auto _ : state) {
    bus.publish(m);
    benchmark::DoNotOptimize(latest.value());
  }
}
BENCHMARK(BM_PubSubRoundtrip);

void BM_Kalman2D(benchmark::State& state) {
  adas::Kalman2D kf(6.0, 0.0625, 0.0144);
  kf.init(100.0, -10.0);
  double z = 100.0;
  for (auto _ : state) {
    z -= 0.1;
    kf.predict(0.01);
    kf.update(z, -10.0);
    benchmark::DoNotOptimize(kf.value());
  }
}
BENCHMARK(BM_Kalman2D);

void BM_WorldStep(benchmark::State& state) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  item.seed = 5;
  sim::World world(exp::world_config_for(item));
  for (auto _ : state) {
    if (!world.step()) state.SkipWithError("simulation ended");
  }
}
BENCHMARK(BM_WorldStep);

void BM_FullSimulation(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    exp::CampaignItem item;
    item.strategy = attack::StrategyKind::kContextAware;
    item.type = attack::AttackType::kSteeringRight;
    item.seed = seed++;
    sim::World world(exp::world_config_for(item));
    auto summary = world.run();
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_FullSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
