// Component microbenchmarks (google-benchmark): CAN codec, pub/sub,
// Kalman filters, and the full world step — the numbers that justify
// running 19k+ simulations per table.

#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <vector>

#include "adas/kalman.hpp"
#include "can/packer.hpp"
#include "exp/campaign.hpp"
#include "msg/bus.hpp"
#include "sim/world.hpp"
#include "sim/world_batch.hpp"

using namespace scaa;

namespace {

void BM_CanPack(benchmark::State& state) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  double angle = 0.0;
  for (auto _ : state) {
    angle += 0.001;
    auto frame = packer.pack("STEERING_CONTROL",
                             {{can::sig::kSteerAngleCmd, angle},
                              {can::sig::kSteerEnabled, 1.0}});
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_CanPack);

void BM_CanParse(benchmark::State& state) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);
  const auto frame = packer.pack("STEERING_CONTROL",
                                 {{can::sig::kSteerAngleCmd, 0.42},
                                  {can::sig::kSteerEnabled, 1.0}});
  for (auto _ : state) {
    auto parsed = parser.parse(frame);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_CanParse);

void BM_CanPackPrecompiled(benchmark::State& state) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  const auto msg = db.handle("STEERING_CONTROL");
  const auto angle =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd);
  const auto enabled =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerEnabled);
  std::array<double, 2> values{};
  double angle_deg = 0.0;
  for (auto _ : state) {
    angle_deg += 0.001;
    values[angle.signal] = angle_deg;
    values[enabled.signal] = 1.0;
    auto frame = packer.pack(msg, values);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_CanPackPrecompiled);

void BM_CanParsePrecompiled(benchmark::State& state) {
  const auto db = can::Database::simulated_car();
  can::CanPacker packer(db);
  can::CanParser parser(db);
  const auto frame = packer.pack("STEERING_CONTROL",
                                 {{can::sig::kSteerAngleCmd, 0.42},
                                  {can::sig::kSteerEnabled, 1.0}});
  for (auto _ : state) {
    const auto* parsed = parser.parse_flat(frame);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_CanParsePrecompiled);

void BM_PubSubRoundtrip(benchmark::State& state) {
  msg::PubSubBus bus;
  msg::Latest<msg::RadarState> latest(bus);
  msg::RadarState m;
  m.lead_valid = true;
  m.lead_distance = 42.0;
  for (auto _ : state) {
    bus.publish(m);
    benchmark::DoNotOptimize(latest.value());
  }
}
BENCHMARK(BM_PubSubRoundtrip);

// --- PubSubBus::publish: typed fast path vs the lazily serialized tap -------

void BM_BusPublishTyped(benchmark::State& state) {
  // Campaign steady state: typed subscribers only, so publish() never
  // serializes and never allocates.
  msg::PubSubBus bus;
  msg::Latest<msg::CarState> latest(bus);
  msg::CarState m;
  m.speed = 25.0;
  m.cruise_enabled = true;
  for (auto _ : state) {
    ++m.mono_time;
    m.speed += 0.001;
    bus.publish(m);
    benchmark::DoNotOptimize(latest.value());
  }
}
BENCHMARK(BM_BusPublishTyped);

void BM_BusPublishTapped(benchmark::State& state) {
  // An eavesdropper's raw tap forces the wire path: one exact-size encode
  // per publish into the reused per-topic scratch buffer.
  msg::PubSubBus bus;
  msg::Latest<msg::CarState> latest(bus);
  std::uint64_t byte_sum = 0;
  bus.subscribe_raw(msg::Topic::kCarState,
                    [&byte_sum](const msg::WireFrame& f) {
                      for (const std::uint8_t b : f.payload) byte_sum += b;
                    });
  msg::CarState m;
  m.speed = 25.0;
  m.cruise_enabled = true;
  for (auto _ : state) {
    ++m.mono_time;
    m.speed += 0.001;
    bus.publish(m);
    benchmark::DoNotOptimize(byte_sum);
  }
}
BENCHMARK(BM_BusPublishTapped);

void BM_BusPublishUnsubscribed(benchmark::State& state) {
  // No subscribers at all: publish still stamps the sequence (a mid-run
  // tap must see gap-free numbering) but does nothing else.
  msg::PubSubBus bus;
  msg::CarState m;
  for (auto _ : state) {
    ++m.mono_time;
    bus.publish(m);
    benchmark::DoNotOptimize(bus.published_count(msg::Topic::kCarState));
  }
}
BENCHMARK(BM_BusPublishUnsubscribed);

void BM_Kalman2D(benchmark::State& state) {
  adas::Kalman2D kf(6.0, 0.0625, 0.0144);
  kf.init(100.0, -10.0);
  double z = 100.0;
  for (auto _ : state) {
    z -= 0.1;
    kf.predict(0.01);
    kf.update(z, -10.0);
    benchmark::DoNotOptimize(kf.value());
  }
}
BENCHMARK(BM_Kalman2D);

// --- Polyline::project: the per-vehicle-per-tick geometry kernel ------------

const road::Road& micro_road() {
  static const road::Road road = road::RoadBuilder::paper_road();
  return road;
}

void BM_PolylineProjectHinted(benchmark::State& state) {
  const geom::Polyline& line = micro_road().reference();
  double s = 30.0;
  double hint = -1.0;
  for (auto _ : state) {
    s += 0.3;
    if (s > line.length() - 10.0) s = 30.0;
    const auto proj =
        line.project(line.position_at(s) + geom::Vec2{0.1, 1.2}, hint);
    hint = proj.s;
    benchmark::DoNotOptimize(proj);
  }
}
BENCHMARK(BM_PolylineProjectHinted);

void BM_PolylineProjectMany(benchmark::State& state) {
  const geom::Polyline& line = micro_road().reference();
  std::array<double, 4> s{30.0, 80.0, 130.0, 180.0};
  std::array<geom::Vec2, 4> points;
  std::array<double, 4> hints{-1.0, -1.0, -1.0, -1.0};
  std::array<geom::Polyline::Projection, 4> out;
  for (auto _ : state) {
    for (std::size_t l = 0; l < 4; ++l) {
      s[l] += 0.3;
      if (s[l] > line.length() - 10.0) s[l] = 30.0;
      points[l] = line.position_at(s[l]) + geom::Vec2{0.1, 1.2};
    }
    line.project_many(points, hints, out);
    for (std::size_t l = 0; l < 4; ++l) hints[l] = out[l].s;
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_PolylineProjectMany);

void BM_PolylineProjectFull(benchmark::State& state) {
  const geom::Polyline& line = micro_road().reference();
  const geom::Vec2 p = line.position_at(777.0) + geom::Vec2{0.3, -1.0};
  for (auto _ : state) {
    auto proj = line.project(p, -1.0);
    benchmark::DoNotOptimize(proj);
  }
}
BENCHMARK(BM_PolylineProjectFull);

void BM_PolylineProjectReference(benchmark::State& state) {
  const geom::Polyline& line = micro_road().reference();
  const geom::Vec2 p = line.position_at(777.0) + geom::Vec2{0.3, -1.0};
  for (auto _ : state) {
    auto proj = line.project_reference(p);
    benchmark::DoNotOptimize(proj);
  }
}
BENCHMARK(BM_PolylineProjectReference);

void BM_WorldStep(benchmark::State& state) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  item.seed = 5;
  sim::World world(exp::world_config_for(item));
  for (auto _ : state) {
    if (!world.step()) state.SkipWithError("simulation ended");
  }
}
BENCHMARK(BM_WorldStep);

// --- World lifecycle: construct vs reset, and batched stepping --------------

exp::CampaignItem micro_item(std::uint64_t seed) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  item.seed = seed;
  return item;
}

void BM_WorldConstruct(benchmark::State& state) {
  const exp::WorldAssets assets = exp::WorldAssets::make_default();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::World world(exp::world_config_for(micro_item(seed++), assets));
    benchmark::DoNotOptimize(world.time());
  }
}
BENCHMARK(BM_WorldConstruct)->Unit(benchmark::kMicrosecond);

void BM_WorldReset(benchmark::State& state) {
  // The arena lifecycle: one resident World re-armed per simulation,
  // allocation-free and bit-identical to BM_WorldConstruct's result.
  const exp::WorldAssets assets = exp::WorldAssets::make_default();
  std::uint64_t seed = 1;
  sim::World world(exp::world_config_for(micro_item(seed++), assets));
  for (auto _ : state) {
    world.reset(exp::world_config_for(micro_item(seed++), assets));
    benchmark::DoNotOptimize(world.time());
  }
}
BENCHMARK(BM_WorldReset)->Unit(benchmark::kMicrosecond);

void BM_BatchStep(benchmark::State& state) {
  // One lockstep tick of K resident worlds (per-world cost = time/K): the
  // fused project_many sweep amortizes across the batch.
  const auto k = static_cast<std::size_t>(state.range(0));
  const exp::WorldAssets assets = exp::WorldAssets::make_default();
  std::vector<std::unique_ptr<sim::World>> worlds;
  sim::WorldBatch batch;
  std::uint64_t seed = 1;
  for (std::size_t i = 0; i < k; ++i) {
    worlds.push_back(std::make_unique<sim::World>(
        exp::world_config_for(micro_item(seed++), assets)));
    batch.add(worlds.back().get());
  }
  for (auto _ : state) {
    if (batch.step() == 0) {
      state.PauseTiming();
      batch.clear();
      for (auto& world : worlds) {
        world->reset(exp::world_config_for(micro_item(seed++), assets));
        batch.add(world.get());
      }
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_BatchStep)->Arg(1)->Arg(4)->Arg(8);

void BM_FullSimulation(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    exp::CampaignItem item;
    item.strategy = attack::StrategyKind::kContextAware;
    item.type = attack::AttackType::kSteeringRight;
    item.seed = seed++;
    sim::World world(exp::world_config_for(item));
    auto summary = world.run();
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_FullSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
