// Reproduces paper Fig. 7: the Ego trajectory during an attack-free
// simulation, showing imperfect lane centering and lane invasions
// (Observation 1). Emits the trace as CSV to fig7_trajectory.csv and prints
// a coarse ASCII rendering of the lateral position over time.
//
// Usage: bench_fig7 [--seed N] [--csv PATH]

#include <cstdio>
#include <fstream>
#include <string>

#include "cli/args.hpp"
#include "exp/campaign.hpp"
#include "sim/world.hpp"

using namespace scaa;

int main(int argc, char** argv) {
  cli::ArgParser args("bench_fig7",
                      "Reproduce paper Fig. 7: attack-free Ego trajectory "
                      "with imperfect lane centering");
  args.add_uint("--seed", 7, "simulation seed");
  args.add_string("--csv", "fig7_trajectory.csv", "trace output path");
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const std::uint64_t seed = args.get_uint("--seed");
  const std::string& csv_path = args.get_string("--csv");

  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = seed;

  sim::World world(exp::world_config_for(item));
  sim::Trace trace;
  const auto summary = world.run(&trace);

  {
    std::ofstream out(csv_path);
    trace.write_csv(out);
  }

  std::printf("FIG 7: Ego trajectory during an attack-free simulation\n\n");
  std::printf("lane: center d=%.2f m, lines at %.2f / %.2f m; car half-width "
              "%.2f m\n\n",
              trace.rows().front().lane_center,
              trace.rows().front().lane_right,
              trace.rows().front().lane_left, 0.9);

  // ASCII strip chart: one row per 2 s; column = lateral position.
  std::printf("%-6s  %-41s  %s\n", "t[s]", "right-edge ... d ... left-edge",
              "offset[m]");
  const double lo = trace.rows().front().lane_right - 0.8;
  const double hi = trace.rows().front().lane_left + 0.8;
  for (std::size_t i = 0; i < trace.rows().size(); i += 200) {
    const auto& r = trace.rows()[i];
    char strip[42];
    for (int c = 0; c < 41; ++c) strip[c] = ' ';
    strip[41] = '\0';
    auto col = [&](double d) {
      int c = static_cast<int>((d - lo) / (hi - lo) * 40.0);
      return c < 0 ? 0 : (c > 40 ? 40 : c);
    };
    strip[col(r.lane_right)] = '|';
    strip[col(r.lane_left)] = '|';
    strip[col(r.lane_center)] = '.';
    strip[col(r.ego_d)] = '#';
    std::printf("%-6.1f  %s  %+.3f\n", r.time, strip,
                r.ego_d - r.lane_center);
  }

  std::printf("\nlane invasions: %llu events in %.1f s (%.2f events/s; paper "
              "reports 0.46/s)\n",
              static_cast<unsigned long long>(summary.lane_invasions),
              summary.sim_end_time, summary.lane_invasion_rate);
  std::printf("steerSaturated alerts: %llu; hazards: %s; accidents: %s\n",
              static_cast<unsigned long long>(summary.steer_saturated_events),
              summary.any_hazard ? "YES (unexpected!)" : "none",
              summary.any_accident ? "YES (unexpected!)" : "none");
  std::printf("full trace written to %s (%zu rows)\n", csv_path.c_str(),
              trace.size());
  return 0;
}
