// Reproduces paper Table V: Context-Aware attack per attack type, with and
// without strategic value corruption, with an alert driver. The prevention
// columns come from pairing each driver-on simulation with the identical
// (same-seed) driver-off simulation.
//
// Usage: bench_table5 [--reps N] [--threads N]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/campaign.hpp"
#include "exp/tables.hpp"

using namespace scaa;

int main(int argc, char** argv) {
  int reps = 20;
  std::size_t threads = 0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--threads") == 0)
      threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
  }
  if (reps < 1) reps = 1;

  exp::CampaignConfig cc;
  cc.threads = threads;
  const auto kind = attack::StrategyKind::kContextAware;

  auto run = [&](bool strategic, bool driver) {
    const auto grid = exp::make_grid(kind, strategic, driver, reps, 2022);
    return exp::run_campaign(grid, cc);
  };

  std::fprintf(stderr, "[table5] fixed values, driver on...\n");
  const auto fixed_on = run(false, true);
  std::fprintf(stderr, "[table5] fixed values, driver off...\n");
  const auto fixed_off = run(false, false);
  std::fprintf(stderr, "[table5] strategic values, driver on...\n");
  const auto strat_on = run(true, true);
  std::fprintf(stderr, "[table5] strategic values, driver off...\n");
  const auto strat_off = run(true, false);

  const auto fixed = exp::pair_driver_outcomes(fixed_on, fixed_off);
  const auto strategic = exp::pair_driver_outcomes(strat_on, strat_off);

  std::printf("TABLE V: Context-Aware attack with or without strategic value "
              "corruption, with an alert driver\n");
  std::printf("(columns marked * use strategic value corruption)\n\n");
  std::printf("%s\n", exp::render_table5(fixed, strategic).c_str());

  // Driver-off hazard rates ("almost 100%" per the paper's text).
  std::printf("Reference (driver disabled) hazard rates:\n");
  for (const auto& [type, outcome] : fixed) {
    std::printf("  %-24s fixed: %zu/%zu   strategic: %zu/%zu\n",
                to_string(type).c_str(), outcome.nodriver_hazards,
                outcome.agg.simulations, strategic.at(type).nodriver_hazards,
                strategic.at(type).agg.simulations);
  }
  return 0;
}
