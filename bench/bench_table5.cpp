// Reproduces paper Table V: Context-Aware attack per attack type, with and
// without strategic value corruption, with an alert driver. The prevention
// columns come from pairing each driver-on simulation with the identical
// (same-seed) driver-off simulation.
//
// Usage: bench_table5 [--reps N] [--threads N]

#include <cstdio>

#include "cli/args.hpp"
#include "exp/campaign.hpp"
#include "exp/tables.hpp"

using namespace scaa;

int main(int argc, char** argv) {
  cli::ArgParser args("bench_table5",
                      "Reproduce paper Table V: Context-Aware attack per "
                      "type, fixed vs. strategic value corruption");
  args.add_int("--reps", 20, "repetitions per (type, scenario, gap) cell", 1,
               1000000);
  args.add_int("--threads", 0, "worker threads (0 = hardware concurrency)", 0,
               4096);
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const int reps = static_cast<int>(args.get_int("--reps"));
  const auto threads = static_cast<std::size_t>(args.get_int("--threads"));

  exp::CampaignConfig cc;
  cc.threads = threads;
  cc.base_seed = 2022;
  cc.repetitions = reps;
  const auto kind = attack::StrategyKind::kContextAware;

  auto run = [&](bool strategic, bool driver) {
    const auto grid = exp::make_grid(kind, strategic, driver, cc);
    return exp::run_campaign(grid, cc);
  };

  std::fprintf(stderr, "[table5] fixed values, driver on...\n");
  const auto fixed_on = run(false, true);
  std::fprintf(stderr, "[table5] fixed values, driver off...\n");
  const auto fixed_off = run(false, false);
  std::fprintf(stderr, "[table5] strategic values, driver on...\n");
  const auto strat_on = run(true, true);
  std::fprintf(stderr, "[table5] strategic values, driver off...\n");
  const auto strat_off = run(true, false);

  const auto fixed = exp::pair_driver_outcomes(fixed_on, fixed_off);
  const auto strategic = exp::pair_driver_outcomes(strat_on, strat_off);

  std::printf("TABLE V: Context-Aware attack with or without strategic value "
              "corruption, with an alert driver\n");
  std::printf("(columns marked * use strategic value corruption)\n\n");
  std::printf("%s\n", exp::render_table5(fixed, strategic).c_str());

  // Driver-off hazard rates ("almost 100%" per the paper's text).
  std::printf("Reference (driver disabled) hazard rates:\n");
  for (const auto& [type, outcome] : fixed) {
    std::printf("  %-24s fixed: %zu/%zu   strategic: %zu/%zu\n",
                to_string(type).c_str(), outcome.nodriver_hazards,
                outcome.agg.simulations, strategic.at(type).nodriver_hazards,
                strategic.at(type).agg.simulations);
  }
  return 0;
}
