// Reproduces paper Table IV: attack-strategy comparison with an alert
// driver. Rows: No Attacks, Random-ST+DUR, Random-ST, Random-DUR,
// Context-Aware. Columns: alerts, hazards, accidents, hazards-without-
// alerts, lane invasion rate, TTH.
//
// Usage: bench_table4 [--reps N] [--threads N]
//   --reps scales the per-(type,scenario,gap) repetition count
//   (paper: 20 -> 1,440 sims per strategy; Random-ST+DUR uses 10x).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "exp/campaign.hpp"
#include "exp/tables.hpp"

using namespace scaa;

int main(int argc, char** argv) {
  int reps = 20;
  std::size_t threads = 0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--threads") == 0)
      threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
  }
  if (reps < 1) reps = 1;

  exp::CampaignConfig cc;
  cc.threads = threads;

  struct Row {
    attack::StrategyKind kind;
    bool strategic;  // Context-Aware corrupts strategically; others fixed
    int rep_multiplier;
  };
  const Row rows[] = {
      {attack::StrategyKind::kNone, false, 1},
      {attack::StrategyKind::kRandomStDur, false, 10},  // paper: 14,400 sims
      {attack::StrategyKind::kRandomSt, false, 1},
      {attack::StrategyKind::kRandomDur, false, 1},
      {attack::StrategyKind::kContextAware, true, 1},
  };

  std::map<attack::StrategyKind, exp::Aggregate> per_strategy;
  std::uint64_t fcw_total = 0;
  for (const Row& row : rows) {
    const auto grid =
        exp::make_grid(row.kind, row.strategic, /*driver=*/true,
                       reps * row.rep_multiplier, /*base_seed=*/2022);
    const auto results = exp::run_campaign(grid, cc);
    const auto agg = exp::aggregate(results);
    fcw_total += agg.fcw_activations;
    per_strategy[row.kind] = agg;
    std::fprintf(stderr, "[table4] %-14s done: %zu sims\n",
                 to_string(row.kind).c_str(), agg.simulations);
  }

  std::printf("TABLE IV: Attack strategy comparisons with an alert driver\n\n");
  std::printf("%s\n", exp::render_table4(per_strategy).c_str());
  std::printf("FCW activations across all attack simulations: %llu "
              "(paper observation 2: FCW never fires)\n",
              static_cast<unsigned long long>(fcw_total));
  return 0;
}
