// Reproduces paper Table IV: attack-strategy comparison with an alert
// driver. Rows: No Attacks, Random-ST+DUR, Random-ST, Random-DUR,
// Context-Aware. Columns: alerts, hazards, accidents, hazards-without-
// alerts, lane invasion rate, TTH.
//
// Usage: bench_table4 [--reps N] [--threads N]
//   --reps scales the per-(type,scenario,gap) repetition count
//   (paper: 20 -> 1,440 sims per strategy; Random-ST+DUR uses 10x).

#include <cstdio>
#include <map>

#include "cli/args.hpp"
#include "cli/campaigns.hpp"
#include "exp/campaign.hpp"
#include "exp/tables.hpp"

using namespace scaa;

int main(int argc, char** argv) {
  cli::ArgParser args("bench_table4",
                      "Reproduce paper Table IV: attack-strategy comparison "
                      "with an alert driver");
  args.add_int("--reps", 20, "repetitions per (type, scenario, gap) cell", 1,
               1000000);
  args.add_int("--threads", 0, "worker threads (0 = hardware concurrency)", 0,
               4096);
  if (const int code = args.parse_or_exit_code(argc, argv); code >= 0)
    return code;
  const int reps = static_cast<int>(args.get_int("--reps"));
  const auto threads = static_cast<std::size_t>(args.get_int("--threads"));

  exp::CampaignConfig cc;
  cc.threads = threads;
  cc.base_seed = 2022;
  cc.repetitions = reps;

  std::map<attack::StrategyKind, exp::Aggregate> per_strategy;
  std::uint64_t fcw_total = 0;
  for (const cli::Table4Strategy& row : cli::table4_strategies()) {
    const auto grid = exp::make_grid(row.kind, row.strategic, /*driver=*/true,
                                     cc, reps * row.rep_multiplier);
    const auto results = exp::run_campaign(grid, cc);
    const auto agg = exp::aggregate(results);
    fcw_total += agg.fcw_activations;
    per_strategy[row.kind] = agg;
    std::fprintf(stderr, "[table4] %-14s done: %zu sims\n",
                 to_string(row.kind).c_str(), agg.simulations);
  }

  std::printf("TABLE IV: Attack strategy comparisons with an alert driver\n\n");
  std::printf("%s\n", exp::render_table4(per_strategy).c_str());
  std::printf("FCW activations across all attack simulations: %llu "
              "(paper observation 2: FCW never fires)\n",
              static_cast<unsigned long long>(fcw_total));
  return 0;
}
