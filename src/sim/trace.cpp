#include "sim/trace.hpp"

#include <ostream>

#include "util/csv.hpp"

namespace scaa::sim {

void Trace::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.header({"time", "ego_s", "ego_d", "ego_speed", "ego_accel", "ego_steer",
              "lane_center", "lane_left", "lane_right", "lead_gap",
              "accel_cmd", "steer_cmd", "attack_active", "alert_active",
              "driver_engaged"});
  for (const auto& r : rows_) {
    csv.row()
        .cell(r.time)
        .cell(r.ego_s)
        .cell(r.ego_d)
        .cell(r.ego_speed)
        .cell(r.ego_accel)
        .cell(r.ego_steer)
        .cell(r.lane_center)
        .cell(r.lane_left)
        .cell(r.lane_right)
        .cell(r.lead_gap)
        .cell(r.accel_cmd)
        .cell(r.steer_cmd)
        .cell(r.attack_active)
        .cell(r.alert_active)
        .cell(r.driver_engaged);
    csv.end_row();
  }
}

void Trace::decimate(std::size_t n) {
  if (n <= 1 || rows_.empty()) return;
  std::vector<TraceRow> kept;
  kept.reserve(rows_.size() / n + 1);
  for (std::size_t i = 0; i < rows_.size(); i += n) kept.push_back(rows_[i]);
  rows_ = std::move(kept);
}

}  // namespace scaa::sim
