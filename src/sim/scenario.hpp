#pragma once

/// @file scenario.hpp
/// Driving scenarios S1-S4 (paper §IV-A).
///
/// The Ego cruises at 60 mph and approaches, from 50/70/100 m away, a lead
/// vehicle that: S1 cruises at 35 mph; S2 cruises at 50 mph; S3 slows from
/// 50 to 35 mph; S4 accelerates from 35 to 50 mph. A trailing vehicle (the
/// traffic behind the Ego, the A2/H2 conflict partner) and a neighbor
/// vehicle in the left lane (an A3 conflict partner) complete the scene.

#include <string>

#include "util/units.hpp"

namespace scaa::sim {

/// Scripted lead-vehicle speed profile.
struct LeadProfile {
  double initial_speed = units::mph_to_ms(35.0);  ///< [m/s]
  double target_speed = units::mph_to_ms(35.0);   ///< [m/s]
  double change_start = 15.0;  ///< [s] when the transition begins
  double change_rate = 1.0;    ///< [m/s^2] magnitude of the transition
};

/// A complete scenario description.
struct Scenario {
  int id = 1;                  ///< 1..4 (S1..S4)
  double initial_gap = 100.0;  ///< [m] Ego front bumper to lead rear bumper
  double ego_speed = units::mph_to_ms(60.0);     ///< [m/s] initial & cruise
  double cruise_speed = units::mph_to_ms(60.0);  ///< [m/s] ACC set speed
  LeadProfile lead;
  bool with_trailing = true;   ///< traffic behind the Ego
  bool with_neighbor = true;   ///< vehicle in the left lane
  double trailing_gap = 45.0;  ///< [m] initial gap behind the Ego
  double neighbor_offset = 10.0;  ///< [m] neighbor's s-offset from the Ego

  /// Build scenario @p sid (1..4) with the given initial gap.
  /// Throws std::invalid_argument for unknown ids.
  static Scenario make(int sid, double gap);

  /// "S1".."S4".
  std::string name() const;

  /// The three initial gaps evaluated in the paper.
  static constexpr double kGaps[3] = {50.0, 70.0, 100.0};
};

}  // namespace scaa::sim
