#pragma once

/// @file trace.hpp
/// Per-step trace recording for figures (Fig. 7) and debugging.

#include <iosfwd>
#include <vector>

namespace scaa::sim {

/// One recorded step.
struct TraceRow {
  double time = 0.0;
  double ego_s = 0.0;
  double ego_d = 0.0;
  double ego_speed = 0.0;
  double ego_accel = 0.0;
  double ego_steer = 0.0;
  double lane_center = 0.0;
  double lane_left = 0.0;    ///< lateral position of the ego lane's left line
  double lane_right = 0.0;   ///< lateral position of the ego lane's right line
  double lead_gap = -1.0;    ///< [m]; negative when no lead
  double accel_cmd = 0.0;    ///< command as executed (post-attack)
  double steer_cmd = 0.0;    ///< command as executed (post-attack) [rad]
  bool attack_active = false;
  bool alert_active = false;
  bool driver_engaged = false;
};

/// Growable trace with CSV export.
class Trace {
 public:
  void add(const TraceRow& row) { rows_.push_back(row); }
  const std::vector<TraceRow>& rows() const noexcept { return rows_; }
  std::size_t size() const noexcept { return rows_.size(); }
  void reserve(std::size_t n) { rows_.reserve(n); }

  /// Drop all rows, keeping the capacity — a trace reused across World
  /// resets records the next run without reallocating.
  void clear() noexcept { rows_.clear(); }

  /// Write all rows as CSV (with header) to @p out.
  void write_csv(std::ostream& out) const;

  /// Keep only every @p n-th row (thins the trace for plotting).
  void decimate(std::size_t n);

 private:
  std::vector<TraceRow> rows_;
};

}  // namespace scaa::sim
