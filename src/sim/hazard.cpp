#include "sim/hazard.hpp"

#include <cmath>

namespace scaa::sim {

std::string to_string(AccidentClass a) {
  switch (a) {
    case AccidentClass::kNone: return "None";
    case AccidentClass::kA1LeadCollision: return "A1-LeadCollision";
    case AccidentClass::kA2RearEnd: return "A2-RearEnd";
    case AccidentClass::kA3Roadside: return "A3-Roadside";
  }
  return "?";
}

SafetyMonitor::SafetyMonitor(const road::Road& road,
                             SafetyMonitorConfig config, std::size_t ego_lane)
    : road_(&road), config_(config), ego_lane_(ego_lane) {}

void SafetyMonitor::record_hazard(attack::HazardClass h,
                                  double time) noexcept {
  auto& slot = hazard_time_[static_cast<std::size_t>(h)];
  if (slot >= 0.0) return;
  slot = time;
  if (first_hazard_ == attack::HazardClass::kNone) {
    first_hazard_ = h;
    first_hazard_time_ = time;
  }
}

void SafetyMonitor::record_accident(AccidentClass a, double time) noexcept {
  auto& slot = accident_time_[static_cast<std::size_t>(a)];
  if (slot >= 0.0) return;
  slot = time;
  if (first_accident_ == AccidentClass::kNone) {
    first_accident_ = a;
    first_accident_time_ = time;
  }
}

bool SafetyMonitor::hazard_occurred(attack::HazardClass h) const noexcept {
  return hazard_time_[static_cast<std::size_t>(h)] >= 0.0;
}

double SafetyMonitor::hazard_time(attack::HazardClass h) const noexcept {
  return hazard_time_[static_cast<std::size_t>(h)];
}

bool SafetyMonitor::any_hazard() const noexcept {
  return first_hazard_ != attack::HazardClass::kNone;
}

bool SafetyMonitor::accident_occurred(AccidentClass a) const noexcept {
  return accident_time_[static_cast<std::size_t>(a)] >= 0.0;
}

bool SafetyMonitor::update(const MonitorInputs& in) {
  using attack::HazardClass;
  const auto& profile = road_->profile();

  // --- H1 / A1: lead conflict -----------------------------------------
  if (in.lead.has_value()) {
    const double gap = vehicle::bumper_gap(in.ego, *in.ego_params, *in.lead,
                                           *in.lead_params);
    const double violation_gap =
        std::max(config_.h1_min_gap, config_.h1_headway * in.ego.speed);
    if (gap <= violation_gap) record_hazard(HazardClass::kH1, in.time);
    if (gap <= 0.0) record_accident(AccidentClass::kA1LeadCollision, in.time);
  }

  // --- H2 / A2: unjustified slowdown & rear-end conflict ---------------
  // The condition must hold continuously for h2_persistence seconds: a
  // short dip the ACC recovers from is not a hazard, a latched attack or a
  // panic stop is. The hazard is stamped at the episode start.
  if (in.time >= config_.h2_min_time) {
    const bool lead_far =
        !in.lead.has_value() ||
        vehicle::bumper_gap(in.ego, *in.ego_params, *in.lead,
                            *in.lead_params) > config_.h2_clear_gap;
    const bool slow =
        in.ego.speed < config_.h2_speed_fraction * in.cruise_speed;
    if (lead_far && slow) {
      if (h2_condition_since_ < 0.0) h2_condition_since_ = in.time;
      if (in.time - h2_condition_since_ >= config_.h2_persistence)
        record_hazard(HazardClass::kH2, h2_condition_since_);
    } else {
      h2_condition_since_ = -1.0;
    }
  }
  if (in.trailing.has_value()) {
    const double rear_gap = vehicle::bumper_gap(
        *in.trailing, *in.trailing_params, in.ego, *in.ego_params);
    if (rear_gap <= 0.0) record_accident(AccidentClass::kA2RearEnd, in.time);
  }

  // --- H3 / A3: road departure & roadside conflict ---------------------
  // H3 ("drives out of lane") triggers when the vehicle centre leaves the
  // carriageway — consistent with the paper's no-attack data, where lane
  // LINE invasions are frequent (0.46/s) yet no hazards are logged.
  if (std::abs(in.ego.d) > 0.5 * profile.width())
    record_hazard(HazardClass::kH3, in.time);
  if (road_->hits_guardrail(in.ego.d, in.ego_params->half_width()))
    record_accident(AccidentClass::kA3Roadside, in.time);
  if (in.neighbor.has_value()) {
    const double ds = std::abs(in.neighbor->s - in.ego.s);
    const double dd = std::abs(in.neighbor->d - in.ego.d);
    const bool overlap =
        ds < 0.5 * (in.ego_params->length + in.neighbor_params->length) &&
        dd < 0.5 * (in.ego_params->width + in.neighbor_params->width);
    if (overlap) record_accident(AccidentClass::kA3Roadside, in.time);
  }

  // --- lane invasions (footprint touches a lane line) ------------------
  const bool invading = road_->invades_lane_line(
      in.ego.d, ego_lane_, in.ego_params->half_width());
  if (invading && !invading_) ++invasions_;
  invading_ = invading;

  return any_accident();
}

}  // namespace scaa::sim
