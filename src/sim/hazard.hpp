#pragma once

/// @file hazard.hpp
/// Hazard (H1-H3) and accident (A1-A3) detection, plus lane-invasion
/// counting (paper §III-A and Observation 1).

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "attack/context_table.hpp"
#include "road/road.hpp"
#include "vehicle/vehicle.hpp"

namespace scaa::sim {

/// Accident classes of the paper.
enum class AccidentClass : std::uint8_t {
  kNone = 0,
  kA1LeadCollision,   ///< collision with the lead vehicle
  kA2RearEnd,         ///< trailing vehicle rear-ends the Ego
  kA3Roadside,        ///< guardrail or neighboring-lane vehicle collision
};

std::string to_string(AccidentClass a);

/// Detection thresholds.
struct SafetyMonitorConfig {
  double h1_headway = 0.5;     ///< [s] gap below this headway violates H1
  double h1_min_gap = 2.0;     ///< [m] absolute floor for H1
  double h2_speed_fraction = 0.5;  ///< H2: speed below this x cruise ...
  double h2_clear_gap = 40.0;      ///< ... with no lead within this gap [m] ...
  double h2_persistence = 2.5;     ///< ... continuously for this long [s].
                                   ///< Transient slowdowns that the ACC
                                   ///< recovers from are not hazards; a
                                   ///< latched attack or a panic stop is.
  double h2_min_time = 5.0;    ///< [s] ignore the initial transient
};

/// Geometry + kinematics snapshot the monitor evaluates every step.
struct MonitorInputs {
  double time = 0.0;
  vehicle::VehicleState ego;
  const vehicle::VehicleParams* ego_params = nullptr;
  std::optional<vehicle::VehicleState> lead;
  const vehicle::VehicleParams* lead_params = nullptr;
  std::optional<vehicle::VehicleState> trailing;
  const vehicle::VehicleParams* trailing_params = nullptr;
  std::optional<vehicle::VehicleState> neighbor;
  const vehicle::VehicleParams* neighbor_params = nullptr;
  double cruise_speed = 0.0;
};

/// Tracks first-occurrence times of every hazard/accident class and counts
/// lane-invasion events.
class SafetyMonitor {
 public:
  SafetyMonitor(const road::Road& road, SafetyMonitorConfig config,
                std::size_t ego_lane);

  /// Evaluate one step. Returns true when a (terminal) accident occurred.
  bool update(const MonitorInputs& in);

  /// --- hazards ---
  bool hazard_occurred(attack::HazardClass h) const noexcept;
  double hazard_time(attack::HazardClass h) const noexcept;
  bool any_hazard() const noexcept;
  attack::HazardClass first_hazard() const noexcept { return first_hazard_; }
  double first_hazard_time() const noexcept { return first_hazard_time_; }

  /// --- accidents ---
  bool accident_occurred(AccidentClass a) const noexcept;
  bool any_accident() const noexcept {
    return first_accident_ != AccidentClass::kNone;
  }
  AccidentClass first_accident() const noexcept { return first_accident_; }
  double first_accident_time() const noexcept { return first_accident_time_; }

  /// --- lane invasions ---
  std::uint64_t lane_invasion_events() const noexcept { return invasions_; }

 private:
  void record_hazard(attack::HazardClass h, double time) noexcept;
  void record_accident(AccidentClass a, double time) noexcept;

  const road::Road* road_;
  SafetyMonitorConfig config_;
  std::size_t ego_lane_;

  std::array<double, 4> hazard_time_{-1.0, -1.0, -1.0, -1.0};
  std::array<double, 4> accident_time_{-1.0, -1.0, -1.0, -1.0};
  attack::HazardClass first_hazard_ = attack::HazardClass::kNone;
  double first_hazard_time_ = -1.0;
  AccidentClass first_accident_ = AccidentClass::kNone;
  double first_accident_time_ = -1.0;
  double h2_condition_since_ = -1.0;  ///< start of the current H2 episode
  bool invading_ = false;
  std::uint64_t invasions_ = 0;
};

}  // namespace scaa::sim
