#pragma once

/// @file world.hpp
/// The closed-loop simulation world (paper Fig. 5): CARLA-substitute
/// physics + OpenPilot-substitute ADAS + driver reaction simulator +
/// attack/fault-injection engine, stepped at 100 Hz for 50 s.

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>

#include "adas/controls.hpp"
#include "attack/engine.hpp"
#include "can/bus.hpp"
#include "can/database.hpp"
#include "can/packer.hpp"
#include "driver/driver_model.hpp"
#include "fault/injector.hpp"
#include "msg/bus.hpp"
#include "panda/safety.hpp"
#include "road/builder.hpp"
#include "sensors/camera.hpp"
#include "sensors/gps.hpp"
#include "sensors/radar.hpp"
#include "sim/hazard.hpp"
#include "sim/scenario.hpp"
#include "sim/trace.hpp"
#include "vehicle/vehicle.hpp"

namespace scaa::exp {
class RealtimeExecutor;  // drives the tick phases under a deadline clock
}

namespace scaa::sim {

/// Physical disturbances acting on the Ego (road crown, crosswind,
/// steering stiction) — the execution-side imperfection that, together
/// with perception error, produces the paper's imperfect lane centering.
struct EnvironmentConfig {
  double steer_disturbance_std = 0.0045; ///< [rad] ~0.26 deg stationary std
  double steer_disturbance_tc = 3.0;     ///< [s] OU correlation time
};

/// Everything configurable about one simulation run.
struct WorldConfig {
  Scenario scenario;
  EnvironmentConfig environment;
  bool attack_enabled = false;
  attack::AttackConfig attack;
  bool driver_enabled = true;
  bool panda_enforced = false;  ///< paper: bypassed in the CARLA rig
  std::uint64_t seed = 1;
  double duration = 50.0;  ///< [s] 5000 steps
  double dt = 0.01;        ///< [s] 100 Hz

  /// Immutable world assets, shareable across many Worlds. Campaigns build
  /// the road and DBC once and hand the same instances to thousands of
  /// simulations; when null, the World builds its own private copies.
  std::shared_ptr<const road::Road> road;
  std::shared_ptr<const can::Database> db;

  /// Benign-fault plan (fault/plan.hpp), shared like the assets above.
  /// Null (the default) means no fault injection at all — the simulation
  /// is bit-identical to one built before the fault layer existed.
  std::shared_ptr<const fault::FaultPlan> fault_plan;

  vehicle::VehicleParams ego_params;
  adas::ControlsConfig controls;
  sensors::GpsConfig gps;
  sensors::CameraConfig camera;
  sensors::RadarConfig radar;
  driver::DriverConfig driver;
  SafetyMonitorConfig monitor;
};

/// Outcome summary of one simulation (the unit the campaign aggregates).
struct SimulationSummary {
  // hazards
  bool any_hazard = false;
  attack::HazardClass first_hazard = attack::HazardClass::kNone;
  double first_hazard_time = -1.0;
  bool hazard_h1 = false, hazard_h2 = false, hazard_h3 = false;
  double hazard_h1_time = -1.0, hazard_h2_time = -1.0, hazard_h3_time = -1.0;
  // accidents
  bool any_accident = false;
  AccidentClass first_accident = AccidentClass::kNone;
  double first_accident_time = -1.0;
  bool accident_a1 = false, accident_a2 = false, accident_a3 = false;
  // alerts
  std::uint64_t alert_events = 0;
  std::uint64_t steer_saturated_events = 0;
  std::uint64_t fcw_events = 0;
  bool alert_before_hazard = false;  ///< an alert preceded the first hazard
  // lane invasions
  std::uint64_t lane_invasions = 0;
  double lane_invasion_rate = 0.0;  ///< events per second
  // attack
  bool attack_activated = false;
  double attack_start = -1.0;
  double attack_duration = 0.0;  ///< [s] total time the attack was live
  double tth = -1.0;  ///< first hazard time - attack start; <0 when n/a
  std::uint64_t frames_corrupted = 0;
  // driver
  bool driver_engaged = false;
  double driver_engage_time = -1.0;
  double driver_perception_time = -1.0;
  // bookkeeping
  double sim_end_time = 0.0;
  std::uint64_t can_checksum_rejects = 0;
  std::uint64_t panda_frames_blocked = 0;  ///< only when panda_enforced
  // benign fault injection, indexed by fault::FaultKind (all zero when no
  // fault plan is attached)
  std::array<std::uint64_t, fault::kFaultKindCount> faults_fired{};
  std::array<std::uint64_t, fault::kFaultKindCount> faults_suppressed{};
};

/// The world. Lifecycle: construct, run() once, then reset() to re-arm the
/// same instance for the next simulation — a reset World is bit-identical
/// to a freshly constructed one, but performs zero heap allocations (the
/// campaign arenas keep one World per worker resident across thousands of
/// runs). A second run() without an intervening reset() throws.
class World {
 public:
  explicit World(WorldConfig config);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Re-initialize in place for a new simulation under @p config, ending
  /// in exactly the state a freshly constructed World(config) would have:
  /// RNG streams re-forked from config.seed, every subsystem re-armed.
  /// Bus wiring (subscriptions, taps, interceptors, the CAN gateway)
  /// persists across reset — which is why the eavesdropping surface
  /// survives it — and nothing allocates in steady state. @p config may
  /// carry a different shared road; the shared CAN database, however, must
  /// be the instance the World was constructed against (or null to keep
  /// it): the codec handles and the attacker's recon are wired to it, so a
  /// different database throws std::invalid_argument.
  void reset(const WorldConfig& config);

  /// Run to completion (or first accident). Pass a trace to record steps.
  /// Throws std::logic_error on a second run() without reset().
  SimulationSummary run(Trace* trace = nullptr);

  /// Advance a single step; returns false when the simulation is over.
  /// (Exposed for incremental inspection in tests/examples.)
  bool step();

  /// True once the simulation reached its end (terminal accident or
  /// configured duration).
  bool finished() const noexcept { return finished_; }

  /// One tick's batched projection workload: the vehicles whose
  /// integrate() half-step is waiting for a Frenet refresh, with their
  /// gathered query points and hints. World::step() resolves it against
  /// its own road; WorldBatch gathers the pending spans of K worlds into
  /// one shared Polyline::project_many sweep per phase instead.
  struct PendingProjections {
    static constexpr std::size_t kMaxVehicles = 4;
    std::array<vehicle::Vehicle*, kMaxVehicles> vehicles{};
    std::array<geom::Vec2, kMaxVehicles> points{};
    std::array<double, kMaxVehicles> hints{};
    std::array<geom::Polyline::Projection, kMaxVehicles> projections{};
    std::size_t count = 0;

    void add(vehicle::Vehicle* v) noexcept {
      vehicles[count] = v;
      points[count] = v->state().pose.position;
      hints[count] = v->frenet_hint();
      ++count;
    }
  };

  /// --- state access (valid between construction and end of run) ---
  double time() const noexcept { return time_; }
  const vehicle::VehicleState& ego_state() const noexcept;
  const road::Road& road() const noexcept { return *road_; }
  const SafetyMonitor& monitor() const noexcept { return *monitor_; }
  const adas::Controls& controls() const noexcept { return *controls_; }
  const attack::AttackEngine* attack_engine() const noexcept {
    // The engine object is always resident (shape-invariant construction,
    // so reset() never allocates), but it is only part of the simulation
    // when the config enables it — observers see null otherwise.
    return config_.attack_enabled ? attack_engine_.get() : nullptr;
  }
  const driver::DriverModel& driver_model() const noexcept { return *driver_; }

  /// Summary from the current state (final after run()).
  SimulationSummary summarize() const;

  /// The in-process messaging bus — exposed because it IS the attack
  /// surface: anything may subscribe (see examples/eavesdropper.cpp).
  msg::PubSubBus& message_bus() noexcept { return msg_bus_; }

  /// The CAN bus, likewise exposed for taps/interceptors.
  can::CanBus& can() noexcept { return can_bus_; }

  /// The DBC database of the simulated car.
  const can::Database& dbc() const noexcept { return *db_; }

 private:
  friend class WorldBatch;
  // The realtime executor runs the exact step() phase sequence with a
  // timestamp at each boundary (exp/realtime.hpp); it feeds no clock value
  // into any phase, so its runs stay bit-identical to free-running ones.
  friend class exp::RealtimeExecutor;

  void publish_sensors(double road_curvature, double road_heading);
  void record(Trace* trace, const vehicle::ActuatorCommand& cmd);

  /// step() decomposed into phases so WorldBatch can interleave K worlds
  /// and fuse their projection sweeps. Contract: begin_tick -> resolve
  /// pend -> mid_tick -> resolve pend -> end_tick, with end_tick returning
  /// step()'s "still running" result.
  void begin_tick(PendingProjections& pend);
  void mid_tick(PendingProjections& pend);
  bool end_tick();

  /// Resolve @p pend against this world's own road (the single-world
  /// path); WorldBatch substitutes a cross-world fused sweep.
  void project_pending(PendingProjections& pend);

  /// Write resolved projections back to their vehicles and empty @p pend.
  static void apply_pending(PendingProjections& pend) noexcept;

  /// Shared tail of construction and reset(): re-derive every piece of
  /// simulation state from config_ alone, allocation-free. Fresh and reset
  /// worlds are bit-identical because both end in this exact code path.
  void reset_in_place();

  /// The attack config as the engine consumes it (cruise speed synced to
  /// the scenario).
  attack::AttackConfig active_attack_config() const;

  WorldConfig config_;
  std::shared_ptr<const road::Road> road_;  ///< shared or privately owned
  std::shared_ptr<const can::Database> db_;

  msg::PubSubBus msg_bus_;
  can::CanBus can_bus_;

  std::unique_ptr<vehicle::Vehicle> ego_;
  std::unique_ptr<vehicle::Vehicle> lead_;
  std::unique_ptr<vehicle::Vehicle> trailing_;
  std::unique_ptr<vehicle::Vehicle> neighbor_;

  std::unique_ptr<sensors::GpsModel> gps_;
  std::unique_ptr<sensors::CameraLaneModel> camera_;
  std::unique_ptr<sensors::RadarModel> radar_;

  std::unique_ptr<adas::Controls> controls_;
  std::unique_ptr<attack::AttackEngine> attack_engine_;
  std::unique_ptr<panda::PandaSafety> panda_;
  std::unique_ptr<driver::DriverModel> driver_;
  std::unique_ptr<SafetyMonitor> monitor_;
  std::unique_ptr<can::CanParser> gateway_parser_;

  // All four vehicles and the attack engine are always constructed (the
  // shape-invariant layout reset() relies on); these flags say which ones
  // the current scenario actually simulates.
  bool has_trailing_ = false;
  bool has_neighbor_ = false;
  std::uint64_t panda_attach_id_ = 0;  ///< interceptor id while panda_ lives

  // Latest decoded actuator commands at the "car gateway".
  double gateway_accel_cmd_ = 0.0;
  double gateway_steer_cmd_ = 0.0;
  std::uint64_t gateway_rejects_ = 0;
  std::size_t camera_lane_ = 0;  ///< lane the camera is currently locked to

  // Resolved once: gateway decode runs the flat (allocation-free) path.
  can::SignalHandle gateway_steer_sig_;
  can::SignalHandle gateway_accel_sig_;

  // Constant lane geometry, hoisted out of the step loop.
  double lane0_center_ = 0.0;
  double lane1_center_ = 0.0;

  util::Rng env_rng_{0};
  double steer_disturbance_ = 0.0;

  // Benign-fault execution (by value: fixed inline state, so the
  // zero-alloc lifecycle holds with a plan attached). Inert without one.
  fault::FaultInjector fault_injector_;

  // Road queries hoisted in begin_tick at the Ego's pre-step arc length,
  // consumed by mid_tick (they span the projection barrier between the
  // two phases).
  double tick_curvature_ = 0.0;
  double tick_heading_ = 0.0;

  double time_ = 0.0;
  std::uint64_t step_index_ = 0;
  bool finished_ = false;
  bool ran_ = false;  ///< run() consumed; reset() re-arms
  bool driver_was_engaged_ = false;
  std::uint64_t last_alert_events_ = 0;
  bool alert_seen_before_hazard_ = false;
};

}  // namespace scaa::sim
