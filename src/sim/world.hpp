#pragma once

/// @file world.hpp
/// The closed-loop simulation world (paper Fig. 5): CARLA-substitute
/// physics + OpenPilot-substitute ADAS + driver reaction simulator +
/// attack/fault-injection engine, stepped at 100 Hz for 50 s.

#include <memory>
#include <optional>
#include <span>

#include "adas/controls.hpp"
#include "attack/engine.hpp"
#include "can/bus.hpp"
#include "can/database.hpp"
#include "can/packer.hpp"
#include "driver/driver_model.hpp"
#include "msg/bus.hpp"
#include "panda/safety.hpp"
#include "road/builder.hpp"
#include "sensors/camera.hpp"
#include "sensors/gps.hpp"
#include "sensors/radar.hpp"
#include "sim/hazard.hpp"
#include "sim/scenario.hpp"
#include "sim/trace.hpp"
#include "vehicle/vehicle.hpp"

namespace scaa::sim {

/// Physical disturbances acting on the Ego (road crown, crosswind,
/// steering stiction) — the execution-side imperfection that, together
/// with perception error, produces the paper's imperfect lane centering.
struct EnvironmentConfig {
  double steer_disturbance_std = 0.0045; ///< [rad] ~0.26 deg stationary std
  double steer_disturbance_tc = 3.0;     ///< [s] OU correlation time
};

/// Everything configurable about one simulation run.
struct WorldConfig {
  Scenario scenario;
  EnvironmentConfig environment;
  bool attack_enabled = false;
  attack::AttackConfig attack;
  bool driver_enabled = true;
  bool panda_enforced = false;  ///< paper: bypassed in the CARLA rig
  std::uint64_t seed = 1;
  double duration = 50.0;  ///< [s] 5000 steps
  double dt = 0.01;        ///< [s] 100 Hz

  /// Immutable world assets, shareable across many Worlds. Campaigns build
  /// the road and DBC once and hand the same instances to thousands of
  /// simulations; when null, the World builds its own private copies.
  std::shared_ptr<const road::Road> road;
  std::shared_ptr<const can::Database> db;

  vehicle::VehicleParams ego_params;
  adas::ControlsConfig controls;
  sensors::GpsConfig gps;
  sensors::CameraConfig camera;
  sensors::RadarConfig radar;
  driver::DriverConfig driver;
  SafetyMonitorConfig monitor;
};

/// Outcome summary of one simulation (the unit the campaign aggregates).
struct SimulationSummary {
  // hazards
  bool any_hazard = false;
  attack::HazardClass first_hazard = attack::HazardClass::kNone;
  double first_hazard_time = -1.0;
  bool hazard_h1 = false, hazard_h2 = false, hazard_h3 = false;
  double hazard_h1_time = -1.0, hazard_h2_time = -1.0, hazard_h3_time = -1.0;
  // accidents
  bool any_accident = false;
  AccidentClass first_accident = AccidentClass::kNone;
  double first_accident_time = -1.0;
  bool accident_a1 = false, accident_a2 = false, accident_a3 = false;
  // alerts
  std::uint64_t alert_events = 0;
  std::uint64_t steer_saturated_events = 0;
  std::uint64_t fcw_events = 0;
  bool alert_before_hazard = false;  ///< an alert preceded the first hazard
  // lane invasions
  std::uint64_t lane_invasions = 0;
  double lane_invasion_rate = 0.0;  ///< events per second
  // attack
  bool attack_activated = false;
  double attack_start = -1.0;
  double attack_duration = 0.0;  ///< [s] total time the attack was live
  double tth = -1.0;  ///< first hazard time - attack start; <0 when n/a
  std::uint64_t frames_corrupted = 0;
  // driver
  bool driver_engaged = false;
  double driver_engage_time = -1.0;
  double driver_perception_time = -1.0;
  // bookkeeping
  double sim_end_time = 0.0;
  std::uint64_t can_checksum_rejects = 0;
  std::uint64_t panda_frames_blocked = 0;  ///< only when panda_enforced
};

/// The world. Construct, then run() once. One world = one simulation;
/// campaigns create many worlds (cheap: everything is in-process).
class World {
 public:
  explicit World(WorldConfig config);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Run to completion (or first accident). Pass a trace to record steps.
  SimulationSummary run(Trace* trace = nullptr);

  /// Advance a single step; returns false when the simulation is over.
  /// (Exposed for incremental inspection in tests/examples.)
  bool step();

  /// --- state access (valid between construction and end of run) ---
  double time() const noexcept { return time_; }
  const vehicle::VehicleState& ego_state() const noexcept;
  const road::Road& road() const noexcept { return *road_; }
  const SafetyMonitor& monitor() const noexcept { return *monitor_; }
  const adas::Controls& controls() const noexcept { return *controls_; }
  const attack::AttackEngine* attack_engine() const noexcept {
    return attack_engine_.get();
  }
  const driver::DriverModel& driver_model() const noexcept { return *driver_; }

  /// Summary from the current state (final after run()).
  SimulationSummary summarize() const;

  /// The in-process messaging bus — exposed because it IS the attack
  /// surface: anything may subscribe (see examples/eavesdropper.cpp).
  msg::PubSubBus& message_bus() noexcept { return msg_bus_; }

  /// The CAN bus, likewise exposed for taps/interceptors.
  can::CanBus& can() noexcept { return can_bus_; }

  /// The DBC database of the simulated car.
  const can::Database& dbc() const noexcept { return *db_; }

 private:
  void step_traffic();
  void publish_sensors(double road_curvature, double road_heading);
  vehicle::ActuatorCommand receive_actuator_commands();
  void record(Trace* trace, const vehicle::ActuatorCommand& cmd);

  /// Complete the integrate() half-steps of @p vehicles: project all their
  /// poses onto the road reference in one batched SoA sweep and write the
  /// Frenet results back. Called once per tick for the traffic batch and
  /// once for the Ego (whose command is only known mid-tick).
  void project_vehicles(std::span<vehicle::Vehicle* const> vehicles);

  WorldConfig config_;
  std::shared_ptr<const road::Road> road_;  ///< shared or privately owned
  std::shared_ptr<const can::Database> db_;

  msg::PubSubBus msg_bus_;
  can::CanBus can_bus_;

  std::unique_ptr<vehicle::Vehicle> ego_;
  std::unique_ptr<vehicle::Vehicle> lead_;
  std::unique_ptr<vehicle::Vehicle> trailing_;
  std::unique_ptr<vehicle::Vehicle> neighbor_;

  std::unique_ptr<sensors::GpsModel> gps_;
  std::unique_ptr<sensors::CameraLaneModel> camera_;
  std::unique_ptr<sensors::RadarModel> radar_;

  std::unique_ptr<adas::Controls> controls_;
  std::unique_ptr<attack::AttackEngine> attack_engine_;
  std::unique_ptr<panda::PandaSafety> panda_;
  std::unique_ptr<driver::DriverModel> driver_;
  std::unique_ptr<SafetyMonitor> monitor_;
  std::unique_ptr<can::CanParser> gateway_parser_;

  // Latest decoded actuator commands at the "car gateway".
  double gateway_accel_cmd_ = 0.0;
  double gateway_steer_cmd_ = 0.0;
  std::uint64_t gateway_rejects_ = 0;
  std::size_t camera_lane_ = 0;  ///< lane the camera is currently locked to

  // Resolved once: gateway decode runs the flat (allocation-free) path.
  can::SignalHandle gateway_steer_sig_;
  can::SignalHandle gateway_accel_sig_;

  // Constant lane geometry, hoisted out of the step loop.
  double lane0_center_ = 0.0;
  double lane1_center_ = 0.0;

  util::Rng env_rng_{0};
  double steer_disturbance_ = 0.0;

  double time_ = 0.0;
  std::uint64_t step_index_ = 0;
  bool finished_ = false;
  bool driver_was_engaged_ = false;
  std::uint64_t last_alert_events_ = 0;
  bool alert_seen_before_hazard_ = false;
};

}  // namespace scaa::sim
