#pragma once

/// @file world_batch.hpp
/// Lockstep stepping of K resident Worlds with fused projection sweeps.
///
/// World::step() decomposes into begin_tick -> project -> mid_tick ->
/// project -> end_tick. A WorldBatch interleaves those phases across all
/// its member worlds, gathering every pending Frenet query of a phase into
/// shared SoA spans so each tick issues ONE Polyline::project_many call per
/// phase for the whole batch (up to 4*K points) instead of 2*K small ones.
/// Campaign arenas run one batch per worker; per-world results are
/// bit-identical to stepping each world alone, because the fused sweep
/// computes exactly the same projections in the same order per world.

#include <cstddef>
#include <vector>

#include "sim/world.hpp"

namespace scaa::sim {

class WorldBatch {
 public:
  /// Enroll @p world (not owned; must outlive the batch or be removed via
  /// clear()). All members must share one road instance — the fused sweep
  /// projects against a single polyline. Throws std::invalid_argument on a
  /// road mismatch.
  void add(World* world);

  /// Drop all members (capacity retained for the next batch).
  void clear() noexcept;

  std::size_t size() const noexcept { return worlds_.size(); }

  /// Advance every unfinished member by one tick, in lockstep.
  /// Returns the number of worlds still running afterwards.
  std::size_t step();

  /// Step until every member is finished.
  void run_all();

  bool all_finished() const noexcept;

 private:
  /// Resolve the queued projections of every unfinished world in one
  /// fused sweep and write them back.
  void flush();

  const road::Road* road_ = nullptr;
  std::vector<World*> worlds_;
  std::vector<World::PendingProjections> pending_;
  // Gather/scatter scratch, reused across ticks (allocation-free in
  // steady state).
  std::vector<geom::Vec2> points_;
  std::vector<double> hints_;
  std::vector<geom::Polyline::Projection> projections_;
};

}  // namespace scaa::sim
