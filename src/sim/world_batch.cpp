#include "sim/world_batch.hpp"

#include <stdexcept>

namespace scaa::sim {

void WorldBatch::add(World* world) {
  if (world == nullptr)
    throw std::invalid_argument("WorldBatch::add: null world");
  const road::Road* road = &world->road();
  if (road_ == nullptr) {
    road_ = road;
  } else if (road_ != road) {
    throw std::invalid_argument(
        "WorldBatch::add: all worlds in a batch must share one road "
        "instance (the fused sweep projects against a single polyline)");
  }
  worlds_.push_back(world);
  pending_.emplace_back();
  const std::size_t cap =
      worlds_.size() * World::PendingProjections::kMaxVehicles;
  points_.reserve(cap);
  hints_.reserve(cap);
  projections_.reserve(cap);
}

void WorldBatch::clear() noexcept {
  worlds_.clear();
  pending_.clear();
  road_ = nullptr;
}

bool WorldBatch::all_finished() const noexcept {
  for (const World* w : worlds_)
    if (!w->finished()) return false;
  return true;
}

void WorldBatch::flush() {
  points_.clear();
  hints_.clear();
  for (std::size_t i = 0; i < worlds_.size(); ++i) {
    const World::PendingProjections& pend = pending_[i];
    for (std::size_t j = 0; j < pend.count; ++j) {
      points_.push_back(pend.points[j]);
      hints_.push_back(pend.hints[j]);
    }
  }
  if (points_.empty()) return;
  projections_.resize(points_.size());
  road_->project_many({points_.data(), points_.size()},
                      {hints_.data(), hints_.size()},
                      {projections_.data(), projections_.size()});
  std::size_t k = 0;
  for (std::size_t i = 0; i < worlds_.size(); ++i) {
    World::PendingProjections& pend = pending_[i];
    for (std::size_t j = 0; j < pend.count; ++j)
      pend.projections[j] = projections_[k++];
    World::apply_pending(pend);
  }
}

std::size_t WorldBatch::step() {
  // Phase interleave: every unfinished world queues its traffic sweep,
  // one fused projection resolves them all; same again for the Ego sweep;
  // then the monitors run. finished() is only updated by end_tick, so the
  // participation set is stable across the three phases of a tick.
  for (std::size_t i = 0; i < worlds_.size(); ++i)
    if (!worlds_[i]->finished()) worlds_[i]->begin_tick(pending_[i]);
  flush();
  for (std::size_t i = 0; i < worlds_.size(); ++i)
    if (!worlds_[i]->finished()) worlds_[i]->mid_tick(pending_[i]);
  flush();
  std::size_t running = 0;
  for (std::size_t i = 0; i < worlds_.size(); ++i)
    if (!worlds_[i]->finished() && worlds_[i]->end_tick()) ++running;
  return running;
}

void WorldBatch::run_all() {
  while (step() > 0) {
  }
}

}  // namespace scaa::sim
