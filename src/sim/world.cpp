#include "sim/world.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "util/math.hpp"
#include "util/units.hpp"

namespace scaa::sim {

namespace {

/// Lane-tracking steering for scripted (non-ADAS) traffic: curvature
/// feed-forward plus P on lateral offset and heading error. These vehicles
/// are ideal drivers — all interesting imperfection lives in the Ego stack.
/// The segment hint (each vehicle's cached Frenet segment) turns the two
/// road queries into O(1) walks; the result is bit-identical to the
/// unhinted lookup for any hint.
double tracking_steer(const road::Road& road,
                      const vehicle::VehicleState& state,
                      double lane_center_d, double wheelbase,
                      std::size_t segment_hint) {
  const double kp_offset = 0.015;
  const double kp_heading = 0.8;
  const double road_heading = road.heading_at(state.s, segment_hint);
  const double heading_err =
      math::wrap_angle(road_heading - state.pose.heading);
  const double curvature = road.curvature_at(state.s, segment_hint) +
                           kp_offset * (lane_center_d - state.d) +
                           kp_heading * heading_err * 0.05;
  return std::atan(wheelbase * curvature);
}

/// Speed-profile acceleration for the scripted lead.
double lead_accel(const LeadProfile& profile, double time, double speed) {
  const double target =
      time < profile.change_start ? profile.initial_speed : profile.target_speed;
  const double err = target - speed;
  return math::clamp(2.0 * err, -profile.change_rate, profile.change_rate);
}

/// Trailing-traffic car-following law (attentive human: tighter headway
/// than ACC, harder braking authority).
double trailing_accel(double gap, double own_speed, double ego_speed) {
  const double desired_gap = 4.0 + 1.5 * own_speed;
  const double accel =
      0.15 * (gap - desired_gap) + 0.8 * (ego_speed - own_speed);
  return math::clamp(accel, -8.0, 2.0);
}

}  // namespace

World::World(WorldConfig config)
    : config_(std::move(config)),
      road_(config_.road ? config_.road
                         : std::make_shared<const road::Road>(
                               road::RoadBuilder::paper_road())),
      db_(config_.db ? config_.db
                     : std::make_shared<const can::Database>(
                           can::Database::simulated_car())) {
  // Construction only allocates and wires; all simulation state comes from
  // reset_in_place() below, the same code path reset() runs — which is what
  // makes a reset World bit-identical to a fresh one.
  //
  // The layout is shape-invariant: every vehicle and the attack engine are
  // always constructed, whatever the scenario/attack flags say, so reset()
  // can re-target this instance to any campaign item without touching the
  // heap. Placement arguments here are placeholders.
  const road::Road& road = *road_;
  const can::Database& db = *db_;

  // --- actors -----------------------------------------------------------
  ego_ = std::make_unique<vehicle::Vehicle>(road, config_.ego_params, 0.0,
                                            0.0, 0.0);
  lead_ = std::make_unique<vehicle::Vehicle>(road, config_.ego_params, 0.0,
                                             0.0, 0.0);
  trailing_ = std::make_unique<vehicle::Vehicle>(road, config_.ego_params,
                                                 0.0, 0.0, 0.0);
  neighbor_ = std::make_unique<vehicle::Vehicle>(road, config_.ego_params,
                                                 0.0, 0.0, 0.0);

  // --- sensors -----------------------------------------------------------
  gps_ = std::make_unique<sensors::GpsModel>(msg_bus_, config_.gps,
                                             util::Rng(0));
  camera_ = std::make_unique<sensors::CameraLaneModel>(
      msg_bus_, road, config_.camera, util::Rng(0));
  radar_ = std::make_unique<sensors::RadarModel>(msg_bus_, config_.radar,
                                                 util::Rng(0));

  // --- benign-fault hooks -------------------------------------------------
  // Wiring only (like taps, it survives reset); the injector self-gates,
  // and the bus additionally skips its hook entirely for plan-free runs.
  can_bus_.set_fault_hook([this](can::CanFrame& frame) {
    return fault_injector_.on_can_frame(frame);
  });
  gps_->set_fault_hook([this](msg::GpsLocationExternal& fix) {
    return fault_injector_.on_gps(fix);
  });
  camera_->set_fault_hook([this](msg::ModelV2& model) {
    return fault_injector_.on_camera(model);
  });
  radar_->set_fault_hook([this](msg::RadarState& state) {
    return fault_injector_.on_radar(state);
  });

  // --- car gateway: decodes command frames into actuator requests --------
  // Handles resolved here, once; the receiver then decodes every frame
  // through the flat path (no heap, no string keys) at 100 Hz.
  gateway_parser_ = std::make_unique<can::CanParser>(db);
  gateway_steer_sig_ =
      db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd);
  gateway_accel_sig_ =
      db.signal_handle("GAS_BRAKE_COMMAND", can::sig::kAccelCmd);
  can_bus_.attach_receiver([this](const can::CanFrame& frame) {
    const auto* parsed = gateway_parser_->parse_flat(frame);
    if (parsed == nullptr) return;
    if (!parsed->checksum_ok) {
      ++gateway_rejects_;
      return;  // the actuator ECU discards tampered frames
    }
    if (frame.id == can::msg_id::kSteeringControl) {
      gateway_steer_cmd_ =
          units::deg_to_rad(parsed->values[gateway_steer_sig_.signal]);
    } else if (frame.id == can::msg_id::kGasBrakeCommand) {
      gateway_accel_cmd_ = parsed->values[gateway_accel_sig_.signal];
    }
  });

  // --- attack engine (interceptor attaches before... see note below) -----
  // CanBus runs interceptors in attachment order; attaching the attacker
  // here places it between the ADAS (sender) and the gateway (receiver),
  // i.e. at the OBD-II position, after OpenPilot's in-process checks.
  // Always attached: with the attack disabled the engine never steps and
  // its interceptor passes every frame through untouched.
  attack_engine_ = std::make_unique<attack::AttackEngine>(
      active_attack_config(), msg_bus_, can_bus_, db,
      config_.ego_params.half_width(), util::Rng(0));

  // --- optional Panda firmware enforcement --------------------------------
  // The paper's CARLA rig bypasses Panda; enable panda_enforced to study
  // what the firmware checks would have blocked. Attached after the
  // attacker, it polices the frames the actuators actually receive.
  if (config_.panda_enforced) {
    panda_ = std::make_unique<panda::PandaSafety>(db, panda::PandaLimits{});
    panda_attach_id_ = panda_->attach(can_bus_);
  }

  // --- ADAS ----------------------------------------------------------------
  adas::ControlsConfig cc = config_.controls;
  cc.cruise_speed = config_.scenario.cruise_speed;
  controls_ = std::make_unique<adas::Controls>(msg_bus_, can_bus_, db, cc,
                                               config_.ego_params,
                                               util::Rng(0));

  // --- driver & monitor ----------------------------------------------------
  driver_ = std::make_unique<driver::DriverModel>(
      config_.driver, config_.ego_params.wheelbase);
  monitor_ = std::make_unique<SafetyMonitor>(road, config_.monitor,
                                             /*ego_lane=*/0);

  reset_in_place();
}

World::~World() = default;

attack::AttackConfig World::active_attack_config() const {
  attack::AttackConfig atk = config_.attack;
  atk.cruise_speed = config_.scenario.cruise_speed;
  return atk;
}

void World::reset(const WorldConfig& config) {
  if (config.db && config.db != db_) {
    throw std::invalid_argument(
        "World::reset: the CAN database must stay the same instance across "
        "reset (codec handles and bus wiring are resolved against it); "
        "pass a null db to keep the current one");
  }
  std::shared_ptr<const road::Road> road = config.road ? config.road : road_;
  std::shared_ptr<const can::Database> db = db_;
  config_ = config;
  road_ = std::move(road);
  db_ = std::move(db);

  // Panda is the one genuinely optional node: toggle its interceptor to
  // match the new config (the only reset path that may touch the heap).
  if (config_.panda_enforced && !panda_) {
    panda_ = std::make_unique<panda::PandaSafety>(*db_, panda::PandaLimits{});
    panda_attach_id_ = panda_->attach(can_bus_);
  } else if (!config_.panda_enforced && panda_) {
    can_bus_.detach(panda_attach_id_);
    panda_attach_id_ = 0;
    panda_.reset();
  }

  reset_in_place();
}

void World::reset_in_place() {
  const road::Road& road = *road_;
  const auto& profile = road.profile();
  lane0_center_ = profile.lane_center(0);
  lane1_center_ = profile.lane_center(1);
  util::Rng rng(config_.seed);

  // --- actors -----------------------------------------------------------
  // Ego starts in the right lane (lane 0, nearer the right guardrail).
  const double ego_s0 = 30.0;
  ego_->reset(road, config_.ego_params, ego_s0, lane0_center_,
              config_.scenario.ego_speed);

  const vehicle::VehicleParams traffic_params = config_.ego_params;
  const double lead_s0 = ego_s0 + config_.scenario.initial_gap +
                         config_.ego_params.length;  // bumper gap -> centers
  lead_->reset(road, traffic_params, lead_s0, lane0_center_,
               config_.scenario.lead.initial_speed);

  has_trailing_ = config_.scenario.with_trailing;
  has_neighbor_ = config_.scenario.with_neighbor;
  trailing_->reset(
      road, traffic_params,
      ego_s0 - config_.scenario.trailing_gap - config_.ego_params.length,
      lane0_center_, config_.scenario.ego_speed);
  neighbor_->reset(road, traffic_params,
                   ego_s0 + config_.scenario.neighbor_offset, lane1_center_,
                   config_.scenario.ego_speed);

  // --- buses --------------------------------------------------------------
  // Sequence/frame counters restart; subscriptions, taps, interceptors and
  // the gateway receiver keep their wiring (the eavesdropping surface).
  msg_bus_.reset();
  can_bus_.reset_counters();

  // --- sensors ------------------------------------------------------------
  gps_->reset(config_.gps, rng.fork(11));
  camera_->reset(road, config_.camera, rng.fork(12));
  radar_->reset(config_.radar, rng.fork(13));

  // --- car gateway --------------------------------------------------------
  gateway_parser_->reset();
  gateway_accel_cmd_ = 0.0;
  gateway_steer_cmd_ = 0.0;
  gateway_rejects_ = 0;
  camera_lane_ = 0;

  // --- attack engine & Panda ---------------------------------------------
  attack_engine_->reset(active_attack_config(),
                        config_.ego_params.half_width(), rng.fork(14));
  if (panda_) panda_->reset();

  // --- ADAS ---------------------------------------------------------------
  adas::ControlsConfig cc = config_.controls;
  cc.cruise_speed = config_.scenario.cruise_speed;
  controls_->reset(*db_, cc, config_.ego_params, rng.fork(16));

  // --- environment disturbance stream --------------------------------------
  env_rng_ = rng.fork(15);
  steer_disturbance_ = 0.0;

  // --- benign-fault injection ----------------------------------------------
  // Stream 17 (next free id after controls = 16) is forked unconditionally:
  // fork() is const on the parent, so a plan-free world draws exactly the
  // streams it did before the fault layer existed — baseline bit-identity
  // is structural.
  fault_injector_.reset(config_.fault_plan, rng.fork(17));
  can_bus_.set_fault_active(fault_injector_.active());

  // --- driver & monitor ----------------------------------------------------
  *driver_ = driver::DriverModel(config_.driver, config_.ego_params.wheelbase);
  *monitor_ = SafetyMonitor(road, config_.monitor, /*ego_lane=*/0);

  // --- tick bookkeeping -----------------------------------------------------
  tick_curvature_ = 0.0;
  tick_heading_ = 0.0;
  time_ = 0.0;
  step_index_ = 0;
  finished_ = false;
  ran_ = false;
  driver_was_engaged_ = false;
  last_alert_events_ = 0;
  alert_seen_before_hazard_ = false;
}

const vehicle::VehicleState& World::ego_state() const noexcept {
  return ego_->state();
}

void World::apply_pending(PendingProjections& pend) noexcept {
  for (std::size_t i = 0; i < pend.count; ++i)
    pend.vehicles[i]->apply_projection(pend.projections[i]);
  pend.count = 0;
}

void World::project_pending(PendingProjections& pend) {
  road_->project_many({pend.points.data(), pend.count},
                      {pend.hints.data(), pend.count},
                      {pend.projections.data(), pend.count});
  apply_pending(pend);
}

void World::begin_tick(PendingProjections& pend) {
  // Road queries at the Ego's (pre-step) arc length, looked up once per
  // tick and shared by the camera model and the driver observation in
  // mid_tick (hinted by the Ego's cached Frenet segment, so each is an
  // O(1) walk instead of a fresh segment search).
  const double ego_s = ego_->state().s;
  const std::size_t ego_seg = ego_->frenet_segment();
  tick_curvature_ = road_->curvature_at(ego_s, ego_seg);
  tick_heading_ = road_->heading_at(ego_s, ego_seg);

  const double dt = config_.dt;
  const road::Road& road = *road_;
  const auto wheelbase = config_.ego_params.wheelbase;

  // Every command below reads only pre-step state (the trailing and
  // neighbor laws follow the Ego, which steps later in the tick), so the
  // traffic integrates first and the tick's Frenet refresh happens as one
  // batched projection sweep.
  {
    vehicle::ActuatorCommand cmd;
    cmd.accel = lead_accel(config_.scenario.lead, time_, lead_->state().speed);
    cmd.steer_angle = tracking_steer(road, lead_->state(), lane0_center_,
                                     wheelbase, lead_->frenet_segment());
    lead_->integrate(cmd, dt);
    pend.add(lead_.get());
  }
  if (has_trailing_) {
    const double gap =
        vehicle::bumper_gap(trailing_->state(), trailing_->params(),
                            ego_->state(), ego_->params());
    vehicle::ActuatorCommand cmd;
    cmd.accel =
        trailing_accel(gap, trailing_->state().speed, ego_->state().speed);
    cmd.steer_angle = tracking_steer(road, trailing_->state(), lane0_center_,
                                     wheelbase, trailing_->frenet_segment());
    trailing_->integrate(cmd, dt);
    pend.add(trailing_.get());
  }
  if (has_neighbor_) {
    // The neighbor moves with the flow around the Ego (platooning traffic),
    // holding its initial longitudinal offset — so the left lane stays
    // occupied when a steering attack pushes the Ego into it.
    const double desired_s =
        ego_->state().s + config_.scenario.neighbor_offset;
    vehicle::ActuatorCommand cmd;
    cmd.accel = math::clamp(
        0.6 * (ego_->state().speed - neighbor_->state().speed) +
            0.05 * (desired_s - neighbor_->state().s),
        -4.0, 2.0);
    cmd.steer_angle = tracking_steer(road, neighbor_->state(), lane1_center_,
                                     wheelbase, neighbor_->frenet_segment());
    neighbor_->integrate(cmd, dt);
    pend.add(neighbor_.get());
  }
}

void World::publish_sensors(double road_curvature, double road_heading) {
  const auto& ego = ego_->state();
  gps_->step(step_index_, ego);

  // The camera anchors to whatever lane the car currently occupies (lane
  // re-lock after a departure), holding the last lane when off-road. Road
  // queries at the Ego's arc length are hoisted by the caller.
  const int lane_now = road_->lane_at(ego.d);
  if (lane_now >= 0) camera_lane_ = static_cast<std::size_t>(lane_now);
  camera_->step(step_index_, ego, camera_lane_,
                {road_curvature, road_heading});

  std::optional<sensors::RadarModel::LeadTruth> lead_truth;
  if (lead_) {
    sensors::RadarModel::LeadTruth t;
    t.gap = vehicle::bumper_gap(ego, ego_->params(), lead_->state(),
                                lead_->params());
    t.rel_speed = lead_->state().speed - ego.speed;
    t.lead_speed = lead_->state().speed;
    t.lateral_offset = lead_->state().d - ego.d;
    lead_truth = t;
  }
  radar_->step(step_index_, lead_truth);

  msg::CarState cs;
  cs.mono_time = step_index_;
  cs.speed = ego.speed;
  cs.accel = ego.accel;
  cs.steer_angle = ego.steer_angle;
  cs.cruise_speed = config_.scenario.cruise_speed;
  cs.cruise_enabled = controls_ ? controls_->engaged() : true;
  msg_bus_.publish(cs);
}

void World::mid_tick(PendingProjections& pend) {
  // Benign-fault phase: stamp the tick time for activation windows and
  // deliver CAN frames whose injected delay expires this tick — before the
  // sensors publish and the ECU steps, so a frame delayed N ticks is seen
  // exactly N ticks late by every consumer. Gated: plan-free worlds take
  // their historical path untouched.
  if (fault_injector_.active()) {
    fault_injector_.begin_tick(time_);
    can_bus_.pump_delayed(step_index_);
  }

  publish_sensors(tick_curvature_, tick_heading_);

  if (config_.attack_enabled) attack_engine_->step(time_, config_.dt);

  // An ECU stall fault silences the controls for this tick: no planner
  // update, no command frames on the bus (the gateway holds its last
  // actuator values — exactly what a real stalled ECU looks like).
  if (!fault_injector_.ecu_stalled()) controls_->step(step_index_, config_.dt);

  // Driver observation & possible takeover. The driver judges the commands
  // the car is executing (pedal/wheel positions) and the physical motion.
  driver::DriverObservation obs;
  obs.adas_alert = controls_->alerts().any_active();
  obs.accel_cmd = gateway_accel_cmd_;
  obs.steer_cmd = gateway_steer_cmd_;
  obs.nominal_steer =
      std::atan(config_.ego_params.wheelbase * tick_curvature_);
  obs.speed = ego_->state().speed;
  obs.cruise_speed = config_.scenario.cruise_speed;
  obs.center_offset = ego_->state().d - lane0_center_;
  obs.heading_error =
      math::wrap_angle(tick_heading_ - ego_->state().pose.heading);
  obs.road_curvature = tick_curvature_;
  if (lead_) {
    const double gap = vehicle::bumper_gap(ego_->state(), ego_->params(),
                                           lead_->state(), lead_->params());
    obs.lead_visible = gap > 0.0 && gap < 150.0;
    obs.lead_gap = gap;
    obs.lead_rel_speed = lead_->state().speed - ego_->state().speed;
  }

  std::optional<vehicle::ActuatorCommand> driver_cmd;
  if (config_.driver_enabled)
    driver_cmd = driver_->step(obs, time_, config_.dt);

  if (driver_->engaged() && !driver_was_engaged_) {
    driver_was_engaged_ = true;
    if (config_.attack_enabled) attack_engine_->notify_driver_engaged(time_);
    controls_->set_engaged(false);
  }

  // Physical steering disturbance (Ornstein-Uhlenbeck): road crown and
  // crosswind act on whoever is steering, ADAS or human.
  {
    const double tc = config_.environment.steer_disturbance_tc;
    const double sd = config_.environment.steer_disturbance_std;
    const double theta = 1.0 / tc;
    steer_disturbance_ +=
        -theta * steer_disturbance_ * config_.dt +
        env_rng_.gaussian(0.0, sd * std::sqrt(2.0 * theta * config_.dt));
  }

  vehicle::ActuatorCommand ego_cmd{gateway_accel_cmd_, gateway_steer_cmd_};
  if (driver_cmd.has_value()) ego_cmd = *driver_cmd;
  ego_cmd.steer_angle += steer_disturbance_;
  ego_->integrate(ego_cmd, config_.dt);
  pend.add(ego_.get());
}

bool World::end_tick() {
  // Safety monitoring on the post-step state.
  MonitorInputs mi;
  mi.time = time_;
  mi.ego = ego_->state();
  mi.ego_params = &ego_->params();
  if (lead_) {
    mi.lead = lead_->state();
    mi.lead_params = &lead_->params();
  }
  if (has_trailing_) {
    mi.trailing = trailing_->state();
    mi.trailing_params = &trailing_->params();
  }
  if (has_neighbor_) {
    mi.neighbor = neighbor_->state();
    mi.neighbor_params = &neighbor_->params();
  }
  mi.cruise_speed = config_.scenario.cruise_speed;
  const bool terminal_accident = monitor_->update(mi);

  // Alert-before-hazard bookkeeping.
  const std::uint64_t alert_events = controls_->alerts().total_events();
  if (alert_events > last_alert_events_ && !monitor_->any_hazard())
    alert_seen_before_hazard_ = true;
  last_alert_events_ = alert_events;

  time_ += config_.dt;
  ++step_index_;
  if (terminal_accident || time_ >= config_.duration) finished_ = true;
  return !finished_;
}

bool World::step() {
  if (finished_) return false;
  PendingProjections pend;
  begin_tick(pend);
  project_pending(pend);
  mid_tick(pend);
  project_pending(pend);
  return end_tick();
}

void World::record(Trace* trace, const vehicle::ActuatorCommand& cmd) {
  if (trace == nullptr) return;
  const auto& profile = road_->profile();
  TraceRow row;
  row.time = time_;
  row.ego_s = ego_->state().s;
  row.ego_d = ego_->state().d;
  row.ego_speed = ego_->state().speed;
  row.ego_accel = ego_->state().accel;
  row.ego_steer = ego_->state().steer_angle;
  row.lane_center = profile.lane_center(0);
  row.lane_left = profile.lane_left_edge(0);
  row.lane_right = profile.lane_right_edge(0);
  row.lead_gap = lead_ ? vehicle::bumper_gap(ego_->state(), ego_->params(),
                                             lead_->state(), lead_->params())
                       : -1.0;
  row.accel_cmd = cmd.accel;
  row.steer_cmd = cmd.steer_angle;
  row.attack_active =
      config_.attack_enabled && attack_engine_->stats().active_now;
  row.alert_active = controls_->alerts().any_active();
  row.driver_engaged = driver_->engaged();
  trace->add(row);
}

SimulationSummary World::run(Trace* trace) {
  if (ran_) {
    throw std::logic_error(
        "World::run: this world already ran; call reset() to re-arm it "
        "before running again");
  }
  ran_ = true;
  if (trace != nullptr)
    trace->reserve(static_cast<std::size_t>(config_.duration / config_.dt) + 1);
  while (true) {
    const bool more = step();
    record(trace, {gateway_accel_cmd_, gateway_steer_cmd_});
    if (!more) break;
  }
  return summarize();
}

SimulationSummary World::summarize() const {
  using attack::HazardClass;
  SimulationSummary s;
  s.any_hazard = monitor_->any_hazard();
  s.first_hazard = monitor_->first_hazard();
  s.first_hazard_time = monitor_->first_hazard_time();
  s.hazard_h1 = monitor_->hazard_occurred(HazardClass::kH1);
  s.hazard_h2 = monitor_->hazard_occurred(HazardClass::kH2);
  s.hazard_h3 = monitor_->hazard_occurred(HazardClass::kH3);
  s.hazard_h1_time = monitor_->hazard_time(HazardClass::kH1);
  s.hazard_h2_time = monitor_->hazard_time(HazardClass::kH2);
  s.hazard_h3_time = monitor_->hazard_time(HazardClass::kH3);

  s.any_accident = monitor_->any_accident();
  s.first_accident = monitor_->first_accident();
  s.first_accident_time = monitor_->first_accident_time();
  s.accident_a1 = monitor_->accident_occurred(AccidentClass::kA1LeadCollision);
  s.accident_a2 = monitor_->accident_occurred(AccidentClass::kA2RearEnd);
  s.accident_a3 = monitor_->accident_occurred(AccidentClass::kA3Roadside);

  s.alert_events = controls_->alerts().total_events();
  s.steer_saturated_events = controls_->alerts().steer_saturated_events();
  s.fcw_events = controls_->alerts().fcw_events();
  s.alert_before_hazard = alert_seen_before_hazard_;

  s.lane_invasions = monitor_->lane_invasion_events();
  s.lane_invasion_rate =
      time_ > 0.0 ? static_cast<double>(s.lane_invasions) / time_ : 0.0;

  if (config_.attack_enabled) {
    const auto stats = attack_engine_->stats();
    s.attack_activated = stats.first_activation >= 0.0;
    s.attack_start = stats.first_activation;
    s.attack_duration =
        static_cast<double>(stats.cycles_active) * config_.dt;
    s.frames_corrupted = stats.frames_corrupted;
    if (s.any_hazard && s.attack_activated &&
        s.first_hazard_time >= s.attack_start)
      s.tth = s.first_hazard_time - s.attack_start;
  }

  s.driver_engaged = driver_->engaged();
  s.driver_engage_time = driver_->engage_time();
  s.driver_perception_time = driver_->perception_time();
  s.sim_end_time = time_;
  s.can_checksum_rejects = gateway_rejects_;
  if (panda_) s.panda_frames_blocked = panda_->stats().frames_blocked;

  s.faults_fired = fault_injector_.counters().fired;
  s.faults_suppressed = fault_injector_.counters().suppressed;
  // Delay verdicts the bus degraded to immediate delivery (queue full).
  s.faults_suppressed[fault::fault_index(fault::FaultKind::kCanDelay)] +=
      can_bus_.delay_overflows();
  return s;
}

}  // namespace scaa::sim
