#include "sim/scenario.hpp"

#include <stdexcept>

namespace scaa::sim {

Scenario Scenario::make(int sid, double gap) {
  Scenario s;
  s.id = sid;
  s.initial_gap = gap;
  using units::mph_to_ms;
  switch (sid) {
    case 1:  // lead cruises at 35 mph
      s.lead = {mph_to_ms(35.0), mph_to_ms(35.0), 15.0, 1.0};
      break;
    case 2:  // lead cruises at 50 mph
      s.lead = {mph_to_ms(50.0), mph_to_ms(50.0), 15.0, 1.0};
      break;
    case 3:  // lead slows 50 -> 35 mph
      s.lead = {mph_to_ms(50.0), mph_to_ms(35.0), 15.0, 1.0};
      break;
    case 4:  // lead accelerates 35 -> 50 mph
      s.lead = {mph_to_ms(35.0), mph_to_ms(50.0), 15.0, 1.0};
      break;
    default:
      throw std::invalid_argument("Scenario::make: sid must be 1..4");
  }
  return s;
}

std::string Scenario::name() const {
  // Built via append rather than "S" + to_string(id): the operator+ form
  // trips GCC 12's -Wrestrict false positive (PR 105329) under -O2.
  std::string n = "S";
  n += std::to_string(id);
  return n;
}

}  // namespace scaa::sim
