#include "cli/campaigns.hpp"

#include <chrono>
#include <cmath>
#include <csignal>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include <charconv>
#include <filesystem>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "cli/args.hpp"
#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "exp/param_space.hpp"
#include "exp/realtime.hpp"
#include "exp/shard.hpp"
#include "exp/tables.hpp"
#include "fault/plan.hpp"
#include "geom/polyline.hpp"
#include "msg/bus.hpp"
#include "road/builder.hpp"
#include "sim/world.hpp"
#include "util/mutex.hpp"
#include "util/proc.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"

namespace scaa::cli {

std::vector<geom::Vec2> projection_workload(const geom::Polyline& line,
                                            std::size_t ticks,
                                            std::size_t lanes) {
  std::vector<geom::Vec2> points;
  points.reserve(ticks * lanes);
  util::Rng rng(2022);
  std::vector<double> s(lanes);
  for (std::size_t l = 0; l < lanes; ++l)
    s[l] = 30.0 + 50.0 * static_cast<double>(l);
  for (std::size_t t = 0; t < ticks; ++t) {
    for (std::size_t l = 0; l < lanes; ++l) {
      s[l] += rng.uniform(0.25, 0.35);
      if (s[l] > line.length() - 10.0) s[l] = 30.0;
      const geom::Vec2 normal =
          geom::heading_vector(line.heading_at(s[l])).perp();
      points.push_back(line.position_at(s[l]) +
                       normal * rng.uniform(-3.0, 3.0));
    }
  }
  return points;
}

namespace {

long long ll(std::size_t v) { return static_cast<long long>(v); }

void note(std::ostream* progress, const std::string& line) {
  if (progress) *progress << line << "\n" << std::flush;
}

/// The single options -> CampaignConfig mapping: every campaign entry
/// point goes through here, so a future config knob cannot be wired in one
/// subcommand and silently dropped in another.
exp::CampaignConfig campaign_config(const CampaignOptions& options) {
  exp::CampaignConfig cc;
  cc.threads = options.threads;
  cc.base_seed = options.seed;
  cc.repetitions = options.reps;
  return cc;
}

/// Likewise for the Fig 8 sweep: fig8_report and bench --campaign fig8
/// must time the identical workload.
exp::ParamSpaceConfig fig8_config(const CampaignOptions& options) {
  exp::ParamSpaceConfig cfg;
  cfg.threads = options.threads;
  cfg.base_seed = options.seed;
  cfg.overlay_runs = 20 * options.reps;  // paper: 20 runs per overlay strategy
  return cfg;
}

/// Open the checkpoint for one slice (Checkpoint selects the mode:
/// exp::CampaignCheckpoint for streaming aggregates, exp::ResultsCheckpoint
/// for table5's per-item pairing); null when checkpointing is off. Notes
/// restored progress so a resumed run says where it picks up from.
template <class Checkpoint>
std::unique_ptr<Checkpoint> open_checkpoint(
    const CampaignOptions& options, const std::string& slice,
    const std::vector<exp::CampaignItem>& grid, std::ostream* progress) {
  if (options.checkpoint.empty()) return nullptr;
  auto ckpt = std::make_unique<Checkpoint>(
      slice_checkpoint_file(options.checkpoint, slice,
                            exp::grid_fingerprint(grid)),
      grid, options.resume);
  if (ckpt->completed_items() > 0)
    note(progress, "[" + slice + "] resuming: " +
                       std::to_string(ckpt->completed_items()) + "/" +
                       std::to_string(grid.size()) +
                       " sims restored from checkpoint");
  return ckpt;
}

/// One Table IV strategy with its grid built: the unit table4_report,
/// bench_report, the shard worker, the coordinator, and merge all share,
/// so every mode runs (and fingerprints) the identical experiment.
struct Table4Slice {
  Table4Strategy row;
  std::string name;  ///< slice name, e.g. "table4 Context-Aware"
  std::vector<exp::CampaignItem> grid;
  std::uint64_t fingerprint = 0;
};

/// Build every Table IV slice for @p tag and — when checkpointing — reject
/// slice-file collisions upfront, before any file is opened.
std::vector<Table4Slice> build_table4_slices(const CampaignOptions& options,
                                             const exp::CampaignConfig& cc,
                                             const std::string& tag) {
  std::vector<Table4Slice> slices;
  std::vector<std::pair<std::string, std::uint64_t>> names;
  for (const Table4Strategy& row : table4_strategies()) {
    Table4Slice slice;
    slice.row = row;
    slice.name = tag + " " + to_string(row.kind);
    slice.grid =
        exp::make_grid(row.kind, row.strategic, /*driver_enabled=*/true, cc,
                       options.reps * row.rep_multiplier);
    slice.fingerprint = exp::grid_fingerprint(slice.grid);
    names.emplace_back(slice.name, slice.fingerprint);
    slices.push_back(std::move(slice));
  }
  if (!options.checkpoint.empty())
    reject_slice_file_collisions(options.checkpoint, names);
  return slices;
}

/// Run one Table IV strategy through the streaming runner. The single
/// grid-construction + run path shared by table4_report and bench_report,
/// so the two can never drift apart (bench's aggregate columns double as
/// a seed-for-seed identity check against table4).
struct StrategyRun {
  exp::Aggregate agg;
  double wall_s = 0.0;
  std::size_t fresh_sims = 0;  ///< simulations actually run (not restored)
};

StrategyRun run_table4_slice(const Table4Slice& slice,
                             const CampaignOptions& options,
                             const exp::CampaignConfig& cc,
                             std::ostream* progress) {
  const auto checkpoint = open_checkpoint<exp::CampaignCheckpoint>(
      options, slice.name, slice.grid, progress);
  const auto start = std::chrono::steady_clock::now();
  // Streaming runner: O(threads) live memory instead of one result per
  // simulation, with per-chunk progress while the grid drains.
  StrategyRun run;
  run.fresh_sims =
      slice.grid.size() - (checkpoint ? checkpoint->completed_items() : 0);
  run.agg = exp::run_campaign_streaming(slice.grid, cc,
                                        decile_progress(progress, slice.name),
                                        checkpoint.get());
  run.wall_s = util::seconds_since(start);
  return run;
}

}  // namespace

std::string slice_slug(const std::string& name) {
  std::string slug;
  slug.reserve(name.size());
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      slug += c;
    } else if (c >= 'A' && c <= 'Z') {
      slug += static_cast<char>(c - 'A' + 'a');
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

std::string slice_checkpoint_file(const std::string& stem,
                                  const std::string& slice,
                                  std::uint64_t fingerprint,
                                  std::size_t shard,
                                  std::size_t shard_count) {
  return stem + "." + slice_slug(slice) + "-" +
         exp::short_fingerprint(fingerprint) +
         exp::shard_suffix(shard, shard_count);
}

void reject_slice_file_collisions(
    const std::string& stem,
    const std::vector<std::pair<std::string, std::uint64_t>>& slices) {
  // The shard suffix cannot disambiguate two slices that collide unsharded
  // (every shard index would collide the same way), so checking the
  // unsuffixed path covers every mode.
  std::map<std::string, std::string> seen;  // path -> slice name
  for (const auto& [name, fingerprint] : slices) {
    const std::string path = slice_checkpoint_file(stem, name, fingerprint);
    const auto [it, inserted] = seen.emplace(path, name);
    if (!inserted && it->second != name)
      throw std::runtime_error(
          "checkpoint slice collision: '" + it->second + "' and '" + name +
          "' both map to '" + path +
          "' (identical slug and grid fingerprint); rename one slice or use "
          "a different --checkpoint stem");
  }
}

exp::CampaignProgressFn decile_progress(std::ostream* out,
                                        const std::string& tag) {
  if (out == nullptr) return {};
  // The callback is invoked from campaign worker threads. The streaming
  // runner serializes its progress callbacks, but that is the caller's
  // discipline, not this closure's — so the decile bookkeeping carries its
  // own annotated lock and stays correct under any caller.
  struct DecileState {
    util::Mutex mutex;
    int last_decile SCAA_GUARDED_BY(mutex) = -1;
  };
  auto state = std::make_shared<DecileState>();
  return [out, tag, state](const exp::CampaignProgress& p) {
    if (p.total == 0 || p.completed == 0) return;
    const int decile = static_cast<int>(10 * p.completed / p.total);
    // Print only when a new decile is crossed, and track the latest one so
    // a chunk that crosses several deciles emits a single line. completed
    // == total lands in decile 10, so the 100% line prints exactly once —
    // including for campaigns that finish within one chunk.
    const util::MutexLock lock(state->mutex);
    if (decile <= state->last_decile) return;
    state->last_decile = decile;
    *out << "[" << tag << "] " << p.completed << "/" << p.total << " sims\n"
         << std::flush;
  };
}

const std::vector<Table4Strategy>& table4_strategies() {
  // Paper Table III: Random-ST+DUR uses 10x repetitions (14,400 sims) for
  // parameter-space coverage; every other strategy runs the base grid.
  static const std::vector<Table4Strategy> kStrategies = {
      {attack::StrategyKind::kNone, false, 1},
      {attack::StrategyKind::kRandomStDur, false, 10},
      {attack::StrategyKind::kRandomSt, false, 1},
      {attack::StrategyKind::kRandomDur, false, 1},
      {attack::StrategyKind::kContextAware, true, 1},
  };
  return kStrategies;
}

namespace {

/// The Table IV report shell + row shape, shared by the in-process path,
/// the sharded coordinator, and the merge subcommand: all three emit
/// byte-identical reports because they all go through these two functions
/// with bit-identical aggregates.
Report make_table4_report() {
  return Report("Table IV: attack strategy comparison with an alert driver",
                {"strategy", "simulations", "sims_with_alerts",
                 "sims_with_hazards", "sims_with_accidents",
                 "hazards_without_alerts", "fcw_activations",
                 "lane_invasion_rate_mean", "tth_mean", "tth_std"});
}

void add_table4_row(Report& report, const Table4Strategy& row,
                    const exp::Aggregate& agg) {
  report.add_row({to_string(row.kind), ll(agg.simulations),
                  ll(agg.sims_with_alerts), ll(agg.sims_with_hazards),
                  ll(agg.sims_with_accidents), ll(agg.hazards_without_alerts),
                  ll(agg.fcw_activations), agg.lane_invasion_rate_mean,
                  agg.tth_mean, agg.tth_std});
}

/// The slice checkpoint files of every shard of @p slice, in shard order —
/// the coordinator, the manual worker, and merge must agree on these paths
/// exactly, so there is one place that produces them.
std::vector<std::string> shard_slice_files(const CampaignOptions& options,
                                           const Table4Slice& slice,
                                           std::size_t shard_count) {
  std::vector<std::string> paths;
  paths.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s)
    paths.push_back(slice_checkpoint_file(options.checkpoint, slice.name,
                                          slice.fingerprint, s, shard_count));
  return paths;
}

/// Worker side of the coordinator protocol: run this shard's slice of
/// every strategy into its own checkpoint files, reporting cumulative
/// completed-simulation counts (restored + fresh, across all strategies)
/// through @p on_progress after every chunk.
void run_table4_worker_slices(const std::vector<Table4Slice>& slices,
                              const CampaignOptions& options,
                              const exp::CampaignConfig& cc,
                              std::size_t shard, std::size_t shard_count,
                              const std::function<void(std::size_t)>& on_progress) {
  std::size_t base = 0;  // sims completed in earlier strategies
  for (const Table4Slice& slice : slices) {
    const exp::ShardPlan plan(slice.grid.size(), shard_count);
    const exp::ChunkRange range = plan.chunks_for(shard);
    exp::CampaignCheckpoint checkpoint(
        slice_checkpoint_file(options.checkpoint, slice.name,
                              slice.fingerprint, shard, shard_count),
        slice.grid, options.resume);
    exp::run_campaign_streaming(
        slice.grid, cc,
        [&](const exp::CampaignProgress& p) { on_progress(base + p.completed); },
        &checkpoint, &range);
    base += plan.items_in(shard);
    // A slice that was fully restored (or empty) never fires the progress
    // callback; report the strategy boundary explicitly so the coordinator
    // display still reaches 100%.
    on_progress(base);
  }
}

/// Set by the coordinator's SIGINT/SIGTERM handler, read by the mux loop.
/// sig_atomic_t and a handler that only stores are the whole async-signal
/// contract; everything else happens on the main thread afterwards.
volatile std::sig_atomic_t g_coordinator_signal = 0;

void coordinator_signal_handler(int sig) { g_coordinator_signal = sig; }

/// Scoped SIGINT/SIGTERM forwarding for the sharded coordinator. Without
/// it, killing the coordinator orphans workers that keep running and
/// holding their slice-file flocks, so an immediate `--resume` fails with
/// "another process holds this checkpoint". Handlers are installed without
/// SA_RESTART (poll in LineMux::run must see EINTR and re-check the flag)
/// and the previous dispositions are restored on scope exit, so nested
/// campaign runs (bench's shard-scaling rows) stack cleanly.
class CoordinatorSignalGuard {
 public:
  CoordinatorSignalGuard() {
    g_coordinator_signal = 0;
    struct sigaction action {};
    action.sa_handler = &coordinator_signal_handler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~CoordinatorSignalGuard() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }
  CoordinatorSignalGuard(const CoordinatorSignalGuard&) = delete;
  CoordinatorSignalGuard& operator=(const CoordinatorSignalGuard&) = delete;

  int received() const noexcept {
    return static_cast<int>(g_coordinator_signal);
  }

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

/// Coordinator: fork options.shards workers, multiplex their pipe progress
/// into one decile display, reap, and merge the slice files. The merged
/// aggregates are bit-identical to one in-process run (see exp/shard.hpp).
struct ShardedRun {
  std::vector<exp::Aggregate> aggs;  ///< one per strategy, presentation order
  double wall_s = 0.0;
  std::size_t simulations = 0;
};

ShardedRun run_table4_sharded(const CampaignOptions& options,
                              std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);
  const std::vector<Table4Slice> slices =
      build_table4_slices(options, cc, "table4");
  const std::size_t shard_count = static_cast<std::size_t>(options.shards);

  std::size_t total_items = 0;
  for (const Table4Slice& slice : slices) total_items += slice.grid.size();

  // Each worker gets an equal share of the machine unless --threads pins a
  // per-worker count explicitly.
  exp::CampaignConfig worker_cc = cc;
  if (worker_cc.threads == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    worker_cc.threads = std::max<std::size_t>(1, hw / shard_count);
  }

  const auto start = std::chrono::steady_clock::now();
  if (progress) progress->flush();  // nothing buffered crosses the fork

  // From here until the reap loop below, SIGINT/SIGTERM no longer kill the
  // coordinator outright: the signal is recorded, forwarded to every live
  // worker, and the workers are reaped before we exit — so their slice
  // flocks are released and an immediate `--resume` works.
  CoordinatorSignalGuard signal_guard;

  std::vector<util::ForkedWorker> workers;
  workers.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    workers.push_back(util::fork_worker([&, s](int fd) {
      // The child inherits the coordinator's record-only handler; restore
      // the default disposition so a forwarded SIGINT/SIGTERM actually
      // terminates the worker (its completed chunks are checkpointed).
      ::signal(SIGINT, SIG_DFL);
      ::signal(SIGTERM, SIG_DFL);
      try {
        run_table4_worker_slices(slices, options, worker_cc, s, shard_count,
                                 [fd](std::size_t completed) {
                                   util::write_line(
                                       fd, "P " + std::to_string(completed));
                                 });
        return 0;
      } catch (const std::exception& e) {
        // Straight to fd 2: the child must not touch the parent's buffered
        // streams (a test harness ostringstream would get corrupted).
        util::write_line(2, "[table4 shard " + std::to_string(s + 1) + "/" +
                                std::to_string(shard_count) + "] " + e.what());
        return 1;
      }
    }));
  }

  // One decile display over the whole fleet: workers send absolute
  // cumulative counts, so summing the latest line per worker is exact.
  std::vector<int> fds;
  for (const util::ForkedWorker& w : workers) fds.push_back(w.progress.get());
  std::vector<std::size_t> latest(workers.size(), 0);
  int last_decile = -1;
  util::LineMux mux(fds);
  mux.run([&](std::size_t worker, std::string_view line) {
    if (line.size() < 3 || line.substr(0, 2) != "P ") return;
    std::size_t completed = 0;
    const auto* end = line.data() + line.size();
    if (std::from_chars(line.data() + 2, end, completed).ec != std::errc())
      return;
    latest[worker] = completed;
    std::size_t sum = 0;
    for (const std::size_t c : latest) sum += c;
    if (total_items == 0 || sum == 0) return;
    const int decile = static_cast<int>(10 * sum / total_items);
    if (decile <= last_decile) return;
    last_decile = decile;
    note(progress, "[table4 " + std::to_string(shard_count) + " shards] " +
                       std::to_string(sum) + "/" + std::to_string(total_items) +
                       " sims");
  }, [] { return g_coordinator_signal != 0; });

  // Forward a recorded SIGINT/SIGTERM to every worker before reaping.
  // ESRCH (already exited) is fine — wait_child below still collects it.
  const int received = signal_guard.received();
  if (received != 0)
    for (const util::ForkedWorker& w : workers) ::kill(w.pid, received);

  std::string failures;
  for (std::size_t s = 0; s < workers.size(); ++s) {
    const util::ExitStatus status = util::wait_child(workers[s].pid);
    if (status.ok()) continue;
    if (!failures.empty()) failures += "; ";
    failures += "shard " + std::to_string(s + 1) + "/" +
                std::to_string(shard_count) + " " + status.describe();
  }
  if (received != 0)
    throw std::runtime_error(
        std::string("interrupted by ") +
        (received == SIGINT ? "SIGINT" : "SIGTERM") + ": forwarded to all " +
        std::to_string(workers.size()) +
        " workers and reaped them (slice files are released) — completed "
        "chunks are checkpointed; rerun the same command with --resume to "
        "finish");
  if (!failures.empty())
    throw std::runtime_error(
        failures +
        " — completed chunks are checkpointed; rerun the same command with "
        "--resume to finish, then the report (or `merge`) will be "
        "byte-identical to an uninterrupted run");

  ShardedRun run;
  for (const Table4Slice& slice : slices) {
    run.aggs.push_back(exp::merge_slice_files(
        slice.grid, shard_slice_files(options, slice, shard_count)));
    run.simulations += slice.grid.size();
  }
  run.wall_s = util::seconds_since(start);
  return run;
}

/// Manual worker (--shard i/N): run this slice in-process and summarize
/// what it covered; the real Table IV report comes from `merge` once the
/// whole fleet has finished.
Report table4_shard_worker_report(const CampaignOptions& options,
                                  std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);
  const std::vector<Table4Slice> slices =
      build_table4_slices(options, cc, "table4");
  const auto shard = static_cast<std::size_t>(options.shard_index);
  const auto shard_count = static_cast<std::size_t>(options.shard_count);
  const std::string tag =
      std::to_string(shard + 1) + "/" + std::to_string(shard_count);

  Report report("Table IV shard " + tag + ": slice summary (run `merge` "
                "after all shards finish)",
                {"strategy", "shard", "slice_sims", "slice_chunks",
                 "checkpoint_file"});
  std::size_t slice_total = 0;
  for (const Table4Slice& slice : slices)
    slice_total +=
        exp::ShardPlan(slice.grid.size(), shard_count).items_in(shard);

  // One decile display over this worker's whole slice set, driven by the
  // same cumulative counts a coordinator-forked worker would pipe out.
  const exp::CampaignProgressFn display =
      decile_progress(progress, "table4 shard " + tag);
  run_table4_worker_slices(
      slices, options, cc, shard, shard_count,
      [&](std::size_t completed) {
        if (display) display(exp::CampaignProgress{completed, slice_total});
      });
  for (const Table4Slice& slice : slices) {
    const exp::ShardPlan plan(slice.grid.size(), shard_count);
    report.add_row({to_string(slice.row.kind), tag, ll(plan.items_in(shard)),
                    ll(plan.chunks_for(shard).chunk_count()),
                    slice_checkpoint_file(options.checkpoint, slice.name,
                                          slice.fingerprint, shard,
                                          shard_count)});
  }
  note(progress, "[table4 shard " + tag + "] slice complete: " +
                     std::to_string(slice_total) + " sims checkpointed");
  return report;
}

}  // namespace

Report table4_report(const CampaignOptions& options, std::ostream* progress) {
  if (options.shard_count > 0)
    return table4_shard_worker_report(options, progress);

  if (options.shards > 1) {
    const ShardedRun run = run_table4_sharded(options, progress);
    Report report = make_table4_report();
    const auto& strategies = table4_strategies();
    for (std::size_t i = 0; i < strategies.size(); ++i) {
      add_table4_row(report, strategies[i], run.aggs[i]);
      note(progress, "[table4] " + to_string(strategies[i].kind) + " done: " +
                         std::to_string(run.aggs[i].simulations) + " sims");
    }
    return report;
  }

  const exp::CampaignConfig cc = campaign_config(options);
  Report report = make_table4_report();
  for (const Table4Slice& slice : build_table4_slices(options, cc, "table4")) {
    const auto agg = run_table4_slice(slice, options, cc, progress).agg;
    add_table4_row(report, slice.row, agg);
    note(progress, "[table4] " + to_string(slice.row.kind) + " done: " +
                       std::to_string(agg.simulations) + " sims");
  }
  return report;
}

Report table4_merge_report(const CampaignOptions& options,
                           std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);
  const std::vector<Table4Slice> slices =
      build_table4_slices(options, cc, "table4");
  const auto shard_count = static_cast<std::size_t>(options.shards);

  Report report = make_table4_report();
  for (const Table4Slice& slice : slices) {
    const exp::Aggregate agg = exp::merge_slice_files(
        slice.grid, shard_slice_files(options, slice, shard_count));
    add_table4_row(report, slice.row, agg);
    note(progress, "[merge] " + to_string(slice.row.kind) + ": " +
                       std::to_string(agg.simulations) + " sims from " +
                       std::to_string(shard_count) + " slice files");
  }
  return report;
}

Report table5_report(const CampaignOptions& options, std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);
  const auto kind = attack::StrategyKind::kContextAware;

  // Table V pairs driver-on with driver-off per item, so each slice runs
  // through the materializing path with a per-item results checkpoint.
  auto run = [&](bool strategic, bool driver, const std::string& slice) {
    const auto grid = exp::make_grid(kind, strategic, driver, cc);
    const auto checkpoint = open_checkpoint<exp::ResultsCheckpoint>(
        options, slice, grid, progress);
    return exp::run_campaign(grid, cc, checkpoint.get());
  };

  if (!options.checkpoint.empty()) {
    std::vector<std::pair<std::string, std::uint64_t>> names;
    for (const bool strategic : {false, true})
      for (const bool driver : {true, false}) {
        const std::string slice = std::string("table5 ") +
                                  (strategic ? "strategic" : "fixed") +
                                  (driver ? "-on" : "-off");
        names.emplace_back(slice, exp::grid_fingerprint(exp::make_grid(
                                      kind, strategic, driver, cc)));
      }
    reject_slice_file_collisions(options.checkpoint, names);
  }

  note(progress, "[table5] fixed values, driver on...");
  const auto fixed_on = run(false, true, "table5 fixed-on");
  note(progress, "[table5] fixed values, driver off...");
  const auto fixed_off = run(false, false, "table5 fixed-off");
  note(progress, "[table5] strategic values, driver on...");
  const auto strat_on = run(true, true, "table5 strategic-on");
  note(progress, "[table5] strategic values, driver off...");
  const auto strat_off = run(true, false, "table5 strategic-off");

  const auto fixed = exp::pair_driver_outcomes(fixed_on, fixed_off);
  const auto strategic = exp::pair_driver_outcomes(strat_on, strat_off);

  Report report(
      "Table V: Context-Aware attack per type, fixed vs. strategic values",
      {"attack_type", "values", "simulations", "sims_with_alerts",
       "sims_with_hazards", "sims_with_accidents", "prevented_hazards",
       "new_hazards", "prevented_accidents", "driver_preventions",
       "nodriver_hazards", "nodriver_accidents", "tth_mean", "tth_std"});
  const struct {
    const char* label;
    const std::map<attack::AttackType, exp::TypeOutcome>& outcomes;
  } slices[] = {{"fixed", fixed}, {"strategic", strategic}};
  for (const auto& slice : slices) {
    for (const auto& [type, o] : slice.outcomes) {
      report.add_row({to_string(type), std::string(slice.label),
                      ll(o.agg.simulations), ll(o.agg.sims_with_alerts),
                      ll(o.agg.sims_with_hazards),
                      ll(o.agg.sims_with_accidents), ll(o.prevented_hazards),
                      ll(o.new_hazards), ll(o.prevented_accidents),
                      ll(o.driver_preventions), ll(o.nodriver_hazards),
                      ll(o.nodriver_accidents), o.agg.tth_mean,
                      o.agg.tth_std});
    }
  }
  return report;
}

namespace {

/// bench --campaign table5: wall-clock per Table V slice (the four
/// materializing campaigns), emitted as BENCH_table5.json rows.
Report bench_table5_report(const CampaignOptions& options,
                           std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);
  const auto kind = attack::StrategyKind::kContextAware;

  Report report("bench: Table V campaign wall-clock (materializing runner)",
                {"slice", "simulations", "wall_s", "sims_per_s"});
  const struct {
    const char* slice;
    bool strategic;
    bool driver;
  } slices[] = {{"fixed-on", false, true},
                {"fixed-off", false, false},
                {"strategic-on", true, true},
                {"strategic-off", true, false}};
  double total_wall = 0.0;
  std::size_t total_sims = 0;
  std::size_t total_fresh = 0;
  for (const auto& s : slices) {
    const auto grid = exp::make_grid(kind, s.strategic, s.driver, cc);
    const auto checkpoint = open_checkpoint<exp::ResultsCheckpoint>(
        options, std::string("bench-table5 ") + s.slice, grid, progress);
    const auto start = std::chrono::steady_clock::now();
    // Throughput over freshly computed sims only: restored chunks cost ~no
    // wall-clock, and a resumed bench must not emit an inflated trajectory
    // point.
    const std::size_t fresh =
        grid.size() - (checkpoint ? checkpoint->completed_items() : 0);
    const auto results = exp::run_campaign(grid, cc, checkpoint.get());
    const double wall = util::seconds_since(start);
    total_wall += wall;
    total_sims += results.size();
    total_fresh += fresh;
    report.add_row(
        {std::string(s.slice), ll(results.size()), wall,
         wall > 0.0 ? static_cast<double>(fresh) / wall : 0.0});
    note(progress, "[bench-table5] " + std::string(s.slice) + ": " +
                       std::to_string(fresh) + " sims in " +
                       std::to_string(wall) + " s");
  }
  report.add_row(
      {std::string("TOTAL"), ll(total_sims), total_wall,
       total_wall > 0.0 ? static_cast<double>(total_fresh) / total_wall
                        : 0.0});
  return report;
}

/// bench --campaign fig8: wall-clock of the parameter-space sweep, emitted
/// as BENCH_fig8.json rows.
Report bench_fig8_report(const CampaignOptions& options,
                         std::ostream* progress) {
  const exp::ParamSpaceConfig cfg = fig8_config(options);

  Report report("bench: Fig 8 parameter-space sweep wall-clock",
                {"slice", "points", "wall_s", "points_per_s"});
  const auto start = std::chrono::steady_clock::now();
  const auto points = exp::run_param_space(cfg);
  const double wall = util::seconds_since(start);
  report.add_row(
      {std::string("fig8"), ll(points.size()), wall,
       wall > 0.0 ? static_cast<double>(points.size()) / wall : 0.0});
  note(progress, "[bench-fig8] " + std::to_string(points.size()) +
                     " points in " + std::to_string(wall) + " s");
  return report;
}

/// The `Polyline::project` kernel row of BENCH_table4.json: one million
/// hinted projections of the campaign hot-loop shape (a point advancing
/// ~0.3 m per query along the paper road). "simulations" holds the fixed
/// operation count and sims_per_s the projection throughput; the remaining
/// aggregate columns are structurally zero, so bench_diff.py's
/// deterministic-column check applies to this row unchanged.
void add_project_kernel_row(Report& report, std::ostream* progress) {
  const road::Road road = road::RoadBuilder::paper_road();
  const geom::Polyline& line = road.reference();
  constexpr std::size_t kOps = 1'000'000;
  const std::vector<geom::Vec2> points =
      projection_workload(line, kOps, /*lanes=*/1);

  double hint = -1.0;
  double sink = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (const geom::Vec2 p : points) {
    const auto proj = line.project(p, hint);
    hint = proj.s;
    sink += proj.lateral;
  }
  const double wall = util::seconds_since(start);
  // Keep the loop observable without polluting the report.
  if (!std::isfinite(sink)) note(progress, "[bench] project sink overflow");

  report.add_row(
      {std::string("Polyline::project"), ll(kOps), wall,
       wall > 0.0 ? static_cast<double>(kOps) / wall : 0.0, 0LL, 0LL, 0LL,
       0LL, 0LL, 0.0, 0.0, 0.0, 0.0});
  note(progress, "[bench] Polyline::project: " + std::to_string(kOps) +
                     " hinted projections in " + std::to_string(wall) +
                     " s");
}

/// The `PubSubBus::publish` kernel row of BENCH_table4.json: the
/// steady-state publish mix of 200k 100 Hz ticks (cli::bus_tick_workload,
/// shared with bench_step's bus_publish_* rows) delivered to typed latches
/// on all six topics — the campaign's subscriber shape, where no raw tap
/// is attached and the lazy wire path never serializes. "simulations"
/// holds the fixed publish count and sims_per_s the publish throughput;
/// the remaining aggregate columns are structurally zero, so
/// bench_diff.py's deterministic-column check applies unchanged.
void add_bus_kernel_row(Report& report, std::ostream* progress) {
  constexpr std::uint64_t kTicks = 200'000;
  const std::uint64_t ops = bus_tick_workload_count(kTicks);

  msg::PubSubBus bus;
  msg::Latest<msg::GpsLocationExternal> gps(bus);
  msg::Latest<msg::ModelV2> model(bus);
  msg::Latest<msg::RadarState> radar(bus);
  msg::Latest<msg::CarState> car_state(bus);
  msg::Latest<msg::CarControl> car_control(bus);
  msg::Latest<msg::ControlsState> controls_state(bus);

  const auto start = std::chrono::steady_clock::now();
  bus_tick_workload(kTicks, [&bus](const auto& m) { bus.publish(m); });
  const double wall = util::seconds_since(start);
  // Keep the loop observable without polluting the report.
  const double sink = gps.value().speed + radar.value().lead_distance +
                      car_state.value().speed + model.value().left_lane_line +
                      car_control.value().accel +
                      static_cast<double>(controls_state.value().alert_count);
  if (!std::isfinite(sink)) note(progress, "[bench] bus sink overflow");

  report.add_row(
      {std::string("PubSubBus::publish"), ll(ops), wall,
       wall > 0.0 ? static_cast<double>(ops) / wall : 0.0, 0LL, 0LL, 0LL,
       0LL, 0LL, 0.0, 0.0, 0.0, 0.0});
  note(progress, "[bench] PubSubBus::publish: " + std::to_string(ops) +
                     " typed publishes in " + std::to_string(wall) + " s");
}

/// The `World::reset` kernel row of BENCH_table4.json: re-arming one
/// resident World (the per-worker arena lifecycle) across the campaign's
/// attack-item shape, allocation-free and bit-identical to fresh
/// construction. "simulations" holds the fixed reset count and sims_per_s
/// the reset throughput; the remaining aggregate columns are structurally
/// zero, so bench_diff.py's deterministic-column check applies unchanged.
void add_world_reset_kernel_row(Report& report, std::ostream* progress) {
  constexpr std::size_t kOps = 2'000;
  const exp::WorldAssets assets = exp::WorldAssets::make_default();
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  sim::World world(exp::world_config_for(item, assets));

  double sink = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    item.seed = i + 1;
    world.reset(exp::world_config_for(item, assets));
    sink += world.ego_state().speed;
  }
  const double wall = util::seconds_since(start);
  // Keep the loop observable without polluting the report.
  if (!std::isfinite(sink)) note(progress, "[bench] reset sink overflow");

  report.add_row(
      {std::string("World::reset"), ll(kOps), wall,
       wall > 0.0 ? static_cast<double>(kOps) / wall : 0.0, 0LL, 0LL, 0LL,
       0LL, 0LL, 0.0, 0.0, 0.0, 0.0});
  note(progress, "[bench] World::reset: " + std::to_string(kOps) +
                     " in-place resets in " + std::to_string(wall) + " s");
}

/// The `realtime_jitter` row of BENCH_table4.json: one simulated second of
/// the attack-free S1 run under the 100 Hz deadline executor
/// (exp/realtime.hpp). Column reuse: "simulations" holds the tick count,
/// sims_per_s the achieved tick rate, sims_with_alerts the overrun count,
/// lane_invasion_rate_mean the mean tick latency [us], tth_mean/tth_std the
/// wake-jitter mean/std [us], and `efficiency` the miss fraction. Unlike
/// the kernel rows, every cell here is wall-clock-derived by nature, so
/// bench_diff.py lists the row in NONDETERMINISTIC_ROWS — advisory in
/// --strict runs, never gating.
void add_realtime_jitter_row(Report& report, std::ostream* progress) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = 2022;
  sim::WorldConfig cfg = exp::world_config_for(item);
  cfg.duration = 1.0;  // 100 ticks at the paper rig's 100 Hz

  sim::World world(cfg);
  const auto start = std::chrono::steady_clock::now();
  const exp::RealtimeReport rt =
      exp::run_realtime(world, exp::RealtimeConfig{});
  const double wall = util::seconds_since(start);

  report.add_row(
      {std::string("realtime_jitter"), ll(rt.ticks), wall,
       wall > 0.0 ? static_cast<double>(rt.ticks) / wall : 0.0,
       ll(rt.overruns), 0LL, 0LL, 0LL, 0LL,
       rt.phases.empty() ? 0.0 : rt.phases[0].latency_s.mean() * 1e6,
       rt.wake_error_s.mean() * 1e6, rt.wake_error_s.stddev() * 1e6,
       rt.miss_fraction()});
  note(progress, "[bench] realtime_jitter: " + std::to_string(rt.ticks) +
                     " ticks, " + std::to_string(rt.overruns) + " overruns");
}

/// The `faults` row of BENCH_table4.json: the attack-free campaign grid
/// (Table IV's None row shape, same --reps/--seed) with a representative
/// mid-intensity CAN-drop plan attached to every item, through the
/// streaming runner. sims_per_s times the fault-injection hot path; the
/// aggregate columns are deterministic functions of the grid and double as
/// a seed-for-seed identity check on the fault layer itself, so
/// bench_diff.py gates them like the strategy rows.
void add_faults_row(Report& report, const CampaignOptions& options,
                    std::ostream* progress) {
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kCanDrop;
  spec.rate = 0.05;
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->add(spec);

  const exp::CampaignConfig cc = campaign_config(options);
  std::vector<exp::CampaignItem> grid =
      exp::make_grid(attack::StrategyKind::kNone, /*strategic_values=*/false,
                     /*driver_enabled=*/true, cc);
  for (exp::CampaignItem& item : grid) item.fault_plan = plan;

  const auto start = std::chrono::steady_clock::now();
  const exp::Aggregate agg = exp::run_campaign_streaming(grid, cc);
  const double wall = util::seconds_since(start);

  report.add_row(
      {std::string("faults"), ll(agg.simulations), wall,
       wall > 0.0 ? static_cast<double>(agg.simulations) / wall : 0.0,
       ll(agg.sims_with_alerts), ll(agg.sims_with_hazards),
       ll(agg.sims_with_accidents), ll(agg.hazards_without_alerts),
       ll(agg.fcw_activations), agg.lane_invasion_rate_mean, agg.tth_mean,
       agg.tth_std, 0.0});
  note(progress, "[bench] faults: " + std::to_string(agg.simulations) +
                     " faulted sims in " + std::to_string(wall) + " s");
}

}  // namespace

namespace {

/// Bit-exact aggregate equality (doubles compared as bit patterns): the
/// check the shard_scaling rows run against the in-process aggregates, so
/// every bench run doubles as a sharded-merge determinism gate.
bool same_aggregate(const exp::Aggregate& a, const exp::Aggregate& b) {
  return a.simulations == b.simulations &&
         a.sims_with_alerts == b.sims_with_alerts &&
         a.sims_with_hazards == b.sims_with_hazards &&
         a.sims_with_accidents == b.sims_with_accidents &&
         a.hazards_without_alerts == b.hazards_without_alerts &&
         a.fcw_activations == b.fcw_activations &&
         util::double_bits(a.lane_invasion_rate_mean) ==
             util::double_bits(b.lane_invasion_rate_mean) &&
         util::double_bits(a.tth_mean) == util::double_bits(b.tth_mean) &&
         util::double_bits(a.tth_std) == util::double_bits(b.tth_std);
}

/// The `shard_scaling_<P>` rows of BENCH_table4.json: the full Table IV
/// campaign dispatched across P={1,2,4,8} forked worker processes, one
/// thread each (so the rows isolate process scaling from thread scaling),
/// under throwaway checkpoint stems. sims_per_s is the fleet throughput
/// and `efficiency` = tput_P / (P * tput_1), the parallel efficiency
/// relative to the one-worker fleet (timing-class columns: advisory in
/// bench_diff, never gating). Every merged aggregate is checked bit-exact
/// against the in-process @p expected aggregates — a bench run that
/// survives IS the sharded-merge determinism proof.
void add_shard_scaling_rows(Report& report, const CampaignOptions& options,
                            const std::vector<exp::Aggregate>& expected,
                            std::ostream* progress) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("scaa_shard_scaling." + std::to_string(static_cast<long long>(::getpid())));
  std::error_code ec;
  fs::remove_all(dir, ec);

  double tput_1 = 0.0;
  for (const int workers : {1, 2, 4, 8}) {
    CampaignOptions o = options;
    // Built with += rather than `"p" + std::to_string(...)`: the rvalue
    // operator+ chain trips GCC 12's -Wrestrict false positive
    // (PR105329) at -O2+, which breaks -Werror builds on that compiler.
    std::string slice = "p";
    slice += std::to_string(workers);
    o.checkpoint = (dir / slice).string();
    o.resume = false;
    o.shards = workers;
    o.threads = 1;
    const ShardedRun run = run_table4_sharded(o, /*progress=*/nullptr);
    for (std::size_t i = 0; i < run.aggs.size(); ++i) {
      if (!same_aggregate(run.aggs[i], expected[i]))
        throw std::runtime_error(
            "[bench] shard_scaling_" + std::to_string(workers) + ": merged " +
            to_string(table4_strategies()[i].kind) +
            " aggregate differs from the in-process run — the sharded merge "
            "is not bit-identical");
    }
    const double tput =
        run.wall_s > 0.0 ? static_cast<double>(run.simulations) / run.wall_s
                         : 0.0;
    if (workers == 1) tput_1 = tput;
    const double efficiency =
        (workers == 1 || tput_1 <= 0.0)
            ? 1.0
            : tput / (static_cast<double>(workers) * tput_1);
    report.add_row({"shard_scaling_" + std::to_string(workers),
                    ll(run.simulations), run.wall_s, tput, 0LL, 0LL, 0LL, 0LL,
                    0LL, 0.0, 0.0, 0.0, efficiency});
    note(progress, "[bench] shard_scaling_" + std::to_string(workers) + ": " +
                       std::to_string(run.simulations) + " sims in " +
                       std::to_string(run.wall_s) + " s (efficiency " +
                       std::to_string(efficiency) + ")");
  }
  fs::remove_all(dir, ec);
}

}  // namespace

Report bench_report(const CampaignOptions& options, std::ostream* progress) {
  if (options.bench_campaign == "table5")
    return bench_table5_report(options, progress);
  if (options.bench_campaign == "fig8")
    return bench_fig8_report(options, progress);

  const exp::CampaignConfig cc = campaign_config(options);

  Report report(
      "bench: Table IV campaign wall-clock (streaming runner, shared assets)",
      {"strategy", "simulations", "wall_s", "sims_per_s", "sims_with_alerts",
       "sims_with_hazards", "sims_with_accidents", "hazards_without_alerts",
       "fcw_activations", "lane_invasion_rate_mean", "tth_mean", "tth_std",
       "efficiency"});

  double total_wall = 0.0;
  std::size_t total_sims = 0;
  std::size_t total_fresh = 0;
  std::vector<exp::Aggregate> inprocess_aggs;
  for (const Table4Slice& slice : build_table4_slices(options, cc, "bench")) {
    const auto [agg, wall, fresh] =
        run_table4_slice(slice, options, cc, progress);
    total_wall += wall;
    total_sims += agg.simulations;
    total_fresh += fresh;
    inprocess_aggs.push_back(agg);
    // sims_per_s counts only freshly computed sims: restored checkpoint
    // chunks cost ~no wall-clock, and a resumed bench must not emit an
    // inflated trajectory point (the aggregate columns still cover the
    // full grid — that is the identity check against table4).
    report.add_row(
        {to_string(slice.row.kind), ll(agg.simulations), wall,
         wall > 0.0 ? static_cast<double>(fresh) / wall : 0.0,
         ll(agg.sims_with_alerts), ll(agg.sims_with_hazards),
         ll(agg.sims_with_accidents), ll(agg.hazards_without_alerts),
         ll(agg.fcw_activations), agg.lane_invasion_rate_mean, agg.tth_mean,
         agg.tth_std, 0.0});
    note(progress, "[bench] " + to_string(slice.row.kind) + ": " +
                       std::to_string(fresh) + " sims in " +
                       std::to_string(wall) + " s");
  }
  report.add_row(
      {std::string("TOTAL"), ll(total_sims), total_wall,
       total_wall > 0.0 ? static_cast<double>(total_fresh) / total_wall : 0.0,
       0LL, 0LL, 0LL, 0LL, 0LL, 0.0, 0.0, 0.0, 0.0});
  add_project_kernel_row(report, progress);
  add_bus_kernel_row(report, progress);
  add_world_reset_kernel_row(report, progress);
  add_realtime_jitter_row(report, progress);
  add_faults_row(report, options, progress);
  // The sharded aggregates are checked bit-exact against the strategy rows
  // above, so the same bench invocation that records throughput also
  // proves the coordinator/worker/merge path reproduces the campaign.
  add_shard_scaling_rows(report, options, inprocess_aggs, progress);
  return report;
}

Report fig7_report(const CampaignOptions& options, std::ostream* progress) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = options.seed;

  sim::World world(exp::world_config_for(item));
  sim::Trace trace;
  const auto summary = world.run(&trace);
  if (options.decimate > 1)
    trace.decimate(static_cast<std::size_t>(options.decimate));

  Report report(
      "Fig 7: Ego trajectory during an attack-free simulation (S1)",
      {"time", "ego_s", "ego_d", "ego_speed", "lane_center", "lane_left",
       "lane_right", "lead_gap", "accel_cmd", "steer_cmd", "attack_active",
       "alert_active", "driver_engaged"});
  for (const auto& r : trace.rows()) {
    report.add_row({r.time, r.ego_s, r.ego_d, r.ego_speed, r.lane_center,
                    r.lane_left, r.lane_right, r.lead_gap, r.accel_cmd,
                    r.steer_cmd, r.attack_active, r.alert_active,
                    r.driver_engaged});
  }
  note(progress,
       "[fig7] " + std::to_string(trace.size()) + " trace rows; " +
           std::to_string(summary.lane_invasions) + " lane invasions (" +
           std::to_string(summary.lane_invasion_rate) + "/s, paper: 0.46/s)");
  return report;
}

Report fig8_report(const CampaignOptions& options, std::ostream* progress) {
  const auto points = exp::run_param_space(fig8_config(options));

  Report report(
      "Fig 8: attack start time x duration parameter space (Acceleration)",
      {"strategy", "start_time", "duration", "hazardous"});
  for (const auto& p : points)
    report.add_row(
        {to_string(p.strategy), p.start_time, p.duration, p.hazardous});

  const double critical = exp::estimate_critical_time(points);
  note(progress, "[fig8] " + std::to_string(points.size()) +
                     " points; estimated critical start time " +
                     std::to_string(critical) + " s");
  return report;
}

namespace {

/// One cell of the faults table: a family/intensity label plus the plan
/// every simulation in the cell runs under (null = no injection).
struct FaultCell {
  std::string family;
  std::string intensity;
  std::shared_ptr<const fault::FaultPlan> plan;
};

/// The built-in sweep: every fault family at three intensities, bracketed
/// by the no-fault baseline. The levels span "barely noticeable" to
/// "clearly degraded" for each mechanism — rates are per-frame (CAN) or
/// per-publish (sensor) probabilities, the bus-off levels are window
/// lengths in the middle of the 50 s run, and the stall levels scale both
/// trigger probability and stall length.
std::vector<FaultCell> fault_sweep_cells() {
  struct Level {
    double rate;
    double magnitude;
    std::uint32_t ticks;
    double t0;
    double t1;
  };
  struct Family {
    fault::FaultKind kind;
    const char* name;
    Level level[3];
  };
  static const Family kSweep[] = {
      {fault::FaultKind::kCanDrop,
       "can_drop",
       {{0.01, 0.0, 0, 0.0, 1e9},
        {0.05, 0.0, 0, 0.0, 1e9},
        {0.20, 0.0, 0, 0.0, 1e9}}},
      {fault::FaultKind::kCanDelay,
       "can_delay",
       {{0.01, 0.0, 2, 0.0, 1e9},
        {0.05, 0.0, 5, 0.0, 1e9},
        {0.20, 0.0, 10, 0.0, 1e9}}},
      {fault::FaultKind::kCanCorrupt,
       "can_corrupt",
       {{0.005, 0.0, 0, 0.0, 1e9},
        {0.02, 0.0, 0, 0.0, 1e9},
        {0.10, 0.0, 0, 0.0, 1e9}}},
      {fault::FaultKind::kCanBusOff,
       "can_busoff",
       {{0.0, 0.0, 0, 20.0, 20.5},
        {0.0, 0.0, 0, 20.0, 22.0},
        {0.0, 0.0, 0, 20.0, 25.0}}},
      {fault::FaultKind::kSensorDropout,
       "sensor_dropout",
       {{0.05, 0.0, 0, 0.0, 1e9},
        {0.20, 0.0, 0, 0.0, 1e9},
        {0.50, 0.0, 0, 0.0, 1e9}}},
      {fault::FaultKind::kSensorFreeze,
       "sensor_freeze",
       {{0.05, 0.0, 0, 0.0, 1e9},
        {0.20, 0.0, 0, 0.0, 1e9},
        {0.50, 0.0, 0, 0.0, 1e9}}},
      {fault::FaultKind::kSensorNoise,
       "sensor_noise",
       {{1.0, 0.1, 0, 0.0, 1e9},
        {1.0, 0.5, 0, 0.0, 1e9},
        {1.0, 2.0, 0, 0.0, 1e9}}},
      {fault::FaultKind::kEcuStall,
       "ecu_stall",
       {{0.001, 0.0, 5, 0.0, 1e9},
        {0.005, 0.0, 10, 0.0, 1e9},
        {0.02, 0.0, 25, 0.0, 1e9}}},
  };
  static const char* kLevelNames[3] = {"low", "med", "high"};

  std::vector<FaultCell> cells;
  cells.push_back({"none", "-", nullptr});
  for (const Family& family : kSweep) {
    for (int l = 0; l < 3; ++l) {
      fault::FaultSpec spec;
      spec.kind = family.kind;
      spec.rate = family.level[l].rate;
      spec.magnitude = family.level[l].magnitude;
      spec.ticks = family.level[l].ticks;
      spec.t0 = family.level[l].t0;
      spec.t1 = family.level[l].t1;
      auto plan = std::make_shared<fault::FaultPlan>();
      plan->add(spec);
      cells.push_back({family.name, kLevelNames[l], std::move(plan)});
    }
  }
  return cells;
}

/// The cells one `faults` invocation runs: the built-in sweep, or — with
/// --fault-plan — the no-fault baseline next to the custom plan. A parse
/// failure (fault::FaultPlanError, carrying path:line) propagates to the
/// CLI's generic handler and exits 1 like any other bad input file.
std::vector<FaultCell> fault_table_cells(const CampaignOptions& options) {
  if (options.fault_plan.empty()) return fault_sweep_cells();
  auto plan = std::make_shared<fault::FaultPlan>(
      fault::FaultPlan::parse_file(options.fault_plan));
  std::vector<FaultCell> cells;
  cells.push_back({"none", "-", nullptr});
  cells.push_back({"custom", "plan", std::move(plan)});
  return cells;
}

}  // namespace

Report faults_report(const CampaignOptions& options, std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);
  const std::vector<FaultCell> cells = fault_table_cells(options);

  // Two legs per cell, on grids identical to Table IV's None and
  // Context-Aware rows (same seeds, same chunk boundaries) with the cell's
  // plan attached to every item. Attaching the plan changes each grid's
  // fingerprint, so every cell checkpoints into its own slice file and a
  // resume under a different plan is rejected by the checkpoint layer.
  struct Leg {
    std::string name;
    std::vector<exp::CampaignItem> grid;
  };
  struct CellRun {
    FaultCell cell;
    Leg benign;
    Leg attacked;
  };
  std::vector<CellRun> runs;
  std::vector<std::pair<std::string, std::uint64_t>> names;
  for (const FaultCell& cell : cells) {
    CellRun run;
    run.cell = cell;
    const std::string tag = "faults " + cell.family + "-" + cell.intensity;
    run.benign.name = tag + " benign";
    run.benign.grid = exp::make_grid(attack::StrategyKind::kNone,
                                     /*strategic_values=*/false,
                                     /*driver_enabled=*/true, cc);
    run.attacked.name = tag + " attack";
    run.attacked.grid = exp::make_grid(attack::StrategyKind::kContextAware,
                                       /*strategic_values=*/true,
                                       /*driver_enabled=*/true, cc);
    for (Leg* leg : {&run.benign, &run.attacked}) {
      for (exp::CampaignItem& item : leg->grid) item.fault_plan = cell.plan;
      names.emplace_back(leg->name, exp::grid_fingerprint(leg->grid));
    }
    runs.push_back(std::move(run));
  }
  if (!options.checkpoint.empty())
    reject_slice_file_collisions(options.checkpoint, names);

  Report report(
      "faults: benign-fault robustness — false positives (attack off) and "
      "detection under faults (Context-Aware attack on)",
      {"family", "intensity", "benign_sims", "benign_alert_sims", "fp_rate",
       "attack_sims", "attack_alert_sims", "detection_rate",
       "attack_hazard_sims", "hazards_without_alerts", "tth_mean"});

  auto run_leg = [&](const Leg& leg) {
    const auto checkpoint = open_checkpoint<exp::CampaignCheckpoint>(
        options, leg.name, leg.grid, progress);
    return exp::run_campaign_streaming(leg.grid, cc,
                                       decile_progress(progress, leg.name),
                                       checkpoint.get());
  };
  for (const CellRun& run : runs) {
    const exp::Aggregate benign = run_leg(run.benign);
    const exp::Aggregate attacked = run_leg(run.attacked);
    report.add_row({run.cell.family, run.cell.intensity,
                    ll(benign.simulations), ll(benign.sims_with_alerts),
                    benign.alert_fraction(), ll(attacked.simulations),
                    ll(attacked.sims_with_alerts), attacked.alert_fraction(),
                    ll(attacked.sims_with_hazards),
                    ll(attacked.hazards_without_alerts), attacked.tth_mean});
    note(progress,
         "[faults] " + run.cell.family + "/" + run.cell.intensity +
             " done: fp_rate " + std::to_string(benign.alert_fraction()) +
             ", detection " + std::to_string(attacked.alert_fraction()));
  }
  return report;
}

namespace {

/// Render the nonzero bins of a latency histogram as "<lo>us:<count>"
/// pairs, space-joined — compact enough for one report cell, detailed
/// enough to read the distribution shape (the last bin clamps, so its
/// count means "at or beyond this budget").
std::string hist_cell(const util::Histogram& hist) {
  std::string cell;
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    if (hist.bin_count(b) == 0) continue;
    if (!cell.empty()) cell += ' ';
    cell += std::to_string(std::llround(hist.bin_lo(b)));
    cell += "us:";
    cell += std::to_string(hist.bin_count(b));
  }
  return cell;
}

/// The `summary` row both run modes emit. Every cell derives from the
/// SimulationSummary and the tick count alone — never from the wall clock —
/// so a --realtime run's summary row is byte-identical to the free-running
/// one on the same seed (the acceptance gate the Realtime CLI test holds).
void add_run_summary_row(Report& report, const sim::SimulationSummary& s,
                         std::size_t ticks) {
  report.add_row({std::string("summary"), ll(ticks), 0.0, 0.0, 0LL, 0.0,
                  std::string(), s.any_hazard, s.any_accident,
                  ll(s.alert_events), ll(s.fcw_events), ll(s.lane_invasions),
                  s.lane_invasion_rate, s.tth, s.sim_end_time});
}

}  // namespace

Report run_report(const CampaignOptions& options, std::ostream* progress) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.scenario_id = options.scenario;
  item.initial_gap = 100.0;
  item.seed = options.seed;

  sim::WorldConfig cfg = exp::world_config_for(item);
  cfg.duration = options.duration;
  // Parse before the world exists: a bad plan file must fail with its
  // path:line diagnostic (exit 1) before any FIFO open could block.
  if (!options.fault_plan.empty())
    cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
        fault::FaultPlan::parse_file(options.fault_plan));
  sim::World world(cfg);

  std::optional<exp::FifoTap> tap;
  if (!options.tap_fifo.empty()) {
    note(progress, "[run] tap: opening " + options.tap_fifo +
                       " (a FIFO blocks here until a reader attaches)");
    tap.emplace(world.message_bus(), options.tap_fifo);
  }

  Report report(
      "run: one simulation, free-running or --realtime deadline-clocked",
      {"row", "count", "mean_us", "max_us", "overruns", "miss_fraction",
       "hist_us", "any_hazard", "any_accident", "alert_events", "fcw_events",
       "lane_invasions", "lane_invasion_rate", "tth", "sim_end_time"});

  if (!options.realtime) {
    // Mirror the realtime executor's loop structure exactly (count every
    // step() invocation, including the final one that returns false) so
    // the two modes' summary rows carry the identical tick count.
    std::size_t ticks = 0;
    bool running = !world.finished();
    while (running) {
      running = world.step();
      ++ticks;
    }
    add_run_summary_row(report, world.summarize(), ticks);
    note(progress,
         "[run] free-running: " + std::to_string(ticks) + " ticks");
  } else {
    exp::RealtimeConfig rc;
    rc.period_s = options.period_s;
    const exp::RealtimeReport rt = exp::run_realtime(world, rc);
    add_run_summary_row(report, rt.summary, rt.ticks);
    for (const exp::PhaseStats& phase : rt.phases) {
      std::string label = "phase:";
      label += phase.name;
      report.add_row({std::move(label), ll(phase.latency_s.count()),
                      phase.latency_s.mean() * 1e6,
                      phase.latency_s.max() * 1e6, 0LL, 0.0,
                      hist_cell(phase.hist_us), false, false, 0LL, 0LL, 0LL,
                      0.0, 0.0, 0.0});
    }
    report.add_row({std::string("deadline"), ll(rt.ticks),
                    rt.wake_error_s.mean() * 1e6, rt.wake_error_s.max() * 1e6,
                    ll(rt.overruns), rt.miss_fraction(), std::string(), false,
                    false, 0LL, 0LL, 0LL, 0.0, 0.0, 0.0});
    note(progress, "[run] realtime: " + std::to_string(rt.ticks) +
                       " ticks at " + std::to_string(1.0 / rt.period_s) +
                       " Hz, " + std::to_string(rt.overruns) + " overruns");
    if (rt.miss_fraction() > options.miss_budget)
      throw MissBudgetError(
          "realtime miss budget exceeded: " + std::to_string(rt.overruns) +
              "/" + std::to_string(rt.ticks) +
              " ticks overran their deadline (miss fraction " +
              std::to_string(rt.miss_fraction()) + " > budget " +
              std::to_string(options.miss_budget) + ")",
          std::move(report));
  }
  if (tap)
    note(progress, "[run] tap: " + std::to_string(tap->frames_streamed()) +
                       " frames streamed" +
                       (tap->broken() ? " (reader hung up early)" : ""));
  if (cfg.fault_plan) {
    const sim::SimulationSummary s = world.summarize();
    std::uint64_t fired = 0;
    std::uint64_t suppressed = 0;
    for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
      fired += s.faults_fired[k];
      suppressed += s.faults_suppressed[k];
    }
    note(progress, "[run] faults: " + std::to_string(fired) + " fired, " +
                       std::to_string(suppressed) + " suppressed");
  }
  return report;
}

const std::vector<CampaignCommand>& campaign_commands() {
  static const std::vector<CampaignCommand> kCommands = {
      {"table4", "Table IV",
       "attack-strategy comparison with an alert driver", &table4_report},
      {"table5", "Table V",
       "Context-Aware attack per type, fixed vs. strategic value corruption",
       &table5_report},
      {"fig7", "Fig. 7",
       "attack-free Ego trajectory (imperfect lane centering)", &fig7_report},
      {"fig8", "Fig. 8",
       "attack start time x duration parameter space", &fig8_report},
      {"faults", "robustness study",
       "benign-fault false-positive table: fault family x intensity, attack "
       "off vs. on (--fault-plan FILE runs a custom plan instead of the "
       "sweep)",
       &faults_report},
      {"bench", "Tables IV/V + Fig. 8, timed",
       "end-to-end campaign wall-clock benchmark (--campaign "
       "table4|table5|fig8 emits BENCH_<campaign>.json rows)",
       &bench_report},
      {"merge", "Table IV",
       "fold per-shard table4 checkpoint slices (--shards/--shard runs) "
       "into the exact Table IV report, byte-identical to a single-process "
       "run",
       &table4_merge_report},
      {"run", "Fig. 5 rig",
       "one simulation: free-running, or --realtime deadline-clocked with "
       "per-subsystem latency/jitter/overrun accounting; --tap-fifo streams "
       "live wire frames to an external eavesdropper",
       &run_report},
  };
  return kCommands;
}

const CampaignCommand* find_campaign_command(const std::string& name) {
  for (const auto& cmd : campaign_commands())
    if (cmd.name == name) return &cmd;
  return nullptr;
}

namespace {

/// Parse a 1-based "--shard i/N" spec into a 0-based index + count.
bool parse_shard_spec(const std::string& spec, int& index, int& count) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size())
    return false;
  int i = 0, n = 0;
  const char* begin = spec.data();
  auto r1 = std::from_chars(begin, begin + slash, i);
  auto r2 = std::from_chars(begin + slash + 1, begin + spec.size(), n);
  if (r1.ec != std::errc() || r1.ptr != begin + slash ||
      r2.ec != std::errc() || r2.ptr != begin + spec.size())
    return false;
  if (n < 1 || n > 1024 || i < 1 || i > n) return false;
  index = i - 1;
  count = n;
  return true;
}

/// Checked long long -> int narrowing for parsed flags. ArgParser's bounds
/// already keep every current flag well inside int's range, but the cast
/// sites must not silently depend on that coupling: a bound widened past
/// 2^31 would otherwise truncate (e.g. --reps 4294967297 -> 1) and run the
/// wrong campaign without a word. On failure the caller exits 2.
bool narrowed_int(const ArgParser& args, const std::string& flag, int& out,
                  const std::string& cmd_name, std::ostream& err) {
  const long long v = args.get_int(flag);
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    err << "scaa_campaign " << cmd_name << ": " << flag << " value " << v
        << " does not fit in int (would truncate)\n";
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

}  // namespace

int run_campaign_command(const std::string& name,
                         const std::vector<std::string>& tokens,
                         std::ostream& out, std::ostream& err) {
  const CampaignCommand* cmd = find_campaign_command(name);
  if (!cmd) {
    err << "scaa_campaign: unknown subcommand '" << name << "'\n";
    return 2;
  }

  ArgParser args("scaa_campaign " + cmd->name,
                 cmd->paper_ref + ": " + cmd->description);
  args.add_int("--reps", 1, "repetitions per grid cell (paper: 20)", 1,
               1000000);
  args.add_int("--threads", 0, "worker threads (0 = hardware concurrency)", 0,
               4096);
  args.add_uint("--seed", 2022, "base seed mixed into every simulation");
  args.add_choice("--format", "text", {"text", "csv", "json"},
                  "output format");
  args.add_string("--out", "-", "output path ('-' = stdout)");
  if (cmd->run == &fig7_report)
    args.add_int("--decimate", 10, "keep every n-th trace row (1 = all)", 1,
                 1000000);
  // Long-running grid campaigns checkpoint per chunk; fig7/fig8 are either
  // instant or a different workload shape, so they don't take the flags.
  const bool checkpointable =
      cmd->run == &table4_report || cmd->run == &table5_report ||
      cmd->run == &bench_report || cmd->run == &faults_report;
  const bool shardable = cmd->run == &table4_report;
  const bool is_merge = cmd->run == &table4_merge_report;
  const bool is_run = cmd->run == &run_report;
  // Only the fault-aware workloads take --fault-plan: the paper tables
  // (table4/table5/fig7/fig8) and their bench/merge counterparts must stay
  // seed-for-seed identical to the published baselines, so ArgParser's
  // unknown-flag rejection turns a stray --fault-plan there into a clean
  // exit-2 usage error instead of a silently different experiment.
  const bool takes_fault_plan =
      cmd->run == &faults_report || cmd->run == &run_report;
  if (checkpointable) {
    args.add_string("--checkpoint", "",
                    "crash-safe checkpoint path stem; each campaign slice "
                    "appends to <stem>.<slug>-<fp8>");
    args.add_bool("--resume",
                  "restore completed chunks from --checkpoint files and run "
                  "only the rest (fresh files are created when absent)");
  }
  if (shardable) {
    args.add_int("--shards", 0,
                 "fork N worker processes, each running its deterministic "
                 "slice of every strategy (requires --checkpoint); the "
                 "merged report is byte-identical to a single-process run",
                 0, 1024);
    args.add_string("--shard", "",
                    "run one slice in-process for manual fleet dispatch, as "
                    "i/N with 1-based i (requires --checkpoint); fold the "
                    "fleet's files afterwards with `merge --shards N`");
  }
  if (is_merge) {
    args.add_int("--shards", 1,
                 "how many shards the table4 campaign was split into", 1,
                 1024);
    args.add_string("--checkpoint", "",
                    "checkpoint path stem the shard slice files were written "
                    "under (required)");
  }
  if (cmd->run == &bench_report)
    args.add_choice("--campaign", "table4", {"table4", "table5", "fig8"},
                    "which campaign to time (emits BENCH_<campaign>.json "
                    "rows)");
  if (is_run) {
    args.add_bool("--realtime",
                  "pin each tick to an absolute deadline clock and report "
                  "per-subsystem latency/jitter/overrun histograms (the "
                  "deterministic summary row stays byte-identical to a "
                  "free-running run)");
    args.add_double("--period", 0.01,
                    "tick deadline period in seconds (requires --realtime)");
    args.add_double("--miss-budget", 1.0,
                    "max tolerated overrun fraction in [0, 1]; exceeding it "
                    "writes the report and exits 3 (requires --realtime)");
    args.add_string("--tap-fifo", "",
                    "stream live wire frames over this FIFO (created when "
                    "absent; the open blocks until a reader attaches)");
    args.add_int("--scenario", 1, "paper scenario (1-4)", 1, 4);
    args.add_double("--duration", 50.0, "simulated seconds (paper: 50)");
  }
  if (takes_fault_plan)
    args.add_string("--fault-plan", "",
                    "benign fault plan file (one '<kind> key=value...' line "
                    "per fault; see src/fault/plan.hpp); faults: replaces "
                    "the built-in sweep, run: injects the plan");

  try {
    args.parse_tokens(tokens);
  } catch (const ArgError& e) {
    err << e.what() << "\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    out << args.usage();
    return 0;
  }

  CampaignOptions options;
  if (!narrowed_int(args, "--reps", options.reps, cmd->name, err)) return 2;
  options.threads = static_cast<std::size_t>(args.get_int("--threads"));
  options.seed = args.get_uint("--seed");
  if (cmd->run == &fig7_report &&
      !narrowed_int(args, "--decimate", options.decimate, cmd->name, err))
    return 2;
  if (checkpointable) {
    options.checkpoint = args.get_string("--checkpoint");
    options.resume = args.get_bool("--resume");
    if (options.resume && options.checkpoint.empty()) {
      err << "scaa_campaign " << cmd->name
          << ": --resume requires --checkpoint PATH\n"
          << args.usage();
      return 2;
    }
  }
  if (shardable) {
    if (!narrowed_int(args, "--shards", options.shards, cmd->name, err))
      return 2;
    const std::string& shard_spec = args.get_string("--shard");
    if (!shard_spec.empty() &&
        !parse_shard_spec(shard_spec, options.shard_index,
                          options.shard_count)) {
      err << "scaa_campaign " << cmd->name << ": invalid --shard '"
          << shard_spec << "' (expected i/N with 1 <= i <= N <= 1024)\n"
          << args.usage();
      return 2;
    }
    if (options.shards > 0 && options.shard_count > 0) {
      err << "scaa_campaign " << cmd->name
          << ": --shards (coordinator) and --shard (manual worker) are "
             "mutually exclusive\n"
          << args.usage();
      return 2;
    }
    if ((options.shards > 1 || options.shard_count > 0) &&
        options.checkpoint.empty()) {
      err << "scaa_campaign " << cmd->name
          << ": sharded runs require --checkpoint PATH (each worker "
             "checkpoints its slice there; merge folds the files)\n"
          << args.usage();
      return 2;
    }
  }
  if (is_merge) {
    if (!narrowed_int(args, "--shards", options.shards, cmd->name, err))
      return 2;
    options.checkpoint = args.get_string("--checkpoint");
    if (options.checkpoint.empty()) {
      err << "scaa_campaign " << cmd->name
          << ": merge requires --checkpoint PATH (the stem the shard slice "
             "files were written under)\n"
          << args.usage();
      return 2;
    }
  }
  if (cmd->run == &bench_report) {
    options.bench_campaign = args.get_string("--campaign");
    // The fig8 parameter-space sweep does not run through the chunked grid
    // runners, so it cannot checkpoint yet; silently ignoring the flags
    // would leave the user believing an hour-long run was protected.
    if (options.bench_campaign == "fig8" && !options.checkpoint.empty()) {
      err << "scaa_campaign bench: --checkpoint is not supported with "
             "--campaign fig8 (the parameter-space sweep has no chunked "
             "checkpoint path yet)\n";
      return 2;
    }
  }
  if (is_run) {
    options.realtime = args.get_bool("--realtime");
    options.period_s = args.get_double("--period");
    options.miss_budget = args.get_double("--miss-budget");
    options.tap_fifo = args.get_string("--tap-fifo");
    if (!narrowed_int(args, "--scenario", options.scenario, cmd->name, err))
      return 2;
    options.duration = args.get_double("--duration");
    if (!options.realtime &&
        (args.provided("--period") || args.provided("--miss-budget"))) {
      err << "scaa_campaign " << cmd->name
          << ": --period and --miss-budget require --realtime\n"
          << args.usage();
      return 2;
    }
    // The negated-range form keeps NaN out too (every comparison with NaN
    // is false, so the `!` rejects it).
    if (!(options.period_s >= 1e-6 && options.period_s <= 10.0)) {
      err << "scaa_campaign " << cmd->name
          << ": --period must be in [1e-6, 10] seconds\n"
          << args.usage();
      return 2;
    }
    if (!(options.miss_budget >= 0.0 && options.miss_budget <= 1.0)) {
      err << "scaa_campaign " << cmd->name
          << ": --miss-budget must be a fraction in [0, 1]\n"
          << args.usage();
      return 2;
    }
    if (!(options.duration > 0.0 && options.duration <= 86400.0)) {
      err << "scaa_campaign " << cmd->name
          << ": --duration must be in (0, 86400] seconds\n"
          << args.usage();
      return 2;
    }
  }
  if (takes_fault_plan) options.fault_plan = args.get_string("--fault-plan");
  const Format format = parse_format(args.get_string("--format"));

  // Open the sink before running: campaigns can take hours at paper scale,
  // and an unwritable --out must fail now, not after the simulations.
  const std::string& out_path = args.get_string("--out");
  std::ofstream file;
  if (out_path != "-") {
    file.open(out_path);
    if (!file) {
      err << "scaa_campaign " << cmd->name << ": cannot open '" << out_path
          << "' for writing\n";
      return 1;
    }
  }

  // A checkpoint refusal/corruption (or any campaign failure) must be a
  // clean diagnostic + nonzero exit, not a std::terminate in main().
  std::optional<Report> report_holder;
  bool miss_budget_exceeded = false;
  try {
    report_holder.emplace(cmd->run(options, &err));
  } catch (const MissBudgetError& e) {
    // The simulation completed and the report is intact: write it anyway,
    // then exit 3 so scripts can tell "budget missed" from a failed run.
    err << "scaa_campaign " << cmd->name << ": " << e.what() << "\n";
    report_holder.emplace(e.report);
    miss_budget_exceeded = true;
  } catch (const std::exception& e) {
    err << "scaa_campaign " << cmd->name << ": " << e.what() << "\n";
    return 1;
  }
  const Report& report = *report_holder;

  if (out_path == "-") {
    report.write(out, format);
  } else {
    report.write(file, format);
    err << "[" << cmd->name << "] report written to " << out_path << "\n";
  }
  return miss_budget_exceeded ? 3 : 0;
}

}  // namespace scaa::cli
