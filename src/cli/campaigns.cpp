#include "cli/campaigns.hpp"

#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <ostream>

#include "cli/args.hpp"
#include "exp/campaign.hpp"
#include "exp/param_space.hpp"
#include "exp/tables.hpp"
#include "sim/world.hpp"
#include "util/stopwatch.hpp"

namespace scaa::cli {

namespace {

long long ll(std::size_t v) { return static_cast<long long>(v); }

void note(std::ostream* progress, const std::string& line) {
  if (progress) *progress << line << "\n" << std::flush;
}

/// Live per-chunk progress for the streaming runner: prints a status line
/// whenever the campaign crosses another 10% of its grid.
exp::CampaignProgressFn decile_progress(std::ostream* out,
                                        const std::string& tag) {
  if (out == nullptr) return {};
  auto last_decile = std::make_shared<int>(-1);
  return [out, tag, last_decile](const exp::CampaignProgress& p) {
    if (p.total == 0) return;
    const int decile = static_cast<int>(10 * p.completed / p.total);
    if (decile == *last_decile || p.completed == p.total) return;
    *last_decile = decile;
    *out << "[" << tag << "] " << p.completed << "/" << p.total << " sims\n"
         << std::flush;
  };
}

/// Run one Table IV strategy through the streaming runner. The single
/// grid-construction + run path shared by table4_report and bench_report,
/// so the two can never drift apart (bench's aggregate columns double as
/// a seed-for-seed identity check against table4).
struct StrategyRun {
  exp::Aggregate agg;
  double wall_s = 0.0;
};

StrategyRun run_table4_strategy(const Table4Strategy& row,
                                const CampaignOptions& options,
                                const exp::CampaignConfig& cc,
                                std::ostream* progress,
                                const std::string& tag) {
  const auto grid =
      exp::make_grid(row.kind, row.strategic, /*driver_enabled=*/true,
                     options.reps * row.rep_multiplier, options.seed);
  const auto start = std::chrono::steady_clock::now();
  // Streaming runner: O(threads) live memory instead of one result per
  // simulation, with per-chunk progress while the grid drains.
  StrategyRun run;
  run.agg = exp::run_campaign_streaming(
      grid, cc,
      decile_progress(progress, tag + " " + to_string(row.kind)));
  run.wall_s = util::seconds_since(start);
  return run;
}

}  // namespace

const std::vector<Table4Strategy>& table4_strategies() {
  // Paper Table III: Random-ST+DUR uses 10x repetitions (14,400 sims) for
  // parameter-space coverage; every other strategy runs the base grid.
  static const std::vector<Table4Strategy> kStrategies = {
      {attack::StrategyKind::kNone, false, 1},
      {attack::StrategyKind::kRandomStDur, false, 10},
      {attack::StrategyKind::kRandomSt, false, 1},
      {attack::StrategyKind::kRandomDur, false, 1},
      {attack::StrategyKind::kContextAware, true, 1},
  };
  return kStrategies;
}

Report table4_report(const CampaignOptions& options, std::ostream* progress) {
  exp::CampaignConfig cc;
  cc.threads = options.threads;

  Report report("Table IV: attack strategy comparison with an alert driver",
                {"strategy", "simulations", "sims_with_alerts",
                 "sims_with_hazards", "sims_with_accidents",
                 "hazards_without_alerts", "fcw_activations",
                 "lane_invasion_rate_mean", "tth_mean", "tth_std"});
  for (const Table4Strategy& row : table4_strategies()) {
    const auto agg =
        run_table4_strategy(row, options, cc, progress, "table4").agg;
    report.add_row({to_string(row.kind), ll(agg.simulations),
                    ll(agg.sims_with_alerts), ll(agg.sims_with_hazards),
                    ll(agg.sims_with_accidents), ll(agg.hazards_without_alerts),
                    ll(agg.fcw_activations), agg.lane_invasion_rate_mean,
                    agg.tth_mean, agg.tth_std});
    note(progress, "[table4] " + to_string(row.kind) + " done: " +
                       std::to_string(agg.simulations) + " sims");
  }
  return report;
}

Report table5_report(const CampaignOptions& options, std::ostream* progress) {
  exp::CampaignConfig cc;
  cc.threads = options.threads;
  const auto kind = attack::StrategyKind::kContextAware;

  auto run = [&](bool strategic, bool driver) {
    const auto grid =
        exp::make_grid(kind, strategic, driver, options.reps, options.seed);
    return exp::run_campaign(grid, cc);
  };

  note(progress, "[table5] fixed values, driver on...");
  const auto fixed_on = run(false, true);
  note(progress, "[table5] fixed values, driver off...");
  const auto fixed_off = run(false, false);
  note(progress, "[table5] strategic values, driver on...");
  const auto strat_on = run(true, true);
  note(progress, "[table5] strategic values, driver off...");
  const auto strat_off = run(true, false);

  const auto fixed = exp::pair_driver_outcomes(fixed_on, fixed_off);
  const auto strategic = exp::pair_driver_outcomes(strat_on, strat_off);

  Report report(
      "Table V: Context-Aware attack per type, fixed vs. strategic values",
      {"attack_type", "values", "simulations", "sims_with_alerts",
       "sims_with_hazards", "sims_with_accidents", "prevented_hazards",
       "new_hazards", "prevented_accidents", "driver_preventions",
       "nodriver_hazards", "nodriver_accidents", "tth_mean", "tth_std"});
  const struct {
    const char* label;
    const std::map<attack::AttackType, exp::TypeOutcome>& outcomes;
  } slices[] = {{"fixed", fixed}, {"strategic", strategic}};
  for (const auto& slice : slices) {
    for (const auto& [type, o] : slice.outcomes) {
      report.add_row({to_string(type), std::string(slice.label),
                      ll(o.agg.simulations), ll(o.agg.sims_with_alerts),
                      ll(o.agg.sims_with_hazards),
                      ll(o.agg.sims_with_accidents), ll(o.prevented_hazards),
                      ll(o.new_hazards), ll(o.prevented_accidents),
                      ll(o.driver_preventions), ll(o.nodriver_hazards),
                      ll(o.nodriver_accidents), o.agg.tth_mean,
                      o.agg.tth_std});
    }
  }
  return report;
}

Report bench_report(const CampaignOptions& options, std::ostream* progress) {
  exp::CampaignConfig cc;
  cc.threads = options.threads;

  Report report(
      "bench: Table IV campaign wall-clock (streaming runner, shared assets)",
      {"strategy", "simulations", "wall_s", "sims_per_s", "sims_with_alerts",
       "sims_with_hazards", "sims_with_accidents", "hazards_without_alerts",
       "fcw_activations", "lane_invasion_rate_mean", "tth_mean", "tth_std"});

  double total_wall = 0.0;
  std::size_t total_sims = 0;
  for (const Table4Strategy& row : table4_strategies()) {
    const auto [agg, wall] =
        run_table4_strategy(row, options, cc, progress, "bench");
    total_wall += wall;
    total_sims += agg.simulations;
    report.add_row(
        {to_string(row.kind), ll(agg.simulations), wall,
         wall > 0.0 ? static_cast<double>(agg.simulations) / wall : 0.0,
         ll(agg.sims_with_alerts), ll(agg.sims_with_hazards),
         ll(agg.sims_with_accidents), ll(agg.hazards_without_alerts),
         ll(agg.fcw_activations), agg.lane_invasion_rate_mean, agg.tth_mean,
         agg.tth_std});
    note(progress, "[bench] " + to_string(row.kind) + ": " +
                       std::to_string(agg.simulations) + " sims in " +
                       std::to_string(wall) + " s");
  }
  report.add_row(
      {std::string("TOTAL"), ll(total_sims), total_wall,
       total_wall > 0.0 ? static_cast<double>(total_sims) / total_wall : 0.0,
       0LL, 0LL, 0LL, 0LL, 0LL, 0.0, 0.0, 0.0});
  return report;
}

Report fig7_report(const CampaignOptions& options, std::ostream* progress) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = options.seed;

  sim::World world(exp::world_config_for(item));
  sim::Trace trace;
  const auto summary = world.run(&trace);
  if (options.decimate > 1)
    trace.decimate(static_cast<std::size_t>(options.decimate));

  Report report(
      "Fig 7: Ego trajectory during an attack-free simulation (S1)",
      {"time", "ego_s", "ego_d", "ego_speed", "lane_center", "lane_left",
       "lane_right", "lead_gap", "accel_cmd", "steer_cmd", "attack_active",
       "alert_active", "driver_engaged"});
  for (const auto& r : trace.rows()) {
    report.add_row({r.time, r.ego_s, r.ego_d, r.ego_speed, r.lane_center,
                    r.lane_left, r.lane_right, r.lead_gap, r.accel_cmd,
                    r.steer_cmd, r.attack_active, r.alert_active,
                    r.driver_engaged});
  }
  note(progress,
       "[fig7] " + std::to_string(trace.size()) + " trace rows; " +
           std::to_string(summary.lane_invasions) + " lane invasions (" +
           std::to_string(summary.lane_invasion_rate) + "/s, paper: 0.46/s)");
  return report;
}

Report fig8_report(const CampaignOptions& options, std::ostream* progress) {
  exp::ParamSpaceConfig cfg;
  cfg.threads = options.threads;
  cfg.base_seed = options.seed;
  cfg.overlay_runs = 20 * options.reps;  // paper: 20 runs per overlay strategy

  const auto points = exp::run_param_space(cfg);

  Report report(
      "Fig 8: attack start time x duration parameter space (Acceleration)",
      {"strategy", "start_time", "duration", "hazardous"});
  for (const auto& p : points)
    report.add_row(
        {to_string(p.strategy), p.start_time, p.duration, p.hazardous});

  const double critical = exp::estimate_critical_time(points);
  note(progress, "[fig8] " + std::to_string(points.size()) +
                     " points; estimated critical start time " +
                     std::to_string(critical) + " s");
  return report;
}

const std::vector<CampaignCommand>& campaign_commands() {
  static const std::vector<CampaignCommand> kCommands = {
      {"table4", "Table IV",
       "attack-strategy comparison with an alert driver", &table4_report},
      {"table5", "Table V",
       "Context-Aware attack per type, fixed vs. strategic value corruption",
       &table5_report},
      {"fig7", "Fig. 7",
       "attack-free Ego trajectory (imperfect lane centering)", &fig7_report},
      {"fig8", "Fig. 8",
       "attack start time x duration parameter space", &fig8_report},
      {"bench", "Table IV, timed",
       "end-to-end campaign wall-clock benchmark (emits BENCH_table4.json "
       "rows)",
       &bench_report},
  };
  return kCommands;
}

const CampaignCommand* find_campaign_command(const std::string& name) {
  for (const auto& cmd : campaign_commands())
    if (cmd.name == name) return &cmd;
  return nullptr;
}

int run_campaign_command(const std::string& name,
                         const std::vector<std::string>& tokens,
                         std::ostream& out, std::ostream& err) {
  const CampaignCommand* cmd = find_campaign_command(name);
  if (!cmd) {
    err << "scaa_campaign: unknown subcommand '" << name << "'\n";
    return 2;
  }

  ArgParser args("scaa_campaign " + cmd->name,
                 cmd->paper_ref + ": " + cmd->description);
  args.add_int("--reps", 1, "repetitions per grid cell (paper: 20)", 1,
               1000000);
  args.add_int("--threads", 0, "worker threads (0 = hardware concurrency)", 0,
               4096);
  args.add_uint("--seed", 2022, "base seed mixed into every simulation");
  args.add_choice("--format", "text", {"text", "csv", "json"},
                  "output format");
  args.add_string("--out", "-", "output path ('-' = stdout)");
  if (cmd->run == &fig7_report)
    args.add_int("--decimate", 10, "keep every n-th trace row (1 = all)", 1,
                 1000000);

  try {
    args.parse_tokens(tokens);
  } catch (const ArgError& e) {
    err << e.what() << "\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    out << args.usage();
    return 0;
  }

  CampaignOptions options;
  options.reps = static_cast<int>(args.get_int("--reps"));
  options.threads = static_cast<std::size_t>(args.get_int("--threads"));
  options.seed = args.get_uint("--seed");
  if (cmd->run == &fig7_report)
    options.decimate = static_cast<int>(args.get_int("--decimate"));
  const Format format = parse_format(args.get_string("--format"));

  // Open the sink before running: campaigns can take hours at paper scale,
  // and an unwritable --out must fail now, not after the simulations.
  const std::string& out_path = args.get_string("--out");
  std::ofstream file;
  if (out_path != "-") {
    file.open(out_path);
    if (!file) {
      err << "scaa_campaign " << cmd->name << ": cannot open '" << out_path
          << "' for writing\n";
      return 1;
    }
  }

  const Report report = cmd->run(options, &err);

  if (out_path == "-") {
    report.write(out, format);
  } else {
    report.write(file, format);
    err << "[" << cmd->name << "] report written to " << out_path << "\n";
  }
  return 0;
}

}  // namespace scaa::cli
