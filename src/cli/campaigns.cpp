#include "cli/campaigns.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "cli/args.hpp"
#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "exp/param_space.hpp"
#include "exp/tables.hpp"
#include "geom/polyline.hpp"
#include "msg/bus.hpp"
#include "road/builder.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace scaa::cli {

std::vector<geom::Vec2> projection_workload(const geom::Polyline& line,
                                            std::size_t ticks,
                                            std::size_t lanes) {
  std::vector<geom::Vec2> points;
  points.reserve(ticks * lanes);
  util::Rng rng(2022);
  std::vector<double> s(lanes);
  for (std::size_t l = 0; l < lanes; ++l)
    s[l] = 30.0 + 50.0 * static_cast<double>(l);
  for (std::size_t t = 0; t < ticks; ++t) {
    for (std::size_t l = 0; l < lanes; ++l) {
      s[l] += rng.uniform(0.25, 0.35);
      if (s[l] > line.length() - 10.0) s[l] = 30.0;
      const geom::Vec2 normal =
          geom::heading_vector(line.heading_at(s[l])).perp();
      points.push_back(line.position_at(s[l]) +
                       normal * rng.uniform(-3.0, 3.0));
    }
  }
  return points;
}

namespace {

long long ll(std::size_t v) { return static_cast<long long>(v); }

void note(std::ostream* progress, const std::string& line) {
  if (progress) *progress << line << "\n" << std::flush;
}

/// The single options -> CampaignConfig mapping: every campaign entry
/// point goes through here, so a future config knob cannot be wired in one
/// subcommand and silently dropped in another.
exp::CampaignConfig campaign_config(const CampaignOptions& options) {
  exp::CampaignConfig cc;
  cc.threads = options.threads;
  cc.base_seed = options.seed;
  cc.repetitions = options.reps;
  return cc;
}

/// Likewise for the Fig 8 sweep: fig8_report and bench --campaign fig8
/// must time the identical workload.
exp::ParamSpaceConfig fig8_config(const CampaignOptions& options) {
  exp::ParamSpaceConfig cfg;
  cfg.threads = options.threads;
  cfg.base_seed = options.seed;
  cfg.overlay_runs = 20 * options.reps;  // paper: 20 runs per overlay strategy
  return cfg;
}

/// Filesystem-safe slice token: "Random-ST+DUR" -> "random-st-dur".
std::string slice_slug(const std::string& name) {
  std::string slug;
  slug.reserve(name.size());
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      slug += c;
    } else if (c >= 'A' && c <= 'Z') {
      slug += static_cast<char>(c - 'A' + 'a');
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

/// Per-slice checkpoint file: multi-campaign subcommands (table4 runs five
/// strategies, table5 four slices) keep one file per grid under the user's
/// --checkpoint stem, because each grid has its own fingerprint.
std::string checkpoint_path(const CampaignOptions& options,
                            const std::string& slice) {
  return options.checkpoint + "." + slice_slug(slice);
}

/// Open the checkpoint for one slice (Checkpoint selects the mode:
/// exp::CampaignCheckpoint for streaming aggregates, exp::ResultsCheckpoint
/// for table5's per-item pairing); null when checkpointing is off. Notes
/// restored progress so a resumed run says where it picks up from.
template <class Checkpoint>
std::unique_ptr<Checkpoint> open_checkpoint(
    const CampaignOptions& options, const std::string& slice,
    const std::vector<exp::CampaignItem>& grid, std::ostream* progress) {
  if (options.checkpoint.empty()) return nullptr;
  auto ckpt = std::make_unique<Checkpoint>(checkpoint_path(options, slice),
                                           grid, options.resume);
  if (ckpt->completed_items() > 0)
    note(progress, "[" + slice + "] resuming: " +
                       std::to_string(ckpt->completed_items()) + "/" +
                       std::to_string(grid.size()) +
                       " sims restored from checkpoint");
  return ckpt;
}

/// Run one Table IV strategy through the streaming runner. The single
/// grid-construction + run path shared by table4_report and bench_report,
/// so the two can never drift apart (bench's aggregate columns double as
/// a seed-for-seed identity check against table4).
struct StrategyRun {
  exp::Aggregate agg;
  double wall_s = 0.0;
  std::size_t fresh_sims = 0;  ///< simulations actually run (not restored)
};

StrategyRun run_table4_strategy(const Table4Strategy& row,
                                const CampaignOptions& options,
                                const exp::CampaignConfig& cc,
                                std::ostream* progress,
                                const std::string& tag) {
  const std::string slice = tag + " " + to_string(row.kind);
  const auto grid =
      exp::make_grid(row.kind, row.strategic, /*driver_enabled=*/true, cc,
                     options.reps * row.rep_multiplier);
  const auto checkpoint = open_checkpoint<exp::CampaignCheckpoint>(
      options, slice, grid, progress);
  const auto start = std::chrono::steady_clock::now();
  // Streaming runner: O(threads) live memory instead of one result per
  // simulation, with per-chunk progress while the grid drains.
  StrategyRun run;
  run.fresh_sims =
      grid.size() - (checkpoint ? checkpoint->completed_items() : 0);
  run.agg = exp::run_campaign_streaming(grid, cc,
                                        decile_progress(progress, slice),
                                        checkpoint.get());
  run.wall_s = util::seconds_since(start);
  return run;
}

}  // namespace

exp::CampaignProgressFn decile_progress(std::ostream* out,
                                        const std::string& tag) {
  if (out == nullptr) return {};
  auto last_decile = std::make_shared<int>(-1);
  return [out, tag, last_decile](const exp::CampaignProgress& p) {
    if (p.total == 0 || p.completed == 0) return;
    const int decile = static_cast<int>(10 * p.completed / p.total);
    // Print only when a new decile is crossed, and track the latest one so
    // a chunk that crosses several deciles emits a single line. completed
    // == total lands in decile 10, so the 100% line prints exactly once —
    // including for campaigns that finish within one chunk.
    if (decile <= *last_decile) return;
    *last_decile = decile;
    *out << "[" << tag << "] " << p.completed << "/" << p.total << " sims\n"
         << std::flush;
  };
}

const std::vector<Table4Strategy>& table4_strategies() {
  // Paper Table III: Random-ST+DUR uses 10x repetitions (14,400 sims) for
  // parameter-space coverage; every other strategy runs the base grid.
  static const std::vector<Table4Strategy> kStrategies = {
      {attack::StrategyKind::kNone, false, 1},
      {attack::StrategyKind::kRandomStDur, false, 10},
      {attack::StrategyKind::kRandomSt, false, 1},
      {attack::StrategyKind::kRandomDur, false, 1},
      {attack::StrategyKind::kContextAware, true, 1},
  };
  return kStrategies;
}

Report table4_report(const CampaignOptions& options, std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);

  Report report("Table IV: attack strategy comparison with an alert driver",
                {"strategy", "simulations", "sims_with_alerts",
                 "sims_with_hazards", "sims_with_accidents",
                 "hazards_without_alerts", "fcw_activations",
                 "lane_invasion_rate_mean", "tth_mean", "tth_std"});
  for (const Table4Strategy& row : table4_strategies()) {
    const auto agg =
        run_table4_strategy(row, options, cc, progress, "table4").agg;
    report.add_row({to_string(row.kind), ll(agg.simulations),
                    ll(agg.sims_with_alerts), ll(agg.sims_with_hazards),
                    ll(agg.sims_with_accidents), ll(agg.hazards_without_alerts),
                    ll(agg.fcw_activations), agg.lane_invasion_rate_mean,
                    agg.tth_mean, agg.tth_std});
    note(progress, "[table4] " + to_string(row.kind) + " done: " +
                       std::to_string(agg.simulations) + " sims");
  }
  return report;
}

Report table5_report(const CampaignOptions& options, std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);
  const auto kind = attack::StrategyKind::kContextAware;

  // Table V pairs driver-on with driver-off per item, so each slice runs
  // through the materializing path with a per-item results checkpoint.
  auto run = [&](bool strategic, bool driver, const std::string& slice) {
    const auto grid = exp::make_grid(kind, strategic, driver, cc);
    const auto checkpoint = open_checkpoint<exp::ResultsCheckpoint>(
        options, slice, grid, progress);
    return exp::run_campaign(grid, cc, checkpoint.get());
  };

  note(progress, "[table5] fixed values, driver on...");
  const auto fixed_on = run(false, true, "table5 fixed-on");
  note(progress, "[table5] fixed values, driver off...");
  const auto fixed_off = run(false, false, "table5 fixed-off");
  note(progress, "[table5] strategic values, driver on...");
  const auto strat_on = run(true, true, "table5 strategic-on");
  note(progress, "[table5] strategic values, driver off...");
  const auto strat_off = run(true, false, "table5 strategic-off");

  const auto fixed = exp::pair_driver_outcomes(fixed_on, fixed_off);
  const auto strategic = exp::pair_driver_outcomes(strat_on, strat_off);

  Report report(
      "Table V: Context-Aware attack per type, fixed vs. strategic values",
      {"attack_type", "values", "simulations", "sims_with_alerts",
       "sims_with_hazards", "sims_with_accidents", "prevented_hazards",
       "new_hazards", "prevented_accidents", "driver_preventions",
       "nodriver_hazards", "nodriver_accidents", "tth_mean", "tth_std"});
  const struct {
    const char* label;
    const std::map<attack::AttackType, exp::TypeOutcome>& outcomes;
  } slices[] = {{"fixed", fixed}, {"strategic", strategic}};
  for (const auto& slice : slices) {
    for (const auto& [type, o] : slice.outcomes) {
      report.add_row({to_string(type), std::string(slice.label),
                      ll(o.agg.simulations), ll(o.agg.sims_with_alerts),
                      ll(o.agg.sims_with_hazards),
                      ll(o.agg.sims_with_accidents), ll(o.prevented_hazards),
                      ll(o.new_hazards), ll(o.prevented_accidents),
                      ll(o.driver_preventions), ll(o.nodriver_hazards),
                      ll(o.nodriver_accidents), o.agg.tth_mean,
                      o.agg.tth_std});
    }
  }
  return report;
}

namespace {

/// bench --campaign table5: wall-clock per Table V slice (the four
/// materializing campaigns), emitted as BENCH_table5.json rows.
Report bench_table5_report(const CampaignOptions& options,
                           std::ostream* progress) {
  const exp::CampaignConfig cc = campaign_config(options);
  const auto kind = attack::StrategyKind::kContextAware;

  Report report("bench: Table V campaign wall-clock (materializing runner)",
                {"slice", "simulations", "wall_s", "sims_per_s"});
  const struct {
    const char* slice;
    bool strategic;
    bool driver;
  } slices[] = {{"fixed-on", false, true},
                {"fixed-off", false, false},
                {"strategic-on", true, true},
                {"strategic-off", true, false}};
  double total_wall = 0.0;
  std::size_t total_sims = 0;
  std::size_t total_fresh = 0;
  for (const auto& s : slices) {
    const auto grid = exp::make_grid(kind, s.strategic, s.driver, cc);
    const auto checkpoint = open_checkpoint<exp::ResultsCheckpoint>(
        options, std::string("bench-table5 ") + s.slice, grid, progress);
    const auto start = std::chrono::steady_clock::now();
    // Throughput over freshly computed sims only: restored chunks cost ~no
    // wall-clock, and a resumed bench must not emit an inflated trajectory
    // point.
    const std::size_t fresh =
        grid.size() - (checkpoint ? checkpoint->completed_items() : 0);
    const auto results = exp::run_campaign(grid, cc, checkpoint.get());
    const double wall = util::seconds_since(start);
    total_wall += wall;
    total_sims += results.size();
    total_fresh += fresh;
    report.add_row(
        {std::string(s.slice), ll(results.size()), wall,
         wall > 0.0 ? static_cast<double>(fresh) / wall : 0.0});
    note(progress, "[bench-table5] " + std::string(s.slice) + ": " +
                       std::to_string(fresh) + " sims in " +
                       std::to_string(wall) + " s");
  }
  report.add_row(
      {std::string("TOTAL"), ll(total_sims), total_wall,
       total_wall > 0.0 ? static_cast<double>(total_fresh) / total_wall
                        : 0.0});
  return report;
}

/// bench --campaign fig8: wall-clock of the parameter-space sweep, emitted
/// as BENCH_fig8.json rows.
Report bench_fig8_report(const CampaignOptions& options,
                         std::ostream* progress) {
  const exp::ParamSpaceConfig cfg = fig8_config(options);

  Report report("bench: Fig 8 parameter-space sweep wall-clock",
                {"slice", "points", "wall_s", "points_per_s"});
  const auto start = std::chrono::steady_clock::now();
  const auto points = exp::run_param_space(cfg);
  const double wall = util::seconds_since(start);
  report.add_row(
      {std::string("fig8"), ll(points.size()), wall,
       wall > 0.0 ? static_cast<double>(points.size()) / wall : 0.0});
  note(progress, "[bench-fig8] " + std::to_string(points.size()) +
                     " points in " + std::to_string(wall) + " s");
  return report;
}

/// The `Polyline::project` kernel row of BENCH_table4.json: one million
/// hinted projections of the campaign hot-loop shape (a point advancing
/// ~0.3 m per query along the paper road). "simulations" holds the fixed
/// operation count and sims_per_s the projection throughput; the remaining
/// aggregate columns are structurally zero, so bench_diff.py's
/// deterministic-column check applies to this row unchanged.
void add_project_kernel_row(Report& report, std::ostream* progress) {
  const road::Road road = road::RoadBuilder::paper_road();
  const geom::Polyline& line = road.reference();
  constexpr std::size_t kOps = 1'000'000;
  const std::vector<geom::Vec2> points =
      projection_workload(line, kOps, /*lanes=*/1);

  double hint = -1.0;
  double sink = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (const geom::Vec2 p : points) {
    const auto proj = line.project(p, hint);
    hint = proj.s;
    sink += proj.lateral;
  }
  const double wall = util::seconds_since(start);
  // Keep the loop observable without polluting the report.
  if (!std::isfinite(sink)) note(progress, "[bench] project sink overflow");

  report.add_row(
      {std::string("Polyline::project"), ll(kOps), wall,
       wall > 0.0 ? static_cast<double>(kOps) / wall : 0.0, 0LL, 0LL, 0LL,
       0LL, 0LL, 0.0, 0.0, 0.0});
  note(progress, "[bench] Polyline::project: " + std::to_string(kOps) +
                     " hinted projections in " + std::to_string(wall) +
                     " s");
}

/// The `PubSubBus::publish` kernel row of BENCH_table4.json: the
/// steady-state publish mix of 200k 100 Hz ticks (cli::bus_tick_workload,
/// shared with bench_step's bus_publish_* rows) delivered to typed latches
/// on all six topics — the campaign's subscriber shape, where no raw tap
/// is attached and the lazy wire path never serializes. "simulations"
/// holds the fixed publish count and sims_per_s the publish throughput;
/// the remaining aggregate columns are structurally zero, so
/// bench_diff.py's deterministic-column check applies unchanged.
void add_bus_kernel_row(Report& report, std::ostream* progress) {
  constexpr std::uint64_t kTicks = 200'000;
  const std::uint64_t ops = bus_tick_workload_count(kTicks);

  msg::PubSubBus bus;
  msg::Latest<msg::GpsLocationExternal> gps(bus);
  msg::Latest<msg::ModelV2> model(bus);
  msg::Latest<msg::RadarState> radar(bus);
  msg::Latest<msg::CarState> car_state(bus);
  msg::Latest<msg::CarControl> car_control(bus);
  msg::Latest<msg::ControlsState> controls_state(bus);

  const auto start = std::chrono::steady_clock::now();
  bus_tick_workload(kTicks, [&bus](const auto& m) { bus.publish(m); });
  const double wall = util::seconds_since(start);
  // Keep the loop observable without polluting the report.
  const double sink = gps.value().speed + radar.value().lead_distance +
                      car_state.value().speed + model.value().left_lane_line +
                      car_control.value().accel +
                      static_cast<double>(controls_state.value().alert_count);
  if (!std::isfinite(sink)) note(progress, "[bench] bus sink overflow");

  report.add_row(
      {std::string("PubSubBus::publish"), ll(ops), wall,
       wall > 0.0 ? static_cast<double>(ops) / wall : 0.0, 0LL, 0LL, 0LL,
       0LL, 0LL, 0.0, 0.0, 0.0});
  note(progress, "[bench] PubSubBus::publish: " + std::to_string(ops) +
                     " typed publishes in " + std::to_string(wall) + " s");
}

/// The `World::reset` kernel row of BENCH_table4.json: re-arming one
/// resident World (the per-worker arena lifecycle) across the campaign's
/// attack-item shape, allocation-free and bit-identical to fresh
/// construction. "simulations" holds the fixed reset count and sims_per_s
/// the reset throughput; the remaining aggregate columns are structurally
/// zero, so bench_diff.py's deterministic-column check applies unchanged.
void add_world_reset_kernel_row(Report& report, std::ostream* progress) {
  constexpr std::size_t kOps = 2'000;
  const exp::WorldAssets assets = exp::WorldAssets::make_default();
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kContextAware;
  item.type = attack::AttackType::kAcceleration;
  sim::World world(exp::world_config_for(item, assets));

  double sink = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    item.seed = i + 1;
    world.reset(exp::world_config_for(item, assets));
    sink += world.ego_state().speed;
  }
  const double wall = util::seconds_since(start);
  // Keep the loop observable without polluting the report.
  if (!std::isfinite(sink)) note(progress, "[bench] reset sink overflow");

  report.add_row(
      {std::string("World::reset"), ll(kOps), wall,
       wall > 0.0 ? static_cast<double>(kOps) / wall : 0.0, 0LL, 0LL, 0LL,
       0LL, 0LL, 0.0, 0.0, 0.0});
  note(progress, "[bench] World::reset: " + std::to_string(kOps) +
                     " in-place resets in " + std::to_string(wall) + " s");
}

}  // namespace

Report bench_report(const CampaignOptions& options, std::ostream* progress) {
  if (options.bench_campaign == "table5")
    return bench_table5_report(options, progress);
  if (options.bench_campaign == "fig8")
    return bench_fig8_report(options, progress);

  const exp::CampaignConfig cc = campaign_config(options);

  Report report(
      "bench: Table IV campaign wall-clock (streaming runner, shared assets)",
      {"strategy", "simulations", "wall_s", "sims_per_s", "sims_with_alerts",
       "sims_with_hazards", "sims_with_accidents", "hazards_without_alerts",
       "fcw_activations", "lane_invasion_rate_mean", "tth_mean", "tth_std"});

  double total_wall = 0.0;
  std::size_t total_sims = 0;
  std::size_t total_fresh = 0;
  for (const Table4Strategy& row : table4_strategies()) {
    const auto [agg, wall, fresh] =
        run_table4_strategy(row, options, cc, progress, "bench");
    total_wall += wall;
    total_sims += agg.simulations;
    total_fresh += fresh;
    // sims_per_s counts only freshly computed sims: restored checkpoint
    // chunks cost ~no wall-clock, and a resumed bench must not emit an
    // inflated trajectory point (the aggregate columns still cover the
    // full grid — that is the identity check against table4).
    report.add_row(
        {to_string(row.kind), ll(agg.simulations), wall,
         wall > 0.0 ? static_cast<double>(fresh) / wall : 0.0,
         ll(agg.sims_with_alerts), ll(agg.sims_with_hazards),
         ll(agg.sims_with_accidents), ll(agg.hazards_without_alerts),
         ll(agg.fcw_activations), agg.lane_invasion_rate_mean, agg.tth_mean,
         agg.tth_std});
    note(progress, "[bench] " + to_string(row.kind) + ": " +
                       std::to_string(fresh) + " sims in " +
                       std::to_string(wall) + " s");
  }
  report.add_row(
      {std::string("TOTAL"), ll(total_sims), total_wall,
       total_wall > 0.0 ? static_cast<double>(total_fresh) / total_wall : 0.0,
       0LL, 0LL, 0LL, 0LL, 0LL, 0.0, 0.0, 0.0});
  add_project_kernel_row(report, progress);
  add_bus_kernel_row(report, progress);
  add_world_reset_kernel_row(report, progress);
  return report;
}

Report fig7_report(const CampaignOptions& options, std::ostream* progress) {
  exp::CampaignItem item;
  item.strategy = attack::StrategyKind::kNone;
  item.scenario_id = 1;
  item.initial_gap = 100.0;
  item.seed = options.seed;

  sim::World world(exp::world_config_for(item));
  sim::Trace trace;
  const auto summary = world.run(&trace);
  if (options.decimate > 1)
    trace.decimate(static_cast<std::size_t>(options.decimate));

  Report report(
      "Fig 7: Ego trajectory during an attack-free simulation (S1)",
      {"time", "ego_s", "ego_d", "ego_speed", "lane_center", "lane_left",
       "lane_right", "lead_gap", "accel_cmd", "steer_cmd", "attack_active",
       "alert_active", "driver_engaged"});
  for (const auto& r : trace.rows()) {
    report.add_row({r.time, r.ego_s, r.ego_d, r.ego_speed, r.lane_center,
                    r.lane_left, r.lane_right, r.lead_gap, r.accel_cmd,
                    r.steer_cmd, r.attack_active, r.alert_active,
                    r.driver_engaged});
  }
  note(progress,
       "[fig7] " + std::to_string(trace.size()) + " trace rows; " +
           std::to_string(summary.lane_invasions) + " lane invasions (" +
           std::to_string(summary.lane_invasion_rate) + "/s, paper: 0.46/s)");
  return report;
}

Report fig8_report(const CampaignOptions& options, std::ostream* progress) {
  const auto points = exp::run_param_space(fig8_config(options));

  Report report(
      "Fig 8: attack start time x duration parameter space (Acceleration)",
      {"strategy", "start_time", "duration", "hazardous"});
  for (const auto& p : points)
    report.add_row(
        {to_string(p.strategy), p.start_time, p.duration, p.hazardous});

  const double critical = exp::estimate_critical_time(points);
  note(progress, "[fig8] " + std::to_string(points.size()) +
                     " points; estimated critical start time " +
                     std::to_string(critical) + " s");
  return report;
}

const std::vector<CampaignCommand>& campaign_commands() {
  static const std::vector<CampaignCommand> kCommands = {
      {"table4", "Table IV",
       "attack-strategy comparison with an alert driver", &table4_report},
      {"table5", "Table V",
       "Context-Aware attack per type, fixed vs. strategic value corruption",
       &table5_report},
      {"fig7", "Fig. 7",
       "attack-free Ego trajectory (imperfect lane centering)", &fig7_report},
      {"fig8", "Fig. 8",
       "attack start time x duration parameter space", &fig8_report},
      {"bench", "Tables IV/V + Fig. 8, timed",
       "end-to-end campaign wall-clock benchmark (--campaign "
       "table4|table5|fig8 emits BENCH_<campaign>.json rows)",
       &bench_report},
  };
  return kCommands;
}

const CampaignCommand* find_campaign_command(const std::string& name) {
  for (const auto& cmd : campaign_commands())
    if (cmd.name == name) return &cmd;
  return nullptr;
}

int run_campaign_command(const std::string& name,
                         const std::vector<std::string>& tokens,
                         std::ostream& out, std::ostream& err) {
  const CampaignCommand* cmd = find_campaign_command(name);
  if (!cmd) {
    err << "scaa_campaign: unknown subcommand '" << name << "'\n";
    return 2;
  }

  ArgParser args("scaa_campaign " + cmd->name,
                 cmd->paper_ref + ": " + cmd->description);
  args.add_int("--reps", 1, "repetitions per grid cell (paper: 20)", 1,
               1000000);
  args.add_int("--threads", 0, "worker threads (0 = hardware concurrency)", 0,
               4096);
  args.add_uint("--seed", 2022, "base seed mixed into every simulation");
  args.add_choice("--format", "text", {"text", "csv", "json"},
                  "output format");
  args.add_string("--out", "-", "output path ('-' = stdout)");
  if (cmd->run == &fig7_report)
    args.add_int("--decimate", 10, "keep every n-th trace row (1 = all)", 1,
                 1000000);
  // Long-running grid campaigns checkpoint per chunk; fig7/fig8 are either
  // instant or a different workload shape, so they don't take the flags.
  const bool checkpointable =
      cmd->run == &table4_report || cmd->run == &table5_report ||
      cmd->run == &bench_report;
  if (checkpointable) {
    args.add_string("--checkpoint", "",
                    "crash-safe checkpoint path stem; each campaign slice "
                    "appends to <stem>.<slice>");
    args.add_bool("--resume",
                  "restore completed chunks from --checkpoint files and run "
                  "only the rest (fresh files are created when absent)");
  }
  if (cmd->run == &bench_report)
    args.add_choice("--campaign", "table4", {"table4", "table5", "fig8"},
                    "which campaign to time (emits BENCH_<campaign>.json "
                    "rows)");

  try {
    args.parse_tokens(tokens);
  } catch (const ArgError& e) {
    err << e.what() << "\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    out << args.usage();
    return 0;
  }

  CampaignOptions options;
  options.reps = static_cast<int>(args.get_int("--reps"));
  options.threads = static_cast<std::size_t>(args.get_int("--threads"));
  options.seed = args.get_uint("--seed");
  if (cmd->run == &fig7_report)
    options.decimate = static_cast<int>(args.get_int("--decimate"));
  if (checkpointable) {
    options.checkpoint = args.get_string("--checkpoint");
    options.resume = args.get_bool("--resume");
    if (options.resume && options.checkpoint.empty()) {
      err << "scaa_campaign " << cmd->name
          << ": --resume requires --checkpoint PATH\n"
          << args.usage();
      return 2;
    }
  }
  if (cmd->run == &bench_report) {
    options.bench_campaign = args.get_string("--campaign");
    // The fig8 parameter-space sweep does not run through the chunked grid
    // runners, so it cannot checkpoint yet; silently ignoring the flags
    // would leave the user believing an hour-long run was protected.
    if (options.bench_campaign == "fig8" && !options.checkpoint.empty()) {
      err << "scaa_campaign bench: --checkpoint is not supported with "
             "--campaign fig8 (the parameter-space sweep has no chunked "
             "checkpoint path yet)\n";
      return 2;
    }
  }
  const Format format = parse_format(args.get_string("--format"));

  // Open the sink before running: campaigns can take hours at paper scale,
  // and an unwritable --out must fail now, not after the simulations.
  const std::string& out_path = args.get_string("--out");
  std::ofstream file;
  if (out_path != "-") {
    file.open(out_path);
    if (!file) {
      err << "scaa_campaign " << cmd->name << ": cannot open '" << out_path
          << "' for writing\n";
      return 1;
    }
  }

  // A checkpoint refusal/corruption (or any campaign failure) must be a
  // clean diagnostic + nonzero exit, not a std::terminate in main().
  std::optional<Report> report_holder;
  try {
    report_holder.emplace(cmd->run(options, &err));
  } catch (const std::exception& e) {
    err << "scaa_campaign " << cmd->name << ": " << e.what() << "\n";
    return 1;
  }
  const Report& report = *report_holder;

  if (out_path == "-") {
    report.write(out, format);
  } else {
    report.write(file, format);
    err << "[" << cmd->name << "] report written to " << out_path << "\n";
  }
  return 0;
}

}  // namespace scaa::cli
