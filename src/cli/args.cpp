#include "cli/args.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>

namespace scaa::cli {

namespace {

/// Strict whole-token numeric parse: the entire token must be consumed.
template <typename T>
bool parse_number(const std::string& token, T& out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

/// libstdc++ 12 has no floating-point from_chars overload guarantees we
/// want to rely on; go through strtod with a full-consumption check.
bool parse_number(const std::string& token, double& out) {
  if (token.empty()) return false;
  std::size_t consumed = 0;
  try {
    out = std::stod(token, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == token.size();
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser::Flag& ArgParser::declare(const std::string& name, Kind kind,
                                    const std::string& help) {
  Flag flag;
  flag.kind = kind;
  flag.help = help;
  auto [it, inserted] = flags_.emplace(name, std::move(flag));
  if (!inserted) throw std::logic_error("duplicate flag declared: " + name);
  order_.push_back(name);
  return it->second;
}

ArgParser& ArgParser::add_int(const std::string& name, long long default_value,
                              const std::string& help, long long min_value,
                              long long max_value) {
  Flag& f = declare(name, Kind::kInt, help);
  f.int_value = default_value;
  f.int_min = min_value;
  f.int_max = max_value;
  f.default_text = std::to_string(default_value);
  return *this;
}

ArgParser& ArgParser::add_uint(const std::string& name,
                               std::uint64_t default_value,
                               const std::string& help) {
  Flag& f = declare(name, Kind::kUint, help);
  f.uint_value = default_value;
  f.default_text = std::to_string(default_value);
  return *this;
}

ArgParser& ArgParser::add_double(const std::string& name, double default_value,
                                 const std::string& help) {
  Flag& f = declare(name, Kind::kDouble, help);
  f.double_value = default_value;
  std::ostringstream os;
  os << default_value;
  f.default_text = os.str();
  return *this;
}

ArgParser& ArgParser::add_string(const std::string& name,
                                 std::string default_value,
                                 const std::string& help) {
  Flag& f = declare(name, Kind::kString, help);
  f.default_text = default_value;
  f.string_value = std::move(default_value);
  return *this;
}

ArgParser& ArgParser::add_choice(const std::string& name,
                                 std::string default_value,
                                 std::vector<std::string> choices,
                                 const std::string& help) {
  Flag& f = declare(name, Kind::kString, help);
  f.choices = std::move(choices);
  f.default_text = default_value;
  f.string_value = std::move(default_value);
  return *this;
}

ArgParser& ArgParser::add_bool(const std::string& name,
                               const std::string& help) {
  declare(name, Kind::kBool, help);
  return *this;
}

void ArgParser::assign(const std::string& name, Flag& flag,
                       const std::string& value) {
  switch (flag.kind) {
    case Kind::kInt:
      if (!parse_number(value, flag.int_value))
        throw ArgError(program_ + ": " + name + " expects an integer, got '" +
                       value + "'");
      if (flag.int_value < flag.int_min || flag.int_value > flag.int_max)
        throw ArgError(program_ + ": " + name + " must be in [" +
                       std::to_string(flag.int_min) + ", " +
                       std::to_string(flag.int_max) + "], got " + value);
      break;
    case Kind::kUint:
      if (!parse_number(value, flag.uint_value))
        throw ArgError(program_ + ": " + name +
                       " expects a non-negative integer, got '" + value + "'");
      break;
    case Kind::kDouble:
      if (!parse_number(value, flag.double_value))
        throw ArgError(program_ + ": " + name + " expects a number, got '" +
                       value + "'");
      break;
    case Kind::kString:
      if (!flag.choices.empty() &&
          std::find(flag.choices.begin(), flag.choices.end(), value) ==
              flag.choices.end()) {
        std::string allowed;
        for (const auto& c : flag.choices)
          allowed += (allowed.empty() ? "" : "|") + c;
        throw ArgError(program_ + ": " + name + " must be one of " + allowed +
                       ", got '" + value + "'");
      }
      flag.string_value = value;
      break;
    case Kind::kBool:
      throw ArgError(program_ + ": " + name + " takes no value");
  }
  flag.provided = true;
}

void ArgParser::parse(int argc, char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(argc > 1 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse_tokens(tokens);
}

void ArgParser::parse_tokens(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      continue;
    }
    if (token.rfind("--", 0) != 0)
      throw ArgError(program_ + ": unexpected argument '" + token + "'");

    std::string name = token;
    std::string inline_value;
    bool has_inline_value = false;
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      name = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
      has_inline_value = true;
    }

    const auto it = flags_.find(name);
    if (it == flags_.end())
      throw ArgError(program_ + ": unknown flag '" + name + "' (see --help)");
    Flag& flag = it->second;

    if (flag.kind == Kind::kBool) {
      if (has_inline_value)
        throw ArgError(program_ + ": " + name + " takes no value");
      flag.bool_value = true;
      flag.provided = true;
      continue;
    }

    if (has_inline_value) {
      assign(name, flag, inline_value);
      continue;
    }
    if (i + 1 >= tokens.size())
      throw ArgError(program_ + ": " + name + " requires a value");
    assign(name, flag, tokens[++i]);
  }
}

bool ArgParser::provided(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end())
    throw std::logic_error("flag never declared: " + name);
  return it->second.provided;
}

const ArgParser::Flag& ArgParser::lookup(const std::string& name,
                                         Kind kind) const {
  const auto it = flags_.find(name);
  if (it == flags_.end())
    throw std::logic_error("flag never declared: " + name);
  if (it->second.kind != kind)
    throw std::logic_error("flag accessed with the wrong type: " + name);
  return it->second;
}

long long ArgParser::get_int(const std::string& name) const {
  return lookup(name, Kind::kInt).int_value;
}

std::uint64_t ArgParser::get_uint(const std::string& name) const {
  return lookup(name, Kind::kUint).uint_value;
}

double ArgParser::get_double(const std::string& name) const {
  return lookup(name, Kind::kDouble).double_value;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).string_value;
}

bool ArgParser::get_bool(const std::string& name) const {
  return lookup(name, Kind::kBool).bool_value;
}

int ArgParser::parse_or_exit_code(int argc, char* const* argv) {
  try {
    parse(argc, argv);
  } catch (const ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), usage().c_str());
    return 2;
  }
  if (help_requested_) {
    std::fprintf(stdout, "%s", usage().c_str());
    return 0;
  }
  return -1;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "Usage: " << program_ << " [flags]\n";
  if (!description_.empty()) os << "  " << description_ << "\n";
  os << "\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    std::string left = "  " + name;
    switch (f.kind) {
      case Kind::kInt:
      case Kind::kUint:
        left += " <N>";
        break;
      case Kind::kDouble:
        left += " <X>";
        break;
      case Kind::kString:
        if (!f.choices.empty()) {
          left += " <";
          for (std::size_t i = 0; i < f.choices.size(); ++i)
            left += (i ? "|" : "") + f.choices[i];
          left += ">";
        } else {
          left += " <VALUE>";
        }
        break;
      case Kind::kBool:
        break;
    }
    os << left;
    if (left.size() < 30) os << std::string(30 - left.size(), ' ');
    os << " " << f.help;
    if (f.kind != Kind::kBool) os << " (default: " << f.default_text << ")";
    os << "\n";
  }
  os << "  --help" << std::string(24, ' ') << " show this message\n";
  return os.str();
}

}  // namespace scaa::cli
