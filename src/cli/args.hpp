#pragma once

/// @file args.hpp
/// Strict command-line parsing shared by scaa_campaign and every bench
/// binary.
///
/// This replaces the ad-hoc `for (int i = 1; i < argc - 1; ++i)` loops the
/// bench mains used to carry, which had two real bugs: a flag in the final
/// argv position was silently ignored (the loop never visited argv[argc-1]),
/// and `--reps banana` silently became 0 via atoi. Here every token must be
/// a declared flag, every value-taking flag must have a value, and numeric
/// values must parse in full — anything else raises ArgError with a message
/// naming the offending token.

#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace scaa::cli {

/// Raised on any malformed command line. The message is user-facing.
class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative flag table + strict parser.
///
///   ArgParser args("bench_table4", "Reproduce paper Table IV");
///   args.add_int("--reps", 20, "repetitions per grid cell");
///   args.add_int("--threads", 0, "worker threads (0 = hardware)");
///   args.parse(argc, argv);                 // throws ArgError on bad input
///   const int reps = args.get_int("--reps");
///
/// Both `--flag value` and `--flag=value` spellings are accepted. `--help`
/// is always recognized; after parse(), help_requested() tells the caller to
/// print usage() and exit 0.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare an integer flag (strictly parsed, full token must be numeric).
  /// Values outside [min_value, max_value] are rejected at parse time with a
  /// message naming the flag — the bound check happens on the long long
  /// BEFORE any narrowing cast, so out-of-range input can never wrap.
  ArgParser& add_int(const std::string& name, long long default_value,
                     const std::string& help,
                     long long min_value = std::numeric_limits<long long>::min(),
                     long long max_value = std::numeric_limits<long long>::max());

  /// Declare an unsigned 64-bit flag (e.g. seeds).
  ArgParser& add_uint(const std::string& name, std::uint64_t default_value,
                      const std::string& help);

  /// Declare a floating-point flag.
  ArgParser& add_double(const std::string& name, double default_value,
                        const std::string& help);

  /// Declare a string flag.
  ArgParser& add_string(const std::string& name, std::string default_value,
                        const std::string& help);

  /// Declare a string flag restricted to a closed set of values.
  ArgParser& add_choice(const std::string& name, std::string default_value,
                        std::vector<std::string> choices,
                        const std::string& help);

  /// Declare a boolean flag (present = true; takes no value).
  ArgParser& add_bool(const std::string& name, const std::string& help);

  /// Parse the full argv. Throws ArgError on: an undeclared flag, a missing
  /// value, a malformed number, a choice outside its set, or a stray
  /// positional token.
  void parse(int argc, char* const* argv);

  /// Testing convenience: parse pre-split tokens (argv[1..]).
  void parse_tokens(const std::vector<std::string>& tokens);

  /// True when --help appeared anywhere on the command line.
  bool help_requested() const noexcept { return help_requested_; }

  /// True when the flag was explicitly provided (not just defaulted).
  bool provided(const std::string& name) const;

  long long get_int(const std::string& name) const;
  std::uint64_t get_uint(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Render the usage/help text.
  std::string usage() const;

  /// Convenience for binary mains: parse argv; on malformed input print the
  /// error plus usage to stderr and return 2; on --help print usage to
  /// stdout and return 0; otherwise return -1 (meaning: keep going).
  int parse_or_exit_code(int argc, char* const* argv);

 private:
  enum class Kind { kInt, kUint, kDouble, kString, kBool };

  struct Flag {
    Kind kind = Kind::kString;
    std::string help;
    std::vector<std::string> choices;  ///< empty = unrestricted
    bool provided = false;
    long long int_min = std::numeric_limits<long long>::min();
    long long int_max = std::numeric_limits<long long>::max();
    long long int_value = 0;
    std::uint64_t uint_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
    std::string default_text;  ///< rendered in usage()
  };

  Flag& declare(const std::string& name, Kind kind, const std::string& help);
  const Flag& lookup(const std::string& name, Kind kind) const;
  void assign(const std::string& name, Flag& flag, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;  ///< declaration order for usage()
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace scaa::cli
