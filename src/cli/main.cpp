// scaa_campaign: the unified entry point for the paper's experiment
// campaigns. Each subcommand rebuilds one artifact of the paper:
//
//   scaa_campaign table4 --reps 20 --format csv        (Table IV)
//   scaa_campaign table5 --reps 20 --format json       (Table V)
//   scaa_campaign fig7 --seed 7 --format csv           (Fig. 7 trajectory)
//   scaa_campaign fig8 --threads 8 --format csv        (Fig. 8 state space)
//
// The report goes to stdout (or --out PATH); progress lines go to stderr,
// so `scaa_campaign table4 --format csv > table4.csv` Just Works.

#include <iostream>
#include <string>
#include <vector>

#include "cli/campaigns.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "Usage: scaa_campaign <subcommand> [flags]\n\n"
         "Subcommands (paper artifact in parentheses):\n";
  for (const auto& cmd : scaa::cli::campaign_commands()) {
    std::string left = "  " + cmd.name;
    if (left.size() < 12) left += std::string(12 - left.size(), ' ');
    out << left << "(" << cmd.paper_ref << ") " << cmd.description << "\n";
  }
  out << "  list      machine-readable subcommand listing\n"
         "\nCommon flags: --reps N --threads N --seed N --format "
         "text|csv|json --out PATH\n"
         "Run `scaa_campaign <subcommand> --help` for per-command details.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string subcommand = argv[1];
  if (subcommand == "--help" || subcommand == "-h" || subcommand == "help") {
    print_usage(std::cout);
    return 0;
  }
  if (subcommand == "list") {
    for (const auto& cmd : scaa::cli::campaign_commands())
      std::cout << cmd.name << "\t" << cmd.paper_ref << "\t" << cmd.description
                << "\n";
    return 0;
  }

  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc - 2));
  for (int i = 2; i < argc; ++i) tokens.emplace_back(argv[i]);
  return scaa::cli::run_campaign_command(subcommand, tokens, std::cout,
                                         std::cerr);
}
