#pragma once

/// @file report.hpp
/// Structured campaign output: one Report = one named table of typed cells,
/// writable as CSV (machine), JSON (machine), or an aligned text table
/// (human). Every scaa_campaign subcommand and bench binary funnels its
/// results through this type so output handling lives in exactly one place.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace scaa::cli {

/// Output format selector, shared across all campaign entry points.
enum class Format { kText, kCsv, kJson };

/// Parse "text" | "csv" | "json" (throws ArgError via caller on mismatch —
/// use with ArgParser::add_choice so bad values never reach here).
Format parse_format(const std::string& name);
std::string to_string(Format format);

/// One table cell. Booleans serialize as true/false in JSON and 1/0 in CSV.
using Cell = std::variant<std::string, double, long long, bool>;

/// A named, typed result table.
class Report {
 public:
  Report(std::string name, std::vector<std::string> columns);

  /// Append a row; must have exactly one cell per column (enforced).
  void add_row(std::vector<Cell> row);

  const std::string& name() const noexcept { return name_; }
  const std::vector<std::string>& columns() const noexcept { return columns_; }
  const std::vector<std::vector<Cell>>& rows() const noexcept { return rows_; }

  /// CSV with a header row; RFC-4180 quoting via util::CsvWriter.
  void write_csv(std::ostream& out) const;

  /// A JSON object: {"report": <name>, "columns": [...], "rows": [{...}]}.
  void write_json(std::ostream& out) const;

  /// Aligned text table (util::TextTable) preceded by the report name.
  void write_text(std::ostream& out) const;

  /// Dispatch on @p format.
  void write(std::ostream& out, Format format) const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Escape a string for embedding in a JSON document (adds no quotes).
std::string json_escape(const std::string& raw);

}  // namespace scaa::cli
