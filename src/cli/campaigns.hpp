#pragma once

/// @file campaigns.hpp
/// The paper's campaigns (Table IV, Table V, Fig. 7, Fig. 8) as reusable
/// functions: each builds the experiment grid via exp::make_grid /
/// exp::run_param_space, runs it on the exp::ThreadPool, and returns a
/// cli::Report. scaa_campaign's subcommands and the tests both call these,
/// so the CLI binary itself is a thin dispatch shell.

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "attack/strategies.hpp"
#include "cli/report.hpp"
#include "exp/campaign.hpp"
#include "geom/polyline.hpp"
#include "msg/messages.hpp"

namespace scaa::cli {

/// Deterministic projection query stream shaped like the campaign hot
/// loop: @p lanes points (one per simulated vehicle) advancing ~0.3 m per
/// tick near the centerline with +/-3 m lateral jitter, wrapping before
/// the road end. Returns ticks * lanes points, tick-major. The single
/// generator behind the `Polyline::project` row of `scaa_campaign bench`
/// and the `project_*` rows of bench_step, so "same workload" comparisons
/// across the two reports cannot drift apart.
std::vector<geom::Vec2> projection_workload(const geom::Polyline& line,
                                            std::size_t ticks,
                                            std::size_t lanes);

/// Deterministic pub/sub workload shaped like the simulator's steady
/// state: for each of @p ticks 100 Hz ticks, invokes @p publish with
/// carState, carControl and controlsState (every tick) plus
/// gpsLocationExternal, modelV2 and radarState (every 5th tick), fields
/// varying deterministically with the tick. The single generator behind
/// the `PubSubBus::publish` row of `scaa_campaign bench` and the
/// `bus_publish_*` rows of bench_step, so "same workload" comparisons
/// across the two reports cannot drift apart.
template <typename Fn>
void bus_tick_workload(std::uint64_t ticks, Fn&& publish) {
  for (std::uint64_t tick = 0; tick < ticks; ++tick) {
    msg::CarState cs;
    cs.mono_time = tick;
    cs.speed = 25.0 + 0.001 * static_cast<double>(tick % 977);
    cs.accel = -0.2 + 0.0005 * static_cast<double>(tick % 211);
    cs.steer_angle = 0.001 * static_cast<double>(tick % 89);
    cs.cruise_speed = 26.8224;
    cs.cruise_enabled = true;
    cs.driver_torque = 0.1 * static_cast<double>(tick % 7);
    publish(cs);
    msg::CarControl cc;
    cc.mono_time = tick;
    cc.enabled = true;
    cc.accel = -0.5 + 0.002 * static_cast<double>(tick % 499);
    cc.steer_angle = 0.0005 * static_cast<double>(tick % 97);
    publish(cc);
    msg::ControlsState st;
    st.mono_time = tick;
    st.active = true;
    st.steer_saturated = tick % 50 == 0;
    st.fcw = false;
    st.alert_count = static_cast<std::uint32_t>(tick % 3);
    publish(st);
    if (tick % 5 == 0) {
      msg::GpsLocationExternal gps;
      gps.mono_time = tick;
      gps.latitude = 38.03 + 1e-6 * static_cast<double>(tick);
      gps.longitude = -78.51 - 1e-6 * static_cast<double>(tick);
      gps.speed = cs.speed;
      gps.bearing = 0.7;
      gps.has_fix = true;
      publish(gps);
      msg::ModelV2 model;
      model.mono_time = tick;
      model.left_lane_line = 1.85;
      model.right_lane_line = -1.85;
      model.left_line_prob = 0.97;
      model.right_line_prob = 0.95;
      model.path_curvature = 8.3e-4;
      model.path_heading_error =
          -0.002 + 1e-5 * static_cast<double>(tick % 41);
      publish(model);
      msg::RadarState radar;
      radar.mono_time = tick;
      radar.lead_valid = true;
      radar.lead_distance = 60.0 - 0.01 * static_cast<double>(tick % 1000);
      radar.lead_rel_speed = -0.5 + 0.001 * static_cast<double>(tick % 313);
      radar.lead_speed = 24.0;
      publish(radar);
    }
  }
}

/// Number of messages bus_tick_workload publishes over @p ticks ticks.
constexpr std::uint64_t bus_tick_workload_count(std::uint64_t ticks) {
  return ticks * 3 + (ticks + 4) / 5 * 3;
}

/// Knobs common to all campaigns; each subcommand maps its flags here.
struct CampaignOptions {
  int reps = 1;             ///< repetitions per grid cell (paper: 20)
  std::size_t threads = 0;  ///< worker threads (0 = hardware concurrency;
                            ///< sharded: threads PER WORKER, 0 = hw/shards)
  std::uint64_t seed = 2022;  ///< base seed mixed into every simulation
  int decimate = 10;        ///< fig7 only: keep every n-th trace row
  std::string checkpoint;   ///< checkpoint path stem; empty = no checkpoint
  bool resume = false;      ///< load completed chunks from the checkpoint
  std::string bench_campaign = "table4";  ///< bench only: campaign to time
  int shards = 0;        ///< table4/merge: worker processes (0/1 = off)
  int shard_index = -1;  ///< manual --shard i/N worker: 0-based slice index
  int shard_count = 0;   ///< manual --shard i/N worker: fleet size (0 = off)
  // `run` only:
  bool realtime = false;    ///< pin ticks to the deadline clock
  double period_s = 0.01;   ///< realtime tick period (100 Hz)
  double miss_budget = 1.0; ///< max tolerated overrun fraction (1 = never fail)
  std::string tap_fifo;     ///< stream WireFrame bytes here; empty = no tap
  int scenario = 1;         ///< paper scenario id (1..4)
  double duration = 50.0;   ///< simulated seconds
  // `faults` and `run` only:
  std::string fault_plan;   ///< benign fault plan file; empty = faults runs
                            ///< its built-in sweep, run injects nothing
};

/// Filesystem-safe slice token: "Random-ST+DUR" -> "random-st-dur".
std::string slice_slug(const std::string& name);

/// Checkpoint file for one campaign slice:
/// `<stem>.<slug>-<fp8>[.s<i+1>of<N>]`. The 8-hex-digit fingerprint prefix
/// makes the name collision-proof: two slices whose human-readable names
/// slug identically (e.g. "Fixed On" vs "fixed-on") still get distinct
/// files unless their grids are also identical — in which case sharing a
/// checkpoint is exactly right. The shard suffix (empty when
/// @p shard_count <= 1) separates the per-worker slice files of a sharded
/// run.
std::string slice_checkpoint_file(const std::string& stem,
                                  const std::string& slice,
                                  std::uint64_t fingerprint,
                                  std::size_t shard = 0,
                                  std::size_t shard_count = 0);

/// Throws std::runtime_error naming both slices if any two (name,
/// fingerprint) pairs map to the same checkpoint file under @p stem —
/// i.e. identical slugs AND identical short fingerprints for different
/// grids. Every checkpointing subcommand calls this on its full slice set
/// before opening anything, so a collision is a clear upfront diagnostic
/// instead of two campaigns silently interleaving one file.
void reject_slice_file_collisions(
    const std::string& stem,
    const std::vector<std::pair<std::string, std::uint64_t>>& slices);

/// One Table IV row spec (paper Table III): which strategy, whether it
/// corrupts values strategically, and its repetition multiplier.
struct Table4Strategy {
  attack::StrategyKind kind;
  bool strategic;  ///< Context-Aware corrupts strategically; others fixed
  int rep_multiplier;  ///< Random-ST+DUR: 10x reps for space coverage
};

/// The paper's Table IV strategy grid, in presentation order. Both
/// scaa_campaign table4 and bench_table4 iterate this single definition so
/// they can never reproduce different experiments.
const std::vector<Table4Strategy>& table4_strategies();

/// Live per-chunk progress for the streaming runner: prints one status line
/// to @p out (null = silent) each time the campaign crosses another 10% of
/// its grid, including exactly one 100% line when it finishes — a campaign
/// that fits in a single chunk still reports its completion, and a chunk
/// that crosses several deciles at once emits one line for the latest.
exp::CampaignProgressFn decile_progress(std::ostream* out,
                                        const std::string& tag);

/// Table IV: attack-strategy comparison with an alert driver. One row per
/// strategy. @p progress (may be null) receives per-strategy status lines.
///
/// Three execution modes, selected by the options:
///  - default: run every strategy in-process (streaming runner).
///  - options.shards > 1 (coordinator): fork that many worker processes,
///    each running its deterministic slice of every strategy into its own
///    checkpoint file, multiplex their pipe progress into one decile
///    display, then merge the slice files — the returned report is
///    byte-identical to the default mode.
///  - options.shard_count > 0 (manual worker, --shard i/N): run only this
///    worker's slice in-process and return a slice summary; a later
///    `merge` folds the fleet's files into the real Table IV report.
Report table4_report(const CampaignOptions& options, std::ostream* progress);

/// `scaa_campaign merge`: fold the per-shard checkpoint slice files of a
/// sharded table4 run (coordinator or manual fleet) into the exact Table IV
/// report — byte-identical to a single-process `table4` run with the same
/// --reps/--seed. Requires options.checkpoint and options.shards.
Report table4_merge_report(const CampaignOptions& options,
                           std::ostream* progress);

/// Table V: Context-Aware attack per attack type, fixed vs. strategic value
/// corruption, driver-on paired with driver-off runs. One row per
/// (attack type, corruption mode).
Report table5_report(const CampaignOptions& options, std::ostream* progress);

/// Fig. 7: the attack-free Ego trajectory (one row per retained trace step).
Report fig7_report(const CampaignOptions& options, std::ostream* progress);

/// Fig. 8: the (start time x duration) parameter space; one row per point.
/// @p options.reps scales the overlay runs per strategy (paper: 20).
Report fig8_report(const CampaignOptions& options, std::ostream* progress);

/// `scaa_campaign faults`: the benign-fault false-positive study. One row
/// per (fault family, intensity) cell — the built-in sweep covers every
/// fault::FaultKind at three intensities plus the no-fault baseline; a
/// non-empty options.fault_plan replaces the sweep with {none, custom}
/// where "custom" runs the parsed plan file. Each cell runs two legs
/// through the streaming runner on identical grids to Table IV's None and
/// Context-Aware rows (same seeds, same chunking) with the cell's plan
/// attached to every item: the benign leg yields the false-positive rate
/// (alert fraction with no attack present), the attacked leg the detection
/// rate and hazards-without-alerts under the same faults. The plan is part
/// of each grid's fingerprint, so checkpoint slices of different cells can
/// never be confused and a resumed cell is bit-identical to an
/// uninterrupted one.
Report faults_report(const CampaignOptions& options, std::ostream* progress);

/// End-to-end wall-clock benchmark. options.bench_campaign selects the
/// workload: "table4" (default) times the Table IV campaign per strategy
/// through the streaming runner — one row per strategy plus TOTAL, with
/// aggregate columns that double as a seed-for-seed identity check against
/// table4; "table5" times the four Table V slices; "fig8" times the
/// parameter-space sweep. `--format json --out BENCH_<campaign>.json`
/// records a benchmark trajectory point.
Report bench_report(const CampaignOptions& options, std::ostream* progress);

/// `scaa_campaign run`: one simulation through the single-sim executor,
/// free-running by default or deadline-clocked with --realtime. The report
/// always carries a "summary" row whose cells are deterministic functions
/// of (scenario, seed, duration) — byte-identical between the two modes,
/// because the deadline clock only decides when ticks fire, never what
/// they compute. --realtime adds wall-clock-derived rows: one "phase:*"
/// row per instrumented subsystem (mean/max latency + histogram) and a
/// "deadline" row (wake jitter, overrun count, miss fraction). A non-empty
/// options.tap_fifo streams live WireFrame bytes there via exp::FifoTap.
///
/// Miss-budget exit policy: when the realtime overrun fraction exceeds
/// options.miss_budget, throws MissBudgetError carrying the finished
/// report — run_campaign_command still writes it, then exits 3.
Report run_report(const CampaignOptions& options, std::ostream* progress);

/// Thrown by run_report when --realtime misses more than --miss-budget
/// allows. Carries the report so the CLI can write it before failing.
class MissBudgetError : public std::runtime_error {
 public:
  MissBudgetError(const std::string& what, Report report_in)
      : std::runtime_error(what), report(std::move(report_in)) {}

  Report report;
};

/// One registered scaa_campaign subcommand.
struct CampaignCommand {
  std::string name;         ///< subcommand token, e.g. "table4"
  std::string paper_ref;    ///< what it reproduces, e.g. "Table IV"
  std::string description;  ///< one-line help
  Report (*run)(const CampaignOptions&, std::ostream*);
};

/// All subcommands, in help/display order.
const std::vector<CampaignCommand>& campaign_commands();

/// Look up a subcommand by name; nullptr when unknown.
const CampaignCommand* find_campaign_command(const std::string& name);

/// Parse flags and run one subcommand end to end: report goes to @p out in
/// the chosen --format, progress/errors go to @p err. Returns the process
/// exit code (0 ok, 2 usage error, 3 realtime miss budget exceeded —
/// the report is still written in that case).
int run_campaign_command(const std::string& name,
                         const std::vector<std::string>& tokens,
                         std::ostream& out, std::ostream& err);

}  // namespace scaa::cli
