#include "cli/report.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace scaa::cli {

Format parse_format(const std::string& name) {
  if (name == "text") return Format::kText;
  if (name == "csv") return Format::kCsv;
  if (name == "json") return Format::kJson;
  throw std::invalid_argument("unknown format: " + name);
}

std::string to_string(Format format) {
  switch (format) {
    case Format::kText: return "text";
    case Format::kCsv: return "csv";
    case Format::kJson: return "json";
  }
  return "?";
}

Report::Report(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  if (columns_.empty())
    throw std::invalid_argument("Report needs at least one column");
}

void Report::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size())
    throw std::invalid_argument("Report row has " + std::to_string(row.size()) +
                                " cells, expected " +
                                std::to_string(columns_.size()));
  rows_.push_back(std::move(row));
}

void Report::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.header(columns_);
  for (const auto& row : rows_) {
    csv.row();
    for (const Cell& cell : row) {
      std::visit([&csv](const auto& v) { csv.cell(v); }, cell);
    }
    csv.end_row();
  }
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_json_cell(std::ostream& out, const Cell& cell) {
  if (std::holds_alternative<std::string>(cell)) {
    out << '"' << json_escape(std::get<std::string>(cell)) << '"';
  } else if (std::holds_alternative<double>(cell)) {
    std::ostringstream os;
    os.precision(17);
    os << std::get<double>(cell);
    out << os.str();
  } else if (std::holds_alternative<long long>(cell)) {
    out << std::get<long long>(cell);
  } else {
    out << (std::get<bool>(cell) ? "true" : "false");
  }
}

std::string cell_to_text(const Cell& cell) {
  if (std::holds_alternative<std::string>(cell))
    return std::get<std::string>(cell);
  if (std::holds_alternative<double>(cell)) {
    std::ostringstream os;
    os << std::get<double>(cell);
    return os.str();
  }
  if (std::holds_alternative<long long>(cell))
    return std::to_string(std::get<long long>(cell));
  return std::get<bool>(cell) ? "yes" : "no";
}

}  // namespace

void Report::write_json(std::ostream& out) const {
  out << "{\"report\":\"" << json_escape(name_) << "\",\"columns\":[";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out << ',';
    out << '"' << json_escape(columns_[i]) << '"';
  }
  out << "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out << ',';
    out << '{';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) out << ',';
      out << '"' << json_escape(columns_[c]) << "\":";
      write_json_cell(out, rows_[r][c]);
    }
    out << '}';
  }
  out << "]}\n";
}

void Report::write_text(std::ostream& out) const {
  util::TextTable table;
  table.set_header(columns_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& cell : row) cells.push_back(cell_to_text(cell));
    table.add_row(std::move(cells));
  }
  out << name_ << "\n\n" << table.render();
}

void Report::write(std::ostream& out, Format format) const {
  switch (format) {
    case Format::kText: write_text(out); break;
    case Format::kCsv: write_csv(out); break;
    case Format::kJson: write_json(out); break;
  }
}

}  // namespace scaa::cli
