#pragma once

/// @file driver_model.hpp
/// Human driver reaction simulator (paper §IV-B).
///
/// The simulated driver is alerted by (a) any ADAS alarm, or (b) anomalies
/// in the observable vehicle status: hard braking, unexpected acceleration
/// or steering beyond the documented limits, or speed exceeding 110% of the
/// cruise set speed. Even single-step (10 ms) anomalies attract attention
/// (the paper's conservative choice, making attacks harder). The driver
/// physically engages 2.5 s after perception (average driver reaction time)
/// and responds according to what felt wrong:
///  * unintended acceleration / steering / ADAS alarm -> emergency brake
///    following the exponential curve of Eq. 4,
///        brake(t) = e^{10t-12} / (1 + e^{10t-12}),
///    plus steering back toward the lane centre;
///  * unintended braking -> takes over and restores normal driving
///    (releases the brake, resumes the set speed).

#include <optional>

#include "vehicle/vehicle.hpp"

namespace scaa::driver {

/// Anomaly thresholds: the OpenPilot limits a driver implicitly calibrates
/// to ("the car never does more than this on its own").
struct DriverConfig {
  double reaction_time = 2.5;        ///< [s] perception-to-action delay
  double accel_anomaly = 2.0;        ///< [m/s^2] accel beyond this is anomalous
  double brake_anomaly = 3.5;        ///< [m/s^2] braking beyond this is anomalous
  double steer_anomaly = 0.0436;     ///< [rad] ~2.5 deg command deviation
  double speed_factor_anomaly = 1.1; ///< speed > 1.1 x cruise is anomalous
  double max_brake = 8.0;            ///< [m/s^2] driver's emergency braking
  double recover_gain = 0.3;         ///< [1/s] speed P gain when recovering
  double steer_correction_gain = 0.012;  ///< [rad/m] re-centering P gain
  double steer_damping_gain = 0.35;      ///< [rad/rad] heading-error damping
  double max_correction_angle = 0.05;    ///< [rad] (~3 deg) correction clip
};

/// What the driver can observe each step.
struct DriverObservation {
  bool adas_alert = false;    ///< any active ADAS alert (FCW, steerSaturated)
  double accel_cmd = 0.0;     ///< executed accel command [m/s^2]
  double steer_cmd = 0.0;     ///< executed steering command [rad]
  double nominal_steer = 0.0; ///< road-appropriate angle (curvature feel) [rad]
  double speed = 0.0;         ///< [m/s]
  double cruise_speed = 0.0;  ///< [m/s]
  double center_offset = 0.0; ///< lane-centre offset, +left [m]
  double heading_error = 0.0; ///< road heading minus vehicle heading [rad]
  double road_curvature = 0.0;///< [1/m]
  bool lead_visible = false;  ///< a vehicle ahead within visual range
  double lead_gap = 0.0;      ///< [m] gap to it
  double lead_rel_speed = 0.0;///< [m/s] lead speed minus own speed
};

/// What kind of anomaly the driver perceived (shapes the response).
enum class AnomalyKind {
  kNone,
  kAlert,        ///< ADAS raised an alarm
  kAcceleration, ///< surging forward
  kBraking,      ///< braking for no reason
  kSteering,     ///< wheel moving on its own
  kOverspeed,    ///< faster than the set speed allows
};

/// Phase of the driver state machine.
enum class DriverPhase { kMonitoring, kReacting, kEngaged };

/// The driver model. Once engaged, the driver overrides the ADAS until the
/// end of the simulation (matching the paper's setup where the attack also
/// stops on engagement).
class DriverModel {
 public:
  explicit DriverModel(DriverConfig config, double wheelbase) noexcept
      : config_(config), wheelbase_(wheelbase) {}

  /// Advance one step. Returns the driver's actuator override when engaged,
  /// std::nullopt while the ADAS is still in control.
  std::optional<vehicle::ActuatorCommand> step(
      const DriverObservation& obs, double time, double dt) noexcept;

  DriverPhase phase() const noexcept { return phase_; }

  /// Time the anomaly/alert was first perceived; negative when never.
  double perception_time() const noexcept { return perception_time_; }

  /// Time the driver physically engaged; negative when never.
  double engage_time() const noexcept { return engage_time_; }

  /// True once the driver has taken over.
  bool engaged() const noexcept { return phase_ == DriverPhase::kEngaged; }

  /// What tripped the driver's attention.
  AnomalyKind perceived_anomaly() const noexcept { return anomaly_; }

 private:
  AnomalyKind classify(const DriverObservation& obs) const noexcept;

  DriverConfig config_;
  double wheelbase_;
  DriverPhase phase_ = DriverPhase::kMonitoring;
  AnomalyKind anomaly_ = AnomalyKind::kNone;
  double perception_time_ = -1.0;
  double engage_time_ = -1.0;
  bool panic_ = false;        ///< latched: imminent lead collision -> full stop
  bool danger_over_ = false;  ///< latched: surging resolved -> resume driving
};

/// The paper's Eq. 4 brake ramp: fraction of full braking @p t seconds
/// after engagement.
double brake_ramp(double t) noexcept;

}  // namespace scaa::driver
