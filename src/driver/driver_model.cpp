#include "driver/driver_model.hpp"

#include <cmath>

#include "util/math.hpp"

namespace scaa::driver {

double brake_ramp(double t) noexcept {
  // Eq. 4: e^{10t-12} / (1 + e^{10t-12}), numerically safe for large t.
  const double z = 10.0 * t - 12.0;
  if (z > 30.0) return 1.0;
  const double e = std::exp(z);
  return e / (1.0 + e);
}

AnomalyKind DriverModel::classify(const DriverObservation& obs) const noexcept {
  if (obs.adas_alert) return AnomalyKind::kAlert;
  if (obs.accel_cmd > config_.accel_anomaly) return AnomalyKind::kAcceleration;
  if (-obs.accel_cmd > config_.brake_anomaly) return AnomalyKind::kBraking;
  // Steering feels anomalous relative to what the road demands.
  if (std::abs(obs.steer_cmd - obs.nominal_steer) > config_.steer_anomaly)
    return AnomalyKind::kSteering;
  if (obs.cruise_speed > 0.0 &&
      obs.speed > config_.speed_factor_anomaly * obs.cruise_speed)
    return AnomalyKind::kOverspeed;
  return AnomalyKind::kNone;
}

std::optional<vehicle::ActuatorCommand> DriverModel::step(
    const DriverObservation& obs, double time, double /*dt*/) noexcept {
  switch (phase_) {
    case DriverPhase::kMonitoring: {
      const AnomalyKind kind = classify(obs);
      if (kind != AnomalyKind::kNone) {
        anomaly_ = kind;
        perception_time_ = time;
        phase_ = DriverPhase::kReacting;
      }
      return std::nullopt;
    }

    case DriverPhase::kReacting:
      if (time - perception_time_ >= config_.reaction_time) {
        engage_time_ = time;
        phase_ = DriverPhase::kEngaged;
        break;  // fall through to engaged handling below
      }
      return std::nullopt;

    case DriverPhase::kEngaged:
      break;
  }

  const double t_since = time - engage_time_;
  const double urgency = brake_ramp(t_since);
  vehicle::ActuatorCommand cmd;

  switch (anomaly_) {
    case AnomalyKind::kBraking:
      // Unintended braking: take over and restore normal driving.
      cmd.accel = math::clamp(
          config_.recover_gain * (obs.cruise_speed - obs.speed), -2.0, 1.5);
      break;
    case AnomalyKind::kAlert:
    case AnomalyKind::kSteering:
      // Wheel misbehaving: grip it, slow to a comfortable speed, stay in
      // the lane — not a panic stop.
      cmd.accel = math::clamp(
          config_.recover_gain * (0.7 * obs.cruise_speed - obs.speed), -3.0,
          0.5);
      break;
    case AnomalyKind::kAcceleration:
    case AnomalyKind::kOverspeed:
    case AnomalyKind::kNone: {
      // Surging forward: the paper's hard-brake response, Eq. 4. An
      // imminent lead collision triggers a latched panic stop (the paper's
      // "Ego may stop in the middle of a lane" new-hazard path); otherwise
      // the driver brakes only until the surge is resolved, then resumes.
      const bool imminent =
          obs.lead_visible && obs.lead_rel_speed < -2.0 &&
          obs.lead_gap < 0.8 * obs.speed;
      if (imminent) panic_ = true;
      const bool overspeed = obs.speed > 1.02 * obs.cruise_speed;
      if (!panic_ && !overspeed) danger_over_ = true;
      if (panic_ || (!danger_over_ && overspeed)) {
        cmd.accel = -config_.max_brake * urgency;
      } else {
        cmd.accel = math::clamp(
            config_.recover_gain * (obs.cruise_speed - obs.speed), -2.0, 1.5);
      }
      break;
    }
  }

  // The human keeps watching traffic: never drive into a visible lead.
  if (obs.lead_visible) {
    const double desired_gap = 4.0 + 1.2 * obs.speed;
    const double follow = 0.1 * (obs.lead_gap - desired_gap) +
                          0.6 * obs.lead_rel_speed;
    if (follow < cmd.accel)
      cmd.accel = math::clamp(follow, -config_.max_brake, cmd.accel);
  }

  // Steering: curvature feed-forward (road feel) plus damped re-centering
  // with the same urgency profile as the pedal response.
  const double ff = std::atan(wheelbase_ * obs.road_curvature);
  const double correction = math::clamp(
      (-config_.steer_correction_gain * obs.center_offset +
       config_.steer_damping_gain * obs.heading_error) *
          urgency,
      -config_.max_correction_angle, config_.max_correction_angle);
  cmd.steer_angle = ff + correction;
  return cmd;
}

}  // namespace scaa::driver
