#pragma once

/// @file log.hpp
/// Message logging and replay — the comma.ai-style drive log.
///
/// OpenPilot records every bus message of every drive and can replay a log
/// against new code; the paper's attacker uses exactly such logs for
/// offline reconnaissance (learning thresholds and message formats). The
/// MessageLog records the wire frames crossing a PubSubBus with their step
/// stamps; replay() re-publishes them, in order, onto any bus.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "msg/bus.hpp"

namespace scaa::msg {

/// An owned copy of one wire frame. The bus hands raw subscribers
/// non-owning WireFrame views into its scratch buffer; anything that
/// outlives the handler call (a drive log, a save file) stores this.
struct StoredFrame {
  Topic topic{};
  std::uint64_t sequence = 0;
  std::vector<std::uint8_t> payload;

  /// Non-owning view (valid while this StoredFrame is alive and unchanged).
  WireFrame view() const noexcept { return {topic, sequence, payload}; }
};

/// One recorded frame.
struct LogEntry {
  std::uint64_t step = 0;  ///< capture step (10 ms ticks)
  StoredFrame frame;
};

/// Records all topics (or a subset) from a bus; replays into another.
class MessageLog {
 public:
  /// Start recording every topic on @p bus. The log must not outlive the
  /// bus. @p clock returns the current step for stamping.
  void record_all(PubSubBus& bus, std::function<std::uint64_t()> clock);

  /// Start recording a single topic.
  void record_topic(PubSubBus& bus, Topic topic,
                    std::function<std::uint64_t()> clock);

  /// Stop recording (detach all subscriptions).
  void stop(PubSubBus& bus);

  /// Recorded entries, in capture order.
  const std::vector<LogEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Entries on one topic.
  std::size_t count(Topic topic) const noexcept;

  /// Re-publish every recorded frame onto @p bus, in order. Typed
  /// subscribers on the target bus decode them exactly as live traffic —
  /// sequence numbers are re-stamped by the target bus.
  void replay(PubSubBus& bus) const;

  /// Serialize the log to a binary stream / load it back.
  void save(std::ostream& out) const;
  static MessageLog load(std::istream& in);

 private:
  std::vector<LogEntry> entries_;
  std::vector<std::uint64_t> subscriptions_;
};

/// Replay helper: raw re-publication of one frame (decodes + re-publishes
/// through the typed API so per-topic sequence numbers stay consistent).
void republish(PubSubBus& bus, const WireFrame& frame);

}  // namespace scaa::msg
