#include "msg/bus.hpp"

#include <algorithm>
#include <stdexcept>

namespace scaa::msg {

std::string_view topic_name(Topic topic) {
  switch (topic) {
    case Topic::kGpsLocationExternal: return "gpsLocationExternal";
    case Topic::kModelV2: return "modelV2";
    case Topic::kRadarState: return "radarState";
    case Topic::kCarState: return "carState";
    case Topic::kCarControl: return "carControl";
    case Topic::kControlsState: return "controlsState";
  }
  return "unknown";
}

void encode(Encoder& e, const GpsLocationExternal& m) {
  e.put_u64(m.mono_time);
  e.put_f64(m.latitude);
  e.put_f64(m.longitude);
  e.put_f64(m.speed);
  e.put_f64(m.bearing);
  e.put_bool(m.has_fix);
}

void deserialize(std::span<const std::uint8_t> bytes,
                 GpsLocationExternal& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.latitude = d.get_f64();
  m.longitude = d.get_f64();
  m.speed = d.get_f64();
  m.bearing = d.get_f64();
  m.has_fix = d.get_bool();
}

void encode(Encoder& e, const ModelV2& m) {
  e.put_u64(m.mono_time);
  e.put_f64(m.left_lane_line);
  e.put_f64(m.right_lane_line);
  e.put_f64(m.left_line_prob);
  e.put_f64(m.right_line_prob);
  e.put_f64(m.path_curvature);
  e.put_f64(m.path_heading_error);
}

void deserialize(std::span<const std::uint8_t> bytes, ModelV2& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.left_lane_line = d.get_f64();
  m.right_lane_line = d.get_f64();
  m.left_line_prob = d.get_f64();
  m.right_line_prob = d.get_f64();
  m.path_curvature = d.get_f64();
  m.path_heading_error = d.get_f64();
}

void encode(Encoder& e, const RadarState& m) {
  e.put_u64(m.mono_time);
  e.put_bool(m.lead_valid);
  e.put_f64(m.lead_distance);
  e.put_f64(m.lead_rel_speed);
  e.put_f64(m.lead_speed);
}

void deserialize(std::span<const std::uint8_t> bytes, RadarState& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.lead_valid = d.get_bool();
  m.lead_distance = d.get_f64();
  m.lead_rel_speed = d.get_f64();
  m.lead_speed = d.get_f64();
}

void encode(Encoder& e, const CarState& m) {
  e.put_u64(m.mono_time);
  e.put_f64(m.speed);
  e.put_f64(m.accel);
  e.put_f64(m.steer_angle);
  e.put_f64(m.cruise_speed);
  e.put_bool(m.cruise_enabled);
  e.put_f64(m.driver_torque);
}

void deserialize(std::span<const std::uint8_t> bytes, CarState& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.speed = d.get_f64();
  m.accel = d.get_f64();
  m.steer_angle = d.get_f64();
  m.cruise_speed = d.get_f64();
  m.cruise_enabled = d.get_bool();
  m.driver_torque = d.get_f64();
}

void encode(Encoder& e, const CarControl& m) {
  e.put_u64(m.mono_time);
  e.put_bool(m.enabled);
  e.put_f64(m.accel);
  e.put_f64(m.steer_angle);
}

void deserialize(std::span<const std::uint8_t> bytes, CarControl& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.enabled = d.get_bool();
  m.accel = d.get_f64();
  m.steer_angle = d.get_f64();
}

void encode(Encoder& e, const ControlsState& m) {
  e.put_u64(m.mono_time);
  e.put_bool(m.active);
  e.put_bool(m.steer_saturated);
  e.put_bool(m.fcw);
  e.put_u32(m.alert_count);
}

void deserialize(std::span<const std::uint8_t> bytes, ControlsState& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.active = d.get_bool();
  m.steer_saturated = d.get_bool();
  m.fcw = d.get_bool();
  m.alert_count = d.get_u32();
}

namespace {

template <typename M>
std::vector<std::uint8_t> serialize_exact(const M& m) {
  Encoder e;
  e.reserve(WireSizeOf<M>::value);
  encode(e, m);
  return e.take();
}

}  // namespace

std::vector<std::uint8_t> serialize(const GpsLocationExternal& m) {
  return serialize_exact(m);
}
std::vector<std::uint8_t> serialize(const ModelV2& m) {
  return serialize_exact(m);
}
std::vector<std::uint8_t> serialize(const RadarState& m) {
  return serialize_exact(m);
}
std::vector<std::uint8_t> serialize(const CarState& m) {
  return serialize_exact(m);
}
std::vector<std::uint8_t> serialize(const CarControl& m) {
  return serialize_exact(m);
}
std::vector<std::uint8_t> serialize(const ControlsState& m) {
  return serialize_exact(m);
}

std::uint64_t PubSubBus::subscribe_raw(Topic topic, RawHandler handler) {
  if (!topic_valid(topic))
    throw std::invalid_argument("PubSubBus::subscribe_raw: unknown topic");
  const std::uint64_t id = next_id_++;
  topics_[topic_index(topic)].raw.push_back(
      std::make_unique<RawSub>(RawSub{id, true, std::move(handler)}));
  return id;
}

std::uint64_t PubSubBus::subscribe_typed(Topic topic, TypedHandler handler) {
  const std::uint64_t id = next_id_++;
  topics_[topic_index(topic)].typed.push_back(
      std::make_unique<TypedSub>(TypedSub{id, true, std::move(handler)}));
  return id;
}

void PubSubBus::unsubscribe(std::uint64_t id) {
  // Ids are unique across both kinds and all topics, so the first match is
  // the only one. During dispatch the entry is only marked dead — the
  // fan-out loops skip it immediately, and the vector (and possibly the
  // std::function currently executing) is compacted once the outermost
  // dispatch returns.
  const auto remove_from = [this](auto& subs, std::uint64_t target) {
    const auto it = std::find_if(subs.begin(), subs.end(),
                                 [target](const auto& sub) {
                                   return sub->id == target;
                                 });
    if (it == subs.end()) return false;
    if (dispatch_depth_ > 0) {
      (*it)->alive = false;
      sweep_pending_ = true;
    } else {
      subs.erase(it);
    }
    return true;
  };
  for (TopicState& st : topics_) {
    if (remove_from(st.typed, id) || remove_from(st.raw, id)) return;
  }
}

void PubSubBus::sweep_dead() {
  for (TopicState& st : topics_) {
    std::erase_if(st.typed, [](const auto& sub) { return !sub->alive; });
    std::erase_if(st.raw, [](const auto& sub) { return !sub->alive; });
  }
  sweep_pending_ = false;
}

void PubSubBus::reset() noexcept {
  // Sequence counters restart; subscriptions, subscription ids, and
  // scratch capacity all survive (see the header for why that retention
  // is the point).
  for (TopicState& st : topics_) st.sequence = 0;
}

std::uint64_t PubSubBus::published_count(Topic topic) const noexcept {
  return topic_valid(topic) ? topics_[topic_index(topic)].sequence : 0;
}

std::size_t PubSubBus::subscriber_count(Topic topic) const noexcept {
  if (!topic_valid(topic)) return 0;
  const TopicState& st = topics_[topic_index(topic)];
  std::size_t n = 0;
  for (const auto& sub : st.typed) n += sub->alive ? 1 : 0;
  for (const auto& sub : st.raw) n += sub->alive ? 1 : 0;
  return n;
}

}  // namespace scaa::msg
