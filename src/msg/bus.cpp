#include "msg/bus.hpp"

#include <algorithm>

namespace scaa::msg {

std::string topic_name(Topic topic) {
  switch (topic) {
    case Topic::kGpsLocationExternal: return "gpsLocationExternal";
    case Topic::kModelV2: return "modelV2";
    case Topic::kRadarState: return "radarState";
    case Topic::kCarState: return "carState";
    case Topic::kCarControl: return "carControl";
    case Topic::kControlsState: return "controlsState";
  }
  return "unknown";
}

std::vector<std::uint8_t> serialize(const GpsLocationExternal& m) {
  Encoder e;
  e.put_u64(m.mono_time);
  e.put_f64(m.latitude);
  e.put_f64(m.longitude);
  e.put_f64(m.speed);
  e.put_f64(m.bearing);
  e.put_bool(m.has_fix);
  return e.take();
}

void deserialize(const std::vector<std::uint8_t>& bytes,
                 GpsLocationExternal& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.latitude = d.get_f64();
  m.longitude = d.get_f64();
  m.speed = d.get_f64();
  m.bearing = d.get_f64();
  m.has_fix = d.get_bool();
}

std::vector<std::uint8_t> serialize(const ModelV2& m) {
  Encoder e;
  e.put_u64(m.mono_time);
  e.put_f64(m.left_lane_line);
  e.put_f64(m.right_lane_line);
  e.put_f64(m.left_line_prob);
  e.put_f64(m.right_line_prob);
  e.put_f64(m.path_curvature);
  e.put_f64(m.path_heading_error);
  return e.take();
}

void deserialize(const std::vector<std::uint8_t>& bytes, ModelV2& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.left_lane_line = d.get_f64();
  m.right_lane_line = d.get_f64();
  m.left_line_prob = d.get_f64();
  m.right_line_prob = d.get_f64();
  m.path_curvature = d.get_f64();
  m.path_heading_error = d.get_f64();
}

std::vector<std::uint8_t> serialize(const RadarState& m) {
  Encoder e;
  e.put_u64(m.mono_time);
  e.put_bool(m.lead_valid);
  e.put_f64(m.lead_distance);
  e.put_f64(m.lead_rel_speed);
  e.put_f64(m.lead_speed);
  return e.take();
}

void deserialize(const std::vector<std::uint8_t>& bytes, RadarState& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.lead_valid = d.get_bool();
  m.lead_distance = d.get_f64();
  m.lead_rel_speed = d.get_f64();
  m.lead_speed = d.get_f64();
}

std::vector<std::uint8_t> serialize(const CarState& m) {
  Encoder e;
  e.put_u64(m.mono_time);
  e.put_f64(m.speed);
  e.put_f64(m.accel);
  e.put_f64(m.steer_angle);
  e.put_f64(m.cruise_speed);
  e.put_bool(m.cruise_enabled);
  e.put_f64(m.driver_torque);
  return e.take();
}

void deserialize(const std::vector<std::uint8_t>& bytes, CarState& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.speed = d.get_f64();
  m.accel = d.get_f64();
  m.steer_angle = d.get_f64();
  m.cruise_speed = d.get_f64();
  m.cruise_enabled = d.get_bool();
  m.driver_torque = d.get_f64();
}

std::vector<std::uint8_t> serialize(const CarControl& m) {
  Encoder e;
  e.put_u64(m.mono_time);
  e.put_bool(m.enabled);
  e.put_f64(m.accel);
  e.put_f64(m.steer_angle);
  return e.take();
}

void deserialize(const std::vector<std::uint8_t>& bytes, CarControl& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.enabled = d.get_bool();
  m.accel = d.get_f64();
  m.steer_angle = d.get_f64();
}

std::vector<std::uint8_t> serialize(const ControlsState& m) {
  Encoder e;
  e.put_u64(m.mono_time);
  e.put_bool(m.active);
  e.put_bool(m.steer_saturated);
  e.put_bool(m.fcw);
  e.put_u32(m.alert_count);
  return e.take();
}

void deserialize(const std::vector<std::uint8_t>& bytes, ControlsState& m) {
  Decoder d(bytes);
  m.mono_time = d.get_u64();
  m.active = d.get_bool();
  m.steer_saturated = d.get_bool();
  m.fcw = d.get_bool();
  m.alert_count = d.get_u32();
}

std::uint64_t PubSubBus::subscribe_raw(Topic topic, RawHandler handler) {
  const std::uint64_t id = next_id_++;
  subs_[topic].push_back({id, std::move(handler)});
  return id;
}

void PubSubBus::unsubscribe(std::uint64_t id) {
  for (auto& [topic, subs] : subs_) {
    subs.erase(std::remove_if(subs.begin(), subs.end(),
                              [id](const Subscription& s) { return s.id == id; }),
               subs.end());
  }
}

std::uint64_t PubSubBus::next_sequence(Topic topic) {
  return ++sequences_[topic];
}

void PubSubBus::dispatch(const WireFrame& frame) {
  const auto it = subs_.find(frame.topic);
  if (it == subs_.end()) return;
  // Iterate over a copy of the handler list: a handler may subscribe or
  // unsubscribe during dispatch without invalidating this loop.
  const auto snapshot = it->second;
  for (const auto& sub : snapshot) sub.handler(frame);
}

std::uint64_t PubSubBus::published_count(Topic topic) const noexcept {
  const auto it = sequences_.find(topic);
  return it == sequences_.end() ? 0 : it->second;
}

std::size_t PubSubBus::subscriber_count(Topic topic) const noexcept {
  const auto it = subs_.find(topic);
  return it == subs_.end() ? 0 : it->second.size();
}

}  // namespace scaa::msg
