#pragma once

/// @file bus.hpp
/// The cereal-like publish/subscribe bus.
///
/// Design mirrors what matters about Cereal for the paper's attack:
///  * topics are public; any component can subscribe to any topic without
///    authentication or authorization (the eavesdropping vector, Fig. 3);
///  * messages are serialized bytes on the wire; subscribers decode them
///    with the public schema;
///  * publishers stamp a monotonically increasing per-topic sequence number
///    (lets tests assert no message loss).
///
/// The bus is single-threaded within one simulation (the 100 Hz loop runs
/// all services in order, like OpenPilot's single-machine deployment); the
/// campaign layer achieves parallelism by running many independent worlds.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "msg/codec.hpp"
#include "msg/messages.hpp"

namespace scaa::msg {

/// Serialize any schema message (overloads per type).
std::vector<std::uint8_t> serialize(const GpsLocationExternal& m);
std::vector<std::uint8_t> serialize(const ModelV2& m);
std::vector<std::uint8_t> serialize(const RadarState& m);
std::vector<std::uint8_t> serialize(const CarState& m);
std::vector<std::uint8_t> serialize(const CarControl& m);
std::vector<std::uint8_t> serialize(const ControlsState& m);

/// Deserialize into a schema message; throws std::out_of_range on truncation.
void deserialize(const std::vector<std::uint8_t>& bytes, GpsLocationExternal& m);
void deserialize(const std::vector<std::uint8_t>& bytes, ModelV2& m);
void deserialize(const std::vector<std::uint8_t>& bytes, RadarState& m);
void deserialize(const std::vector<std::uint8_t>& bytes, CarState& m);
void deserialize(const std::vector<std::uint8_t>& bytes, CarControl& m);
void deserialize(const std::vector<std::uint8_t>& bytes, ControlsState& m);

/// A frame as seen on the wire.
struct WireFrame {
  Topic topic{};
  std::uint64_t sequence = 0;
  std::vector<std::uint8_t> payload;
};

/// Pub/sub bus. Subscribers register callbacks per topic; publishing
/// serializes the message and synchronously fans it out.
class PubSubBus {
 public:
  using RawHandler = std::function<void(const WireFrame&)>;

  /// Subscribe to raw frames on @p topic. No authentication — by design:
  /// this is the vulnerability surface. Returns a subscription id.
  std::uint64_t subscribe_raw(Topic topic, RawHandler handler);

  /// Subscribe with automatic decoding to the typed message.
  template <typename M>
  std::uint64_t subscribe(std::function<void(const M&)> handler) {
    return subscribe_raw(TopicOf<M>::value,
                         [h = std::move(handler)](const WireFrame& frame) {
                           M m{};
                           deserialize(frame.payload, m);
                           h(m);
                         });
  }

  /// Remove a subscription. Unknown ids are ignored (idempotent).
  void unsubscribe(std::uint64_t id);

  /// Publish a typed message: serialize, stamp sequence, fan out.
  template <typename M>
  void publish(const M& m) {
    WireFrame frame;
    frame.topic = TopicOf<M>::value;
    frame.sequence = next_sequence(frame.topic);
    frame.payload = serialize(m);
    dispatch(frame);
  }

  /// Messages published so far on @p topic.
  std::uint64_t published_count(Topic topic) const noexcept;

  /// Number of active subscriptions on @p topic.
  std::size_t subscriber_count(Topic topic) const noexcept;

 private:
  std::uint64_t next_sequence(Topic topic);
  void dispatch(const WireFrame& frame);

  struct Subscription {
    std::uint64_t id;
    RawHandler handler;
  };
  std::map<Topic, std::vector<Subscription>> subs_;
  std::map<Topic, std::uint64_t> sequences_;
  std::uint64_t next_id_ = 1;
};

/// Convenience latch: stores the most recent message of a type.
/// Mirrors OpenPilot's SubMaster "latest value" access pattern.
template <typename M>
class Latest {
 public:
  /// Attach to a bus; the latch must not outlive the bus.
  explicit Latest(PubSubBus& bus) {
    id_ = bus.subscribe<M>([this](const M& m) {
      value_ = m;
      ++updates_;
    });
  }

  /// Most recent message (default-constructed before the first publish).
  const M& value() const noexcept { return value_; }

  /// True once at least one message arrived.
  bool valid() const noexcept { return updates_ > 0; }

  /// Number of messages received.
  std::uint64_t updates() const noexcept { return updates_; }

  /// Subscription id (for unsubscribe).
  std::uint64_t subscription_id() const noexcept { return id_; }

 private:
  M value_{};
  std::uint64_t updates_ = 0;
  std::uint64_t id_ = 0;
};

}  // namespace scaa::msg
