#pragma once

/// @file bus.hpp
/// The cereal-like publish/subscribe bus.
///
/// Design mirrors what matters about Cereal for the paper's attack:
///  * topics are public; any component can subscribe to any topic without
///    authentication or authorization (the eavesdropping vector, Fig. 3);
///  * messages are observable as serialized bytes on the wire; subscribers
///    can decode them with the public schema;
///  * publishers stamp a monotonically increasing per-topic sequence number
///    (lets tests assert no message loss).
///
/// Dispatch is split into two per-topic paths:
///  * the **typed fast path** (`subscribe<M>`, `Latest<M>`) receives the
///    published struct by const reference — zero serialization, zero
///    allocation. Because the codec is an exact little-endian IEEE-754
///    round trip, this is bit-identical to the historical
///    decode(serialize(m)) delivery.
///  * the **raw wire path** (`subscribe_raw`) receives the frame bytes.
///    Serialization happens lazily, only when at least one raw subscriber
///    is attached to the topic, into a per-topic scratch buffer that is
///    reused across publishes; the handler sees a non-owning `WireFrame`
///    view of it. The eavesdropping surface is therefore preserved by
///    design — any component may still tap byte-identical frames without
///    auth — the bytes are just not materialized when nobody is looking.
///
/// Within one publish, typed subscribers run before raw subscribers; each
/// group runs in subscription order. Handlers may subscribe/unsubscribe
/// during dispatch: additions are delivered starting with the next
/// publish, removals take effect immediately and are compacted after the
/// outermost dispatch returns (index-based fan-out + deferred removal —
/// nothing is copied or reallocated mid-iteration).
///
/// The bus is single-threaded within one simulation (the 100 Hz loop runs
/// all services in order, like OpenPilot's single-machine deployment); the
/// campaign layer achieves parallelism by running many independent worlds.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "msg/codec.hpp"
#include "msg/messages.hpp"

namespace scaa::msg {

/// Exact wire size of each schema message. Every message encodes as a flat
/// fixed field sequence (no varints, no optional fields), so the raw path
/// can reserve exactly once and never reallocate.
template <typename M>
struct WireSizeOf;
template <> struct WireSizeOf<GpsLocationExternal> {
  static constexpr std::size_t value = 41;  // u64 + 4*f64 + bool
};
template <> struct WireSizeOf<ModelV2> {
  static constexpr std::size_t value = 56;  // u64 + 6*f64
};
template <> struct WireSizeOf<RadarState> {
  static constexpr std::size_t value = 33;  // u64 + bool + 3*f64
};
template <> struct WireSizeOf<CarState> {
  static constexpr std::size_t value = 49;  // u64 + 5*f64 + bool
};
template <> struct WireSizeOf<CarControl> {
  static constexpr std::size_t value = 25;  // u64 + bool + 2*f64
};
template <> struct WireSizeOf<ControlsState> {
  static constexpr std::size_t value = 15;  // u64 + 3*bool + u32
};

/// Append the wire encoding of @p m (exactly WireSizeOf<M>::value bytes).
void encode(Encoder& e, const GpsLocationExternal& m);
void encode(Encoder& e, const ModelV2& m);
void encode(Encoder& e, const RadarState& m);
void encode(Encoder& e, const CarState& m);
void encode(Encoder& e, const CarControl& m);
void encode(Encoder& e, const ControlsState& m);

/// Serialize any schema message into a fresh, exactly-sized buffer.
std::vector<std::uint8_t> serialize(const GpsLocationExternal& m);
std::vector<std::uint8_t> serialize(const ModelV2& m);
std::vector<std::uint8_t> serialize(const RadarState& m);
std::vector<std::uint8_t> serialize(const CarState& m);
std::vector<std::uint8_t> serialize(const CarControl& m);
std::vector<std::uint8_t> serialize(const ControlsState& m);

/// Deserialize into a schema message; throws std::out_of_range on
/// truncation. Accepts any contiguous byte view (vector, WireFrame
/// payload, ...).
void deserialize(std::span<const std::uint8_t> bytes, GpsLocationExternal& m);
void deserialize(std::span<const std::uint8_t> bytes, ModelV2& m);
void deserialize(std::span<const std::uint8_t> bytes, RadarState& m);
void deserialize(std::span<const std::uint8_t> bytes, CarState& m);
void deserialize(std::span<const std::uint8_t> bytes, CarControl& m);
void deserialize(std::span<const std::uint8_t> bytes, ControlsState& m);

/// A frame as seen on the wire. The payload is a non-owning view into the
/// bus's per-topic scratch buffer: it is valid for the duration of the raw
/// handler call; a subscriber that wants to keep the bytes must copy them
/// (see msg::StoredFrame).
struct WireFrame {
  Topic topic{};
  std::uint64_t sequence = 0;
  std::span<const std::uint8_t> payload;
};

/// Pub/sub bus. Subscribers register callbacks per topic; publishing
/// synchronously fans the message out — typed subscribers get the struct,
/// raw subscribers get the (lazily serialized) wire bytes.
class PubSubBus {
 public:
  using RawHandler = std::function<void(const WireFrame&)>;

  /// Subscribe to raw frames on @p topic. No authentication — by design:
  /// this is the vulnerability surface. Returns a subscription id. Throws
  /// std::invalid_argument for a topic outside the schema.
  std::uint64_t subscribe_raw(Topic topic, RawHandler handler);

  /// Subscribe with typed delivery: the handler receives the published
  /// struct by const reference (no serialization round trip).
  template <typename M>
  std::uint64_t subscribe(std::function<void(const M&)> handler) {
    return subscribe_typed(TopicOf<M>::value,
                           [h = std::move(handler)](const void* m) {
                             h(*static_cast<const M*>(m));
                           });
  }

  /// Remove a subscription. Unknown ids are ignored (idempotent). Safe to
  /// call from inside a handler (including removing the running handler).
  void unsubscribe(std::uint64_t id);

  /// Publish a typed message: stamp the per-topic sequence, hand the
  /// struct to typed subscribers, and — only if the topic has at least one
  /// raw subscriber — serialize once into the topic's scratch buffer and
  /// fan the WireFrame view out to them.
  template <typename M>
  void publish(const M& m) {
    TopicState& st = topics_[topic_index(TopicOf<M>::value)];
    const std::uint64_t seq = ++st.sequence;
    const DispatchGuard guard(*this);
    for (std::size_t i = 0, n = st.typed.size(); i < n; ++i) {
      const TypedSub* sub = st.typed[i].get();
      if (sub->alive) sub->handler(&m);
    }
    if (st.raw.empty()) return;
    // A raw handler that publishes on the same topic (e.g. a replay tap)
    // must not clobber the scratch bytes the outer fan-out is still
    // reading; the nested publish pays for a local buffer instead.
    Encoder local;
    Encoder& wire = st.serializing ? local : st.scratch;
    const ScratchGuard scratch_guard(st);
    wire.clear();
    wire.reserve(WireSizeOf<M>::value);
    encode(wire, m);
    const WireFrame frame{TopicOf<M>::value, seq, wire.bytes()};
    for (std::size_t i = 0, n = st.raw.size(); i < n; ++i) {
      const RawSub* sub = st.raw[i].get();
      if (sub->alive) sub->handler(frame);
    }
  }

  /// Re-arm the bus for a new simulation: every per-topic sequence counter
  /// restarts from zero while every subscription — typed and raw — stays
  /// attached, and scratch buffers keep their capacity. Retaining the
  /// subscriber set is deliberate and security-relevant: an eavesdropper
  /// that tapped a topic once keeps receiving byte-identical frames across
  /// World resets, and the restarted sequence numbers stay gap-free, so
  /// nothing on the wire reveals that a new simulation began.
  void reset() noexcept;

  /// Messages published so far on @p topic (0 for an invalid topic).
  std::uint64_t published_count(Topic topic) const noexcept;

  /// Number of active subscriptions (typed + raw) on @p topic.
  std::size_t subscriber_count(Topic topic) const noexcept;

 private:
  // Typed handlers are type-erased per topic: each topic carries exactly
  // one message type, so the pointer cast back is done by subscribe<M>'s
  // wrapper, which is the only code that ever stores one.
  using TypedHandler = std::function<void(const void*)>;

  struct TypedSub {
    std::uint64_t id;
    bool alive;
    TypedHandler handler;
  };
  struct RawSub {
    std::uint64_t id;
    bool alive;
    RawHandler handler;
  };
  struct TopicState {
    // unique_ptr entries: a handler appended during dispatch may grow the
    // vector, but the subscription (and the std::function being executed)
    // never moves.
    std::vector<std::unique_ptr<TypedSub>> typed;
    std::vector<std::unique_ptr<RawSub>> raw;
    std::uint64_t sequence = 0;
    Encoder scratch;            ///< reusable wire buffer (lazy raw path)
    bool serializing = false;   ///< scratch currently exposed to handlers
  };

  struct DispatchGuard {
    PubSubBus& bus;
    explicit DispatchGuard(PubSubBus& b) noexcept : bus(b) {
      ++bus.dispatch_depth_;
    }
    ~DispatchGuard() {
      if (--bus.dispatch_depth_ == 0 && bus.sweep_pending_) bus.sweep_dead();
    }
  };
  struct ScratchGuard {
    TopicState& st;
    bool prev;
    explicit ScratchGuard(TopicState& s) noexcept
        : st(s), prev(s.serializing) {
      st.serializing = true;
    }
    ~ScratchGuard() { st.serializing = prev; }
  };

  std::uint64_t subscribe_typed(Topic topic, TypedHandler handler);
  void sweep_dead();

  std::array<TopicState, kTopicCount> topics_;
  std::uint64_t next_id_ = 1;
  int dispatch_depth_ = 0;
  bool sweep_pending_ = false;
};

/// Convenience latch: stores the most recent message of a type.
/// Mirrors OpenPilot's SubMaster "latest value" access pattern.
template <typename M>
class Latest {
 public:
  /// Attach to a bus; the latch must not outlive the bus.
  explicit Latest(PubSubBus& bus) {
    id_ = bus.subscribe<M>([this](const M& m) {
      value_ = m;
      ++updates_;
    });
  }

  /// Most recent message (default-constructed before the first publish).
  const M& value() const noexcept { return value_; }

  /// True once at least one message arrived.
  bool valid() const noexcept { return updates_ > 0; }

  /// Number of messages received.
  std::uint64_t updates() const noexcept { return updates_; }

  /// Subscription id (for unsubscribe).
  std::uint64_t subscription_id() const noexcept { return id_; }

  /// Forget the latched value (back to default-constructed, valid() ==
  /// false) while keeping the subscription attached. Used by the World
  /// reset path so consumers start a new simulation with no stale state.
  void reset() noexcept {
    value_ = M{};
    updates_ = 0;
  }

 private:
  M value_{};
  std::uint64_t updates_ = 0;
  std::uint64_t id_ = 0;
};

}  // namespace scaa::msg
