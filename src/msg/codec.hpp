#pragma once

/// @file codec.hpp
/// Binary serialization for bus frames.
///
/// Cereal uses Cap'n Proto; we use a small explicit little-endian codec with
/// the same purpose: messages on the wire are bytes, and any subscriber that
/// knows the (public) schema can decode them — which is exactly the
/// eavesdropping vulnerability the paper exploits.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace scaa::msg {

/// Append-only byte buffer writer (little endian).
class Encoder {
 public:
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_bool(bool v);

  /// Pre-size the buffer: an encode of known wire size never reallocates.
  void reserve(std::size_t n) { buf_.reserve(n); }

  /// Drop the contents but keep the capacity — the bus reuses one Encoder
  /// per topic as its wire scratch buffer.
  void clear() noexcept { buf_.clear(); }

  std::size_t size() const noexcept { return buf_.size(); }

  /// Finished byte string.
  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a byte string. Throws std::out_of_range on
/// truncated input — a malformed frame must never be silently misread.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();
  bool get_bool();

  /// Bytes not yet consumed.
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace scaa::msg
