#include "msg/log.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace scaa::msg {

namespace {

template <typename M>
void republish_as(PubSubBus& bus, const WireFrame& frame) {
  M m{};
  deserialize(frame.payload, m);
  bus.publish(m);
}

}  // namespace

void republish(PubSubBus& bus, const WireFrame& frame) {
  switch (frame.topic) {
    case Topic::kGpsLocationExternal:
      republish_as<GpsLocationExternal>(bus, frame);
      return;
    case Topic::kModelV2: republish_as<ModelV2>(bus, frame); return;
    case Topic::kRadarState: republish_as<RadarState>(bus, frame); return;
    case Topic::kCarState: republish_as<CarState>(bus, frame); return;
    case Topic::kCarControl: republish_as<CarControl>(bus, frame); return;
    case Topic::kControlsState:
      republish_as<ControlsState>(bus, frame);
      return;
  }
  throw std::invalid_argument("republish: unknown topic");
}

void MessageLog::record_topic(PubSubBus& bus, Topic topic,
                              std::function<std::uint64_t()> clock) {
  subscriptions_.push_back(bus.subscribe_raw(
      topic, [this, clock = std::move(clock)](const WireFrame& frame) {
        // The frame payload is a view into the bus's scratch buffer; the
        // log owns its copy.
        entries_.push_back(
            {clock ? clock() : 0,
             {frame.topic, frame.sequence,
              {frame.payload.begin(), frame.payload.end()}}});
      }));
}

void MessageLog::record_all(PubSubBus& bus,
                            std::function<std::uint64_t()> clock) {
  for (std::size_t i = 1; i <= kTopicCount; ++i)
    record_topic(bus, static_cast<Topic>(i), clock);
}

void MessageLog::stop(PubSubBus& bus) {
  for (const auto id : subscriptions_) bus.unsubscribe(id);
  subscriptions_.clear();
}

std::size_t MessageLog::count(Topic topic) const noexcept {
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.frame.topic == topic) ++n;
  return n;
}

void MessageLog::replay(PubSubBus& bus) const {
  for (const auto& e : entries_) republish(bus, e.frame.view());
}

void MessageLog::save(std::ostream& out) const {
  Encoder header;
  header.put_u32(0x53414C47);  // "SALG" magic
  header.put_u64(entries_.size());
  const auto& hb = header.bytes();
  out.write(reinterpret_cast<const char*>(hb.data()),
            static_cast<std::streamsize>(hb.size()));
  for (const auto& e : entries_) {
    Encoder enc;
    enc.put_u64(e.step);
    enc.put_u16(static_cast<std::uint16_t>(e.frame.topic));
    enc.put_u64(e.frame.sequence);
    enc.put_u32(static_cast<std::uint32_t>(e.frame.payload.size()));
    const auto& b = enc.bytes();
    out.write(reinterpret_cast<const char*>(b.data()),
              static_cast<std::streamsize>(b.size()));
    out.write(reinterpret_cast<const char*>(e.frame.payload.data()),
              static_cast<std::streamsize>(e.frame.payload.size()));
  }
}

MessageLog MessageLog::load(std::istream& in) {
  auto read_bytes = [&in](std::size_t n) {
    std::vector<std::uint8_t> buf(n);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n)
      throw std::runtime_error("MessageLog::load: truncated stream");
    return buf;
  };

  MessageLog log;
  const auto header = read_bytes(12);
  Decoder hd(header);
  if (hd.get_u32() != 0x53414C47)
    throw std::runtime_error("MessageLog::load: bad magic");
  const std::uint64_t count = hd.get_u64();
  log.entries_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto meta = read_bytes(22);
    Decoder md(meta);
    LogEntry e;
    e.step = md.get_u64();
    e.frame.topic = static_cast<Topic>(md.get_u16());
    e.frame.sequence = md.get_u64();
    const std::uint32_t payload_size = md.get_u32();
    e.frame.payload = read_bytes(payload_size);
    log.entries_.push_back(std::move(e));
  }
  return log;
}

}  // namespace scaa::msg
