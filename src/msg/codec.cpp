#include "msg/codec.hpp"

namespace scaa::msg {

namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

template <typename T>
T read_le(const std::uint8_t* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<T>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void Encoder::put_u16(std::uint16_t v) { append_le(buf_, v); }
void Encoder::put_u32(std::uint32_t v) { append_le(buf_, v); }
void Encoder::put_u64(std::uint64_t v) { append_le(buf_, v); }

void Encoder::put_f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void Encoder::put_bool(bool v) {
  buf_.push_back(v ? std::uint8_t{1} : std::uint8_t{0});
}

void Decoder::need(std::size_t n) const {
  if (pos_ + n > size_)
    throw std::out_of_range("msg::Decoder: truncated frame");
}

std::uint16_t Decoder::get_u16() {
  need(2);
  const auto v = read_le<std::uint16_t>(data_ + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t Decoder::get_u32() {
  need(4);
  const auto v = read_le<std::uint32_t>(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::get_u64() {
  need(8);
  const auto v = read_le<std::uint64_t>(data_ + pos_);
  pos_ += 8;
  return v;
}

double Decoder::get_f64() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Decoder::get_bool() {
  need(1);
  return data_[pos_++] != 0;
}

}  // namespace scaa::msg
