#pragma once

/// @file messages.hpp
/// Typed message schema of the cereal-like in-process messaging system.
///
/// OpenPilot components exchange state over Cereal, a Cap'n-Proto-based
/// pub/sub layer. The attack in the paper eavesdrops three event types —
/// `gpsLocationExternal`, `modelV2`, `radarState` — and the control loop
/// publishes `carState`, `carControl` and `controlsState`. We reproduce that
/// schema as plain structs with a stable binary codec (msg/codec.hpp).
///
/// Field meanings mirror OpenPilot's log.capnp where the paper relies on
/// them; everything is SI.

#include <cstdint>
#include <string_view>

namespace scaa::msg {

/// Monotonic event counter stamped by the publisher (log mono time).
using MonoTime = std::uint64_t;

/// GPS fix; source of the Ego speed for the attacker ("gpsLocationExternal").
struct GpsLocationExternal {
  MonoTime mono_time = 0;
  double latitude = 0.0;    ///< degrees (synthetic in simulation)
  double longitude = 0.0;   ///< degrees
  double speed = 0.0;       ///< ground speed [m/s]
  double bearing = 0.0;     ///< heading [rad]
  bool has_fix = false;
};

/// Perception model output ("modelV2"): lane line positions relative to the
/// vehicle. Offsets are lateral distances in the vehicle frame, +left.
struct ModelV2 {
  MonoTime mono_time = 0;
  double left_lane_line = 0.0;    ///< lateral offset of left lane line [m]
  double right_lane_line = 0.0;   ///< lateral offset of right lane line [m]
  double left_line_prob = 0.0;    ///< detection confidence [0,1]
  double right_line_prob = 0.0;   ///< detection confidence [0,1]
  double path_curvature = 0.0;    ///< desired path curvature [1/m]
  double path_heading_error = 0.0; ///< lane heading minus vehicle heading [rad]
};

/// Radar-tracked lead vehicle ("radarState").
struct RadarState {
  MonoTime mono_time = 0;
  bool lead_valid = false;
  double lead_distance = 0.0;   ///< longitudinal gap to lead [m]
  double lead_rel_speed = 0.0;  ///< lead speed minus ego speed [m/s]
  double lead_speed = 0.0;      ///< absolute lead speed estimate [m/s]
};

/// Vehicle state as reported by the car interface ("carState").
struct CarState {
  MonoTime mono_time = 0;
  double speed = 0.0;          ///< wheel-speed derived [m/s]
  double accel = 0.0;          ///< measured longitudinal accel [m/s^2]
  double steer_angle = 0.0;    ///< measured road-wheel angle [rad]
  double cruise_speed = 0.0;   ///< set speed [m/s]
  bool cruise_enabled = false;
  double driver_torque = 0.0;  ///< driver input torque on the wheel [Nm]
};

/// Control command published by the ADAS ("carControl"). This is the message
/// the attack ultimately corrupts (via its CAN encoding).
struct CarControl {
  MonoTime mono_time = 0;
  bool enabled = false;
  double accel = 0.0;        ///< requested accel [m/s^2]; <0 brakes
  double steer_angle = 0.0;  ///< requested road-wheel angle [rad]
};

/// Controller status ("controlsState"): alerts and engagement.
struct ControlsState {
  MonoTime mono_time = 0;
  bool active = false;
  bool steer_saturated = false;
  bool fcw = false;          ///< forward collision warning active
  std::uint32_t alert_count = 0;
};

/// Topic identifiers. Values are stable: they appear in serialized frames.
enum class Topic : std::uint16_t {
  kGpsLocationExternal = 1,
  kModelV2 = 2,
  kRadarState = 3,
  kCarState = 4,
  kCarControl = 5,
  kControlsState = 6,
};

/// Number of topics. Topic values are the contiguous range
/// [1, kTopicCount]; the bus exploits that for flat per-topic tables.
inline constexpr std::size_t kTopicCount = 6;

/// True when @p topic is one of the schema topics above (a Topic forged by
/// casting an arbitrary integer is not).
constexpr bool topic_valid(Topic topic) noexcept {
  const auto v = static_cast<std::uint16_t>(topic);
  return v >= 1 && v <= kTopicCount;
}

/// Dense 0-based index of a valid topic (for flat per-topic arrays).
constexpr std::size_t topic_index(Topic topic) noexcept {
  return static_cast<std::size_t>(topic) - 1;
}

/// Human-readable topic name (matches OpenPilot's event names). The view
/// points into static storage and never dangles.
std::string_view topic_name(Topic topic);

/// Map each message type to its topic at compile time.
template <typename T>
struct TopicOf;
template <> struct TopicOf<GpsLocationExternal> {
  static constexpr Topic value = Topic::kGpsLocationExternal;
};
template <> struct TopicOf<ModelV2> {
  static constexpr Topic value = Topic::kModelV2;
};
template <> struct TopicOf<RadarState> {
  static constexpr Topic value = Topic::kRadarState;
};
template <> struct TopicOf<CarState> {
  static constexpr Topic value = Topic::kCarState;
};
template <> struct TopicOf<CarControl> {
  static constexpr Topic value = Topic::kCarControl;
};
template <> struct TopicOf<ControlsState> {
  static constexpr Topic value = Topic::kControlsState;
};

}  // namespace scaa::msg
