#include "fault/injector.hpp"

#include <algorithm>

namespace scaa::fault {

void FaultInjector::reset(std::shared_ptr<const FaultPlan> plan,
                          util::Rng rng) noexcept {
  plan_ = std::move(plan);
  active_ = plan_ != nullptr && !plan_->empty();
  rng_ = rng;
  time_ = 0.0;
  stall_remaining_ = 0;
  counters_ = FaultCounters{};
  last_gps_ = msg::GpsLocationExternal{};
  last_model_ = msg::ModelV2{};
  last_radar_ = msg::RadarState{};
  have_last_gps_ = false;
  have_last_model_ = false;
  have_last_radar_ = false;
}

can::FaultVerdict FaultInjector::on_can_frame(can::CanFrame& frame) noexcept {
  can::FaultVerdict verdict;
  if (!active_) return verdict;
  const FaultPlan& plan = *plan_;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultSpec& spec = plan[i];
    if (!spec.active_at(time_)) continue;
    switch (spec.kind) {
      case FaultKind::kCanBusOff:
        // Bus-off is unconditional inside its window: no node transmits.
        ++counters_.fired[fault_index(FaultKind::kCanBusOff)];
        verdict.action = can::FaultVerdict::Action::kDrop;
        return verdict;
      case FaultKind::kCanDrop:
        if (rng_.bernoulli(spec.rate)) {
          ++counters_.fired[fault_index(FaultKind::kCanDrop)];
          verdict.action = can::FaultVerdict::Action::kDrop;
          return verdict;
        }
        break;
      case FaultKind::kCanDelay:
        if (rng_.bernoulli(spec.rate)) {
          ++counters_.fired[fault_index(FaultKind::kCanDelay)];
          verdict.action = can::FaultVerdict::Action::kDelay;
          verdict.delay_ticks = std::max<std::uint32_t>(1, spec.ticks);
          return verdict;
        }
        break;
      case FaultKind::kCanCorrupt:
        if (rng_.bernoulli(spec.rate)) {
          if (frame.dlc > 0) {
            const int bits = static_cast<int>(frame.dlc) * 8;
            const int bit = rng_.uniform_int(0, bits - 1);
            frame.data[static_cast<std::size_t>(bit / 8)] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
            ++counters_.fired[fault_index(FaultKind::kCanCorrupt)];
          } else {
            ++counters_.suppressed[fault_index(FaultKind::kCanCorrupt)];
          }
        }
        break;  // a corrupted frame still travels (and may be dropped later)
      default:
        break;  // sensor/ECU kinds have no CAN opportunity
    }
  }
  return verdict;
}

template <typename Msg>
bool FaultInjector::sensor_gate(FaultTarget sensor, Msg& message, Msg& last,
                                bool& have_last) noexcept {
  const FaultPlan& plan = *plan_;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultSpec& spec = plan[i];
    if (!spec.active_at(time_)) continue;
    if (spec.target != FaultTarget::kAll && spec.target != sensor) continue;
    switch (spec.kind) {
      case FaultKind::kSensorDropout:
        if (rng_.bernoulli(spec.rate)) {
          ++counters_.fired[fault_index(FaultKind::kSensorDropout)];
          return false;  // publish suppressed; freeze memory unchanged
        }
        break;
      case FaultKind::kSensorFreeze:
        if (rng_.bernoulli(spec.rate)) {
          if (have_last) {
            // The stale mono_time is kept deliberately: staleness IS the
            // degradation signal the defense monitor watches for.
            message = last;
            ++counters_.fired[fault_index(FaultKind::kSensorFreeze)];
          } else {
            ++counters_.suppressed[fault_index(FaultKind::kSensorFreeze)];
          }
        }
        break;
      case FaultKind::kSensorNoise:
        if (rng_.bernoulli(spec.rate)) {
          apply_noise(spec, message);
          ++counters_.fired[fault_index(FaultKind::kSensorNoise)];
        }
        break;
      default:
        break;  // CAN/ECU kinds have no sensor opportunity
    }
  }
  last = message;
  have_last = true;
  return true;
}

void FaultInjector::apply_noise(const FaultSpec& spec,
                                msg::GpsLocationExternal& fix) noexcept {
  fix.speed = std::max(
      0.0, fix.speed + spec.bias + rng_.gaussian(0.0, spec.magnitude));
}

void FaultInjector::apply_noise(const FaultSpec& spec,
                                msg::ModelV2& model) noexcept {
  model.left_lane_line += spec.bias + rng_.gaussian(0.0, spec.magnitude);
  model.right_lane_line += spec.bias + rng_.gaussian(0.0, spec.magnitude);
}

void FaultInjector::apply_noise(const FaultSpec& spec,
                                msg::RadarState& state) noexcept {
  if (!state.lead_valid) return;
  state.lead_distance = std::max(
      0.0, state.lead_distance + spec.bias +
               rng_.gaussian(0.0, spec.magnitude));
  state.lead_rel_speed += rng_.gaussian(0.0, spec.magnitude);
}

bool FaultInjector::on_gps(msg::GpsLocationExternal& fix) noexcept {
  if (!active_) return true;
  return sensor_gate(FaultTarget::kGps, fix, last_gps_, have_last_gps_);
}

bool FaultInjector::on_camera(msg::ModelV2& model) noexcept {
  if (!active_) return true;
  return sensor_gate(FaultTarget::kCamera, model, last_model_,
                     have_last_model_);
}

bool FaultInjector::on_radar(msg::RadarState& state) noexcept {
  if (!active_) return true;
  return sensor_gate(FaultTarget::kRadar, state, last_radar_,
                     have_last_radar_);
}

bool FaultInjector::ecu_stalled() noexcept {
  if (!active_) return false;
  if (stall_remaining_ > 0) {
    --stall_remaining_;
    return true;
  }
  const FaultPlan& plan = *plan_;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultSpec& spec = plan[i];
    if (spec.kind != FaultKind::kEcuStall || !spec.active_at(time_)) continue;
    if (rng_.bernoulli(spec.rate)) {
      ++counters_.fired[fault_index(FaultKind::kEcuStall)];
      stall_remaining_ = spec.ticks > 0 ? spec.ticks - 1 : 0;
      return true;
    }
  }
  return false;
}

}  // namespace scaa::fault
