#pragma once

/// @file plan.hpp
/// Typed benign-fault plans: the deterministic description of which
/// CAN/sensor/ECU faults a simulation injects, and when.
///
/// A FaultPlan is immutable data — a bounded list of FaultSpecs with
/// activation windows and per-opportunity rates. All randomness lives in
/// the FaultInjector, which draws from a dedicated RNG stream forked from
/// the world seed (fault/injector.hpp), so a (seed, plan) pair replays the
/// exact same fault sequence at any thread or shard count. Plans are
/// shared across Worlds via shared_ptr<const FaultPlan> (the road/db
/// pattern): attaching one to a WorldConfig costs no per-reset allocation.

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace scaa::fault {

/// The fault taxonomy. Values are stable: they index the per-kind
/// fired/suppressed counters in SimulationSummary and appear in plan files
/// and fingerprints.
enum class FaultKind : std::uint8_t {
  kCanDrop = 0,     ///< drop a frame with probability `rate`
  kCanDelay,        ///< hold a frame in the bus queue for `ticks` ticks
  kCanCorrupt,      ///< flip one uniformly chosen payload bit
  kCanBusOff,       ///< bus-off window: every frame inside [t0,t1) is lost
  kSensorDropout,   ///< suppress a sensor publish
  kSensorFreeze,    ///< republish the previous value (stale mono_time)
  kSensorNoise,     ///< additive bias + extra gaussian noise burst
  kEcuStall,        ///< controls ECU misses `ticks` consecutive ticks
};

/// Number of fault kinds (size of the per-kind counter arrays).
inline constexpr std::size_t kFaultKindCount = 8;

/// Stable lowercase token for @p kind ("can_drop", ...), as used in plan
/// files and report rows. Static storage, never dangles.
const char* fault_kind_name(FaultKind kind) noexcept;

/// Parse a plan-file kind token; returns false on an unknown token.
bool parse_fault_kind(std::string_view text, FaultKind& out) noexcept;

/// Which sensor a sensor-family fault applies to (ignored by CAN/ECU
/// kinds).
enum class FaultTarget : std::uint8_t { kAll = 0, kGps, kCamera, kRadar };

const char* fault_target_name(FaultTarget target) noexcept;
bool parse_fault_target(std::string_view text, FaultTarget& out) noexcept;

/// One fault. Fields not used by a kind are ignored (and default-zero so
/// the fingerprint stays canonical).
struct FaultSpec {
  FaultKind kind = FaultKind::kCanDrop;
  double t0 = 0.0;          ///< activation window [t0, t1) in sim seconds
  double t1 = 1.0e9;
  double rate = 0.0;        ///< per-opportunity Bernoulli probability
  double magnitude = 0.0;   ///< gaussian noise std (kSensorNoise)
  double bias = 0.0;        ///< additive offset (kSensorNoise)
  std::uint32_t ticks = 0;  ///< delay/stall duration in 10 ms ticks
  FaultTarget target = FaultTarget::kAll;

  /// True when sim time @p time falls inside the activation window.
  bool active_at(double time) const noexcept {
    return time >= t0 && time < t1;
  }
};

/// Thrown on malformed plan files; the message carries "<path>:<line>:"
/// diagnostics.
class FaultPlanError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// An immutable, bounded list of FaultSpecs. Fixed inline storage so the
/// injector can mirror per-spec state in flat arrays and the zero-alloc
/// world lifecycle holds with a plan attached.
class FaultPlan {
 public:
  static constexpr std::size_t kMaxFaults = 16;

  /// Append a spec; throws FaultPlanError once kMaxFaults is reached.
  void add(const FaultSpec& spec);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const FaultSpec& operator[](std::size_t i) const noexcept {
    return specs_[i];
  }

  /// Order-sensitive FNV-1a digest over every field of every spec.
  /// Folded into the campaign grid fingerprint (exp/checkpoint.cpp) so a
  /// resume against a checkpoint written under a different plan is
  /// rejected, and doubles travel as exact IEEE-754 bit patterns.
  std::uint64_t fingerprint() const noexcept;

  /// Parse a plan file. One spec per line:
  ///   <kind> [window=<t0>:<t1>] [rate=<p>] [ticks=<n>] [mag=<x>]
  ///          [bias=<x>] [target=<all|gps|camera|radar>]
  /// Blank lines and `#` comments are ignored. Throws FaultPlanError with
  /// "<path>:<line>: <reason>" on any malformed input.
  static FaultPlan parse_file(const std::string& path);

  /// parse_file's core, on in-memory text (@p path only labels errors).
  static FaultPlan parse_text(std::string_view text, std::string_view path);

 private:
  std::array<FaultSpec, kMaxFaults> specs_{};
  std::size_t size_ = 0;
};

}  // namespace scaa::fault
