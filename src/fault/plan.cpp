#include "fault/plan.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/serial.hpp"

namespace scaa::fault {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[kFaultKindCount] = {
    {FaultKind::kCanDrop, "can_drop"},
    {FaultKind::kCanDelay, "can_delay"},
    {FaultKind::kCanCorrupt, "can_corrupt"},
    {FaultKind::kCanBusOff, "can_busoff"},
    {FaultKind::kSensorDropout, "sensor_dropout"},
    {FaultKind::kSensorFreeze, "sensor_freeze"},
    {FaultKind::kSensorNoise, "sensor_noise"},
    {FaultKind::kEcuStall, "ecu_stall"},
};

struct TargetName {
  FaultTarget target;
  const char* name;
};

constexpr TargetName kTargetNames[4] = {
    {FaultTarget::kAll, "all"},
    {FaultTarget::kGps, "gps"},
    {FaultTarget::kCamera, "camera"},
    {FaultTarget::kRadar, "radar"},
};

/// Strict double parse: the whole token must be consumed.
bool parse_double(std::string_view text, double& out) noexcept {
  if (text.empty() || text.size() > 64) return false;
  char buf[65];
  text.copy(buf, text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + text.size() || errno == ERANGE) return false;
  out = value;
  return true;
}

bool parse_u32(std::string_view text, std::uint32_t& out) noexcept {
  if (text.empty() || text.size() > 10) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xFFFFFFFFull) return false;
  }
  out = static_cast<std::uint32_t>(value);
  return true;
}

[[noreturn]] void fail(std::string_view path, std::size_t line,
                       const std::string& reason) {
  std::ostringstream msg;
  msg << path << ":" << line << ": " << reason;
  throw FaultPlanError(msg.str());
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  for (const auto& entry : kKindNames)
    if (entry.kind == kind) return entry.name;
  return "unknown";
}

bool parse_fault_kind(std::string_view text, FaultKind& out) noexcept {
  for (const auto& entry : kKindNames) {
    if (text == entry.name) {
      out = entry.kind;
      return true;
    }
  }
  return false;
}

const char* fault_target_name(FaultTarget target) noexcept {
  for (const auto& entry : kTargetNames)
    if (entry.target == target) return entry.name;
  return "unknown";
}

bool parse_fault_target(std::string_view text, FaultTarget& out) noexcept {
  for (const auto& entry : kTargetNames) {
    if (text == entry.name) {
      out = entry.target;
      return true;
    }
  }
  return false;
}

void FaultPlan::add(const FaultSpec& spec) {
  if (size_ >= kMaxFaults) {
    throw FaultPlanError("FaultPlan: more than " +
                         std::to_string(kMaxFaults) + " faults");
  }
  specs_[size_++] = spec;
}

std::uint64_t FaultPlan::fingerprint() const noexcept {
  util::Fnv1a64 hash;
  hash.update("scaa-fault-plan");
  hash.update(static_cast<std::uint64_t>(size_));
  for (std::size_t i = 0; i < size_; ++i) {
    const FaultSpec& s = specs_[i];
    hash.update(static_cast<std::uint64_t>(s.kind));
    hash.update(util::double_bits(s.t0));
    hash.update(util::double_bits(s.t1));
    hash.update(util::double_bits(s.rate));
    hash.update(util::double_bits(s.magnitude));
    hash.update(util::double_bits(s.bias));
    hash.update(static_cast<std::uint64_t>(s.ticks));
    hash.update(static_cast<std::uint64_t>(s.target));
  }
  return hash.digest();
}

FaultPlan FaultPlan::parse_text(std::string_view text, std::string_view path) {
  FaultPlan plan;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash_pos = line.find('#');
    if (hash_pos != std::string_view::npos) line = line.substr(0, hash_pos);

    // Tokenize on whitespace.
    FaultSpec spec;
    bool have_kind = false;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                 line[i] == '\r'))
        ++i;
      std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r')
        ++i;
      if (i == start) break;
      const std::string_view token = line.substr(start, i - start);

      if (!have_kind) {
        if (!parse_fault_kind(token, spec.kind)) {
          fail(path, line_no,
               "unknown fault kind '" + std::string(token) + "'");
        }
        have_kind = true;
        continue;
      }

      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        fail(path, line_no,
             "expected key=value, got '" + std::string(token) + "'");
      }
      const std::string_view key = token.substr(0, eq);
      const std::string_view value = token.substr(eq + 1);
      bool ok = true;
      if (key == "window") {
        const std::size_t colon = value.find(':');
        ok = colon != std::string_view::npos &&
             parse_double(value.substr(0, colon), spec.t0) &&
             parse_double(value.substr(colon + 1), spec.t1) &&
             spec.t0 <= spec.t1;
      } else if (key == "rate") {
        ok = parse_double(value, spec.rate) && spec.rate >= 0.0 &&
             spec.rate <= 1.0;
      } else if (key == "mag") {
        ok = parse_double(value, spec.magnitude) && spec.magnitude >= 0.0;
      } else if (key == "bias") {
        ok = parse_double(value, spec.bias);
      } else if (key == "ticks") {
        ok = parse_u32(value, spec.ticks);
      } else if (key == "target") {
        ok = parse_fault_target(value, spec.target);
      } else {
        fail(path, line_no, "unknown key '" + std::string(key) + "'");
      }
      if (!ok) {
        fail(path, line_no, "bad value for '" + std::string(key) + "': '" +
                                std::string(value) + "'");
      }
    }

    if (!have_kind) continue;  // blank or comment-only line
    if (plan.size() >= kMaxFaults) {
      fail(path, line_no,
           "more than " + std::to_string(kMaxFaults) + " faults");
    }
    plan.add(spec);
  }
  return plan;
}

FaultPlan FaultPlan::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FaultPlanError(path + ": cannot open fault plan file");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_text(text.str(), path);
}

}  // namespace scaa::fault
