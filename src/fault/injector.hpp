#pragma once

/// @file injector.hpp
/// Deterministic execution of a FaultPlan inside one World.
///
/// The injector is a by-value World member with fixed inline state, so the
/// zero-alloc world lifecycle holds with a plan attached. All entropy comes
/// from a dedicated stream forked from the world seed (stream id 17, the
/// next free id after controls = 16); because Rng::fork() is const on the
/// parent, the stream is forked even for plan-free worlds and a world
/// without a plan draws exactly the streams it always did — bit-identity
/// with the pre-fault baselines is structural, not tested-for luck.
///
/// Hook sites (wired once at World construction, gated per-run):
///  * can::CanBus::send() consults on_can_frame() before dispatch
///    (drop / delay / payload corruption / bus-off);
///  * each sensor consults on_gps/on_camera/on_radar() immediately before
///    its publish (dropout / freeze-last-value / bias+noise burst);
///  * sim::World::mid_tick() consults ecu_stalled() before stepping the
///    ADAS controls ECU.

#include <array>
#include <cstdint>
#include <memory>

#include "can/bus.hpp"
#include "fault/plan.hpp"
#include "msg/messages.hpp"
#include "util/rng.hpp"

namespace scaa::fault {

/// Per-kind fired/suppressed counters, indexed by FaultKind. "Fired" counts
/// faults that took effect; "suppressed" counts faults that triggered but
/// could not apply (corrupting an empty payload, freezing before any value
/// exists; the CAN delay-queue overflow case is counted by the bus and
/// merged in World::summarize()).
struct FaultCounters {
  std::array<std::uint64_t, kFaultKindCount> fired{};
  std::array<std::uint64_t, kFaultKindCount> suppressed{};
};

/// Dense counter index of a fault kind.
constexpr std::size_t fault_index(FaultKind kind) noexcept {
  return static_cast<std::size_t>(kind);
}

/// Executes a FaultPlan against one world. Inert (no RNG draws, no state
/// changes) when no plan is attached.
class FaultInjector {
 public:
  /// Re-arm for a new simulation: adopt @p plan (may be null) and the
  /// world's fault stream. Counters, stall state, and freeze memory clear.
  /// Allocation-free (shared_ptr adoption only touches the refcount).
  void reset(std::shared_ptr<const FaultPlan> plan, util::Rng rng) noexcept;

  /// Record the tick's sim time; all activation windows are evaluated
  /// against it. Called at the top of World::mid_tick().
  void begin_tick(double time) noexcept { time_ = time; }

  /// True when a non-empty plan is attached.
  bool active() const noexcept { return active_; }

  /// CAN fault hook: may mutate @p frame (bit corruption) and returns the
  /// verdict the bus applies (pass / drop / delay).
  can::FaultVerdict on_can_frame(can::CanFrame& frame) noexcept;

  /// Sensor fault hooks, called immediately before the publish. May mutate
  /// the message (freeze / noise); returning false suppresses the publish
  /// entirely (dropout).
  bool on_gps(msg::GpsLocationExternal& fix) noexcept;
  bool on_camera(msg::ModelV2& model) noexcept;
  bool on_radar(msg::RadarState& state) noexcept;

  /// ECU-stall hook: true when the controls ECU misses this tick. A
  /// triggered stall holds for the spec's `ticks` consecutive ticks.
  bool ecu_stalled() noexcept;

  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  template <typename Msg>
  bool sensor_gate(FaultTarget sensor, Msg& message, Msg& last,
                   bool& have_last) noexcept;

  void apply_noise(const FaultSpec& spec,
                   msg::GpsLocationExternal& fix) noexcept;
  void apply_noise(const FaultSpec& spec, msg::ModelV2& model) noexcept;
  void apply_noise(const FaultSpec& spec, msg::RadarState& state) noexcept;

  std::shared_ptr<const FaultPlan> plan_;
  bool active_ = false;
  util::Rng rng_{0};
  double time_ = 0.0;
  std::uint32_t stall_remaining_ = 0;
  FaultCounters counters_;

  // Freeze memory: the last message each sensor actually published.
  msg::GpsLocationExternal last_gps_{};
  msg::ModelV2 last_model_{};
  msg::RadarState last_radar_{};
  bool have_last_gps_ = false;
  bool have_last_model_ = false;
  bool have_last_radar_ = false;
};

}  // namespace scaa::fault
