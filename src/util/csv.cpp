#include "util/csv.hpp"

#include <iomanip>
#include <stdexcept>

namespace scaa::util {

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (header_written_) throw std::logic_error("CsvWriter: header written twice");
  if (columns.empty()) throw std::invalid_argument("CsvWriter: empty header");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(columns[i]);
  }
  *out_ << '\n';
  header_written_ = true;
  columns_ = columns.size();
}

CsvWriter& CsvWriter::row() {
  if (!header_written_) throw std::logic_error("CsvWriter: header not written");
  if (in_row_) throw std::logic_error("CsvWriter: previous row not ended");
  in_row_ = true;
  first_cell_ = true;
  cells_in_row_ = 0;
  return *this;
}

void CsvWriter::separator() {
  if (!in_row_) throw std::logic_error("CsvWriter: cell outside a row");
  if (!first_cell_) *out_ << ',';
  first_cell_ = false;
  ++cells_in_row_;
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  separator();
  *out_ << escape(value);
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  separator();
  *out_ << std::setprecision(12) << value;
  return *this;
}

CsvWriter& CsvWriter::cell(long long value) {
  separator();
  *out_ << value;
  return *this;
}

CsvWriter& CsvWriter::cell(bool value) {
  separator();
  *out_ << (value ? 1 : 0);
  return *this;
}

void CsvWriter::end_row() {
  if (!in_row_) throw std::logic_error("CsvWriter: end_row outside a row");
  if (cells_in_row_ != columns_)
    throw std::logic_error("CsvWriter: row width does not match header");
  *out_ << '\n';
  in_row_ = false;
  ++rows_;
}

std::string CsvWriter::escape(const std::string& value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace scaa::util
