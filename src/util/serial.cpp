#include "util/serial.hpp"

namespace scaa::util {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_u64(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

bool parse_hex_u64(std::string_view text, std::uint64_t& out) noexcept {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    const int digit = hex_value(c);
    if (digit < 0) return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  out = v;
  return true;
}

Fnv1a64& Fnv1a64::update_bytes(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= 0x00000100000001B3ull;  // FNV prime
  }
  return *this;
}

Fnv1a64& Fnv1a64::update(std::uint64_t v) noexcept {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v & 0xFF);  // little-endian
    v >>= 8;
  }
  return update_bytes(bytes, sizeof(bytes));
}

Fnv1a64& Fnv1a64::update(std::string_view text) noexcept {
  return update_bytes(text.data(), text.size());
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  return Fnv1a64().update(text).digest();
}

}  // namespace scaa::util
