#include "util/units.hpp"

// Header-only; translation unit exists so the module participates in the
// build graph and static checks run over the header.
