#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

#include "util/serial.hpp"

namespace scaa::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

RunningStatsRecord RunningStats::to_record() const noexcept {
  RunningStatsRecord record;
  record.n = static_cast<std::uint64_t>(n_);
  record.mean_bits = double_bits(mean_);
  record.m2_bits = double_bits(m2_);
  record.min_bits = double_bits(min_);
  record.max_bits = double_bits(max_);
  return record;
}

RunningStats RunningStats::from_record(const RunningStatsRecord& record) noexcept {
  RunningStats stats;
  stats.n_ = static_cast<std::size_t>(record.n);
  stats.mean_ = double_from_bits(record.mean_bits);
  stats.m2_ = double_from_bits(record.m2_bits);
  stats.min_ = double_from_bits(record.min_bits);
  stats.max_ = double_from_bits(record.max_bits);
  return stats;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!std::isfinite(lo) || !std::isfinite(hi))
    throw std::invalid_argument("Histogram: bounds must be finite");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
}

void Histogram::add(double x) noexcept {
  if (std::isnan(x)) {  // NaN policy: drop and count, never bin
    ++nan_;
    return;
  }
  // Clamp in double space BEFORE the integer conversion: casting a scaled
  // sample that is out of the target type's range (or +/-inf) is UB, so the
  // cast below only ever sees a value in [0, bins).
  std::size_t idx = 0;
  if (x >= hi_) {
    idx = counts_.size() - 1;
  } else if (x > lo_) {
    // Even with finite bounds, (x - lo) and (hi - lo) can both overflow to
    // inf for near-DBL_MAX spans, making t NaN — so gate the cast on t
    // being a genuine in-range fraction (a NaN fails every comparison and
    // falls through to bin 0).
    const double t = (x - lo_) / (hi_ - lo_);
    if (t >= 1.0) {
      idx = counts_.size() - 1;
    } else if (t > 0.0) {
      idx = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
      // t*bins can round up to bins when x is just below hi.
      if (idx >= counts_.size()) idx = counts_.size() - 1;
    }
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace scaa::util
