#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace scaa::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long>(counts_.size()))
    idx = static_cast<long>(counts_.size()) - 1;
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace scaa::util
