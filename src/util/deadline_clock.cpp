#include "util/deadline_clock.hpp"

#include <cerrno>
#include <cmath>
#include <stdexcept>

#include <time.h>

namespace scaa::util {

namespace {

constexpr long long kNsPerS = 1'000'000'000;

std::timespec monotonic_now() noexcept {
  std::timespec now{};
  ::clock_gettime(CLOCK_MONOTONIC, &now);
  return now;
}

void add_ns(std::timespec& ts, long long ns) noexcept {
  ts.tv_nsec += static_cast<long>(ns % kNsPerS);
  ts.tv_sec += static_cast<time_t>(ns / kNsPerS);
  if (ts.tv_nsec >= kNsPerS) {
    ts.tv_nsec -= kNsPerS;
    ts.tv_sec += 1;
  }
}

/// a - b in seconds.
double diff_s(const std::timespec& a, const std::timespec& b) noexcept {
  return static_cast<double>(a.tv_sec - b.tv_sec) +
         1e-9 * static_cast<double>(a.tv_nsec - b.tv_nsec);
}

}  // namespace

double monotonic_now_s() noexcept {
  const std::timespec now = monotonic_now();
  return static_cast<double>(now.tv_sec) +
         1e-9 * static_cast<double>(now.tv_nsec);
}

DeadlineClock::DeadlineClock(double period_s) : period_s_(period_s) {
  if (!std::isfinite(period_s) || period_s <= 0.0)
    throw std::invalid_argument(
        "DeadlineClock: period must be finite and positive");
  period_ns_ = static_cast<long long>(period_s * 1e9);
  if (period_ns_ < 1) period_ns_ = 1;
}

void DeadlineClock::start() {
  deadline_ = monotonic_now();
  add_ns(deadline_, period_ns_);
  armed_ = true;
}

DeadlineClock::Tick DeadlineClock::wait_next() {
  if (!armed_) start();

  Tick tick;
  std::timespec now = monotonic_now();
  tick.slack_s = diff_s(deadline_, now);
  tick.overrun = tick.slack_s < 0.0;

  if (tick.overrun) {
    // The deadline already passed while the work ran: don't sleep, and
    // re-phase the schedule past `now` so one long stall is one overrun.
    tick.wake_error_s = -tick.slack_s;
    const auto periods_behind =
        static_cast<long long>(-tick.slack_s * 1e9 / period_ns_) + 1;
    add_ns(deadline_, periods_behind * period_ns_);
    return tick;
  }

  while (::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline_,
                           nullptr) == EINTR) {
  }
  now = monotonic_now();
  // clock_nanosleep never wakes early; any positive error is scheduler lag.
  tick.wake_error_s = -diff_s(deadline_, now);
  if (tick.wake_error_s < 0.0) tick.wake_error_s = 0.0;
  add_ns(deadline_, period_ns_);
  return tick;
}

}  // namespace scaa::util
