#pragma once

/// @file rng.hpp
/// Deterministic random number generation.
///
/// Every simulation must be a pure function of (scenario, strategy, seed) so
/// that campaigns are reproducible bit-for-bit regardless of thread count.
/// We use xoshiro256++ seeded via SplitMix64; both are tiny, fast and have
/// well-studied statistical quality. No global RNG state exists anywhere in
/// scaa: each component that needs randomness receives an Rng (or a stream
/// forked from one) explicitly.

#include <cstdint>

namespace scaa::util {

/// SplitMix64 step; used to expand a single 64-bit seed into stream state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ PRNG with explicit state. Satisfies the essentials of
/// UniformRandomBitGenerator but we deliberately provide our own
/// distributions: libstdc++'s std::normal_distribution is not stable across
/// implementations, and reproducibility matters more than textbook variety.
class Rng {
 public:
  /// Construct from a 64-bit seed (expanded through SplitMix64).
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) noexcept;

  /// Standard normal deviate (Marsaglia polar method, deterministic).
  double gaussian() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability @p p of returning true.
  bool bernoulli(double p) noexcept;

  /// Fork an independent stream: deterministic child RNG derived from this
  /// stream's state and @p stream_id. Forking does not perturb the parent.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace scaa::util
