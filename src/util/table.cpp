#include "util/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace scaa::util {

void TextTable::set_header(std::vector<std::string> header) {
  if (!rows_.empty())
    throw std::logic_error("TextTable: header after rows were added");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (header_.empty()) throw std::logic_error("TextTable: no header set");
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  if (header_.empty()) return {};
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      out << (c + 1 == row.size() ? " |" : " | ");
    }
    out << '\n';
  };
  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-');
    out << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_percent(double fraction, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
  return out.str();
}

std::string format_count_percent(std::size_t count, std::size_t total,
                                 int decimals) {
  std::ostringstream out;
  out << count << " (";
  const double frac =
      total ? static_cast<double>(count) / static_cast<double>(total) : 0.0;
  out << std::fixed << std::setprecision(decimals) << frac * 100.0 << "%)";
  return out.str();
}

std::string format_mean_std(double mean, double stddev, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << mean << " +/- "
      << stddev;
  return out.str();
}

std::string format_double(double v, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << v;
  return out.str();
}

}  // namespace scaa::util
