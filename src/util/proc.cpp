#include "util/proc.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "util/logging.hpp"

namespace scaa::util {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

void UniqueFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

PipeFds make_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("pipe");
  PipeFds p;
  p.read_end.reset(fds[0]);
  p.write_end.reset(fds[1]);
  return p;
}

bool write_all(int fd, const void* data, std::size_t size) noexcept {
  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: reader gone, keep working
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, std::string_view line) noexcept {
  std::string framed(line);
  framed += '\n';
  return write_all(fd, framed.data(), framed.size());
}

std::string ExitStatus::describe() const {
  if (exited) return "exit code " + std::to_string(code);
  const char* name = ::strsignal(signal);
  return "killed by signal " + std::to_string(signal) +
         (name != nullptr ? " (" + std::string(name) + ")" : std::string());
}

ExitStatus wait_child(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r == pid) break;
    if (r < 0 && errno == EINTR) continue;
    throw_errno("waitpid");
  }
  ExitStatus result;
  if (WIFEXITED(status)) {
    result.exited = true;
    result.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signal = WTERMSIG(status);
  }
  return result;
}

ForkedWorker fork_worker(const std::function<int(int progress_fd)>& body) {
  PipeFds pipe = make_pipe();
  const pid_t pid = ::fork();
  if (pid < 0) throw_errno("fork");
  if (pid == 0) {
    // Child. Drop the read end, ignore SIGPIPE (a dead coordinator must
    // not kill a worker mid-slice), run the body, and _exit without
    // touching the parent's atexit handlers or stream buffers.
    pipe.read_end.reset();
    ::signal(SIGPIPE, SIG_IGN);
    int code = 125;
    try {
      code = body(pipe.write_end.get());
    } catch (...) {
      // The body contract is to catch its own exceptions; 125 marks the
      // violation distinctly from an ordinary failure exit.
    }
    ::_exit(code);
  }
  ForkedWorker worker;
  worker.pid = pid;
  worker.progress = std::move(pipe.read_end);
  return worker;
}

LineMux::LineMux(std::vector<int> fds)
    : fds_(std::move(fds)),
      buffers_(fds_.size()),
      scanned_(fds_.size(), 0) {}

void LineMux::run(
    const std::function<void(std::size_t, std::string_view)>& on_line,
    const std::function<bool()>& interrupted) {
  std::vector<bool> open(fds_.size(), true);
  std::size_t open_count = fds_.size();
  std::vector<struct pollfd> pfds(fds_.size());

  // Single-pass drain: scanned_[i] marks how far the buffer is known
  // newline-free, so each arriving byte is examined once no matter how
  // many tiny writes delivered it.
  auto flush_lines = [&](std::size_t i) {
    std::string& buf = buffers_[i];
    std::size_t begin = 0;
    std::size_t search = scanned_[i];
    for (;;) {
      const std::size_t eol = buf.find('\n', search);
      if (eol == std::string::npos) break;
      on_line(i, std::string_view(buf).substr(begin, eol - begin));
      begin = eol + 1;
      search = begin;
    }
    buf.erase(0, begin);
    scanned_[i] = buf.size();
  };

  while (open_count > 0) {
    if (interrupted && interrupted()) return;
    std::size_t n = 0;
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      if (!open[i]) continue;
      pfds[n].fd = fds_[i];
      pfds[n].events = POLLIN;
      pfds[n].revents = 0;
      ++n;
    }
    const int ready = ::poll(pfds.data(), n, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;  // interrupted() is re-checked above
      throw std::system_error(errno, std::generic_category(), "poll");
    }
    std::size_t slot = 0;
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      if (!open[i]) continue;
      const struct pollfd& p = pfds[slot++];
      if (p.revents == 0) continue;
      char chunk[4096];
      const ssize_t got = ::read(p.fd, chunk, sizeof chunk);
      if (got > 0) {
        buffers_[i].append(chunk, static_cast<std::size_t>(got));
        flush_lines(i);
      } else if (got == 0 || (got < 0 && errno != EINTR)) {
        // EOF, or a hard error that closes the slot like EOF — but say so:
        // the worker's exit status is the authoritative failure signal,
        // yet a silent ECONNRESET/EBADF here would leave a truncated
        // progress stream unexplained.
        if (got < 0) {
          SCAA_LOG_WARN() << "LineMux: read error on fd " << p.fd << " ("
                          << std::strerror(errno)
                          << "); closing the slot like EOF";
        }
        if (!buffers_[i].empty()) {
          on_line(i, buffers_[i]);
          buffers_[i].clear();
          scanned_[i] = 0;
        }
        open[i] = false;
        --open_count;
      }
    }
  }
}

}  // namespace scaa::util
