#pragma once

/// @file proc.hpp
/// Minimal process and pipe helpers for the campaign coordinator.
///
/// The sharded campaign runner forks one worker process per slice and
/// multiplexes their progress over pipes. These are deliberately thin
/// wrappers over fork(2)/pipe(2)/poll(2)/waitpid(2): no exec, no shell,
/// no signals machinery beyond ignoring SIGPIPE in workers — a worker
/// whose coordinator died keeps running (its results are checkpointed;
/// a later `merge` picks them up) instead of dying on a pipe write. The
/// coordinator's own SIGINT/SIGTERM forwarding lives in the campaign
/// layer; LineMux only offers the interruption hook it needs.
///
/// fork-without-exec is safe here because the coordinator forks before it
/// creates any threads: campaign thread pools are scoped to a run, and the
/// coordinator itself never simulates.

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace scaa::util {

/// Owning file descriptor (close-on-destroy, move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const noexcept { return fd_; }
  explicit operator bool() const noexcept { return fd_ >= 0; }

  /// Give up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Close the current fd (if any) and adopt @p fd.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Both ends of a pipe(2). Throws std::system_error on failure.
struct PipeFds {
  UniqueFd read_end;
  UniqueFd write_end;
};
PipeFds make_pipe();

/// Write all @p size bytes of @p data to @p fd, retrying on EINTR and
/// short writes. Returns false on any other error (errno is preserved for
/// the caller to report). Callers must ignore SIGPIPE if the fd can be a
/// pipe whose reader may vanish.
bool write_all(int fd, const void* data, std::size_t size) noexcept;

/// Write @p line plus a trailing '\n' to @p fd, retrying on EINTR and
/// short writes. Returns false (instead of throwing) when the reader is
/// gone (EPIPE) or the write fails otherwise — progress reporting must
/// never kill a worker whose results are still being checkpointed.
/// Callers must ignore SIGPIPE (fork_worker's children do).
bool write_line(int fd, std::string_view line) noexcept;

/// Decoded waitpid(2) status.
struct ExitStatus {
  bool exited = false;  ///< terminated via exit(); `code` is valid
  int code = -1;        ///< exit code when `exited`
  int signal = 0;       ///< terminating signal when !`exited`

  bool ok() const noexcept { return exited && code == 0; }
  /// Human-readable form: "exit code 1", "killed by signal 9 (SIGKILL)".
  std::string describe() const;
};

/// Blocking waitpid for @p pid. Throws std::system_error if waitpid fails
/// (e.g. the pid is not a child of this process).
ExitStatus wait_child(pid_t pid);

/// One forked worker: the child runs `body(progress_fd)` with SIGPIPE
/// ignored and `_exit`s with its return value (never returning into the
/// parent's stack, atexit handlers, or buffered streams); the parent keeps
/// the pipe's read end. Throws std::system_error when fork fails. The body
/// must not let exceptions escape (fork_worker _exits 125 if one does, so
/// a bug cannot fall through and resume the parent's control flow twice).
struct ForkedWorker {
  pid_t pid = -1;
  UniqueFd progress;  ///< read end of the worker's progress pipe
};
ForkedWorker fork_worker(const std::function<int(int progress_fd)>& body);

/// Poll-based line demultiplexer over a set of pipe read ends: run()
/// blocks until every fd reaches EOF, invoking on_line(index, line) for
/// each complete '\n'-terminated line in arrival order (a final unterminated
/// fragment is delivered at EOF). A hard read error on one fd closes that
/// slot like EOF — after logging the errno (the worker's exit status is the
/// authoritative failure signal) and after delivering any buffered
/// fragment. The fds are borrowed, not owned.
class LineMux {
 public:
  explicit LineMux(std::vector<int> fds);

  /// @p interrupted (optional) is checked each loop iteration and after
  /// every EINTR-interrupted poll: returning true makes run() return early
  /// with slots still open — the hook a signal-forwarding coordinator uses
  /// to stop multiplexing and go kill its workers (its handler makes the
  /// predicate true and the signal itself makes poll return EINTR).
  void run(const std::function<void(std::size_t, std::string_view)>& on_line,
           const std::function<bool()>& interrupted = {});

 private:
  std::vector<int> fds_;
  std::vector<std::string> buffers_;
  /// Per-buffer index up to which no '\n' exists: each arriving chunk is
  /// scanned exactly once, so a pathological newline-free flood of tiny
  /// writes costs O(bytes), not O(bytes^2) whole-buffer rescans.
  std::vector<std::size_t> scanned_;
};

}  // namespace scaa::util
