#pragma once

/// @file alloc_counter.hpp
/// Process-wide heap allocation counting for zero-allocation assertions.
///
/// Including this header REPLACES the global allocation functions of the
/// binary, so include it in exactly ONE translation unit of an executable
/// (it defines non-inline operators — a second including TU is an ODR
/// violation the linker will reject). Used by test_codec and bench_codec
/// to prove the precompiled CAN codec path never touches the heap.

#include <atomic>
#include <cstdlib>
#include <new>

namespace scaa::util {

/// Total operator-new calls in this process so far. Bracket the code under
/// test with two reads; the difference is exact.
inline std::atomic<std::uint64_t> g_allocation_count{0};

}  // namespace scaa::util

// The replaced operators pair new->malloc with delete->free by design;
// GCC cannot see that every new in this binary is the malloc one.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  scaa::util::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  scaa::util::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// Over-aligned forms (C++17): without these an alignas(>16) allocation
// would bypass the counter and the zero-allocation gate would lie.
// std::aligned_alloc requires the size to be a multiple of the alignment.
namespace scaa::util::detail {
inline void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
}  // namespace scaa::util::detail

void* operator new(std::size_t size, std::align_val_t align) {
  return scaa::util::detail::counted_aligned_alloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return scaa::util::detail::counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
