#include "util/logging.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"

namespace scaa::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serializes the stderr sink so concurrent log lines cannot interleave.
/// The stream itself is a global we cannot annotate; the discipline is
/// "every write to std::cerr in this TU happens under g_mutex".
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const MutexLock lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

LogStream::~LogStream() { log_line(level_, stream_.str()); }

}  // namespace scaa::util
