#pragma once

/// @file stopwatch.hpp
/// Minimal wall-clock helpers for benchmark and progress reporting.

#include <chrono>

namespace scaa::util {

/// Elapsed seconds since @p start (steady clock).
inline double seconds_since(
    std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace scaa::util
