#pragma once

/// @file math.hpp
/// Small numeric helpers shared across modules.

#include <algorithm>
#include <cmath>

namespace scaa::math {

/// Clamp @p v to the closed interval [@p lo, @p hi]. Requires lo <= hi.
constexpr double clamp(double v, double lo, double hi) noexcept {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Linear interpolation between @p a and @p b by fraction @p t in [0,1].
constexpr double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// Piecewise-linear interpolation of y(x) over sorted breakpoints.
/// Outside the table the first/last value is held (OpenPilot's `interp`).
double interp(double x, const double* xs, const double* ys, int n) noexcept;

/// Sign of @p v as -1.0, 0.0 or +1.0.
constexpr double sign(double v) noexcept {
  return (v > 0.0) ? 1.0 : (v < 0.0 ? -1.0 : 0.0);
}

/// True when |a - b| <= tol.
constexpr bool near(double a, double b, double tol) noexcept {
  return (a > b ? a - b : b - a) <= tol;
}

/// Move @p current toward @p target by at most @p max_delta (rate limiter).
constexpr double rate_limit(double current, double target,
                            double max_delta) noexcept {
  return clamp(target, current - max_delta, current + max_delta);
}

/// Wrap an angle to (-pi, pi].
double wrap_angle(double rad) noexcept;

/// First-order low-pass filter step: returns the new filtered value.
/// @p alpha in [0,1]: 0 keeps the old value, 1 takes the new sample.
constexpr double lowpass(double prev, double sample, double alpha) noexcept {
  return prev + alpha * (sample - prev);
}

}  // namespace scaa::math
