#pragma once

/// @file mutex.hpp
/// Capability-annotated mutex primitives for Clang Thread Safety Analysis.
///
/// std::mutex in libstdc++ is not annotated as a capability, so a field
/// guarded by one is invisible to -Wthread-safety. Every lock in scaa goes
/// through these wrappers instead: util::Mutex is the capability,
/// util::MutexLock the scoped acquisition, and util::CondVar the matching
/// condition variable. Off clang they compile to the std primitives with
/// zero overhead (the annotation macros expand to nothing).
///
/// Style note for waits: write explicit predicate loops —
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
///
/// — not the std::condition_variable wait-with-lambda form. The analysis
/// checks a lambda body as a separate function that does not hold the
/// capability, so predicate lambdas over guarded fields would need
/// per-lambda escape hatches; the explicit loop is checked in place.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace scaa::util {

/// A std::mutex annotated as a TSA capability.
class SCAA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCAA_ACQUIRE() { mu_.lock(); }
  void unlock() SCAA_RELEASE() { mu_.unlock(); }
  bool try_lock() SCAA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a util::Mutex (the std::lock_guard shape, annotated so
/// the analysis tracks the critical section's extent).
class SCAA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SCAA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SCAA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex. wait() atomically releases
/// and reacquires the mutex; to the analysis (and to the caller) the
/// capability is held continuously across the call, which is exactly the
/// contract predicate loops rely on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified (spurious wakeups possible; loop on the
  /// predicate). @p mu must be the mutex guarding the predicate state.
  void wait(Mutex& mu) SCAA_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace scaa::util
