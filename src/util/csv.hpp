#pragma once

/// @file csv.hpp
/// Minimal CSV emission for traces and experiment exports.
///
/// Output-only by design: the platform never consumes CSV, it only exports
/// traces (Fig. 7) and parameter-space points (Fig. 8) for external plotting.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace scaa::util {

/// Row-oriented CSV writer. Values are formatted with enough precision to
/// round-trip doubles; strings containing separators/quotes are quoted.
class CsvWriter {
 public:
  /// Write to the given stream (not owned; must outlive the writer).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Emit the header row. Must be called before any data rows (enforced).
  void header(const std::vector<std::string>& columns);

  /// Begin a new row.
  CsvWriter& row();

  /// Append a string cell to the current row.
  CsvWriter& cell(const std::string& value);

  /// Append a numeric cell to the current row.
  CsvWriter& cell(double value);

  /// Append an integer cell to the current row.
  CsvWriter& cell(long long value);

  /// Append a boolean cell (emitted as 0/1).
  CsvWriter& cell(bool value);

  /// Finish the current row (writes the newline).
  void end_row();

  /// Number of data rows written so far.
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void separator();
  static std::string escape(const std::string& value);

  std::ostream* out_;
  bool header_written_ = false;
  bool in_row_ = false;
  bool first_cell_ = true;
  std::size_t columns_ = 0;
  std::size_t cells_in_row_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace scaa::util
