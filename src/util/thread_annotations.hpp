#pragma once

/// @file thread_annotations.hpp
/// Clang Thread Safety Analysis annotation macros.
///
/// The campaign layer's reproducibility guarantees (bit-identical Welford
/// moments at any thread count, crash-safe checkpoint commits) depend on a
/// lock discipline that — before this header — was enforced only by
/// convention and runtime sanitizers. These macros make the discipline a
/// compile-time contract: every lock-protected structure names its
/// capability, every guarded field names its lock, and the clang CI leg
/// builds with -Wthread-safety -Werror so a violation is a build break,
/// not a flaky TSan report.
///
/// Under clang the macros expand to the thread-safety attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); under any other
/// compiler they expand to nothing, so gcc builds are unaffected. Use them
/// through util::Mutex / util::MutexLock (util/mutex.hpp) — std::mutex in
/// libstdc++ carries no capability annotations, so guarding a field with a
/// bare std::mutex would silence the analysis instead of arming it.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SCAA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SCAA_THREAD_ANNOTATION
#define SCAA_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a capability (lockable). The string names the
/// capability kind in diagnostics, e.g. "mutex".
#define SCAA_CAPABILITY(x) SCAA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define SCAA_SCOPED_CAPABILITY SCAA_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define SCAA_GUARDED_BY(x) SCAA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding the
/// given capability (the pointer itself is unguarded).
#define SCAA_PT_GUARDED_BY(x) SCAA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares a required lock-acquisition order between capabilities.
#define SCAA_ACQUIRED_BEFORE(...) \
  SCAA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SCAA_ACQUIRED_AFTER(...) \
  SCAA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define SCAA_REQUIRES(...) \
  SCAA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SCAA_REQUIRES_SHARED(...) \
  SCAA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define SCAA_ACQUIRE(...) \
  SCAA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SCAA_ACQUIRE_SHARED(...) \
  SCAA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define SCAA_RELEASE(...) \
  SCAA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SCAA_RELEASE_SHARED(...) \
  SCAA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts acquisition; the first argument is the return value
/// that means "acquired".
#define SCAA_TRY_ACQUIRE(...) \
  SCAA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for public entry
/// points that lock internally).
#define SCAA_EXCLUDES(...) SCAA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the
/// static analysis cannot follow).
#define SCAA_ASSERT_CAPABILITY(x) SCAA_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define SCAA_RETURN_CAPABILITY(x) SCAA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define SCAA_NO_THREAD_SAFETY_ANALYSIS \
  SCAA_THREAD_ANNOTATION(no_thread_safety_analysis)
