#pragma once

/// @file serial.hpp
/// Bit-exact serialization helpers for the experiment harness.
///
/// Checkpoint files must restore floating-point accumulator state *exactly*
/// (a Welford mean that comes back one ulp off breaks the bit-identical
/// resume guarantee), so doubles travel as their raw IEEE-754 bit patterns
/// rendered in fixed-width hex — never through decimal formatting, which
/// rounds. The FNV-1a hash is the shared fingerprint/record-checksum
/// primitive; it is byte-order-explicit (little-endian) so files are
/// portable across hosts.

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace scaa::util {

/// Raw IEEE-754 bit pattern of @p x (exact, including NaN payloads and -0).
inline std::uint64_t double_bits(double x) noexcept {
  return std::bit_cast<std::uint64_t>(x);
}

/// Inverse of double_bits(): reconstitute the exact double.
inline double double_from_bits(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

/// Render @p v as exactly 16 lowercase hex digits (no "0x" prefix).
std::string hex_u64(std::uint64_t v);

/// Strictly parse 1..16 hex digits into @p out. Returns false on an empty
/// string, a non-hex character, or more than 16 digits; @p out is
/// unmodified on failure.
bool parse_hex_u64(std::string_view text, std::uint64_t& out) noexcept;

/// Streaming FNV-1a (64-bit). Multi-byte integers are folded in as
/// little-endian bytes regardless of host order, so digests match across
/// machines.
class Fnv1a64 {
 public:
  Fnv1a64& update_bytes(const void* data, std::size_t size) noexcept;
  Fnv1a64& update(std::uint64_t v) noexcept;
  Fnv1a64& update(std::string_view text) noexcept;
  std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xCBF29CE484222325ull;  ///< FNV offset basis
};

/// One-shot FNV-1a of a string (the per-record checksum in checkpoints).
std::uint64_t fnv1a64(std::string_view text) noexcept;

}  // namespace scaa::util
