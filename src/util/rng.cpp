#include "util/rng.hpp"

#include <cmath>

namespace scaa::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next() % span);
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: deterministic given the bit stream, unlike
  // std::normal_distribution whose algorithm is implementation-defined.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  // Mix current state words with the stream id through SplitMix64 so child
  // streams are decorrelated from the parent and from each other.
  std::uint64_t mix = s_[0] ^ (s_[2] * 0x9E3779B97F4A7C15ull) ^ stream_id;
  return Rng{splitmix64(mix)};
}

}  // namespace scaa::util
