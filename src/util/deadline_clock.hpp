#pragma once

/// @file deadline_clock.hpp
/// Absolute-deadline ticker for the real-time executor.
///
/// This file is the one blessed wall-clock source outside `util/rng` and
/// the CLI layer (tools/scaa_lint.py enforces it): simulation and campaign
/// code must stay clock-free so aggregates are bit-identical run to run.
/// The real-time executor is the exception by construction — it reads the
/// clock only to decide *when* a tick fires and how late it ran, never to
/// feed a value into the simulation, so determinism is preserved (see
/// exp/realtime.hpp).
///
/// The schedule is absolute, RROS-style (`kernel/rros/sched.rs` deadline
/// class): each tick's deadline is `start + n * period` on CLOCK_MONOTONIC,
/// slept to with clock_nanosleep(TIMER_ABSTIME). Sleeping to absolute
/// deadlines (instead of relative `period - elapsed` waits) keeps the tick
/// rate phase-locked: latency in one tick does not shift every later
/// deadline, and jitter does not accumulate.

#include <ctime>

namespace scaa::util {

/// Seconds on CLOCK_MONOTONIC. Only differences are meaningful (the epoch
/// is boot-time-ish and unspecified); the realtime executor uses it for
/// per-phase latency spans so every clock read stays in this file.
double monotonic_now_s() noexcept;

/// Fixed-period absolute-deadline ticker.
///
///   DeadlineClock clock(0.01);  // 100 Hz
///   clock.start();
///   while (work()) {
///     const auto tick = clock.wait_next();  // sleep to the next deadline
///     if (tick.overrun) ++misses;
///   }
class DeadlineClock {
 public:
  /// @p period_s must be finite and positive (throws std::invalid_argument).
  explicit DeadlineClock(double period_s);

  /// Anchor the schedule: the first deadline is now + period. wait_next()
  /// calls this lazily if the caller didn't.
  void start();

  /// Accounting for one deadline wait.
  struct Tick {
    /// deadline - completion time of the preceding work: positive slack
    /// means the tick fit its budget; negative means it overran by that
    /// much.
    double slack_s = 0.0;
    /// actual wake time - deadline. For a met deadline this is the
    /// sleep/scheduler jitter (>= 0); for an overrun it equals -slack_s
    /// (the tick "woke" when the late work finished).
    double wake_error_s = 0.0;
    bool overrun = false;
  };

  /// Block until the current absolute deadline (no sleep if it already
  /// passed), then advance the schedule by one period. After a stall
  /// longer than one period the schedule skips forward in phase to the
  /// first future deadline — one long tick counts as one overrun, not one
  /// per missed period.
  Tick wait_next();

  double period_s() const noexcept { return period_s_; }

 private:
  double period_s_;
  long long period_ns_;
  std::timespec deadline_{};
  bool armed_ = false;
};

}  // namespace scaa::util
