#pragma once

/// @file units.hpp
/// Unit conversions and physical constants used throughout scaa.
///
/// All internal state is SI (metres, seconds, radians, kilograms). The paper
/// quotes speeds in mph and steering in degrees; conversions live here so the
/// rest of the code never multiplies by magic constants.

namespace scaa::units {

/// Pi to double precision.
inline constexpr double kPi = 3.14159265358979323846;

/// Standard gravity [m/s^2].
inline constexpr double kGravity = 9.80665;

/// Metres per mile.
inline constexpr double kMetersPerMile = 1609.344;

/// Seconds per hour.
inline constexpr double kSecondsPerHour = 3600.0;

/// Convert miles-per-hour to metres-per-second.
constexpr double mph_to_ms(double mph) noexcept {
  return mph * kMetersPerMile / kSecondsPerHour;
}

/// Convert metres-per-second to miles-per-hour.
constexpr double ms_to_mph(double ms) noexcept {
  return ms * kSecondsPerHour / kMetersPerMile;
}

/// Convert kilometres-per-hour to metres-per-second.
constexpr double kph_to_ms(double kph) noexcept { return kph / 3.6; }

/// Convert metres-per-second to kilometres-per-hour.
constexpr double ms_to_kph(double ms) noexcept { return ms * 3.6; }

/// Convert degrees to radians.
constexpr double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }

/// Convert radians to degrees.
constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }

}  // namespace scaa::units
