#include "util/math.hpp"

namespace scaa::math {

double interp(double x, const double* xs, const double* ys, int n) noexcept {
  if (n <= 0) return 0.0;
  if (x <= xs[0]) return ys[0];
  if (x >= xs[n - 1]) return ys[n - 1];
  for (int i = 1; i < n; ++i) {
    if (x <= xs[i]) {
      const double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
      return lerp(ys[i - 1], ys[i], t);
    }
  }
  return ys[n - 1];
}

double wrap_angle(double rad) noexcept {
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  while (rad > 3.14159265358979323846) rad -= kTwoPi;
  while (rad <= -3.14159265358979323846) rad += kTwoPi;
  return rad;
}

}  // namespace scaa::math
