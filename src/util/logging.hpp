#pragma once

/// @file logging.hpp
/// Minimal leveled logging.
///
/// The simulation hot loop never logs; logging exists for the campaign
/// runner, examples, and debugging. Output goes to stderr so bench stdout
/// stays machine-parsable.

#include <sstream>
#include <string>

namespace scaa::util {

/// Severity levels in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level) noexcept;

/// Current minimum level.
LogLevel log_level() noexcept;

/// Emit one log line (thread-safe; one atomic write per line).
void log_line(LogLevel level, const std::string& message);

/// Stream-style helper: LogStream(kInfo) << "x=" << x; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream();

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace scaa::util

#define SCAA_LOG_DEBUG() ::scaa::util::LogStream(::scaa::util::LogLevel::kDebug)
#define SCAA_LOG_INFO() ::scaa::util::LogStream(::scaa::util::LogLevel::kInfo)
#define SCAA_LOG_WARN() ::scaa::util::LogStream(::scaa::util::LogLevel::kWarn)
#define SCAA_LOG_ERROR() ::scaa::util::LogStream(::scaa::util::LogLevel::kError)
