#pragma once

/// @file table.hpp
/// ASCII table rendering for the benchmark harness output.
///
/// The bench binaries print rows mirroring the paper's tables; this helper
/// keeps the formatting (alignment, separators) in one place.

#include <string>
#include <vector>

namespace scaa::util {

/// Builds a left-header ASCII table and renders it with aligned columns.
class TextTable {
 public:
  /// Set the column headers. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Add a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column padding, a header rule, and `|` separators.
  std::string render() const;

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used when filling tables.
std::string format_percent(double fraction, int decimals = 1);
std::string format_count_percent(std::size_t count, std::size_t total,
                                 int decimals = 1);
std::string format_mean_std(double mean, double stddev, int decimals = 2);
std::string format_double(double v, int decimals = 2);

}  // namespace scaa::util
