#pragma once

/// @file stats.hpp
/// Streaming statistics accumulators used by the experiment harness.

#include <cstddef>
#include <vector>

namespace scaa::util {

/// Welford-style streaming accumulator for mean / variance / extrema.
/// Numerically stable for long campaigns; O(1) per sample.
class RunningStats {
 public:
  /// Add one sample.
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// Number of samples seen.
  std::size_t count() const noexcept { return n_; }

  /// Arithmetic mean; 0 when empty.
  double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Population variance; 0 with fewer than 2 samples.
  double variance() const noexcept;

  /// Population standard deviation.
  double stddev() const noexcept;

  /// Smallest sample; 0 when empty.
  double min() const noexcept { return n_ ? min_ : 0.0; }

  /// Largest sample; 0 when empty.
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Sum of all samples.
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); samples outside are clamped into the
/// first/last bin. Used for TTH distributions and parameter-space summaries.
class Histogram {
 public:
  /// Create with @p bins bins spanning [@p lo, @p hi). Requires bins >= 1,
  /// lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one sample.
  void add(double x) noexcept;

  /// Count in bin @p i.
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }

  /// Number of bins.
  std::size_t bins() const noexcept { return counts_.size(); }

  /// Lower edge of bin @p i.
  double bin_lo(std::size_t i) const noexcept;

  /// Total number of samples.
  std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace scaa::util
