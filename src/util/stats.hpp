#pragma once

/// @file stats.hpp
/// Streaming statistics accumulators used by the experiment harness.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scaa::util {

/// Bit-exact snapshot of a RunningStats for serialization. The double
/// state travels as raw IEEE-754 bit patterns (util::double_bits), so a
/// record round trip restores the accumulator *exactly* — required by the
/// campaign checkpoint layer, whose resumed aggregates must be
/// bit-identical to an uninterrupted run.
struct RunningStatsRecord {
  std::uint64_t n = 0;
  std::uint64_t mean_bits = 0;
  std::uint64_t m2_bits = 0;
  std::uint64_t min_bits = 0;
  std::uint64_t max_bits = 0;
};

/// Welford-style streaming accumulator for mean / variance / extrema.
/// Numerically stable for long campaigns; O(1) per sample.
class RunningStats {
 public:
  /// Add one sample.
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// Number of samples seen.
  std::size_t count() const noexcept { return n_; }

  /// Arithmetic mean; 0 when empty.
  double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Population variance; 0 with fewer than 2 samples.
  double variance() const noexcept;

  /// Population standard deviation.
  double stddev() const noexcept;

  /// Smallest sample; 0 when empty.
  double min() const noexcept { return n_ ? min_ : 0.0; }

  /// Largest sample; 0 when empty.
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Sum of all samples.
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Exact bit-pattern snapshot; from_record(to_record()) is the identity.
  RunningStatsRecord to_record() const noexcept;

  /// Reconstitute an accumulator from a snapshot, bit-for-bit.
  static RunningStats from_record(const RunningStatsRecord& record) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); samples outside (including +/-inf)
/// are clamped into the first/last bin. NaN samples are dropped and counted
/// separately (nan_count()) — they have no meaningful bin, and folding them
/// into an edge bin would silently skew the distribution. Used for TTH
/// distributions and parameter-space summaries.
class Histogram {
 public:
  /// Create with @p bins bins spanning [@p lo, @p hi). Requires bins >= 1
  /// and finite lo < hi (throws std::invalid_argument otherwise).
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one sample. The bin is chosen by clamping in double space before
  /// any integer conversion, so out-of-range and non-finite samples can
  /// never hit the undefined float->int cast.
  void add(double x) noexcept;

  /// Count in bin @p i.
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }

  /// Number of bins.
  std::size_t bins() const noexcept { return counts_.size(); }

  /// Lower edge of bin @p i.
  double bin_lo(std::size_t i) const noexcept;

  /// Total number of binned samples (excludes dropped NaNs).
  std::size_t total() const noexcept { return total_; }

  /// Number of NaN samples seen and dropped.
  std::size_t nan_count() const noexcept { return nan_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_ = 0;
};

}  // namespace scaa::util
