#include "attack/can_attacker.hpp"

#include "can/checksum.hpp"
#include "can/database.hpp"
#include "util/units.hpp"

namespace scaa::attack {

CanAttacker::CanAttacker(const can::Database& db) : db_(&db) {}

std::uint64_t CanAttacker::attach(can::CanBus& bus) {
  return bus.attach_interceptor(
      [this](can::CanFrame& frame) { return intercept(frame); });
}

bool CanAttacker::intercept(can::CanFrame& frame) {
  if (frame.id == can::msg_id::kSteeringControl) {
    const can::DbcMessage* layout = db_->by_id(frame.id);
    const can::DbcSignal* sig = layout->find_signal(can::sig::kSteerAngleCmd);
    last_original_steer_ = units::deg_to_rad(sig->decode(frame.data));
    if (values_.steer_cmd.has_value()) {
      sig->encode(frame.data, units::rad_to_deg(*values_.steer_cmd));
      can::apply_honda_checksum(frame);  // repair integrity (Fig. 4)
      ++corrupted_;
    }
    return true;
  }

  if (frame.id == can::msg_id::kGasBrakeCommand &&
      values_.accel_cmd.has_value()) {
    const can::DbcMessage* layout = db_->by_id(frame.id);
    layout->find_signal(can::sig::kAccelCmd)
        ->encode(frame.data, *values_.accel_cmd);
    layout->find_signal(can::sig::kBrakeRequest)
        ->encode(frame.data, *values_.accel_cmd < 0.0 ? 1.0 : 0.0);
    can::apply_honda_checksum(frame);
    ++corrupted_;
    return true;
  }
  return true;
}

}  // namespace scaa::attack
