#include "attack/can_attacker.hpp"

#include "can/checksum.hpp"
#include "can/database.hpp"
#include "util/units.hpp"

namespace scaa::attack {

CanAttacker::CanAttacker(const can::Database& db)
    : steer_angle_sig_(&db.signal(db.signal_handle("STEERING_CONTROL",
                                                   can::sig::kSteerAngleCmd))),
      accel_sig_(&db.signal(
          db.signal_handle("GAS_BRAKE_COMMAND", can::sig::kAccelCmd))),
      brake_request_sig_(&db.signal(
          db.signal_handle("GAS_BRAKE_COMMAND", can::sig::kBrakeRequest))) {}

std::uint64_t CanAttacker::attach(can::CanBus& bus) {
  return bus.attach_interceptor(
      [this](can::CanFrame& frame) { return intercept(frame); });
}

bool CanAttacker::intercept(can::CanFrame& frame) {
  if (frame.id == can::msg_id::kSteeringControl) {
    last_original_steer_ =
        units::deg_to_rad(steer_angle_sig_->decode(frame.data));
    if (values_.steer_cmd.has_value()) {
      steer_angle_sig_->encode(frame.data,
                               units::rad_to_deg(*values_.steer_cmd));
      can::apply_honda_checksum(frame);  // repair integrity (Fig. 4)
      ++corrupted_;
    }
    return true;
  }

  if (frame.id == can::msg_id::kGasBrakeCommand &&
      values_.accel_cmd.has_value()) {
    accel_sig_->encode(frame.data, *values_.accel_cmd);
    brake_request_sig_->encode(frame.data,
                               *values_.accel_cmd < 0.0 ? 1.0 : 0.0);
    can::apply_honda_checksum(frame);
    ++corrupted_;
    return true;
  }
  return true;
}

}  // namespace scaa::attack
