#pragma once

/// @file strategies.hpp
/// Attack types (paper Table II) and activation strategies (Table III).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "attack/context_table.hpp"
#include "util/rng.hpp"

namespace scaa::attack {

/// The six fault-injection attack types of Table II.
enum class AttackType : std::uint8_t {
  kAcceleration = 0,
  kDeceleration,
  kSteeringLeft,
  kSteeringRight,
  kAccelerationSteering,
  kDecelerationSteering,
};

/// All attack types, for iteration in campaigns.
inline constexpr AttackType kAllAttackTypes[] = {
    AttackType::kAcceleration,        AttackType::kDeceleration,
    AttackType::kSteeringLeft,        AttackType::kSteeringRight,
    AttackType::kAccelerationSteering, AttackType::kDecelerationSteering,
};

/// The four activation strategies of Table III (plus "no attack").
enum class StrategyKind : std::uint8_t {
  kNone = 0,        ///< baseline: no attack at all
  kRandomStDur,     ///< random start time and random duration
  kRandomSt,        ///< random start time, fixed 2.5 s duration
  kRandomDur,       ///< context-aware start time, random duration
  kContextAware,    ///< context-aware start time and duration
};

std::string to_string(AttackType type);
std::string to_string(StrategyKind kind);

/// Which output channels an attack type touches.
struct AttackChannels {
  bool accel = false;   ///< corrupt the gas/accel command upward
  bool brake = false;   ///< corrupt the brake command (forced decel)
  bool steer = false;   ///< corrupt the steering command
};

/// Channel map of each attack type.
AttackChannels channels_of(AttackType type) noexcept;

/// Per-step activation decision produced by a strategy.
struct ActivationDecision {
  bool active = false;
  int steer_direction = 0;  ///< +1 left, -1 right, 0 unused
};

/// Strategy interface: decides, every control cycle, whether the attack is
/// live. Strategies never choose values — that is the corruption stage.
class AttackStrategy {
 public:
  virtual ~AttackStrategy() = default;

  /// Decide for the current cycle.
  virtual ActivationDecision decide(const SafetyContext& ctx,
                                    const ContextMatch& match,
                                    double time) = 0;

  /// The paper's attack engine stops as soon as the driver engages.
  void notify_driver_engaged(double time) noexcept {
    driver_engaged_ = true;
    driver_engage_time_ = time;
  }

  /// First time the attack went active; negative when never.
  double first_activation() const noexcept { return first_activation_; }

 protected:
  /// Record and gate a raw decision through the driver-engaged stop rule.
  ActivationDecision finalize(ActivationDecision decision, double time) noexcept;

  bool driver_engaged_ = false;
  double driver_engage_time_ = -1.0;
  double first_activation_ = -1.0;
};

/// Shared construction parameters.
struct StrategyParams {
  AttackType type = AttackType::kAcceleration;
  double min_start = 5.0;    ///< [s] Random-ST window lower bound
  double max_start = 40.0;   ///< [s] Random-ST window upper bound
  double min_duration = 0.5; ///< [s] Random-DUR bounds
  double max_duration = 2.5;
  double fixed_duration = 2.5;  ///< [s] Random-ST's duration (driver reaction time)

  /// When >= 0, window strategies use these instead of random draws —
  /// the hook the Fig. 8 parameter-space sweep uses to place grid points.
  double forced_start = -1.0;
  double forced_duration = -1.0;
};

/// Factory: build a strategy of @p kind. @p rng seeds the random draws
/// (start time / duration / steering direction) for this simulation.
std::unique_ptr<AttackStrategy> make_strategy(StrategyKind kind,
                                              const StrategyParams& params,
                                              util::Rng rng);

/// Fixed-capacity, heap-free holder for any strategy the factory can
/// build. The attack engine re-seeds its strategy on every World::reset —
/// thousands of times per campaign worker — so the concrete strategy is
/// placement-constructed into an inline buffer instead of the heap,
/// keeping whole-simulation allocation counts at zero. Construction and
/// draw order replicate make_strategy() exactly, so a boxed strategy is
/// bit-identical in behavior to a factory-made one.
class StrategyBox {
 public:
  StrategyBox(StrategyKind kind, const StrategyParams& params, util::Rng rng);
  ~StrategyBox();
  StrategyBox(const StrategyBox&) = delete;
  StrategyBox& operator=(const StrategyBox&) = delete;

  /// Destroy the held strategy and build a new one in place.
  void emplace(StrategyKind kind, const StrategyParams& params, util::Rng rng);

  AttackStrategy& operator*() noexcept { return *ptr_; }
  AttackStrategy* operator->() noexcept { return ptr_; }
  const AttackStrategy& operator*() const noexcept { return *ptr_; }
  const AttackStrategy* operator->() const noexcept { return ptr_; }

 private:
  /// Large enough for the biggest concrete strategy; emplace()
  /// static_asserts the real sizes where the types are visible.
  static constexpr std::size_t kStorageBytes = 128;
  alignas(alignof(std::max_align_t)) unsigned char storage_[kStorageBytes];
  AttackStrategy* ptr_ = nullptr;
};

}  // namespace scaa::attack
