#include "attack/value_corruption.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace scaa::attack {

ValueCorruption::ValueCorruption(bool strategic, CorruptionLimits limits,
                                 double cruise_speed,
                                 double kalman_gain) noexcept
    : strategic_(strategic),
      limits_(limits),
      cruise_speed_(cruise_speed),
      speed_kf_(kalman_gain) {}

AttackValues ValueCorruption::compute(const ActivationDecision& decision,
                                      AttackType type, double measured_speed,
                                      double dt) noexcept {
  AttackValues values;

  // Maintain the speed prediction every cycle, active or not, so the
  // estimate is warm when the attack fires (Eq. 2-3).
  if (!kf_initialized_) {
    speed_kf_.reset(measured_speed);
    kf_initialized_ = true;
  } else {
    const double predicted = speed_kf_.predict(last_accel_cmd_, dt);
    speed_kf_.update(predicted, measured_speed);
  }
  last_accel_cmd_ = 0.0;

  if (!decision.active) return values;

  const AttackChannels ch = channels_of(type);

  if (ch.accel) {
    double accel = limits_.accel;
    if (strategic_) {
      // Eq. 1 speed constraint: v̂_{t+1} = v̂_t + a*dt <= 1.1 * v_cruise.
      const double headroom =
          (1.1 * cruise_speed_ - speed_kf_.estimate()) / dt;
      accel = math::clamp(headroom, 0.0, limits_.accel);
    }
    values.accel_cmd = accel;
    last_accel_cmd_ = accel;
  }
  if (ch.brake) {
    values.accel_cmd = limits_.brake;
    last_accel_cmd_ = limits_.brake;
  }
  if (ch.steer && decision.steer_direction != 0) {
    values.steer_cmd =
        static_cast<double>(decision.steer_direction) * limits_.steer;
  }
  return values;
}

}  // namespace scaa::attack
