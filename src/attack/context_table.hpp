#pragma once

/// @file context_table.hpp
/// The safety context table (paper Table I): unsafe control actions per
/// system context, derived from STPA-style hazard analysis.

#include <array>
#include <cstdint>
#include <string>

#include "attack/context.hpp"

namespace scaa::attack {

/// High-level unsafe control actions (u1..u4 of Table I).
enum class UnsafeAction : std::uint8_t {
  kAcceleration = 0,  ///< u1 -> H1
  kDeceleration = 1,  ///< u2 -> H2
  kSteerLeft = 2,     ///< u3 -> H3
  kSteerRight = 3,    ///< u4 -> H3
};

/// Hazard classes of the paper.
enum class HazardClass : std::uint8_t {
  kNone = 0,
  kH1,  ///< safe-following-distance violation (-> A1)
  kH2,  ///< unjustified slowdown / stop (-> A2)
  kH3,  ///< out of lane (-> A3)
};

/// Human-readable names.
std::string to_string(UnsafeAction action);
std::string to_string(HazardClass hazard);

/// Threshold parameters of Table I. tsafe in [2,3] s, beta1/beta2 in
/// [20,35] mph — an attacker tunes these from domain knowledge; defaults
/// are mid-range picks matched to ACC behaviour.
struct ContextTableParams {
  double t_safe = 2.5;          ///< [s]
  double beta1 = 11.18;         ///< [m/s] = 25 mph
  double beta2 = 11.18;         ///< [m/s] = 25 mph
  double edge_margin = 0.1;     ///< [m] "already at the lane edge" distance
};

/// Match result: whether each unsafe action is enabled by the current
/// context.
struct ContextMatch {
  std::array<bool, 4> action_enabled{};  ///< indexed by UnsafeAction

  bool enabled(UnsafeAction a) const noexcept {
    return action_enabled[static_cast<std::size_t>(a)];
  }
  bool any() const noexcept {
    for (const bool b : action_enabled)
      if (b) return true;
    return false;
  }
};

/// Evaluates the four rules of Table I against an inferred context.
class ContextTable {
 public:
  explicit ContextTable(ContextTableParams params) noexcept
      : params_(params) {}

  /// Rule evaluation:
  ///  1. HWT <= t_safe  && RS > 0                 -> u1 (Acceleration, H1)
  ///  2. HWT > t_safe   && RS <= 0 && v > beta1   -> u2 (Deceleration, H2)
  ///  3. d_left <= 0.1m && v > beta2              -> u3 (SteerLeft, H3)
  ///  4. d_right <= 0.1m && v > beta2             -> u4 (SteerRight, H3)
  ContextMatch match(const SafetyContext& ctx) const noexcept;

  /// The hazard each unsafe action aims for.
  static HazardClass target_hazard(UnsafeAction action) noexcept;

  const ContextTableParams& params() const noexcept { return params_; }

 private:
  ContextTableParams params_;
};

}  // namespace scaa::attack
