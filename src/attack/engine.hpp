#pragma once

/// @file engine.hpp
/// The attack engine: eavesdrop -> infer context -> select activation ->
/// corrupt values -> rewrite CAN frames (paper Fig. 1 and §III-C).

#include <memory>

#include "attack/can_attacker.hpp"
#include "attack/context.hpp"
#include "attack/context_table.hpp"
#include "attack/strategies.hpp"
#include "attack/value_corruption.hpp"

namespace scaa::attack {

/// Full configuration of one attack campaign element.
struct AttackConfig {
  StrategyKind strategy = StrategyKind::kContextAware;
  AttackType type = AttackType::kAcceleration;
  bool strategic_values = true;   ///< Eq. 1-3 corruption vs. fixed maxima
  ContextTableParams table;       ///< Table I thresholds
  StrategyParams strategy_params; ///< Table III timing parameters
  double cruise_speed = 26.82;    ///< [m/s] eavesdropped/recon set speed
};

/// Per-simulation attack statistics.
struct AttackStats {
  double first_activation = -1.0;  ///< [s]; negative = never activated
  bool active_now = false;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t cycles_active = 0;
};

/// Orchestrates one attack instance inside a simulation.
class AttackEngine {
 public:
  /// Wires the eavesdropper into @p msg_bus and the corruptor into
  /// @p can_bus. @p half_width is the target vehicle's half body width
  /// (public spec data used for lane-edge distance inference).
  AttackEngine(const AttackConfig& config, msg::PubSubBus& msg_bus,
               can::CanBus& can_bus, const can::Database& db,
               double half_width, util::Rng rng);

  /// Re-arm for a new simulation on the same buses and database,
  /// bit-identical to fresh construction: the eavesdropped latches clear
  /// (subscriptions stay attached), the strategy is re-drawn from @p rng
  /// in place, and all counters zero. Allocation-free.
  void reset(const AttackConfig& config, double half_width, util::Rng rng);

  /// Run one cycle at simulation @p time; must be called after sensors
  /// publish and before the ADAS command frames for this cycle are needed
  /// (the interceptor state persists until changed).
  void step(double time, double dt);

  /// The paper's stop rule: the engine halts injection once the driver
  /// physically takes over.
  void notify_driver_engaged(double time) noexcept;

  /// Statistics for the metrics layer.
  AttackStats stats() const noexcept;

  /// Introspection for tests.
  const SafetyContext& last_context() const noexcept { return last_context_; }
  const ContextTable& table() const noexcept { return table_; }

 private:
  AttackConfig config_;
  ContextInference inference_;
  ContextTable table_;
  StrategyBox strategy_;  ///< placement-constructed: reset() never allocates
  ValueCorruption corruption_;
  CanAttacker attacker_;
  SafetyContext last_context_;
  std::uint64_t cycles_active_ = 0;
  bool active_now_ = false;
};

}  // namespace scaa::attack
