#include "attack/strategies.hpp"

#include <algorithm>
#include <new>

namespace scaa::attack {

std::string to_string(AttackType type) {
  switch (type) {
    case AttackType::kAcceleration: return "Acceleration";
    case AttackType::kDeceleration: return "Deceleration";
    case AttackType::kSteeringLeft: return "Steering-Left";
    case AttackType::kSteeringRight: return "Steering-Right";
    case AttackType::kAccelerationSteering: return "Acceleration-Steering";
    case AttackType::kDecelerationSteering: return "Deceleration-Steering";
  }
  return "?";
}

std::string to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNone: return "No Attacks";
    case StrategyKind::kRandomStDur: return "Random-ST+DUR";
    case StrategyKind::kRandomSt: return "Random-ST";
    case StrategyKind::kRandomDur: return "Random-DUR";
    case StrategyKind::kContextAware: return "Context-Aware";
  }
  return "?";
}

AttackChannels channels_of(AttackType type) noexcept {
  switch (type) {
    case AttackType::kAcceleration: return {true, false, false};
    case AttackType::kDeceleration: return {false, true, false};
    case AttackType::kSteeringLeft:
    case AttackType::kSteeringRight: return {false, false, true};
    case AttackType::kAccelerationSteering: return {true, false, true};
    case AttackType::kDecelerationSteering: return {false, true, true};
  }
  return {};
}

ActivationDecision AttackStrategy::finalize(ActivationDecision decision,
                                            double time) noexcept {
  if (driver_engaged_) decision = {};  // attack stops on driver engagement
  if (decision.active && first_activation_ < 0.0) first_activation_ = time;
  return decision;
}

namespace {

/// Fixed steering direction of pure steering types; 0 for combined types
/// (their direction is decided at activation).
int fixed_direction(AttackType type) noexcept {
  if (type == AttackType::kSteeringLeft) return 1;
  if (type == AttackType::kSteeringRight) return -1;
  return 0;
}

/// Shared context-trigger logic: does the current context enable this
/// attack type, and with which steering direction?
ActivationDecision context_trigger(AttackType type,
                                   const SafetyContext& ctx,
                                   const ContextMatch& match) noexcept {
  ActivationDecision d;
  const AttackChannels ch = channels_of(type);

  bool longitudinal_ok = false;
  if (ch.accel)
    longitudinal_ok = match.enabled(UnsafeAction::kAcceleration);
  if (ch.brake)
    longitudinal_ok = match.enabled(UnsafeAction::kDeceleration);

  int steer_dir = 0;
  if (ch.steer) {
    if (type == AttackType::kSteeringLeft &&
        match.enabled(UnsafeAction::kSteerLeft))
      steer_dir = 1;
    else if (type == AttackType::kSteeringRight &&
             match.enabled(UnsafeAction::kSteerRight))
      steer_dir = -1;
    else if (type == AttackType::kAccelerationSteering ||
             type == AttackType::kDecelerationSteering) {
      // Combined types take either lane-edge rule; pick the matched side,
      // or (when triggered longitudinally) the nearer edge.
      if (match.enabled(UnsafeAction::kSteerLeft)) steer_dir = 1;
      else if (match.enabled(UnsafeAction::kSteerRight)) steer_dir = -1;
      else if (longitudinal_ok)
        steer_dir = ctx.d_left < ctx.d_right ? 1 : -1;
    }
  }

  if (ch.steer && !ch.accel && !ch.brake) {
    d.active = steer_dir != 0;
  } else if (ch.steer) {
    // Combined: active when either the longitudinal rule or an edge rule
    // matches; both channels are injected while active (Table II).
    d.active = longitudinal_ok || steer_dir != 0;
    if (d.active && steer_dir == 0)
      steer_dir = ctx.d_left < ctx.d_right ? 1 : -1;
  } else {
    d.active = longitudinal_ok;
  }
  d.steer_direction = steer_dir;
  return d;
}

/// Random-ST+DUR and Random-ST: a fixed window drawn up front.
class RandomWindowStrategy final : public AttackStrategy {
 public:
  RandomWindowStrategy(const StrategyParams& params, util::Rng rng,
                       bool random_duration)
      : type_(params.type) {
    start_ = params.forced_start >= 0.0
                 ? params.forced_start
                 : rng.uniform(params.min_start, params.max_start);
    duration_ = params.forced_duration >= 0.0
                    ? params.forced_duration
                : random_duration
                    ? rng.uniform(params.min_duration, params.max_duration)
                    : params.fixed_duration;
    direction_ = fixed_direction(type_);
    if (direction_ == 0) direction_ = rng.bernoulli(0.5) ? 1 : -1;
  }

  ActivationDecision decide(const SafetyContext&, const ContextMatch&,
                            double time) override {
    ActivationDecision d;
    d.active = time >= start_ && time < start_ + duration_;
    d.steer_direction = channels_of(type_).steer ? direction_ : 0;
    return finalize(d, time);
  }

 private:
  AttackType type_;
  double start_ = 0.0;
  double duration_ = 0.0;
  int direction_ = 0;
};

/// Random-DUR: starts at the first context match, runs a random duration.
class RandomDurationStrategy final : public AttackStrategy {
 public:
  RandomDurationStrategy(const StrategyParams& params, util::Rng rng)
      : type_(params.type),
        min_start_(params.min_start),
        duration_(rng.uniform(params.min_duration, params.max_duration)) {}

  ActivationDecision decide(const SafetyContext& ctx,
                            const ContextMatch& match, double time) override {
    // The attacker sits out the startup transient (same lower bound the
    // random strategies use for their windows).
    if (!triggered_ && time >= min_start_) {
      const ActivationDecision d = context_trigger(type_, ctx, match);
      if (d.active) {
        triggered_ = true;
        trigger_time_ = time;
        direction_ = d.steer_direction;
      }
    }
    ActivationDecision out;
    if (triggered_ && time < trigger_time_ + duration_) {
      out.active = true;
      out.steer_direction = direction_;
    }
    return finalize(out, time);
  }

 private:
  AttackType type_;
  double min_start_ = 5.0;
  double duration_;
  bool triggered_ = false;
  double trigger_time_ = 0.0;
  int direction_ = 0;
};

/// Context-Aware: starts at the first context match and latches — the
/// duration is "as long as it takes", ended only by driver engagement (the
/// engine's stop rule) or the end of the scenario. The latch reflects that
/// once the system is being driven toward the hazard the enabling context
/// keeps holding (closing gap keeps HWT shrinking, a crossed lane edge
/// keeps d_edge <= 0.1 m, braking keeps RS <= 0).
class ContextAwareStrategy final : public AttackStrategy {
 public:
  explicit ContextAwareStrategy(const StrategyParams& params)
      : type_(params.type), min_start_(params.min_start) {}

  ActivationDecision decide(const SafetyContext& ctx,
                            const ContextMatch& match, double time) override {
    if (!triggered_ && time >= min_start_) {
      const ActivationDecision d = context_trigger(type_, ctx, match);
      if (d.active) {
        triggered_ = true;
        direction_ = d.steer_direction;
      }
    }
    ActivationDecision out;
    if (triggered_) {
      out.active = true;
      out.steer_direction = direction_;
    }
    return finalize(out, time);
  }

 private:
  AttackType type_;
  double min_start_ = 5.0;
  bool triggered_ = false;
  int direction_ = 0;
};

/// No attack at all (baseline row of Table IV).
class NullStrategy final : public AttackStrategy {
 public:
  ActivationDecision decide(const SafetyContext&, const ContextMatch&,
                            double) override {
    return {};
  }
};

}  // namespace

std::unique_ptr<AttackStrategy> make_strategy(StrategyKind kind,
                                              const StrategyParams& params,
                                              util::Rng rng) {
  switch (kind) {
    case StrategyKind::kNone:
      return std::make_unique<NullStrategy>();
    case StrategyKind::kRandomStDur:
      return std::make_unique<RandomWindowStrategy>(params, rng, true);
    case StrategyKind::kRandomSt:
      return std::make_unique<RandomWindowStrategy>(params, rng, false);
    case StrategyKind::kRandomDur:
      return std::make_unique<RandomDurationStrategy>(params, rng);
    case StrategyKind::kContextAware:
      return std::make_unique<ContextAwareStrategy>(params);
  }
  return std::make_unique<NullStrategy>();
}

StrategyBox::StrategyBox(StrategyKind kind, const StrategyParams& params,
                         util::Rng rng) {
  emplace(kind, params, rng);
}

StrategyBox::~StrategyBox() {
  if (ptr_) ptr_->~AttackStrategy();
}

void StrategyBox::emplace(StrategyKind kind, const StrategyParams& params,
                          util::Rng rng) {
  static_assert(sizeof(RandomWindowStrategy) <= kStorageBytes &&
                    alignof(RandomWindowStrategy) <= alignof(std::max_align_t),
                "StrategyBox storage too small for RandomWindowStrategy");
  static_assert(sizeof(RandomDurationStrategy) <= kStorageBytes &&
                    alignof(RandomDurationStrategy) <=
                        alignof(std::max_align_t),
                "StrategyBox storage too small for RandomDurationStrategy");
  static_assert(sizeof(ContextAwareStrategy) <= kStorageBytes &&
                    alignof(ContextAwareStrategy) <= alignof(std::max_align_t),
                "StrategyBox storage too small for ContextAwareStrategy");
  static_assert(sizeof(NullStrategy) <= kStorageBytes &&
                    alignof(NullStrategy) <= alignof(std::max_align_t),
                "StrategyBox storage too small for NullStrategy");

  if (ptr_) {
    ptr_->~AttackStrategy();
    ptr_ = nullptr;
  }
  // Mirror make_strategy() case for case: same constructions, same RNG
  // draw order, so boxed and factory-made strategies behave identically.
  void* const buf = static_cast<void*>(storage_);
  switch (kind) {
    case StrategyKind::kNone:
      ptr_ = ::new (buf) NullStrategy();
      return;
    case StrategyKind::kRandomStDur:
      ptr_ = ::new (buf) RandomWindowStrategy(params, rng, true);
      return;
    case StrategyKind::kRandomSt:
      ptr_ = ::new (buf) RandomWindowStrategy(params, rng, false);
      return;
    case StrategyKind::kRandomDur:
      ptr_ = ::new (buf) RandomDurationStrategy(params, rng);
      return;
    case StrategyKind::kContextAware:
      ptr_ = ::new (buf) ContextAwareStrategy(params);
      return;
  }
  ptr_ = ::new (buf) NullStrategy();
}

}  // namespace scaa::attack
