#include "attack/context.hpp"

namespace scaa::attack {

ContextInference::ContextInference(msg::PubSubBus& bus, double half_width)
    : gps_(bus), model_(bus), radar_(bus), half_width_(half_width) {}

SafetyContext ContextInference::infer(double time) const noexcept {
  SafetyContext ctx;
  ctx.time = time;

  if (gps_.valid() && gps_.value().has_fix) ctx.speed = gps_.value().speed;

  if (radar_.valid() && radar_.value().lead_valid && ctx.speed > 0.5) {
    ctx.lead_valid = true;
    ctx.hwt = radar_.value().lead_distance / ctx.speed;
    // RS = ego - lead (paper's sign convention): positive when closing.
    ctx.rel_speed = -radar_.value().lead_rel_speed;
  }

  if (model_.valid()) {
    const auto& m = model_.value();
    ctx.perception_valid =
        m.left_line_prob > 0.2 && m.right_line_prob > 0.2;
    if (ctx.perception_valid) {
      // Lane-line offsets are measured from the vehicle centre; the edge
      // distance that matters for departure is from the body side.
      ctx.d_left = m.left_lane_line - half_width_;
      ctx.d_right = -m.right_lane_line - half_width_;
    }
  }
  return ctx;
}

}  // namespace scaa::attack
