#pragma once

/// @file context.hpp
/// Eavesdropping and safety-context inference (paper §III-C, steps 1-2).
///
/// The attacker subscribes — without any authentication, because the
/// messaging layer has none — to `gpsLocationExternal`, `modelV2` and
/// `radarState`, and derives the human-interpretable state variables of the
/// safety specification: Headway Time, Relative Speed, and the distances to
/// the current lane's edges.

#include "msg/bus.hpp"

namespace scaa::attack {

/// The inferred safety context (Table I's variables).
struct SafetyContext {
  double time = 0.0;        ///< simulation time [s]
  double speed = 0.0;       ///< Ego speed from GPS [m/s]
  bool lead_valid = false;
  double hwt = 1e9;         ///< Headway Time = distance / ego speed [s]
  double rel_speed = 0.0;   ///< RS = ego speed - lead speed [m/s]
  double d_left = 1e9;      ///< distance from body side to left lane edge [m]
  double d_right = 1e9;     ///< distance from body side to right lane edge [m]
  bool perception_valid = false;  ///< lane-line data fresh
};

/// Passive eavesdropper: latches the newest message on each relevant topic
/// and computes the context on demand.
class ContextInference {
 public:
  /// Subscribes to the three topics on @p bus; @p half_width is the target
  /// car's half body width (public spec sheet data).
  ContextInference(msg::PubSubBus& bus, double half_width);

  /// Forget everything eavesdropped so far (new simulation on the same
  /// bus): the three latches clear while their subscriptions stay attached.
  void reset(double half_width) noexcept {
    gps_.reset();
    model_.reset();
    radar_.reset();
    half_width_ = half_width;
  }

  /// Compute the current context at simulation time @p time.
  SafetyContext infer(double time) const noexcept;

  /// Raw message access (for tests and the value-corruption stage).
  const msg::GpsLocationExternal& gps() const noexcept { return gps_.value(); }
  const msg::RadarState& radar() const noexcept { return radar_.value(); }
  const msg::ModelV2& model() const noexcept { return model_.value(); }

 private:
  msg::Latest<msg::GpsLocationExternal> gps_;
  msg::Latest<msg::ModelV2> model_;
  msg::Latest<msg::RadarState> radar_;
  double half_width_;
};

}  // namespace scaa::attack
