#pragma once

/// @file value_corruption.hpp
/// Attack value selection (paper §III-C step 4, Eq. 1-3).
///
/// Two modes:
///  * Fixed (Table III footnote 1): the maximum limits OpenPilot's control
///    software accepts — accel 2.4 m/s^2, brake -4 m/s^2, steering offset
///    0.5 deg. Effective, but the magnitudes are noticeable to the driver
///    and would be rejected by Panda's firmware checks on a real car.
///  * Strategic (footnote 2): values chosen each cycle to stay inside every
///    safety envelope — accel <= 2 m/s^2 AND predicted speed <= 1.1 x
///    cruise (Eq. 2-3 Kalman speed prediction), brake -3.5 m/s^2, steering
///    offset 0.25 deg — so neither the ADAS alerts nor the driver's anomaly
///    thresholds trip.

#include <optional>

#include "adas/kalman.hpp"
#include "attack/strategies.hpp"
#include "util/units.hpp"

namespace scaa::attack {

/// Corruption values applied to outgoing commands this cycle.
struct AttackValues {
  std::optional<double> accel_cmd;  ///< replacement accel [m/s^2]
  std::optional<double> steer_cmd;  ///< replacement road-wheel angle [rad]
};

/// Parameter sets of Table III. `steer` is the steering-command override
/// magnitude: the corrupted STEERING_CONTROL frame carries this constant
/// angle, replacing whatever the ALC wanted. It is at (fixed) or below
/// (strategic) the per-frame delta limit the safety checks verify, so the
/// corruption passes every rate check — yet because the wire value is
/// *replaced*, the lane-keeping controller loses all authority while the
/// attack runs.
struct CorruptionLimits {
  double accel = 2.4;                      ///< [m/s^2]
  double brake = -4.0;                     ///< [m/s^2]
  double steer = units::deg_to_rad(0.5);   ///< [rad] angle override

  /// Fixed-mode limits (OpenPilot software maxima).
  static CorruptionLimits fixed() noexcept { return {}; }

  /// Strategic-mode limits (inside every safety envelope).
  static CorruptionLimits strategic() noexcept {
    return {2.0, -3.5, units::deg_to_rad(0.25)};
  }
};

/// Computes per-cycle corruption values for an active attack.
class ValueCorruption {
 public:
  /// @p strategic enables Eq. 1-3 dynamic value selection;
  /// @p cruise_speed is the eavesdropped set speed [m/s];
  /// @p kalman_gain is K_t of Eq. 3.
  ValueCorruption(bool strategic, CorruptionLimits limits,
                  double cruise_speed, double kalman_gain = 0.5) noexcept;

  /// Compute the values for this cycle.
  /// @p decision   strategy output (channels + steering direction)
  /// @p type       the attack type (selects channels)
  /// @p measured_speed the eavesdropped ego speed [m/s]
  /// @p dt         control period [s]
  AttackValues compute(const ActivationDecision& decision, AttackType type,
                       double measured_speed, double dt) noexcept;

  /// Current speed estimate of the attacker's Kalman filter.
  double predicted_speed() const noexcept { return speed_kf_.estimate(); }

  bool strategic() const noexcept { return strategic_; }
  const CorruptionLimits& limits() const noexcept { return limits_; }

 private:
  bool strategic_;
  CorruptionLimits limits_;
  double cruise_speed_;
  adas::ConstantGainKalman speed_kf_;
  double last_accel_cmd_ = 0.0;
  bool kf_initialized_ = false;
};

}  // namespace scaa::attack
