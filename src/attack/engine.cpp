#include "attack/engine.hpp"

namespace scaa::attack {

namespace {

/// The strategy must trigger on the rules of the engine's attack type;
/// keep the two in sync no matter how the config was assembled.
StrategyParams synced_params(const AttackConfig& config) noexcept {
  StrategyParams p = config.strategy_params;
  p.type = config.type;
  return p;
}

}  // namespace

AttackEngine::AttackEngine(const AttackConfig& config, msg::PubSubBus& msg_bus,
                           can::CanBus& can_bus, const can::Database& db,
                           double half_width, util::Rng rng)
    : config_(config),
      inference_(msg_bus, half_width),
      table_(config.table),
      strategy_(config.strategy, synced_params(config), rng),
      corruption_(config.strategic_values,
                  config.strategic_values ? CorruptionLimits::strategic()
                                          : CorruptionLimits::fixed(),
                  config.cruise_speed),
      attacker_(db) {
  attacker_.attach(can_bus);
}

void AttackEngine::reset(const AttackConfig& config, double half_width,
                         util::Rng rng) {
  // Same member values the constructor produces, minus the bus wiring:
  // the eavesdropper subscriptions and the CAN interceptor stay attached
  // (the attacker's foothold survives a World reset by design).
  config_ = config;
  inference_.reset(half_width);
  table_ = ContextTable(config.table);
  strategy_.emplace(config.strategy, synced_params(config), rng);
  corruption_ = ValueCorruption(config.strategic_values,
                                config.strategic_values
                                    ? CorruptionLimits::strategic()
                                    : CorruptionLimits::fixed(),
                                config.cruise_speed);
  attacker_.reset();
  last_context_ = SafetyContext{};
  cycles_active_ = 0;
  active_now_ = false;
}

void AttackEngine::step(double time, double dt) {
  last_context_ = inference_.infer(time);
  const ContextMatch match = table_.match(last_context_);
  const ActivationDecision decision =
      strategy_->decide(last_context_, match, time);
  active_now_ = decision.active;
  if (decision.active) ++cycles_active_;

  const AttackValues values = corruption_.compute(
      decision, config_.type, last_context_.speed, dt);
  attacker_.set_values(values);
}

void AttackEngine::notify_driver_engaged(double time) noexcept {
  strategy_->notify_driver_engaged(time);
}

AttackStats AttackEngine::stats() const noexcept {
  AttackStats s;
  s.first_activation = strategy_->first_activation();
  s.active_now = active_now_;
  s.frames_corrupted = attacker_.frames_corrupted();
  s.cycles_active = cycles_active_;
  return s;
}

}  // namespace scaa::attack
