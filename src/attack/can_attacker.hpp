#pragma once

/// @file can_attacker.hpp
/// CAN-level command corruption with checksum repair (paper Fig. 4).

#include <cstdint>

#include "attack/value_corruption.hpp"
#include "can/bus.hpp"
#include "can/packer.hpp"

namespace scaa::attack {

/// Intercepts actuator command frames on the CAN bus and rewrites the
/// targeted signals, then recomputes the Honda checksum so the corrupted
/// frame still validates at the receiver. Positioned like the paper's
/// malware: after the ADAS software (and, on the simulated rig, after the
/// bypassed Panda), before the actuators.
class CanAttacker {
 public:
  /// @p db must outlive the attacker.
  explicit CanAttacker(const can::Database& db);

  /// Attach to @p bus as an interceptor; returns the attachment id.
  std::uint64_t attach(can::CanBus& bus);

  /// Set the corruption to apply from now on (empty = passthrough).
  void set_values(const AttackValues& values) noexcept { values_ = values; }

  /// Back to the freshly constructed state — passthrough values, zeroed
  /// counters — keeping the resolved signal layouts (the database is fixed
  /// for the attacker's lifetime) and any bus attachment.
  void reset() noexcept {
    values_ = AttackValues{};
    corrupted_ = 0;
    last_original_steer_ = 0.0;
  }

  /// Frames actually modified so far.
  std::uint64_t frames_corrupted() const noexcept { return corrupted_; }

  /// The steering command observed on the wire this cycle, before
  /// corruption [rad] (used by tests; attacker-visible anyway by tapping).
  double last_original_steer() const noexcept { return last_original_steer_; }

 private:
  bool intercept(can::CanFrame& frame);

  // Signal layouts resolved once from the (public) DBC at construction —
  // the recon step of the paper's attacker; interception is then
  // allocation- and lookup-free. The database must outlive the attacker.
  const can::DbcSignal* steer_angle_sig_;
  const can::DbcSignal* accel_sig_;
  const can::DbcSignal* brake_request_sig_;
  AttackValues values_;
  std::uint64_t corrupted_ = 0;
  double last_original_steer_ = 0.0;
};

}  // namespace scaa::attack
