#include "attack/context_table.hpp"

namespace scaa::attack {

std::string to_string(UnsafeAction action) {
  switch (action) {
    case UnsafeAction::kAcceleration: return "Acceleration";
    case UnsafeAction::kDeceleration: return "Deceleration";
    case UnsafeAction::kSteerLeft: return "SteerLeft";
    case UnsafeAction::kSteerRight: return "SteerRight";
  }
  return "?";
}

std::string to_string(HazardClass hazard) {
  switch (hazard) {
    case HazardClass::kNone: return "None";
    case HazardClass::kH1: return "H1";
    case HazardClass::kH2: return "H2";
    case HazardClass::kH3: return "H3";
  }
  return "?";
}

ContextMatch ContextTable::match(const SafetyContext& ctx) const noexcept {
  ContextMatch m;

  // Rule 1: close behind a slower lead -> acceleration is unsafe.
  if (ctx.lead_valid && ctx.hwt <= params_.t_safe && ctx.rel_speed > 0.0)
    m.action_enabled[static_cast<std::size_t>(UnsafeAction::kAcceleration)] =
        true;

  // Rule 2: clear headway, not closing, at speed -> deceleration is unsafe
  // (unjustified slowdown creates rear-end risk). A missing lead counts as
  // clear headway.
  const bool clear_headway = !ctx.lead_valid || ctx.hwt > params_.t_safe;
  const bool not_closing = !ctx.lead_valid || ctx.rel_speed <= 0.0;
  if (clear_headway && not_closing && ctx.speed > params_.beta1)
    m.action_enabled[static_cast<std::size_t>(UnsafeAction::kDeceleration)] =
        true;

  // Rules 3/4: already at a lane edge, at speed -> steering out is unsafe.
  if (ctx.perception_valid && ctx.speed > params_.beta2) {
    if (ctx.d_left <= params_.edge_margin)
      m.action_enabled[static_cast<std::size_t>(UnsafeAction::kSteerLeft)] =
          true;
    if (ctx.d_right <= params_.edge_margin)
      m.action_enabled[static_cast<std::size_t>(UnsafeAction::kSteerRight)] =
          true;
  }
  return m;
}

HazardClass ContextTable::target_hazard(UnsafeAction action) noexcept {
  switch (action) {
    case UnsafeAction::kAcceleration: return HazardClass::kH1;
    case UnsafeAction::kDeceleration: return HazardClass::kH2;
    case UnsafeAction::kSteerLeft:
    case UnsafeAction::kSteerRight: return HazardClass::kH3;
  }
  return HazardClass::kNone;
}

}  // namespace scaa::attack
