#include "sensors/radar.hpp"

#include <algorithm>
#include <cmath>

namespace scaa::sensors {

RadarModel::RadarModel(msg::PubSubBus& bus, RadarConfig config, util::Rng rng)
    : bus_(&bus), config_(config), rng_(rng) {
  const double steps = 100.0 / std::max(1.0, config_.rate_hz);
  steps_per_update_ = static_cast<std::uint64_t>(std::max(1.0, steps));
}

void RadarModel::reset(RadarConfig config, util::Rng rng) noexcept {
  config_ = config;
  rng_ = rng;
  const double steps = 100.0 / std::max(1.0, config_.rate_hz);
  steps_per_update_ = static_cast<std::uint64_t>(std::max(1.0, steps));
}

void RadarModel::step(std::uint64_t step_index,
                      const std::optional<LeadTruth>& truth) {
  if (step_index % steps_per_update_ != 0) return;

  msg::RadarState state;
  state.mono_time = step_index;
  state.lead_valid = false;

  const bool detectable = truth.has_value() && truth->gap > 0.0 &&
                          truth->gap <= config_.max_range &&
                          std::abs(truth->lateral_offset) < 2.0;
  if (detectable && !rng_.bernoulli(config_.dropout_prob)) {
    state.lead_valid = true;
    state.lead_distance =
        std::max(0.0, truth->gap + rng_.gaussian(0.0, config_.range_noise_std));
    state.lead_rel_speed =
        truth->rel_speed + rng_.gaussian(0.0, config_.range_rate_noise_std);
    state.lead_speed = std::max(0.0, truth->lead_speed +
                                         rng_.gaussian(0.0, config_.range_rate_noise_std));
  }
  if (fault_hook_ && !fault_hook_(state)) return;  // benign sensor fault
  bus_->publish(state);
}

}  // namespace scaa::sensors
