#pragma once

/// @file gps.hpp
/// GPS sensor model publishing `gpsLocationExternal`.

#include <functional>

#include "msg/bus.hpp"
#include "util/rng.hpp"
#include "vehicle/vehicle.hpp"

namespace scaa::sensors {

/// Configuration of the GPS model.
struct GpsConfig {
  double rate_hz = 10.0;          ///< fix rate
  double speed_noise_std = 0.05;  ///< [m/s] 1-sigma ground-speed noise
  double dropout_prob = 0.0;      ///< probability a fix is skipped
};

/// Publishes noisy ground speed and bearing derived from ground truth.
/// Position is reported as a flat-earth offset converted to synthetic
/// lat/long — the attack only consumes speed, but the fields are populated
/// so eavesdroppers see a realistic message.
class GpsModel {
 public:
  GpsModel(msg::PubSubBus& bus, GpsConfig config, util::Rng rng);

  /// Re-arm with a fresh config and RNG stream, exactly as constructed
  /// (same bus). No allocation.
  void reset(GpsConfig config, util::Rng rng) noexcept;

  /// Advance to time step @p step_index (10 ms steps); publishes when the
  /// configured rate divides the step.
  void step(std::uint64_t step_index, const vehicle::VehicleState& truth);

  /// Benign-fault hook consulted immediately before each publish; it may
  /// perturb the fix, and returning false suppresses the publish. Wiring
  /// (set once at World construction, survives reset); the injector
  /// self-gates when no fault plan is attached.
  using FaultHook = std::function<bool(msg::GpsLocationExternal&)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  msg::PubSubBus* bus_;
  GpsConfig config_;
  util::Rng rng_;
  std::uint64_t steps_per_fix_;
  FaultHook fault_hook_;
};

}  // namespace scaa::sensors
