#include "sensors/camera.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace scaa::sensors {

CameraLaneModel::CameraLaneModel(msg::PubSubBus& bus, const road::Road& road,
                                 CameraConfig config, util::Rng rng)
    : bus_(&bus), road_(&road), config_(config), rng_(rng) {
  const double steps = 100.0 / std::max(1.0, config_.rate_hz);
  steps_per_frame_ = static_cast<std::uint64_t>(std::max(1.0, steps));
}

void CameraLaneModel::reset(const road::Road& road, CameraConfig config,
                            util::Rng rng) noexcept {
  road_ = &road;
  config_ = config;
  rng_ = rng;
  const double steps = 100.0 / std::max(1.0, config_.rate_hz);
  steps_per_frame_ = static_cast<std::uint64_t>(std::max(1.0, steps));
  bias_ = 0.0;
  delay_line_.clear();  // capacity kept: steady-state resets do not allocate
}

msg::ModelV2 CameraLaneModel::make_measurement(
    std::uint64_t step_index, const vehicle::VehicleState& truth,
    std::size_t ego_lane, RoadSample road) {
  const auto& profile = road_->profile();

  // Ornstein-Uhlenbeck bias update at the frame rate: mean-reverting walk
  // with stationary std config_.bias_std.
  const double dt = static_cast<double>(steps_per_frame_) / 100.0;
  const double theta = 1.0 / config_.bias_time_constant;
  const double diffusion = config_.bias_std * std::sqrt(2.0 * theta * dt);
  bias_ += -theta * bias_ * dt + rng_.gaussian(0.0, diffusion);

  const double curvature = road.curvature;

  // True lateral offsets of the ego lane's lines in the vehicle frame
  // (+left of the vehicle centre).
  const double true_left = profile.lane_left_edge(ego_lane) - truth.d;
  const double true_right = profile.lane_right_edge(ego_lane) - truth.d;

  msg::ModelV2 m;
  m.mono_time = step_index;
  m.left_lane_line =
      true_left + bias_ + rng_.gaussian(0.0, config_.line_noise_std);
  m.right_lane_line =
      true_right + bias_ + rng_.gaussian(0.0, config_.line_noise_std);
  m.path_curvature =
      curvature + rng_.gaussian(0.0, config_.curvature_noise_std);
  m.path_heading_error =
      math::wrap_angle(road.heading - truth.pose.heading) +
      rng_.gaussian(0.0, config_.heading_noise_std);

  // Confidence: degraded on curves and, critically, when the car straddles
  // a line — the lane lines leave the camera's useful field of view, which
  // is when the planner stops updating (and the alerting stack with it).
  const double off_center =
      std::abs(truth.d - profile.lane_center(ego_lane));
  const double straddle_loss =
      config_.offcenter_conf_slope *
      std::max(0.0, off_center - config_.offcenter_conf_start);
  const double conf_loss =
      std::abs(curvature) * 1000.0 * config_.curve_conf_penalty;
  const double conf = math::clamp(0.98 - conf_loss - straddle_loss, 0.05, 1.0);
  m.left_line_prob = conf;
  m.right_line_prob = conf;
  return m;
}

void CameraLaneModel::step(std::uint64_t step_index,
                           const vehicle::VehicleState& truth,
                           std::size_t ego_lane) {
  if (step_index % steps_per_frame_ != 0) return;  // skip before querying
  step(step_index, truth, ego_lane,
       {road_->curvature_at(truth.s), road_->heading_at(truth.s)});
}

void CameraLaneModel::step(std::uint64_t step_index,
                           const vehicle::VehicleState& truth,
                           std::size_t ego_lane, RoadSample road) {
  if (step_index % steps_per_frame_ != 0) return;

  delay_line_.push_back(make_measurement(step_index, truth, ego_lane, road));

  const auto latency_frames = static_cast<std::size_t>(
      config_.latency_steps / static_cast<double>(steps_per_frame_));
  if (delay_line_.size() > latency_frames) {
    msg::ModelV2& front = delay_line_.front();
    if (!fault_hook_ || fault_hook_(front)) bus_->publish(front);
    delay_line_.erase(delay_line_.begin());
  }
}

}  // namespace scaa::sensors
