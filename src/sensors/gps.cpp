#include "sensors/gps.hpp"

#include <algorithm>
#include <cmath>

namespace scaa::sensors {

namespace {
// Synthetic datum: 1 degree ~ 111 km; adequate for decorative lat/long.
constexpr double kMetersPerDegree = 111000.0;
constexpr double kDatumLat = 38.03;    // Charlottesville, VA
constexpr double kDatumLon = -78.51;
}  // namespace

GpsModel::GpsModel(msg::PubSubBus& bus, GpsConfig config, util::Rng rng)
    : bus_(&bus), config_(config), rng_(rng) {
  const double steps = 100.0 / std::max(1.0, config_.rate_hz);
  steps_per_fix_ = static_cast<std::uint64_t>(std::max(1.0, steps));
}

void GpsModel::reset(GpsConfig config, util::Rng rng) noexcept {
  config_ = config;
  rng_ = rng;
  const double steps = 100.0 / std::max(1.0, config_.rate_hz);
  steps_per_fix_ = static_cast<std::uint64_t>(std::max(1.0, steps));
}

void GpsModel::step(std::uint64_t step_index,
                    const vehicle::VehicleState& truth) {
  if (step_index % steps_per_fix_ != 0) return;
  if (config_.dropout_prob > 0.0 && rng_.bernoulli(config_.dropout_prob))
    return;

  msg::GpsLocationExternal fix;
  fix.mono_time = step_index;
  fix.latitude = kDatumLat + truth.pose.position.y / kMetersPerDegree;
  fix.longitude = kDatumLon + truth.pose.position.x / kMetersPerDegree;
  fix.speed =
      std::max(0.0, truth.speed + rng_.gaussian(0.0, config_.speed_noise_std));
  fix.bearing = truth.pose.heading;
  fix.has_fix = true;
  if (fault_hook_ && !fault_hook_(fix)) return;  // benign sensor fault
  bus_->publish(fix);
}

}  // namespace scaa::sensors
