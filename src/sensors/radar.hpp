#pragma once

/// @file radar.hpp
/// Radar sensor model publishing `radarState`.

#include <functional>
#include <optional>

#include "msg/bus.hpp"
#include "util/rng.hpp"
#include "vehicle/vehicle.hpp"

namespace scaa::sensors {

/// Configuration of the radar model.
struct RadarConfig {
  double rate_hz = 20.0;           ///< track update rate
  double max_range = 180.0;        ///< [m] detection range
  double range_noise_std = 0.25;   ///< [m]
  double range_rate_noise_std = 0.12;  ///< [m/s]
  double dropout_prob = 0.03;      ///< per-update missed detection (track flicker)
};

/// Publishes lead-vehicle range and range rate from ground truth.
/// The lead is "detected" when within range and roughly in the ego's lane.
class RadarModel {
 public:
  RadarModel(msg::PubSubBus& bus, RadarConfig config, util::Rng rng);

  /// Re-arm with a fresh config and RNG stream, exactly as constructed
  /// (same bus). No allocation.
  void reset(RadarConfig config, util::Rng rng) noexcept;

  /// Ground truth of the lead as seen this step; nullopt when no lead
  /// exists in the scenario.
  struct LeadTruth {
    double gap = 0.0;        ///< bumper-to-bumper longitudinal gap [m]
    double rel_speed = 0.0;  ///< lead speed - ego speed [m/s]
    double lead_speed = 0.0; ///< absolute lead speed [m/s]
    double lateral_offset = 0.0;  ///< lead lateral offset from ego lane [m]
  };

  /// Advance one 10 ms step; publishes at the configured rate.
  void step(std::uint64_t step_index, const std::optional<LeadTruth>& truth);

  /// Benign-fault hook consulted immediately before each publish (may
  /// perturb the track; false suppresses it). See GpsModel::set_fault_hook.
  using FaultHook = std::function<bool(msg::RadarState&)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  msg::PubSubBus* bus_;
  RadarConfig config_;
  util::Rng rng_;
  std::uint64_t steps_per_update_;
  FaultHook fault_hook_;
};

}  // namespace scaa::sensors
