#pragma once

/// @file camera.hpp
/// Camera + perception-model stand-in publishing `modelV2`.
///
/// OpenPilot's vision model outputs lane-line positions in the vehicle
/// frame. We derive them from ground truth (road geometry and the ego's
/// Frenet offset) and corrupt them the way a vision model is wrong:
///  * zero-mean white jitter on each line;
///  * a slowly wandering bias (Ornstein-Uhlenbeck): the low-frequency
///    estimation error that makes real ALC weave inside — and occasionally
///    across — the lane (the paper's Observation 1);
///  * a curve-dependent systematic bias toward the outside of the bend
///    (vision models consistently under-read curvature), which on the
///    paper's left-curved road parks the Ego slightly right of centre;
///  * degraded confidence on curves, and a small output latency.

#include <functional>

#include "msg/bus.hpp"
#include "road/road.hpp"
#include "util/rng.hpp"
#include "vehicle/vehicle.hpp"

namespace scaa::sensors {

/// Configuration of the camera lane-model.
struct CameraConfig {
  double rate_hz = 20.0;          ///< model output rate
  double line_noise_std = 0.04;   ///< [m] white jitter on each line
  double bias_std = 0.05;         ///< [m] stationary std of the wandering bias
  double bias_time_constant = 4.0;///< [s] bias correlation time (OU process)
  double heading_noise_std = 0.0035;  ///< [rad] error on path heading
  double curvature_noise_std = 2e-4;  ///< [1/m] error on path curvature
  double curve_conf_penalty = 0.15;   ///< confidence loss per 1e-3 curvature
  double offcenter_conf_start = 1.2;  ///< [m] straddling: lines leave the view
  double offcenter_conf_slope = 0.7;  ///< confidence loss per extra metre
  double latency_steps = 2;           ///< output delay in 10 ms steps
};

/// Publishes modelV2 from ground truth with structured perception error.
class CameraLaneModel {
 public:
  /// Road-geometry queries at the truth position. The World computes these
  /// once per tick (it needs them for the driver observation anyway) and
  /// hands them down, so the camera issues no polyline searches of its own.
  struct RoadSample {
    double curvature = 0.0;  ///< [1/m] signed road curvature at truth.s
    double heading = 0.0;    ///< [rad] road heading at truth.s
  };

  CameraLaneModel(msg::PubSubBus& bus, const road::Road& road,
                  CameraConfig config, util::Rng rng);

  /// Re-arm with a fresh road/config/RNG, exactly as constructed (same
  /// bus): the wandering bias restarts at zero and the latency delay line
  /// empties, keeping its capacity. No allocation.
  void reset(const road::Road& road, CameraConfig config,
             util::Rng rng) noexcept;

  /// Advance one 10 ms step; publishes at the configured rate with latency.
  /// Queries the road itself — for callers without a hoisted RoadSample.
  void step(std::uint64_t step_index, const vehicle::VehicleState& truth,
            std::size_t ego_lane);

  /// As above, with the road queries precomputed by the caller.
  void step(std::uint64_t step_index, const vehicle::VehicleState& truth,
            std::size_t ego_lane, RoadSample road);

  /// Current value of the wandering bias [m] (exposed for tests).
  double bias() const noexcept { return bias_; }

  /// Benign-fault hook consulted immediately before each publish — i.e. on
  /// the frame leaving the latency delay line, not the one entering it
  /// (may perturb the model output; false suppresses the publish). See
  /// GpsModel::set_fault_hook.
  using FaultHook = std::function<bool(msg::ModelV2&)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  msg::ModelV2 make_measurement(std::uint64_t step_index,
                                const vehicle::VehicleState& truth,
                                std::size_t ego_lane, RoadSample road);

  msg::PubSubBus* bus_;
  const road::Road* road_;
  CameraConfig config_;
  util::Rng rng_;
  std::uint64_t steps_per_frame_;
  double bias_ = 0.0;
  std::vector<msg::ModelV2> delay_line_;
  FaultHook fault_hook_;
};

}  // namespace scaa::sensors
