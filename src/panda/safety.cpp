#include "panda/safety.hpp"

#include <cmath>

#include "can/database.hpp"

namespace scaa::panda {

PandaSafety::PandaSafety(const can::Database& db, PandaLimits limits)
    : limits_(limits),
      parser_(db),
      steer_angle_sig_(
          db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd)),
      accel_sig_(db.signal_handle("GAS_BRAKE_COMMAND", can::sig::kAccelCmd)) {}

bool PandaSafety::check(const can::CanFrame& frame) {
  if (frame.id != can::msg_id::kSteeringControl &&
      frame.id != can::msg_id::kGasBrakeCommand)
    return true;  // only command frames are policed

  ++stats_.frames_checked;
  const auto* parsed = parser_.parse_flat(frame);
  if (parsed == nullptr || !parsed->checksum_ok) {
    ++stats_.checksum_rejects;
    ++stats_.frames_blocked;
    return false;
  }

  if (frame.id == can::msg_id::kSteeringControl) {
    const double angle_deg = parsed->values[steer_angle_sig_.signal];
    bool ok = std::abs(angle_deg) <= limits_.max_steer_deg;
    if (ok && has_last_steer_)
      ok = std::abs(angle_deg - last_steer_deg_) <= limits_.max_steer_rate_deg;
    if (ok) {
      last_steer_deg_ = angle_deg;
      has_last_steer_ = true;
      return true;
    }
    ++stats_.frames_blocked;
    return false;
  }

  // GAS_BRAKE_COMMAND
  const double accel = parsed->values[accel_sig_.signal];
  if (accel >= limits_.min_accel && accel <= limits_.max_accel) return true;
  ++stats_.frames_blocked;
  return false;
}

std::uint64_t PandaSafety::attach(can::CanBus& bus) {
  return bus.attach_interceptor(
      [this](can::CanFrame& frame) { return check(frame); });
}

}  // namespace scaa::panda
