#pragma once

/// @file safety.hpp
/// Panda-style firmware safety checks on outgoing actuator CAN frames.
///
/// Comma.ai's Panda OBD adapter enforces per-message envelopes in firmware,
/// independent of the OpenPilot process. The paper notes that when OpenPilot
/// runs against CARLA the Panda hardware is bypassed, so these checks are
/// NOT enforced in the simulation loop — but the attacker treats them as
/// the constraint set for strategic value corruption (Eq. 1) so the attack
/// would also survive on a real car. We therefore implement the checker
/// both (a) as an optional bus interceptor and (b) as a queryable limit set.

#include <cstdint>

#include "can/bus.hpp"
#include "can/packer.hpp"

namespace scaa::panda {

/// The firmware envelope (matches adas::SafetyLimits where they overlap;
/// kept separate because on a real car these are independent
/// implementations — and an attacker positioned after Panda bypasses them).
struct PandaLimits {
  double max_accel = 2.0;    ///< [m/s^2]
  double min_accel = -3.5;   ///< [m/s^2]
  double max_steer_deg = 0.75;       ///< [deg] absolute angle command
  double max_steer_rate_deg = 0.5;   ///< [deg] per-frame angle delta
};

/// Statistics of enforcement decisions.
struct PandaStats {
  std::uint64_t frames_checked = 0;
  std::uint64_t frames_blocked = 0;
  std::uint64_t checksum_rejects = 0;
};

/// Frame-level safety checker. Attach to a CanBus as an interceptor with
/// `attach(bus)`, or call `check()` directly.
class PandaSafety {
 public:
  PandaSafety(const can::Database& db, PandaLimits limits);

  /// Validate one frame. Returns false when the frame must be blocked
  /// (limit violation or bad checksum). Non-command frames pass through.
  bool check(const can::CanFrame& frame);

  /// Attach as an interceptor on @p bus; returns the attachment id.
  std::uint64_t attach(can::CanBus& bus);

  /// Zero the statistics and per-message frame history for a new
  /// simulation, keeping the resolved signal handles and any bus
  /// attachment. Allocation-free.
  void reset() noexcept {
    stats_ = PandaStats{};
    parser_.reset();
    has_last_steer_ = false;
    last_steer_deg_ = 0.0;
  }

  /// Enforcement statistics.
  const PandaStats& stats() const noexcept { return stats_; }

  /// The envelope (the attacker's Eq. 1 constraint set).
  const PandaLimits& limits() const noexcept { return limits_; }

 private:
  PandaLimits limits_;
  PandaStats stats_;
  can::CanParser parser_;
  // Signal indices resolved once so check() runs the allocation-free
  // flat parse path (firmware has no heap either).
  can::SignalHandle steer_angle_sig_;
  can::SignalHandle accel_sig_;
  bool has_last_steer_ = false;
  double last_steer_deg_ = 0.0;
};

}  // namespace scaa::panda
