#pragma once

/// @file harness.hpp
/// Wires the defense detectors onto a live simulation, exactly the way a
/// retrofit monitoring ECU would: subscribe to the pub/sub bus, tap the CAN
/// bus, and read the car's own motion — no cooperation from the (possibly
/// compromised) command path required.

#include <cstdint>
#include <memory>

#include "attack/context.hpp"
#include "can/packer.hpp"
#include "defense/context_monitor.hpp"
#include "defense/control_invariant.hpp"
#include "sim/world.hpp"

namespace scaa::defense {

/// Outcome of running the defenses over one simulation.
struct DefenseOutcome {
  bool invariant_alarmed = false;
  double invariant_time = -1.0;  ///< [s] first control-invariant alarm
  bool monitor_alarmed = false;
  double monitor_time = -1.0;    ///< [s] first context-monitor alarm
  /// Detection latency vs. the attack: alarm time - attack start; negative
  /// when not applicable (no attack or no alarm).
  double invariant_latency = -1.0;
  double monitor_latency = -1.0;
  /// Did any alarm precede the first hazard?
  bool detected_before_hazard = false;
  /// Stale-input degraded mode (context_monitor.hpp); all zero unless the
  /// monitor config enables it.
  std::uint64_t degraded_entries = 0;
  double degraded_time = 0.0;  ///< [s] total time spent degraded
};

/// Attaches both detectors to a world and steps it to completion.
class DefenseHarness {
 public:
  DefenseHarness(sim::World& world, InvariantConfig invariant_config,
                 MonitorConfig monitor_config);

  /// Run the world to the end, feeding the detectors every cycle.
  /// Returns the defense outcome alongside the usual summary.
  DefenseOutcome run(sim::SimulationSummary* summary_out = nullptr);

  /// Re-arm the harness after the borrowed world is reset: detector state,
  /// eavesdropped latches, and decoded-wire memory clear, while the bus
  /// subscriptions and the CAN tap stay attached (the retrofit ECU keeps
  /// its wiring across simulations, just like the attacker keeps its).
  /// Allocation-free.
  void reset() noexcept;

  const ControlInvariantDetector& invariant() const noexcept {
    return invariant_;
  }
  const ContextAwareMonitor& monitor() const noexcept { return monitor_; }

 private:
  sim::World* world_;
  ControlInvariantDetector invariant_;
  ContextAwareMonitor monitor_;
  attack::ContextInference inference_;
  msg::Latest<msg::CarControl> car_control_;
  can::CanParser tap_parser_;
  // Resolved once: the tap decodes every command frame at 100 Hz and must
  // not allocate (it rides inside the simulation hot path).
  can::SignalHandle steer_angle_sig_;
  can::SignalHandle accel_sig_;
  double wire_accel_ = 0.0;
  double wire_steer_ = 0.0;
};

}  // namespace scaa::defense
