#include "defense/control_invariant.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace scaa::defense {

bool ControlInvariantDetector::update(const InvariantInputs& in,
                                      double dt) noexcept {
  clock_ += dt;

  // --- physics channel: wire command -> expected response ---------------
  const double alpha = dt / (config_.accel_model_tc + dt);
  expected_accel_ = math::lowpass(expected_accel_, in.wire_accel, alpha);
  const double physics_residual =
      std::abs(in.measured_accel - expected_accel_) /
      config_.accel_residual_std;
  physics_cusum_ = std::max(
      0.0, physics_cusum_ + physics_residual - config_.cusum_drift);

  // --- intent channel: published carControl vs decoded CAN --------------
  const double accel_err =
      std::abs(in.intent_accel - in.wire_accel) / config_.intent_accel_tol;
  const double steer_err =
      std::abs(in.intent_steer - in.wire_steer) / config_.intent_steer_tol;
  const double intent_residual = std::max(accel_err, steer_err);
  intent_cusum_ = std::max(
      0.0, intent_cusum_ + intent_residual - config_.cusum_drift);

  const bool alarm = physics_cusum_ > config_.cusum_threshold ||
                     intent_cusum_ > config_.cusum_threshold;
  if (alarm && alarm_time_ < 0.0) alarm_time_ = clock_;
  return alarm;
}

}  // namespace scaa::defense
