#include "defense/context_monitor.hpp"

#include <cmath>

namespace scaa::defense {

void ContextAwareMonitor::update_degraded(const MonitorInputs& in,
                                          double dt) noexcept {
  const bool stale = in.context_age > config_.stale_context_s;
  const double hysteresis = config_.degrade_hysteresis_s;
  if (stale) {
    fresh_since_ = -1.0;
    if (stale_since_ < 0.0) stale_since_ = clock_;
    if (!degraded_ && clock_ - stale_since_ >= hysteresis) {
      degraded_ = true;
      ++degraded_entries_;
    }
  } else {
    stale_since_ = -1.0;
    if (fresh_since_ < 0.0) fresh_since_ = clock_;
    if (degraded_ && clock_ - fresh_since_ >= hysteresis) degraded_ = false;
  }
  if (degraded_) degraded_time_ += dt;
}

bool ContextAwareMonitor::update(const MonitorInputs& in,
                                 double dt) noexcept {
  clock_ += dt;

  // Graceful degradation (opt-in; stale_context_s == 0 keeps the paper's
  // original code path bit-for-bit). While degraded the monitor withholds
  // alarms and clears its persistence windows: a lossy bus starves the
  // context inputs, whereas an attack keeps feeding them — so "stale
  // context + unsafe-looking wire" reads as fault, not intrusion. An
  // attack that persists across recovery re-accumulates its window.
  if (config_.stale_context_s > 0.0) {
    update_degraded(in, dt);
    if (degraded_) {
      for (double& since : unsafe_since_) since = -1.0;
      return false;
    }
  }

  const attack::ContextMatch match = table_.match(in.context);

  // Which control actions are currently being exercised on the wire?
  const bool accelerating = in.wire_accel > config_.accel_on;
  const bool braking = -in.wire_accel > config_.brake_on;
  const double steer_offset = in.wire_steer - in.nominal_steer;
  const bool steering_left = steer_offset > config_.steer_on;
  const bool steering_right = -steer_offset > config_.steer_on;

  const bool exercised[4] = {accelerating, braking, steering_left,
                             steering_right};

  bool any_alarm = false;
  for (std::size_t i = 0; i < 4; ++i) {
    const bool unsafe =
        exercised[i] &&
        match.enabled(static_cast<attack::UnsafeAction>(i));
    if (!unsafe) {
      unsafe_since_[i] = -1.0;
      continue;
    }
    if (unsafe_since_[i] < 0.0) unsafe_since_[i] = clock_;
    if (clock_ - unsafe_since_[i] >= config_.persistence) {
      any_alarm = true;
      if (alarm_time_ < 0.0) {
        alarm_time_ = clock_;
        alarm_action_ = static_cast<attack::UnsafeAction>(i);
      }
    }
  }
  return any_alarm;
}

}  // namespace scaa::defense
