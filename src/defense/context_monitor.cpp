#include "defense/context_monitor.hpp"

#include <cmath>

namespace scaa::defense {

bool ContextAwareMonitor::update(const MonitorInputs& in,
                                 double dt) noexcept {
  clock_ += dt;
  const attack::ContextMatch match = table_.match(in.context);

  // Which control actions are currently being exercised on the wire?
  const bool accelerating = in.wire_accel > config_.accel_on;
  const bool braking = -in.wire_accel > config_.brake_on;
  const double steer_offset = in.wire_steer - in.nominal_steer;
  const bool steering_left = steer_offset > config_.steer_on;
  const bool steering_right = -steer_offset > config_.steer_on;

  const bool exercised[4] = {accelerating, braking, steering_left,
                             steering_right};

  bool any_alarm = false;
  for (std::size_t i = 0; i < 4; ++i) {
    const bool unsafe =
        exercised[i] &&
        match.enabled(static_cast<attack::UnsafeAction>(i));
    if (!unsafe) {
      unsafe_since_[i] = -1.0;
      continue;
    }
    if (unsafe_since_[i] < 0.0) unsafe_since_[i] = clock_;
    if (clock_ - unsafe_since_[i] >= config_.persistence) {
      any_alarm = true;
      if (alarm_time_ < 0.0) {
        alarm_time_ = clock_;
        alarm_action_ = static_cast<attack::UnsafeAction>(i);
      }
    }
  }
  return any_alarm;
}

}  // namespace scaa::defense
