#pragma once

/// @file context_monitor.hpp
/// Context-aware safety monitoring — the defender's mirror of the
/// attacker's Table I (after Zhou et al., DSN'21, cited by the paper as a
/// candidate defense).
///
/// The monitor watches the same system context the attacker infers (headway
/// time, relative speed, lane-edge distances) and the control actions on
/// the wire, and alarms when an *unsafe control action in the current
/// context* persists: accelerating while closing on a near lead, sustained
/// braking with clear road, steering toward an edge the car is already on.
/// Unlike the firmware envelope checks, this catches in-envelope values —
/// exactly the gap the paper's strategic corruption exploits.

#include "attack/context.hpp"
#include "attack/context_table.hpp"

namespace scaa::defense {

/// Tuning of the context monitor.
struct MonitorConfig {
  attack::ContextTableParams table;  ///< same thresholds as the hazard analysis
  double accel_on = 0.5;     ///< [m/s^2] commanded accel that counts as "accelerate"
  double brake_on = 1.2;     ///< [m/s^2] commanded decel that counts as "brake"
  double steer_on = 0.0035;  ///< [rad] (~0.2 deg) commanded offset that counts as "steer"
  double persistence = 1.0;  ///< [s] unsafe action must persist this long.
                             ///< The legitimate planner's wander reverses
                             ///< within a second; an attack holds its
                             ///< direction until the hazard.
};

/// Inputs per control cycle.
struct MonitorInputs {
  attack::SafetyContext context;  ///< inferred system context
  double wire_accel = 0.0;        ///< accel command on the CAN bus [m/s^2]
  double wire_steer = 0.0;        ///< steering command on the CAN bus [rad]
  double nominal_steer = 0.0;     ///< road-curvature feed-forward [rad]
};

/// The monitor. Stateless rule evaluation + persistence windows.
class ContextAwareMonitor {
 public:
  explicit ContextAwareMonitor(MonitorConfig config) noexcept
      : config_(config), table_(config.table) {}

  /// Feed one cycle; returns true while an unsafe-action alarm is active.
  bool update(const MonitorInputs& in, double dt) noexcept;

  /// Back to the freshly constructed state (same config): persistence
  /// windows, clock, and alarm memory all clear.
  void reset() noexcept {
    for (double& since : unsafe_since_) since = -1.0;
    clock_ = 0.0;
    alarm_time_ = -1.0;
    alarm_action_ = attack::UnsafeAction::kAcceleration;
  }

  /// True once alarmed at least once.
  bool alarmed() const noexcept { return alarm_time_ >= 0.0; }

  /// Clock time of the first alarm; negative when never.
  double alarm_time() const noexcept { return alarm_time_; }

  /// Which unsafe action triggered the first alarm.
  attack::UnsafeAction alarm_action() const noexcept { return alarm_action_; }

 private:
  MonitorConfig config_;
  attack::ContextTable table_;
  double unsafe_since_[4] = {-1.0, -1.0, -1.0, -1.0};
  double clock_ = 0.0;
  double alarm_time_ = -1.0;
  attack::UnsafeAction alarm_action_ = attack::UnsafeAction::kAcceleration;
};

}  // namespace scaa::defense
