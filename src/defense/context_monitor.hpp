#pragma once

/// @file context_monitor.hpp
/// Context-aware safety monitoring — the defender's mirror of the
/// attacker's Table I (after Zhou et al., DSN'21, cited by the paper as a
/// candidate defense).
///
/// The monitor watches the same system context the attacker infers (headway
/// time, relative speed, lane-edge distances) and the control actions on
/// the wire, and alarms when an *unsafe control action in the current
/// context* persists: accelerating while closing on a near lead, sustained
/// braking with clear road, steering toward an edge the car is already on.
/// Unlike the firmware envelope checks, this catches in-envelope values —
/// exactly the gap the paper's strategic corruption exploits.

#include <cstdint>

#include "attack/context.hpp"
#include "attack/context_table.hpp"

namespace scaa::defense {

/// Tuning of the context monitor.
struct MonitorConfig {
  attack::ContextTableParams table;  ///< same thresholds as the hazard analysis
  double accel_on = 0.5;     ///< [m/s^2] commanded accel that counts as "accelerate"
  double brake_on = 1.2;     ///< [m/s^2] commanded decel that counts as "brake"
  double steer_on = 0.0035;  ///< [rad] (~0.2 deg) commanded offset that counts as "steer"
  double persistence = 1.0;  ///< [s] unsafe action must persist this long.
                             ///< The legitimate planner's wander reverses
                             ///< within a second; an attack holds its
                             ///< direction until the hazard.

  /// Graceful degradation under benign faults. 0 (the default) disables
  /// the mechanism entirely — the paper's original behavior, bit-for-bit.
  /// When > 0, the monitor enters a degraded ("stale input") mode once its
  /// context inputs have been older than this for degrade_hysteresis_s
  /// continuously; while degraded it withholds alarms and clears its
  /// persistence windows — a lossy bus starves the context, an attack
  /// keeps feeding it — and it recovers after the inputs stay fresh for
  /// the same hysteresis.
  double stale_context_s = 0.0;  ///< [s] context age that counts as stale
  double degrade_hysteresis_s = 0.0;  ///< [s] dwell before entering/leaving
};

/// Inputs per control cycle.
struct MonitorInputs {
  attack::SafetyContext context;  ///< inferred system context
  double wire_accel = 0.0;        ///< accel command on the CAN bus [m/s^2]
  double wire_steer = 0.0;        ///< steering command on the CAN bus [rad]
  double nominal_steer = 0.0;     ///< road-curvature feed-forward [rad]
  /// Age [s] of the oldest eavesdropped input feeding `context` (0 when the
  /// caller does not track staleness). Compared against stale_context_s —
  /// only meaningful when the config enables degradation.
  double context_age = 0.0;
};

/// The monitor. Stateless rule evaluation + persistence windows.
class ContextAwareMonitor {
 public:
  explicit ContextAwareMonitor(MonitorConfig config) noexcept
      : config_(config), table_(config.table) {}

  /// Feed one cycle; returns true while an unsafe-action alarm is active.
  bool update(const MonitorInputs& in, double dt) noexcept;

  /// Back to the freshly constructed state (same config): persistence
  /// windows, clock, alarm memory, and degraded-mode state all clear.
  void reset() noexcept {
    for (double& since : unsafe_since_) since = -1.0;
    clock_ = 0.0;
    alarm_time_ = -1.0;
    alarm_action_ = attack::UnsafeAction::kAcceleration;
    degraded_ = false;
    stale_since_ = -1.0;
    fresh_since_ = -1.0;
    degraded_entries_ = 0;
    degraded_time_ = 0.0;
  }

  /// True once alarmed at least once.
  bool alarmed() const noexcept { return alarm_time_ >= 0.0; }

  /// Clock time of the first alarm; negative when never.
  double alarm_time() const noexcept { return alarm_time_; }

  /// Which unsafe action triggered the first alarm.
  attack::UnsafeAction alarm_action() const noexcept { return alarm_action_; }

  /// True while the monitor is in the stale-input degraded mode.
  bool degraded() const noexcept { return degraded_; }

  /// Times the monitor entered degraded mode this run.
  std::uint64_t degraded_entries() const noexcept { return degraded_entries_; }

  /// Total time [s] spent degraded this run.
  double degraded_time() const noexcept { return degraded_time_; }

 private:
  void update_degraded(const MonitorInputs& in, double dt) noexcept;

  MonitorConfig config_;
  attack::ContextTable table_;
  double unsafe_since_[4] = {-1.0, -1.0, -1.0, -1.0};
  double clock_ = 0.0;
  double alarm_time_ = -1.0;
  attack::UnsafeAction alarm_action_ = attack::UnsafeAction::kAcceleration;
  // Degraded-mode state; untouched (and alarm behavior unchanged) when
  // config_.stale_context_s == 0.
  bool degraded_ = false;
  double stale_since_ = -1.0;
  double fresh_since_ = -1.0;
  std::uint64_t degraded_entries_ = 0;
  double degraded_time_ = 0.0;
};

}  // namespace scaa::defense
