#pragma once

/// @file control_invariant.hpp
/// Control-invariant anomaly detection (the defense the paper's §V cites,
/// after Choi et al., CCS'18).
///
/// Idea: the defender holds a nominal model of how the vehicle responds to
/// actuator commands. Each cycle it predicts the next state from the
/// commands on the wire, compares against the measured state, and feeds the
/// residual into a CUSUM accumulator. Corrupted commands move the vehicle
/// exactly as commanded — so command-replacement attacks do NOT show up
/// here directly; what shows up is the *divergence between what the ADAS
/// planner wanted and what the bus carried*. We therefore monitor two
/// residual channels:
///   1. physics residual: wire command vs measured response (detects
///      actuator faults and crude spoofing of sensor values);
///   2. intent residual: ADAS-published carControl vs the command decoded
///      from the CAN bus (detects man-in-the-middle rewrites — the paper's
///      attack — as long as the detector taps both sides).

#include <cstdint>

namespace scaa::defense {

/// Tuning of the invariant detector.
struct InvariantConfig {
  double accel_model_tc = 0.25;   ///< [s] expected actuator lag
  double accel_residual_std = 0.8;   ///< [m/s^2] tolerated physics noise
                                     ///< (covers drag/rolling-resistance
                                     ///< model error while coasting)
  double steer_residual_std = 0.0035;///< [rad] tolerated steering noise
  double intent_accel_tol = 0.15; ///< [m/s^2] carControl vs CAN tolerance
  double intent_steer_tol = 0.0026;  ///< [rad] (~0.15 deg) tolerance
  double cusum_drift = 1.2;       ///< CUSUM drift term (in sigmas)
  double cusum_threshold = 30.0;  ///< alarm threshold (in sigma-steps)
};

/// Per-cycle observations the detector consumes.
struct InvariantInputs {
  // What the ADAS says it commanded (published carControl).
  double intent_accel = 0.0;
  double intent_steer = 0.0;
  // What the CAN bus delivered to the actuators (decoded at the gateway).
  double wire_accel = 0.0;
  double wire_steer = 0.0;
  // Measured vehicle response.
  double measured_accel = 0.0;
  double measured_steer = 0.0;
};

/// CUSUM-based detector over the two residual channels.
class ControlInvariantDetector {
 public:
  explicit ControlInvariantDetector(InvariantConfig config) noexcept
      : config_(config) {}

  /// Feed one cycle; returns true while the alarm is raised.
  bool update(const InvariantInputs& in, double dt) noexcept;

  /// Back to the freshly constructed state (same config): scores, clock,
  /// and alarm memory all clear.
  void reset() noexcept {
    expected_accel_ = 0.0;
    physics_cusum_ = 0.0;
    intent_cusum_ = 0.0;
    clock_ = 0.0;
    alarm_time_ = -1.0;
  }

  /// True once the alarm has fired at least once.
  bool alarmed() const noexcept { return alarm_time_ >= 0.0; }

  /// Time (sum of dt) at the first alarm; negative when never.
  double alarm_time() const noexcept { return alarm_time_; }

  /// Current CUSUM scores (for tests/telemetry).
  double physics_score() const noexcept { return physics_cusum_; }
  double intent_score() const noexcept { return intent_cusum_; }

 private:
  InvariantConfig config_;
  double expected_accel_ = 0.0;  ///< lag-filtered wire command
  double physics_cusum_ = 0.0;
  double intent_cusum_ = 0.0;
  double clock_ = 0.0;
  double alarm_time_ = -1.0;
};

}  // namespace scaa::defense
