#include "defense/harness.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace scaa::defense {

DefenseHarness::DefenseHarness(sim::World& world,
                               InvariantConfig invariant_config,
                               MonitorConfig monitor_config)
    : world_(&world),
      invariant_(invariant_config),
      monitor_(monitor_config),
      inference_(world.message_bus(), 0.9),
      car_control_(world.message_bus()),
      tap_parser_(world.dbc()),
      steer_angle_sig_(world.dbc().signal_handle("STEERING_CONTROL",
                                                 can::sig::kSteerAngleCmd)),
      accel_sig_(
          world.dbc().signal_handle("GAS_BRAKE_COMMAND", can::sig::kAccelCmd)) {
  world.can().attach_tap([this](const can::CanFrame& frame) {
    const auto* parsed = tap_parser_.parse_flat(frame);
    if (parsed == nullptr || !parsed->checksum_ok) return;
    if (frame.id == can::msg_id::kSteeringControl) {
      wire_steer_ =
          units::deg_to_rad(parsed->values[steer_angle_sig_.signal]);
    } else if (frame.id == can::msg_id::kGasBrakeCommand) {
      wire_accel_ = parsed->values[accel_sig_.signal];
    }
  });
}

void DefenseHarness::reset() noexcept {
  invariant_.reset();
  monitor_.reset();
  inference_.reset(0.9);
  car_control_.reset();
  tap_parser_.reset();
  wire_accel_ = 0.0;
  wire_steer_ = 0.0;
}

DefenseOutcome DefenseHarness::run(sim::SimulationSummary* summary_out) {
  const double dt = 0.01;
  while (world_->step()) {
    const auto& ego = world_->ego_state();

    InvariantInputs inv;
    inv.intent_accel = car_control_.value().accel;
    inv.intent_steer = car_control_.value().steer_angle;
    inv.wire_accel = wire_accel_;
    inv.wire_steer = wire_steer_;
    inv.measured_accel = ego.accel;
    inv.measured_steer = ego.steer_angle;
    invariant_.update(inv, dt);

    MonitorInputs mon;
    mon.context = inference_.infer(world_->time());
    mon.wire_accel = wire_accel_;
    mon.wire_steer = wire_steer_;
    mon.nominal_steer = std::atan(
        2.7 * world_->road().curvature_at(ego.s));
    // Age of the oldest eavesdropped context input: each latched message
    // is stamped with its publish step (mono_time, 10 ms steps). A lossy
    // or faulted bus starves these latches; the monitor's degraded mode
    // keys off exactly that staleness.
    const double now = world_->time();
    const auto age = [now](msg::MonoTime mono) {
      return now - static_cast<double>(mono) * 0.01;
    };
    mon.context_age = std::max({age(inference_.gps().mono_time),
                                age(inference_.model().mono_time),
                                age(inference_.radar().mono_time)});
    monitor_.update(mon, dt);
  }

  const auto summary = world_->summarize();
  if (summary_out != nullptr) *summary_out = summary;

  DefenseOutcome out;
  out.invariant_alarmed = invariant_.alarmed();
  out.invariant_time = invariant_.alarm_time();
  out.monitor_alarmed = monitor_.alarmed();
  out.monitor_time = monitor_.alarm_time();
  if (summary.attack_activated) {
    if (out.invariant_alarmed &&
        out.invariant_time >= summary.attack_start)
      out.invariant_latency = out.invariant_time - summary.attack_start;
    if (out.monitor_alarmed && out.monitor_time >= summary.attack_start)
      out.monitor_latency = out.monitor_time - summary.attack_start;
  }
  const double first_alarm =
      out.invariant_alarmed
          ? (out.monitor_alarmed
                 ? std::min(out.invariant_time, out.monitor_time)
                 : out.invariant_time)
          : out.monitor_time;
  out.detected_before_hazard =
      (out.invariant_alarmed || out.monitor_alarmed) &&
      (!summary.any_hazard || first_alarm < summary.first_hazard_time);
  out.degraded_entries = monitor_.degraded_entries();
  out.degraded_time = monitor_.degraded_time();
  return out;
}

}  // namespace scaa::defense
