#pragma once

/// @file vec2.hpp
/// 2-D vectors and poses in the world frame.
///
/// World frame convention: x east, y north, heading measured CCW from +x.
/// A left curve therefore has positive curvature and increasing heading.

#include <cmath>

namespace scaa::geom {

/// Plain 2-D vector (value type; no invariant).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const noexcept { return {x * k, y * k}; }
  constexpr Vec2 operator/(double k) const noexcept { return {x / k, y / k}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }

  /// Dot product.
  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }

  /// 2-D cross product (z-component): positive when @p o is CCW from this.
  constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }

  /// Euclidean norm.
  double norm() const noexcept { return std::sqrt(x * x + y * y); }

  /// Squared norm (avoids sqrt when comparing distances).
  constexpr double norm_sq() const noexcept { return x * x + y * y; }

  /// Unit vector in the same direction; returns {0,0} for the zero vector.
  Vec2 normalized() const noexcept;

  /// This vector rotated CCW by @p angle radians.
  Vec2 rotated(double angle) const noexcept;

  /// Perpendicular (rotated +90 degrees: left normal).
  constexpr Vec2 perp() const noexcept { return {-y, x}; }
};

constexpr Vec2 operator*(double k, Vec2 v) noexcept { return v * k; }

/// Distance between two points.
double distance(Vec2 a, Vec2 b) noexcept;

/// Unit vector at heading @p theta (radians, CCW from +x).
Vec2 heading_vector(double theta) noexcept;

/// Rigid 2-D pose: position plus heading.
struct Pose {
  Vec2 position;
  double heading = 0.0;  ///< radians, CCW from +x

  /// Transform a point from this pose's local frame to the world frame.
  Vec2 local_to_world(Vec2 local) const noexcept;

  /// Transform a world point into this pose's local frame
  /// (x forward, y left).
  Vec2 world_to_local(Vec2 world) const noexcept;
};

}  // namespace scaa::geom
