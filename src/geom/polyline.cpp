#include "geom/polyline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace scaa::geom {

Polyline::Polyline(std::vector<Vec2> points) : pts_(std::move(points)) {
  if (pts_.size() < 2)
    throw std::invalid_argument("Polyline: needs at least 2 points");
  cum_.resize(pts_.size());
  cum_[0] = 0.0;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    const double seg = distance(pts_[i - 1], pts_[i]);
    if (seg <= 1e-12)
      throw std::invalid_argument("Polyline: duplicate consecutive points");
    cum_[i] = cum_[i - 1] + seg;
  }
  // Precompute per-segment tangent headings: heading_at() is the hottest
  // query of the simulation loop (road tracking for every vehicle, every
  // tick), and atan2 per call dominated its cost.
  headings_.resize(pts_.size() - 1);
  for (std::size_t i = 0; i + 1 < pts_.size(); ++i) {
    const Vec2 d = pts_[i + 1] - pts_[i];
    headings_[i] = std::atan2(d.y, d.x);
  }
  inv_mean_seg_ = static_cast<double>(pts_.size() - 1) / length();
}

std::size_t Polyline::segment_index(double s) const noexcept {
  // Find i such that cum_[i] <= s < cum_[i+1] (same contract as the old
  // upper_bound search). The builder tessellates at near-uniform spacing,
  // so a scaled guess plus a short monotone walk replaces the binary
  // search; the walk terminates at the identical index.
  const std::size_t last = pts_.size() - 2;
  std::size_t i = 0;
  const double guess = s * inv_mean_seg_;
  if (guess >= static_cast<double>(last))
    i = last;
  else if (guess > 0.0)
    i = static_cast<std::size_t>(guess);
  while (i < last && cum_[i + 1] <= s) ++i;
  while (i > 0 && cum_[i] > s) --i;
  return i;
}

Vec2 Polyline::position_at(double s) const noexcept {
  if (pts_.empty()) return {};
  if (s <= 0.0) return pts_.front();
  if (s >= length()) return pts_.back();
  const std::size_t i = segment_index(s);
  const double seg_len = cum_[i + 1] - cum_[i];
  const double t = (s - cum_[i]) / seg_len;
  return pts_[i] + (pts_[i + 1] - pts_[i]) * t;
}

double Polyline::heading_at(double s) const noexcept {
  if (pts_.size() < 2) return 0.0;
  double sc = s;
  if (sc < 0.0) sc = 0.0;
  if (sc >= length()) sc = length() - 1e-9;
  return headings_[segment_index(sc)];
}

Polyline::Projection Polyline::project(Vec2 p, double hint_s) const noexcept {
  std::size_t lo = 0;
  std::size_t hi = pts_.size() - 1;
  if (hint_s >= 0.0 && pts_.size() > 8) {
    // Search a window of segments around the hint; widen if the result lands
    // on the window edge (the point moved further than expected).
    const std::size_t center = segment_index(std::min(hint_s, length()));
    const std::size_t window = 8;
    lo = center > window ? center - window : 0;
    hi = std::min(center + window + 1, pts_.size() - 1);
  }

  auto best = Projection{};
  double best_dist_sq = std::numeric_limits<double>::max();
  for (std::size_t i = lo; i < hi; ++i) {
    const Vec2 a = pts_[i];
    const Vec2 b = pts_[i + 1];
    const Vec2 ab = b - a;
    const double len_sq = ab.norm_sq();
    double t = len_sq > 0.0 ? (p - a).dot(ab) / len_sq : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const Vec2 c = a + ab * t;
    const double d_sq = (p - c).norm_sq();
    if (d_sq < best_dist_sq) {
      best_dist_sq = d_sq;
      best.closest = c;
      best.s = cum_[i] + std::sqrt(len_sq) * t;
      const Vec2 tangent = ab.normalized();
      best.lateral = tangent.cross(p - c);
    }
  }

  // If a hinted search hit a window boundary that is not also a polyline
  // boundary, the hint was stale; redo a full search. Happens at most on
  // teleports (never in the step loop).
  if (hint_s >= 0.0 && pts_.size() > 8) {
    const bool stale_low = lo > 0 && best.s <= cum_[lo] + 1e-9;
    const bool stale_high =
        hi < pts_.size() - 1 && best.s >= cum_[hi] - 1e-9;
    if (stale_low || stale_high) return project(p, -1.0);
  }
  return best;
}

}  // namespace scaa::geom
