#include "geom/polyline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace scaa::geom {

namespace {

/// Half-width (in segments) of the initial hinted search window. The step
/// loop moves a vehicle well under one segment per tick, so the first
/// window almost always contains the answer; stale hints widen from here.
/// (Narrower than the historical fixed +/-8 window: the interior-acceptance
/// retry in project() makes a miss a recoverable slow path rather than a
/// wrong answer, so the common case can afford to scan less.)
constexpr std::size_t kHintWindow = 4;

}  // namespace

Polyline::Polyline(std::vector<Vec2> points) : pts_(std::move(points)) {
  if (pts_.size() < 2)
    throw std::invalid_argument("Polyline: needs at least 2 points");
  const std::size_t nseg = pts_.size() - 1;
  cum_.resize(pts_.size());
  headings_.resize(nseg);
  x0_.resize(nseg);
  y0_.resize(nseg);
  dx_.resize(nseg);
  dy_.resize(nseg);
  inv_len_sq_.resize(nseg);
  len_.resize(nseg);
  tx_.resize(nseg);
  ty_.resize(nseg);

  cum_[0] = 0.0;
  for (std::size_t i = 0; i < nseg; ++i) {
    const Vec2 a = pts_[i];
    const Vec2 d = pts_[i + 1] - a;
    const double len_sq = d.norm_sq();
    const double len = std::sqrt(len_sq);
    if (len <= 1e-12)
      throw std::invalid_argument("Polyline: duplicate consecutive points");
    x0_[i] = a.x;
    y0_[i] = a.y;
    dx_[i] = d.x;
    dy_[i] = d.y;
    inv_len_sq_[i] = 1.0 / len_sq;
    len_[i] = len;
    tx_[i] = d.x / len;  // == d.normalized(), rounding included
    ty_[i] = d.y / len;
    // heading_at() is one of the hottest queries of the simulation loop
    // (road tracking for every vehicle, every tick); atan2 per call
    // dominated its cost before it was precomputed here.
    headings_[i] = std::atan2(d.y, d.x);
    cum_[i + 1] = cum_[i] + len;
  }
  inv_mean_seg_ = static_cast<double>(nseg) / length();
}

std::size_t Polyline::segment_index(double s) const noexcept {
  // Find i such that cum_[i] <= s < cum_[i+1] (same contract as the old
  // upper_bound search). The builder tessellates at near-uniform spacing,
  // so a scaled guess plus a short monotone walk replaces the binary
  // search; the walk terminates at the identical index.
  const std::size_t last = pts_.size() - 2;
  std::size_t i = 0;
  const double guess = s * inv_mean_seg_;
  if (guess >= static_cast<double>(last))
    i = last;
  else if (guess > 0.0)
    i = static_cast<std::size_t>(guess);
  while (i < last && cum_[i + 1] <= s) ++i;
  while (i > 0 && cum_[i] > s) --i;
  return i;
}

std::size_t Polyline::segment_index_near(double s,
                                         std::size_t hint) const noexcept {
  // Identical monotone walk to segment_index(), started from the hint
  // instead of the scaled guess: the walk converges to the unique i with
  // cum_[i] <= s < cum_[i+1] from any starting segment, so the two
  // functions always agree. Callers pass the segment of a projection whose
  // s is within a tick of this query, making the walk O(1).
  const std::size_t last = pts_.size() - 2;
  std::size_t i = hint > last ? last : hint;
  while (i < last && cum_[i + 1] <= s) ++i;
  while (i > 0 && cum_[i] > s) --i;
  return i;
}

Vec2 Polyline::position_at(double s) const noexcept {
  if (s <= 0.0) return pts_.front();
  if (s >= length()) return pts_.back();
  const std::size_t i = segment_index(s);
  const double seg_len = cum_[i + 1] - cum_[i];
  const double t = (s - cum_[i]) / seg_len;
  return pts_[i] + (pts_[i + 1] - pts_[i]) * t;
}

double Polyline::heading_at(double s) const noexcept {
  // Index clamp instead of arc-length clamp: s past the end must yield the
  // final segment's heading even when that segment is shorter than any
  // epsilon a `length() - eps` clamp would have used.
  if (s <= 0.0) return headings_.front();
  if (s >= length()) return headings_.back();
  return headings_[segment_index(s)];
}

double Polyline::heading_at(double s, std::size_t segment_hint) const noexcept {
  if (segment_hint == kNoSegmentHint) return heading_at(s);
  if (s <= 0.0) return headings_.front();
  if (s >= length()) return headings_.back();
  return headings_[segment_index_near(s, segment_hint)];
}

std::size_t Polyline::best_segment(Vec2 p, std::size_t lo,
                                   std::size_t hi) const noexcept {
  const double px = p.x;
  const double py = p.y;
  const double* const x0 = x0_.data();
  const double* const y0 = y0_.data();
  const double* const dx = dx_.data();
  const double* const dy = dy_.data();
  const double* const ils = inv_len_sq_.data();

  // Hinted windows are small (2 * kHintWindow + 1 segments on the first
  // try); the multi-lane setup and merge below would cost as much as the
  // scan itself, so they take a single branchless accumulator pair.
  if (hi - lo <= 2 * kHintWindow + 1) {
    double best_d = std::numeric_limits<double>::infinity();
    std::size_t best = lo;
    for (std::size_t k = lo; k < hi; ++k) {
      const double rx = px - x0[k];
      const double ry = py - y0[k];
      double t = (rx * dx[k] + ry * dy[k]) * ils[k];
      t = t < 0.0 ? 0.0 : t;
      t = t > 1.0 ? 1.0 : t;
      const double ex = rx - t * dx[k];
      const double ey = ry - t * dy[k];
      const double d = ex * ex + ey * ey;
      const bool better = d < best_d;
      best_d = better ? d : best_d;
      best = better ? k : best;
    }
    return best;
  }

  // Four independent accumulator lanes so the distance scan has no
  // loop-carried dependency: the compiler can keep all lanes in registers
  // and vectorize the branchless select. Candidate cost is two FMA-shaped
  // products for the foot parameter plus two for the error vector — no
  // division, sqrt, or branch.
  double best_d[4];
  std::size_t best_i[4];
  for (int l = 0; l < 4; ++l) {
    best_d[l] = std::numeric_limits<double>::infinity();
    best_i[l] = lo;
  }

  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const std::size_t k = i + static_cast<std::size_t>(l);
      const double rx = px - x0[k];
      const double ry = py - y0[k];
      double t = (rx * dx[k] + ry * dy[k]) * ils[k];
      t = t < 0.0 ? 0.0 : t;
      t = t > 1.0 ? 1.0 : t;
      const double ex = rx - t * dx[k];
      const double ey = ry - t * dy[k];
      const double d = ex * ex + ey * ey;
      const bool better = d < best_d[l];
      best_d[l] = better ? d : best_d[l];
      best_i[l] = better ? k : best_i[l];
    }
  }
  for (; i < hi; ++i) {
    const double rx = px - x0[i];
    const double ry = py - y0[i];
    double t = (rx * dx[i] + ry * dy[i]) * ils[i];
    t = t < 0.0 ? 0.0 : t;
    t = t > 1.0 ? 1.0 : t;
    const double ex = rx - t * dx[i];
    const double ey = ry - t * dy[i];
    const double d = ex * ex + ey * ey;
    const bool better = d < best_d[0];
    best_d[0] = better ? d : best_d[0];
    best_i[0] = better ? i : best_i[0];
  }

  // Merge lanes; exact ties resolve to the lowest segment index, matching
  // the historical first-wins scalar scan.
  std::size_t best = best_i[0];
  double best_dist = best_d[0];
  for (int l = 1; l < 4; ++l) {
    if (best_d[l] < best_dist ||
        (best_d[l] == best_dist && best_i[l] < best)) {
      best_dist = best_d[l];
      best = best_i[l];
    }
  }
  return best;
}

Polyline::Projection Polyline::finalize(Vec2 p, std::size_t i) const noexcept {
  // Same expressions, operand values, and evaluation order as the
  // historical per-candidate computation (dx_/dy_ hold pts_[i+1] - pts_[i]
  // exactly; len_[i] == sqrt(len_sq); {tx_,ty_} == (b - a).normalized()),
  // so the result is bit-identical to project_reference's winning
  // candidate while touching only the SoA arrays the scan just warmed.
  const double rx = p.x - x0_[i];
  const double ry = p.y - y0_[i];
  const double len_sq = dx_[i] * dx_[i] + dy_[i] * dy_[i];
  const double t =
      std::clamp((rx * dx_[i] + ry * dy_[i]) / len_sq, 0.0, 1.0);
  const double cx = x0_[i] + dx_[i] * t;
  const double cy = y0_[i] + dy_[i] * t;
  Projection out;
  out.closest = {cx, cy};
  out.s = cum_[i] + len_[i] * t;
  out.lateral = tx_[i] * (p.y - cy) - ty_[i] * (p.x - cx);
  out.segment = i;
  return out;
}

Polyline::Projection Polyline::project(Vec2 p, double hint_s) const noexcept {
  const std::size_t nseg = pts_.size() - 1;
  if (hint_s >= 0.0 && nseg > 2 * kHintWindow) {
    const std::size_t center = segment_index(hint_s);  // clamps past the end
    for (std::size_t w = kHintWindow;; w *= 4) {
      const std::size_t lo = center > w ? center - w : 0;
      const std::size_t hi = std::min(center + w + 1, nseg);
      const std::size_t best = best_segment(p, lo, hi);
      // Accept only when the best segment is interior to the searched
      // range: a best on the first or last searched segment — even one
      // that coincides with a polyline boundary — means a closer segment
      // may lie beyond the window (stale hint, teleported point, U-turn
      // geometry), so widen and retry. The full range always terminates.
      if ((lo == 0 && hi == nseg) || (best > lo && best + 1 < hi))
        return finalize(p, best);
    }
  }
  return finalize(p, best_segment(p, 0, nseg));
}

void Polyline::project_many(std::span<const Vec2> points,
                            std::span<const double> hints,
                            std::span<Projection> out) const noexcept {
  // A size mismatch is a caller bug: truncating silently would leave
  // default-constructed projections (s=0 at the road origin) that read as
  // valid Frenet data downstream.
  assert(points.size() == out.size());
  const std::size_t n = std::min(points.size(), out.size());
  for (std::size_t k = 0; k < n; ++k)
    out[k] = project(points[k], k < hints.size() ? hints[k] : -1.0);
}

Polyline::Projection Polyline::project_reference(Vec2 p) const noexcept {
  Projection best{};
  double best_dist_sq = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i + 1 < pts_.size(); ++i) {
    const Vec2 a = pts_[i];
    const Vec2 b = pts_[i + 1];
    const Vec2 ab = b - a;
    const double len_sq = ab.norm_sq();
    double t = len_sq > 0.0 ? (p - a).dot(ab) / len_sq : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const Vec2 c = a + ab * t;
    const double d_sq = (p - c).norm_sq();
    if (d_sq < best_dist_sq) {
      best_dist_sq = d_sq;
      best.closest = c;
      best.s = cum_[i] + std::sqrt(len_sq) * t;
      const Vec2 tangent = ab.normalized();
      best.lateral = tangent.cross(p - c);
      best.segment = i;
    }
  }
  return best;
}

}  // namespace scaa::geom
