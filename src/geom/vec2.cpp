#include "geom/vec2.hpp"

namespace scaa::geom {

Vec2 Vec2::normalized() const noexcept {
  const double n = norm();
  if (n == 0.0) return {0.0, 0.0};
  return {x / n, y / n};
}

Vec2 Vec2::rotated(double angle) const noexcept {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {x * c - y * s, x * s + y * c};
}

double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

Vec2 heading_vector(double theta) noexcept {
  return {std::cos(theta), std::sin(theta)};
}

Vec2 Pose::local_to_world(Vec2 local) const noexcept {
  return position + local.rotated(heading);
}

Vec2 Pose::world_to_local(Vec2 world) const noexcept {
  return (world - position).rotated(-heading);
}

}  // namespace scaa::geom
