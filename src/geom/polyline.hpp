#pragma once

/// @file polyline.hpp
/// Arc-length-parameterized polylines, the backbone of the road centerline.

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace scaa::geom {

/// A polyline with a precomputed cumulative arc-length table.
/// Supports sampling position/heading at any arc length s and projecting a
/// world point to the closest s (the key primitive for Frenet conversion).
///
/// Projection is the hottest geometry kernel of the simulation (it runs per
/// vehicle per tick), so the constructor precomputes a structure-of-arrays
/// mirror of the segments — origins, deltas, inverse squared lengths, unit
/// tangents — and project() scans it with multiplications only: no
/// distance(), sqrt, or division per candidate segment.
class Polyline {
 public:
  /// Construct from at least two points. Consecutive duplicate points are
  /// rejected (they would produce a zero-length segment), so every instance
  /// carries >= 1 segment of positive length.
  explicit Polyline(std::vector<Vec2> points);

  /// Total arc length.
  double length() const noexcept { return cum_.back(); }

  /// Number of points.
  std::size_t size() const noexcept { return pts_.size(); }

  /// Point at index @p i.
  Vec2 point(std::size_t i) const { return pts_.at(i); }

  /// Position at arc length @p s (clamped to [0, length]).
  Vec2 position_at(double s) const noexcept;

  /// Tangent heading (radians) at arc length @p s (clamped to the first /
  /// last segment's heading beyond the ends).
  double heading_at(double s) const noexcept;

  /// Sentinel for "no segment hint" in the hinted query overloads below.
  static constexpr std::size_t kNoSegmentHint = static_cast<std::size_t>(-1);

  /// heading_at(s), but seeded with a segment index near s — typically the
  /// segment of a recent projection. The hint is only a starting point for
  /// the same monotone walk segment_index() performs, so the result is
  /// bit-identical to heading_at(s) for ANY hint value (kNoSegmentHint
  /// falls back to the scaled-guess search).
  double heading_at(double s, std::size_t segment_hint) const noexcept;

  /// Projection result of a world point onto the polyline.
  struct Projection {
    double s = 0.0;         ///< arc length of the closest point
    double lateral = 0.0;   ///< signed offset; positive = left of tangent
    Vec2 closest;           ///< closest point on the polyline
    std::size_t segment = 0;  ///< index of the winning segment
  };

  /// Project @p p to the closest point on the polyline.
  ///
  /// @p hint_s speeds up the search by starting near a previous projection
  /// (pass a negative value for a full search). The search scans a window
  /// of segments around the hint and accepts the result only when the best
  /// segment is interior to the window; a best on the window's first/last
  /// searched segment means the true minimum may lie beyond it, so the
  /// window is widened and the scan retried until the best is interior or
  /// the window covers the whole polyline. The simulation steps vehicles a
  /// few centimetres per tick, so the hinted search is O(1) amortized and
  /// exact; even a teleported point recovers unless the geometry folds back
  /// on itself closer than the point's offset (pass hint_s < 0 there).
  Projection project(Vec2 p, double hint_s = -1.0) const noexcept;

  /// Project a batch of points in one structure-of-arrays sweep. For every
  /// k, out[k] is exactly project(points[k], hints[k]) (hints[k] = -1 when
  /// @p hints is empty) — the batched form exists so a caller with many
  /// concurrently moving points (all vehicles in a simulation tick) issues
  /// one call over the shared SoA segment arrays instead of N independent
  /// searches. Sizes of @p points and @p out must match.
  void project_many(std::span<const Vec2> points,
                    std::span<const double> hints,
                    std::span<Projection> out) const noexcept;

  /// Brute-force all-segments reference projection in the pre-SoA scalar
  /// arithmetic (one division per segment, sqrt per improvement). This is
  /// the oracle of the differential test suite and the baseline of the
  /// `project` benchmark rows; it is kept bit-compatible with the
  /// historical implementation, and project(p, -1) must match it to <= 1
  /// ulp in s and lateral.
  Projection project_reference(Vec2 p) const noexcept;

 private:
  std::size_t segment_index(double s) const noexcept;

  /// segment_index(s) seeded with a caller-supplied starting segment
  /// instead of the scaled guess. Runs the identical monotone walk, so it
  /// returns the identical index for any in-range starting point.
  std::size_t segment_index_near(double s, std::size_t hint) const noexcept;

  /// SoA distance scan over segments [lo, hi): returns the index of the
  /// segment whose clamped foot point is nearest to @p p (first such index
  /// on exact ties, like the historical scalar scan).
  std::size_t best_segment(Vec2 p, std::size_t lo,
                           std::size_t hi) const noexcept;

  /// Exact projection onto segment @p i, in arithmetic bit-identical to the
  /// historical per-candidate computation (division by the squared length,
  /// precomputed sqrt/tangent with identical rounding).
  Projection finalize(Vec2 p, std::size_t i) const noexcept;

  std::vector<Vec2> pts_;
  std::vector<double> cum_;       ///< cum_[i] = arc length at pts_[i]
  std::vector<double> headings_;  ///< per-segment tangent heading [rad]

  // SoA mirror of the segments, built once in the constructor. The scan
  // kernel touches x0/y0/dx/dy/inv_len_sq only; len/tx/ty serve the exact
  // finalize step (len[i] == sqrt(dx^2+dy^2) and {tx,ty} == normalized
  // delta, both bit-identical to computing them from pts_ on the fly).
  std::vector<double> x0_, y0_;        ///< segment origins
  std::vector<double> dx_, dy_;        ///< segment deltas (b - a)
  std::vector<double> inv_len_sq_;     ///< 1 / |b - a|^2
  std::vector<double> len_;            ///< |b - a|
  std::vector<double> tx_, ty_;        ///< unit tangents
  double inv_mean_seg_ = 0.0;          ///< segments / length (index guess)
};

}  // namespace scaa::geom
