#pragma once

/// @file polyline.hpp
/// Arc-length-parameterized polylines, the backbone of the road centerline.

#include <vector>

#include "geom/vec2.hpp"

namespace scaa::geom {

/// A polyline with a precomputed cumulative arc-length table.
/// Supports sampling position/heading at any arc length s and projecting a
/// world point to the closest s (the key primitive for Frenet conversion).
class Polyline {
 public:
  Polyline() = default;

  /// Construct from at least two points. Consecutive duplicate points are
  /// rejected (they would produce a zero-length segment).
  explicit Polyline(std::vector<Vec2> points);

  /// Total arc length.
  double length() const noexcept { return cum_.empty() ? 0.0 : cum_.back(); }

  /// Number of points.
  std::size_t size() const noexcept { return pts_.size(); }

  /// Point at index @p i.
  Vec2 point(std::size_t i) const { return pts_.at(i); }

  /// Position at arc length @p s (clamped to [0, length]).
  Vec2 position_at(double s) const noexcept;

  /// Tangent heading (radians) at arc length @p s.
  double heading_at(double s) const noexcept;

  /// Projection result of a world point onto the polyline.
  struct Projection {
    double s = 0.0;         ///< arc length of the closest point
    double lateral = 0.0;   ///< signed offset; positive = left of tangent
    Vec2 closest;           ///< closest point on the polyline
  };

  /// Project @p p to the closest point on the polyline.
  /// @p hint_s speeds up the search by starting near a previous projection
  /// (pass a negative value for a full search). The simulation steps vehicles
  /// a few centimetres per tick, so the hinted search is O(1) amortized.
  Projection project(Vec2 p, double hint_s = -1.0) const noexcept;

 private:
  std::size_t segment_index(double s) const noexcept;

  std::vector<Vec2> pts_;
  std::vector<double> cum_;       ///< cum_[i] = arc length at pts_[i]
  std::vector<double> headings_;  ///< per-segment tangent heading [rad]
  double inv_mean_seg_ = 0.0;     ///< segments / length (index guess)
};

}  // namespace scaa::geom
