#include "geom/frenet.hpp"

#include "util/math.hpp"

namespace scaa::geom {

FrenetPoint FrenetFrame::to_frenet(Vec2 world) noexcept {
  return accept(ref_->project(world, hint_s_));
}

Vec2 FrenetFrame::to_world(FrenetPoint f) const noexcept {
  const Vec2 base = ref_->position_at(f.s);
  const double heading = ref_->heading_at(f.s);
  // Left normal of the tangent.
  const Vec2 normal = heading_vector(heading).perp();
  return base + normal * f.d;
}

double FrenetFrame::curvature_at(double s, double ds) const noexcept {
  const double s0 = s - 0.5 * ds < 0.0 ? 0.0 : s - 0.5 * ds;
  const double s1 = s0 + ds > ref_->length() ? ref_->length() : s0 + ds;
  if (s1 - s0 < 1e-9) return 0.0;
  const double h0 = ref_->heading_at(s0);
  const double h1 = ref_->heading_at(s1);
  return math::wrap_angle(h1 - h0) / (s1 - s0);
}

double FrenetFrame::curvature_at(double s, double ds,
                                 std::size_t segment_hint) const noexcept {
  // Same clamp arithmetic and evaluation order as the unhinted overload;
  // only the segment search seed differs, and the seeded walk returns the
  // identical segment (see Polyline::segment_index_near).
  const double s0 = s - 0.5 * ds < 0.0 ? 0.0 : s - 0.5 * ds;
  const double s1 = s0 + ds > ref_->length() ? ref_->length() : s0 + ds;
  if (s1 - s0 < 1e-9) return 0.0;
  const double h0 = ref_->heading_at(s0, segment_hint);
  const double h1 = ref_->heading_at(s1, segment_hint);
  return math::wrap_angle(h1 - h0) / (s1 - s0);
}

}  // namespace scaa::geom
