#pragma once

/// @file frenet.hpp
/// Frenet (road-aligned) coordinates relative to a reference polyline.
///
/// Frenet frame: s is arc length along the reference line, d is the signed
/// lateral offset (positive to the left of the direction of travel). All
/// lane-keeping quantities (distance to lane edges, lane invasion) are
/// naturally expressed in this frame.

#include "geom/polyline.hpp"
#include "geom/vec2.hpp"

namespace scaa::geom {

/// A point expressed in Frenet coordinates.
struct FrenetPoint {
  double s = 0.0;  ///< arc length along the reference line [m]
  double d = 0.0;  ///< signed lateral offset, +left [m]
};

/// Stateful converter between world and Frenet coordinates.
/// Keeps the last projection as a hint, making per-tick conversions O(1).
class FrenetFrame {
 public:
  /// Reference line is borrowed; it must outlive the frame.
  explicit FrenetFrame(const Polyline& reference) : ref_(&reference) {}

  /// Convert a world position to Frenet coordinates.
  FrenetPoint to_frenet(Vec2 world) noexcept;

  /// Record an externally computed projection of this frame's tracked point
  /// — e.g. one lane of a batched Polyline::project_many sweep — as if
  /// to_frenet had produced it: updates the hint and returns the Frenet
  /// point. accept(reference().project(p, hint())) == to_frenet(p).
  FrenetPoint accept(const Polyline::Projection& proj) noexcept {
    hint_s_ = proj.s;
    hint_segment_ = proj.segment;
    return {proj.s, proj.lateral};
  }

  /// Search hint for the next projection: arc length of the last accepted
  /// projection, or negative before any (full search).
  double hint() const noexcept { return hint_s_; }

  /// Segment index of the last accepted projection, or
  /// Polyline::kNoSegmentHint before any. Seeds the hinted heading /
  /// curvature queries so per-tick road sampling skips the segment search.
  std::size_t hint_segment() const noexcept { return hint_segment_; }

  /// The reference line this frame projects onto.
  const Polyline& reference() const noexcept { return *ref_; }

  /// Convert Frenet coordinates to a world position.
  Vec2 to_world(FrenetPoint f) const noexcept;

  /// Heading of the reference line at arc length @p s.
  double reference_heading(double s) const noexcept {
    return ref_->heading_at(s);
  }

  /// Approximate signed curvature of the reference line at @p s
  /// (finite difference of heading; positive = left curve).
  double curvature_at(double s, double ds = 1.0) const noexcept;

  /// curvature_at(s, ds), seeded with a segment index near s. The hint
  /// only starts the segment walk, so the result is bit-identical to the
  /// unhinted overload for any hint (including Polyline::kNoSegmentHint).
  double curvature_at(double s, double ds,
                      std::size_t segment_hint) const noexcept;

  /// Total reference-line length.
  double length() const noexcept { return ref_->length(); }

 private:
  const Polyline* ref_;
  double hint_s_ = -1.0;
  std::size_t hint_segment_ = Polyline::kNoSegmentHint;
};

}  // namespace scaa::geom
