#pragma once

/// @file frame.hpp
/// CAN 2.0A data frames.

#include <array>
#include <cstdint>
#include <string>

namespace scaa::can {

/// A classic CAN data frame (11-bit identifier, up to 8 data bytes).
struct CanFrame {
  std::uint32_t id = 0;                  ///< 11-bit arbitration id
  std::uint8_t dlc = 8;                  ///< data length code (0..8)
  std::array<std::uint8_t, 8> data{};    ///< payload, data[0] first on wire
  std::uint8_t bus = 0;                  ///< bus index (powertrain = 0)

  bool operator==(const CanFrame&) const = default;
};

/// Render a frame like candump: "0E4#8/1A2B3C4D5E6F0708".
std::string to_string(const CanFrame& frame);

}  // namespace scaa::can
