#pragma once

/// @file database.hpp
/// The opendbc-like database for the simulated car.
///
/// Message ids and layouts follow the Honda convention the paper shows
/// (steering control at 0xE4, Fig. 4). Physical units on the wire:
///   STEERING_CONTROL.STEER_ANGLE_CMD   centi-degrees (signed, +left)
///   GAS_BRAKE_COMMAND.ACCEL_CMD        milli-m/s^2 (signed)
///   SPEED.SPEED                        centi-m/s
/// Every command message carries a Honda checksum + rolling counter.

#include <optional>
#include <vector>

#include "can/dbc.hpp"
#include "can/schema.hpp"

namespace scaa::can {

/// Well-known message ids of the simulated car.
namespace msg_id {
inline constexpr std::uint32_t kSteeringControl = 0xE4;
inline constexpr std::uint32_t kGasBrakeCommand = 0x1FA;
inline constexpr std::uint32_t kSpeed = 0x158;
inline constexpr std::uint32_t kSteerAngleSensor = 0x156;
inline constexpr std::uint32_t kAccHud = 0x30C;
}  // namespace msg_id

/// Signal names (single source of truth for packer/parser call sites).
namespace sig {
inline constexpr const char* kSteerAngleCmd = "STEER_ANGLE_CMD";
inline constexpr const char* kSteerEnabled = "STEER_ENABLED";
inline constexpr const char* kAccelCmd = "ACCEL_CMD";
inline constexpr const char* kBrakeRequest = "BRAKE_REQUEST";
inline constexpr const char* kSpeed = "SPEED";
inline constexpr const char* kSteerAngle = "STEER_ANGLE";
inline constexpr const char* kFcw = "FCW";
}  // namespace sig

/// In-memory DBC database: lookup by id or name, plus the precompiled
/// MessageSchema that the allocation-free codec paths resolve through.
class Database {
 public:
  explicit Database(std::vector<DbcMessage> messages);

  /// Message layout by CAN id; nullptr when unknown. O(1).
  const DbcMessage* by_id(std::uint32_t id) const noexcept;

  /// Message layout by name; nullptr when unknown.
  const DbcMessage* by_name(const std::string& name) const noexcept;

  /// All messages.
  const std::vector<DbcMessage>& messages() const noexcept { return msgs_; }

  /// The precompiled name/id lookup tables.
  const MessageSchema& schema() const noexcept { return schema_; }

  /// Message layout for a valid handle (no bounds check: handles come from
  /// this database's schema, resolved once at setup).
  const DbcMessage& message(MessageHandle h) const noexcept {
    return msgs_[h.index];
  }

  /// Signal layout for a valid handle.
  const DbcSignal& signal(SignalHandle h) const noexcept {
    return msgs_[h.message].signals[h.signal];
  }

  /// Resolve a message name to a handle; throws std::invalid_argument for
  /// unknown names (setup-time API: fail loudly, once).
  MessageHandle handle(const std::string& message_name) const;

  /// Resolve a (message, signal) name pair; throws std::invalid_argument
  /// when either is unknown.
  SignalHandle signal_handle(const std::string& message_name,
                             const std::string& signal_name) const;

  /// Build the database for the simulated car.
  static Database simulated_car();

 private:
  std::vector<DbcMessage> msgs_;
  MessageSchema schema_;
};

}  // namespace scaa::can
