#pragma once

/// @file bus.hpp
/// The in-vehicle CAN bus with tap and man-in-the-middle attachment points.
///
/// Frames sent by any node are delivered, in order, to every attached
/// receiver. Two attachment kinds model the paper's threat surface:
///  * taps: read-only observers (traffic monitoring / reverse engineering);
///  * interceptors: transforms applied to a frame before delivery — this is
///    where the attack engine rewrites actuator commands (OBD-II position,
///    after the ADAS safety checks, before the actuators).

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "can/frame.hpp"

namespace scaa::can {

/// Verdict a benign-fault hook returns for a frame offered to the bus
/// (fault/injector.hpp). kDrop discards the frame before interception;
/// kDelay queues it for `delay_ticks` ticks and delivers it from
/// pump_delayed(). Payload corruption is expressed by the hook mutating
/// the frame and returning kPass.
struct FaultVerdict {
  enum class Action : std::uint8_t { kPass, kDrop, kDelay };
  Action action = Action::kPass;
  std::uint32_t delay_ticks = 0;
};

/// Ordered, lossless CAN bus model.
///
/// Real CAN arbitration/latency is not modelled: at the 100 Hz control rate
/// the handful of frames per cycle always fits the bus, so arbitration has
/// no observable effect on the experiments. A benign-fault hook (set once,
/// gated per run) reintroduces physical loss deliberately: dropped/delayed
/// frames model an unreliable bus, not an attacker — they vanish before
/// interceptors and taps, exactly like frames lost on a real lossy bus.
class CanBus {
 public:
  using Tap = std::function<void(const CanFrame&)>;
  /// Interceptor may modify the frame, or drop it by returning false.
  using Interceptor = std::function<bool(CanFrame&)>;
  using Receiver = std::function<void(const CanFrame&)>;
  /// Benign-fault hook consulted by send() while fault_active(); may
  /// mutate the frame (corruption) before returning its verdict.
  using FaultHook = std::function<FaultVerdict(CanFrame&)>;

  /// Delayed frames the bus holds at once; past this, a delay verdict
  /// degrades to immediate delivery (counted in delay_overflows()).
  static constexpr std::size_t kDelayQueueCapacity = 64;

  /// Attach a read-only tap (sees frames post-interception, like a device
  /// listening on the OBD-II connector). Returns an attachment id.
  std::uint64_t attach_tap(Tap tap);

  /// Attach an interceptor; interceptors run in attachment order before
  /// delivery. Returns an attachment id.
  std::uint64_t attach_interceptor(Interceptor interceptor);

  /// Attach a receiving node. Returns an attachment id.
  std::uint64_t attach_receiver(Receiver receiver);

  /// Detach any attachment by id (idempotent).
  void detach(std::uint64_t id);

  /// Send a frame: consult the fault hook (when active), then run
  /// interceptors, then taps, then deliver to receivers. Returns false
  /// when the frame was dropped (by a fault or an interceptor); a delayed
  /// frame returns true — it is delivered later by pump_delayed().
  bool send(CanFrame frame);

  /// Install the benign-fault hook. Wiring, like taps: set once at World
  /// construction, it survives reset(); the per-run set_fault_active()
  /// gate decides whether send() consults it. Reserves the delay queue up
  /// front so steady-state fault handling never allocates.
  void set_fault_hook(FaultHook hook);

  /// Gate the fault hook for the current run (off for plan-free worlds:
  /// send() then takes exactly its historical path).
  void set_fault_active(bool active) noexcept { fault_active_ = active; }

  /// Deliver every queued frame whose delay expires at @p tick, in
  /// original send order, and record @p tick as the current tick for
  /// subsequent delay verdicts. Called once per tick (top of
  /// World::mid_tick, shared by step/WorldBatch/RealtimeExecutor).
  /// Redelivered frames skip the fault hook — a delayed frame is not
  /// re-dropped or re-delayed.
  void pump_delayed(std::uint64_t tick);

  /// Zero the frame counters and clear fault state (queued frames, tick,
  /// fault counters — queue capacity kept) for a new simulation.
  /// Attachments — taps, interceptors, receivers, the fault hook — and
  /// their ids stay; like the pub/sub bus, the wiring of a World survives
  /// reset() so a man-in-the-middle attached once keeps its position
  /// across simulations.
  void reset_counters() noexcept {
    sent_ = 0;
    dropped_ = 0;
    fault_dropped_ = 0;
    delay_overflows_ = 0;
    current_tick_ = 0;
    delayed_.clear();  // capacity kept: reset stays allocation-free
  }

  /// Total frames offered to the bus.
  std::uint64_t frames_sent() const noexcept { return sent_; }

  /// Frames dropped by interceptors.
  std::uint64_t frames_dropped() const noexcept { return dropped_; }

  /// Frames discarded by the fault hook (drop / bus-off verdicts).
  std::uint64_t frames_fault_dropped() const noexcept {
    return fault_dropped_;
  }

  /// Delay verdicts that degraded to immediate delivery because the queue
  /// was full (surfaced as suppressed kCanDelay faults in the summary).
  std::uint64_t delay_overflows() const noexcept { return delay_overflows_; }

  /// Frames currently held in the delay queue.
  std::size_t delayed_pending() const noexcept { return delayed_.size(); }

 private:
  /// Interceptors -> taps -> receivers (send() minus fault handling).
  bool dispatch(CanFrame frame);

  template <typename T>
  struct Entry {
    std::uint64_t id;
    T fn;
  };
  struct DelayedFrame {
    CanFrame frame;
    std::uint64_t due_tick;
  };
  std::vector<Entry<Tap>> taps_;
  std::vector<Entry<Interceptor>> interceptors_;
  std::vector<Entry<Receiver>> receivers_;
  FaultHook fault_hook_;
  std::vector<DelayedFrame> delayed_;
  std::uint64_t next_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t fault_dropped_ = 0;
  std::uint64_t delay_overflows_ = 0;
  std::uint64_t current_tick_ = 0;
  bool fault_active_ = false;
};

}  // namespace scaa::can
