#pragma once

/// @file bus.hpp
/// The in-vehicle CAN bus with tap and man-in-the-middle attachment points.
///
/// Frames sent by any node are delivered, in order, to every attached
/// receiver. Two attachment kinds model the paper's threat surface:
///  * taps: read-only observers (traffic monitoring / reverse engineering);
///  * interceptors: transforms applied to a frame before delivery — this is
///    where the attack engine rewrites actuator commands (OBD-II position,
///    after the ADAS safety checks, before the actuators).

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "can/frame.hpp"

namespace scaa::can {

/// Ordered, lossless CAN bus model.
///
/// Real CAN arbitration/latency is not modelled: at the 100 Hz control rate
/// the handful of frames per cycle always fits the bus, so arbitration has
/// no observable effect on the experiments.
class CanBus {
 public:
  using Tap = std::function<void(const CanFrame&)>;
  /// Interceptor may modify the frame, or drop it by returning false.
  using Interceptor = std::function<bool(CanFrame&)>;
  using Receiver = std::function<void(const CanFrame&)>;

  /// Attach a read-only tap (sees frames post-interception, like a device
  /// listening on the OBD-II connector). Returns an attachment id.
  std::uint64_t attach_tap(Tap tap);

  /// Attach an interceptor; interceptors run in attachment order before
  /// delivery. Returns an attachment id.
  std::uint64_t attach_interceptor(Interceptor interceptor);

  /// Attach a receiving node. Returns an attachment id.
  std::uint64_t attach_receiver(Receiver receiver);

  /// Detach any attachment by id (idempotent).
  void detach(std::uint64_t id);

  /// Send a frame: run interceptors, then taps, then deliver to receivers.
  /// Returns false when an interceptor dropped the frame.
  bool send(CanFrame frame);

  /// Zero the frame counters for a new simulation. Attachments — taps,
  /// interceptors, receivers — and their ids stay; like the pub/sub bus,
  /// the wiring of a World survives reset() so a man-in-the-middle
  /// attached once keeps its position across simulations.
  void reset_counters() noexcept {
    sent_ = 0;
    dropped_ = 0;
  }

  /// Total frames offered to the bus.
  std::uint64_t frames_sent() const noexcept { return sent_; }

  /// Frames dropped by interceptors.
  std::uint64_t frames_dropped() const noexcept { return dropped_; }

 private:
  template <typename T>
  struct Entry {
    std::uint64_t id;
    T fn;
  };
  std::vector<Entry<Tap>> taps_;
  std::vector<Entry<Interceptor>> interceptors_;
  std::vector<Entry<Receiver>> receivers_;
  std::uint64_t next_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace scaa::can
