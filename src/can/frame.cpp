#include "can/frame.hpp"

#include <iomanip>
#include <sstream>

namespace scaa::can {

std::string to_string(const CanFrame& frame) {
  std::ostringstream out;
  out << std::uppercase << std::hex << std::setfill('0') << std::setw(3)
      << frame.id << '#' << std::dec << static_cast<int>(frame.dlc) << '/';
  out << std::hex;
  for (int i = 0; i < frame.dlc; ++i)
    out << std::setw(2) << static_cast<int>(frame.data[static_cast<std::size_t>(i)]);
  return out.str();
}

}  // namespace scaa::can
