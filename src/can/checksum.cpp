#include "can/checksum.hpp"

namespace scaa::can {

std::uint8_t honda_checksum(std::uint32_t address,
                            const std::array<std::uint8_t, 8>& data,
                            int length) {
  // Nibble sum of the address and every payload nibble except the checksum
  // nibble itself (low nibble of the last byte); the result is the two's
  // complement low nibble, matching opendbc's honda implementation.
  unsigned sum = 0;
  std::uint32_t addr = address;
  while (addr > 0) {
    sum += addr & 0xFu;
    addr >>= 4;
  }
  for (int i = 0; i < length; ++i) {
    const std::uint8_t byte = data[static_cast<std::size_t>(i)];
    sum += byte >> 4;
    if (i != length - 1) sum += byte & 0xFu;
  }
  return static_cast<std::uint8_t>((8 - sum) & 0xFu);
}

void apply_honda_checksum(CanFrame& frame) {
  const int len = frame.dlc;
  if (len == 0) return;
  // honda_checksum never reads the checksum nibble itself, so there is no
  // need to clear it first.
  const std::uint8_t ck = honda_checksum(frame.id, frame.data, len);
  auto& last = frame.data[static_cast<std::size_t>(len - 1)];
  last = static_cast<std::uint8_t>((last & 0xF0) | ck);
}

std::uint8_t read_counter(const CanFrame& frame) {
  if (frame.dlc == 0) return 0;
  return (frame.data[static_cast<std::size_t>(frame.dlc - 1)] >> 4) & 0x3;
}

void write_counter(CanFrame& frame, std::uint8_t counter) {
  if (frame.dlc == 0) return;
  auto& last = frame.data[static_cast<std::size_t>(frame.dlc - 1)];
  last = static_cast<std::uint8_t>((last & 0xCF) | ((counter & 0x3u) << 4));
}

bool verify_honda_checksum(const CanFrame& frame) {
  if (frame.dlc == 0) return false;
  const auto stored = static_cast<std::uint8_t>(
      frame.data[static_cast<std::size_t>(frame.dlc - 1)] & 0x0F);
  // honda_checksum skips the checksum nibble, so the frame can be summed
  // in place (this runs for every frame the gateway/panda/defense see).
  return stored == honda_checksum(frame.id, frame.data, frame.dlc);
}

}  // namespace scaa::can
