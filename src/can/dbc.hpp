#pragma once

/// @file dbc.hpp
/// DBC-style signal and message definitions (the opendbc substrate).
///
/// A DbcSignal describes where a physical value lives inside a CAN payload:
/// start bit, width, byte order, signedness, scale and offset. This is the
/// information an attacker recovers from the public opendbc files to corrupt
/// a specific command (paper Fig. 4).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "can/frame.hpp"

namespace scaa::can {

/// Bit layout order within the payload.
enum class ByteOrder : std::uint8_t {
  kLittleEndian,  ///< Intel
  kBigEndian,     ///< Motorola (Honda DBCs use this)
};

/// One signal inside a message.
struct DbcSignal {
  std::string name;
  int start_bit = 0;   ///< DBC start bit (LSB pos for Intel, MSB for Motorola)
  int size = 8;        ///< width in bits (1..64)
  ByteOrder order = ByteOrder::kBigEndian;
  bool is_signed = false;
  double factor = 1.0;
  double offset = 0.0;

  /// Extract the raw (unscaled) value from a payload.
  std::int64_t extract_raw(const std::array<std::uint8_t, 8>& data) const;

  /// Insert a raw (unscaled) value into a payload.
  void insert_raw(std::array<std::uint8_t, 8>& data, std::int64_t raw) const;

  /// Physical value = raw * factor + offset.
  double decode(const std::array<std::uint8_t, 8>& data) const;

  /// Encode a physical value (rounded to the nearest raw step, clamped to
  /// the signal's representable range).
  void encode(std::array<std::uint8_t, 8>& data, double physical) const;

  /// Smallest/largest encodable physical value.
  double min_physical() const noexcept;
  double max_physical() const noexcept;
};

/// Checksum algorithms attached to messages.
enum class ChecksumKind : std::uint8_t {
  kNone,
  kHonda,  ///< 4-bit nibble-sum checksum + 2-bit rolling counter
};

/// One message (frame layout) in the database.
struct DbcMessage {
  std::string name;
  std::uint32_t id = 0;
  std::uint8_t size = 8;  ///< DLC
  ChecksumKind checksum = ChecksumKind::kNone;
  std::vector<DbcSignal> signals;

  /// Find a signal by name; nullptr when absent.
  const DbcSignal* find_signal(const std::string& signal_name) const noexcept;
};

}  // namespace scaa::can
