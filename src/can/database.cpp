#include "can/database.hpp"

#include <stdexcept>

namespace scaa::can {

Database::Database(std::vector<DbcMessage> messages)
    : msgs_(std::move(messages)) {
  for (const auto& m : msgs_) {
    if (m.size == 0 || m.size > 8)
      throw std::invalid_argument("Database: message size must be 1..8");
  }
  schema_ = MessageSchema(msgs_);
}

const DbcMessage* Database::by_id(std::uint32_t id) const noexcept {
  const MessageHandle h = schema_.message_by_id(id);
  return h.valid() ? &msgs_[h.index] : nullptr;
}

const DbcMessage* Database::by_name(const std::string& name) const noexcept {
  const MessageHandle h = schema_.message_by_name(name);
  return h.valid() ? &msgs_[h.index] : nullptr;
}

MessageHandle Database::handle(const std::string& message_name) const {
  const MessageHandle h = schema_.message_by_name(message_name);
  if (!h.valid())
    throw std::invalid_argument("Database: unknown message " + message_name);
  return h;
}

SignalHandle Database::signal_handle(const std::string& message_name,
                                     const std::string& signal_name) const {
  const SignalHandle h =
      schema_.signal_by_name(handle(message_name), signal_name);
  if (!h.valid())
    throw std::invalid_argument("Database: unknown signal " + signal_name +
                                " in " + message_name);
  return h;
}

Database Database::simulated_car() {
  std::vector<DbcMessage> msgs;

  // Steering command: signed centi-degree angle request + enable flag.
  {
    DbcMessage m;
    m.name = "STEERING_CONTROL";
    m.id = msg_id::kSteeringControl;
    m.size = 5;
    m.checksum = ChecksumKind::kHonda;
    m.signals = {
        DbcSignal{sig::kSteerAngleCmd, 7, 16, ByteOrder::kBigEndian, true,
                  0.01, 0.0},
        DbcSignal{sig::kSteerEnabled, 23, 1, ByteOrder::kBigEndian, false,
                  1.0, 0.0},
    };
    msgs.push_back(std::move(m));
  }

  // Longitudinal command: signed milli-m/s^2 acceleration request.
  {
    DbcMessage m;
    m.name = "GAS_BRAKE_COMMAND";
    m.id = msg_id::kGasBrakeCommand;
    m.size = 6;
    m.checksum = ChecksumKind::kHonda;
    m.signals = {
        DbcSignal{sig::kAccelCmd, 7, 16, ByteOrder::kBigEndian, true, 0.001,
                  0.0},
        DbcSignal{sig::kBrakeRequest, 23, 1, ByteOrder::kBigEndian, false,
                  1.0, 0.0},
    };
    msgs.push_back(std::move(m));
  }

  // Wheel-speed derived vehicle speed (sensor->ADAS direction).
  {
    DbcMessage m;
    m.name = "SPEED";
    m.id = msg_id::kSpeed;
    m.size = 4;
    m.checksum = ChecksumKind::kHonda;
    m.signals = {
        DbcSignal{sig::kSpeed, 7, 16, ByteOrder::kBigEndian, false, 0.01,
                  0.0},
    };
    msgs.push_back(std::move(m));
  }

  // Steering angle sensor.
  {
    DbcMessage m;
    m.name = "STEER_ANGLE_SENSOR";
    m.id = msg_id::kSteerAngleSensor;
    m.size = 4;
    m.checksum = ChecksumKind::kHonda;
    m.signals = {
        DbcSignal{sig::kSteerAngle, 7, 16, ByteOrder::kBigEndian, true, 0.01,
                  0.0},
    };
    msgs.push_back(std::move(m));
  }

  // HUD message carrying the FCW flag (ADAS->dash direction).
  {
    DbcMessage m;
    m.name = "ACC_HUD";
    m.id = msg_id::kAccHud;
    m.size = 3;
    m.checksum = ChecksumKind::kHonda;
    m.signals = {
        DbcSignal{sig::kFcw, 7, 1, ByteOrder::kBigEndian, false, 1.0, 0.0},
    };
    msgs.push_back(std::move(m));
  }

  return Database(std::move(msgs));
}

}  // namespace scaa::can
