#include "can/dbc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scaa::can {

namespace {

/// Map a Motorola (big-endian) DBC start bit + bit index within the signal
/// to an absolute bit position in the 64-bit payload viewed as data[0]
/// being the most significant byte on the wire.
///
/// We implement both orders via a common "bit address" walk: for Intel the
/// signal occupies ascending bit addresses from start_bit; for Motorola the
/// walk descends within a byte then jumps to the next byte (the classic
/// sawtooth).
int next_bit_motorola(int bit) {
  // bit is an absolute position: byte = bit / 8, intra = bit % 8.
  const int byte = bit / 8;
  const int intra = bit % 8;
  if (intra == 0) return (byte + 1) * 8 + 7;  // wrap to MSB of next byte
  return byte * 8 + intra - 1;
}

}  // namespace

std::int64_t DbcSignal::extract_raw(
    const std::array<std::uint8_t, 8>& data) const {
  std::uint64_t raw = 0;
  int bit = start_bit;
  for (int i = 0; i < size; ++i) {
    const int byte = bit / 8;
    const int intra = bit % 8;
    const std::uint64_t b =
        (data[static_cast<std::size_t>(byte)] >> intra) & 1u;
    if (order == ByteOrder::kLittleEndian) {
      raw |= b << i;
      ++bit;
    } else {
      raw = (raw << 1) | b;
      bit = next_bit_motorola(bit);
    }
  }
  if (is_signed && size < 64 && (raw & (1ull << (size - 1)))) {
    // Sign-extend.
    raw |= ~((1ull << size) - 1);
  }
  return static_cast<std::int64_t>(raw);
}

void DbcSignal::insert_raw(std::array<std::uint8_t, 8>& data,
                           std::int64_t raw_signed) const {
  auto raw = static_cast<std::uint64_t>(raw_signed);
  if (size < 64) raw &= (1ull << size) - 1;
  int bit = start_bit;
  for (int i = 0; i < size; ++i) {
    const int byte = bit / 8;
    const int intra = bit % 8;
    std::uint64_t b = 0;
    if (order == ByteOrder::kLittleEndian) {
      b = (raw >> i) & 1u;
      ++bit;
    } else {
      b = (raw >> (size - 1 - i)) & 1u;
    }
    auto& target = data[static_cast<std::size_t>(byte)];
    target = static_cast<std::uint8_t>(
        (target & ~(1u << intra)) | (static_cast<unsigned>(b) << intra));
    if (order == ByteOrder::kBigEndian) bit = next_bit_motorola(bit);
  }
}

double DbcSignal::decode(const std::array<std::uint8_t, 8>& data) const {
  return static_cast<double>(extract_raw(data)) * factor + offset;
}

namespace {

/// Raw-range endpoints of a signal (min, max) before scaling.
std::pair<double, double> raw_range(const DbcSignal& sig) noexcept {
  if (sig.is_signed) {
    const double hi =
        std::ldexp(1.0, sig.size - 1) - 1.0;  // 2^(n-1) - 1
    return {-std::ldexp(1.0, sig.size - 1), hi};
  }
  return {0.0, std::ldexp(1.0, sig.size) - 1.0};  // 2^n - 1
}

}  // namespace

double DbcSignal::min_physical() const noexcept {
  const auto [lo, hi] = raw_range(*this);
  return std::min(lo * factor + offset, hi * factor + offset);
}

double DbcSignal::max_physical() const noexcept {
  const auto [lo, hi] = raw_range(*this);
  return std::max(lo * factor + offset, hi * factor + offset);
}

void DbcSignal::encode(std::array<std::uint8_t, 8>& data,
                       double physical) const {
  const double clamped =
      std::clamp(physical, min_physical(), max_physical());
  const auto raw =
      static_cast<std::int64_t>(std::llround((clamped - offset) / factor));
  insert_raw(data, raw);
}

const DbcSignal* DbcMessage::find_signal(
    const std::string& signal_name) const noexcept {
  for (const auto& sig : signals)
    if (sig.name == signal_name) return &sig;
  return nullptr;
}

}  // namespace scaa::can
