#include "can/dbc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scaa::can {

namespace {

/// Map a Motorola (big-endian) DBC start bit + bit index within the signal
/// to an absolute bit position in the 64-bit payload viewed as data[0]
/// being the most significant byte on the wire.
///
/// We implement both orders via a common "bit address" walk: for Intel the
/// signal occupies ascending bit addresses from start_bit; for Motorola the
/// walk descends within a byte then jumps to the next byte (the classic
/// sawtooth).
int next_bit_motorola(int bit) {
  // bit is an absolute position: byte = bit / 8, intra = bit % 8.
  const int byte = bit / 8;
  const int intra = bit % 8;
  if (intra == 0) return (byte + 1) * 8 + 7;  // wrap to MSB of next byte
  return byte * 8 + intra - 1;
}

/// Payload as one 64-bit word, data[0] most significant (the wire order a
/// Motorola signal descends through). Compilers reduce this to a single
/// byte-swapped load.
std::uint64_t load_be(const std::array<std::uint8_t, 8>& d) noexcept {
  std::uint64_t w = 0;
  for (int i = 0; i < 8; ++i) w = (w << 8) | d[static_cast<std::size_t>(i)];
  return w;
}

void store_be(std::array<std::uint8_t, 8>& d, std::uint64_t w) noexcept {
  for (int i = 7; i >= 0; --i) {
    d[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(w & 0xFF);
    w >>= 8;
  }
}

/// Payload as one 64-bit word, data[0] least significant (the Intel view).
std::uint64_t load_le(const std::array<std::uint8_t, 8>& d) noexcept {
  std::uint64_t w = 0;
  for (int i = 7; i >= 0; --i) w = (w << 8) | d[static_cast<std::size_t>(i)];
  return w;
}

void store_le(std::array<std::uint8_t, 8>& d, std::uint64_t w) noexcept {
  for (int i = 0; i < 8; ++i) {
    d[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(w & 0xFF);
    w >>= 8;
  }
}

std::uint64_t mask_for(int size) noexcept {
  return size >= 64 ? ~0ull : (1ull << size) - 1;
}

/// Right-shift that places the signal's bits at the bottom of the 64-bit
/// word, or a negative value when the declared layout runs off the payload
/// (then the callers fall back to the historical bit walk).
int shift_for(const DbcSignal& sig) noexcept {
  if (sig.order == ByteOrder::kLittleEndian) {
    // Intel: bits [start_bit, start_bit + size - 1] of the LE word.
    return 64 - sig.start_bit - sig.size >= 0 ? sig.start_bit : -1;
  }
  // Motorola: the sawtooth from start_bit descends significance in the BE
  // word one bit at a time, so the signal is the contiguous run starting
  // (distance from the word's MSB) at 8*byte + (7 - intra).
  const int from_msb =
      (sig.start_bit / 8) * 8 + 7 - (sig.start_bit % 8);
  return 64 - from_msb - sig.size;
}

}  // namespace

std::int64_t DbcSignal::extract_raw(
    const std::array<std::uint8_t, 8>& data) const {
  std::uint64_t raw = 0;
  const int shift = shift_for(*this);
  if (shift >= 0) {
    const std::uint64_t word = order == ByteOrder::kLittleEndian
                                   ? load_le(data)
                                   : load_be(data);
    raw = (word >> shift) & mask_for(size);
  } else {
    // Degenerate declared layout: keep the exact historical bit walk.
    int bit = start_bit;
    for (int i = 0; i < size; ++i) {
      const int byte = bit / 8;
      const int intra = bit % 8;
      const std::uint64_t b =
          (data[static_cast<std::size_t>(byte & 7)] >> intra) & 1u;
      if (order == ByteOrder::kLittleEndian) {
        raw |= b << i;
        ++bit;
      } else {
        raw = (raw << 1) | b;
        bit = next_bit_motorola(bit);
      }
    }
  }
  if (is_signed && size < 64 && (raw & (1ull << (size - 1)))) {
    // Sign-extend.
    raw |= ~((1ull << size) - 1);
  }
  return static_cast<std::int64_t>(raw);
}

void DbcSignal::insert_raw(std::array<std::uint8_t, 8>& data,
                           std::int64_t raw_signed) const {
  auto raw = static_cast<std::uint64_t>(raw_signed);
  if (size < 64) raw &= (1ull << size) - 1;
  const int shift = shift_for(*this);
  if (shift >= 0) {
    const std::uint64_t mask = mask_for(size) << shift;
    if (order == ByteOrder::kLittleEndian) {
      store_le(data, (load_le(data) & ~mask) | (raw << shift));
    } else {
      store_be(data, (load_be(data) & ~mask) | (raw << shift));
    }
    return;
  }
  // Degenerate declared layout: keep the exact historical bit walk.
  int bit = start_bit;
  for (int i = 0; i < size; ++i) {
    const int byte = bit / 8;
    const int intra = bit % 8;
    std::uint64_t b = 0;
    if (order == ByteOrder::kLittleEndian) {
      b = (raw >> i) & 1u;
      ++bit;
    } else {
      b = (raw >> (size - 1 - i)) & 1u;
    }
    auto& target = data[static_cast<std::size_t>(byte & 7)];
    target = static_cast<std::uint8_t>(
        (target & ~(1u << intra)) | (static_cast<unsigned>(b) << intra));
    if (order == ByteOrder::kBigEndian) bit = next_bit_motorola(bit);
  }
}

double DbcSignal::decode(const std::array<std::uint8_t, 8>& data) const {
  return static_cast<double>(extract_raw(data)) * factor + offset;
}

namespace {

/// Raw-range endpoints of a signal (min, max) before scaling. Computed
/// with integer shifts (no libm): encode() needs this on the hot path.
std::pair<double, double> raw_range(const DbcSignal& sig) noexcept {
  if (sig.is_signed) {
    const auto half = 1ull << (sig.size - 1);  // 2^(n-1)
    return {-static_cast<double>(half), static_cast<double>(half - 1)};
  }
  if (sig.size >= 64) return {0.0, 18446744073709551615.0};  // 2^64 - 1
  return {0.0, static_cast<double>((1ull << sig.size) - 1)};  // 2^n - 1
}

}  // namespace

double DbcSignal::min_physical() const noexcept {
  const auto [lo, hi] = raw_range(*this);
  return std::min(lo * factor + offset, hi * factor + offset);
}

double DbcSignal::max_physical() const noexcept {
  const auto [lo, hi] = raw_range(*this);
  return std::max(lo * factor + offset, hi * factor + offset);
}

void DbcSignal::encode(std::array<std::uint8_t, 8>& data,
                       double physical) const {
  // Clamp in raw space: identical result to clamping the physical value
  // against min/max_physical() (the division maps the physical range onto
  // the raw range monotonically for either factor sign), but without the
  // two ldexp-based range constructions per call — encode runs twice per
  // 10 ms simulation tick.
  const auto [raw_lo, raw_hi] = raw_range(*this);
  const double scaled =
      std::clamp((physical - offset) / factor, raw_lo, raw_hi);
  insert_raw(data, static_cast<std::int64_t>(std::llround(scaled)));
}

const DbcSignal* DbcMessage::find_signal(
    const std::string& signal_name) const noexcept {
  for (const auto& sig : signals)
    if (sig.name == signal_name) return &sig;
  return nullptr;
}

}  // namespace scaa::can
