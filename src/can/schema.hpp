#pragma once

/// @file schema.hpp
/// Precompiled codec handles: message and signal names resolved ONCE at
/// setup time to dense indices, so the per-frame hot path (pack/parse at
/// 100 Hz x thousands of Monte-Carlo simulations) never compares strings,
/// walks the message list, or touches the heap.
///
/// A MessageHandle is the index of a message inside its Database; a
/// SignalHandle additionally carries the index of a signal inside that
/// message's signal list. The MessageSchema owns the lookup tables
/// (id -> index, name -> index) and is a self-contained value type, so a
/// Database can be copied or moved without invalidating its schema.

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "can/dbc.hpp"

namespace scaa::can {

/// Dense index of a message within its Database. Invalid handles compare
/// false via valid(); using one with the codec is a precondition violation.
struct MessageHandle {
  static constexpr std::uint16_t kInvalid = 0xFFFF;
  std::uint16_t index = kInvalid;

  bool valid() const noexcept { return index != kInvalid; }
  bool operator==(const MessageHandle&) const = default;
};

/// Dense (message, signal) index pair within a Database.
struct SignalHandle {
  std::uint16_t message = MessageHandle::kInvalid;
  std::uint16_t signal = 0;

  bool valid() const noexcept { return message != MessageHandle::kInvalid; }
  bool operator==(const SignalHandle&) const = default;
};

/// Precompiled lookup tables over one message list. Construction is
/// O(total signals * log); every query afterwards is O(1) for ids (direct
/// table over the 11-bit standard id space, sorted overflow for anything
/// larger) and O(log n) for names — and none of them allocate.
class MessageSchema {
 public:
  MessageSchema() = default;
  explicit MessageSchema(const std::vector<DbcMessage>& messages);

  std::size_t message_count() const noexcept { return signal_counts_.size(); }

  /// Largest signal count of any message (sizes codec scratch buffers).
  std::size_t max_signals_per_message() const noexcept { return max_signals_; }

  /// Signals in message @p msg; 0 for invalid handles.
  std::size_t signal_count(MessageHandle msg) const noexcept;

  /// Message handle by CAN id; invalid handle when unknown. O(1).
  MessageHandle message_by_id(std::uint32_t id) const noexcept;

  /// Message handle by name; invalid handle when unknown.
  MessageHandle message_by_name(std::string_view name) const noexcept;

  /// Signal handle by name within @p msg; invalid handle when either the
  /// message handle is invalid or the signal name is unknown.
  SignalHandle signal_by_name(MessageHandle msg,
                              std::string_view name) const noexcept;

 private:
  /// Standard CAN uses 11-bit ids; everything in that range resolves
  /// through one flat array. Extended ids fall back to binary search.
  static constexpr std::uint32_t kDirectIds = 2048;

  std::vector<std::int32_t> id_direct_;  ///< id -> message index; -1 unknown
  std::vector<std::pair<std::uint32_t, std::uint16_t>> id_overflow_;
  std::vector<std::pair<std::string, std::uint16_t>> names_;  ///< sorted
  std::vector<std::uint16_t> signal_counts_;   ///< per message index
  std::vector<std::uint32_t> signal_offsets_;  ///< message -> signal_names_
  /// Per-message runs of (signal name, signal index), each run sorted.
  std::vector<std::pair<std::string, std::uint16_t>> signal_names_;
  std::size_t max_signals_ = 0;
};

}  // namespace scaa::can
