#include "can/dbc_text.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace scaa::can {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::invalid_argument("parse_dbc: line " + std::to_string(line_no) +
                              ": " + why);
}

std::string trimmed(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::vector<DbcMessage> parse_dbc(const std::string& text,
                                  bool tag_honda_checksums) {
  std::vector<DbcMessage> messages;
  std::istringstream stream(text);
  std::string raw;
  std::size_t line_no = 0;

  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = trimmed(raw);
    if (line.empty()) continue;

    if (line.rfind("BO_ ", 0) == 0) {
      unsigned long id = 0;
      char name[128] = {0};
      unsigned size = 0;
      // BO_ 228 STEERING_CONTROL: 5 EON
      if (std::sscanf(line.c_str(), "BO_ %lu %127[^:]: %u", &id, name,
                      &size) != 3)
        fail(line_no, "malformed BO_ line");
      DbcMessage m;
      m.id = static_cast<std::uint32_t>(id);
      m.name = trimmed(name);
      if (size == 0 || size > 8) fail(line_no, "message size must be 1..8");
      m.size = static_cast<std::uint8_t>(size);
      if (tag_honda_checksums) m.checksum = ChecksumKind::kHonda;
      messages.push_back(std::move(m));
      continue;
    }

    if (line.rfind("SG_ ", 0) == 0) {
      if (messages.empty()) fail(line_no, "SG_ before any BO_");
      char name[128] = {0};
      int start = 0, len = 0, endian = 0;
      char sign = '+';
      double factor = 1.0, offset = 0.0;
      // SG_ STEER_ANGLE_CMD : 7|16@0- (0.01,0) [-327|327] "deg" XXX
      if (std::sscanf(line.c_str(),
                      "SG_ %127s : %d|%d@%d%c (%lf,%lf)", name, &start,
                      &len, &endian, &sign, &factor, &offset) != 7)
        fail(line_no, "malformed SG_ line");
      if (len < 1 || len > 64) fail(line_no, "signal length must be 1..64");
      if (endian != 0 && endian != 1) fail(line_no, "endianness must be 0/1");
      if (sign != '+' && sign != '-') fail(line_no, "sign must be + or -");
      if (factor == 0.0) fail(line_no, "factor must be nonzero");
      DbcSignal sig;
      sig.name = name;
      sig.start_bit = start;
      sig.size = len;
      sig.order = endian == 1 ? ByteOrder::kLittleEndian
                              : ByteOrder::kBigEndian;
      sig.is_signed = sign == '-';
      sig.factor = factor;
      sig.offset = offset;
      messages.back().signals.push_back(std::move(sig));
      continue;
    }

    // Everything else (VERSION, NS_, BS_, BU_, CM_, BA_*, VAL_...) is
    // ignored, as real tooling does for unknown sections.
  }
  return messages;
}

std::string write_dbc(const std::vector<DbcMessage>& messages) {
  std::ostringstream out;
  out << "VERSION \"\"\n\nBS_:\n\nBU_: EON CAR\n\n";
  for (const auto& m : messages) {
    out << "BO_ " << m.id << ' ' << m.name << ": "
        << static_cast<unsigned>(m.size) << " EON\n";
    for (const auto& s : m.signals) {
      out << " SG_ " << s.name << " : " << s.start_bit << '|' << s.size
          << '@' << (s.order == ByteOrder::kLittleEndian ? 1 : 0)
          << (s.is_signed ? '-' : '+') << " (" << s.factor << ','
          << s.offset << ") [" << s.min_physical() << '|'
          << s.max_physical() << "] \"\" CAR\n";
    }
    out << '\n';
  }
  return out.str();
}

std::string simulated_car_dbc() {
  return write_dbc(Database::simulated_car().messages());
}

}  // namespace scaa::can
