#include "can/bus.hpp"

#include <algorithm>

namespace scaa::can {

std::uint64_t CanBus::attach_tap(Tap tap) {
  const auto id = next_id_++;
  taps_.push_back({id, std::move(tap)});
  return id;
}

std::uint64_t CanBus::attach_interceptor(Interceptor interceptor) {
  const auto id = next_id_++;
  interceptors_.push_back({id, std::move(interceptor)});
  return id;
}

std::uint64_t CanBus::attach_receiver(Receiver receiver) {
  const auto id = next_id_++;
  receivers_.push_back({id, std::move(receiver)});
  return id;
}

void CanBus::detach(std::uint64_t id) {
  const auto erase_id = [id](auto& container) {
    container.erase(
        std::remove_if(container.begin(), container.end(),
                       [id](const auto& e) { return e.id == id; }),
        container.end());
  };
  erase_id(taps_);
  erase_id(interceptors_);
  erase_id(receivers_);
}

void CanBus::set_fault_hook(FaultHook hook) {
  fault_hook_ = std::move(hook);
  delayed_.reserve(kDelayQueueCapacity);
}

bool CanBus::send(CanFrame frame) {
  ++sent_;
  if (fault_active_ && fault_hook_) {
    const FaultVerdict verdict = fault_hook_(frame);
    if (verdict.action == FaultVerdict::Action::kDrop) {
      ++fault_dropped_;
      return false;  // physical loss: interceptors and taps never see it
    }
    if (verdict.action == FaultVerdict::Action::kDelay) {
      if (delayed_.size() < kDelayQueueCapacity) {
        delayed_.push_back({frame, current_tick_ + verdict.delay_ticks});
        return true;  // accepted; pump_delayed() will deliver it
      }
      ++delay_overflows_;  // queue full: degrade to immediate delivery
    }
  }
  return dispatch(frame);
}

void CanBus::pump_delayed(std::uint64_t tick) {
  current_tick_ = tick;
  if (delayed_.empty()) return;
  // Deliver due frames in send order. dispatch() may trigger new sends
  // (which can append to delayed_ with a strictly later due tick), so the
  // loop re-reads size() and copies each frame out before dispatching.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < delayed_.size(); ++i) {
    if (delayed_[i].due_tick <= tick) {
      const CanFrame frame = delayed_[i].frame;
      dispatch(frame);
    } else {
      if (kept != i) delayed_[kept] = delayed_[i];
      ++kept;
    }
  }
  delayed_.resize(kept);
}

bool CanBus::dispatch(CanFrame frame) {
  for (const auto& entry : interceptors_) {
    if (!entry.fn(frame)) {
      ++dropped_;
      return false;
    }
  }
  for (const auto& entry : taps_) entry.fn(frame);
  for (const auto& entry : receivers_) entry.fn(frame);
  return true;
}

}  // namespace scaa::can
