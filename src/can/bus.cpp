#include "can/bus.hpp"

#include <algorithm>

namespace scaa::can {

std::uint64_t CanBus::attach_tap(Tap tap) {
  const auto id = next_id_++;
  taps_.push_back({id, std::move(tap)});
  return id;
}

std::uint64_t CanBus::attach_interceptor(Interceptor interceptor) {
  const auto id = next_id_++;
  interceptors_.push_back({id, std::move(interceptor)});
  return id;
}

std::uint64_t CanBus::attach_receiver(Receiver receiver) {
  const auto id = next_id_++;
  receivers_.push_back({id, std::move(receiver)});
  return id;
}

void CanBus::detach(std::uint64_t id) {
  const auto erase_id = [id](auto& container) {
    container.erase(
        std::remove_if(container.begin(), container.end(),
                       [id](const auto& e) { return e.id == id; }),
        container.end());
  };
  erase_id(taps_);
  erase_id(interceptors_);
  erase_id(receivers_);
}

bool CanBus::send(CanFrame frame) {
  ++sent_;
  for (const auto& entry : interceptors_) {
    if (!entry.fn(frame)) {
      ++dropped_;
      return false;
    }
  }
  for (const auto& entry : taps_) entry.fn(frame);
  for (const auto& entry : receivers_) entry.fn(frame);
  return true;
}

}  // namespace scaa::can
