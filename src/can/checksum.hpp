#pragma once

/// @file checksum.hpp
/// Message integrity fields: Honda-style 4-bit checksum and 2-bit counter.
///
/// The attacker must recompute these after corrupting a command, otherwise
/// the receiving ECU discards the frame (paper §III-C, Fig. 4). Layout
/// mirrors Honda DBCs: the last payload byte carries the rolling counter in
/// bits [5:4] and the checksum nibble in bits [3:0].

#include <array>
#include <cstdint>

#include "can/frame.hpp"

namespace scaa::can {

/// Compute the Honda 4-bit checksum over address and payload.
/// The checksum nibble itself (low nibble of the last byte) is excluded.
std::uint8_t honda_checksum(std::uint32_t address,
                            const std::array<std::uint8_t, 8>& data,
                            int length);

/// Write checksum (and leave the counter bits untouched) into the frame.
void apply_honda_checksum(CanFrame& frame);

/// Read the counter field (bits [5:4] of the last byte).
std::uint8_t read_counter(const CanFrame& frame);

/// Set the counter field.
void write_counter(CanFrame& frame, std::uint8_t counter);

/// Validate the checksum of a frame.
bool verify_honda_checksum(const CanFrame& frame);

}  // namespace scaa::can
