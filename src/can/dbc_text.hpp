#pragma once

/// @file dbc_text.hpp
/// Parser and writer for the (subset of the) Vector DBC text format that
/// opendbc uses — the artefact the paper's attacker reverse-engineers to
/// find where a command lives inside a frame.
///
/// Supported grammar (one message block):
///   BO_ <id> <NAME>: <size> <sender>
///    SG_ <NAME> : <start>|<len>@<endianness><sign> (<factor>,<offset>)
///        [<min>|<max>] "<unit>" <receivers>
/// where endianness is 1 = little endian (Intel), 0 = big endian
/// (Motorola), and sign is + (unsigned) or - (signed). Comment lines (CM_),
/// attribute lines (BA_*) and the preamble are skipped.

#include <string>
#include <vector>

#include "can/database.hpp"

namespace scaa::can {

/// Parse DBC text into message layouts. Throws std::invalid_argument with
/// a line number on malformed input. Checksum kinds are not part of the
/// DBC grammar; messages whose last signal region matches the Honda
/// checksum convention can be tagged afterwards via @p tag_honda_checksums
/// (applies to every parsed message).
std::vector<DbcMessage> parse_dbc(const std::string& text,
                                  bool tag_honda_checksums = false);

/// Render message layouts as DBC text (round-trips through parse_dbc).
std::string write_dbc(const std::vector<DbcMessage>& messages);

/// The simulated car's database as DBC text (matches
/// Database::simulated_car()).
std::string simulated_car_dbc();

}  // namespace scaa::can
