#include "can/schema.hpp"

#include <algorithm>

namespace scaa::can {

MessageSchema::MessageSchema(const std::vector<DbcMessage>& messages) {
  id_direct_.assign(kDirectIds, -1);
  signal_counts_.reserve(messages.size());
  signal_offsets_.reserve(messages.size());
  names_.reserve(messages.size());

  for (std::size_t m = 0; m < messages.size(); ++m) {
    const auto& msg = messages[m];
    const auto index = static_cast<std::uint16_t>(m);
    // First declaration wins on duplicates, matching the historical
    // linear-scan lookup (sorted (key, index) pairs below give the same).
    if (msg.id < kDirectIds) {
      if (id_direct_[msg.id] < 0)
        id_direct_[msg.id] = static_cast<std::int32_t>(m);
    } else {
      id_overflow_.emplace_back(msg.id, index);
    }
    names_.emplace_back(msg.name, index);

    signal_offsets_.push_back(static_cast<std::uint32_t>(signal_names_.size()));
    signal_counts_.push_back(static_cast<std::uint16_t>(msg.signals.size()));
    max_signals_ = std::max(max_signals_, msg.signals.size());
    const std::size_t run_begin = signal_names_.size();
    for (std::size_t s = 0; s < msg.signals.size(); ++s)
      signal_names_.emplace_back(msg.signals[s].name,
                                 static_cast<std::uint16_t>(s));
    std::sort(signal_names_.begin() + static_cast<std::ptrdiff_t>(run_begin),
              signal_names_.end());
  }
  std::sort(id_overflow_.begin(), id_overflow_.end());
  std::sort(names_.begin(), names_.end());
}

std::size_t MessageSchema::signal_count(MessageHandle msg) const noexcept {
  if (msg.index >= signal_counts_.size()) return 0;
  return signal_counts_[msg.index];
}

MessageHandle MessageSchema::message_by_id(std::uint32_t id) const noexcept {
  if (id < kDirectIds) {
    if (id_direct_.empty()) return {};
    const std::int32_t index = id_direct_[id];
    return index < 0 ? MessageHandle{}
                     : MessageHandle{static_cast<std::uint16_t>(index)};
  }
  const auto it = std::lower_bound(
      id_overflow_.begin(), id_overflow_.end(), id,
      [](const auto& entry, std::uint32_t key) { return entry.first < key; });
  if (it == id_overflow_.end() || it->first != id) return {};
  return MessageHandle{it->second};
}

MessageHandle MessageSchema::message_by_name(
    std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      names_.begin(), names_.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == names_.end() || it->first != name) return {};
  return MessageHandle{it->second};
}

SignalHandle MessageSchema::signal_by_name(MessageHandle msg,
                                           std::string_view name)
    const noexcept {
  if (msg.index >= signal_counts_.size()) return {};
  const auto begin =
      signal_names_.begin() + signal_offsets_[msg.index];
  const auto end = begin + signal_counts_[msg.index];
  const auto it = std::lower_bound(
      begin, end, name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == end || it->first != name) return {};
  return SignalHandle{msg.index, it->second};
}

}  // namespace scaa::can
