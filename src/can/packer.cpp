#include "can/packer.hpp"

#include <stdexcept>

namespace scaa::can {

CanFrame CanPacker::pack(const std::string& message_name,
                         const std::map<std::string, double>& values) {
  const DbcMessage* layout = db_->by_name(message_name);
  if (layout == nullptr)
    throw std::invalid_argument("CanPacker: unknown message " + message_name);

  CanFrame frame;
  frame.id = layout->id;
  frame.dlc = layout->size;

  for (const auto& [name, value] : values) {
    const DbcSignal* sig = layout->find_signal(name);
    if (sig == nullptr)
      throw std::invalid_argument("CanPacker: unknown signal " + name +
                                  " in " + message_name);
    sig->encode(frame.data, value);
  }

  if (layout->checksum == ChecksumKind::kHonda) {
    auto& counter = counters_[layout->id];
    write_counter(frame, counter);
    counter = static_cast<std::uint8_t>((counter + 1) & 0x3);
    apply_honda_checksum(frame);
  }
  return frame;
}

std::optional<CanParser::Parsed> CanParser::parse(const CanFrame& frame) {
  const DbcMessage* layout = db_->by_id(frame.id);
  if (layout == nullptr) return std::nullopt;

  Parsed out;
  out.message = layout;

  if (layout->checksum == ChecksumKind::kHonda) {
    out.checksum_ok = verify_honda_checksum(frame);
    if (!out.checksum_ok) ++checksum_errors_;

    const std::uint8_t counter = read_counter(frame);
    const auto it = last_counter_.find(frame.id);
    if (it != last_counter_.end()) {
      const auto expected = static_cast<std::uint8_t>((it->second + 1) & 0x3);
      out.counter_ok = counter == expected;
      if (!out.counter_ok) ++counter_errors_;
    }
    last_counter_[frame.id] = counter;
  }

  for (const auto& sig : layout->signals)
    out.values[sig.name] = sig.decode(frame.data);
  return out;
}

}  // namespace scaa::can
