#include "can/packer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scaa::can {

CanPacker::CanPacker(const Database& db)
    : db_(&db),
      counters_(db.schema().message_count(), 0),
      scratch_(db.schema().max_signals_per_message(), kSignalUnset) {}

void CanPacker::reset_counters() noexcept {
  std::fill(counters_.begin(), counters_.end(), std::uint8_t{0});
}

CanFrame CanPacker::pack(MessageHandle msg, std::span<const double> values) {
  const DbcMessage& layout = db_->message(msg);

  CanFrame frame;
  frame.id = layout.id;
  frame.dlc = layout.size;

  const std::size_t n = std::min(values.size(), layout.signals.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isnan(values[i])) layout.signals[i].encode(frame.data, values[i]);
  }

  if (layout.checksum == ChecksumKind::kHonda) {
    std::uint8_t& counter = counters_[msg.index];
    write_counter(frame, counter);
    counter = static_cast<std::uint8_t>((counter + 1) & 0x3);
    apply_honda_checksum(frame);
  }
  return frame;
}

CanFrame CanPacker::pack(const std::string& message_name,
                         const std::map<std::string, double>& values) {
  const MessageHandle msg = db_->schema().message_by_name(message_name);
  if (!msg.valid())
    throw std::invalid_argument("CanPacker: unknown message " + message_name);

  const std::size_t n = db_->schema().signal_count(msg);
  std::fill(scratch_.begin(), scratch_.begin() + n, kSignalUnset);
  for (const auto& [name, value] : values) {
    const SignalHandle sig = db_->schema().signal_by_name(msg, name);
    if (!sig.valid())
      throw std::invalid_argument("CanPacker: unknown signal " + name +
                                  " in " + message_name);
    scratch_[sig.signal] = value;
  }
  return pack(msg, std::span<const double>(scratch_.data(), n));
}

CanParser::CanParser(const Database& db)
    : db_(&db),
      last_counter_(db.schema().message_count(), -1),
      values_(db.schema().max_signals_per_message(), 0.0) {}

void CanParser::reset() noexcept {
  std::fill(last_counter_.begin(), last_counter_.end(), std::int16_t{-1});
  checksum_errors_ = 0;
  counter_errors_ = 0;
}

const CanParser::ParsedFrame* CanParser::parse_flat(const CanFrame& frame) {
  const MessageHandle msg = db_->schema().message_by_id(frame.id);
  if (!msg.valid()) return nullptr;
  const DbcMessage& layout = db_->message(msg);

  flat_.handle = msg;
  flat_.message = &layout;
  flat_.checksum_ok = true;
  flat_.counter_ok = true;

  if (layout.checksum == ChecksumKind::kHonda) {
    flat_.checksum_ok = verify_honda_checksum(frame);
    if (!flat_.checksum_ok) ++checksum_errors_;

    const std::uint8_t counter = read_counter(frame);
    std::int16_t& last = last_counter_[msg.index];
    if (last >= 0) {
      const auto expected = static_cast<std::uint8_t>((last + 1) & 0x3);
      flat_.counter_ok = counter == expected;
      if (!flat_.counter_ok) ++counter_errors_;
    }
    last = counter;
  }

  const std::size_t n = layout.signals.size();
  for (std::size_t i = 0; i < n; ++i)
    values_[i] = layout.signals[i].decode(frame.data);
  flat_.values = std::span<const double>(values_.data(), n);
  return &flat_;
}

std::optional<CanParser::Parsed> CanParser::parse(const CanFrame& frame) {
  const ParsedFrame* flat = parse_flat(frame);
  if (flat == nullptr) return std::nullopt;

  Parsed out;
  out.message = flat->message;
  out.checksum_ok = flat->checksum_ok;
  out.counter_ok = flat->counter_ok;
  for (std::size_t i = 0; i < flat->values.size(); ++i)
    out.values[flat->message->signals[i].name] = flat->values[i];
  return out;
}

}  // namespace scaa::can
