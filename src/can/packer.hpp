#pragma once

/// @file packer.hpp
/// Frame construction and parsing against a DBC database
/// (the CanPacker / CanParser pair, as in OpenPilot).

#include <map>
#include <optional>
#include <string>

#include "can/checksum.hpp"
#include "can/database.hpp"

namespace scaa::can {

/// Builds checksummed, counted frames from signal values.
class CanPacker {
 public:
  /// The database is borrowed and must outlive the packer.
  explicit CanPacker(const Database& db) : db_(&db) {}

  /// Build a frame for @p message_name from named physical values. Signals
  /// not listed are encoded as zero. Applies checksum and advances the
  /// per-message rolling counter. Throws std::invalid_argument for unknown
  /// message or signal names.
  CanFrame pack(const std::string& message_name,
                const std::map<std::string, double>& values);

 private:
  const Database* db_;
  std::map<std::uint32_t, std::uint8_t> counters_;
};

/// Decodes frames and validates integrity.
class CanParser {
 public:
  explicit CanParser(const Database& db) : db_(&db) {}

  /// Decoded result of one frame.
  struct Parsed {
    const DbcMessage* message = nullptr;  ///< layout (borrowed from the db)
    std::map<std::string, double> values; ///< signal name -> physical value
    bool checksum_ok = true;
    bool counter_ok = true;               ///< counter advanced as expected
  };

  /// Parse a frame. Unknown ids return std::nullopt. Counter continuity is
  /// tracked per message id across calls.
  std::optional<Parsed> parse(const CanFrame& frame);

  /// Number of frames rejected due to bad checksums so far.
  std::uint64_t checksum_errors() const noexcept { return checksum_errors_; }

  /// Number of counter discontinuities seen so far.
  std::uint64_t counter_errors() const noexcept { return counter_errors_; }

 private:
  const Database* db_;
  std::map<std::uint32_t, std::uint8_t> last_counter_;
  std::uint64_t checksum_errors_ = 0;
  std::uint64_t counter_errors_ = 0;
};

}  // namespace scaa::can
