#pragma once

/// @file packer.hpp
/// Frame construction and parsing against a DBC database
/// (the CanPacker / CanParser pair, as in OpenPilot).
///
/// Both classes have two faces:
///  - the precompiled path (MessageHandle + flat value arrays) used by the
///    100 Hz simulation loop: zero heap allocation and zero string
///    comparison per frame;
///  - the string-keyed path, kept as a thin compatibility shim that
///    resolves names through the database schema and delegates to the
///    precompiled path.

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "can/checksum.hpp"
#include "can/database.hpp"

namespace scaa::can {

/// Sentinel for "signal not set" in a flat pack buffer: the signal's bits
/// stay zero on the wire, exactly like omitting the name from the
/// string-keyed map (raw zero, not physical zero — they differ for signals
/// with a non-zero offset).
inline constexpr double kSignalUnset =
    std::numeric_limits<double>::quiet_NaN();

/// Builds checksummed, counted frames from signal values.
class CanPacker {
 public:
  /// The database is borrowed and must outlive the packer.
  explicit CanPacker(const Database& db);

  /// Precompiled path: @p values[i] is the physical value of signal i of
  /// @p msg (the database's declaration order). Entries beyond
  /// values.size(), and entries equal to kSignalUnset, leave the signal's
  /// bits zero. Applies checksum and advances the per-message rolling
  /// counter. No per-frame heap allocation or string comparison.
  /// @p msg must be a valid handle from this packer's database.
  CanFrame pack(MessageHandle msg, std::span<const double> values);

  /// Compatibility shim: build a frame for @p message_name from named
  /// physical values. Signals not listed are encoded as zero. Throws
  /// std::invalid_argument for unknown message or signal names.
  CanFrame pack(const std::string& message_name,
                const std::map<std::string, double>& values);

  /// Restart every per-message rolling counter at 0, as if freshly
  /// constructed against the same database. No allocation.
  void reset_counters() noexcept;

 private:
  const Database* db_;
  std::vector<std::uint8_t> counters_;  ///< per message index (dense)
  std::vector<double> scratch_;         ///< shim's flat value buffer
};

/// Decodes frames and validates integrity.
class CanParser {
 public:
  explicit CanParser(const Database& db);

  // Non-copyable: parse_flat() hands out views into this parser's scratch
  // buffer, which a copy would alias (each consumer owns its own parser).
  CanParser(const CanParser&) = delete;
  CanParser& operator=(const CanParser&) = delete;

  /// Flat decoded result of one frame. The values span points into the
  /// parser's scratch buffer: valid until the next parse call.
  struct ParsedFrame {
    MessageHandle handle;
    const DbcMessage* message = nullptr;  ///< layout (borrowed from the db)
    std::span<const double> values;       ///< indexed by signal index
    bool checksum_ok = true;
    bool counter_ok = true;  ///< counter advanced as expected
  };

  /// Precompiled path: parse a frame with zero per-frame heap allocation.
  /// Returns nullptr for unknown ids; otherwise a pointer to internal
  /// state overwritten by the next call. Counter continuity is tracked per
  /// message across calls.
  const ParsedFrame* parse_flat(const CanFrame& frame);

  /// Decoded result of one frame (string-keyed compatibility shim).
  struct Parsed {
    const DbcMessage* message = nullptr;  ///< layout (borrowed from the db)
    std::map<std::string, double> values; ///< signal name -> physical value
    bool checksum_ok = true;
    bool counter_ok = true;               ///< counter advanced as expected
  };

  /// Parse a frame into named values. Unknown ids return std::nullopt.
  std::optional<Parsed> parse(const CanFrame& frame);

  /// Number of frames rejected due to bad checksums so far.
  std::uint64_t checksum_errors() const noexcept { return checksum_errors_; }

  /// Number of counter discontinuities seen so far.
  std::uint64_t counter_errors() const noexcept { return counter_errors_; }

  /// Forget all per-message counter history and zero the error counters,
  /// as if freshly constructed against the same database. No allocation.
  void reset() noexcept;

 private:
  const Database* db_;
  std::vector<std::int16_t> last_counter_;  ///< per message index; -1 = none
  std::vector<double> values_;              ///< parse_flat scratch
  ParsedFrame flat_;
  std::uint64_t checksum_errors_ = 0;
  std::uint64_t counter_errors_ = 0;
};

}  // namespace scaa::can
