#pragma once

/// @file builder.hpp
/// Programmatic road construction from straight and arc segments.

#include <vector>

#include "road/road.hpp"

namespace scaa::road {

/// Fluent builder that tessellates straight and circular-arc segments into
/// the reference polyline. Arcs are sampled at ~0.5 m spacing, fine enough
/// that polyline curvature error is negligible at vehicle scale.
class RoadBuilder {
 public:
  /// Start position and heading of the road (defaults to origin, east).
  RoadBuilder& start(geom::Vec2 position, double heading);

  /// Append a straight segment of @p length metres.
  RoadBuilder& straight(double length);

  /// Append a circular arc of @p length metres with signed curvature
  /// @p curvature [1/m]; positive curves left. Zero curvature degrades to a
  /// straight segment.
  RoadBuilder& arc(double length, double curvature);

  /// Tessellation spacing [m]; default 0.5.
  RoadBuilder& sample_spacing(double spacing);

  /// Build the road with the given lane profile.
  Road build(RoadProfile profile) const;

  /// Convenience: the paper's evaluation road — a gentle left-hand curve
  /// long enough for a 50 s run at 60 mph (~1.4 km), two lanes, guardrails.
  /// @p curvature defaults to a ~1.2 km radius left bend.
  static Road paper_road(double curvature = 1.0 / 1200.0);

 private:
  geom::Vec2 cursor_{0.0, 0.0};
  double heading_ = 0.0;
  double spacing_ = 0.5;
  std::vector<geom::Vec2> points_{{0.0, 0.0}};
};

}  // namespace scaa::road
