#include "road/builder.hpp"

#include <cmath>
#include <stdexcept>

namespace scaa::road {

RoadBuilder& RoadBuilder::start(geom::Vec2 position, double heading) {
  if (points_.size() > 1)
    throw std::logic_error("RoadBuilder: start() after segments were added");
  cursor_ = position;
  heading_ = heading;
  points_ = {position};
  return *this;
}

RoadBuilder& RoadBuilder::sample_spacing(double spacing) {
  if (spacing <= 0.0)
    throw std::invalid_argument("RoadBuilder: spacing must be positive");
  spacing_ = spacing;
  return *this;
}

RoadBuilder& RoadBuilder::straight(double length) {
  if (length <= 0.0)
    throw std::invalid_argument("RoadBuilder: length must be positive");
  const int n = std::max(1, static_cast<int>(std::ceil(length / spacing_)));
  const geom::Vec2 dir = geom::heading_vector(heading_);
  for (int i = 1; i <= n; ++i) {
    const double s = length * static_cast<double>(i) / n;
    points_.push_back(cursor_ + dir * s);
  }
  cursor_ = points_.back();
  return *this;
}

RoadBuilder& RoadBuilder::arc(double length, double curvature) {
  if (length <= 0.0)
    throw std::invalid_argument("RoadBuilder: length must be positive");
  if (curvature == 0.0) return straight(length);
  const int n = std::max(2, static_cast<int>(std::ceil(length / spacing_)));
  const double radius = 1.0 / curvature;  // signed
  // Center of curvature sits on the left normal for a left curve.
  const geom::Vec2 normal = geom::heading_vector(heading_).perp();
  const geom::Vec2 center = cursor_ + normal * radius;
  const double total_angle = length * curvature;  // signed sweep
  const geom::Vec2 spoke = cursor_ - center;
  for (int i = 1; i <= n; ++i) {
    const double a = total_angle * static_cast<double>(i) / n;
    points_.push_back(center + spoke.rotated(a));
  }
  cursor_ = points_.back();
  heading_ += total_angle;
  return *this;
}

Road RoadBuilder::build(RoadProfile profile) const {
  return Road(geom::Polyline(points_), profile);
}

Road RoadBuilder::paper_road(double curvature) {
  RoadBuilder builder;
  // 200 m straight lead-in, a 200 m spiral-like transition (stepped arcs),
  // then a long left bend: the Ego covers at most ~1.35 km in 50 s at
  // 60 mph; build over 2 km so nothing runs off the end.
  builder.start({0.0, 0.0}, 0.0)
      .straight(200.0)
      .arc(50.0, 0.2 * curvature)
      .arc(50.0, 0.4 * curvature)
      .arc(50.0, 0.6 * curvature)
      .arc(50.0, 0.8 * curvature)
      .arc(1800.0, curvature);
  RoadProfile profile;
  profile.lane_count = 2;
  profile.lane_width = 3.7;
  profile.guardrail_margin = 1.8;  // paved shoulder up to the barrier
  return builder.build(profile);
}

}  // namespace scaa::road
