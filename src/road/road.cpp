#include "road/road.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace scaa::road {

double RoadProfile::width() const noexcept {
  return static_cast<double>(lane_count) * lane_width;
}

double RoadProfile::lane_center(std::size_t lane) const noexcept {
  // Rightmost lane edge sits at -width/2; lane centers step left from there.
  const double right_edge = -0.5 * width();
  return right_edge + (static_cast<double>(lane) + 0.5) * lane_width;
}

double RoadProfile::lane_right_edge(std::size_t lane) const noexcept {
  return lane_center(lane) - 0.5 * lane_width;
}

double RoadProfile::lane_left_edge(std::size_t lane) const noexcept {
  return lane_center(lane) + 0.5 * lane_width;
}

double RoadProfile::right_guardrail() const noexcept {
  return -0.5 * width() - guardrail_margin;
}

double RoadProfile::left_guardrail() const noexcept {
  return 0.5 * width() + guardrail_margin;
}

Road::Road(geom::Polyline reference, RoadProfile profile)
    : reference_(std::move(reference)), profile_(profile) {
  if (profile_.lane_count == 0)
    throw std::invalid_argument("Road: lane_count must be >= 1");
  if (profile_.lane_width <= 0.0)
    throw std::invalid_argument("Road: lane_width must be positive");
  if (profile_.guardrail_margin < 0.0)
    throw std::invalid_argument("Road: guardrail_margin must be >= 0");
}

double Road::curvature_at(double s) const noexcept {
  geom::FrenetFrame frame(reference_);
  return frame.curvature_at(s, 2.0);
}

double Road::curvature_at(double s, std::size_t segment_hint) const noexcept {
  geom::FrenetFrame frame(reference_);
  return frame.curvature_at(s, 2.0, segment_hint);
}

double Road::distance_to_left_edge(double d, std::size_t lane) const noexcept {
  return profile_.lane_left_edge(lane) - d;
}

double Road::distance_to_right_edge(double d, std::size_t lane) const noexcept {
  return d - profile_.lane_right_edge(lane);
}

int Road::lane_at(double d) const noexcept {
  for (std::size_t lane = 0; lane < profile_.lane_count; ++lane) {
    if (d >= profile_.lane_right_edge(lane) &&
        d <= profile_.lane_left_edge(lane))
      return static_cast<int>(lane);
  }
  return -1;
}

bool Road::invades_lane_line(double d, std::size_t lane,
                             double half_width) const noexcept {
  return (d - half_width) < profile_.lane_right_edge(lane) ||
         (d + half_width) > profile_.lane_left_edge(lane);
}

bool Road::hits_guardrail(double d, double half_width) const noexcept {
  return (d - half_width) <= profile_.right_guardrail() ||
         (d + half_width) >= profile_.left_guardrail();
}

geom::Vec2 Road::world_at(double s, double d) const {
  geom::FrenetFrame frame(reference_);
  return frame.to_world({s, d});
}

}  // namespace scaa::road
