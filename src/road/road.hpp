#pragma once

/// @file road.hpp
/// Road model: a reference centerline with parallel lanes and guardrails.
///
/// The paper's CARLA scenario is a two-lane, one-direction road that curves
/// to the left, with a guardrail on the right (the Ego starts in the lane
/// nearer the right guardrail). We model the road as a reference line (the
/// centerline of the whole carriageway) plus N lanes of constant width and
/// guardrails at fixed lateral offsets.
///
/// Lateral convention (Frenet d): positive to the LEFT of travel direction.
/// Lane index 0 is the RIGHTMOST lane. For a 2-lane road of width w:
///   lane 0 center: d = -w/2     (right lane; the Ego's starting lane)
///   lane 1 center: d = +w/2     (left lane)
///   right guardrail: d = -w - margin ; left guardrail: d = +w + margin.

#include <cstddef>
#include <span>

#include "geom/frenet.hpp"
#include "geom/polyline.hpp"

namespace scaa::road {

/// Immutable description of lanes and guardrails around a reference line.
struct RoadProfile {
  std::size_t lane_count = 2;        ///< lanes, all in the travel direction
  double lane_width = 3.7;           ///< [m] US interstate standard
  double guardrail_margin = 0.6;     ///< [m] shoulder between edge lane and rail

  /// Lateral position of the center of lane @p lane (0 = rightmost).
  double lane_center(std::size_t lane) const noexcept;

  /// Lateral position of the right edge of lane @p lane.
  double lane_right_edge(std::size_t lane) const noexcept;

  /// Lateral position of the left edge of lane @p lane.
  double lane_left_edge(std::size_t lane) const noexcept;

  /// Lateral position of the right/left guardrail faces.
  double right_guardrail() const noexcept;
  double left_guardrail() const noexcept;

  /// Total carriageway width (lane_count * lane_width).
  double width() const noexcept;
};

/// A road: reference polyline + profile + cached Frenet frame.
/// The class owns its geometry; queries are const and thread-compatible
/// (create one FrenetFrame per consumer for hint locality).
class Road {
 public:
  Road(geom::Polyline reference, RoadProfile profile);

  const geom::Polyline& reference() const noexcept { return reference_; }
  const RoadProfile& profile() const noexcept { return profile_; }

  /// Total drivable length.
  double length() const noexcept { return reference_.length(); }

  /// Signed curvature at arc length s (positive = left curve).
  double curvature_at(double s) const noexcept;

  /// curvature_at(s), seeded with a segment index near s (typically from a
  /// projection of the querying vehicle). Bit-identical result for any
  /// hint, including geom::Polyline::kNoSegmentHint.
  double curvature_at(double s, std::size_t segment_hint) const noexcept;

  /// Distance from lateral offset @p d to the LEFT edge of lane @p lane.
  /// Positive while inside the lane (paper's d_left).
  double distance_to_left_edge(double d, std::size_t lane) const noexcept;

  /// Distance from lateral offset @p d to the RIGHT edge of lane @p lane.
  /// Positive while inside the lane (paper's d_right).
  double distance_to_right_edge(double d, std::size_t lane) const noexcept;

  /// Lane containing lateral offset @p d, or -1 when off the carriageway.
  int lane_at(double d) const noexcept;

  /// True when a vehicle of half-width @p half_width centred at @p d sticks
  /// out of lane @p lane (the paper's lane-invasion condition).
  bool invades_lane_line(double d, std::size_t lane,
                         double half_width) const noexcept;

  /// True when offset @p d (plus half-width) reaches a guardrail face.
  bool hits_guardrail(double d, double half_width) const noexcept;

  /// World position of a (s, d) point.
  geom::Vec2 world_at(double s, double d) const;

  /// Project a batch of world points onto the reference line in one
  /// structure-of-arrays sweep (one call per simulation tick for all
  /// vehicles). Element k equals reference().project(points[k], hints[k]);
  /// see geom::Polyline::project_many for the hint contract.
  void project_many(std::span<const geom::Vec2> points,
                    std::span<const double> hints,
                    std::span<geom::Polyline::Projection> out) const noexcept {
    reference_.project_many(points, hints, out);
  }

  /// Heading of the road at arc length s.
  double heading_at(double s) const noexcept {
    return reference_.heading_at(s);
  }

  /// heading_at(s), seeded with a segment index near s. Bit-identical
  /// result for any hint (see geom::Polyline::heading_at overloads).
  double heading_at(double s, std::size_t segment_hint) const noexcept {
    return reference_.heading_at(s, segment_hint);
  }

 private:
  geom::Polyline reference_;
  RoadProfile profile_;
};

}  // namespace scaa::road
