#pragma once

/// @file vehicle.hpp
/// A complete simulated vehicle: pose integration over road geometry.

#include "geom/frenet.hpp"
#include "geom/vec2.hpp"
#include "road/road.hpp"
#include "vehicle/lateral.hpp"
#include "vehicle/longitudinal.hpp"
#include "vehicle/params.hpp"

namespace scaa::vehicle {

/// Snapshot of the physical state of a vehicle (ground truth).
struct VehicleState {
  geom::Pose pose;           ///< world-frame position + heading
  double speed = 0.0;        ///< [m/s]
  double accel = 0.0;        ///< realized longitudinal accel [m/s^2]
  double steer_angle = 0.0;  ///< actuated road-wheel angle [rad]
  double yaw_rate = 0.0;     ///< [rad/s]
  double s = 0.0;            ///< Frenet arc length along the road [m]
  double d = 0.0;            ///< Frenet lateral offset, +left [m]
};

/// Actuator command set delivered to a vehicle every control cycle.
struct ActuatorCommand {
  double accel = 0.0;        ///< net longitudinal accel request [m/s^2]
  double steer_angle = 0.0;  ///< road-wheel angle request [rad]
};

/// Integrates a vehicle over a road. Owns its dynamics models; borrows the
/// road (must outlive the vehicle).
class Vehicle {
 public:
  /// Place the vehicle at arc length @p s0, lateral offset @p d0, with the
  /// road's local heading and initial @p speed.
  Vehicle(const road::Road& road, const VehicleParams& params, double s0,
          double d0, double speed);

  /// Re-place the vehicle exactly as the constructor does, reusing the
  /// existing storage: dynamics, Frenet hint, and state end up bit-identical
  /// to a freshly constructed Vehicle. No allocation.
  void reset(const road::Road& road, const VehicleParams& params, double s0,
             double d0, double speed);

  /// Advance one simulation step of @p dt seconds under @p cmd
  /// (integrate() followed by a self-contained Frenet refresh).
  void step(const ActuatorCommand& cmd, double dt);

  /// Advance dynamics and world pose only, WITHOUT refreshing the Frenet
  /// state. The caller must complete the step with apply_projection() —
  /// this split lets the World project every vehicle of a tick in one
  /// batched road::Road::project_many sweep.
  void integrate(const ActuatorCommand& cmd, double dt);

  /// Frenet-search hint for this vehicle: arc length of its last
  /// projection (negative before the first one).
  double frenet_hint() const noexcept { return frenet_.hint(); }

  /// Segment index of this vehicle's last projection
  /// (geom::Polyline::kNoSegmentHint before the first one). Seeds hinted
  /// road heading/curvature queries without a fresh segment search.
  std::size_t frenet_segment() const noexcept { return frenet_.hint_segment(); }

  /// Complete an integrate() step with an externally computed projection of
  /// state().pose.position; equivalent to the refresh step() performs.
  void apply_projection(const geom::Polyline::Projection& proj) noexcept;

  /// Current ground-truth state.
  const VehicleState& state() const noexcept { return state_; }

  /// Physical parameters.
  const VehicleParams& params() const noexcept { return params_; }

  /// Immediately set speed (used by scripted lead-vehicle profiles).
  void set_speed(double speed) noexcept;

  /// True once speed has reached zero and no positive accel is commanded.
  bool stopped() const noexcept { return state_.speed <= 1e-3; }

 private:
  void refresh_frenet();

  const road::Road* road_;
  VehicleParams params_;
  LongitudinalDynamics longitudinal_;
  LateralDynamics lateral_;
  geom::FrenetFrame frenet_;
  VehicleState state_;
};

/// Longitudinal gap between two vehicles on the same road, rear bumper of
/// @p lead minus front bumper of @p follower (negative = overlapping).
double bumper_gap(const VehicleState& follower, const VehicleParams& fp,
                  const VehicleState& lead, const VehicleParams& lp) noexcept;

}  // namespace scaa::vehicle
