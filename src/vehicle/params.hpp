#pragma once

/// @file params.hpp
/// Physical and actuator parameters of a simulated vehicle.

namespace scaa::vehicle {

/// Parameter set for the dynamics models. Defaults approximate a mid-size
/// sedan (Honda-Civic-like, the archetypal OpenPilot port).
struct VehicleParams {
  // --- geometry ---
  double length = 4.6;          ///< [m] bumper to bumper
  double width = 1.8;           ///< [m]
  double wheelbase = 2.7;       ///< [m]

  // --- mass / longitudinal ---
  double mass = 1450.0;         ///< [kg]
  double max_engine_accel = 3.0;   ///< [m/s^2] powertrain ceiling
  double max_brake_decel = 9.0;    ///< [m/s^2] friction-limited braking
  double drag_area_cd = 0.62;      ///< [m^2] Cd*A
  double air_density = 1.225;      ///< [kg/m^3]
  double rolling_resistance = 0.011;  ///< dimensionless Crr

  // --- actuator response ---
  double accel_time_constant = 0.25;  ///< [s] gas/brake first-order lag
  double steer_time_constant = 0.12;  ///< [s] steering actuator lag
  double max_steer_angle = 0.35;      ///< [rad] road-wheel angle limit (~20 deg)
  double max_steer_rate = 0.6;        ///< [rad/s] road-wheel slew limit

  /// Half of the body width; used by lane-invasion and guardrail checks.
  double half_width() const noexcept { return 0.5 * width; }
};

}  // namespace scaa::vehicle
