#pragma once

/// @file lateral.hpp
/// Lateral dynamics: kinematic bicycle model with steering actuator limits.

#include "vehicle/params.hpp"

namespace scaa::vehicle {

/// Tracks the actuated road-wheel steering angle and derives yaw rate.
///
/// Kinematic bicycle: yaw_rate = v / L * tan(delta). Valid in the paper's
/// regime (lateral accelerations well under tyre limits at highway speed;
/// the attack steering offsets are fractions of a degree). The actuator
/// applies a first-order lag plus a slew-rate limit and an absolute angle
/// clip — the slew limit is what gives the ~1 s "time before significant
/// path deviation" safety property.
class LateralDynamics {
 public:
  explicit LateralDynamics(const VehicleParams& params) noexcept
      : params_(params) {}

  /// Advance one step: move the actuated angle toward @p steer_cmd [rad].
  void step(double steer_cmd, double dt) noexcept;

  /// Actuated road-wheel angle [rad]; positive steers left.
  double steer_angle() const noexcept { return steer_angle_; }

  /// Yaw rate [rad/s] at the given speed with the current actuated angle.
  double yaw_rate(double speed) const noexcept;

  /// Lateral acceleration [m/s^2] at the given speed.
  double lateral_accel(double speed) const noexcept;

  /// Reset the actuated angle.
  void reset(double steer_angle = 0.0) noexcept { steer_angle_ = steer_angle; }

 private:
  VehicleParams params_;
  double steer_angle_ = 0.0;
};

}  // namespace scaa::vehicle
