#pragma once

/// @file longitudinal.hpp
/// Longitudinal (speed) dynamics with actuator lag and resistive forces.

#include "vehicle/params.hpp"

namespace scaa::vehicle {

/// Integrates vehicle speed from a commanded acceleration.
///
/// The command is the *requested* net acceleration at the wheels (what the
/// ADAS long-control outputs). The realized acceleration follows it through
/// a first-order actuator lag, is clipped to powertrain/brake capability,
/// and then fights aerodynamic drag and rolling resistance. Speed never goes
/// negative (no reverse in any paper scenario).
class LongitudinalDynamics {
 public:
  explicit LongitudinalDynamics(const VehicleParams& params) noexcept
      : params_(params) {}

  /// Advance one step of @p dt seconds with commanded accel @p accel_cmd
  /// [m/s^2] (positive = gas, negative = brake).
  void step(double accel_cmd, double dt) noexcept;

  /// Current speed [m/s].
  double speed() const noexcept { return speed_; }

  /// Realized longitudinal acceleration over the last step [m/s^2].
  double accel() const noexcept { return realized_accel_; }

  /// Actuated (post-lag) command [m/s^2]; what the powertrain is producing.
  double actuated_accel() const noexcept { return actuated_accel_; }

  /// Reset state (initial speed, zero acceleration).
  void reset(double speed) noexcept;

 private:
  VehicleParams params_;
  double speed_ = 0.0;
  double actuated_accel_ = 0.0;
  double realized_accel_ = 0.0;
};

}  // namespace scaa::vehicle
