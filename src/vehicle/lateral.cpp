#include "vehicle/lateral.hpp"

#include <cmath>

#include "util/math.hpp"

namespace scaa::vehicle {

void LateralDynamics::step(double steer_cmd, double dt) noexcept {
  const double clipped =
      math::clamp(steer_cmd, -params_.max_steer_angle, params_.max_steer_angle);
  // First-order lag toward the command…
  const double alpha = dt / (params_.steer_time_constant + dt);
  double target = math::lowpass(steer_angle_, clipped, alpha);
  // …bounded by the actuator slew rate.
  steer_angle_ =
      math::rate_limit(steer_angle_, target, params_.max_steer_rate * dt);
}

double LateralDynamics::yaw_rate(double speed) const noexcept {
  return speed / params_.wheelbase * std::tan(steer_angle_);
}

double LateralDynamics::lateral_accel(double speed) const noexcept {
  return speed * yaw_rate(speed);
}

}  // namespace scaa::vehicle
