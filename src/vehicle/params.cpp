#include "vehicle/params.hpp"

// Aggregate of defaults; no out-of-line logic required.
