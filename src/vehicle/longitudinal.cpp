#include "vehicle/longitudinal.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace scaa::vehicle {

void LongitudinalDynamics::reset(double speed) noexcept {
  speed_ = std::max(0.0, speed);
  actuated_accel_ = 0.0;
  realized_accel_ = 0.0;
}

void LongitudinalDynamics::step(double accel_cmd, double dt) noexcept {
  // Clip the request to physical capability before the lag: an ECU cannot
  // even request more than the hardware delivers.
  const double clipped =
      math::clamp(accel_cmd, -params_.max_brake_decel, params_.max_engine_accel);

  // First-order actuator lag.
  const double alpha = dt / (params_.accel_time_constant + dt);
  actuated_accel_ = math::lowpass(actuated_accel_, clipped, alpha);

  // Resistive decelerations (always opposing motion).
  const double drag_decel =
      0.5 * params_.air_density * params_.drag_area_cd * speed_ * speed_ /
      params_.mass;
  const double rolling_decel =
      speed_ > 0.05 ? params_.rolling_resistance * 9.80665 : 0.0;

  // The powertrain control compensates steady resistances at cruise; model
  // the command as net of resistances when positive, and add them when
  // coasting/braking so lifting off the gas slows the car down.
  double net = actuated_accel_;
  if (actuated_accel_ <= 0.0) net -= (drag_decel + rolling_decel);

  const double new_speed = std::max(0.0, speed_ + net * dt);
  realized_accel_ = (new_speed - speed_) / dt;
  speed_ = new_speed;
}

}  // namespace scaa::vehicle
