#include "vehicle/vehicle.hpp"

#include "util/math.hpp"

namespace scaa::vehicle {

Vehicle::Vehicle(const road::Road& road, const VehicleParams& params,
                 double s0, double d0, double speed)
    : road_(&road),
      params_(params),
      longitudinal_(params),
      lateral_(params),
      frenet_(road.reference()) {
  reset(road, params, s0, d0, speed);
}

void Vehicle::reset(const road::Road& road, const VehicleParams& params,
                    double s0, double d0, double speed) {
  // Exactly the constructor's initialization, expressed as assignments so
  // a resident Vehicle can be re-placed without reallocating. The dynamics
  // models and the Frenet frame are plain value types; state_ is rebuilt
  // from scratch so no field of a previous simulation leaks through.
  road_ = &road;
  params_ = params;
  longitudinal_ = LongitudinalDynamics(params);
  lateral_ = LateralDynamics(params);
  frenet_ = geom::FrenetFrame(road.reference());
  longitudinal_.reset(speed);
  state_ = VehicleState{};
  state_.pose.position = frenet_.to_world({s0, d0});
  state_.pose.heading = road.heading_at(s0);
  state_.speed = speed;
  state_.s = s0;
  state_.d = d0;
}

void Vehicle::set_speed(double speed) noexcept {
  longitudinal_.reset(speed);
  state_.speed = longitudinal_.speed();
}

void Vehicle::step(const ActuatorCommand& cmd, double dt) {
  integrate(cmd, dt);
  refresh_frenet();
}

void Vehicle::integrate(const ActuatorCommand& cmd, double dt) {
  longitudinal_.step(cmd.accel, dt);
  lateral_.step(cmd.steer_angle, dt);

  const double speed = longitudinal_.speed();
  const double yaw_rate = lateral_.yaw_rate(speed);

  // Midpoint integration of the unicycle pose: accurate to O(dt^2) which is
  // ample at 10 ms steps and highway curvatures.
  const double mid_heading = state_.pose.heading + 0.5 * yaw_rate * dt;
  state_.pose.position += geom::heading_vector(mid_heading) * (speed * dt);
  state_.pose.heading =
      math::wrap_angle(state_.pose.heading + yaw_rate * dt);

  state_.speed = speed;
  state_.accel = longitudinal_.accel();
  state_.steer_angle = lateral_.steer_angle();
  state_.yaw_rate = yaw_rate;
}

void Vehicle::refresh_frenet() {
  const auto f = frenet_.to_frenet(state_.pose.position);
  state_.s = f.s;
  state_.d = f.d;
}

void Vehicle::apply_projection(
    const geom::Polyline::Projection& proj) noexcept {
  const auto f = frenet_.accept(proj);
  state_.s = f.s;
  state_.d = f.d;
}

double bumper_gap(const VehicleState& follower, const VehicleParams& fp,
                  const VehicleState& lead, const VehicleParams& lp) noexcept {
  return (lead.s - 0.5 * lp.length) - (follower.s + 0.5 * fp.length);
}

}  // namespace scaa::vehicle
