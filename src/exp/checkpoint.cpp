#include "exp/checkpoint.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string_view>

#include "util/mutex.hpp"
#include "util/serial.hpp"
#include "util/thread_annotations.hpp"

namespace scaa::exp {

namespace {

using util::double_bits;
using util::double_from_bits;
using util::fnv1a64;
using util::hex_u64;
using util::parse_hex_u64;

constexpr std::string_view kMagic = "scaa-checkpoint";
constexpr std::string_view kCrcSep = " crc=";

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw CheckpointError("checkpoint " + path + ": " + what);
}

bool parse_dec_u64(std::string_view text, std::uint64_t& out) noexcept {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, v, 10);
  if (ec != std::errc() || ptr != end) return false;
  out = v;
  return true;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t pos = text.find(sep, begin);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
  return parts;
}

/// "key=value" accessor: strips "<key>=" and returns the value, or nullopt
/// semantics via bool.
bool key_value(std::string_view token, std::string_view key,
               std::string_view& value) noexcept {
  if (token.size() <= key.size() + 1) return false;
  if (token.substr(0, key.size()) != key || token[key.size()] != '=')
    return false;
  value = token.substr(key.size() + 1);
  return true;
}

// --- RunningStats record: "n:mean:m2:min:max" (n decimal, bits hex16) ---

std::string encode_rs(const util::RunningStatsRecord& r) {
  return std::to_string(r.n) + ":" + hex_u64(r.mean_bits) + ":" +
         hex_u64(r.m2_bits) + ":" + hex_u64(r.min_bits) + ":" +
         hex_u64(r.max_bits);
}

bool decode_rs(std::string_view text, util::RunningStatsRecord& out) noexcept {
  const auto parts = split(text, ':');
  if (parts.size() != 5) return false;
  return parse_dec_u64(parts[0], out.n) &&
         parse_hex_u64(parts[1], out.mean_bits) &&
         parse_hex_u64(parts[2], out.m2_bits) &&
         parse_hex_u64(parts[3], out.min_bits) &&
         parse_hex_u64(parts[4], out.max_bits);
}

// --- SimulationSummary codec (results mode) -------------------------------
//
// Fixed field order; bools as 0/1, enums and counters as decimals, doubles
// as 16-digit-hex bit patterns. Any layout change here requires a
// kCheckpointFormatVersion bump.

void put_b(std::string& out, bool v) { out += v ? "1," : "0,"; }
void put_u(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += ',';
}
void put_i(std::string& out, int v) {
  out += std::to_string(v);
  out += ',';
}
void put_d(std::string& out, double v) {
  out += hex_u64(double_bits(v));
  out += ',';
}

std::string encode_summary(const sim::SimulationSummary& s) {
  std::string out;
  out.reserve(360);
  put_b(out, s.any_hazard);
  put_i(out, static_cast<int>(s.first_hazard));
  put_d(out, s.first_hazard_time);
  put_b(out, s.hazard_h1);
  put_b(out, s.hazard_h2);
  put_b(out, s.hazard_h3);
  put_d(out, s.hazard_h1_time);
  put_d(out, s.hazard_h2_time);
  put_d(out, s.hazard_h3_time);
  put_b(out, s.any_accident);
  put_i(out, static_cast<int>(s.first_accident));
  put_d(out, s.first_accident_time);
  put_b(out, s.accident_a1);
  put_b(out, s.accident_a2);
  put_b(out, s.accident_a3);
  put_u(out, s.alert_events);
  put_u(out, s.steer_saturated_events);
  put_u(out, s.fcw_events);
  put_b(out, s.alert_before_hazard);
  put_u(out, s.lane_invasions);
  put_d(out, s.lane_invasion_rate);
  put_b(out, s.attack_activated);
  put_d(out, s.attack_start);
  put_d(out, s.attack_duration);
  put_d(out, s.tth);
  put_u(out, s.frames_corrupted);
  put_b(out, s.driver_engaged);
  put_d(out, s.driver_engage_time);
  put_d(out, s.driver_perception_time);
  put_d(out, s.sim_end_time);
  put_u(out, s.can_checksum_rejects);
  put_u(out, s.panda_frames_blocked);
  for (const std::uint64_t v : s.faults_fired) put_u(out, v);
  for (const std::uint64_t v : s.faults_suppressed) put_u(out, v);
  out.pop_back();  // trailing ','
  return out;
}

constexpr std::size_t kSummaryFields = 32 + 2 * fault::kFaultKindCount;

class FieldReader {
 public:
  explicit FieldReader(const std::vector<std::string_view>& fields)
      : fields_(fields) {}

  bool b(bool& out) noexcept {
    std::uint64_t v = 0;
    if (!u(v) || v > 1) return false;
    out = v == 1;
    return true;
  }
  bool u(std::uint64_t& out) noexcept {
    return next_ < fields_.size() && parse_dec_u64(fields_[next_++], out);
  }
  bool i(int& out) noexcept {
    std::string_view f;
    if (next_ >= fields_.size()) return false;
    f = fields_[next_++];
    const bool neg = !f.empty() && f[0] == '-';
    if (neg) f.remove_prefix(1);
    std::uint64_t v = 0;
    if (!parse_dec_u64(f, v) || v > 1000000) return false;
    out = neg ? -static_cast<int>(v) : static_cast<int>(v);
    return true;
  }
  bool d(double& out) noexcept {
    std::uint64_t bits = 0;
    if (next_ >= fields_.size() || !parse_hex_u64(fields_[next_++], bits))
      return false;
    out = double_from_bits(bits);
    return true;
  }

 private:
  const std::vector<std::string_view>& fields_;
  std::size_t next_ = 0;
};

bool decode_summary(std::string_view text, sim::SimulationSummary& s) noexcept {
  const auto fields = split(text, ',');
  if (fields.size() != kSummaryFields) return false;
  FieldReader r(fields);
  int first_hazard = 0;
  int first_accident = 0;
  const bool ok =
      r.b(s.any_hazard) && r.i(first_hazard) && r.d(s.first_hazard_time) &&
      r.b(s.hazard_h1) && r.b(s.hazard_h2) && r.b(s.hazard_h3) &&
      r.d(s.hazard_h1_time) && r.d(s.hazard_h2_time) && r.d(s.hazard_h3_time) &&
      r.b(s.any_accident) && r.i(first_accident) &&
      r.d(s.first_accident_time) && r.b(s.accident_a1) && r.b(s.accident_a2) &&
      r.b(s.accident_a3) && r.u(s.alert_events) &&
      r.u(s.steer_saturated_events) && r.u(s.fcw_events) &&
      r.b(s.alert_before_hazard) && r.u(s.lane_invasions) &&
      r.d(s.lane_invasion_rate) && r.b(s.attack_activated) &&
      r.d(s.attack_start) && r.d(s.attack_duration) && r.d(s.tth) &&
      r.u(s.frames_corrupted) && r.b(s.driver_engaged) &&
      r.d(s.driver_engage_time) && r.d(s.driver_perception_time) &&
      r.d(s.sim_end_time) && r.u(s.can_checksum_rejects) &&
      r.u(s.panda_frames_blocked);
  if (!ok) return false;
  for (std::uint64_t& v : s.faults_fired)
    if (!r.u(v)) return false;
  for (std::uint64_t& v : s.faults_suppressed)
    if (!r.u(v)) return false;
  s.first_hazard = static_cast<attack::HazardClass>(first_hazard);
  s.first_accident = static_cast<sim::AccidentClass>(first_accident);
  return true;
}

// --- shared file core -----------------------------------------------------

std::string frame_line(const std::string& payload) {
  return payload + std::string(kCrcSep) + hex_u64(fnv1a64(payload)) + "\n";
}

/// Validates one framed line; on success strips the crc and returns the
/// payload through @p payload.
bool unframe_line(std::string_view line, std::string_view& payload) noexcept {
  const std::size_t pos = line.rfind(kCrcSep);
  if (pos == std::string_view::npos) return false;
  std::uint64_t crc = 0;
  if (!parse_hex_u64(line.substr(pos + kCrcSep.size()), crc)) return false;
  payload = line.substr(0, pos);
  return fnv1a64(payload) == crc;
}

/// Mode-specific chunk-record parser: decodes @p tokens (everything after
/// the leading "chunk=<idx>") for @p chunk, which covers @p expected_items
/// simulations. Throws CheckpointError via its captured context on bad
/// payloads.
using ChunkParser = std::function<void(
    std::size_t chunk, std::size_t expected_items,
    const std::vector<std::string_view>& tokens)>;

struct CheckpointCore {
  // Set once before open() and immutable afterwards; safe to read from any
  // thread without the mutex.
  std::string path;
  std::string mode;
  std::uint64_t fingerprint = 0;
  std::size_t n_items = 0;
  std::size_t n_chunks = 0;
  int fd = -1;  ///< written only inside open()/open_read_only()

  /// Guards the commit path: the per-chunk completion flags and the
  /// restored-progress counters, plus serialization of file appends
  /// (commit() is called concurrently from pool workers).
  mutable util::Mutex mutex;
  std::vector<char> complete SCAA_GUARDED_BY(mutex);  // one flag per chunk
  std::size_t restored_chunks SCAA_GUARDED_BY(mutex) = 0;
  std::size_t restored_items SCAA_GUARDED_BY(mutex) = 0;

  ~CheckpointCore() {
    if (fd >= 0) ::close(fd);
  }

  bool is_complete(std::size_t chunk) const SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    return chunk < complete.size() && complete[chunk] != 0;
  }
  std::size_t restored_chunk_count() const SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    return restored_chunks;
  }
  std::size_t restored_item_count() const SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    return restored_items;
  }

  std::size_t chunk_items(std::size_t chunk) const noexcept {
    const std::size_t begin = chunk * kCampaignChunk;
    const std::size_t end = std::min(n_items, begin + kCampaignChunk);
    return end - begin;
  }

  [[noreturn]] void corrupt(const std::string& what) const { fail(path, what); }

  std::string header_payload() const {
    return std::string(kMagic) + " format=" +
           std::to_string(kCheckpointFormatVersion) + " mode=" + mode +
           " fingerprint=" + hex_u64(fingerprint) +
           " items=" + std::to_string(n_items) +
           " chunks=" + std::to_string(n_chunks) +
           " chunk_size=" + std::to_string(kCampaignChunk);
  }

  void check_header(std::string_view payload) const {
    const auto tokens = split(payload, ' ');
    std::string_view v;
    std::uint64_t format = 0, fp = 0, items = 0, chunks = 0, chunk_size = 0;
    if (tokens.size() != 7 || tokens[0] != kMagic ||
        !key_value(tokens[1], "format", v) || !parse_dec_u64(v, format) ||
        !key_value(tokens[2], "mode", v))
      corrupt("malformed header");
    const std::string_view file_mode = v;
    if (!key_value(tokens[3], "fingerprint", v) || !parse_hex_u64(v, fp) ||
        !key_value(tokens[4], "items", v) || !parse_dec_u64(v, items) ||
        !key_value(tokens[5], "chunks", v) || !parse_dec_u64(v, chunks) ||
        !key_value(tokens[6], "chunk_size", v) || !parse_dec_u64(v, chunk_size))
      corrupt("malformed header");
    if (format != kCheckpointFormatVersion)
      corrupt("format version " + std::to_string(format) + " != supported " +
              std::to_string(kCheckpointFormatVersion));
    if (file_mode != mode)
      corrupt("mode '" + std::string(file_mode) + "' != expected '" + mode +
              "'");
    if (fp != fingerprint)
      corrupt("grid fingerprint " + hex_u64(fp) +
              " does not match this campaign's " + hex_u64(fingerprint) +
              " (different grid, seed, repetitions, or code version)");
    if (items != n_items || chunks != n_chunks || chunk_size != kCampaignChunk)
      corrupt("grid shape mismatch");
  }

  /// Parse an existing file's contents. Returns the byte offset just past
  /// the last valid line (everything after is a torn tail to truncate).
  std::size_t load(std::string_view contents, const ChunkParser& parser)
      SCAA_REQUIRES(mutex) {
    std::size_t offset = 0;
    std::size_t valid_end = 0;
    bool saw_header = false;
    while (offset < contents.size()) {
      std::size_t eol = contents.find('\n', offset);
      const bool has_newline = eol != std::string_view::npos;
      if (!has_newline) eol = contents.size();
      const std::string_view line = contents.substr(offset, eol - offset);
      const std::size_t next = has_newline ? eol + 1 : contents.size();
      const bool is_last_line = next >= contents.size();

      std::string_view payload;
      if (!has_newline || !unframe_line(line, payload)) {
        // A crash tears at most the final append; a bad line with more
        // records after it is corruption, not a torn write.
        if (is_last_line) break;
        corrupt("corrupted record at byte " + std::to_string(offset));
      }
      if (!saw_header) {
        check_header(payload);
        saw_header = true;
      } else {
        apply_chunk_record(payload, parser);
      }
      offset = next;
      valid_end = next;
    }
    if (!saw_header) return 0;  // nothing durable: caller rewrites header
    return valid_end;
  }

  void apply_chunk_record(std::string_view payload, const ChunkParser& parser)
      SCAA_REQUIRES(mutex) {
    auto tokens = split(payload, ' ');
    std::string_view v;
    std::uint64_t chunk = 0;
    if (tokens.empty() || !key_value(tokens[0], "chunk", v) ||
        !parse_dec_u64(v, chunk))
      corrupt("malformed chunk record");
    if (chunk >= n_chunks)
      corrupt("chunk index " + std::to_string(chunk) + " out of range");
    if (complete[chunk])
      corrupt("duplicate record for chunk " + std::to_string(chunk));
    tokens.erase(tokens.begin());
    parser(static_cast<std::size_t>(chunk), chunk_items(chunk), tokens);
    complete[chunk] = 1;
    ++restored_chunks;
    restored_items += chunk_items(chunk);
  }

  /// Open (and if needed create/repair) the file; loads existing records
  /// through @p parser. Implements the resume semantics documented on the
  /// checkpoint classes. Runs during construction, before the core is
  /// shared with workers, but takes the lock anyway: load() mutates the
  /// guarded completion state, and construction is not a hot path.
  void open(bool resume, const ChunkParser& parser) SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    complete.assign(n_chunks, 0);

    // Create missing parent directories so a stem like `runs/t4` works on
    // the first use — sharded fleets point every worker at one fresh
    // directory, and requiring a manual mkdir first would make the
    // "re-execute the same command in a retry loop" pattern fragile.
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);  // best effort;
      // a real problem surfaces as the ::open failure below.
    }

    std::string contents;
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        contents.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
      }
    }
    if (!resume && !contents.empty())
      fail(path, "already exists; pass resume (--resume) to continue it or "
                 "remove the file to start over");

    const std::size_t valid_end = resume ? load(contents, parser) : 0;
    if (valid_end < contents.size()) {
      // Drop the torn tail so the next append starts on a fresh line.
      if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0)
        fail(path, std::string("truncate failed: ") + std::strerror(errno));
    }

    fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd < 0) fail(path, std::string("open failed: ") + std::strerror(errno));
    // Exclusive advisory lock for the checkpoint's lifetime (released when
    // the fd closes): a watchdog that restarts the campaign while the old
    // process is still alive must fail cleanly here, not interleave
    // O_APPEND commits and poison the file with duplicate chunk records.
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0)
      fail(path, "another process holds this checkpoint (flock: " +
                     std::string(std::strerror(errno)) + ")");
    if (valid_end == 0) {
      append_line(frame_line(header_payload()));
      sync_directory();
    }
  }

  /// Open an existing file strictly for reading (the merge path): the file
  /// must exist, records load through @p parser with the usual validation,
  /// a torn tail is tolerated but NOT repaired (this side never writes),
  /// and the exclusive flock is still taken so reading a slice out from
  /// under a live writer fails cleanly.
  void open_read_only(const ChunkParser& parser) SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    complete.assign(n_chunks, 0);

    fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
      fail(path, std::string("cannot open slice checkpoint: ") +
                     std::strerror(errno));
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0)
      fail(path, "another process holds this checkpoint — is a shard worker "
                 "still running? (flock: " +
                     std::string(std::strerror(errno)) + ")");

    std::string contents;
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        contents.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
      }
    }
    if (contents.empty())
      fail(path, "empty file (the worker never wrote its header)");
    // load() returns the offset past the last valid line; 0 means even the
    // header failed to parse — nothing here is attributable to this grid.
    if (load(contents, parser) == 0)
      fail(path, "no valid header (torn write or not a checkpoint file)");
  }

  void append_line(const std::string& line) SCAA_REQUIRES(mutex) {
    const char* data = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(path, std::string("write failed: ") + std::strerror(errno));
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0)
      fail(path, std::string("fsync failed: ") + std::strerror(errno));
  }

  /// fsync the containing directory so the file's creation itself is
  /// durable (a checkpoint that vanishes with the directory entry on power
  /// loss defeats the point).
  void sync_directory() const {
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash == 0 ? 1 : slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) return;  // best effort: not all filesystems allow this
    ::fsync(dfd);
    ::close(dfd);
  }

  /// Thread-safe durable append of one chunk record.
  void commit_payload(std::size_t chunk, const std::string& payload)
      SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    if (chunk >= n_chunks)
      fail(path, "commit: chunk index out of range");
    if (complete[chunk])
      fail(path, "commit: chunk " + std::to_string(chunk) +
                     " already committed");
    append_line(frame_line(payload));
    complete[chunk] = 1;
  }
};

std::string chunk_prefix(std::size_t chunk) {
  return "chunk=" + std::to_string(chunk) + " ";
}

/// The agg-mode chunk-record parser, shared by the writer's resume path
/// (CampaignCheckpoint) and the merge path (CampaignCheckpointReader) so
/// the two can never drift: decodes one record into (*records)[chunk].
ChunkParser agg_record_parser(CheckpointCore* core,
                              std::vector<AggregateAccumulatorRecord>* records) {
  return [records, core](std::size_t chunk, std::size_t expected_items,
                         const std::vector<std::string_view>& t) {
    AggregateAccumulatorRecord r;
    std::string_view v;
    if (t.size() != 8 || !key_value(t[0], "sims", v) ||
        !parse_dec_u64(v, r.simulations) || !key_value(t[1], "alerts", v) ||
        !parse_dec_u64(v, r.sims_with_alerts) ||
        !key_value(t[2], "hazards", v) ||
        !parse_dec_u64(v, r.sims_with_hazards) ||
        !key_value(t[3], "accidents", v) ||
        !parse_dec_u64(v, r.sims_with_accidents) ||
        !key_value(t[4], "noalert", v) ||
        !parse_dec_u64(v, r.hazards_without_alerts) ||
        !key_value(t[5], "fcw", v) || !parse_dec_u64(v, r.fcw_activations) ||
        !key_value(t[6], "inv", v) || !decode_rs(v, r.invasion_rate) ||
        !key_value(t[7], "tth", v) || !decode_rs(v, r.tth))
      core->corrupt("malformed aggregate record for chunk " +
                    std::to_string(chunk));
    if (r.simulations != expected_items)
      core->corrupt("chunk " + std::to_string(chunk) + " holds " +
                    std::to_string(r.simulations) + " simulations, expected " +
                    std::to_string(expected_items));
    (*records)[chunk] = r;
  };
}

}  // namespace

std::uint64_t grid_fingerprint(const std::vector<CampaignItem>& items) {
  util::Fnv1a64 hash;
  hash.update(std::string_view("scaa-campaign-grid"));
  hash.update(kCheckpointFormatVersion);
  hash.update(static_cast<std::uint64_t>(kCampaignChunk));
  hash.update(static_cast<std::uint64_t>(items.size()));
  for (const CampaignItem& item : items) {
    hash.update(static_cast<std::uint64_t>(item.strategy));
    hash.update(static_cast<std::uint64_t>(item.type));
    hash.update(static_cast<std::uint64_t>(item.strategic_values));
    hash.update(static_cast<std::uint64_t>(item.driver_enabled));
    hash.update(static_cast<std::uint64_t>(item.scenario_id));
    hash.update(double_bits(item.initial_gap));
    hash.update(item.seed);
    // An attached FaultPlan changes every simulation under it, so it is
    // part of the grid identity: resume/merge against a checkpoint written
    // under a different plan (or none) must be rejected.
    const bool has_plan = item.fault_plan && !item.fault_plan->empty();
    hash.update(static_cast<std::uint64_t>(has_plan));
    if (has_plan) hash.update(item.fault_plan->fingerprint());
  }
  return hash.digest();
}

// --- CampaignCheckpoint (mode=agg) ----------------------------------------

struct CampaignCheckpoint::Impl {
  CheckpointCore core;
  std::vector<AggregateAccumulatorRecord> records;  // valid iff complete
};

CampaignCheckpoint::CampaignCheckpoint(std::string path,
                                       const std::vector<CampaignItem>& items,
                                       bool resume)
    : impl_(std::make_unique<Impl>()) {
  CheckpointCore& core = impl_->core;
  core.path = std::move(path);
  core.mode = "agg";
  core.fingerprint = grid_fingerprint(items);
  core.n_items = items.size();
  core.n_chunks = (items.size() + kCampaignChunk - 1) / kCampaignChunk;
  impl_->records.resize(core.n_chunks);

  core.open(resume, agg_record_parser(&core, &impl_->records));
}

CampaignCheckpoint::~CampaignCheckpoint() = default;

std::size_t CampaignCheckpoint::chunk_count() const noexcept {
  return impl_->core.n_chunks;
}
std::size_t CampaignCheckpoint::completed_chunks() const noexcept {
  return impl_->core.restored_chunk_count();
}
std::size_t CampaignCheckpoint::completed_items() const noexcept {
  return impl_->core.restored_item_count();
}

bool CampaignCheckpoint::chunk_complete(std::size_t chunk) const {
  return impl_->core.is_complete(chunk) && chunk < impl_->records.size();
}

AggregateAccumulator CampaignCheckpoint::restored(std::size_t chunk) const {
  if (!chunk_complete(chunk))
    fail(impl_->core.path,
         "restored(): chunk " + std::to_string(chunk) + " is not complete");
  return AggregateAccumulator::from_record(impl_->records[chunk]);
}

void CampaignCheckpoint::commit(std::size_t chunk,
                                const AggregateAccumulator& acc) {
  const AggregateAccumulatorRecord r = acc.to_record();
  std::string payload = chunk_prefix(chunk);
  payload += "sims=" + std::to_string(r.simulations);
  payload += " alerts=" + std::to_string(r.sims_with_alerts);
  payload += " hazards=" + std::to_string(r.sims_with_hazards);
  payload += " accidents=" + std::to_string(r.sims_with_accidents);
  payload += " noalert=" + std::to_string(r.hazards_without_alerts);
  payload += " fcw=" + std::to_string(r.fcw_activations);
  payload += " inv=" + encode_rs(r.invasion_rate);
  payload += " tth=" + encode_rs(r.tth);
  impl_->core.commit_payload(chunk, payload);
}

// --- CampaignCheckpointReader (mode=agg, read-only merge path) ------------

struct CampaignCheckpointReader::Impl {
  CheckpointCore core;
  std::vector<AggregateAccumulatorRecord> records;  // valid iff complete
};

CampaignCheckpointReader::CampaignCheckpointReader(
    std::string path, const std::vector<CampaignItem>& items)
    : impl_(std::make_unique<Impl>()) {
  CheckpointCore& core = impl_->core;
  core.path = std::move(path);
  core.mode = "agg";
  core.fingerprint = grid_fingerprint(items);
  core.n_items = items.size();
  core.n_chunks = (items.size() + kCampaignChunk - 1) / kCampaignChunk;
  impl_->records.resize(core.n_chunks);

  core.open_read_only(agg_record_parser(&core, &impl_->records));
}

CampaignCheckpointReader::~CampaignCheckpointReader() = default;

const std::string& CampaignCheckpointReader::path() const noexcept {
  return impl_->core.path;
}
std::size_t CampaignCheckpointReader::chunk_count() const noexcept {
  return impl_->core.n_chunks;
}
std::size_t CampaignCheckpointReader::completed_chunks() const noexcept {
  return impl_->core.restored_chunk_count();
}
std::size_t CampaignCheckpointReader::completed_items() const noexcept {
  return impl_->core.restored_item_count();
}

bool CampaignCheckpointReader::chunk_complete(std::size_t chunk) const {
  return impl_->core.is_complete(chunk);
}

const AggregateAccumulatorRecord& CampaignCheckpointReader::record(
    std::size_t chunk) const {
  if (!chunk_complete(chunk))
    fail(impl_->core.path,
         "record(): chunk " + std::to_string(chunk) + " is not in this file");
  return impl_->records[chunk];
}

// --- ResultsCheckpoint (mode=results) -------------------------------------

struct ResultsCheckpoint::Impl {
  CheckpointCore core;
  std::vector<sim::SimulationSummary> summaries;  // grid-sized
};

ResultsCheckpoint::ResultsCheckpoint(std::string path,
                                     const std::vector<CampaignItem>& items,
                                     bool resume)
    : impl_(std::make_unique<Impl>()) {
  CheckpointCore& core = impl_->core;
  core.path = std::move(path);
  core.mode = "results";
  core.fingerprint = grid_fingerprint(items);
  core.n_items = items.size();
  core.n_chunks = (items.size() + kCampaignChunk - 1) / kCampaignChunk;
  impl_->summaries.resize(core.n_items);

  auto* summaries = &impl_->summaries;
  auto* corep = &core;
  core.open(resume, [summaries, corep](std::size_t chunk,
                                       std::size_t expected_items,
                                       const std::vector<std::string_view>& t) {
    std::string_view v;
    std::uint64_t count = 0;
    if (t.size() != 2 || !key_value(t[0], "n", v) || !parse_dec_u64(v, count))
      corep->corrupt("malformed results record for chunk " +
                     std::to_string(chunk));
    const auto encoded = split(t[1], ';');
    if (count != expected_items || encoded.size() != expected_items)
      corep->corrupt("chunk " + std::to_string(chunk) + " holds " +
                     std::to_string(encoded.size()) + " results, expected " +
                     std::to_string(expected_items));
    const std::size_t begin = chunk * kCampaignChunk;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (!decode_summary(encoded[i], (*summaries)[begin + i]))
        corep->corrupt("malformed summary " + std::to_string(i) +
                       " in chunk " + std::to_string(chunk));
    }
  });
}

ResultsCheckpoint::~ResultsCheckpoint() = default;

std::size_t ResultsCheckpoint::chunk_count() const noexcept {
  return impl_->core.n_chunks;
}
std::size_t ResultsCheckpoint::completed_chunks() const noexcept {
  return impl_->core.restored_chunk_count();
}
std::size_t ResultsCheckpoint::completed_items() const noexcept {
  return impl_->core.restored_item_count();
}

bool ResultsCheckpoint::chunk_complete(std::size_t chunk) const {
  return impl_->core.is_complete(chunk);
}

void ResultsCheckpoint::restore_into(
    std::vector<CampaignResult>& results) const {
  const CheckpointCore& core = impl_->core;
  if (results.size() != core.n_items)
    fail(core.path, "restore_into(): result vector size " +
                        std::to_string(results.size()) + " != grid size " +
                        std::to_string(core.n_items));
  for (std::size_t c = 0; c < core.n_chunks; ++c) {
    if (!core.is_complete(c)) continue;
    const std::size_t begin = c * kCampaignChunk;
    const std::size_t end = std::min(core.n_items, begin + kCampaignChunk);
    for (std::size_t i = begin; i < end; ++i)
      results[i].summary = impl_->summaries[i];
  }
}

void ResultsCheckpoint::commit(std::size_t chunk, const CampaignResult* results,
                               std::size_t count) {
  if (count != impl_->core.chunk_items(chunk))
    fail(impl_->core.path, "commit: wrong result count for chunk " +
                               std::to_string(chunk));
  std::string payload = chunk_prefix(chunk);
  payload += "n=" + std::to_string(count) + " ";
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0) payload += ';';
    payload += encode_summary(results[i].summary);
  }
  impl_->core.commit_payload(chunk, payload);
}

}  // namespace scaa::exp
