#include "exp/thread_pool.hpp"

#include <stdexcept>

namespace scaa::exp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 4;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace scaa::exp
