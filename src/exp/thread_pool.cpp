#include "exp/thread_pool.hpp"

#include <stdexcept>

namespace scaa::exp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 4;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const util::MutexLock lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  const util::MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) cv_idle_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      const util::MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_task_.wait(mutex_);
      // The predicate loop exits with the lock held and either work queued
      // or shutdown requested; drain the queue fully before honoring stop.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      const util::MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace scaa::exp
