#include "exp/realtime.hpp"

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/deadline_clock.hpp"
#include "util/logging.hpp"

namespace scaa::exp {

PhaseStats::PhaseStats(std::string phase_name, double hi_us)
    : name(std::move(phase_name)), hist_us(0.0, hi_us, 20) {}

void PhaseStats::add(double seconds) {
  latency_s.add(seconds);
  hist_us.add(seconds * 1e6);
}

RealtimeReport RealtimeExecutor::run(sim::World& world,
                                     const RealtimeConfig& config) {
  if (!std::isfinite(config.period_s) || config.period_s <= 0.0)
    throw std::invalid_argument(
        "RealtimeExecutor: period must be finite and positive");
  if (world.ran_)
    throw std::logic_error(
        "RealtimeExecutor::run: this world already ran; call reset() to "
        "re-arm it before running again");
  world.ran_ = true;

  RealtimeReport report;
  report.period_s = config.period_s;
  const double budget_us = config.period_s * 1e6;
  // The whole-tick histogram spans two budgets so overruns land in the
  // visible upper half; subsystem phases are each a fraction of the budget,
  // so their histograms resolve a tenth of it.
  report.phases.emplace_back("tick", 2.0 * budget_us);
  report.phases.emplace_back("sense_publish", budget_us / 10.0);
  report.phases.emplace_back("project_sweep", budget_us / 10.0);
  report.phases.emplace_back("adas_plan", budget_us / 10.0);
  report.phases.emplace_back("monitor", budget_us / 10.0);
  enum { kTick = 0, kSense, kProject, kAdas, kMonitor };

  util::DeadlineClock clock(config.period_s);
  clock.start();
  bool running = !world.finished();
  while (running) {
    // The exact World::step() phase sequence, with a timestamp at each
    // boundary. No clock value flows into any phase — the simulation's
    // inputs are identical to a free-running run.
    sim::World::PendingProjections pend;
    const double t0 = util::monotonic_now_s();
    world.begin_tick(pend);
    const double t1 = util::monotonic_now_s();
    world.project_pending(pend);
    const double t2 = util::monotonic_now_s();
    world.mid_tick(pend);
    const double t3 = util::monotonic_now_s();
    world.project_pending(pend);
    const double t4 = util::monotonic_now_s();
    running = world.end_tick();
    const double t5 = util::monotonic_now_s();
    double tick_end = t5;
    if (config.slow_tick_hook) {
      config.slow_tick_hook();
      tick_end = util::monotonic_now_s();
    }

    report.phases[kTick].add(tick_end - t0);
    report.phases[kSense].add(t1 - t0);
    report.phases[kProject].add((t2 - t1) + (t4 - t3));
    report.phases[kAdas].add(t3 - t2);
    report.phases[kMonitor].add(t5 - t4);

    const util::DeadlineClock::Tick tick = clock.wait_next();
    report.wake_error_s.add(tick.wake_error_s);
    if (tick.overrun) ++report.overruns;
    ++report.ticks;
  }

  report.summary = world.summarize();
  return report;
}

namespace {

void append_le(std::vector<std::uint8_t>& out, std::uint64_t v,
               std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

void append_tap_frame(std::vector<std::uint8_t>& out,
                      const msg::WireFrame& frame) {
  append_le(out, static_cast<std::uint16_t>(frame.topic), 2);
  append_le(out, frame.sequence, 8);
  append_le(out, frame.payload.size(), 4);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

FifoTap::FifoTap(msg::PubSubBus& bus, const std::string& path) : bus_(&bus) {
  if (::mkfifo(path.c_str(), 0600) != 0 && errno != EEXIST)
    throw std::system_error(errno, std::generic_category(),
                            "FifoTap: mkfifo '" + path + "'");
  // A reader that hangs up mid-stream must break the tap, not the
  // simulation: writes to a reader-less pipe raise SIGPIPE, whose default
  // disposition kills the process before write() can even return EPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0)
    throw std::system_error(errno, std::generic_category(),
                            "FifoTap: open '" + path + "' for writing");
  fd_.reset(fd);

  subscriptions_.reserve(msg::kTopicCount);
  for (std::size_t i = 1; i <= msg::kTopicCount; ++i) {
    subscriptions_.push_back(bus.subscribe_raw(
        static_cast<msg::Topic>(i),
        [this](const msg::WireFrame& frame) { write_frame(frame); }));
  }
}

FifoTap::~FifoTap() {
  for (const std::uint64_t id : subscriptions_) bus_->unsubscribe(id);
}

void FifoTap::write_frame(const msg::WireFrame& frame) {
  if (broken_) return;
  scratch_.clear();
  append_tap_frame(scratch_, frame);
  if (!util::write_all(fd_.get(), scratch_.data(), scratch_.size())) {
    broken_ = true;
    SCAA_LOG_WARN() << "FifoTap: write failed (" << std::strerror(errno)
                    << "); stream stopped after " << frames_ << " frames";
    return;
  }
  ++frames_;
}

}  // namespace scaa::exp
