#include "exp/tables.hpp"

#include <stdexcept>

#include "util/table.hpp"

namespace scaa::exp {

namespace {

using util::format_count_percent;
using util::format_double;
using util::format_mean_std;

std::string tth_cell(const Aggregate& agg) {
  if (agg.tth_mean <= 0.0 && agg.tth_std <= 0.0) return "-";
  return format_mean_std(agg.tth_mean, agg.tth_std);
}

}  // namespace

std::string render_table4(
    const std::map<attack::StrategyKind, Aggregate>& per_strategy) {
  util::TextTable table;
  table.set_header({"Attack Strategy", "Alerts", "Hazards", "Accidents",
                    "Hazards&no Alerts", "LaneInvasion(No. Event/s)",
                    "TTH(s) (Avg +/- Std)"});
  // Fixed presentation order matching the paper.
  const attack::StrategyKind order[] = {
      attack::StrategyKind::kNone, attack::StrategyKind::kRandomStDur,
      attack::StrategyKind::kRandomSt, attack::StrategyKind::kRandomDur,
      attack::StrategyKind::kContextAware};
  for (const auto kind : order) {
    const auto it = per_strategy.find(kind);
    if (it == per_strategy.end()) continue;
    const Aggregate& a = it->second;
    table.add_row({
        to_string(kind),
        format_count_percent(a.sims_with_alerts, a.simulations),
        format_count_percent(a.sims_with_hazards, a.simulations),
        format_count_percent(a.sims_with_accidents, a.simulations),
        format_count_percent(a.hazards_without_alerts, a.simulations),
        format_double(a.lane_invasion_rate_mean),
        tth_cell(a),
    });
  }
  return table.render();
}

std::map<attack::AttackType, TypeOutcome> pair_driver_outcomes(
    const std::vector<CampaignResult>& with_driver,
    const std::vector<CampaignResult>& without_driver) {
  if (with_driver.size() != without_driver.size())
    throw std::invalid_argument(
        "pair_driver_outcomes: campaigns differ in size");

  std::map<attack::AttackType, std::vector<CampaignResult>> by_type;
  std::map<attack::AttackType, TypeOutcome> out;

  for (std::size_t i = 0; i < with_driver.size(); ++i) {
    const auto& on = with_driver[i];
    const auto& off = without_driver[i];
    if (on.item.type != off.item.type || on.item.seed != off.item.seed)
      throw std::invalid_argument(
          "pair_driver_outcomes: campaigns are not the same grid");

    auto& slot = out[on.item.type];
    by_type[on.item.type].push_back(on);

    if (off.summary.any_hazard) ++slot.nodriver_hazards;
    if (off.summary.any_accident) ++slot.nodriver_accidents;
    if (off.summary.any_hazard && !on.summary.any_hazard)
      ++slot.prevented_hazards;
    if (off.summary.any_accident && !on.summary.any_accident)
      ++slot.prevented_accidents;
    if (on.summary.any_hazard && !off.summary.any_hazard) ++slot.new_hazards;
    // "New hazard" also counts a hazard *class* the attack did not produce
    // without the driver (e.g. stopping in-lane after an evasive brake).
    else if (on.summary.any_hazard && off.summary.any_hazard &&
             on.summary.first_hazard != off.summary.first_hazard)
      ++slot.new_hazards;
    if (on.summary.driver_engaged && off.summary.any_hazard &&
        !on.summary.any_hazard)
      ++slot.driver_preventions;
  }

  for (auto& [type, slot] : out) slot.agg = aggregate(by_type[type]);
  return out;
}

std::string render_table5(
    const std::map<attack::AttackType, TypeOutcome>& fixed_values,
    const std::map<attack::AttackType, TypeOutcome>& strategic_values) {
  util::TextTable table;
  table.set_header({"Attack Type",
                    // no strategic corruption
                    "Alerts", "Hazards", "Accidents", "TTH(s)",
                    "PreventedHaz", "NewHaz", "PreventedAcc",
                    // strategic corruption
                    "Alerts*", "Hazards*", "Accidents*", "TTH(s)*",
                    "DriverPrev*"});
  for (const attack::AttackType type : attack::kAllAttackTypes) {
    const auto fit = fixed_values.find(type);
    const auto sit = strategic_values.find(type);
    if (fit == fixed_values.end() || sit == strategic_values.end()) continue;
    const TypeOutcome& f = fit->second;
    const TypeOutcome& s = sit->second;
    table.add_row({
        to_string(type),
        format_count_percent(f.agg.sims_with_alerts, f.agg.simulations),
        format_count_percent(f.agg.sims_with_hazards, f.agg.simulations),
        format_count_percent(f.agg.sims_with_accidents, f.agg.simulations),
        tth_cell(f.agg),
        format_count_percent(f.prevented_hazards, f.agg.simulations),
        format_count_percent(f.new_hazards, f.agg.simulations),
        format_count_percent(f.prevented_accidents, f.agg.simulations),
        format_count_percent(s.agg.sims_with_alerts, s.agg.simulations),
        format_count_percent(s.agg.sims_with_hazards, s.agg.simulations),
        format_count_percent(s.agg.sims_with_accidents, s.agg.simulations),
        tth_cell(s.agg),
        std::to_string(s.driver_preventions) + "/" +
            std::to_string(s.prevented_hazards),
    });
  }
  return table.render();
}

}  // namespace scaa::exp
