#pragma once

/// @file param_space.hpp
/// Fig. 8: attack start-time x duration parameter-space exploration.

#include <iosfwd>
#include <vector>

#include "exp/campaign.hpp"

namespace scaa::exp {

/// One point in the (start time, duration) space.
struct ParamSpacePoint {
  attack::StrategyKind strategy{};
  double start_time = 0.0;  ///< actual attack start [s]
  double duration = 0.0;    ///< actual attack duration [s]
  bool hazardous = false;
};

/// Sweep configuration for the Fig. 8 reproduction.
struct ParamSpaceConfig {
  attack::AttackType type = attack::AttackType::kAcceleration;
  int scenario_id = 1;
  double initial_gap = 100.0;
  int grid_starts = 31;     ///< start-time grid for the background sweep
  int grid_durations = 9;   ///< duration grid
  double min_start = 5.0, max_start = 35.0;
  double min_duration = 0.5, max_duration = 2.5;
  int overlay_runs = 20;    ///< runs per overlay strategy
  std::uint64_t base_seed = 88;
  std::size_t threads = 0;
};

/// Run the sweep: a deterministic grid of fixed-window attacks (the
/// Random-ST+DUR cloud) plus Random-ST / Random-DUR / Context-Aware
/// overlays, each point labelled hazardous or not.
std::vector<ParamSpacePoint> run_param_space(const ParamSpaceConfig& config);

/// Write points as CSV (strategy,start,duration,hazardous).
void write_param_space_csv(const std::vector<ParamSpacePoint>& points,
                           std::ostream& out);

/// Estimate the critical start time: the earliest start time whose grid
/// points (at the longest duration) become hazardous. Returns a negative
/// value when no hazardous point exists.
double estimate_critical_time(const std::vector<ParamSpacePoint>& points);

}  // namespace scaa::exp
