#pragma once

/// @file arena.hpp
/// Per-worker simulation arenas: long-lived Worlds reused across a
/// campaign's items.
///
/// The original runners constructed one World per simulation — ~50 heap
/// allocations each, a million-plus across a paper-scale campaign. An
/// arena instead keeps up to kBatchWorlds resident Worlds, reset() between
/// items (bit-identical to fresh construction, see World::reset) and
/// stepped in lockstep through a WorldBatch so every tick issues one fused
/// projection sweep for the whole group. After each worker's first batch
/// warms its arena up, the steady state performs zero heap allocations per
/// simulation — see tests/test_world_reset.cpp, which pins that down with
/// the counting operator new.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "exp/campaign.hpp"
#include "sim/world_batch.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace scaa::exp {

/// Worlds stepped in lockstep per arena batch: enough to amortize the
/// project_many sweep without inflating per-worker memory.
inline constexpr std::size_t kBatchWorlds = 8;

/// A reusable set of resident Worlds. Not thread-safe; each pool worker
/// drives its own arena (via ArenaPool).
class WorldArena {
 public:
  /// Simulate every item of @p items and write its summary to the matching
  /// slot of @p out (out.size() >= items.size()), in item order. Items run
  /// in groups of up to kBatchWorlds; each group resets the resident
  /// Worlds (constructing them only on first use) and runs them to
  /// completion in lockstep. Results are bit-identical to constructing and
  /// running each World alone.
  void run_items(std::span<const CampaignItem> items,
                 const WorldAssets& assets,
                 std::span<sim::SimulationSummary> out);

  /// Resident worlds (grows up to kBatchWorlds, then stable).
  std::size_t world_count() const noexcept { return worlds_.size(); }

 private:
  std::vector<std::unique_ptr<sim::World>> worlds_;
  sim::WorldBatch batch_;
};

/// A free list of arenas shared by the thread-pool workers. The pool has
/// no worker-identity API, so workers check an arena out per task instead:
/// with at most `threads` tasks in flight, at most `threads` arenas ever
/// exist, and each is reused across the whole campaign.
class ArenaPool {
 public:
  /// RAII checkout: acquires an arena (creating one only when the free
  /// list is empty) and returns it on destruction.
  class Lease {
   public:
    explicit Lease(ArenaPool& pool) : pool_(&pool), arena_(pool.acquire()) {}
    ~Lease() { pool_->release(std::move(arena_)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    WorldArena& operator*() noexcept { return *arena_; }
    WorldArena* operator->() noexcept { return arena_.get(); }

   private:
    ArenaPool* pool_;
    std::unique_ptr<WorldArena> arena_;
  };

 private:
  friend class Lease;
  std::unique_ptr<WorldArena> acquire() SCAA_EXCLUDES(mutex_);
  void release(std::unique_ptr<WorldArena> arena) SCAA_EXCLUDES(mutex_);

  util::Mutex mutex_;
  std::vector<std::unique_ptr<WorldArena>> free_ SCAA_GUARDED_BY(mutex_);
};

}  // namespace scaa::exp
