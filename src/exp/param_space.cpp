#include "exp/param_space.hpp"

#include <algorithm>
#include <ostream>

#include "util/csv.hpp"
#include "util/rng.hpp"

namespace scaa::exp {

namespace {

/// Run one simulation with an optional forced attack window; returns the
/// realized (start, duration, hazardous) triple.
ParamSpacePoint run_point(const ParamSpaceConfig& cfg,
                          const WorldAssets& assets,
                          attack::StrategyKind strategy, double forced_start,
                          double forced_duration, std::uint64_t seed) {
  CampaignItem item;
  item.strategy = strategy;
  item.type = cfg.type;
  item.strategic_values = strategy == attack::StrategyKind::kContextAware;
  item.driver_enabled = true;
  item.scenario_id = cfg.scenario_id;
  item.initial_gap = cfg.initial_gap;
  item.seed = seed;

  sim::WorldConfig wc = world_config_for(item, assets);
  wc.attack.strategy_params.forced_start = forced_start;
  wc.attack.strategy_params.forced_duration = forced_duration;

  sim::World world(std::move(wc));
  const sim::SimulationSummary s = world.run();

  ParamSpacePoint point;
  point.strategy = strategy;
  point.start_time = s.attack_start >= 0.0
                         ? s.attack_start
                         : (forced_start >= 0.0 ? forced_start : -1.0);
  point.duration =
      s.attack_duration > 0.0 ? s.attack_duration : forced_duration;
  point.hazardous = s.any_hazard;
  return point;
}

}  // namespace

std::vector<ParamSpacePoint> run_param_space(const ParamSpaceConfig& cfg) {
  struct Job {
    attack::StrategyKind strategy;
    double start;
    double duration;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;

  // Background grid: deterministic Random-ST+DUR windows.
  std::uint64_t sm = cfg.base_seed;
  for (int i = 0; i < cfg.grid_starts; ++i) {
    const double t = cfg.grid_starts > 1
                         ? static_cast<double>(i) / (cfg.grid_starts - 1)
                         : 0.0;
    const double start = cfg.min_start + t * (cfg.max_start - cfg.min_start);
    for (int j = 0; j < cfg.grid_durations; ++j) {
      const double u = cfg.grid_durations > 1
                           ? static_cast<double>(j) / (cfg.grid_durations - 1)
                           : 0.0;
      const double dur =
          cfg.min_duration + u * (cfg.max_duration - cfg.min_duration);
      jobs.push_back({attack::StrategyKind::kRandomStDur, start, dur,
                      util::splitmix64(sm)});
    }
  }
  // Overlays: Random-ST (fixed duration), Random-DUR and Context-Aware
  // use their own stochastic/contextual timing.
  for (int r = 0; r < cfg.overlay_runs; ++r) {
    jobs.push_back({attack::StrategyKind::kRandomSt, -1.0, -1.0,
                    util::splitmix64(sm)});
    jobs.push_back({attack::StrategyKind::kRandomDur, -1.0, -1.0,
                    util::splitmix64(sm)});
    jobs.push_back({attack::StrategyKind::kContextAware, -1.0, -1.0,
                    util::splitmix64(sm)});
  }

  std::vector<ParamSpacePoint> points(jobs.size());
  const WorldAssets assets = WorldAssets::make_default();
  ThreadPool pool(cfg.threads);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool.submit([&cfg, &assets, &jobs, &points, i] {
      const Job& job = jobs[i];
      points[i] = run_point(cfg, assets, job.strategy, job.start, job.duration,
                            job.seed);
    });
  }
  pool.wait_idle();

  // Drop overlay runs whose attack never activated (no point to plot).
  points.erase(std::remove_if(points.begin(), points.end(),
                              [](const ParamSpacePoint& p) {
                                return p.start_time < 0.0;
                              }),
               points.end());
  return points;
}

void write_param_space_csv(const std::vector<ParamSpacePoint>& points,
                           std::ostream& out) {
  util::CsvWriter csv(out);
  csv.header({"strategy", "start_time", "duration", "hazardous"});
  for (const auto& p : points) {
    csv.row()
        .cell(attack::to_string(p.strategy))
        .cell(p.start_time)
        .cell(p.duration)
        .cell(p.hazardous);
    csv.end_row();
  }
}

double estimate_critical_time(const std::vector<ParamSpacePoint>& points) {
  double earliest = -1.0;
  for (const auto& p : points) {
    if (!p.hazardous) continue;
    if (earliest < 0.0 || p.start_time < earliest) earliest = p.start_time;
  }
  return earliest;
}

}  // namespace scaa::exp
