#pragma once

/// @file tables.hpp
/// Emitters that regenerate the paper's tables from campaign results.

#include <map>
#include <string>
#include <vector>

#include "exp/campaign.hpp"

namespace scaa::exp {

/// Table IV: attack-strategy comparison with an alert driver.
/// Keys of @p per_strategy are the strategy kinds present.
std::string render_table4(
    const std::map<attack::StrategyKind, Aggregate>& per_strategy);

/// Per-attack-type slice for Table V.
struct TypeOutcome {
  Aggregate agg;                      ///< driver-on results
  std::size_t prevented_hazards = 0;  ///< hazard w/o driver, none with driver
  std::size_t new_hazards = 0;        ///< hazard type only with driver
  std::size_t prevented_accidents = 0;
  std::size_t driver_preventions = 0; ///< driver engaged & target hazard avoided
  std::size_t nodriver_hazards = 0;   ///< reference: hazards with driver off
  std::size_t nodriver_accidents = 0;
};

/// Pair driver-on and driver-off campaigns item-by-item (same seeds!) to
/// compute the prevention columns of Table V. Both vectors must be the same
/// grid in the same order.
std::map<attack::AttackType, TypeOutcome> pair_driver_outcomes(
    const std::vector<CampaignResult>& with_driver,
    const std::vector<CampaignResult>& without_driver);

/// Table V: context-aware attack per type, with or without strategic value
/// corruption (@p corrupted selects the caption).
std::string render_table5(
    const std::map<attack::AttackType, TypeOutcome>& fixed_values,
    const std::map<attack::AttackType, TypeOutcome>& strategic_values);

}  // namespace scaa::exp
