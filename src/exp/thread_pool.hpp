#pragma once

/// @file thread_pool.hpp
/// Fixed-size worker pool for fanning out independent simulations.

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace scaa::exp {

/// A minimal work-stealing-free thread pool. Tasks are void() closures;
/// results travel through the closures themselves (the campaign layer
/// pre-allocates one result slot per simulation so no synchronization is
/// needed beyond the queue). All queue and lifecycle state is guarded by
/// one mutex, and the guard relationships are thread-safety-annotated so
/// the clang CI leg proves the lock discipline at compile time.
class ThreadPool {
 public:
  /// Spin up @p threads workers (>= 1; pass 0 for hardware concurrency).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::runtime_error after shutdown started.
  void submit(std::function<void()> task) SCAA_EXCLUDES(mutex_);

  /// Block until all submitted tasks have run.
  void wait_idle() SCAA_EXCLUDES(mutex_);

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop() SCAA_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< written only in ctor/dtor
  util::Mutex mutex_;
  util::CondVar cv_task_;
  util::CondVar cv_idle_;
  std::queue<std::function<void()>> queue_ SCAA_GUARDED_BY(mutex_);
  std::size_t in_flight_ SCAA_GUARDED_BY(mutex_) = 0;
  bool stop_ SCAA_GUARDED_BY(mutex_) = false;
};

}  // namespace scaa::exp
