#pragma once

/// @file thread_pool.hpp
/// Fixed-size worker pool for fanning out independent simulations.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace scaa::exp {

/// A minimal work-stealing-free thread pool. Tasks are void() closures;
/// results travel through the closures themselves (the campaign layer
/// pre-allocates one result slot per simulation so no synchronization is
/// needed beyond the queue).
class ThreadPool {
 public:
  /// Spin up @p threads workers (>= 1; pass 0 for hardware concurrency).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::runtime_error after shutdown started.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have run.
  void wait_idle();

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace scaa::exp
